package valmod_test

import (
	"errors"
	"math"
	"testing"

	valmod "github.com/seriesmining/valmod"
	"github.com/seriesmining/valmod/internal/gen"
)

// TestDiscoverDiscords covers the variable-length discord surface of the
// public API: shape and internal consistency of Result.Discords, the
// cross-length ranking invariant, and bit-identical output across worker
// counts (the full-profile pass runs on fixed grids like every other
// phase).
func TestDiscoverDiscords(t *testing.T) {
	s := gen.RandomWalk(900, 9)
	// Plant a spike so at least one unambiguous anomaly exists.
	s.Values[450] += 25

	res, err := valmod.Discover(s.Values, 16, 40, valmod.Options{TopK: 2, Discords: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Discords) == 0 {
		t.Fatal("no discords reported")
	}
	if len(res.Discords) > 4 {
		t.Fatalf("%d discords, want at most 4", len(res.Discords))
	}
	for i, d := range res.Discords {
		if d.Length < 16 || d.Length > 40 {
			t.Errorf("discord %d: length %d outside [16,40]", i, d.Length)
		}
		if d.Offset < 0 || d.Offset+d.Length > 900 {
			t.Errorf("discord %d: window [%d,%d) outside the series", i, d.Offset, d.Offset+d.Length)
		}
		if want := d.Distance * math.Sqrt(1/float64(d.Length)); math.Abs(d.NormDistance-want) > 1e-12 {
			t.Errorf("discord %d: NormDistance %g, want %g", i, d.NormDistance, want)
		}
		if i > 0 && d.NormDistance > res.Discords[i-1].NormDistance+1e-12 {
			t.Errorf("discord %d: ranking not descending (%g after %g)", i, d.NormDistance, res.Discords[i-1].NormDistance)
		}
	}

	parallel, err := valmod.Discover(s.Values, 16, 40, valmod.Options{TopK: 2, Discords: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel.Discords) != len(res.Discords) {
		t.Fatalf("workers=4: %d discords vs %d", len(parallel.Discords), len(res.Discords))
	}
	for i := range res.Discords {
		if parallel.Discords[i] != res.Discords[i] {
			t.Fatalf("workers=4 discord %d: %v vs %v", i, parallel.Discords[i], res.Discords[i])
		}
	}

	// Discords off → no discord slice and no full-profile cost.
	plain, err := valmod.Discover(s.Values, 16, 40, valmod.Options{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Discords != nil {
		t.Fatalf("Discords disabled but %d reported", len(plain.Discords))
	}
}

// TestMotifSetErrorPaths covers Result.MotifSet's failure contract: a
// pair that does not fit the series must be rejected with an error
// wrapping ErrBadInput, never a panic or a silent empty set.
func TestMotifSetErrorPaths(t *testing.T) {
	s := gen.SineMix(400)
	res, err := valmod.Discover(s.Values, 16, 24, valmod.Options{TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := []valmod.MotifPair{
		{A: -1, B: 100, Length: 16},     // negative offset
		{A: 0, B: 395, Length: 16},      // B window runs past the series
		{A: 0, B: 100, Length: 0},       // degenerate length
		{A: 0, B: 100, Length: 401},     // longer than the series
		{A: 1 << 30, B: 100, Length: 8}, // far out of range
	}
	for _, p := range bad {
		set, err := res.MotifSet(p, 0)
		if err == nil {
			t.Errorf("MotifSet(%+v) = %d members, want error", p, len(set))
			continue
		}
		if !errors.Is(err, valmod.ErrBadInput) {
			t.Errorf("MotifSet(%+v) error %v does not wrap ErrBadInput", p, err)
		}
	}
	// The happy path still works on the same result.
	if best, ok := res.BestOverall(); ok {
		if _, err := res.MotifSet(best, 0); err != nil {
			t.Errorf("MotifSet on the best pair failed: %v", err)
		}
	}
}

// TestVALMAPStateAtErrorPaths covers the StateAt range contract on the
// public VALMAP facade: lengths outside [lmin, lmax] error, boundary
// lengths succeed.
func TestVALMAPStateAtErrorPaths(t *testing.T) {
	s := gen.SineMix(500)
	res, err := valmod.Discover(s.Values, 20, 36, valmod.Options{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []int{19, 37, 0, -5, 1 << 20} {
		if _, _, _, err := res.VALMAP.StateAt(l); err == nil {
			t.Errorf("StateAt(%d) succeeded outside [20,36]", l)
		}
	}
	for _, l := range []int{20, 36} {
		mpn, ip, lp, err := res.VALMAP.StateAt(l)
		if err != nil {
			t.Errorf("StateAt(%d): %v", l, err)
			continue
		}
		if len(mpn) != len(res.VALMAP.MPn) || len(ip) != len(mpn) || len(lp) != len(mpn) {
			t.Errorf("StateAt(%d): inconsistent slice lengths", l)
		}
	}
}
