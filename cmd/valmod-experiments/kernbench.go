package main

// The kernel microbenchmark, scaling, and baseline-compare modes of
// valmod-experiments:
//
//   - -bench-kernels times every hot kernel at every available dispatch
//     variant (generic, ilp, avx2 where detected) on fixed synthetic
//     workloads and reports ns/op plus the speedup over the generic
//     variant. Combined with -bench-json the section is embedded in the
//     same report (BENCH_PR9.json carries both).
//   - -bench-scaling runs one fixed pairs+discords workload at workers
//     1, 2 and 4, asserts the result anchors are identical at every
//     worker count (the engine's bit-identity contract), and reports the
//     speedup ratios. Exits non-zero on any anchor drift.
//   - -bench-compare old.json new.json diffs two -bench-json reports:
//     any anchor drift on a shared case fails immediately; a timing
//     regression beyond -compare-tolerance (default 10%) fails unless
//     -compare-anchors-only is set (timings from different machines are
//     not comparable; anchors always are).

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	valmod "github.com/seriesmining/valmod"
	"github.com/seriesmining/valmod/internal/gen"
	"github.com/seriesmining/valmod/internal/kernels"
)

// kernelBench is one (kernel, dispatch variant) timing of -bench-kernels.
type kernelBench struct {
	Kernel           string  `json:"kernel"`
	Variant          string  `json:"variant"`
	NsPerOp          float64 `json:"ns_per_op"`
	SpeedupVsGeneric float64 `json:"speedup_vs_generic,omitempty"`
}

// timeOp calibrates repetitions toward ~120ms of wall time, measures
// three passes, and returns the fastest pass's ns/op — the standard guard
// against scheduler noise on shared machines (interference only ever adds
// time, so the minimum is the best estimate of the true cost).
func timeOp(op func()) float64 {
	op()
	reps := 1
	for {
		start := time.Now()
		for i := 0; i < reps; i++ {
			op()
		}
		el := time.Since(start)
		if el > 100*time.Millisecond || reps >= 1<<24 {
			best := float64(el.Nanoseconds()) / float64(reps)
			for pass := 0; pass < 2; pass++ {
				start = time.Now()
				for i := 0; i < reps; i++ {
					op()
				}
				if v := float64(time.Since(start).Nanoseconds()) / float64(reps); v < best {
					best = v
				}
			}
			return best
		}
		f := 16
		if el > 0 {
			if f = int((120 * time.Millisecond) / el); f < 2 {
				f = 2
			}
		}
		reps *= f
	}
}

// kernelWorkloads builds the fixed micro workloads. Sizes mirror the
// package benchmarks in internal/kernels: long enough that the unrolled
// and vector bodies dominate, small enough that one op fits in L2.
func kernelWorkloads(seed int64) ([]struct {
	name string
	op   func()
}, error) {
	const (
		n  = 8192
		nd = 2048 // DiagScan workloads sweep the full triangle per op
		l  = 64
	)
	s, err := gen.Dataset("ecg", n, seed)
	if err != nil {
		return nil, err
	}
	ts := s.Values
	t32 := make([]float32, n)
	for i, v := range ts {
		t32[i] = float32(v)
	}
	sl := n - l + 1
	means := make([]float64, sl)
	invs := make([]float64, sl)
	for j := 0; j < sl; j++ {
		sum, sq := 0.0, 0.0
		for p := 0; p < l; p++ {
			sum += ts[j+p]
			sq += ts[j+p] * ts[j+p]
		}
		mu := sum / l
		if v := sq/l - mu*mu; v > 0 {
			invs[j] = 1 / math.Sqrt(v*l)
		}
		means[j] = mu
	}
	dot := func(a, b []float64) float64 {
		sum := 0.0
		for i := range a {
			sum += a[i] * b[i]
		}
		return sum
	}
	head := make([]float64, sl)
	for j := range head {
		head[j] = dot(ts[0:l], ts[j:j+l])
	}
	head32 := make([]float32, sl)
	for j := range head32 {
		head32[j] = float32(head[j])
	}
	row := append([]float64(nil), head...)
	row32 := append([]float32(nil), head32...)
	sd := nd - l + 1
	corr := make([]float64, sd)
	idx := make([]int32, sd)
	resetSlots := func() {
		for i := range corr {
			corr[i] = math.Inf(-1)
			idx[i] = -1
		}
	}
	colCorr := make([]float64, sl)
	colIdx := make([]int32, sl)
	for i := range colCorr {
		colCorr[i] = math.Inf(-1)
		colIdx[i] = -1
	}
	var c int
	return []struct {
		name string
		op   func()
	}{
		{"RowNext", func() {
			c++
			kernels.RowNext(row, ts, 1+(c&7), l, sl)
		}},
		{"ExtendRow", func() {
			copy(row, head)
			kernels.ExtendRow(row, ts, 0, l, l+8)
		}},
		{"ArgmaxCorr", func() {
			kernels.ArgmaxCorr(head, means, invs, 100, 132, sl, 1.0/l, means[0], invs[0], math.Inf(-1), -1)
		}},
		{"ColScan", func() {
			kernels.ColScan(head, means, invs, sl-32, 1.0/l, means[sl-1], invs[sl-1], colCorr, colIdx, int32(sl-1), math.Inf(-1), -1)
		}},
		{"DiagScan", func() {
			resetSlots()
			kernels.DiagScan(ts[:nd], head[:sd], means, invs, 16, sd, l, sd, corr, idx)
		}},
		{"RowNext32", func() {
			c++
			kernels.RowNext32(row32, t32, 1+(c&7), l, sl)
		}},
		{"ExtendRow32", func() {
			copy(row32, head32)
			kernels.ExtendRow32(row32, t32, 0, l, l+8)
		}},
		{"DiagScan32", func() {
			resetSlots()
			kernels.DiagScan32(t32[:nd], head32[:sd], means, invs, 16, sd, l, sd, corr, idx)
		}},
	}, nil
}

// collectKernelBenches times every workload at every available dispatch
// variant and restores the entry variant before returning.
func collectKernelBenches(seed int64) ([]kernelBench, error) {
	loads, err := kernelWorkloads(seed)
	if err != nil {
		return nil, err
	}
	orig := kernels.Active()
	defer kernels.SetVariant(orig)
	var out []kernelBench
	for _, wl := range loads {
		generic := 0.0
		for _, v := range kernels.Available() {
			if err := kernels.SetVariant(v); err != nil {
				return nil, err
			}
			kb := kernelBench{Kernel: wl.name, Variant: v.String(), NsPerOp: timeOp(wl.op)}
			if v == kernels.Generic {
				generic = kb.NsPerOp
			} else if generic > 0 {
				kb.SpeedupVsGeneric = generic / kb.NsPerOp
			}
			out = append(out, kb)
		}
	}
	return out, nil
}

// scalingCase is one worker count of the -bench-scaling report.
type scalingCase struct {
	Workers            int     `json:"workers"`
	Seconds            float64 `json:"seconds"`
	SpeedupVsW1        float64 `json:"speedup_vs_w1,omitempty"`
	BestNormDist       float64 `json:"best_norm_dist"`
	BestA              int     `json:"best_a"`
	BestB              int     `json:"best_b"`
	BestLength         int     `json:"best_length"`
	TopDiscordOffset   int     `json:"top_discord_offset"`
	TopDiscordLength   int     `json:"top_discord_length"`
	TopDiscordNormDist float64 `json:"top_discord_norm_dist"`
}

// runBenchScaling times the fixed pairs+discords workload at workers 1, 2
// and 4. Anchors must be identical at every worker count — any drift is a
// determinism bug and the run exits non-zero. The speedup ratios are the
// multicore witness CI records.
func runBenchScaling(outPath string, n, lmin int, seed int64) error {
	const rangeLen = 20
	rep := struct {
		GoVersion     string        `json:"go_version"`
		GOOS          string        `json:"goos"`
		GOARCH        string        `json:"goarch"`
		NumCPU        int           `json:"num_cpu"`
		KernelVariant string        `json:"kernel_variant"`
		Dataset       string        `json:"dataset"`
		N             int           `json:"n"`
		LMin          int           `json:"lmin"`
		LMax          int           `json:"lmax"`
		Seed          int64         `json:"seed"`
		Cases         []scalingCase `json:"cases"`
	}{
		GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(), KernelVariant: kernels.Active().String(),
		Dataset: "ecg", N: n, LMin: lmin, LMax: lmin + rangeLen - 1, Seed: seed,
	}
	s, err := gen.Dataset("ecg", n, seed)
	if err != nil {
		return err
	}
	for _, w := range []int{1, 2, 4} {
		start := time.Now()
		res, err := valmod.Discover(s.Values, lmin, lmin+rangeLen-1, valmod.Options{TopK: 10, Discords: 5, Workers: w})
		if err != nil {
			return err
		}
		sc := scalingCase{Workers: w, Seconds: time.Since(start).Seconds()}
		if best, ok := res.BestOverall(); ok {
			sc.BestNormDist = best.NormDistance
			sc.BestA, sc.BestB, sc.BestLength = best.A, best.B, best.Length
		}
		if len(res.Discords) > 0 {
			sc.TopDiscordNormDist = res.Discords[0].NormDistance
			sc.TopDiscordOffset = res.Discords[0].Offset
			sc.TopDiscordLength = res.Discords[0].Length
		}
		if len(rep.Cases) > 0 {
			base := rep.Cases[0]
			sc.SpeedupVsW1 = base.Seconds / sc.Seconds
			if sc.BestA != base.BestA || sc.BestB != base.BestB || sc.BestLength != base.BestLength ||
				sc.BestNormDist != base.BestNormDist ||
				sc.TopDiscordOffset != base.TopDiscordOffset || sc.TopDiscordLength != base.TopDiscordLength ||
				sc.TopDiscordNormDist != base.TopDiscordNormDist {
				return fmt.Errorf("workers=%d anchors drift from workers=1: %+v vs %+v", w, sc, base)
			}
		}
		rep.Cases = append(rep.Cases, sc)
	}
	w := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// runBenchCompare diffs two -bench-json reports. Cases and kernel entries
// are matched by name (resp. kernel+variant); entries present in only one
// report are reported but never fail. Anchor drift on a shared case always
// fails; timing regressions beyond tol fail unless anchorsOnly is set.
func runBenchCompare(oldPath, newPath string, tol float64, anchorsOnly bool) error {
	load := func(path string) (*benchReport, error) {
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var rep benchReport
		if err := json.Unmarshal(b, &rep); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &rep, nil
	}
	oldRep, err := load(oldPath)
	if err != nil {
		return err
	}
	newRep, err := load(newPath)
	if err != nil {
		return err
	}
	oldCases := map[string]benchCase{}
	for _, c := range oldRep.Cases {
		oldCases[c.Name] = c
	}
	failed := false
	for _, nc := range newRep.Cases {
		oc, ok := oldCases[nc.Name]
		if !ok {
			fmt.Printf("NEW   %-36s %.2fs (no baseline)\n", nc.Name, nc.Seconds)
			continue
		}
		delete(oldCases, nc.Name)
		if nc.BestA != oc.BestA || nc.BestB != oc.BestB || nc.BestLength != oc.BestLength ||
			nc.TopDiscordOffset != oc.TopDiscordOffset || nc.TopDiscordLength != oc.TopDiscordLength {
			fmt.Printf("DRIFT %-36s anchors (%d,%d,l%d,d@%d/l%d) != baseline (%d,%d,l%d,d@%d/l%d)\n",
				nc.Name, nc.BestA, nc.BestB, nc.BestLength, nc.TopDiscordOffset, nc.TopDiscordLength,
				oc.BestA, oc.BestB, oc.BestLength, oc.TopDiscordOffset, oc.TopDiscordLength)
			failed = true
			continue
		}
		ratio := nc.Seconds / oc.Seconds
		status := "ok   "
		if !anchorsOnly && ratio > 1+tol {
			status = "SLOW "
			failed = true
		}
		fmt.Printf("%s %-36s %.2fs vs %.2fs (%.2fx)\n", status, nc.Name, nc.Seconds, oc.Seconds, ratio)
	}
	for name := range oldCases {
		fmt.Printf("GONE  %-36s (in baseline only)\n", name)
	}
	oldKerns := map[string]kernelBench{}
	for _, k := range oldRep.Kernels {
		oldKerns[k.Kernel+"/"+k.Variant] = k
	}
	for _, nk := range newRep.Kernels {
		key := nk.Kernel + "/" + nk.Variant
		ok2, ok := oldKerns[key]
		if !ok {
			continue
		}
		ratio := nk.NsPerOp / ok2.NsPerOp
		status := "ok   "
		if !anchorsOnly && ratio > 1+tol {
			status = "SLOW "
			failed = true
		}
		fmt.Printf("%s %-36s %.0fns vs %.0fns (%.2fx)\n", status, key, nk.NsPerOp, ok2.NsPerOp, ratio)
	}
	if failed {
		return fmt.Errorf("comparison against %s failed (anchor drift or >%.0f%% regression)", oldPath, tol*100)
	}
	return nil
}
