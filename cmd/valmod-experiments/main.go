// Command valmod-experiments regenerates every figure of the paper's
// evaluation at laptop scale (DESIGN.md §6 maps each figure to its flags).
// Sizes and timeouts are scaled down from the paper's 0.5M-point/24-hour
// testbed by default and can be scaled back up with flags; the claims being
// reproduced are relative (which algorithm wins, where timeouts start, how
// time grows), which survive the scaling.
//
// Besides the figures, -bench-json runs a small fixed benchmark suite —
// pairs-only vs pairs+discords over the same generated datasets — and
// emits machine-readable JSON, so successive PRs can track the engine's
// speed from committed baselines (BENCH_PR3.json is the first);
// -bench-large adds the n=50k/100k cases. -cpuprofile/-memprofile wrap any
// of the workloads in pprof capture (see README "Profiling the engine").
//
// Usage:
//
//	valmod-experiments -fig 1left
//	valmod-experiments -fig 3top -n 20000 -timeout 2m
//	valmod-experiments -fig all
//	valmod-experiments -bench-json -bench-large -bench-out BENCH_PR5.json
//	valmod-experiments -bench-json -cpuprofile cpu.prof
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	valmod "github.com/seriesmining/valmod"
	"github.com/seriesmining/valmod/internal/asciiplot"
	"github.com/seriesmining/valmod/internal/baseline/moen"
	"github.com/seriesmining/valmod/internal/baseline/quickmotif"
	"github.com/seriesmining/valmod/internal/baseline/stomprange"
	"github.com/seriesmining/valmod/internal/gen"
	"github.com/seriesmining/valmod/internal/harness"
	"github.com/seriesmining/valmod/internal/kernels"
	"github.com/seriesmining/valmod/internal/lb"
	"github.com/seriesmining/valmod/internal/mass"
	"github.com/seriesmining/valmod/internal/series"
)

func main() {
	var (
		fig          = flag.String("fig", "all", "figure to regenerate: 1left|1right|2|3top|3bottom|all")
		n            = flag.Int("n", 10000, "series length for Figure 3 (top)")
		lmin         = flag.Int("lmin", 64, "minimum subsequence length for Figure 3")
		timeout      = flag.Duration("timeout", 60*time.Second, "per-run budget for Figure 3 (paper: 24h)")
		seed         = flag.Int64("seed", 1, "dataset seed")
		sizes        = flag.String("sizes", "5000,10000,20000,30000,50000", "series sizes for Figure 3 (bottom)")
		ranges       = flag.String("ranges", "10,20,50,100,200", "length ranges for Figure 3 (top)")
		workers      = flag.Int("workers", 1, "goroutines for VALMOD's data-parallel phases in Figure 3 (default 1: the competitors are single-threaded, matching the paper's C implementations; output is identical at any setting)")
		bench        = flag.Bool("bench-json", false, "run the reproducible benchmark suite (pairs-only vs pairs+discords) and emit machine-readable JSON instead of figures")
		benchN       = flag.Int("bench-n", 5000, "series length for the -bench-json suite")
		out          = flag.String("bench-out", "", "write -bench-json output to this path (default stdout)")
		parity       = flag.Bool("plan-parity", false, "after (or instead of) the benchmark, run the pruned, from-scratch full, and incremental plans over the -bench-n series (best pair must agree), then the exhaustive, LB-skip and strict stride/refine pairs+discords plans (best pair AND top discord must agree); exit non-zero on any drift — the CI smoke check")
		large        = flag.Bool("bench-large", false, "add the large-series cases (ecg/pairs@n50k, ecg/pairs+discords@n100k at workers 1 and 4; the n100k cases run the LB length-skip plan) to the -bench-json suite")
		million      = flag.Bool("bench-million", false, "add the million-point case (ecg/pairs+discords/stride@n1m: LengthStride=20, RefineRadius=1, Carry32, one worker) to the -bench-json suite; expect hours on one core")
		benchCkpt    = flag.Bool("bench-checkpoint", false, "add the checkpoint-overhead case to the -bench-json suite: ecg/pairs+discords at -bench-checkpoint-n, run bare and then with engine checkpoints written+fsynced at the service cadence; the report carries checkpoint_bytes and checkpoint_ms_per_length")
		benchCkptN   = flag.Int("bench-checkpoint-n", 100000, "series length for the -bench-checkpoint case")
		benchKernels = flag.Bool("bench-kernels", false, "time every hot kernel at every available dispatch variant (generic/ilp/avx2) and report ns/op plus speedup over generic; with -bench-json the section embeds in the same report")
		benchScaling = flag.Bool("bench-scaling", false, "run the fixed pairs+discords workload at workers 1/2/4, assert bit-identical anchors, and report the speedup ratios (exit non-zero on drift)")
		scalingN     = flag.Int("scaling-n", 20000, "series length for the -bench-scaling workload")
		benchCompare = flag.Bool("bench-compare", false, "compare two -bench-json reports given as positional args (old.json new.json): anchor drift always fails, timing regressions beyond -compare-tolerance fail unless -compare-anchors-only")
		compareTol   = flag.Float64("compare-tolerance", 0.10, "fractional timing regression -bench-compare tolerates")
		compareAnch  = flag.Bool("compare-anchors-only", false, "-bench-compare checks result anchors only (for baselines recorded on a different machine)")
		benchStream  = flag.Bool("bench-stream", false, "run the streaming-append throughput suite (ecg fed in -stream-chunk point chunks, capped and uncapped) and emit machine-readable JSON")
		streamN      = flag.Int("stream-n", 50000, "total points fed through the stream for -bench-stream")
		streamChunk  = flag.Int("stream-chunk", 1000, "chunk size for -bench-stream")
		cpuProf      = flag.String("cpuprofile", "", "write a CPU profile of the selected workload to this file (pprof format)")
		memProf      = flag.String("memprofile", "", "write a heap profile (after the workload) to this file (pprof format)")
	)
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "valmod-experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "valmod-experiments:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "valmod-experiments:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state picture, not transient garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "valmod-experiments:", err)
			}
		}()
	}
	if *benchCompare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "valmod-experiments: -bench-compare needs exactly two args: old.json new.json")
			os.Exit(1)
		}
		if err := runBenchCompare(flag.Arg(0), flag.Arg(1), *compareTol, *compareAnch); err != nil {
			fmt.Fprintln(os.Stderr, "valmod-experiments: bench-compare:", err)
			os.Exit(1)
		}
		return
	}
	if *bench || *parity || *benchStream || *benchKernels || *benchScaling {
		if *bench || (*benchKernels && !*benchScaling) {
			if err := runBenchJSON(*out, *benchN, *lmin, *seed, *workers, *large, *million, *benchKernels, !*bench, *benchCkpt, *benchCkptN); err != nil {
				fmt.Fprintln(os.Stderr, "valmod-experiments:", err)
				os.Exit(1)
			}
		}
		if *benchScaling {
			if err := runBenchScaling(*out, *scalingN, *lmin, *seed); err != nil {
				fmt.Fprintln(os.Stderr, "valmod-experiments: bench-scaling:", err)
				os.Exit(1)
			}
		}
		if *benchStream {
			if err := runBenchStream(*out, *streamN, *streamChunk, *lmin, *seed, *workers); err != nil {
				fmt.Fprintln(os.Stderr, "valmod-experiments: bench-stream:", err)
				os.Exit(1)
			}
		}
		if *parity {
			if err := runPlanParity(*benchN, *lmin, *seed, *workers); err != nil {
				fmt.Fprintln(os.Stderr, "valmod-experiments: plan parity:", err)
				os.Exit(1)
			}
			fmt.Fprintln(os.Stderr, "plan parity: pruned/full/incremental and exhaustive/lb-skip/stride-strict plans agree")
		}
		return
	}
	if err := run(*fig, *n, *lmin, *timeout, *seed, parseInts(*sizes), parseInts(*ranges), *workers); err != nil {
		fmt.Fprintln(os.Stderr, "valmod-experiments:", err)
		os.Exit(1)
	}
}

// benchCase is one timed engine run of the -bench-json suite. Everything
// that pins the workload (dataset, sizes, options) is echoed so a stored
// baseline is self-describing; best_norm_dist / top_discord_norm_dist
// anchor the output so a speedup that silently changed results shows up
// in the diff.
type benchCase struct {
	Name              string  `json:"name"`
	Dataset           string  `json:"dataset"`
	N                 int     `json:"n"`
	LMin              int     `json:"lmin"`
	LMax              int     `json:"lmax"`
	TopK              int     `json:"topk"`
	Discords          int     `json:"discords"`
	Workers           int     `json:"workers"`
	LengthSkip        bool    `json:"length_skip,omitempty"`
	LengthStride      int     `json:"length_stride,omitempty"`
	RefineRadius      int     `json:"refine_radius,omitempty"`
	Carry32           bool    `json:"carry32,omitempty"`
	Seconds           float64 `json:"seconds"`
	Lengths           int     `json:"lengths"`
	CertifiedAnchors  int     `json:"certified_anchors"`
	RecomputedAnchors int     `json:"recomputed_anchors"`
	FullRecomputes    int     `json:"full_recomputes"`
	// Per-length plan breakdown (valmod.PlanStats): pruned vs incremental
	// vs from-scratch lengths, plus the incremental engine's head-row
	// seeds (FFTs) and one-FMA-per-cell extensions.
	PrunedLengths      int `json:"pruned_lengths"`
	IncrementalLengths int `json:"incremental_lengths,omitempty"`
	RecomputeLengths   int `json:"recompute_lengths"`
	HeadSeeds          int `json:"head_seeds,omitempty"`
	HeadExtensions     int `json:"head_extensions,omitempty"`
	LBSkippedLengths   int `json:"lb_skipped_lengths,omitempty"`
	StrideScanned      int `json:"stride_scanned,omitempty"`
	RefinedLengths     int `json:"refined_lengths,omitempty"`
	// Allocation accounting across the timed run (runtime.MemStats deltas
	// divided by the length count): with the zero-alloc steady state the
	// per-length numbers are dominated by per-run setup, so they fall as
	// the range grows — the committed baselines record the trend.
	AllocsPerLength float64 `json:"allocs_per_length"`
	BytesPerLength  float64 `json:"bytes_per_length"`
	// Peak memory after the run: MaxRSSBytes is the getrusage(2) high-water
	// mark of the whole process (cases run small→large, so each case's
	// value reflects the largest workload so far — the last case of a suite
	// owns the suite's peak), HeapInuseBytes the live Go heap at the same
	// instant.
	MaxRSSBytes    uint64 `json:"max_rss_bytes,omitempty"`
	HeapInuseBytes uint64 `json:"heap_inuse_bytes,omitempty"`
	// Result anchors. The offsets/lengths pin the discovery exactly;
	// distances can drift in trailing digits across arithmetic changes
	// (documented per PR), so anchor identity is checked on offsets.
	BestNormDist       float64 `json:"best_norm_dist"`
	BestA              int     `json:"best_a"`
	BestB              int     `json:"best_b"`
	BestLength         int     `json:"best_length"`
	TopDiscordNormDist float64 `json:"top_discord_norm_dist,omitempty"`
	TopDiscordOffset   int     `json:"top_discord_offset,omitempty"`
	TopDiscordLength   int     `json:"top_discord_length,omitempty"`
	// Checkpoint overhead (the -bench-checkpoint case only). The workload
	// runs twice over identical inputs — bare, then emitting engine
	// checkpoints at the service cadence, each blob written and fsynced
	// like the WAL's blob store — and the delta is charged to
	// checkpointing: Seconds times the checkpointed run,
	// baseline_seconds the bare one, checkpoint_ms_per_length =
	// (Seconds − baseline_seconds)·1000 / lengths. checkpoint_bytes is
	// the mean blob size (dominated by the hot-row cache, so near-flat
	// across lengths).
	BaselineSeconds       float64 `json:"baseline_seconds,omitempty"`
	CheckpointBytes       int64   `json:"checkpoint_bytes,omitempty"`
	CheckpointCount       int     `json:"checkpoint_count,omitempty"`
	CheckpointMsPerLength float64 `json:"checkpoint_ms_per_length,omitempty"`
}

// fillBenchStats populates the fields every case derives from a finished
// run: length/plan counters, allocation accounting, peak memory, and the
// result anchors.
func fillBenchStats(bc *benchCase, res *valmod.Result, m0, m1 *runtime.MemStats) {
	bc.Lengths = len(res.PerLength)
	bc.PrunedLengths = res.Plan.PrunedLengths
	bc.IncrementalLengths = res.Plan.IncrementalLengths
	bc.RecomputeLengths = res.Plan.RecomputeLengths
	bc.HeadSeeds = res.Plan.HeadSeeds
	bc.HeadExtensions = res.Plan.HeadExtensions
	bc.LBSkippedLengths = res.Plan.LBSkippedLengths
	bc.StrideScanned = res.Plan.StrideScanned
	bc.RefinedLengths = res.Plan.RefinedLengths
	bc.HeapInuseBytes = m1.HeapInuse
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err == nil && ru.Maxrss > 0 {
		bc.MaxRSSBytes = uint64(ru.Maxrss) * 1024 // linux reports KiB
	}
	if lengths := len(res.PerLength); lengths > 0 {
		bc.AllocsPerLength = float64(m1.Mallocs-m0.Mallocs) / float64(lengths)
		bc.BytesPerLength = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(lengths)
	}
	for _, lr := range res.PerLength {
		bc.CertifiedAnchors += lr.Certified
		bc.RecomputedAnchors += lr.Recomputed
		if lr.FullRecompute {
			bc.FullRecomputes++
		}
	}
	if best, ok := res.BestOverall(); ok {
		bc.BestNormDist = best.NormDistance
		bc.BestA, bc.BestB, bc.BestLength = best.A, best.B, best.Length
	}
	if len(res.Discords) > 0 {
		bc.TopDiscordNormDist = res.Discords[0].NormDistance
		bc.TopDiscordOffset = res.Discords[0].Offset
		bc.TopDiscordLength = res.Discords[0].Length
	}
}

// benchReport is the whole -bench-json document. KernelVariant records the
// dispatch tier the process selected (generic/ilp/avx2 — see
// internal/kernels and the VALMOD_KERNELS override); Kernels is the
// optional -bench-kernels section.
type benchReport struct {
	GoVersion     string        `json:"go_version"`
	GOOS          string        `json:"goos"`
	GOARCH        string        `json:"goarch"`
	NumCPU        int           `json:"num_cpu"`
	KernelVariant string        `json:"kernel_variant"`
	Seed          int64         `json:"seed"`
	Cases         []benchCase   `json:"cases,omitempty"`
	Kernels       []kernelBench `json:"kernels,omitempty"`
}

// runBenchJSON times the fixed benchmark grid: for each dataset, one
// pairs-only run (the pruned plan) and one pairs+discords run (the exact
// full-profile plan) over the same series and length range. Timings are
// machine-dependent; the result anchors are not (fixed seed, fixed
// grids), so baseline diffs separate "faster/slower" from "different".
func runBenchJSON(outPath string, n, lmin int, seed int64, workers int, large, million, withKernels, kernelsOnly, withCkpt bool, ckptN int) error {
	const rangeLen = 20
	rep := benchReport{
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		KernelVariant: kernels.Active().String(),
		Seed:          seed,
	}
	runCase := func(ds string, n, discords, caseWorkers int, tag string, mod func(*valmod.Options)) error {
		s, err := gen.Dataset(ds, n, seed)
		if err != nil {
			return err
		}
		opts := valmod.Options{TopK: 10, Discords: discords, Workers: caseWorkers}
		if mod != nil {
			mod(&opts)
		}
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		res, err := valmod.Discover(s.Values, lmin, lmin+rangeLen-1, opts)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		kind := "pairs"
		if discords > 0 {
			kind = "pairs+discords"
		}
		name := fmt.Sprintf("%s/%s%s", ds, kind, tag)
		if caseWorkers != workers {
			name = fmt.Sprintf("%s@w%d", name, caseWorkers)
		}
		bc := benchCase{
			Name:    name,
			Dataset: ds, N: n,
			LMin: lmin, LMax: lmin + rangeLen - 1,
			TopK: opts.TopK, Discords: discords, Workers: caseWorkers,
			LengthSkip:   opts.LengthSkip,
			LengthStride: opts.LengthStride,
			RefineRadius: opts.RefineRadius,
			Carry32:      opts.Carry32,
			Seconds:      elapsed.Seconds(),
		}
		fillBenchStats(&bc, res, &m0, &m1)
		rep.Cases = append(rep.Cases, bc)
		return nil
	}
	// The grid: pairs-only (pruned plan) and pairs+discords (incremental
	// full-profile plan) at the flag's worker count, plus pairs+discords
	// at workers=4 — the case that exercises the diagonal-block grid's
	// worker-count independence under time measurement.
	type benchSpec struct {
		discords, workers int
	}
	if !kernelsOnly {
		specs := []benchSpec{{0, workers}, {5, workers}}
		if workers != 4 {
			specs = append(specs, benchSpec{5, 4})
		}
		for _, ds := range []string{"ecg", "astro"} {
			for _, spec := range specs {
				if err := runCase(ds, n, spec.discords, spec.workers, "", nil); err != nil {
					return err
				}
			}
		}
	}
	if large {
		// Large-series cases proving the kernels at 10–20× the classic n,
		// each at workers=1 and workers=4 so the baselines also witness the
		// fixed-grid bit-identity at scale (the anchors must match). The
		// n100k pairs+discords cases run the strict LB length-skip plan —
		// the same anchors as the exhaustive BENCH_PR5 baseline (strict mode
		// certifies them), resolved without one full-profile pass per
		// length.
		skip := func(o *valmod.Options) { o.LengthSkip = true }
		for _, lc := range []struct {
			n, discords, workers int
			tag                  string
			mod                  func(*valmod.Options)
		}{
			{50000, 0, 1, "@n50k", nil},
			{50000, 0, 4, "@n50k", nil},
			{100000, 5, 1, "@n100k", skip},
			{100000, 5, 4, "@n100k", skip},
		} {
			// runCase appends a @w suffix whenever the case's worker count
			// differs from the -workers flag, keeping the w1/w4 pair of each
			// size distinguishable under the default flag value of 1.
			if err := runCase("ecg", lc.n, lc.discords, lc.workers, lc.tag, lc.mod); err != nil {
				return err
			}
		}
	}
	if million {
		// The headline scale case: one coarse-to-fine pass over a million
		// points. Stride 20 over the 20-length range scans ℓmin only (a
		// single O(s²) diagonal pass, in float32 carry with float64
		// accumulation), resolves the other 19 lengths from the carried
		// dot products plus survivor recomputes, and refines ±1 around the
		// winners.
		if err := runCase("ecg", 1_000_000, 5, 1, "/stride@n1m", func(o *valmod.Options) {
			o.LengthStride = 20
			o.RefineRadius = 1
			o.Carry32 = true
		}); err != nil {
			return err
		}
	}
	if withCkpt && !kernelsOnly {
		if err := runCheckpointCase(&rep, ckptN, lmin, rangeLen, seed); err != nil {
			return err
		}
	}
	if withKernels {
		ks, err := collectKernelBenches(seed)
		if err != nil {
			return err
		}
		rep.Kernels = ks
	}
	w := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// runCheckpointCase measures what durable checkpointing costs: the ecg
// pairs+discords workload runs bare, then again emitting engine
// checkpoints at the service cadence (every 8 lengths), each blob written
// and fsynced the way the service's WAL stores it. The exhaustive
// (non-length-skip) plan is used because fast-mode plans never checkpoint.
// The two runs must agree on the best pair — checkpointing is
// observation-only — and the timing delta becomes checkpoint_ms_per_length.
func runCheckpointCase(rep *benchReport, n, lmin, rangeLen int, seed int64) error {
	s, err := gen.Dataset("ecg", n, seed)
	if err != nil {
		return err
	}
	lmax := lmin + rangeLen - 1
	opts := valmod.Options{TopK: 10, Discords: 5, Workers: 1}
	runtime.GC()
	start := time.Now()
	base, err := valmod.Discover(s.Values, lmin, lmax, opts)
	if err != nil {
		return err
	}
	baseSecs := time.Since(start).Seconds()

	dir, err := os.MkdirTemp("", "valmod-bench-ckpt-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	var blobBytes int64
	blobs := 0
	copts := opts
	copts.CheckpointEvery = 8
	copts.Checkpoint = func(b []byte) error {
		tmp := filepath.Join(dir, "ckpt.tmp")
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		if _, err := f.Write(b); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if err := os.Rename(tmp, filepath.Join(dir, "ckpt")); err != nil {
			return err
		}
		blobBytes += int64(len(b))
		blobs++
		return nil
	}
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start = time.Now()
	res, err := valmod.Discover(s.Values, lmin, lmax, copts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	bestBase, _ := base.BestOverall()
	bestCkpt, _ := res.BestOverall()
	if bestBase != bestCkpt {
		return fmt.Errorf("checkpointed run drifted from the bare run: %+v vs %+v", bestCkpt, bestBase)
	}
	tag := fmt.Sprintf("@n%d", n)
	if n%1000 == 0 {
		tag = fmt.Sprintf("@n%dk", n/1000)
	}
	bc := benchCase{
		Name:    "ecg/pairs+discords/ckpt" + tag,
		Dataset: "ecg", N: n,
		LMin: lmin, LMax: lmax,
		TopK: opts.TopK, Discords: opts.Discords, Workers: 1,
		Seconds:         elapsed.Seconds(),
		BaselineSeconds: baseSecs,
	}
	fillBenchStats(&bc, res, &m0, &m1)
	if blobs > 0 {
		bc.CheckpointBytes = blobBytes / int64(blobs)
		bc.CheckpointCount = blobs
	}
	if lengths := len(res.PerLength); lengths > 0 {
		bc.CheckpointMsPerLength = (elapsed.Seconds() - baseSecs) * 1000 / float64(lengths)
	}
	rep.Cases = append(rep.Cases, bc)
	return nil
}

// streamBenchCase is one timed streaming feed of the -bench-stream suite.
// EarlyChunkSecs/LateChunkSecs are the mean per-chunk append times near the
// start (after the sliding window has filled, for capped cases) and at the
// end of the feed: their ratio is the scaling witness. A capped stream must
// hold it near 1 — per-chunk cost O(chunk·lengths·cap), independent of how
// many points ever streamed — while the uncapped contrast case shows the
// expected linear growth of O(chunk·lengths·n) as the retained series
// grows. The anchors pin the final snapshot so a speedup that changed
// results shows in the diff.
type streamBenchCase struct {
	Name           string  `json:"name"`
	Dataset        string  `json:"dataset"`
	NTotal         int     `json:"n_total"`
	Chunk          int     `json:"chunk"`
	WindowCap      int     `json:"window_cap,omitempty"`
	LMin           int     `json:"lmin"`
	LMax           int     `json:"lmax"`
	Workers        int     `json:"workers"`
	Seconds        float64 `json:"seconds"`
	PointsPerSec   float64 `json:"points_per_sec"`
	EarlyChunkSecs float64 `json:"early_chunk_secs"`
	LateChunkSecs  float64 `json:"late_chunk_secs"`
	LateOverEarly  float64 `json:"late_over_early"`
	BestNormDist   float64 `json:"best_norm_dist"`
	BestA          int     `json:"best_a"`
	BestB          int     `json:"best_b"`
	BestLength     int     `json:"best_length"`
}

// runBenchStream times Stream.Append throughput on the ECG generator: the
// headline sliding-window case (the live-monitoring deployment shape) fed
// nTotal points in fixed chunks, plus a shorter uncapped contrast case.
// Timings cover appends only; one snapshot at the end provides the result
// anchors.
func runBenchStream(outPath string, nTotal, chunk, lmin int, seed int64, workers int) error {
	const rangeLen = 20
	if chunk <= 0 || nTotal < chunk {
		return fmt.Errorf("need n_total >= chunk > 0, got %d/%d", nTotal, chunk)
	}
	rep := struct {
		GoVersion string            `json:"go_version"`
		GOOS      string            `json:"goos"`
		GOARCH    string            `json:"goarch"`
		NumCPU    int               `json:"num_cpu"`
		Seed      int64             `json:"seed"`
		Cases     []streamBenchCase `json:"cases"`
	}{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Seed:      seed,
	}
	runCase := func(name string, n, chunk, cap int) error {
		s, err := gen.Dataset("ecg", n, seed)
		if err != nil {
			return err
		}
		lmax := lmin + rangeLen - 1
		st, err := valmod.NewStream(lmin, lmax, valmod.Options{TopK: 1, Workers: workers, WindowCap: cap})
		if err != nil {
			return err
		}
		var chunkSecs []float64
		start := time.Now()
		for pos := 0; pos < n; pos += chunk {
			end := pos + chunk
			if end > n {
				end = n
			}
			c0 := time.Now()
			if err := st.Append(s.Values[pos:end]); err != nil {
				return err
			}
			chunkSecs = append(chunkSecs, time.Since(c0).Seconds())
		}
		elapsed := time.Since(start).Seconds()
		// Compare a window of chunks just after steady state begins (for a
		// capped stream: once the window has filled and evictions run every
		// chunk) against the final chunks of the feed.
		warm := 1
		if cap > 0 {
			warm = (cap + chunk - 1) / chunk
		}
		const span = 10
		if warm+2*span > len(chunkSecs) {
			warm = 1 // short feeds: fall back to "after the first chunk"
		}
		mean := func(xs []float64) float64 {
			sum := 0.0
			for _, v := range xs {
				sum += v
			}
			return sum / float64(len(xs))
		}
		early := mean(chunkSecs[warm:min(warm+span, len(chunkSecs))])
		late := mean(chunkSecs[max(len(chunkSecs)-span, 0):])
		res, err := st.Snapshot()
		if err != nil {
			return err
		}
		bc := streamBenchCase{
			Name: name, Dataset: "ecg", NTotal: n, Chunk: chunk, WindowCap: cap,
			LMin: lmin, LMax: lmax, Workers: workers,
			Seconds: elapsed, PointsPerSec: float64(n) / elapsed,
			EarlyChunkSecs: early, LateChunkSecs: late, LateOverEarly: late / early,
		}
		if best, ok := res.BestOverall(); ok {
			bc.BestNormDist = best.NormDistance
			bc.BestA, bc.BestB, bc.BestLength = best.A, best.B, best.Length
		}
		rep.Cases = append(rep.Cases, bc)
		return nil
	}
	cap := 4096
	if cap < lmin+rangeLen-1 {
		cap = lmin + rangeLen - 1
	}
	if err := runCase("ecg/stream@cap4096", nTotal, chunk, cap); err != nil {
		return err
	}
	// The uncapped contrast runs a fifth of the feed in smaller chunks
	// (enough of them that the early and late measurement windows don't
	// overlap): its per-chunk cost grows linearly with the retained
	// length, which is exactly what the case exists to demonstrate.
	un := nTotal / 5
	if un < 2*chunk {
		un = 2 * chunk
	}
	unChunk := un / 25
	if unChunk < 1 {
		unChunk = 1
	}
	if err := runCase("ecg/stream/uncapped", un, unChunk, 0); err != nil {
		return err
	}
	w := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// runPlanParity is the CI smoke check for the per-length planner: over
// each generated dataset, the pruned plan, the from-scratch full plan
// (DisablePruning + DisableIncremental) and the incremental full plan
// (DisablePruning) must report the same best motif pair — same offsets and
// length, length-normalized distance equal within floating tolerance (the
// three plans take different arithmetic paths, so bit-equality is only
// guaranteed across worker counts *within* a plan).
func runPlanParity(n, lmin int, seed int64, workers int) error {
	const rangeLen = 20
	for _, ds := range []string{"ecg", "astro"} {
		s, err := gen.Dataset(ds, n, seed)
		if err != nil {
			return err
		}
		type plan struct {
			name string
			opts valmod.Options
		}
		plans := []plan{
			{"pruned", valmod.Options{TopK: 1, Workers: workers}},
			{"full", valmod.Options{TopK: 1, Workers: workers, DisablePruning: true, DisableIncremental: true}},
			{"incremental", valmod.Options{TopK: 1, Workers: workers, DisablePruning: true}},
		}
		var refName string
		var ref valmod.MotifPair
		for pi, p := range plans {
			res, err := valmod.Discover(s.Values, lmin, lmin+rangeLen-1, p.opts)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", ds, p.name, err)
			}
			best, ok := res.BestOverall()
			if !ok {
				return fmt.Errorf("%s/%s: no best pair found", ds, p.name)
			}
			if pi == 0 {
				refName, ref = p.name, best
				continue
			}
			if best.A != ref.A || best.B != ref.B || best.Length != ref.Length {
				return fmt.Errorf("%s: %s best pair (%d,%d,len=%d) != %s best pair (%d,%d,len=%d)",
					ds, p.name, best.A, best.B, best.Length, refName, ref.A, ref.B, ref.Length)
			}
			if d := best.NormDistance - ref.NormDistance; d > 1e-9*(1+ref.NormDistance) || d < -1e-9*(1+ref.NormDistance) {
				return fmt.Errorf("%s: %s best norm dist %g vs %s %g",
					ds, p.name, best.NormDistance, refName, ref.NormDistance)
			}
		}
	}
	// Coarse-to-fine parity: on pairs+discords queries the strict LB
	// length-skip plan and the strict stride/refine plan must agree with
	// the exhaustive plan on the best pair AND the top discord — both
	// anchors the strict modes certify exactly (internal/core/modes.go
	// documents the argument). Any drift fails CI.
	for _, ds := range []string{"ecg", "astro"} {
		s, err := gen.Dataset(ds, n, seed)
		if err != nil {
			return err
		}
		plans := []struct {
			name string
			opts valmod.Options
		}{
			{"exhaustive", valmod.Options{TopK: 1, Discords: 3, Workers: workers}},
			{"lb-skip", valmod.Options{TopK: 1, Discords: 3, Workers: workers, LengthSkip: true}},
			{"stride-strict", valmod.Options{TopK: 1, Discords: 3, Workers: workers, LengthStride: 4, Strict: true}},
		}
		var refName string
		var refBest valmod.MotifPair
		var refDisc valmod.Discord
		for pi, p := range plans {
			res, err := valmod.Discover(s.Values, lmin, lmin+rangeLen-1, p.opts)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", ds, p.name, err)
			}
			best, ok := res.BestOverall()
			if !ok {
				return fmt.Errorf("%s/%s: no best pair found", ds, p.name)
			}
			if len(res.Discords) == 0 {
				return fmt.Errorf("%s/%s: no discords found", ds, p.name)
			}
			disc := res.Discords[0]
			if pi == 0 {
				refName, refBest, refDisc = p.name, best, disc
				continue
			}
			if best.A != refBest.A || best.B != refBest.B || best.Length != refBest.Length {
				return fmt.Errorf("%s: %s best pair (%d,%d,len=%d) != %s best pair (%d,%d,len=%d)",
					ds, p.name, best.A, best.B, best.Length, refName, refBest.A, refBest.B, refBest.Length)
			}
			if d := best.NormDistance - refBest.NormDistance; d > 1e-9*(1+refBest.NormDistance) || d < -1e-9*(1+refBest.NormDistance) {
				return fmt.Errorf("%s: %s best norm dist %g vs %s %g",
					ds, p.name, best.NormDistance, refName, refBest.NormDistance)
			}
			if disc.Offset != refDisc.Offset || disc.Length != refDisc.Length {
				return fmt.Errorf("%s: %s top discord (%d,len=%d) != %s top discord (%d,len=%d)",
					ds, p.name, disc.Offset, disc.Length, refName, refDisc.Offset, refDisc.Length)
			}
			if d := disc.NormDistance - refDisc.NormDistance; d > 1e-9*(1+refDisc.NormDistance) || d < -1e-9*(1+refDisc.NormDistance) {
				return fmt.Errorf("%s: %s top discord norm dist %g vs %s %g",
					ds, p.name, disc.NormDistance, refName, refDisc.NormDistance)
			}
		}
	}
	return nil
}

func parseInts(csv string) []int {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &v); err == nil {
			out = append(out, v)
		}
	}
	return out
}

func run(fig string, n, lmin int, timeout time.Duration, seed int64, sizes, ranges []int, workers int) error {
	switch fig {
	case "1left":
		return fig1Left(seed)
	case "1right":
		return fig1Right(seed)
	case "2":
		return fig2(seed)
	case "3top":
		return fig3Top(n, lmin, timeout, seed, ranges, workers)
	case "3bottom":
		return fig3Bottom(lmin, timeout, seed, sizes, workers)
	case "all":
		for _, f := range []func() error{
			func() error { return fig1Left(seed) },
			func() error { return fig1Right(seed) },
			func() error { return fig2(seed) },
			func() error { return fig3Top(n, lmin, timeout, seed, ranges, workers) },
			func() error { return fig3Bottom(lmin, timeout, seed, sizes, workers) },
		} {
			if err := f(); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	default:
		return fmt.Errorf("unknown figure %q", fig)
	}
}

// fig1Left reproduces Figure 1 (left): an ECG snippet, its fixed-length
// matrix profile at ℓ=50 and the index profile.
func fig1Left(seed int64) error {
	fmt.Println("== Figure 1 (left): ECG, matrix profile l=50, index profile ==")
	s := gen.ECG(5000, seed)
	fp, err := valmod.MatrixProfile(s.Values, 50, true)
	if err != nil {
		return err
	}
	fmt.Println("(a) ECG data")
	fmt.Println(asciiplot.Plot(s.Values, 100, 8))
	fmt.Println("(b) Matrix profile l=50")
	fmt.Println(asciiplot.Plot(fp.Dist, 100, 6))
	idx := make([]float64, len(fp.Index))
	for i, v := range fp.Index {
		idx[i] = float64(v)
	}
	fmt.Println("(c) Index profile")
	fmt.Println(asciiplot.Plot(idx, 100, 6))
	pairs := fp.TopPairs(4)
	fmt.Println("motifs at l=50 (the four deep valleys):")
	for i, p := range pairs {
		fmt.Printf("  %d. offsets %d / %d  d=%.4f\n", i+1, p.A, p.B, p.Distance)
	}
	return nil
}

// fig1Right reproduces Figure 1 (right): VALMAP MPn and Length profile over
// [50, 400] on the same ECG snippet, showing the longer motif the
// fixed-length profile misses.
func fig1Right(seed int64) error {
	fmt.Println("== Figure 1 (right): VALMAP over [50, 400] ==")
	s := gen.ECG(5000, seed)
	start := time.Now()
	res, err := valmod.Discover(s.Values, 50, 400, valmod.Options{TopK: 10})
	if err != nil {
		return err
	}
	fmt.Printf("(d) ECG data (VALMOD in %s)\n", harness.FormatDuration(time.Since(start)))
	fmt.Println(asciiplot.Plot(s.Values, 100, 8))
	fmt.Println("(e) VALMAP MPn (length-normalized)")
	fmt.Println(asciiplot.Plot(res.VALMAP.MPn, 100, 6))
	lp := make([]float64, len(res.VALMAP.LP))
	for i, v := range res.VALMAP.LP {
		lp[i] = float64(v)
	}
	fmt.Println("(f) VALMAP Length profile")
	fmt.Println(asciiplot.Plot(lp, 100, 6))
	if best, ok := res.BestOverall(); ok {
		fmt.Printf("global best (length-normalized): %v\n", best)
	}
	fmt.Println("top variable-length motifs:")
	for i, m := range res.TopMotifs(5) {
		fmt.Printf("  %d. offsets %d / %d  length %d  dn=%.4f\n", i+1, m.A, m.B, m.Length, m.NormDistance)
	}
	fmt.Printf("VALMAP checkpoints at lengths: %v\n", res.VALMAP.Checkpoints())
	return nil
}

// fig2 reproduces Figure 2: the distance profile of one subsequence at
// ℓ=600 with its lower-bound column, then the valid/non-valid partial
// profile cases at ℓ=601.
func fig2(seed int64) error {
	fmt.Println("== Figure 2: distance profile of D(160,600) and partial profiles at 601 ==")
	s := gen.ECG(1800, seed)
	t := s.Values
	st := series.NewStats(t)
	const l, anchor = 600, 160
	qt, dist := mass.SlidingDotProfile(t[anchor:anchor+l], t)

	// (a) the profile and its entries ranked by LB, as in the figure's table.
	fmt.Println("(a) distance profile of D(160,600)")
	fmt.Println(asciiplot.Plot(dist, 100, 6))
	sumA := st.Sum(anchor, l)
	type row struct {
		j      int
		d, lbv float64
		qtilde float64
	}
	var rows []row
	terms0 := lb.NewAnchorTerms(st, anchor, l, 0)
	for j := range dist {
		if j > anchor-150 && j < anchor+150 {
			continue // trivial zone
		}
		muB, sdB := st.MeanStd(j, l)
		q := lb.QTilde(qt[j], sumA, muB, sdB)
		rows = append(rows, row{j: j, d: dist[j], lbv: terms0.Bound(q), qtilde: q})
	}
	// Show the 5 best by distance (the paper's table shows rank/dist/offset/LB).
	for i := 0; i < len(rows); i++ {
		for k := i + 1; k < len(rows); k++ {
			if rows[k].d < rows[i].d {
				rows[i], rows[k] = rows[k], rows[i]
			}
		}
	}
	tab := harness.NewTable("top entries (rank, dist, offset, LB)", "#", "dist", "offset", "LB")
	for i := 0; i < 5 && i < len(rows); i++ {
		tab.AddRow(i+1, fmt.Sprintf("%.2f", rows[i].d), rows[i].j, fmt.Sprintf("%.2f", rows[i].lbv))
	}
	if err := tab.Render(os.Stdout); err != nil {
		return err
	}

	// (b) partial profiles at 601: keep p entries, advance, classify.
	fmt.Println("\n(b) partial distance profiles at length 601 (p=5 retained entries)")
	const p = 5
	terms1 := lb.NewAnchorTerms(st, anchor, l, 1)
	// Keep the p entries with largest q̃² (smallest LB).
	for i := 0; i < len(rows); i++ {
		for k := i + 1; k < len(rows); k++ {
			if rows[k].qtilde*rows[k].qtilde > rows[i].qtilde*rows[i].qtilde {
				rows[i], rows[k] = rows[k], rows[i]
			}
		}
	}
	kept := rows
	if len(kept) > p {
		kept = kept[:p]
	}
	muA, sdA := st.MeanStd(anchor, l+1)
	minDist, maxLB := 1e308, 0.0
	for _, r := range kept {
		if r.j+l+1 > len(t) {
			continue
		}
		qtNew := qt[r.j] + t[anchor+l]*t[r.j+l]
		muB, sdB := st.MeanStd(r.j, l+1)
		d := series.DistFromDot(qtNew, float64(l+1), muA, sdA, muB, sdB)
		if d < minDist {
			minDist = d
		}
		if b := terms1.Bound(r.qtilde); b > maxLB {
			maxLB = b
		}
	}
	status := "NON-VALID (must recompute)"
	if minDist <= maxLB {
		status = "VALID (exact minimum certified)"
	}
	fmt.Printf("anchor D(%d,601): minDist=%.3f maxLB=%.3f → %s\n", anchor, minDist, maxLB, status)
	return nil
}

type algo struct {
	name string
	run  func(ctx context.Context, t []float64, lmin, lmax int) error
}

// algos lists the comparative suite. Every algorithm reports the top motif
// pair per length (MOEN and QUICKMOTIF produce exactly that; VALMOD and
// STOMP are configured to match so the timed work is comparable). workers
// parallelizes VALMOD only — the -workers flag documents the fairness
// default of 1.
func algos(workers int) []algo {
	return []algo{
		{"VALMOD", func(ctx context.Context, t []float64, lmin, lmax int) error {
			_, err := valmod.DiscoverContext(ctx, t, lmin, lmax, valmod.Options{TopK: 1, Workers: workers})
			return err
		}},
		{"STOMP", func(ctx context.Context, t []float64, lmin, lmax int) error {
			_, err := stomprange.Run(ctx, t, stomprange.Config{LMin: lmin, LMax: lmax, TopK: 1})
			return err
		}},
		{"MOEN", func(ctx context.Context, t []float64, lmin, lmax int) error {
			_, err := moen.Run(ctx, t, moen.Config{LMin: lmin, LMax: lmax})
			return err
		}},
		{"QUICKMOTIF", func(ctx context.Context, t []float64, lmin, lmax int) error {
			_, err := quickmotif.Run(ctx, t, quickmotif.Config{LMin: lmin, LMax: lmax})
			return err
		}},
	}
}

func fig3Top(n, lmin int, timeout time.Duration, seed int64, ranges []int, workers int) error {
	fmt.Printf("== Figure 3 (top): time vs length range (n=%d, lmin=%d, timeout=%s) ==\n", n, lmin, timeout)
	for _, ds := range []string{"ecg", "astro"} {
		s, err := gen.Dataset(ds, n, seed)
		if err != nil {
			return err
		}
		tab := harness.NewTable(strings.ToUpper(ds), "range", "VALMOD", "STOMP", "MOEN", "QUICKMOTIF")
		for _, rg := range ranges {
			lmax := lmin + rg - 1
			cells := []interface{}{rg}
			for _, a := range algos(workers) {
				m := harness.Timed(timeout, func(ctx context.Context) error {
					return a.run(ctx, s.Values, lmin, lmax)
				})
				cells = append(cells, m.String())
			}
			tab.AddRow(cells...)
		}
		if err := tab.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func fig3Bottom(lmin int, timeout time.Duration, seed int64, sizes []int, workers int) error {
	const rangeLen = 20
	fmt.Printf("== Figure 3 (bottom): time vs series length (range=%d, lmin=%d, timeout=%s) ==\n", rangeLen, lmin, timeout)
	for _, ds := range []string{"ecg", "astro"} {
		tab := harness.NewTable(strings.ToUpper(ds), "n", "VALMOD", "STOMP", "MOEN", "QUICKMOTIF")
		for _, n := range sizes {
			s, err := gen.Dataset(ds, n, seed)
			if err != nil {
				return err
			}
			cells := []interface{}{n}
			for _, a := range algos(workers) {
				m := harness.Timed(timeout, func(ctx context.Context) error {
					return a.run(ctx, s.Values, lmin, lmin+rangeLen-1)
				})
				cells = append(cells, m.String())
			}
			tab.AddRow(cells...)
		}
		if err := tab.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
