package main

import (
	"path/filepath"
	"testing"

	"github.com/seriesmining/valmod/internal/series"
)

func TestRunWritesDataset(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"out.txt", "out.bin"} {
		path := filepath.Join(dir, name)
		if err := run("ecg", 1000, 3, path); err != nil {
			t.Fatal(err)
		}
		s, err := series.LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if s.Len() != 1000 {
			t.Errorf("%s: %d points", name, s.Len())
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("ecg", 100, 1, ""); err == nil {
		t.Error("missing -out should fail")
	}
	if err := run("bogus", 100, 1, "/tmp/x.txt"); err == nil {
		t.Error("unknown dataset should fail")
	}
	if err := run("ecg", 100, 1, "/nonexistent-dir/x.txt"); err == nil {
		t.Error("unwritable path should fail")
	}
}
