// Command valmod-datagen writes synthetic evaluation datasets to disk in
// any of the formats the suite loads (.txt, .bin). It replaces the paper's
// proprietary recordings with structurally equivalent series (DESIGN.md §5).
//
// Usage:
//
//	valmod-datagen -dataset ecg -n 500000 -seed 7 -out ecg.bin
//	valmod-datagen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/seriesmining/valmod/internal/gen"
)

func main() {
	var (
		dataset = flag.String("dataset", "ecg", "dataset name (-list to enumerate)")
		n       = flag.Int("n", 100000, "number of points")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", "", "output path (.txt or .bin; required)")
		list    = flag.Bool("list", false, "list dataset names and exit")
	)
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(gen.Names(), "\n"))
		return
	}
	if err := run(*dataset, *n, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "valmod-datagen:", err)
		os.Exit(1)
	}
}

func run(dataset string, n int, seed int64, out string) error {
	if out == "" {
		return fmt.Errorf("-out is required")
	}
	s, err := gen.Dataset(dataset, n, seed)
	if err != nil {
		return err
	}
	if err := s.SaveFile(out); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d points) to %s\n", s.Name, s.Len(), out)
	return nil
}
