// Command valmod runs variable-length motif discovery over a data series
// and reports the per-length motifs, the cross-length ranking and the
// VALMAP meta structure. It is the backend entry point of the demo
// architecture (Figure 4): the produced VALMAP JSON feeds cmd/valmod-view.
//
// Usage:
//
//	valmod -in series.txt -lmin 50 -lmax 400 [-k 10] [-p 10] [-valmap out.json]
//	valmod -dataset ecg -n 20000 -lmin 50 -lmax 400 -workers 0 -progress
//	valmod -dataset ecg -n 20000 -lmin 50 -lmax 400 -discords 5
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	valmod "github.com/seriesmining/valmod"
	"github.com/seriesmining/valmod/internal/asciiplot"
	"github.com/seriesmining/valmod/internal/gen"
	"github.com/seriesmining/valmod/internal/series"
)

func main() {
	var (
		in      = flag.String("in", "", "input series file (.txt, .csv, .bin); mutually exclusive with -dataset")
		dataset = flag.String("dataset", "", "generate a synthetic dataset instead: ecg|astro|seismic|epg|randomwalk|noise|sinemix")
		n       = flag.Int("n", 20000, "points to generate with -dataset")
		seed    = flag.Int64("seed", 1, "generator seed")
		lmin    = flag.Int("lmin", 50, "minimum subsequence length")
		lmax    = flag.Int("lmax", 400, "maximum subsequence length")
		topK    = flag.Int("k", 10, "motif pairs per length")
		p       = flag.Int("p", 10, "entries kept per partial distance profile")
		workers = flag.Int("workers", 0, "goroutines for the data-parallel phases (0 = all cores, 1 = serial; output is identical at any setting)")
		recomp  = flag.Float64("recompute-fraction", 0, "fraction of anchors above which a length is recomputed wholesale (0 selects the default 0.05)")
		disc    = flag.Int("discords", 0, "also report this many exact variable-length discords (0 disables; forces the full per-length profile pass)")
		skip    = flag.Bool("length-skip", false, "on pairs+discords runs, prove most lengths irrelevant with the lower-bound certificate instead of scanning them (exact best pair and top discord; see Options.LengthSkip)")
		stride  = flag.Int("length-stride", 0, "scan every stride-th length and refine around the winners (0 = exhaustive; see Options.LengthStride)")
		radius  = flag.Int("refine-radius", 0, "lengths refined on each side of a stride winner (0 = the full stride gap)")
		strict  = flag.Bool("strict", false, "keep per-length pairs exact under -length-stride (runs the pruned pass at unscanned lengths)")
		carry32 = flag.Bool("carry32", false, "store the cross-length diagonal carry in float32 (float64 accumulation; trailing-digit drift)")
		progr   = flag.Bool("progress", false, "report each completed length on stderr")
		out     = flag.String("valmap", "", "write VALMAP JSON to this path")
		quiet   = flag.Bool("quiet", false, "suppress plots, print only the summary")
	)
	flag.Parse()
	opts := valmod.Options{TopK: *topK, P: *p, Workers: *workers, RecomputeFraction: *recomp, Discords: *disc,
		LengthSkip: *skip, LengthStride: *stride, RefineRadius: *radius, Strict: *strict, Carry32: *carry32}
	if err := run(*in, *dataset, *n, *seed, *lmin, *lmax, opts, *progr, *out, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "valmod:", err)
		os.Exit(1)
	}
}

func run(in, dataset string, n int, seed int64, lmin, lmax int, opts valmod.Options, progress bool, out string, quiet bool) error {
	var (
		s   *series.Series
		err error
	)
	switch {
	case in != "" && dataset != "":
		return fmt.Errorf("-in and -dataset are mutually exclusive")
	case in != "":
		s, err = series.LoadFile(in)
	case dataset != "":
		s, err = gen.Dataset(dataset, n, seed)
	default:
		return fmt.Errorf("one of -in or -dataset is required")
	}
	if err != nil {
		return err
	}
	if err := s.Validate(); err != nil {
		return err
	}

	fmt.Printf("series: %s, range [%d, %d], k=%d, p=%d\n", s, lmin, lmax, opts.TopK, opts.P)
	if progress {
		opts.Progress = func(p valmod.Progress) {
			lr := p.Result
			fmt.Fprintf(os.Stderr, "  length %4d  (%d/%d)  pairs=%d cert=%d rec=%d full=%v\n",
				lr.Length, p.Done, p.Total, len(lr.Pairs), lr.Certified, lr.Recomputed, lr.FullRecompute)
		}
	}
	eng := valmod.NewEngine(opts)
	start := time.Now()
	res, err := eng.Discover(s.Values, lmin, lmax)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if !quiet {
		fmt.Println("\ndata:")
		fmt.Println(asciiplot.Sparkline(s.Values, 100))
		fmt.Printf("\nmatrix profile at lmin=%d:\n", lmin)
		fmt.Println(asciiplot.Sparkline(res.Profile, 100))
		fmt.Println("\nVALMAP MPn:")
		fmt.Println(asciiplot.Sparkline(res.VALMAP.MPn, 100))
		fmt.Println("\nVALMAP length profile:")
		lp := make([]float64, len(res.VALMAP.LP))
		for i, l := range res.VALMAP.LP {
			lp[i] = float64(l)
		}
		fmt.Println(asciiplot.Sparkline(lp, 100))
	}

	fmt.Printf("\ntop motifs across lengths (length-normalized):\n")
	for i, m := range res.TopMotifs(opts.TopK) {
		fmt.Printf("  %2d. offsets %6d / %-6d length %4d  d=%.4f  dn=%.4f\n",
			i+1, m.A, m.B, m.Length, m.Distance, m.NormDistance)
	}
	if len(res.Discords) > 0 {
		fmt.Printf("\ntop discords across lengths (length-normalized, most anomalous first):\n")
		for i, d := range res.Discords {
			fmt.Printf("  %2d. offset %6d  length %4d  d=%.4f  dn=%.4f\n",
				i+1, d.Offset, d.Length, d.Distance, d.NormDistance)
		}
	}

	if best, ok := res.BestOverall(); ok {
		set, err := res.MotifSet(best, 0)
		if err == nil {
			fmt.Printf("\nbest motif expands to %d occurrences: ", len(set))
			for i, mm := range set {
				if i > 0 {
					fmt.Print(", ")
				}
				fmt.Print(mm.Offset)
			}
			fmt.Println()
		}
	}

	certified, recomputed, full := 0, 0, 0
	for _, lr := range res.PerLength {
		certified += lr.Certified
		recomputed += lr.Recomputed
		if lr.FullRecompute {
			full++
		}
	}
	fmt.Printf("\n%d lengths in %s  (certified anchors %d, recomputed %d, full recomputes %d)\n",
		len(res.PerLength), elapsed.Round(time.Millisecond), certified, recomputed, full)
	if pl := res.Plan; pl.LBSkippedLengths > 0 || pl.StrideScanned > 0 {
		fmt.Printf("coarse-to-fine plan: %d lengths lb-skipped, %d stride-scanned, %d refined\n",
			pl.LBSkippedLengths, pl.StrideScanned, pl.RefinedLengths)
	}

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.VALMAP.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("VALMAP written to %s\n", out)
	}
	return nil
}
