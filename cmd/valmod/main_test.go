package main

import (
	"os"
	"path/filepath"
	"testing"

	valmod "github.com/seriesmining/valmod"
	"github.com/seriesmining/valmod/internal/valmap"
)

func TestRunWithDataset(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "vm.json")
	if err := run("", "sinemix", 1500, 1, 32, 64, valmod.Options{TopK: 3, P: 5}, false, out, true); err != nil {
		t.Fatal(err)
	}
	// The -discords path exercises the full-profile plan end to end.
	if err := run("", "sinemix", 800, 1, 16, 24, valmod.Options{TopK: 2, Discords: 3}, false, "", true); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	vm, err := valmap.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if vm.LMin != 32 || vm.LMax != 64 {
		t.Errorf("VALMAP range [%d,%d]", vm.LMin, vm.LMax)
	}
	if vm.Len() != 1500-32+1 {
		t.Errorf("VALMAP slots %d", vm.Len())
	}
}

func TestRunWithFile(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "data.txt")
	var content []byte
	for i := 0; i < 600; i++ {
		content = append(content, []byte("1.5\n2.5\n0.5\n-1\n")...)
	}
	if err := os.WriteFile(in, content, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(in, "", 0, 1, 8, 16, valmod.Options{TopK: 2, P: 3}, false, "", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunArgumentValidation(t *testing.T) {
	if err := run("", "", 100, 1, 8, 16, valmod.Options{TopK: 1, P: 1}, false, "", true); err == nil {
		t.Error("missing input should fail")
	}
	if err := run("x.txt", "ecg", 100, 1, 8, 16, valmod.Options{TopK: 1, P: 1}, false, "", true); err == nil {
		t.Error("both -in and -dataset should fail")
	}
	if err := run("", "nope", 100, 1, 8, 16, valmod.Options{TopK: 1, P: 1}, false, "", true); err == nil {
		t.Error("unknown dataset should fail")
	}
	if err := run("/nonexistent.txt", "", 100, 1, 8, 16, valmod.Options{TopK: 1, P: 1}, false, "", true); err == nil {
		t.Error("missing file should fail")
	}
	if err := run("", "ecg", 100, 1, 80, 16, valmod.Options{TopK: 1, P: 1}, false, "", true); err == nil {
		t.Error("inverted range should fail")
	}
}
