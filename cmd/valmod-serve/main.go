// Command valmod-serve exposes the suite as an HTTP service: clients
// submit variable-length motif-discovery jobs, stream per-length progress
// over SSE, cancel jobs, and share an LRU result cache so repeated queries
// on the same series cost nothing. Stream jobs (kind "stream") discover
// live over a growing series: POST /v1/jobs/{id}/append feeds chunks and
// the SSE channel emits motif/discord change events. It is the multi-user
// transport over the job manager in internal/service; the API is
// specified in docs/api.md and the concurrency model in ARCHITECTURE.md.
//
// With -data-dir the service is crash-safe: series, submissions, stream
// appends, per-length engine checkpoints, and job outcomes persist to a
// write-ahead log under the directory, and a restarted process replays it
// — terminal jobs answer status queries again, interrupted discoveries
// resume from their last checkpoint under their original IDs, interrupted
// streams rebuild from their logged appends. docs/operations.md is the
// operator's guide (layout, guarantees, recovery runbook).
//
// Usage:
//
//	valmod-serve [-addr :8422] [-max-concurrent 2] [-cache-entries 64]
//	             [-max-jobs 256] [-max-series 64] [-data-dir DIR]
//	             [-max-job-sec 0] [-checkpoint-every 8]
//
// Quick check once it is running:
//
//	curl -s localhost:8422/healthz
//	curl -s -X POST localhost:8422/v1/jobs -d '{"values":[...],"lmin":50,"lmax":400}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/seriesmining/valmod/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8422", "listen address")
		maxConc  = flag.Int("max-concurrent", 2, "discoveries running at once; further jobs queue")
		cache    = flag.Int("cache-entries", 64, "LRU result-cache capacity (negative disables)")
		maxJobs  = flag.Int("max-jobs", 256, "jobs retained for status queries (oldest finished evicted first)")
		maxSer   = flag.Int("max-series", 64, "uploaded series retained for reuse")
		maxBody  = flag.Int64("max-body-mb", 64, "request body cap in MiB (negative disables)")
		maxQueue = flag.Int("max-queue", 64, "live (queued+running) jobs admitted before submissions get 429")
		dataDir  = flag.String("data-dir", "", "directory for the write-ahead log; enables crash-safe restarts (empty = in-memory only)")
		maxSec   = flag.Int("max-job-sec", 0, "server-side cap on each discover job's executing wall-clock seconds; bounds client timeout_sec from above (0 = no cap)")
		ckptEv   = flag.Int("checkpoint-every", 8, "checkpoint cadence for durable discover jobs, in completed lengths")
	)
	flag.Parse()
	cfg := service.Config{
		MaxConcurrent:   *maxConc,
		CacheEntries:    *cache,
		MaxJobs:         *maxJobs,
		MaxSeries:       *maxSer,
		MaxBodyBytes:    *maxBody << 20,
		MaxQueue:        *maxQueue,
		MaxJobSeconds:   *maxSec,
		CheckpointEvery: *ckptEv,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *addr, *dataDir, cfg, nil); err != nil {
		fmt.Fprintln(os.Stderr, "valmod-serve:", err)
		os.Exit(1)
	}
}

// run serves until ctx is canceled, then shuts down gracefully. It is
// split from main (addr may be ":0", ready reports the bound address) so
// tests can drive it. A non-empty dataDir opens the write-ahead log and
// replays it before the listener accepts traffic, so recovered jobs are
// queryable from the first request.
func run(ctx context.Context, addr, dataDir string, cfg service.Config, ready func(net.Addr)) error {
	var wal *service.WAL
	if dataDir != "" {
		var err error
		wal, err = service.OpenWAL(dataDir)
		if err != nil {
			return err
		}
		defer wal.Close()
		cfg.Store = wal
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	m := service.NewManager(cfg)
	if wal != nil {
		if err := m.Recover(wal.Recovered()); err != nil {
			return err
		}
	}
	srv := &http.Server{
		Handler: service.NewServer(m),
		// Derive request contexts from ctx so long-lived handlers (SSE
		// streams) unblock when the shutdown signal arrives — otherwise
		// Shutdown would wait on them past its deadline.
		BaseContext: func(net.Listener) context.Context { return ctx },
		// Bound header reads and idle keep-alives so trickled requests
		// can't pin connections forever. No WriteTimeout: it would kill
		// long SSE streams.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	fmt.Fprintf(os.Stderr, "valmod-serve: listening on %s\n", ln.Addr())
	if ready != nil {
		ready(ln.Addr())
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Stop running discoveries first: they hold the semaphore and would
	// otherwise burn CPU until the process dies.
	m.Shutdown()
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
