package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"testing"
	"time"

	"github.com/seriesmining/valmod/internal/service"
)

// TestServeEndToEnd boots the server on an ephemeral port, submits a tiny
// job over HTTP, waits for it to finish, and shuts down gracefully.
func TestServeEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, "127.0.0.1:0", "", service.Config{MaxConcurrent: 1}, func(a net.Addr) { addrc <- a })
	}()
	var base string
	select {
	case a := <-addrc:
		base = "http://" + a.String()
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	values := make([]float64, 300)
	for i := range values {
		values[i] = float64(i%17) - float64(i%5)
	}
	body, _ := json.Marshal(service.JobRequest{Values: values, LMin: 8, LMax: 16, Workers: 1})
	post, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st service.Status
	if err := json.NewDecoder(post.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	deadline := time.Now().Add(30 * time.Second)
	for !st.State.Terminal() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
		r, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	if st.State != service.StateDone || st.Result == nil {
		t.Fatalf("job = %+v, want done with result", st)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// TestServeShutdownWithOpenSSE: SIGTERM (ctx cancel) while a long job is
// running and an SSE stream is attached must still shut down cleanly —
// the stream unblocks via the server's BaseContext and the manager
// force-cancels the discovery.
func TestServeShutdownWithOpenSSE(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, "127.0.0.1:0", "", service.Config{MaxConcurrent: 1}, func(a net.Addr) { addrc <- a })
	}()
	var base string
	select {
	case a := <-addrc:
		base = "http://" + a.String()
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	values := make([]float64, 6000)
	for i := range values {
		values[i] = float64(i%23) - float64(i%7)
	}
	body, _ := json.Marshal(service.JobRequest{Values: values, LMin: 16, LMax: 600, Workers: 1})
	post, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st service.Status
	if err := json.NewDecoder(post.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	post.Body.Close()

	// Attach an SSE stream and keep it open.
	sse, err := http.Get(base + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sse.Body.Close()
	sseDone := make(chan struct{})
	go func() {
		defer close(sseDone)
		buf := make([]byte, 4096)
		for {
			if _, err := sse.Body.Read(buf); err != nil {
				return
			}
		}
	}()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown with open SSE returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down while an SSE stream was open")
	}
	select {
	case <-sseDone:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream never terminated after shutdown")
	}
}
