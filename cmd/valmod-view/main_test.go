package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	valmod "github.com/seriesmining/valmod"
	"github.com/seriesmining/valmod/internal/gen"
)

// buildArtifacts produces a series file and a matching VALMAP JSON.
func buildArtifacts(t *testing.T) (vmPath, seriesPath string) {
	t.Helper()
	dir := t.TempDir()
	s := gen.SineMix(1200)
	seriesPath = filepath.Join(dir, "s.txt")
	if err := s.SaveFile(seriesPath); err != nil {
		t.Fatal(err)
	}
	res, err := valmod.Discover(s.Values, 24, 48, valmod.Options{TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	vmPath = filepath.Join(dir, "vm.json")
	f, err := os.Create(vmPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := res.VALMAP.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return vmPath, seriesPath
}

func TestViewRenders(t *testing.T) {
	vmPath, seriesPath := buildArtifacts(t)
	if err := run(vmPath, seriesPath, 0, 5, 0); err != nil {
		t.Fatal(err)
	}
	// Mid-range state with expansion of the top motif.
	if err := run(vmPath, seriesPath, 36, 5, 1); err != nil {
		t.Fatal(err)
	}
}

func TestViewValidation(t *testing.T) {
	vmPath, seriesPath := buildArtifacts(t)
	if err := run("", seriesPath, 0, 5, 0); err == nil {
		t.Error("missing -valmap should fail")
	}
	if err := run(vmPath, "", 0, 5, 0); err == nil {
		t.Error("missing -series should fail")
	}
	if err := run(vmPath, seriesPath, 7, 5, 0); err == nil {
		t.Error("out-of-range state length should fail")
	}
	// Mismatched series: wrong length.
	dir := t.TempDir()
	short := filepath.Join(dir, "short.txt")
	if err := os.WriteFile(short, []byte("1\n2\n3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(vmPath, short, 0, 5, 0); err == nil {
		t.Error("mismatched series should fail")
	}
}

func TestPairsFromState(t *testing.T) {
	mpn := []float64{0.5, math.Inf(1), 0.2}
	ip := []int{5, -1, 0}
	lp := []int{10, 0, 20}
	pairs := pairsFromState(mpn, ip, lp)
	if len(pairs) != 2 {
		t.Fatalf("pairs = %v", pairs)
	}
	// Sorted ascending by raw distance; pair ordering A < B enforced.
	if pairs[0].A != 0 || pairs[0].B != 2 || pairs[0].M != 20 {
		t.Errorf("pair 0 = %v", pairs[0])
	}
	if pairs[1].A != 0 || pairs[1].B != 5 {
		t.Errorf("pair 1 = %v", pairs[1])
	}
	// Raw distance recovery: mpn·√ℓ.
	wantRaw := 0.2 * math.Sqrt(20)
	if math.Abs(pairs[0].Dist-wantRaw) > 1e-12 {
		t.Errorf("raw dist %g, want %g", pairs[0].Dist, wantRaw)
	}
}
