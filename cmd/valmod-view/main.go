// Command valmod-view is the text front-end of the suite (the stand-in for
// the demo's Python GUI, Figures 4–5). It loads a VALMAP JSON produced by
// `valmod -valmap` plus the series it was computed from, and renders the
// three analysis surfaces the demo shows: the VALMAP state at a chosen
// checkpoint length (the GUI's slider), the top-k variable-length motifs,
// and the motif-set expansion of a selected pair.
//
// Usage:
//
//	valmod-view -valmap out.json -series data.txt [-at 120] [-expand 1] [-k 10]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"github.com/seriesmining/valmod/internal/asciiplot"
	"github.com/seriesmining/valmod/internal/motifset"
	"github.com/seriesmining/valmod/internal/profile"
	"github.com/seriesmining/valmod/internal/rank"
	"github.com/seriesmining/valmod/internal/series"
	"github.com/seriesmining/valmod/internal/valmap"
)

func main() {
	var (
		vmPath = flag.String("valmap", "", "VALMAP JSON file (from `valmod -valmap`)")
		sPath  = flag.String("series", "", "series file the VALMAP was computed from")
		at     = flag.Int("at", 0, "render the VALMAP state at this length (0 = final)")
		k      = flag.Int("k", 10, "motifs to list")
		expand = flag.Int("expand", 0, "expand the i-th listed motif (1-based) to its motif set")
	)
	flag.Parse()
	if err := run(*vmPath, *sPath, *at, *k, *expand); err != nil {
		fmt.Fprintln(os.Stderr, "valmod-view:", err)
		os.Exit(1)
	}
}

func run(vmPath, sPath string, at, k, expand int) error {
	if vmPath == "" || sPath == "" {
		return fmt.Errorf("-valmap and -series are required")
	}
	f, err := os.Open(vmPath)
	if err != nil {
		return err
	}
	vm, err := valmap.ReadJSON(f)
	f.Close()
	if err != nil {
		return err
	}
	s, err := series.LoadFile(sPath)
	if err != nil {
		return err
	}
	if s.Len()-vm.LMin+1 != vm.Len() {
		return fmt.Errorf("series (%d points) does not match VALMAP (%d slots at lmin=%d)", s.Len(), vm.Len(), vm.LMin)
	}

	if at == 0 {
		at = vm.LMax
	}
	mpn, ip, lp, err := vm.StateAt(at)
	if err != nil {
		return err
	}

	fmt.Printf("VALMAP %s  range [%d,%d]  state at length %d  (%d checkpoints)\n",
		vmPath, vm.LMin, vm.LMax, at, len(vm.Checkpoints))
	fmt.Println("\nseries:")
	fmt.Println(asciiplot.Sparkline(s.Values, 100))
	fmt.Println("\nMPn:")
	fmt.Println(asciiplot.Sparkline(mpn, 100))
	lpf := make([]float64, len(lp))
	for i, v := range lp {
		lpf[i] = float64(v)
	}
	fmt.Println("\nlength profile:")
	fmt.Println(asciiplot.Sparkline(lpf, 100))

	fmt.Println("\ncheckpoints (length: updates):")
	for _, cp := range vm.Checkpoints {
		marker := " "
		if cp.L <= at {
			marker = "*"
		}
		fmt.Printf("  %s %4d: %d updates\n", marker, cp.L, len(cp.Updates))
	}

	// Top-k motifs from the VALMAP state: best cells, deduped across
	// overlapping intervals.
	pairs := pairsFromState(mpn, ip, lp)
	top := rank.TopK(pairs, k, 0)
	fmt.Printf("\ntop-%d motifs of variable length:\n", k)
	for i, p := range top {
		fmt.Printf("  %2d. offsets %6d / %-6d length %4d  dn=%.4f\n", i+1, p.A, p.B, p.M, p.NormDist())
	}

	if expand > 0 && expand <= len(top) {
		p := top[expand-1]
		// The VALMAP stores the normalized distance; recover the raw one.
		raw := series.ZNormDist(s.Values[p.A:p.A+p.M], s.Values[p.B:p.B+p.M])
		p.Dist = raw
		set, err := motifset.Expand(s.Values, p, 0, 0)
		if err != nil {
			return err
		}
		fmt.Printf("\nmotif set of #%d (radius %.3f): %d occurrences\n", expand, set.Radius, set.Size())
		for _, m := range set.Members {
			fmt.Printf("    offset %6d  d=%.4f\n", m.I, m.Dist)
		}
		fmt.Println("\noccurrence positions:")
		fmt.Println(asciiplot.Sparkline(s.Values, 100))
		fmt.Println(asciiplot.Mark(s.Len(), 100, set.Offsets()...))
	}
	return nil
}

// pairsFromState lifts VALMAP cells into motif pairs (finite cells only).
func pairsFromState(mpn []float64, ip, lp []int) []profile.MotifPair {
	var out []profile.MotifPair
	for i := range mpn {
		if ip[i] < 0 || math.IsInf(mpn[i], 1) || lp[i] < 2 {
			continue
		}
		a, b := i, ip[i]
		if a > b {
			a, b = b, a
		}
		// MPn stores d·√(1/ℓ); recover the raw distance for the pair record.
		out = append(out, profile.MotifPair{A: a, B: b, M: lp[i], Dist: mpn[i] * math.Sqrt(float64(lp[i]))})
	}
	sort.Slice(out, func(x, y int) bool { return out[x].Dist < out[y].Dist })
	return out
}
