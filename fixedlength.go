package valmod

import (
	"fmt"
	"math"

	"github.com/seriesmining/valmod/internal/mass"
	"github.com/seriesmining/valmod/internal/profile"
	"github.com/seriesmining/valmod/internal/stomp"
)

// FixedProfile is a classic fixed-length matrix profile (Matrix Profile
// I/II), the structure in demo Figure 1(b–c).
type FixedProfile struct {
	// Length is the subsequence length.
	Length int
	// Dist[i] is the z-normalized distance from subsequence i to its
	// nearest non-trivial neighbor; Index[i] is that neighbor's offset.
	Dist  []float64
	Index []int
}

// asInternal rebuilds the internal representation (the exclusion zone is
// recoverable from the length).
func (fp *FixedProfile) asInternal() *profile.MatrixProfile {
	return &profile.MatrixProfile{
		M:         fp.Length,
		Exclusion: profile.ExclusionZone(fp.Length, 0),
		Dist:      fp.Dist,
		Index:     fp.Index,
	}
}

// TopPairs extracts the k best non-overlapping motif pairs.
func (fp *FixedProfile) TopPairs(k int) []MotifPair {
	pairs := fp.asInternal().TopKPairs(k)
	out := make([]MotifPair, len(pairs))
	for i, p := range pairs {
		out[i] = fromInternal(p)
	}
	return out
}

// Discords extracts the k most anomalous subsequences (largest
// nearest-neighbor distance), de-duplicated by the trivial-match zone.
// The result shares the Discord wire DTO with the variable-length
// Result.Discords; Length is the profile's fixed length on every entry.
func (fp *FixedProfile) Discords(k int) []Discord {
	ds := fp.asInternal().TopKDiscords(k)
	norm := math.Sqrt(1 / float64(fp.Length))
	out := make([]Discord, len(ds))
	for i, d := range ds {
		out[i] = Discord{Offset: d.I, Length: fp.Length, Distance: d.Dist, NormDistance: d.Dist * norm}
	}
	return out
}

// MatrixProfile computes the exact fixed-length matrix profile of values at
// subsequence length m, using all CPU cores when parallel is true.
func MatrixProfile(values []float64, m int, parallel bool) (*FixedProfile, error) {
	var (
		mp  *profile.MatrixProfile
		err error
	)
	if parallel {
		mp, err = stomp.ComputeParallel(values, m, 0, 0)
	} else {
		mp, err = stomp.Compute(values, m, 0)
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return &FixedProfile{Length: m, Dist: mp.Dist, Index: mp.Index}, nil
}

// DistanceProfile returns the z-normalized Euclidean distance from query to
// every subsequence of series (MASS, O(n log n)). It errors when the query
// is empty or longer than the series.
func DistanceProfile(query, series []float64) ([]float64, error) {
	if len(query) == 0 || len(query) > len(series) {
		return nil, fmt.Errorf("%w: query length %d vs series %d", ErrBadInput, len(query), len(series))
	}
	return mass.DistanceProfile(query, series), nil
}

// JoinProfile computes the AB-join matrix profile at subsequence length m:
// for every subsequence of a, the distance to its nearest neighbor among
// the subsequences of b. Index values refer to offsets in b; no exclusion
// zone applies because cross-series matches are never trivial.
func JoinProfile(a, b []float64, m int) (*FixedProfile, error) {
	mp, err := stomp.ComputeAB(a, b, m)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return &FixedProfile{Length: m, Dist: mp.Dist, Index: mp.Index}, nil
}
