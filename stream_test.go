package valmod_test

// The public half of the streaming equivalence harness: any chunking of a
// series through Stream.Append is tolerance-equivalent to one-shot
// Discover over the same points, and a fixed chunking is bit-identical at
// every worker count. The internal harness (internal/core/stream_test.go)
// pins the same properties against the core engine plus eviction and
// chunking invariance; this file pins them through the public API on the
// realistic generated datasets.

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	valmod "github.com/seriesmining/valmod"
	"github.com/seriesmining/valmod/internal/gen"
)

// chunkSplit cuts n points into random chunks, forcing 1-point chunks and
// chunks whose boundaries land inside a subsequence window.
func chunkSplit(rng *rand.Rand, n, maxChunk int) []int {
	var out []int
	pos := 0
	for pos < n {
		c := 1 + rng.Intn(maxChunk)
		if rng.Intn(5) == 0 {
			c = 1
		}
		if pos+c > n {
			c = n - pos
		}
		out = append(out, c)
		pos += c
	}
	return out
}

// feed streams x through a fresh Stream in the given chunk sizes.
func feed(t *testing.T, lmin, lmax int, opts valmod.Options, x []float64, chunks []int) *valmod.Stream {
	t.Helper()
	st, err := valmod.NewStream(lmin, lmax, opts)
	if err != nil {
		t.Fatal(err)
	}
	pos := 0
	for _, c := range chunks {
		if err := st.Append(x[pos : pos+c]); err != nil {
			t.Fatalf("append at %d: %v", pos, err)
		}
		pos += c
	}
	return st
}

// assertEquivalent compares a stream snapshot to a batch Discover result:
// per-length pair lists rank-wise (equal distances within tolerance,
// identities checked with a true-tie allowance) and the discord ranking.
func assertEquivalent(t *testing.T, tag string, got, want *valmod.Result) {
	t.Helper()
	if got.N != want.N || got.LMin != want.LMin || got.LMax != want.LMax {
		t.Fatalf("%s: shape (N=%d,[%d,%d]), want (N=%d,[%d,%d])",
			tag, got.N, got.LMin, got.LMax, want.N, want.LMin, want.LMax)
	}
	if len(got.PerLength) != len(want.PerLength) {
		t.Fatalf("%s: %d lengths, want %d", tag, len(got.PerLength), len(want.PerLength))
	}
	for i := range got.PerLength {
		g, w := got.PerLength[i], want.PerLength[i]
		if g.Length != w.Length || len(g.Pairs) != len(w.Pairs) {
			t.Fatalf("%s: slot %d has m=%d/%d pairs, want m=%d/%d", tag, i, g.Length, len(g.Pairs), w.Length, len(w.Pairs))
		}
		for r := range g.Pairs {
			gp, wp := g.Pairs[r], w.Pairs[r]
			if math.Abs(gp.Distance-wp.Distance) > 1e-6*(1+wp.Distance) {
				t.Fatalf("%s: m=%d rank %d dist %g, want %g", tag, g.Length, r, gp.Distance, wp.Distance)
			}
			if (gp.A != wp.A || gp.B != wp.B) && math.Abs(gp.Distance-wp.Distance) > 1e-9*(1+wp.Distance) {
				t.Fatalf("%s: m=%d rank %d pair (%d,%d), want (%d,%d)", tag, g.Length, r, gp.A, gp.B, wp.A, wp.B)
			}
		}
	}
	if len(got.Discords) != len(want.Discords) {
		t.Fatalf("%s: %d discords, want %d", tag, len(got.Discords), len(want.Discords))
	}
	for i := range got.Discords {
		g, w := got.Discords[i], want.Discords[i]
		if math.Abs(g.NormDistance-w.NormDistance) > 1e-6*(1+w.NormDistance) {
			t.Fatalf("%s: discord %d norm dist %g, want %g", tag, i, g.NormDistance, w.NormDistance)
		}
		if (g.Offset != w.Offset || g.Length != w.Length) && math.Abs(g.NormDistance-w.NormDistance) > 1e-9*(1+w.NormDistance) {
			t.Fatalf("%s: discord %d (off=%d,len=%d), want (off=%d,len=%d)", tag, i, g.Offset, g.Length, w.Offset, w.Length)
		}
	}
}

// TestAppendEqualsBatch is the headline property: random chunk splits —
// 1-point chunks and window-straddling boundaries included — of ecg,
// astro and generated random-walk series match batch Discover at workers
// 1 and 4, and a fixed chunking is bit-identical across worker counts.
func TestAppendEqualsBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	walk := make([]float64, 640)
	v := 0.0
	for i := range walk {
		v += rng.NormFloat64()
		walk[i] = v
	}
	datasets := map[string][]float64{
		"ecg":       gen.ECG(640, 7).Values,
		"astro":     gen.Astro(640, 7).Values,
		"generated": walk,
	}
	const lmin, lmax = 8, 40
	opts := valmod.Options{TopK: 3, Discords: 3}
	for name, x := range datasets {
		want, err := valmod.Discover(x, lmin, lmax, opts)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 3; trial++ {
			chunks := chunkSplit(rng, len(x), 80)
			var perWorkers []*valmod.Result
			for _, workers := range []int{1, 4} {
				o := opts
				o.Workers = workers
				st := feed(t, lmin, lmax, o, x, chunks)
				got, err := st.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				assertEquivalent(t, name, got, want)
				perWorkers = append(perWorkers, got)
			}
			// Fixed chunking: worker count must not change a single bit.
			if !reflect.DeepEqual(perWorkers[0], perWorkers[1]) {
				t.Fatalf("%s trial %d: workers=1 and workers=4 snapshots differ bitwise", name, trial)
			}
		}
	}
}

// TestStreamSlidingWindowPublic exercises WindowCap through the public
// API: a capped stream equals Discover over the trailing window.
func TestStreamSlidingWindowPublic(t *testing.T) {
	x := gen.ECG(900, 11).Values
	const lmin, lmax, cap = 8, 32, 384
	opts := valmod.Options{TopK: 2, Discords: 2, WindowCap: cap, Workers: 2}
	st, err := valmod.NewStream(lmin, lmax, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	pos := 0
	for pos < len(x) {
		c := 1 + rng.Intn(70)
		if pos+c > len(x) {
			c = len(x) - pos
		}
		if err := st.Append(x[pos : pos+c]); err != nil {
			t.Fatal(err)
		}
		pos += c
	}
	if st.N() != cap || st.Start() != len(x)-cap || st.Total() != len(x) {
		t.Fatalf("N=%d Start=%d Total=%d, want %d/%d/%d", st.N(), st.Start(), st.Total(), cap, len(x)-cap, len(x))
	}
	got, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	bopts := opts
	bopts.WindowCap = 0
	want, err := valmod.Discover(x[len(x)-cap:], lmin, lmax, bopts)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, "sliding", got, want)
}

// TestStreamValidationPublic pins the public error contract.
func TestStreamValidationPublic(t *testing.T) {
	if _, err := valmod.NewStream(2, 8, valmod.Options{}); err == nil {
		t.Fatal("lmin=2: want error")
	}
	if _, err := valmod.NewStream(8, 32, valmod.Options{WindowCap: 31}); err == nil {
		t.Fatal("WindowCap < lmax: want error")
	}
	if _, err := valmod.NewStream(8, 32, valmod.Options{WindowCap: -1}); err == nil {
		t.Fatal("WindowCap < 0: want error")
	}
	st, err := valmod.NewStream(8, 16, valmod.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append([]float64{1, math.NaN()}); err == nil {
		t.Fatal("NaN append: want error")
	}
	if _, err := st.Snapshot(); err == nil {
		t.Fatal("snapshot on empty stream: want error")
	}
	if st.Ready() {
		t.Fatal("empty stream reports Ready")
	}
	x := gen.SineMix(64).Values
	if err := st.Append(x); err != nil {
		t.Fatal(err)
	}
	if !st.Ready() {
		t.Fatal("stream with 64 points not Ready")
	}
	if res, err := st.Snapshot(); err != nil || len(res.PerLength) == 0 {
		t.Fatalf("snapshot: %v", err)
	}
	if _, ok := st.BestPair(); !ok {
		t.Fatal("BestPair on a 64-point sine: want a pair")
	}
}
