// Package quickmotif reimplements QUICKMOTIF (Li, U, Yiu, Gong, ICDE 2015)
// for the paper's comparative evaluation: exact fixed-length motif pair
// discovery that avoids the full O(n²) join by (1) summarizing every
// z-normalized subsequence with a PAA sketch, (2) packing consecutive
// offsets into MBR blocks (consecutive subsequences are near-identical, so
// their boxes are tight — the insight the original exploits with an R-tree),
// (3) exploring block pairs best-first by MBR MINDIST, and (4) verifying
// surviving candidate pairs with early-abandoning exact distances.
//
// Faithfulness note (DESIGN.md §5): the original's R-tree is replaced by
// offset-ordered blocks with the same bounding and the same best-first
// refinement loop; output is exact (tested against brute force), constants
// differ.
package quickmotif

import (
	"container/heap"
	"context"
	"math"

	"github.com/seriesmining/valmod/internal/baseline"
	"github.com/seriesmining/valmod/internal/profile"
	"github.com/seriesmining/valmod/internal/series"
)

// Defaults for the sketch and block granularity.
const (
	DefaultPAASize   = 8
	DefaultBlockSize = 32
)

// Config parameterizes a QUICKMOTIF run.
type Config struct {
	LMin, LMax      int
	ExclusionFactor int // default 4
	PAASize         int // sketch dimensions (default 8)
	BlockSize       int // offsets per MBR block (default 32)
}

// Run returns the exact best motif pair for every length in [LMin, LMax],
// mirroring the evaluation's range adaptation of the fixed-length original.
func Run(ctx context.Context, t []float64, cfg Config) ([]baseline.LengthResult, error) {
	if cfg.PAASize <= 0 {
		cfg.PAASize = DefaultPAASize
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = DefaultBlockSize
	}
	var out []baseline.LengthResult
	var prev profile.MotifPair
	havePrev := false
	for m := cfg.LMin; m <= cfg.LMax; m++ {
		if baseline.Canceled(ctx) {
			return out, baseline.ErrCanceled
		}
		var seed []profile.MotifPair
		if havePrev && prev.A+m <= len(t) && prev.B+m <= len(t) {
			seed = append(seed, profile.MotifPair{A: prev.A, B: prev.B, M: m})
		}
		pair, ok := bestPair(t, m, cfg, seed)
		lr := baseline.LengthResult{M: m}
		if ok {
			lr.Pairs = []profile.MotifPair{pair}
			prev, havePrev = pair, true
		}
		out = append(out, lr)
	}
	return out, nil
}

// block is an MBR over the PAA sketches of a contiguous offset range.
type block struct {
	lo, hi   int // offset range [lo, hi)
	min, max []float64
}

// blockPair is a heap item: a pair of blocks keyed by MINDIST.
type blockPair struct {
	a, b    int
	minDist float64
}

type pairHeap []blockPair

func (h pairHeap) Len() int            { return len(h) }
func (h pairHeap) Less(i, j int) bool  { return h[i].minDist < h[j].minDist }
func (h pairHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x interface{}) { *h = append(*h, x.(blockPair)) }
func (h *pairHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// bestPair finds the exact motif pair at length m.
func bestPair(t []float64, m int, cfg Config, seed []profile.MotifPair) (profile.MotifPair, bool) {
	n := len(t)
	s := n - m + 1
	excl := profile.ExclusionZone(m, cfg.ExclusionFactor)
	if s <= excl || m < 2 {
		return profile.MotifPair{}, false
	}
	w := cfg.PAASize
	if w > m {
		w = m
	}
	means, stds := series.SlidingMeanStd(t, m)
	// Sketches carry the √(segment length) weight, so the plain Euclidean
	// distance between sketches lower-bounds the true distance even when m
	// does not divide evenly into w segments.
	paa := buildPAA(t, m, w, means, stds)

	bsf := math.Inf(1)
	best := profile.MotifPair{M: m}
	found := false
	try := func(a, b int) {
		if a > b {
			a, b = b, a
		}
		if b-a < excl {
			return
		}
		d := earlyAbandonDist(t, a, b, m, means, stds, bsf)
		if d < bsf {
			bsf = d
			best = profile.MotifPair{A: a, B: b, M: m, Dist: d}
			found = true
		}
	}
	for _, p := range seed {
		try(p.A, p.B)
	}
	// Cheap bsf seeding: a diagonal sample of pairs.
	for step := excl; step < s; step += maxInt(excl, s/64+1) {
		for i := 0; i+step < s; i += maxInt(1, s/64) {
			try(i, i+step)
		}
	}

	// Build blocks over consecutive offsets.
	bs := cfg.BlockSize
	var blocks []block
	for lo := 0; lo < s; lo += bs {
		hi := lo + bs
		if hi > s {
			hi = s
		}
		blk := block{lo: lo, hi: hi, min: make([]float64, w), max: make([]float64, w)}
		for d := 0; d < w; d++ {
			blk.min[d] = math.Inf(1)
			blk.max[d] = math.Inf(-1)
		}
		for i := lo; i < hi; i++ {
			row := paa[i]
			for d := 0; d < w; d++ {
				if row[d] < blk.min[d] {
					blk.min[d] = row[d]
				}
				if row[d] > blk.max[d] {
					blk.max[d] = row[d]
				}
			}
		}
		blocks = append(blocks, blk)
	}

	// Best-first over block pairs by MBR MINDIST.
	h := &pairHeap{}
	heap.Init(h)
	for a := 0; a < len(blocks); a++ {
		for b := a; b < len(blocks); b++ {
			// Skip block pairs whose widest offset gap is still trivial.
			if blocks[b].hi-1-blocks[a].lo < excl {
				continue
			}
			md := mbrMinDist(blocks[a], blocks[b])
			heap.Push(h, blockPair{a: a, b: b, minDist: md})
		}
	}
	for h.Len() > 0 {
		bp := heap.Pop(h).(blockPair)
		if bp.minDist >= bsf {
			break // best-first: everything later is at least this far
		}
		A, B := blocks[bp.a], blocks[bp.b]
		for i := A.lo; i < A.hi; i++ {
			jStart := B.lo
			if bp.a == bp.b {
				jStart = i + 1
			}
			for j := jStart; j < B.hi; j++ {
				if absInt(j-i) < excl {
					continue
				}
				// Per-pair PAA lower bound before the exact distance.
				if paaDist(paa[i], paa[j]) >= bsf {
					continue
				}
				try(i, j)
			}
		}
	}
	return best, found
}

// buildPAA computes the w-dimensional weighted PAA sketch of every
// z-normalized subsequence with one cumulative-sum pass. Dimension d holds
// √(segLen_d)·(segment mean of the z-normalized window), so that for any
// two windows ||x−y|| ≥ ||sketch(x)−sketch(y)|| — the per-segment
// Cauchy–Schwarz bound, valid for uneven segments. Degenerate windows
// sketch to zeros (their z-normalization is the zero vector).
func buildPAA(t []float64, m, w int, means, stds []float64) [][]float64 {
	n := len(t)
	s := n - m + 1
	cum := make([]float64, n+1)
	for i, v := range t {
		cum[i+1] = cum[i] + v
	}
	// Segment boundaries: segment d covers [seg[d], seg[d+1]) within the window.
	seg := make([]int, w+1)
	for d := 0; d <= w; d++ {
		seg[d] = d * m / w
	}
	weights := make([]float64, w)
	for d := 0; d < w; d++ {
		weights[d] = math.Sqrt(float64(seg[d+1] - seg[d]))
	}
	out := make([][]float64, s)
	flat := make([]float64, s*w)
	for i := 0; i < s; i++ {
		row := flat[i*w : (i+1)*w]
		out[i] = row
		sd := stds[i]
		if sd == 0 {
			continue
		}
		mu := means[i]
		for d := 0; d < w; d++ {
			a, b := i+seg[d], i+seg[d+1]
			segLen := float64(b - a)
			row[d] = weights[d] * ((cum[b]-cum[a])/segLen - mu) / sd
		}
	}
	return out
}

// paaDist is the Euclidean distance between two sketches.
func paaDist(a, b []float64) float64 {
	var acc float64
	for d := range a {
		diff := a[d] - b[d]
		acc += diff * diff
	}
	return math.Sqrt(acc)
}

// mbrMinDist is the minimum possible sketch distance between any point of
// block a and any point of block b (0 when the boxes overlap per-dim).
func mbrMinDist(a, b block) float64 {
	var acc float64
	for d := range a.min {
		var gap float64
		switch {
		case a.max[d] < b.min[d]:
			gap = b.min[d] - a.max[d]
		case b.max[d] < a.min[d]:
			gap = a.min[d] - b.max[d]
		}
		acc += gap * gap
	}
	return math.Sqrt(acc)
}

// earlyAbandonDist is the exact z-normalized distance with a running-sum
// cutoff (identical convention to the rest of the suite).
func earlyAbandonDist(t []float64, a, b, m int, means, stds []float64, cutoff float64) float64 {
	sdA, sdB := stds[a], stds[b]
	fm := float64(m)
	if sdA == 0 && sdB == 0 {
		return 0
	}
	if sdA == 0 || sdB == 0 {
		return math.Sqrt(2 * fm)
	}
	muA, muB := means[a], means[b]
	limit := math.Inf(1)
	if !math.IsInf(cutoff, 1) {
		limit = cutoff * cutoff
	}
	var acc float64
	for i := 0; i < m; i++ {
		da := (t[a+i] - muA) / sdA
		db := (t[b+i] - muB) / sdB
		diff := da - db
		acc += diff * diff
		if acc >= limit {
			return math.Sqrt(acc)
		}
	}
	return math.Sqrt(acc)
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
