package baseline

import (
	"context"
	"testing"

	"github.com/seriesmining/valmod/internal/profile"
)

func TestBest(t *testing.T) {
	lr := LengthResult{M: 10}
	if _, ok := lr.Best(); ok {
		t.Error("empty result should have no best")
	}
	lr.Pairs = []profile.MotifPair{{A: 1, B: 9, M: 10, Dist: 0.5}}
	p, ok := lr.Best()
	if !ok || p.A != 1 {
		t.Errorf("Best = %v %v", p, ok)
	}
}

func TestCanceled(t *testing.T) {
	if Canceled(context.Background()) {
		t.Error("background context should not be canceled")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if !Canceled(ctx) {
		t.Error("canceled context not detected")
	}
}
