package baseline_test

// Cross-baseline exactness tests: every algorithm in the comparative
// evaluation must produce the same best motif pair distance per length as
// brute-force STOMP, on both unstructured and structured data.

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/seriesmining/valmod/internal/baseline"
	"github.com/seriesmining/valmod/internal/baseline/moen"
	"github.com/seriesmining/valmod/internal/baseline/quickmotif"
	"github.com/seriesmining/valmod/internal/baseline/stomprange"
	"github.com/seriesmining/valmod/internal/stomp"
)

func randWalk(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	v := 0.0
	for i := range x {
		v += rng.NormFloat64()
		x[i] = v
	}
	return x
}

func sineMix(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		f := float64(i)
		x[i] = math.Sin(f*0.19) + 0.6*math.Sin(f*0.037) + 0.25*math.Sin(f*0.011)
	}
	return x
}

// wantBest computes the reference best distance per length via STOMP.
func wantBest(t *testing.T, x []float64, lmin, lmax int) []float64 {
	t.Helper()
	out := make([]float64, 0, lmax-lmin+1)
	for m := lmin; m <= lmax; m++ {
		mp, err := stomp.Compute(x, m, 0)
		if err != nil {
			t.Fatal(err)
		}
		pairs := mp.TopKPairs(1)
		if len(pairs) == 0 {
			out = append(out, math.Inf(1))
		} else {
			out = append(out, pairs[0].Dist)
		}
	}
	return out
}

func checkAgainstReference(t *testing.T, tag string, got []baseline.LengthResult, want []float64, lmin int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d lengths, want %d", tag, len(got), len(want))
	}
	for i, lr := range got {
		if lr.M != lmin+i {
			t.Fatalf("%s: result %d has m=%d, want %d", tag, i, lr.M, lmin+i)
		}
		best, ok := lr.Best()
		if math.IsInf(want[i], 1) {
			if ok {
				t.Fatalf("%s m=%d: found pair %v where reference has none", tag, lr.M, best)
			}
			continue
		}
		if !ok {
			t.Fatalf("%s m=%d: no pair, reference %g", tag, lr.M, want[i])
		}
		if math.Abs(best.Dist-want[i]) > 1e-6*(1+want[i]) {
			t.Fatalf("%s m=%d: dist %g, want %g (pair %v)", tag, lr.M, best.Dist, want[i], best)
		}
	}
}

func TestSTOMPRangeExact(t *testing.T) {
	x := randWalk(1, 300)
	want := wantBest(t, x, 8, 32)
	got, err := stomprange.Run(context.Background(), x, stomprange.Config{LMin: 8, LMax: 32})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, "stomprange", got, want, 8)
}

func TestSTOMPRangeParallelExact(t *testing.T) {
	x := randWalk(2, 300)
	want := wantBest(t, x, 8, 24)
	got, err := stomprange.Run(context.Background(), x,
		stomprange.Config{LMin: 8, LMax: 24, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, "stomprange-parallel", got, want, 8)
}

func TestMOENExactRandomWalk(t *testing.T) {
	x := randWalk(3, 350)
	want := wantBest(t, x, 8, 40)
	got, err := moen.Run(context.Background(), x, moen.Config{LMin: 8, LMax: 40})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, "moen", got, want, 8)
}

func TestMOENExactStructured(t *testing.T) {
	x := sineMix(400)
	want := wantBest(t, x, 16, 48)
	got, err := moen.Run(context.Background(), x, moen.Config{LMin: 16, LMax: 48})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, "moen-structured", got, want, 16)
}

func TestQuickMotifExactRandomWalk(t *testing.T) {
	x := randWalk(4, 350)
	want := wantBest(t, x, 8, 40)
	got, err := quickmotif.Run(context.Background(), x, quickmotif.Config{LMin: 8, LMax: 40})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, "quickmotif", got, want, 8)
}

func TestQuickMotifExactStructured(t *testing.T) {
	x := sineMix(400)
	want := wantBest(t, x, 16, 48)
	got, err := quickmotif.Run(context.Background(), x, quickmotif.Config{LMin: 16, LMax: 48})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, "quickmotif-structured", got, want, 16)
}

func TestQuickMotifOddSegmentSizes(t *testing.T) {
	// m not divisible by the PAA size: the weighted sketch must stay a
	// valid lower bound (regression test for uneven-segment handling).
	x := randWalk(5, 300)
	want := wantBest(t, x, 10, 13)
	got, err := quickmotif.Run(context.Background(), x,
		quickmotif.Config{LMin: 10, LMax: 13, PAASize: 8, BlockSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, "quickmotif-odd", got, want, 10)
}

func TestBaselinesHonorCancellation(t *testing.T) {
	x := randWalk(6, 2000)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	time.Sleep(2 * time.Millisecond)
	if _, err := stomprange.Run(ctx, x, stomprange.Config{LMin: 64, LMax: 256}); err != baseline.ErrCanceled {
		t.Errorf("stomprange: err = %v, want ErrCanceled", err)
	}
	if _, err := moen.Run(ctx, x, moen.Config{LMin: 64, LMax: 256}); err != baseline.ErrCanceled {
		t.Errorf("moen: err = %v, want ErrCanceled", err)
	}
	if _, err := quickmotif.Run(ctx, x, quickmotif.Config{LMin: 64, LMax: 256}); err != baseline.ErrCanceled {
		t.Errorf("quickmotif: err = %v, want ErrCanceled", err)
	}
}

func TestMOENSmallReferenceCount(t *testing.T) {
	x := randWalk(7, 150)
	want := wantBest(t, x, 8, 16)
	got, err := moen.Run(context.Background(), x, moen.Config{LMin: 8, LMax: 16, References: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstReference(t, "moen-1ref", got, want, 8)
}
