package moen

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/seriesmining/valmod/internal/baseline"
	"github.com/seriesmining/valmod/internal/stomp"
)

func randWalk(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	v := 0.0
	for i := range x {
		v += rng.NormFloat64()
		x[i] = v
	}
	return x
}

func sineMix(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		f := float64(i)
		x[i] = math.Sin(f*0.21) + 0.5*math.Sin(f*0.043) + 0.2*math.Sin(f*0.009)
	}
	return x
}

// assertAgreesWithBrute checks that every length's best pair matches the
// brute-force matrix profile motif in distance (offsets may differ only
// under an exact distance tie).
func assertAgreesWithBrute(t *testing.T, x []float64, out []baseline.LengthResult, lmin int) {
	t.Helper()
	for i, lr := range out {
		m := lmin + i
		if lr.M != m {
			t.Fatalf("result %d has length %d, want %d", i, lr.M, m)
		}
		mp, err := stomp.Brute(x, m, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := mp.TopKPairs(1)
		got, ok := lr.Best()
		if len(want) == 0 {
			if ok {
				t.Fatalf("m=%d: got %v, brute found no pair", m, got)
			}
			continue
		}
		if !ok {
			t.Fatalf("m=%d: no pair, brute found %v", m, want[0])
		}
		if math.Abs(got.Dist-want[0].Dist) > 1e-6*(1+want[0].Dist) {
			t.Fatalf("m=%d: dist %g, brute %g (got %v, want %v)", m, got.Dist, want[0].Dist, got, want[0])
		}
	}
}

func TestAgreesWithBruteOnRandomWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := randWalk(rng, 260)
	out, err := Run(context.Background(), x, Config{LMin: 8, LMax: 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 24-8+1 {
		t.Fatalf("%d lengths", len(out))
	}
	assertAgreesWithBrute(t, x, out, 8)
}

func TestAgreesWithBruteOnStructuredData(t *testing.T) {
	x := sineMix(300)
	out, err := Run(context.Background(), x, Config{LMin: 10, LMax: 30})
	if err != nil {
		t.Fatal(err)
	}
	assertAgreesWithBrute(t, x, out, 10)
}

func TestAgreesWithBruteFewReferences(t *testing.T) {
	// One reference degrades pruning, never exactness.
	rng := rand.New(rand.NewSource(12))
	x := randWalk(rng, 200)
	out, err := Run(context.Background(), x, Config{LMin: 8, LMax: 16, References: 1})
	if err != nil {
		t.Fatal(err)
	}
	assertAgreesWithBrute(t, x, out, 8)
}

func TestCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := randWalk(rng, 200)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := Run(ctx, x, Config{LMin: 8, LMax: 32})
	if !errors.Is(err, baseline.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if len(out) != 0 {
		t.Fatalf("%d lengths completed under a pre-canceled context", len(out))
	}
}
