// Package moen reimplements MOEN (Mueen, "Enumeration of Time Series Motifs
// of All Lengths", ICDM 2013): the exact best motif pair for every length in
// a range, computed without a full O(n²) join per length.
//
// Faithfulness note (DESIGN.md §5): the original binary is closed; this
// implementation keeps MOEN's architecture — enumerate lengths, carry the
// previous length's best pair forward as the initial best-so-far, prune
// candidate pairs with reference-distance lower bounds (the MK ordering
// Mueen's family of algorithms is built on), verify survivors with
// early-abandoning z-normalized distances. It is exact: every reported pair
// equals the STOMP motif at that length (tested against brute force).
//
// The reference bound relies on the z-normalized distance being a metric on
// the z-normalized vectors, so degenerate (constant) windows — whose
// reported distance follows the √(2m) convention, larger than the metric
// value √m — are bounded with the metric-true value, which only loosens the
// pruning and never sacrifices exactness.
package moen

import (
	"context"
	"math"
	"sort"

	"github.com/seriesmining/valmod/internal/baseline"
	"github.com/seriesmining/valmod/internal/fft"
	"github.com/seriesmining/valmod/internal/profile"
	"github.com/seriesmining/valmod/internal/series"
)

// DefaultReferences is the number of reference subsequences used for the
// pruning order.
const DefaultReferences = 4

// Config parameterizes a MOEN run.
type Config struct {
	LMin, LMax      int
	ExclusionFactor int // default 4
	References      int // default 4
}

// Run returns the exact best motif pair of every length in [LMin, LMax].
// On context expiry it returns the completed lengths with ErrCanceled.
func Run(ctx context.Context, t []float64, cfg Config) ([]baseline.LengthResult, error) {
	if cfg.References <= 0 {
		cfg.References = DefaultReferences
	}
	var out []baseline.LengthResult
	var prev profile.MotifPair
	havePrev := false
	for m := cfg.LMin; m <= cfg.LMax; m++ {
		if baseline.Canceled(ctx) {
			return out, baseline.ErrCanceled
		}
		var seed []profile.MotifPair
		if havePrev && prev.A+m <= len(t) && prev.B+m <= len(t) {
			seed = append(seed, profile.MotifPair{A: prev.A, B: prev.B, M: m})
		}
		pair, ok := bestPair(t, m, cfg.ExclusionFactor, cfg.References, seed)
		lr := baseline.LengthResult{M: m}
		if ok {
			lr.Pairs = []profile.MotifPair{pair}
			prev, havePrev = pair, true
		}
		out = append(out, lr)
	}
	return out, nil
}

// metricProfile returns distances from the subsequence at ref to every
// offset, using the metric-true degenerate convention (√m for exactly one
// constant window) required by the triangle-inequality bound.
func metricProfile(t []float64, ref, m int, means, stds []float64) []float64 {
	qt := fft.SlidingDotProducts(t[ref:ref+m], t)
	out := make([]float64, len(qt))
	fm := float64(m)
	muR, sdR := means[ref], stds[ref]
	for j := range qt {
		muJ, sdJ := means[j], stds[j]
		switch {
		case sdR == 0 && sdJ == 0:
			out[j] = 0
		case sdR == 0 || sdJ == 0:
			out[j] = math.Sqrt(fm)
		default:
			out[j] = series.DistFromDot(qt[j], fm, muR, sdR, muJ, sdJ)
		}
	}
	return out
}

// bestPair finds the exact motif pair at length m. seed pairs (if any) are
// verified first to initialize the best-so-far.
func bestPair(t []float64, m, exclFactor, nRefs int, seed []profile.MotifPair) (profile.MotifPair, bool) {
	n := len(t)
	s := n - m + 1
	excl := profile.ExclusionZone(m, exclFactor)
	if s <= excl || m < 2 {
		return profile.MotifPair{}, false
	}
	means, stds := series.SlidingMeanStd(t, m)

	bsf := math.Inf(1)
	best := profile.MotifPair{M: m}
	found := false
	try := func(a, b int) {
		if a > b {
			a, b = b, a
		}
		if b-a < excl {
			return
		}
		d := earlyAbandonDist(t, a, b, m, means, stds, bsf)
		if d < bsf {
			bsf = d
			best = profile.MotifPair{A: a, B: b, M: m, Dist: d}
			found = true
		}
	}
	for _, p := range seed {
		try(p.A, p.B)
	}

	// Reference distances: first reference orders candidates, all of them
	// sharpen the pairwise lower bound max_r |D_r(a) − D_r(b)|.
	if nRefs > s {
		nRefs = s
	}
	refs := make([]int, 0, nRefs)
	for r := 0; r < nRefs; r++ {
		refs = append(refs, r*(s-1)/maxInt(nRefs-1, 1))
	}
	dRef := make([][]float64, len(refs))
	for ri, r := range refs {
		dRef[ri] = metricProfile(t, r, m, means, stds)
	}

	// Order offsets by distance to the first reference.
	order := make([]int, s)
	for i := range order {
		order[i] = i
	}
	d0 := dRef[0]
	sort.Slice(order, func(a, b int) bool { return d0[order[a]] < d0[order[b]] })

	// MK scan: for growing rank gap g, test pairs (order[i], order[i+g]).
	// Within the first-reference ordering, the gap d0[order[i+g]]−d0[order[i]]
	// is non-decreasing in g for each i, so the scan stops at the first g
	// whose smallest gap reaches bsf.
	for g := 1; g < s; g++ {
		minGap := math.Inf(1)
		for i := 0; i+g < s; i++ {
			a, b := order[i], order[i+g]
			gap := d0[b] - d0[a]
			if gap < minGap {
				minGap = gap
			}
			if gap >= bsf {
				continue
			}
			lbMax := gap
			for ri := 1; ri < len(dRef); ri++ {
				if lb := math.Abs(dRef[ri][a] - dRef[ri][b]); lb > lbMax {
					lbMax = lb
				}
			}
			if lbMax >= bsf {
				continue
			}
			try(a, b)
		}
		if minGap >= bsf {
			break
		}
	}
	return best, found
}

// earlyAbandonDist computes the z-normalized distance between windows a and
// b of length m, abandoning once the running sum exceeds cutoff².
func earlyAbandonDist(t []float64, a, b, m int, means, stds []float64, cutoff float64) float64 {
	sdA, sdB := stds[a], stds[b]
	fm := float64(m)
	if sdA == 0 && sdB == 0 {
		return 0
	}
	if sdA == 0 || sdB == 0 {
		return math.Sqrt(2 * fm)
	}
	muA, muB := means[a], means[b]
	limit := math.Inf(1)
	if !math.IsInf(cutoff, 1) {
		limit = cutoff * cutoff
	}
	var acc float64
	for i := 0; i < m; i++ {
		da := (t[a+i] - muA) / sdA
		db := (t[b+i] - muB) / sdB
		diff := da - db
		acc += diff * diff
		if acc >= limit {
			return math.Sqrt(acc) // already ≥ cutoff; exact value unneeded
		}
	}
	return math.Sqrt(acc)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
