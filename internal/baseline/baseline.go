// Package baseline defines the shared surface of the three competitor
// algorithms the paper's evaluation compares VALMOD against (demo Figure 3):
// STOMP adapted to a length range, QUICKMOTIF adapted to a length range,
// and MOEN. All three are exact; they differ only in cost.
//
// Each baseline accepts a context so the benchmark harness can impose the
// paper's wall-clock timeouts ("Time out after 24h"); cancellation is
// checked between lengths, the granularity the experiments need.
package baseline

import (
	"context"
	"errors"

	"github.com/seriesmining/valmod/internal/profile"
)

// ErrCanceled is returned when the context expires mid-run; partial results
// accompany it.
var ErrCanceled = errors.New("baseline: canceled")

// LengthResult is one length's exact output: the top pairs ascending.
type LengthResult struct {
	M     int
	Pairs []profile.MotifPair
}

// Best returns the best pair of the length, or false when none exists.
func (lr LengthResult) Best() (profile.MotifPair, bool) {
	if len(lr.Pairs) == 0 {
		return profile.MotifPair{}, false
	}
	return lr.Pairs[0], true
}

// Canceled reports whether ctx has expired.
func Canceled(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}
