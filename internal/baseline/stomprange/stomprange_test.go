package stomprange

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/seriesmining/valmod/internal/baseline"
	"github.com/seriesmining/valmod/internal/stomp"
)

func randWalk(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	v := 0.0
	for i := range x {
		v += rng.NormFloat64()
		x[i] = v
	}
	return x
}

func TestAgreesWithBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x := randWalk(rng, 260)
	out, err := Run(context.Background(), x, Config{LMin: 8, LMax: 24, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 24-8+1 {
		t.Fatalf("%d lengths", len(out))
	}
	for i, lr := range out {
		m := 8 + i
		if lr.M != m {
			t.Fatalf("result %d has length %d, want %d", i, lr.M, m)
		}
		mp, err := stomp.Brute(x, m, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := mp.TopKPairs(3)
		if len(lr.Pairs) != len(want) {
			t.Fatalf("m=%d: %d pairs, brute %d", m, len(lr.Pairs), len(want))
		}
		for pi := range want {
			if math.Abs(lr.Pairs[pi].Dist-want[pi].Dist) > 1e-6*(1+want[pi].Dist) {
				t.Fatalf("m=%d pair %d: dist %g, brute %g", m, pi, lr.Pairs[pi].Dist, want[pi].Dist)
			}
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	x := randWalk(rng, 300)
	serial, err := Run(context.Background(), x, Config{LMin: 8, LMax: 20, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(context.Background(), x, Config{LMin: 8, LMax: 20, TopK: 2, Parallel: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		a, b := serial[i], parallel[i]
		if len(a.Pairs) != len(b.Pairs) {
			t.Fatalf("m=%d: %d pairs vs %d", a.M, len(a.Pairs), len(b.Pairs))
		}
		for pi := range a.Pairs {
			if math.Abs(a.Pairs[pi].Dist-b.Pairs[pi].Dist) > 1e-9*(1+a.Pairs[pi].Dist) {
				t.Fatalf("m=%d pair %d: %v vs %v", a.M, pi, a.Pairs[pi], b.Pairs[pi])
			}
		}
	}
}

func TestCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	x := randWalk(rng, 200)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := Run(ctx, x, Config{LMin: 8, LMax: 32})
	if !errors.Is(err, baseline.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if len(out) != 0 {
		t.Fatalf("%d lengths completed under a pre-canceled context", len(out))
	}
}
