// Package stomprange adapts STOMP to a subsequence-length range exactly the
// way the paper's evaluation did ("they have been adapted to find all the
// motifs for a given subsequence length range"): one full matrix-profile
// computation per length. It is exact and embarrassingly simple — and it is
// the O((ℓmax−ℓmin)·n²) cost model VALMOD exists to beat.
package stomprange

import (
	"context"

	"github.com/seriesmining/valmod/internal/baseline"
	"github.com/seriesmining/valmod/internal/profile"
	"github.com/seriesmining/valmod/internal/stomp"
)

// Config parameterizes a STOMP range run.
type Config struct {
	LMin, LMax      int
	TopK            int // pairs per length (default 1)
	ExclusionFactor int // default 4
	// Parallel uses the goroutine-partitioned STOMP per length.
	Parallel bool
	// Workers bounds parallelism when Parallel is set (0 = GOMAXPROCS).
	Workers int
}

// Run executes STOMP once per length. On context expiry it returns the
// lengths completed so far together with baseline.ErrCanceled.
func Run(ctx context.Context, t []float64, cfg Config) ([]baseline.LengthResult, error) {
	if cfg.TopK <= 0 {
		cfg.TopK = 1
	}
	var out []baseline.LengthResult
	for m := cfg.LMin; m <= cfg.LMax; m++ {
		if baseline.Canceled(ctx) {
			return out, baseline.ErrCanceled
		}
		var (
			mp  *profile.MatrixProfile
			err error
		)
		if cfg.Parallel {
			mp, err = stomp.ComputeParallel(t, m, cfg.ExclusionFactor, cfg.Workers)
		} else {
			mp, err = stomp.Compute(t, m, cfg.ExclusionFactor)
		}
		if err != nil {
			return out, err
		}
		out = append(out, baseline.LengthResult{M: m, Pairs: mp.TopKPairs(cfg.TopK)})
	}
	return out, nil
}
