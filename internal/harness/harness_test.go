package harness

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestTimedCompletes(t *testing.T) {
	m := Timed(time.Second, func(ctx context.Context) error {
		return nil
	})
	if m.TimedOut || m.Err != nil {
		t.Errorf("measurement = %+v", m)
	}
	if m.Elapsed < 0 {
		t.Error("negative elapsed")
	}
}

func TestTimedTimesOut(t *testing.T) {
	m := Timed(5*time.Millisecond, func(ctx context.Context) error {
		for {
			select {
			case <-ctx.Done():
				return errors.New("canceled")
			case <-time.After(time.Millisecond):
			}
		}
	})
	if !m.TimedOut {
		t.Errorf("expected timeout, got %+v", m)
	}
	if m.String() != "TIMEOUT" {
		t.Errorf("String() = %q", m.String())
	}
}

func TestTimedUnlimited(t *testing.T) {
	m := Timed(0, func(ctx context.Context) error {
		if _, has := ctx.Deadline(); has {
			return errors.New("unexpected deadline")
		}
		return nil
	})
	if m.Err != nil || m.TimedOut {
		t.Errorf("measurement = %+v", m)
	}
}

func TestTimedError(t *testing.T) {
	boom := errors.New("boom")
	m := Timed(time.Second, func(ctx context.Context) error { return boom })
	if m.Err != boom {
		t.Errorf("err = %v", m.Err)
	}
	if m.String() != "ERROR" {
		t.Errorf("String() = %q", m.String())
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		90 * time.Second:        "1m30s",
		1500 * time.Millisecond: "1.5s",
		2500 * time.Microsecond: "2.5ms",
		750 * time.Nanosecond:   "750ns",
	}
	for d, want := range cases {
		if got := FormatDuration(d); got != want {
			t.Errorf("FormatDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("Fig 3 (top) ECG", "range", "VALMOD", "STOMP", "MOEN")
	tab.AddRow(10, "1.2s", "45s", "30s")
	tab.AddRow(200, "3.4s", "TIMEOUT", "TIMEOUT")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "== Fig 3") {
		t.Errorf("title line: %q", lines[0])
	}
	if !strings.Contains(lines[4], "TIMEOUT") {
		t.Errorf("row content: %q", lines[4])
	}
	// Header and data columns align: "VALMOD" starts where "1.2s" starts.
	hIdx := strings.Index(lines[1], "VALMOD")
	dIdx := strings.Index(lines[3], "1.2s")
	if hIdx != dIdx {
		t.Errorf("columns misaligned: %d vs %d\n%s", hIdx, dIdx, out)
	}
}

func TestSweepScaleAll(t *testing.T) {
	s := Sweep{Name: "n", Values: []int{1, 2, 3}}
	scaled := s.ScaleAll(10)
	if scaled.Values[2] != 30 {
		t.Errorf("scaled = %v", scaled.Values)
	}
	if s.Values[2] != 3 {
		t.Error("original mutated")
	}
	same := s.ScaleAll(1)
	if &same.Values[0] != &s.Values[0] {
		t.Error("factor 1 should return the original")
	}
}

func TestDefaultSweeps(t *testing.T) {
	if got := Fig3TopRanges().Values; len(got) != 5 {
		t.Errorf("Fig3TopRanges = %v", got)
	}
	if got := Fig3BottomSizes().Values; got[len(got)-1] != 100000 {
		t.Errorf("Fig3BottomSizes = %v", got)
	}
}
