// Package harness provides the experiment scaffolding that regenerates the
// paper's evaluation (Figure 3): wall-clock measurement with the paper's
// timeout semantics ("Time out after 24h"), parameter sweeps, and aligned
// table rendering so cmd/valmod-experiments prints the same rows/series the
// paper plots.
package harness

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"
)

// Measurement is one timed cell of an experiment table.
type Measurement struct {
	Elapsed  time.Duration
	TimedOut bool
	Err      error
}

// String renders the cell the way the paper's plots annotate it.
func (m Measurement) String() string {
	switch {
	case m.Err != nil:
		return "ERROR"
	case m.TimedOut:
		return "TIMEOUT"
	default:
		return FormatDuration(m.Elapsed)
	}
}

// FormatDuration renders a duration with sensible rounding for tables.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return d.Round(100 * time.Millisecond).String()
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.String()
	}
}

// Timed runs fn under a wall-clock budget. fn must honor ctx cancellation
// (all suite algorithms do, between lengths); the measurement reports
// whether the budget expired. budget ≤ 0 means unlimited.
func Timed(budget time.Duration, fn func(ctx context.Context) error) Measurement {
	ctx := context.Background()
	cancel := func() {}
	if budget > 0 {
		ctx, cancel = context.WithTimeout(ctx, budget)
	}
	defer cancel()
	start := time.Now()
	err := fn(ctx)
	elapsed := time.Since(start)
	m := Measurement{Elapsed: elapsed}
	// A run is only a timeout when the budget expired AND the function
	// aborted because of it; a run that finished late still reports its
	// true elapsed time.
	if ctx.Err() != nil && err != nil {
		m.TimedOut = true
		return m
	}
	m.Err = err
	return m
}

// Table accumulates rows of an experiment and renders them aligned.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; cells are stringified with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Sweep enumerates the parameter values of one experiment axis, mirroring
// the paper's x-axes (length ranges for Figure 3 top, series prefixes for
// Figure 3 bottom).
type Sweep struct {
	// Name labels the axis ("range", "n").
	Name string
	// Values are the axis points in presentation order.
	Values []int
}

// ScaleAll multiplies every value (used to blow the default laptop-scale
// sweeps back up toward paper scale with a flag).
func (s Sweep) ScaleAll(factor int) Sweep {
	if factor <= 1 {
		return s
	}
	out := Sweep{Name: s.Name, Values: make([]int, len(s.Values))}
	for i, v := range s.Values {
		out.Values[i] = v * factor
	}
	return out
}

// Fig3TopRanges is the laptop-scale analogue of the paper's length-range
// axis {100, 150, 200, 400, 600} (at ℓmin=1024, n=0.5M).
func Fig3TopRanges() Sweep { return Sweep{Name: "range", Values: []int{10, 20, 50, 100, 200}} }

// Fig3BottomSizes is the laptop-scale analogue of the paper's series-length
// axis {0.1M, 0.2M, 0.5M, 0.8M, 1M}.
func Fig3BottomSizes() Sweep {
	return Sweep{Name: "n", Values: []int{10000, 20000, 50000, 80000, 100000}}
}
