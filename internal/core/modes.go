package core

// The fast coarse-to-fine plan (Config.LengthSkip / Config.LengthStride):
// length-level pruning layered on top of the per-length machinery. The
// exhaustive plan pays one whole-profile diagonal pass per length because
// the discord sink needs every offset's exact NN distance; this mode
// observes that almost no length can change the discord output, and proves
// it per anchor with the same lower-bound state the pruned pairs pass
// already maintains.
//
// Phase 1 walks every length ascending, exactly like the legacy loop, but
// resolves each length one of three ways:
//
//   - scanned lengths (the stride grid; just ℓmin when only LengthSkip is
//     set) pay a whole-profile pass — seedAll when the strict machinery
//     needs seeding, the incremental diagonal pass otherwise;
//   - strict unscanned lengths run the exact pruned pairs pass, then feed
//     the discord machinery from its certificate: each anchor's candidate
//     profile value is a true pair distance, hence an upper bound on its
//     NN distance, so any anchor whose bound length-normalizes below the
//     running k-th best discord candidate (with (1−1e−9) slack) provably
//     cannot carry the top discord. The few surviving anchors get one
//     exact MASS row each (scanRowProfileOnly — the same kernels as the
//     seed scan, so values are exact);
//   - non-strict unscanned lengths (stride without Strict) carry each
//     anchor's scan-time nearest neighbor forward with one FMA per length
//     (kernels.AdvanceDot): the carried dot product yields the exact
//     distance of a real pair at the current length — an upper bound on
//     the NN distance — which drives the same survivor machinery, plus a
//     best-effort top-k pairs extraction over the carried distances.
//
// Phase 2 (stride runs only) refines: the global best pair's length and
// the top discord's length are re-resolved — together with the unscanned
// lengths within RefineRadius of them — by full incremental passes over a
// fresh head-row state, upgrading those records in place.
//
// Exactness: per-length pairs are exact at every length in strict mode
// (the pruned pass certifies them) and at scanned/refined lengths
// otherwise; the top-1 discord is exact in every mode (the global argmax
// anchor's upper bound beats every pool threshold, so it is always
// recomputed exactly, wins its per-length extraction, and wins the final
// cross-length ranking); discord candidates beyond the top-1 carry exact
// distances but may differ in selection depth from the exhaustive plan
// (the per-length candidate lists are threshold-filtered). Progress emits
// one tick per length in phase 1, so Done reaches Total regardless of how
// many lengths were skipped; sinks are fed once, ascending, after refine.

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/seriesmining/valmod/internal/kernels"
	"github.com/seriesmining/valmod/internal/profile"
	"github.com/seriesmining/valmod/internal/series"
)

// How a fast-mode length record was resolved (and counted), so a refine
// upgrade can move it between PlanStats counters.
const (
	recLBSkip uint8 = iota // candidate machinery, no whole-profile pass
	recPruned              // pruned pass fell back to a full recompute
	recFull                // whole-profile pass (scanned or refined)
)

// fastRecord buffers one length's output until the post-refine replay.
type fastRecord struct {
	lr      LengthResult           // Pairs owned by the record
	profile *profile.MatrixProfile // retained at ℓmin only (the sinks' seed)
	cands   []Discord              // stage-one discord candidates
	counter uint8
}

// fastMode is the orchestration state of one coarse-to-fine run.
type fastMode struct {
	r     *run
	sinks []Sink
	ds    *discordSink

	stride     int // ≥ 1; > 1 selects the stride grid + refine phase
	strict     bool
	radius     int
	lmin, lmax int
	k          int // discord depth (ds.k)

	records []fastRecord

	// Discord threshold pool: the k largest candidate norm-dists seen so
	// far, ascending (topNorms[0] is the running k-th best).
	topNorms []float64

	// Carried nearest neighbors (non-strict): anchor i's NN at the last
	// scanned length and its dot product advanced to carryAt.
	nnIdx   []int
	nnQT    []float64
	carryAt int

	survivors []int // per-length scratch
}

// newFastMode decides whether the run takes the coarse-to-fine plan. It
// declines — leaving the legacy loop and its bit-identical default output
// untouched — unless the new flags are set on a pairs+discords run with
// the pruning and incremental machinery available: the plan's whole point
// is avoiding per-length whole-profile passes, which only exist when a
// discord sink is registered, and its exactness argument leans on both
// the pruned certificate and the incremental pass. External FullProfile
// sinks keep the legacy loop too (they need real profiles at their
// lengths), as does a degenerate range whose ℓmin admits no pair (the
// built-in sinks seed from the ℓmin profile).
func newFastMode(r *run, sinks []Sink) *fastMode {
	cfg := r.cfg
	stride := cfg.LengthStride
	if stride < 1 {
		stride = 1
	}
	if !cfg.LengthSkip && stride == 1 {
		return nil
	}
	if cfg.DisablePruning || cfg.DisableIncremental {
		return nil
	}
	var ds *discordSink
	for _, s := range sinks {
		if d, ok := s.(*discordSink); ok {
			if ds != nil {
				return nil
			}
			ds = d
			continue
		}
		if s.Requires() == FullProfile {
			return nil
		}
	}
	if ds == nil {
		return nil
	}
	if len(r.t)-cfg.LMin+1 <= profile.ExclusionZone(cfg.LMin, cfg.ExclusionFactor) {
		return nil
	}
	radius := cfg.RefineRadius
	if radius <= 0 {
		radius = stride - 1
	}
	return &fastMode{
		r:      r,
		sinks:  sinks,
		ds:     ds,
		stride: stride,
		strict: cfg.LengthSkip || cfg.Strict,
		radius: radius,
		lmin:   cfg.LMin,
		lmax:   cfg.LMax,
		k:      ds.k,
	}
}

// isScanned reports whether length l is on the scan grid: every stride-th
// length from ℓmin under a stride plan, just ℓmin under pure LengthSkip.
func (fm *fastMode) isScanned(l int) bool {
	if fm.stride > 1 {
		return (l-fm.lmin)%fm.stride == 0
	}
	return l == fm.lmin
}

// run executes the coarse-to-fine plan: phase-1 scan, refine, then one
// ascending replay into the sinks.
func (fm *fastMode) run() (PlanStats, error) {
	r := fm.r
	total := fm.lmax - fm.lmin + 1
	fm.records = make([]fastRecord, total)
	for idx, l := 0, fm.lmin; l <= fm.lmax; idx, l = idx+1, l+1 {
		if err := r.ctx.Err(); err != nil {
			return r.planStats, err
		}
		var err error
		switch {
		case fm.isScanned(l):
			err = fm.resolveFull(idx, l)
		case fm.strict:
			err = fm.resolveCheap(idx, l)
		default:
			err = fm.resolveCarry(idx, l)
		}
		if err != nil {
			return r.planStats, err
		}
		if r.cfg.OnLength != nil {
			r.cfg.OnLength(Progress{Done: idx + 1, Total: total, Result: fm.records[idx].lr})
		}
	}
	if fm.stride > 1 {
		if err := fm.refine(); err != nil {
			return r.planStats, err
		}
	}
	for idx := range fm.records {
		l := fm.lmin + idx
		rec := &fm.records[idx]
		ld := LengthData{L: l, Result: rec.lr, Profile: rec.profile}
		for _, s := range fm.sinks {
			if s == Sink(fm.ds) {
				continue // fed candidates directly below
			}
			if sinkWants(s, l) {
				s.Consume(ld)
			}
		}
	}
	fm.ds.addCandidates(fm.allCands())
	return r.planStats, nil
}

// resolveFull resolves a scanned length with a whole-profile pass. The
// first one under the strict plan is the seed scan (it reseeds every
// anchor's partial profile, which the unscanned lengths' pruned pass
// needs); everything else is the incremental diagonal pass.
func (fm *fastMode) resolveFull(idx, l int) error {
	r := fm.r
	var (
		lr  LengthResult
		mp  *profile.MatrixProfile
		err error
	)
	if fm.strict && !r.seeded {
		mp, err = r.seedAll(l)
		if err != nil {
			return err
		}
		lr = LengthResult{M: l, Pairs: mp.TopKPairsInto(r.cfg.TopK, &r.topk)}
		lr.Stats.FullRecompute = true
		r.planStats.RecomputeLengths++
	} else {
		lr, mp, err = r.processLengthIncremental(l)
		if err != nil {
			return err
		}
		r.planStats.IncrementalLengths++
	}
	if fm.stride > 1 {
		r.planStats.StrideScanned++
	}
	rec := &fm.records[idx]
	rec.counter = recFull
	rec.lr = lr
	rec.lr.Pairs = append([]profile.MotifPair(nil), lr.Pairs...)
	if l == fm.lmin {
		rec.profile = mp
	}
	if mp != nil {
		rec.cands = fm.takeCands(mp.TopKDiscords(fm.k), l)
		if !fm.strict {
			fm.reseedCarry(mp, l)
		}
	}
	return nil
}

// resolveCheap resolves a strict unscanned length: the exact pruned pairs
// pass, then the lower-bound discord certificate. When the pairs fixpoint
// fell back to a whole-profile recompute anyway, the profile is reused
// for exact discord extraction instead.
func (fm *fastMode) resolveCheap(idx, l int) error {
	r := fm.r
	s := len(r.t) - l + 1
	excl := profile.ExclusionZone(l, r.cfg.ExclusionFactor)
	rec := &fm.records[idx]
	lr, mp, err := r.processLength(l)
	if err != nil {
		return err
	}
	rec.lr = lr
	rec.lr.Pairs = append([]profile.MotifPair(nil), lr.Pairs...)
	if mp != nil {
		r.planStats.PrunedLengths++
		rec.counter = recPruned
		rec.cands = fm.takeCands(mp.TopKDiscords(fm.k), l)
		return nil
	}
	r.planStats.LBSkippedLengths++
	rec.counter = recLBSkip
	if s <= excl {
		return nil
	}
	// r.lmp now holds each anchor's certified-exact value or its best
	// retained true-pair distance (an NN upper bound); r.cert marks which
	// anchors are exact (certified or recomputed by the fixpoint).
	if err := fm.recomputeSurvivors(l, excl, s, r.cert); err != nil {
		return err
	}
	for _, i := range fm.survivors {
		r.cert[i] = true // exact now (scratch; reset by the next advance pass)
	}
	rec.cands = fm.extractCands(l, func(yield func(int)) {
		for i := 0; i < s; i++ {
			if r.cert[i] {
				yield(i)
			}
		}
	})
	return nil
}

// resolveCarry resolves a non-strict unscanned length from the carried
// nearest neighbors: advance each anchor's scan-time NN dot product to l
// (one fused AdvanceDot per anchor), turn it into the exact distance of
// that real pair — an upper bound on the anchor's NN distance — and run
// the same survivor machinery. Pairs are extracted best-effort from the
// carried (plus recomputed-exact) distances: every reported pair is a
// real pair with its exact distance, but the per-length top-k is not
// certified at carried lengths.
func (fm *fastMode) resolveCarry(idx, l int) error {
	r := fm.r
	s := len(r.t) - l + 1
	excl := profile.ExclusionZone(l, r.cfg.ExclusionFactor)
	rec := &fm.records[idx]
	rec.counter = recLBSkip
	r.planStats.LBSkippedLengths++
	rec.lr = LengthResult{M: l}
	if s <= excl {
		return nil
	}
	r.momentsAt(l)
	lmp := &r.lmp
	lmp.Reset(l, excl, s)
	t := r.t
	fl := float64(l)
	from := fm.carryAt
	for i := 0; i < s; i++ {
		j := fm.nnIdx[i]
		if j < 0 {
			continue
		}
		if j >= s || (j > i-excl && j < i+excl) {
			// The neighbor no longer exists at this length (or the grown
			// exclusion zone swallowed it); the carry dies until the next
			// scanned length reseeds it.
			fm.nnIdx[i] = -1
			continue
		}
		qt := kernels.AdvanceDot(fm.nnQT[i], t, i, j, from, l)
		fm.nnQT[i] = qt
		lmp.Dist[i] = series.DistFromDot(qt, fl, r.means[i], r.stds[i], r.means[j], r.stds[j])
		lmp.Index[i] = j
	}
	fm.carryAt = l
	if err := fm.recomputeSurvivors(l, excl, s, nil); err != nil {
		return err
	}
	rec.lr.Pairs = append([]profile.MotifPair(nil), lmp.TopKPairsInto(r.cfg.TopK, &r.topk)...)
	rec.cands = fm.extractCands(l, func(yield func(int)) {
		for _, i := range fm.survivors {
			yield(i)
		}
	})
	return nil
}

// reseedCarry records each anchor's nearest neighbor at scanned length l
// and its exact dot product (recomputed directly, so the carry starts
// from exact state rather than reconstructed kernel intermediates).
func (fm *fastMode) reseedCarry(mp *profile.MatrixProfile, l int) {
	r := fm.r
	s := len(r.t) - l + 1
	if fm.nnIdx == nil {
		fm.nnIdx = make([]int, r.sMin)
		fm.nnQT = make([]float64, r.sMin)
	}
	t := r.t
	for i := 0; i < s; i++ {
		j := mp.Index[i]
		fm.nnIdx[i] = j
		if j >= 0 {
			fm.nnQT[i] = series.Dot(t[i:i+l], t[j:j+l])
		}
	}
	fm.carryAt = l
}

// tau returns the survivor threshold: the running k-th best candidate
// norm-dist with (1−1e−9) relative slack (so an anchor whose upper bound
// ties the threshold within rounding still survives), or −Inf while the
// pool holds fewer than k candidates.
func (fm *fastMode) tau() float64 {
	if len(fm.topNorms) < fm.k {
		return math.Inf(-1)
	}
	return fm.topNorms[0] * (1 - 1e-9)
}

// poolAdd feeds one candidate norm-dist into the threshold pool.
func (fm *fastMode) poolAdd(nd float64) {
	if len(fm.topNorms) < fm.k {
		fm.topNorms = append(fm.topNorms, nd)
		sort.Float64s(fm.topNorms)
		return
	}
	if nd > fm.topNorms[0] {
		fm.topNorms[0] = nd
		for i := 1; i < len(fm.topNorms) && fm.topNorms[i] < fm.topNorms[i-1]; i++ {
			fm.topNorms[i-1], fm.topNorms[i] = fm.topNorms[i], fm.topNorms[i-1]
		}
	}
}

// takeCands converts a per-length profile.TopKDiscords extraction into
// pooled cross-length candidates.
func (fm *fastMode) takeCands(ds []profile.Discord, l int) []Discord {
	out := make([]Discord, 0, len(ds))
	for _, d := range ds {
		c := Discord{I: d.I, L: l, Dist: d.Dist}
		out = append(out, c)
		fm.poolAdd(c.NormDist())
	}
	return out
}

// recomputeSurvivors selects the anchors whose NN upper bound (r.lmp)
// still length-normalizes at or above the pool threshold — everything
// below it provably cannot carry the top discord — and resolves each
// survivor's exact NN with one MASS row (distributed across Workers with
// per-anchor slot writes, so results are worker-count independent).
// exact, when non-nil, marks anchors already holding exact values (they
// need no recompute). Anchors with no upper bound at all (+Inf) always
// survive.
func (fm *fastMode) recomputeSurvivors(l, excl, s int, exact []bool) error {
	r := fm.r
	tau := fm.tau()
	norm := math.Sqrt(1 / float64(l))
	lmp := &r.lmp
	surv := fm.survivors[:0]
	for i := 0; i < s; i++ {
		if exact != nil && exact[i] {
			continue
		}
		u := math.Inf(1)
		if lmp.Index[i] >= 0 {
			u = lmp.Dist[i]
		}
		if u*norm >= tau {
			surv = append(surv, i)
		}
	}
	fm.survivors = surv
	if len(surv) == 0 {
		return nil
	}
	workers := r.workers
	if workers > len(surv) {
		workers = len(surv)
	}
	if workers <= 1 {
		for _, i := range surv {
			row := r.corr.Dots(r.t[i:i+l], r.rowQT[:s])
			r.scanRowProfileOnly(i, l, excl, s, row, lmp)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				corr := r.corr.Clone()
				defer corr.Release()
				row := r.eng.getRow(s)
				defer r.eng.putRow(row)
				for {
					x := int(next.Add(1)) - 1
					if x >= len(surv) {
						return
					}
					i := surv[x]
					r.scanRowProfileOnly(i, l, excl, s, corr.Dots(r.t[i:i+l], row), lmp)
				}
			}()
		}
		wg.Wait()
	}
	// lmp.Update keeps the minimum, so each survivor's slot now holds its
	// exact NN (the exact value can only undercut the stored upper bound).
	return r.ctx.Err()
}

// extractCands mimics profile.TopKDiscords over the anchors iter yields,
// reading their (now exact) values from r.lmp: threshold-filter, sort by
// distance descending (offset ascending on ties), greedy within-length
// exclusion, cap k. Restricting extraction to exact anchors at or above
// the pool threshold is what makes deeper candidate depth best-effort —
// and what keeps the top-1 discord exact, since the global argmax always
// clears every threshold.
func (fm *fastMode) extractCands(l int, iter func(yield func(int))) []Discord {
	r := fm.r
	lmp := &r.lmp
	tau := fm.tau()
	norm := math.Sqrt(1 / float64(l))
	type cand struct {
		i int
		d float64
	}
	var cands []cand
	iter(func(i int) {
		if lmp.Index[i] < 0 || math.IsInf(lmp.Dist[i], 1) {
			return
		}
		if d := lmp.Dist[i]; d*norm >= tau {
			cands = append(cands, cand{i, d})
		}
	})
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].d != cands[b].d {
			return cands[a].d > cands[b].d
		}
		return cands[a].i < cands[b].i
	})
	var out []profile.Discord
	used := make([]int, 0, fm.k)
	for _, c := range cands {
		if len(out) >= fm.k {
			break
		}
		skip := false
		for _, u := range used {
			if abs(c.i-u) < lmp.Exclusion {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		out = append(out, profile.Discord{I: c.i, Dist: c.d})
		used = append(used, c.i)
	}
	return fm.takeCands(out, l)
}

// refine re-resolves the lengths around the phase-1 winners — the global
// best pair's length and the top discord's length — with full incremental
// passes over a fresh head-row state (the primary carried state has moved
// past them), upgrading the buffered records in place. Only unscanned
// records are refined; scanned ones are already exact. No progress ticks
// are emitted (phase 1 already reached Done == Total).
func (fm *fastMode) refine() error {
	r := fm.r
	pairL := -1
	bestNorm := math.Inf(1)
	for idx := range fm.records {
		for _, p := range fm.records[idx].lr.Pairs {
			if nd := p.NormDist(); nd < bestNorm {
				bestNorm = nd
				pairL = fm.lmin + idx
			}
		}
	}
	discL := -1
	tmp := newDiscordSink(fm.k, r.cfg.ExclusionFactor)
	tmp.addCandidates(fm.allCands())
	if ds := tmp.Discords(); len(ds) > 0 {
		discL = ds[0].L
	}
	set := make(map[int]bool)
	addWindow := func(w int) {
		if w < 0 {
			return
		}
		for l := w - fm.radius; l <= w+fm.radius; l++ {
			if l < fm.lmin || l > fm.lmax {
				continue
			}
			if fm.records[l-fm.lmin].counter != recFull {
				set[l] = true
			}
		}
	}
	addWindow(pairL)
	addWindow(discL)
	if len(set) == 0 {
		return nil
	}
	ls := make([]int, 0, len(set))
	for l := range set {
		ls = append(ls, l)
	}
	sort.Ints(ls)

	var st incState
	for _, l := range ls {
		if err := r.ctx.Err(); err != nil {
			return err
		}
		lr, mp, err := r.processLengthIncrementalAt(&st, l)
		if err != nil {
			return err
		}
		rec := &fm.records[l-fm.lmin]
		if rec.counter == recPruned {
			r.planStats.PrunedLengths--
		} else {
			r.planStats.LBSkippedLengths--
		}
		rec.counter = recFull
		r.planStats.IncrementalLengths++
		r.planStats.RefinedLengths++
		rec.lr = lr
		rec.lr.Pairs = append([]profile.MotifPair(nil), lr.Pairs...)
		rec.cands = nil
		if mp != nil {
			rec.cands = fm.takeCands(mp.TopKDiscords(fm.k), l)
		}
	}
	return nil
}

// allCands concatenates the buffered stage-one candidates in ascending
// length order — the order the legacy per-length Consume would have fed
// the discord sink.
func (fm *fastMode) allCands() []Discord {
	var out []Discord
	for idx := range fm.records {
		out = append(out, fm.records[idx].cands...)
	}
	return out
}
