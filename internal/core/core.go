package core
