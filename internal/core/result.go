package core

import (
	"fmt"
	"math"

	"github.com/seriesmining/valmod/internal/profile"
	"github.com/seriesmining/valmod/internal/valmap"
)

// LengthStats instruments one length of the run for the ablation benches.
type LengthStats struct {
	// Certified counts anchors whose profile value was certified by the
	// lower bound alone.
	Certified int
	// Recomputed counts anchors individually recomputed with MASS.
	Recomputed int
	// FullRecompute reports the length was resolved by a whole-profile
	// pass rather than the pruned advance→certify machinery.
	FullRecompute bool
	// Incremental refines FullRecompute: the whole-profile pass extended
	// the carried cross-length dot-product state (one FMA per cell)
	// instead of recomputing from scratch with FFT reseeds.
	Incremental bool
}

// PlanStats instruments the per-length planner of one run: how many
// lengths each plan resolved and what the incremental engine's carried
// state cost. RecomputeLengths counts from-scratch whole-profile passes —
// the pruned machinery's seed length, fixpoint fallbacks inside pruned
// lengths are *not* counted here (they are per-length LengthStats), and
// every FullProfile length under DisableIncremental.
type PlanStats struct {
	// PrunedLengths counts lengths resolved by the advance→certify pass.
	PrunedLengths int `json:"pruned_lengths"`
	// IncrementalLengths counts lengths resolved by the incremental
	// cross-length profile pass.
	IncrementalLengths int `json:"incremental_lengths"`
	// RecomputeLengths counts lengths resolved by a from-scratch row scan
	// (seeding or ablation).
	RecomputeLengths int `json:"recompute_lengths"`
	// SkippedLengths counts lengths no registered sink wanted.
	SkippedLengths int `json:"skipped_lengths"`
	// HeadSeeds counts FFT seedings of the incremental engine's diagonal
	// head row (at most one per run).
	HeadSeeds int `json:"head_seeds"`
	// HeadExtensions counts one-FMA-per-cell head-row advances (one per
	// length step the carried state crossed).
	HeadExtensions int `json:"head_extensions"`
	// LBSkippedLengths counts lengths resolved without any whole-profile
	// pass under LengthSkip/LengthStride: pairs from the pruned pass (or
	// the carried-NN approximation), discords from the lower-bound
	// certificate. Lengths a refine pass later upgraded to a full
	// resolution are not counted.
	LBSkippedLengths int `json:"lb_skipped_lengths"`
	// StrideScanned counts the scan-grid lengths of a stride/refine run
	// (the lengths that paid a whole-profile pass in the scan phase).
	StrideScanned int `json:"stride_scanned"`
	// RefinedLengths counts lengths re-resolved exhaustively by the
	// refine phase around the scan winners.
	RefinedLengths int `json:"refined_lengths"`
}

// LengthResult carries the exact output of one subsequence length.
type LengthResult struct {
	// M is the subsequence length.
	M int
	// Pairs are the exact top-k motif pairs, ascending distance.
	Pairs []profile.MotifPair
	// Stats instruments how the length was resolved.
	Stats LengthStats
}

// Best returns the best pair and true, or a zero pair and false when the
// length admits no pair.
func (lr LengthResult) Best() (profile.MotifPair, bool) {
	if len(lr.Pairs) == 0 {
		return profile.MotifPair{}, false
	}
	return lr.Pairs[0], true
}

// StatsTag renders a short diagnostic label ("m=32 cert=412 rec=3 full=false")
// used by tests and verbose logs.
func (lr LengthResult) StatsTag() string {
	return fmt.Sprintf("m=%d cert=%d rec=%d full=%v",
		lr.M, lr.Stats.Certified, lr.Stats.Recomputed, lr.Stats.FullRecompute)
}

// Progress is delivered to Config.OnLength after a length completes.
type Progress struct {
	// Done counts completed lengths (this one included); Total is the
	// number of lengths the run will process (LMax − LMin + 1).
	Done, Total int
	// Result is the completed length's exact result. Result.Pairs is
	// backed by engine-owned scratch valid only during the callback;
	// callbacks that retain pairs must copy them (the public valmod
	// wrapper converts into fresh wire structs, so its callers are
	// unaffected).
	Result LengthResult
}

// Result is a completed VALMOD run.
type Result struct {
	// N is the input series length.
	N int
	// Cfg echoes the effective configuration (defaults filled in).
	Cfg Config
	// MPMin is the exact matrix profile at ℓmin (demo Figure 1b-c).
	MPMin *profile.MatrixProfile
	// PerLength holds one entry per length, ℓmin first.
	PerLength []LengthResult
	// VMap is the VALMAP meta structure (demo Figure 1e-f).
	VMap *valmap.VALMAP
	// Discords holds the exact top-k variable-length discords, ranked by
	// length-normalized NN distance descending; nil unless Cfg.Discords
	// is positive.
	Discords []Discord
	// Plan instruments how the per-length planner resolved the run.
	Plan PlanStats
}

// GlobalBest returns the best motif pair across all lengths under the
// length-normalized distance, or false when no length produced a pair.
func (r *Result) GlobalBest() (profile.MotifPair, bool) {
	best := profile.MotifPair{Dist: math.Inf(1)}
	found := false
	bestNorm := math.Inf(1)
	for _, lr := range r.PerLength {
		for _, p := range lr.Pairs {
			if nd := p.NormDist(); nd < bestNorm {
				bestNorm = nd
				best = p
				found = true
			}
		}
	}
	return best, found
}

// ResultOfLength returns the LengthResult for m, or false.
func (r *Result) ResultOfLength(m int) (LengthResult, bool) {
	i := m - r.Cfg.LMin
	if i < 0 || i >= len(r.PerLength) {
		return LengthResult{}, false
	}
	return r.PerLength[i], true
}

// Summary aggregates the per-length instrumentation of a run.
type Summary struct {
	// Lengths is the number of lengths processed (LMax − LMin + 1).
	Lengths int
	// CertifiedAnchors sums anchors certified by the lower bound alone.
	CertifiedAnchors int
	// RecomputedAnchors sums anchors individually recomputed with MASS.
	RecomputedAnchors int
	// FullRecomputes counts lengths resolved by a whole STOMP pass
	// (including the mandatory one at ℓmin).
	FullRecomputes int
}

// Summary aggregates stats across the whole run.
func (r *Result) Summary() Summary {
	s := Summary{Lengths: len(r.PerLength)}
	for _, lr := range r.PerLength {
		s.CertifiedAnchors += lr.Stats.Certified
		s.RecomputedAnchors += lr.Stats.Recomputed
		if lr.Stats.FullRecompute {
			s.FullRecomputes++
		}
	}
	return s
}
