package core

import (
	"math"
	"sort"

	"github.com/seriesmining/valmod/internal/profile"
	"github.com/seriesmining/valmod/internal/series"
	"github.com/seriesmining/valmod/internal/valmap"
)

// Requirement is the level of per-length data a Sink needs. The engine
// plans every length individually from the sinks that want that length
// (see planLengths), so adding a cheap consumer never forces expensive
// work, adding an expensive one never forks the pipeline, and an
// expensive sink restricted to a length subset (LengthSelector) only
// upgrades the lengths it actually wants.
type Requirement int

const (
	// TopKPairs is served by the pruned VALMOD pass: the exact top-k
	// motif pairs of each length, certified by the lower-bound machinery
	// without materializing every nearest-neighbor distance.
	TopKPairs Requirement = iota
	// FullProfile requires the exact nearest-neighbor distance of every
	// subsequence offset at the lengths the sink wants. The pruned pass
	// cannot provide it (it certifies only the reported top-k), so those
	// lengths run a whole-profile pass — the incremental cross-length
	// engine (incremental.go), which carries the diagonal dot-product
	// state from length to length on a fixed diagonal-block grid, so
	// output stays bit-identical at any worker count.
	FullProfile
)

// LengthData is delivered to every registered sink after one subsequence
// length resolves, in increasing-length order. Sinks run on the engine
// goroutine. A delivered Profile is never mutated by the engine
// afterwards, so a sink may retain it — but that holds O(s) memory per
// length; sinks that only need a reduction should extract it during
// Consume and let the profile go. Result.Pairs, in contrast, is backed by
// engine-owned scratch recycled at the next length (the zero-alloc steady
// state): it is valid only during Consume, and a sink that retains pairs
// must copy them (as the built-in pairs sink does).
type LengthData struct {
	// L is the completed subsequence length.
	L int
	// Result carries the exact top-k pairs and the resolution stats.
	Result LengthResult
	// Profile is the exact matrix profile at L. It is present whenever
	// the engine resolved the length with a whole-profile pass: at every
	// length planned FullProfile, and at the length that seeds the pruned
	// machinery (the first pruned length — ℓmin on the default plan, so
	// the first delivery always carries a profile when every sink wants
	// every length). At lengths admitting no non-trivial pair it is nil
	// on the FullProfile paths.
	Profile *profile.MatrixProfile
}

// Sink is one consumer of the per-length pipeline. Built-in sinks
// implement the top-k-pairs result, the VALMAP, and variable-length
// discords; external workloads (motif sets, streaming stats) plug in
// through Engine.RunSinks without touching the length loop.
type Sink interface {
	// Requires declares the per-length data this sink needs; the engine
	// plans each length from the sinks that want that length.
	Requires() Requirement
	// Consume receives each completed length this sink wants (every
	// length, unless the sink also implements LengthSelector), in
	// increasing order, on the goroutine running the engine.
	Consume(ld LengthData)
}

// LengthSelector optionally restricts a Sink to a subset of the run's
// lengths — discords over a sub-range, a downsampled length grid for a
// preview, a single checkpoint length. The engine consults it when
// planning: a length only FullProfile sinks *don't* want runs the cheap
// pruned pass instead, and a length no sink wants at all is skipped.
// WantsLength must be pure (the planner may evaluate it once up front and
// the dispatcher again per delivery).
type LengthSelector interface {
	WantsLength(l int) bool
}

// sinkWants reports whether sink s consumes length l: every length,
// unless the sink narrows itself via LengthSelector.
func sinkWants(s Sink, l int) bool {
	if sel, ok := s.(LengthSelector); ok {
		return sel.WantsLength(l)
	}
	return true
}

// lengthPlan is the planner's decision for one length.
type lengthPlan uint8

const (
	// planSkip: no sink wants the length; nothing runs.
	planSkip lengthPlan = iota
	// planPruned: only TopKPairs sinks want it; the pruned
	// advance→certify pass resolves it.
	planPruned
	// planFull: a FullProfile sink wants it (or pruning is ablated); a
	// whole-profile pass resolves it — incrementally, unless
	// Config.DisableIncremental or the pass doubles as the pruned
	// machinery's seed.
	planFull
)

// planLengths decides one plan per length from the sinks that want it.
// cfg.DisablePruning upgrades every wanted length to the full pass (the
// ablation contract: identical output, no lower-bound machinery).
func planLengths(cfg Config, sinks []Sink) []lengthPlan {
	plans := make([]lengthPlan, cfg.LMax-cfg.LMin+1)
	for idx := range plans {
		l := cfg.LMin + idx
		full, pairs := false, false
		for _, s := range sinks {
			if !sinkWants(s, l) {
				continue
			}
			if s.Requires() == FullProfile {
				full = true
			} else {
				pairs = true
			}
		}
		switch {
		case full || (cfg.DisablePruning && pairs):
			plans[idx] = planFull
		case pairs:
			plans[idx] = planPruned
		default:
			plans[idx] = planSkip
		}
	}
	return plans
}

// pairsSink accumulates the per-length results and the ℓmin profile —
// the classic VALMOD output, reimplemented as the first pipeline sink.
type pairsSink struct {
	perLength []LengthResult
	mpMin     *profile.MatrixProfile
}

func (*pairsSink) Requires() Requirement { return TopKPairs }

func (s *pairsSink) Consume(ld LengthData) {
	if s.mpMin == nil {
		s.mpMin = ld.Profile // first delivery is ℓmin; its profile is always present
	}
	lr := ld.Result
	lr.Pairs = append([]profile.MotifPair(nil), lr.Pairs...) // engine scratch → owned copy
	s.perLength = append(s.perLength, lr)
}

// valmapSink folds each length's pairs into the VALMAP meta structure:
// seeded from the (always present) ℓmin profile, then one checkpoint per
// improving length.
type valmapSink struct {
	vm *valmap.VALMAP
}

func newValmapSink(lmin, lmax, sMin int) (*valmapSink, error) {
	vm, err := valmap.New(lmin, lmax, sMin)
	if err != nil {
		return nil, err
	}
	return &valmapSink{vm: vm}, nil
}

func (*valmapSink) Requires() Requirement { return TopKPairs }

func (s *valmapSink) Consume(ld LengthData) {
	if ld.L == s.vm.LMin {
		// VALMAP starts as the length-normalized ℓmin profile (flat LP).
		// A nil profile means ℓmin admits no non-trivial pair (the range
		// starts flush against the series end): seal the empty map and let
		// longer lengths, if any, improve nothing.
		if mp := ld.Profile; mp != nil {
			for i := range mp.Dist {
				if mp.Index[i] >= 0 {
					s.vm.InitFromProfile(i, series.LengthNormalize(mp.Dist[i], ld.L), mp.Index[i], ld.L)
				}
			}
		}
		s.vm.Seal()
		return
	}
	s.vm.BeginLength(ld.L)
	for _, p := range ld.Result.Pairs {
		nd := p.NormDist()
		s.vm.Apply(p.A, nd, p.B, ld.L)
		s.vm.Apply(p.B, nd, p.A, ld.L)
	}
	s.vm.EndLength()
}

// Discord is one variable-length anomaly: the subsequence at offset I of
// length L whose nearest non-trivial neighbor is Dist away — the larger,
// the more isolated the subsequence.
type Discord struct {
	I    int     // subsequence offset
	L    int     // subsequence length
	Dist float64 // exact z-normalized nearest-neighbor distance
}

// NormDist returns the length-normalized distance d·√(1/L) used to rank
// discords of different lengths, mirroring MotifPair.NormDist.
func (d Discord) NormDist() float64 {
	return d.Dist * math.Sqrt(1/float64(d.L))
}

// discordSink extracts the top-k variable-length discords under the
// two-stage definition the suite documents (the discord analogue of
// Result.TopMotifs, which likewise ranks the per-length *reported*
// pairs): stage one keeps each length's k best discords from the exact
// profile (largest NN distance, trivial matches de-duplicated — the
// classic fixed-length extraction); stage two ranks those candidates by
// length-normalized distance and greedily selects under cross-length
// trivial-match exclusion. Every reported distance is the exact NN
// distance — that is what FullProfile buys; the pruned pass certifies
// only the top-k pairs, never per-offset NN distances. Note the
// cross-length exclusion applies to stage-one survivors only: a
// candidate below a length's top k is never reconsidered, even if
// exclusion removes that length's retained candidates.
type discordSink struct {
	k      int
	factor int // exclusion factor (already defaulted by Config.Fill)
	cands  []Discord
}

func newDiscordSink(k, factor int) *discordSink {
	return &discordSink{k: k, factor: factor}
}

func (*discordSink) Requires() Requirement { return FullProfile }

func (s *discordSink) Consume(ld LengthData) {
	if ld.Profile == nil {
		return // length admits no non-trivial pair: no finite NN distance exists
	}
	for _, d := range ld.Profile.TopKDiscords(s.k) {
		s.cands = append(s.cands, Discord{I: d.I, L: ld.L, Dist: d.Dist})
	}
}

// addCandidates feeds stage-one candidates that were extracted without a
// materialized profile — the fast coarse-to-fine plan (modes.go) resolves
// most lengths through the lower-bound certificate and hands the exact
// survivors here directly, bypassing the Profile-based Consume.
func (s *discordSink) addCandidates(cands []Discord) {
	s.cands = append(s.cands, cands...)
}

// Discords returns the final cross-length ranking: candidates sorted by
// length-normalized distance descending (ties: shorter length, then
// smaller offset — a total order, so the selection is deterministic),
// greedily keeping a candidate unless it is a trivial match of an
// already-chosen discord: |I−I'| < ⌈max(L, L')/factor⌉.
func (s *discordSink) Discords() []Discord {
	cands := append([]Discord(nil), s.cands...)
	sort.Slice(cands, func(a, b int) bool {
		da, db := cands[a].NormDist(), cands[b].NormDist()
		if da != db {
			return da > db
		}
		if cands[a].L != cands[b].L {
			return cands[a].L < cands[b].L
		}
		return cands[a].I < cands[b].I
	})
	var out []Discord
	for _, c := range cands {
		if len(out) >= s.k {
			break
		}
		trivial := false
		for _, u := range out {
			lz := c.L
			if u.L > lz {
				lz = u.L
			}
			if abs(c.I-u.I) < profile.ExclusionZone(lz, s.factor) {
				trivial = true
				break
			}
		}
		if !trivial {
			out = append(out, c)
		}
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
