package core

import (
	"math"
	"math/rand"
	"testing"
)

// TestWorkersProduceEquivalentResults: the parallel seed partitions rows,
// which are independent; every worker count must give the same profile
// values and pair distances within floating tolerance (block-boundary rows
// are seeded by FFT instead of the serial recurrence chain, shifting
// distances by ~1e-10, which can re-resolve exact ties).
func TestWorkersProduceEquivalentResults(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := randWalk(rng, 900)
	var results []*Result
	for _, w := range []int{1, 2, 4, 8} {
		res, err := Run(x, Config{LMin: 16, LMax: 40, TopK: 3, P: 5, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	base := results[0]
	for ri, res := range results[1:] {
		for i := range base.MPMin.Dist {
			a, b := base.MPMin.Dist[i], res.MPMin.Dist[i]
			if math.IsInf(a, 1) != math.IsInf(b, 1) {
				t.Fatalf("workers variant %d: profile slot %d inf mismatch", ri, i)
			}
			if !math.IsInf(a, 1) && math.Abs(a-b) > 1e-7*(1+a) {
				t.Fatalf("workers variant %d: profile slot %d: %g vs %g", ri, i, a, b)
			}
		}
		for li := range base.PerLength {
			a, b := base.PerLength[li].Pairs, res.PerLength[li].Pairs
			if len(a) != len(b) {
				t.Fatalf("workers variant %d: m=%d pair count", ri, base.PerLength[li].M)
			}
			for pi := range a {
				if math.Abs(a[pi].Dist-b[pi].Dist) > 1e-7*(1+a[pi].Dist) {
					t.Fatalf("workers variant %d: m=%d pair %d: %v vs %v",
						ri, base.PerLength[li].M, pi, a[pi], b[pi])
				}
			}
		}
	}
}

// TestParallelSeedExact: the default (all cores) configuration stays exact.
func TestParallelSeedExact(t *testing.T) {
	x := sineMix(700)
	res, err := Run(x, Config{LMin: 20, LMax: 44, TopK: 2, P: 6, Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range res.PerLength {
		want := referencePairs(t, x, lr.M, 2, 0)
		assertPairsEquivalent(t, lr.StatsTag(), lr.Pairs, want)
	}
}

// TestWorkersBitIdentical: the seed scan runs on a fixed block grid and the
// per-length advance pass touches each anchor independently, so every
// worker count must produce byte-for-byte identical results — not merely
// tolerance-equal. This guards the parallel anchor path: any cross-anchor
// data dependency or schedule-sensitive arithmetic would break it.
func TestWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	x := randWalk(rng, 1400)
	var results []*Result
	for _, w := range []int{1, 2, 4, 7} {
		res, err := Run(x, Config{LMin: 12, LMax: 60, TopK: 4, P: 6, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	base := results[0]
	for ri, res := range results[1:] {
		for i := range base.MPMin.Dist {
			if base.MPMin.Dist[i] != res.MPMin.Dist[i] || base.MPMin.Index[i] != res.MPMin.Index[i] {
				t.Fatalf("variant %d: profile slot %d: (%v,%d) vs (%v,%d)", ri, i,
					base.MPMin.Dist[i], base.MPMin.Index[i], res.MPMin.Dist[i], res.MPMin.Index[i])
			}
		}
		for li := range base.PerLength {
			a, b := base.PerLength[li], res.PerLength[li]
			if len(a.Pairs) != len(b.Pairs) {
				t.Fatalf("variant %d: m=%d pair count %d vs %d", ri, a.M, len(a.Pairs), len(b.Pairs))
			}
			for pi := range a.Pairs {
				if a.Pairs[pi] != b.Pairs[pi] {
					t.Fatalf("variant %d: m=%d pair %d: %v vs %v", ri, a.M, pi, a.Pairs[pi], b.Pairs[pi])
				}
			}
			if a.Stats != b.Stats {
				t.Fatalf("variant %d: m=%d stats %+v vs %+v", ri, a.M, a.Stats, b.Stats)
			}
		}
		for i := range base.VMap.MPn {
			if base.VMap.MPn[i] != res.VMap.MPn[i] || base.VMap.IP[i] != res.VMap.IP[i] || base.VMap.LP[i] != res.VMap.LP[i] {
				t.Fatalf("variant %d: VALMAP slot %d differs", ri, i)
			}
		}
	}
}

// TestWorkersBitIdenticalDegenerate extends the bit-identity guarantee to
// the adversarial inputs the kernel parity suite uses: planted constant
// segments (σ=0 windows, hitting the degenerate row scans and the
// incremental plan's fixupDegenerate post-pass) and exclusion zones
// clipped at the series edges — across both the pruned and the
// incremental (discords) plan, at every worker count.
func TestWorkersBitIdenticalDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	x := randWalk(rng, 1100)
	for i := 300; i < 380; i++ {
		x[i] = 3.25 // interior constant segment
	}
	for i := len(x) - 60; i < len(x); i++ {
		x[i] = -1.5 // constant segment flush against the series end
	}
	for _, discords := range []int{0, 3} {
		var results []*Result
		for _, w := range []int{1, 2, 4, 5} {
			res, err := Run(x, Config{LMin: 12, LMax: 40, TopK: 3, P: 5, Discords: discords, Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, res)
		}
		base := results[0]
		for ri, res := range results[1:] {
			for i := range base.MPMin.Dist {
				if base.MPMin.Dist[i] != res.MPMin.Dist[i] || base.MPMin.Index[i] != res.MPMin.Index[i] {
					t.Fatalf("discords=%d variant %d: profile slot %d differs", discords, ri, i)
				}
			}
			for li := range base.PerLength {
				a, b := base.PerLength[li], res.PerLength[li]
				if len(a.Pairs) != len(b.Pairs) {
					t.Fatalf("discords=%d variant %d: m=%d pair count", discords, ri, a.M)
				}
				for pi := range a.Pairs {
					if a.Pairs[pi] != b.Pairs[pi] {
						t.Fatalf("discords=%d variant %d: m=%d pair %d: %v vs %v",
							discords, ri, a.M, pi, a.Pairs[pi], b.Pairs[pi])
					}
				}
			}
			if len(base.Discords) != len(res.Discords) {
				t.Fatalf("discords=%d variant %d: discord count", discords, ri)
			}
			for di := range base.Discords {
				if base.Discords[di] != res.Discords[di] {
					t.Fatalf("discords=%d variant %d: discord %d: %+v vs %+v",
						discords, ri, di, base.Discords[di], res.Discords[di])
				}
			}
		}
	}
}

// TestDiagBlocksGeometry: the block grid must cover [excl, s) exactly once
// in order, honor the minimum interleave width (so the vectorized
// multi-diagonal kernels engage even when a single diagonal exceeds the
// cell target), and keep the block count bounded as the workload grows.
func TestDiagBlocksGeometry(t *testing.T) {
	for _, tc := range []struct{ s, excl int }{
		{100, 5}, {1000, 16}, {5000, 32}, {200_000, 64}, {1_000_001, 25},
	} {
		blocks := diagBlocks(tc.s, tc.excl)
		k := tc.excl
		for bi, b := range blocks {
			if b.k0 != k || b.k1 <= b.k0 || b.k1 > tc.s {
				t.Fatalf("s=%d excl=%d: block %d = [%d,%d) breaks coverage at k=%d", tc.s, tc.excl, bi, b.k0, b.k1, k)
			}
			if bi < len(blocks)-1 && b.k1-b.k0 < diagBlockMinWidth {
				t.Fatalf("s=%d excl=%d: block %d only %d diagonals wide", tc.s, tc.excl, bi, b.k1-b.k0)
			}
			k = b.k1
		}
		if len(blocks) > 0 && k != tc.s {
			t.Fatalf("s=%d excl=%d: grid ends at %d", tc.s, tc.excl, k)
		}
		// The scaled cell target keeps the grid close to diagBlockShards
		// blocks no matter how large the triangle gets.
		if len(blocks) > diagBlockShards+1 {
			t.Fatalf("s=%d excl=%d: %d blocks, want ≤ %d", tc.s, tc.excl, len(blocks), diagBlockShards+1)
		}
	}
	if b := diagBlocks(10, 10); b != nil {
		t.Fatalf("empty range produced %v", b)
	}
}

// TestMergeDiagLocals: the sharded parallel fold must produce exactly the
// serial fold's winners, including on exact-tie slots where the smaller
// neighbor index wins, at sizes both below and above the parallel gate.
func TestMergeDiagLocals(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, s := range []int{100, mergeParallelMinSlots + 1001} {
		const workers = 4
		r := &run{sMin: s}
		r.ensureDiagScratch(workers)
		for w := 0; w < workers; w++ {
			for i := 0; i < s; i++ {
				if rng.Intn(5) == 0 {
					r.diagCorr[w][i] = math.Inf(-1)
					r.diagIdx[w][i] = -1
					continue
				}
				r.diagCorr[w][i] = float64(rng.Intn(8)) / 8 // coarse values force exact ties
				r.diagIdx[w][i] = int32(rng.Intn(64))
			}
		}
		wantC := make([]float64, s)
		wantI := make([]int32, s)
		copy(wantC, r.diagCorr[0])
		copy(wantI, r.diagIdx[0])
		for w := 1; w < workers; w++ {
			for i := 0; i < s; i++ {
				wc, wi := r.diagCorr[w][i], r.diagIdx[w][i]
				if wi < 0 {
					continue
				}
				if wc > wantC[i] || (wc == wantC[i] && wi < wantI[i]) {
					wantC[i], wantI[i] = wc, wi
				}
			}
		}
		r.mergeDiagLocals(workers, s)
		for i := 0; i < s; i++ {
			if r.diagCorr[0][i] != wantC[i] || r.diagIdx[0][i] != wantI[i] {
				t.Fatalf("s=%d slot %d: merged (%v,%d), want (%v,%d)",
					s, i, r.diagCorr[0][i], r.diagIdx[0][i], wantC[i], wantI[i])
			}
		}
	}
}

// TestProgressCallback: OnLength fires once per length, in order, with
// results matching the returned PerLength slice.
func TestProgressCallback(t *testing.T) {
	x := sineMix(500)
	var seen []Progress
	cfg := Config{LMin: 16, LMax: 32, TopK: 2, P: 4, OnLength: func(p Progress) {
		seen = append(seen, p)
	}}
	res, err := Run(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 32 - 16 + 1
	if len(seen) != total {
		t.Fatalf("%d progress events, want %d", len(seen), total)
	}
	for i, p := range seen {
		if p.Done != i+1 || p.Total != total {
			t.Fatalf("event %d: Done=%d Total=%d", i, p.Done, p.Total)
		}
		if p.Result.M != 16+i {
			t.Fatalf("event %d: length %d, want %d", i, p.Result.M, 16+i)
		}
		if len(p.Result.Pairs) != len(res.PerLength[i].Pairs) {
			t.Fatalf("event %d: %d pairs, result has %d", i, len(p.Result.Pairs), len(res.PerLength[i].Pairs))
		}
	}
}

// TestWorkersClampedOnTinySeries: more workers than rows must not panic or
// lose rows.
func TestWorkersClampedOnTinySeries(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := randWalk(rng, 80)
	res, err := Run(x, Config{LMin: 8, LMax: 16, TopK: 1, Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range res.PerLength {
		want := referencePairs(t, x, lr.M, 1, 0)
		if len(lr.Pairs) != len(want) {
			t.Fatalf("m=%d: %d pairs want %d", lr.M, len(lr.Pairs), len(want))
		}
		if len(want) > 0 && math.Abs(lr.Pairs[0].Dist-want[0].Dist) > 1e-6*(1+want[0].Dist) {
			t.Fatalf("m=%d: %g want %g", lr.M, lr.Pairs[0].Dist, want[0].Dist)
		}
	}
}
