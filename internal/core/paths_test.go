package core

// Tests that force each resolution path of the per-length loop — pure
// certification, individual hot-row recompute, contiguous-run recompute,
// and full-length fallback — and verify exactness on all of them.

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/seriesmining/valmod/internal/series"
)

// zdistAt recomputes one pair distance from scratch.
func zdistAt(x []float64, a, b, m int) float64 {
	return series.ZNormDist(x[a:a+m], x[b:b+m])
}

// exactAgainstReference runs VALMOD under cfg and checks every length's
// top-k distances against STOMP.
func exactAgainstReference(t *testing.T, x []float64, cfg Config) *Result {
	t.Helper()
	res, err := Run(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range res.PerLength {
		want := referencePairs(t, x, lr.M, cfg.TopK, cfg.ExclusionFactor)
		assertPairsEquivalent(t, lr.StatsTag(), lr.Pairs, want)
	}
	return res
}

func TestHotRowPathExact(t *testing.T) {
	// RecomputeFraction=1.0 forbids the full-length fallback, so every
	// uncertified anchor goes through the hot-row / run recompute paths.
	rng := rand.New(rand.NewSource(11))
	x := randWalk(rng, 500)
	res := exactAgainstReference(t, x, Config{
		LMin: 12, LMax: 40, TopK: 2, P: 4, RecomputeFraction: 1.0,
	})
	sum := res.Summary()
	if sum.FullRecomputes != 1 { // only the mandatory ℓmin seed
		t.Errorf("full recomputes = %d, want 1", sum.FullRecomputes)
	}
	if sum.RecomputedAnchors == 0 {
		t.Error("expected the recompute paths to fire on a random walk")
	}
}

func TestFullFallbackPathExact(t *testing.T) {
	// A microscopic threshold forces the full-length fallback whenever
	// anything at all needs recomputing.
	rng := rand.New(rand.NewSource(12))
	x := randWalk(rng, 400)
	res := exactAgainstReference(t, x, Config{
		LMin: 10, LMax: 30, TopK: 2, P: 4, RecomputeFraction: 1e-9,
	})
	sum := res.Summary()
	if sum.RecomputedAnchors != 0 {
		t.Errorf("individual recomputes = %d, want 0 under full-fallback config", sum.RecomputedAnchors)
	}
}

func TestPureCertificationOnEasyData(t *testing.T) {
	// A clean periodic signal certifies nearly everything; most lengths
	// must resolve without any recompute.
	x := sineMix(800)
	res := exactAgainstReference(t, x, Config{LMin: 24, LMax: 56, TopK: 1, P: 10})
	sum := res.Summary()
	if sum.CertifiedAnchors == 0 {
		t.Fatal("no certified anchors on sinusoidal data")
	}
	noWork := 0
	for _, lr := range res.PerLength[1:] {
		if lr.Stats.Recomputed == 0 && !lr.Stats.FullRecompute {
			noWork++
		}
	}
	if noWork == 0 {
		t.Error("expected at least some lengths resolved by certification alone")
	}
}

func TestRunContextCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := randWalk(rng, 3000)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	time.Sleep(2 * time.Millisecond)
	_, err := RunContext(ctx, x, Config{LMin: 32, LMax: 512, TopK: 1})
	if err != context.DeadlineExceeded {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
}

func TestDegenerateFlatRegions(t *testing.T) {
	// Flat (σ=0) stretches exercise the degenerate-anchor branches of the
	// scan paths. Exact-zero ties between flat windows make the greedy
	// top-k extraction legitimately tie-dependent, so instead of demanding
	// the reference's exact pair set, verify (a) the best distance matches
	// the reference and (b) every reported pair is truthful and obeys the
	// exclusion/dedup constraints.
	rng := rand.New(rand.NewSource(14))
	x := randWalk(rng, 400)
	for i := 120; i < 180; i++ {
		x[i] = 5.0
	}
	cfg := Config{LMin: 10, LMax: 28, TopK: 2, P: 4}
	res, err := Run(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range res.PerLength {
		want := referencePairs(t, x, lr.M, 1, 0)
		if len(want) == 0 {
			continue
		}
		if len(lr.Pairs) == 0 {
			t.Fatalf("m=%d: no pairs, reference best %g", lr.M, want[0].Dist)
		}
		if math.Abs(lr.Pairs[0].Dist-want[0].Dist) > 1e-6*(1+want[0].Dist) {
			t.Fatalf("m=%d: best %g, reference %g", lr.M, lr.Pairs[0].Dist, want[0].Dist)
		}
		for pi, p := range lr.Pairs {
			truth := zdistAt(x, p.A, p.B, lr.M)
			if math.Abs(p.Dist-truth) > 1e-6*(1+truth) {
				t.Fatalf("m=%d pair %d: reported %g, recomputed %g", lr.M, pi, p.Dist, truth)
			}
			if pi > 0 && p.Dist < lr.Pairs[pi-1].Dist-1e-12 {
				t.Fatalf("m=%d: pairs not sorted", lr.M)
			}
		}
	}
}

func TestConstantSeriesDoesNotPanic(t *testing.T) {
	x := make([]float64, 200)
	for i := range x {
		x[i] = 3.25
	}
	res, err := Run(x, Config{LMin: 8, LMax: 16, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Every pair of constant windows has distance 0 by convention.
	for _, lr := range res.PerLength {
		for _, p := range lr.Pairs {
			if p.Dist != 0 {
				t.Fatalf("constant series pair distance %g", p.Dist)
			}
		}
	}
}

func TestExclusionFactorOverride(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	x := randWalk(rng, 300)
	res, err := Run(x, Config{LMin: 10, LMax: 20, TopK: 1, ExclusionFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range res.PerLength {
		want := referencePairs(t, x, lr.M, 1, 2)
		assertPairsEquivalent(t, lr.StatsTag(), lr.Pairs, want)
		for _, p := range lr.Pairs {
			if p.B-p.A < (lr.M+1)/2 {
				t.Fatalf("m=%d: pair %v violates the m/2 exclusion zone", lr.M, p)
			}
		}
	}
}

func TestNoPairsAtAnyLength(t *testing.T) {
	// Series so short relative to LMax that upper lengths admit no pair.
	rng := rand.New(rand.NewSource(16))
	x := randWalk(rng, 40)
	res, err := Run(x, Config{LMin: 8, LMax: 36, TopK: 2, P: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range res.PerLength {
		want := referencePairs(t, x, lr.M, 2, 0)
		if len(lr.Pairs) != len(want) {
			t.Fatalf("m=%d: %d pairs, reference %d", lr.M, len(lr.Pairs), len(want))
		}
		for i := range want {
			if math.Abs(lr.Pairs[i].Dist-want[i].Dist) > 1e-6*(1+want[i].Dist) {
				t.Fatalf("m=%d pair %d mismatch", lr.M, i)
			}
		}
	}
}

func TestVALMAPStateAtMidRun(t *testing.T) {
	x := sineMix(600)
	res, err := Run(x, Config{LMin: 16, LMax: 48, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	mid := 32
	mpn, _, lp, err := res.VMap.StateAt(mid)
	if err != nil {
		t.Fatal(err)
	}
	// No state cell may record a length beyond the checkpoint.
	for i := range lp {
		if lp[i] > mid {
			t.Fatalf("LP[%d] = %d beyond state length %d", i, lp[i], mid)
		}
	}
	// The mid state must dominate the final state (monotone improvement).
	for i := range mpn {
		if res.VMap.MPn[i] > mpn[i]+1e-12 {
			t.Fatalf("final MPn[%d] worse than mid-run state", i)
		}
	}
}
