package core

// Tests for the per-length planner: hybrid plans mixing TopKPairs and
// FullProfile sinks, length-subset sinks (LengthSelector), skipped
// lengths, and the seeding interplay between the pruned machinery and the
// whole-profile passes.

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"github.com/seriesmining/valmod/internal/stomp"
)

// assertProfileMatchesBrute compares a delivered profile against the
// definitional baseline.
func assertProfileMatchesBrute(t *testing.T, x []float64, ld LengthData) {
	t.Helper()
	if ld.Profile == nil {
		t.Fatalf("l=%d: nil profile", ld.L)
	}
	want, err := stomp.Brute(x, ld.L, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Dist {
		g, b := ld.Profile.Dist[i], want.Dist[i]
		if math.IsInf(g, 1) != math.IsInf(b, 1) || (!math.IsInf(b, 1) && math.Abs(g-b) > 1e-8*(1+b)) {
			t.Fatalf("l=%d i=%d: dist %g, brute %g", ld.L, i, g, b)
		}
	}
}

// TestHybridPlanMixedSinks: a pairs sink wanting every length plus a
// FullProfile sink wanting two mid-range lengths. The wanted lengths run
// the incremental pass, the rest the pruned pass — and the pruned pass
// must stay exact across the gaps the full lengths leave in its
// advance state (the multi-step entry catch-up).
func TestHybridPlanMixedSinks(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	x := randWalk(rng, 400)
	const lmin, lmax = 10, 34
	for _, w := range []int{1, 4} {
		var seen []LengthData
		pairs := &collectSink{out: &seen}
		full := &profileSink{lengths: map[int]bool{14: true, 22: true}}
		eng := NewEngine()
		stats, err := eng.runSinks(context.Background(), x,
			Config{LMin: lmin, LMax: lmax, TopK: 2, P: 4, Workers: w}, []Sink{pairs, full})
		if err != nil {
			t.Fatal(err)
		}
		if stats.IncrementalLengths != 2 || stats.RecomputeLengths != 1 ||
			stats.PrunedLengths != (lmax-lmin+1)-3 || stats.SkippedLengths != 0 {
			t.Fatalf("workers=%d: plan stats %+v", w, stats)
		}
		if len(full.got) != 2 || full.got[0].L != 14 || full.got[1].L != 22 {
			t.Fatalf("workers=%d: full sink saw %d lengths", w, len(full.got))
		}
		for _, ld := range full.got {
			assertProfileMatchesBrute(t, x, ld)
		}
		if len(seen) != lmax-lmin+1 {
			t.Fatalf("workers=%d: pairs sink saw %d lengths, want %d", w, len(seen), lmax-lmin+1)
		}
		for _, ld := range seen {
			want := referencePairs(t, x, ld.L, 2, 0)
			assertPairsEquivalent(t, ld.Result.StatsTag(), ld.Result.Pairs, want)
		}
	}
}

// TestHybridPlanFullLengthSeedsPrunedMachinery: when the first length of
// the run is a FullProfile length and pruned lengths follow, the planner
// resolves it with the from-scratch row scan — whose partial-profile
// reseed doubles as the pruned machinery's seed — instead of paying an
// extra seeding pass later.
func TestHybridPlanFullLengthSeedsPrunedMachinery(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	x := randWalk(rng, 350)
	const lmin, lmax = 10, 30
	var seen []LengthData
	pairs := &collectSink{out: &seen}
	full := &profileSink{lengths: map[int]bool{lmin: true}}
	eng := NewEngine()
	stats, err := eng.runSinks(context.Background(), x,
		Config{LMin: lmin, LMax: lmax, TopK: 2, Workers: 1}, []Sink{pairs, full})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RecomputeLengths != 1 || stats.IncrementalLengths != 0 ||
		stats.PrunedLengths != lmax-lmin || stats.HeadSeeds != 0 {
		t.Fatalf("plan stats %+v: want one seeding row scan serving the full sink, no incremental state", stats)
	}
	if len(full.got) != 1 || full.got[0].L != lmin {
		t.Fatalf("full sink saw %d lengths", len(full.got))
	}
	assertProfileMatchesBrute(t, x, full.got[0])
	for _, ld := range seen {
		want := referencePairs(t, x, ld.L, 2, 0)
		assertPairsEquivalent(t, ld.Result.StatsTag(), ld.Result.Pairs, want)
	}
}

// TestSubsetOnlyPlanSkipsLengths: with a single length-subset FullProfile
// sink, every unwanted length is skipped outright — no pruned pass, no
// seed — while progress still ticks once per length and the carried head
// row crosses the gaps with FMA extensions only.
func TestSubsetOnlyPlanSkipsLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	x := randWalk(rng, 300)
	const lmin, lmax = 10, 24
	full := &profileSink{lengths: map[int]bool{12: true, 20: true}}
	var progress []Progress
	eng := NewEngine()
	stats, err := eng.runSinks(context.Background(), x, Config{
		LMin: lmin, LMax: lmax, TopK: 2, Workers: 1,
		OnLength: func(p Progress) { progress = append(progress, p) },
	}, []Sink{full})
	if err != nil {
		t.Fatal(err)
	}
	want := PlanStats{
		IncrementalLengths: 2,
		SkippedLengths:     (lmax - lmin + 1) - 2,
		HeadSeeds:          1,
		HeadExtensions:     20 - 12,
	}
	if stats != want {
		t.Fatalf("plan stats %+v, want %+v", stats, want)
	}
	if len(progress) != lmax-lmin+1 {
		t.Fatalf("%d progress ticks, want %d", len(progress), lmax-lmin+1)
	}
	for i, p := range progress {
		if p.Done != i+1 || p.Total != lmax-lmin+1 || p.Result.M != lmin+i {
			t.Fatalf("progress %d: %+v", i, p)
		}
	}
	if len(full.got) != 2 || full.got[0].L != 12 || full.got[1].L != 20 {
		t.Fatalf("full sink saw %v lengths", len(full.got))
	}
	for _, ld := range full.got {
		assertProfileMatchesBrute(t, x, ld)
	}
}

// TestRunPlanStats: the classic entry points report the planner's work —
// the default pairs query is one seed plus pruned lengths; a discords
// query is incremental everywhere with a single FFT head seed.
func TestRunPlanStats(t *testing.T) {
	x := sineMix(400)
	cfg := Config{LMin: 12, LMax: 28, TopK: 2}
	pruned, err := Run(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lengths := cfg.LMax - cfg.LMin + 1
	if pruned.Plan.RecomputeLengths != 1 || pruned.Plan.PrunedLengths != lengths-1 ||
		pruned.Plan.IncrementalLengths != 0 || pruned.Plan.HeadSeeds != 0 {
		t.Fatalf("pruned plan stats %+v", pruned.Plan)
	}
	cfg.Discords = 2
	full, err := Run(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if full.Plan.IncrementalLengths != lengths || full.Plan.HeadSeeds != 1 ||
		full.Plan.HeadExtensions != lengths-1 || full.Plan.PrunedLengths != 0 {
		t.Fatalf("full plan stats %+v", full.Plan)
	}
}
