package core

// Steady-state allocation discipline: after the first pruned length has
// warmed the run-owned scratch (candidate profile, recompute sets, top-k
// selection buffers, pooled rows), processing a pruned length allocates
// nothing — the engine's per-length hot path is heap-silent. The row pool
// balance test is the matching leak detector: every getRow row must come
// back through putRow, including rows the hot cache retained (drained at
// run end — the path that used to leak).

import (
	"context"
	"math/rand"
	"testing"

	"github.com/seriesmining/valmod/internal/core/anchors"
	"github.com/seriesmining/valmod/internal/fft"
	"github.com/seriesmining/valmod/internal/series"
)

// newTestRun builds a run the way runSinks does, seeded at cfg.LMin, so
// per-length internals can be driven directly.
func newTestRun(t testing.TB, eng *Engine, x []float64, cfg Config) *run {
	t.Helper()
	cfg.Fill()
	sMin := len(x) - cfg.LMin + 1
	r := &run{
		eng:     eng,
		ctx:     context.Background(),
		t:       x,
		st:      series.NewStats(x),
		cfg:     cfg,
		sMin:    sMin,
		workers: 1,
		store:   anchors.NewStore(sMin, hotRowBudgetBytes),
		dists:   make([]float64, sMin),
		indexes: make([]int, sMin),
		maxLBs:  make([]float64, sMin),
		cert:    make([]bool, sMin),
		corr:    fft.NewCorrelator(x, cfg.LMax),
	}
	r.rowQT = eng.getRow(sMin)
	t.Cleanup(func() {
		eng.putRow(r.rowQT)
		r.store.DrainHotRows(eng.putRow)
		r.corr.Release()
	})
	if _, err := r.seedAll(cfg.LMin); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestProcessLengthSteadyStateZeroAlloc asserts the pruned per-length pass
// allocates zero heap objects once the scratch is warm: advance→certify,
// the recompute fixpoint (pooled rows, batch buffers) and the top-k
// extraction all run out of run-owned memory.
func TestProcessLengthSteadyStateZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := randWalk(rng, 4000)
	eng := NewEngine()
	cfg := Config{LMin: 32, LMax: 64, TopK: 5, Workers: 1}
	r := newTestRun(t, eng, x, cfg)

	// Warm the per-length scratch across a few real lengths (capacities
	// grow to their steady sizes, some anchors go hot).
	l := cfg.LMin
	for step := 0; step < 4; step++ {
		l++
		if _, _, err := r.processLength(l); err != nil {
			t.Fatal(err)
		}
	}

	// Re-processing the same length is idempotent (entry catch-up and hot
	// extensions are no-ops at zero pending steps) and exercises the whole
	// pruned pass, so it is the steady-state allocation probe.
	var lr LengthResult
	avg := testing.AllocsPerRun(10, func() {
		var err error
		lr, _, err = r.processLength(l)
		if err != nil {
			t.Fatal(err)
		}
	})
	if lr.Stats.FullRecompute {
		t.Fatalf("measured length fell back to a full recompute; pick a tamer series")
	}
	if len(lr.Pairs) == 0 {
		t.Fatalf("measured length reported no pairs")
	}
	if avg != 0 {
		t.Fatalf("steady-state processLength allocates %.1f objects per length, want 0", avg)
	}
}

// TestRowPoolBalanced is the leak detector on the engine's row pool:
// after runs that exercise seeding, per-anchor recomputes, hot-row
// retention and the discord (incremental) plan, every acquired row has
// been returned — including rows the anchors.Store retained, which the
// run must drain on exit.
func TestRowPoolBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randWalk(rng, 2500)
	eng := NewEngine()
	for _, cfg := range []Config{
		{LMin: 24, LMax: 40, TopK: 5, Workers: 1},
		{LMin: 24, LMax: 40, TopK: 5, Workers: 3},
		{LMin: 24, LMax: 36, TopK: 3, Discords: 3, Workers: 2},
	} {
		if _, err := eng.Run(context.Background(), x, cfg); err != nil {
			t.Fatal(err)
		}
		if b := eng.rowPoolBalance(); b != 0 {
			t.Fatalf("cfg %+v: %d rows acquired but never returned", cfg, b)
		}
	}
}

// BenchmarkProcessLengthSteady is the committed evidence for the
// zero-alloc claim (allocs/op) and the per-length steady-state cost of
// the pruned pass.
func BenchmarkProcessLengthSteady(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	x := randWalk(rng, 4000)
	eng := NewEngine()
	cfg := Config{LMin: 32, LMax: 64, TopK: 5, Workers: 1}
	r := newTestRun(b, eng, x, cfg)
	l := cfg.LMin
	for step := 0; step < 4; step++ {
		l++
		if _, _, err := r.processLength(l); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.processLength(l); err != nil {
			b.Fatal(err)
		}
	}
}
