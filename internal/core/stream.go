package core

// The streaming append engine: live variable-length discovery over a
// growing series. Where the batch engine (engine.go, incremental.go)
// carries dot-product state across *lengths* of a fixed series, the
// Streamer carries it across *time*: per length it retains the last
// column of the self-join (QT(·, j), advanced per appended point with the
// STOMP right-append recurrence via stomp.AppendColumn — no prefix
// recompute, ever) plus the persistent per-offset winner accumulators
// (corr, idx) the batch diagonal pass keeps per worker. One appended
// point costs, per length ℓ over s windows, one O(ℓ) head dot, one O(s)
// column advance and one O(s) kernels.ColScan — O(s·lengths) total, never
// O(n²).
//
// Determinism contract (the equivalence harness in stream_test.go and the
// public TestAppendEqualsBatch pin all three):
//
//   - Parallelism is across lengths only. Each length's arithmetic is one
//     self-contained serial chain (column recurrence in append order,
//     ColScan candidates in ascending offset order), so output is
//     bit-identical at every worker count, and — without WindowCap —
//     bit-identical under any chunking of the same points.
//   - Against the batch engine the stream is tolerance-equivalent, not
//     bit-identical: the column recurrence and the batch diagonal
//     recurrence reach the same dot products along different floating
//     paths. Winner selection uses the same strict total order (corr
//     descending, neighbor offset ascending on exact ties) on both sides.
//   - Sliding-window mode (Config.WindowCap = W) evicts to exactly the
//     trailing W points after every Append. Survivor entries whose best
//     neighbor was evicted are repaired *exactly*: one FFT row +
//     kernels.ArgmaxCorr over the remaining window when such entries are
//     sparse, or a full replay of the column recurrence over the window
//     when they are dense (see evict for the cutover); moments are rebuilt
//     from the retained points, bit-identical to a batch run over that
//     window. Results are therefore always a pure function of the last
//     min(n, W) points.
//
// Snapshot materializes the accumulators into per-length matrix profiles
// and routes them through the same sinks as the batch engine (pairsSink,
// valmapSink, discordSink), so extraction — top-k selection, VALMAP
// folding, cross-length discord ranking, the degenerate constant-window
// fixup — is shared code, not a reimplementation.

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/seriesmining/valmod/internal/faultinject"
	"github.com/seriesmining/valmod/internal/fft"
	"github.com/seriesmining/valmod/internal/kernels"
	"github.com/seriesmining/valmod/internal/profile"
	"github.com/seriesmining/valmod/internal/series"
	"github.com/seriesmining/valmod/internal/stomp"
)

// ErrBadValue is returned by Streamer.Append for non-finite points. The
// offending chunk is rejected whole; the stream state is untouched.
var ErrBadValue = errors.New("core: non-finite value")

// ErrTooShort is returned by Streamer.Snapshot before the stream has
// accumulated LMin points (no length has a single window yet).
var ErrTooShort = errors.New("core: series too short")

// streamLen is the carried state of one subsequence length ℓ. All slices
// have one cell per window of the retained series (s = n − ℓ + 1); they
// grow by one per appended point and shift down on eviction.
type streamLen struct {
	l     int
	excl  int
	invFl float64   // 1/ℓ, computed once (the ONE correlation expression)
	col   []float64 // QT(i, s−1): last column of the self-join
	corr  []float64 // best correlation seen per offset (−Inf none)
	idx   []int32   // that neighbor's offset (−1 none)
	means []float64 // μ_i at ℓ (bit-identical to the batch momentsAt)
	invs  []float64 // 1/σ_i, 0 for degenerate windows
}

// Streamer is the streaming append engine. Not safe for concurrent use;
// callers serialize Append/Snapshot (the service layer holds one mutex
// per stream job).
type Streamer struct {
	cfg     Config
	workers int
	t       []float64 // retained series (trailing WindowCap points when capped)
	st      *series.Stats
	total   int // points ever appended, evicted ones included
	lens    []streamLen

	topk profile.TopKScratch // Snapshot's pair-extraction scratch
	degs []int               // Snapshot's degenerate-offset scratch
}

// NewStreamer validates cfg and returns an empty stream. The length range
// is validated against itself (LMax points suffice for one window of every
// length); series-size checks happen as the stream grows. WindowCap, when
// set, must cover at least one window of the longest length.
func NewStreamer(cfg Config) (*Streamer, error) {
	cfg.Fill()
	if err := ValidateRange(cfg.LMax, cfg.LMin, cfg.LMax); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if cfg.WindowCap > 0 && cfg.WindowCap < cfg.LMax {
		return nil, fmt.Errorf("%w: window_cap=%d: must be >= lmax (%d)", ErrBadConfig, cfg.WindowCap, cfg.LMax)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Streamer{cfg: cfg, workers: workers, st: series.NewStats(nil)}
	for l := cfg.LMin; l <= cfg.LMax; l++ {
		s.lens = append(s.lens, streamLen{
			l:     l,
			excl:  profile.ExclusionZone(l, cfg.ExclusionFactor),
			invFl: 1 / float64(l),
		})
	}
	return s, nil
}

// Cfg returns the stream's effective configuration (defaults filled) —
// what ResumeStreamer must be handed to restore a checkpoint of this
// stream.
func (s *Streamer) Cfg() Config { return s.cfg }

// N returns the number of retained points (= total appended, in uncapped
// mode).
func (s *Streamer) N() int { return len(s.t) }

// Total returns the number of points ever appended, evicted ones included.
func (s *Streamer) Total() int { return s.total }

// Start returns the global offset of the first retained point: Snapshot
// offsets plus Start are offsets into the full appended stream.
func (s *Streamer) Start() int { return s.total - len(s.t) }

// Series returns the retained points. The slice aliases the stream's
// storage: it is valid until the next Append, and callers that retain it
// must copy.
func (s *Streamer) Series() []float64 { return s.t }

// Append extends the stream by values and advances every length's carried
// state — O(len(values)·s·lengths) work, independent of how the same
// points are split into chunks. Non-finite values reject the whole chunk
// with ErrBadValue before any state changes. In sliding-window mode the
// retained series is then trimmed to the trailing WindowCap points.
func (s *Streamer) Append(values []float64) error {
	if err := faultinject.Hit("core.append"); err != nil {
		return err
	}
	for k, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: values[%d]=%v", ErrBadValue, k, v)
		}
	}
	if len(values) == 0 {
		return nil
	}
	n0 := len(s.t)
	s.t = append(s.t, values...)
	s.st.Append(values)
	s.total += len(values)

	err := s.forEachLength(func(_ int, ls *streamLen) error {
		for p := 0; p < len(values); p++ {
			np := n0 + p + 1
			if np < ls.l {
				continue // this length has no window yet
			}
			if err := s.advance(ls, s.t[:np]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if s.cfg.WindowCap > 0 && len(s.t) > s.cfg.WindowCap {
		return s.evict(len(s.t) - s.cfg.WindowCap)
	}
	return nil
}

// advance moves length ls forward to the newest window of t (a prefix of
// the retained series): one column advance, one moment append, one
// ColScan. The new slot's own winner is the running best ColScan returns
// (candidates ascend, so exact-corr ties keep the smallest offset — the
// total order).
func (s *Streamer) advance(ls *streamLen, t []float64) error {
	var err error
	ls.col, err = stomp.AppendColumn(ls.col, t, ls.l)
	if err != nil {
		return err
	}
	j := len(t) - ls.l
	mu, sd := s.st.MeanStd(j, ls.l)
	inv := 0.0
	if sd > 0 {
		inv = 1 / sd
	}
	ls.means = append(ls.means, mu)
	ls.invs = append(ls.invs, inv)
	ls.corr = append(ls.corr, math.Inf(-1))
	ls.idx = append(ls.idx, -1)
	if iEnd := j - ls.excl + 1; iEnd > 0 {
		bc, bi := kernels.ColScan(ls.col, ls.means, ls.invs, iEnd,
			ls.invFl, mu, inv, ls.corr, ls.idx, int32(j), math.Inf(-1), -1)
		if bi >= 0 {
			ls.corr[j], ls.idx[j] = bc, bi
		}
	}
	return nil
}

// evict drops the oldest e points, keeping results a pure function of the
// retained window. Dot products are shift-invariant, so the carried
// column and the winner accumulators shift down; moments are rebuilt from
// the retained points (bit-identical to a batch run over them). A
// surviving entry whose recorded neighbor was evicted is repaired exactly:
// one FFT dot-product row over the window, then ArgmaxCorr with the same
// total order. Entries whose neighbor survived keep their winner — the
// maximum over a set cannot change when only non-maximal elements leave.
func (s *Streamer) evict(e int) error {
	copy(s.t, s.t[e:])
	s.t = s.t[:len(s.t)-e]
	s.st = series.NewStats(s.t)

	// One series spectrum serves every repair; each worker clones it so
	// repairs run concurrently across lengths.
	corr := fft.NewCorrelator(s.t, s.cfg.LMax)
	defer corr.Release()
	workers := s.workers
	if workers > len(s.lens) {
		workers = len(s.lens)
	}
	if workers < 1 {
		workers = 1
	}
	clones := make([]*fft.Correlator, workers)
	rows := make([][]float64, workers)
	clones[0] = corr
	for w := 1; w < workers; w++ {
		clones[w] = corr.Clone()
		defer clones[w].Release()
	}

	return s.forEachLength(func(w int, ls *streamLen) error {
		sNew := len(s.t) - ls.l + 1
		// Count survivors whose recorded neighbor was evicted. Each one
		// costs an FFT row (O(s·log s)), so when they are dense it is
		// cheaper to replay the column recurrence over the whole retained
		// window (O(s²) total) — the same code path as streaming the window
		// into a fresh engine, so the outcome stays a pure function of the
		// retained points. The cutover is deterministic per eviction (it
		// depends only on the accumulator state, never on workers), so
		// worker-count bit-identity is preserved.
		repairs := 0
		for i := 0; i < sNew; i++ {
			if old := ls.idx[i+e]; old >= 0 && int(old) < e {
				repairs++
			}
		}
		if repairs*32 > sNew {
			return s.rebuild(ls)
		}
		copy(ls.col, ls.col[e:])
		ls.col = ls.col[:sNew]
		for i := 0; i < sNew; i++ {
			mu, sd := s.st.MeanStd(i, ls.l)
			ls.means[i] = mu
			if sd > 0 {
				ls.invs[i] = 1 / sd
			} else {
				ls.invs[i] = 0
			}
		}
		ls.means = ls.means[:sNew]
		ls.invs = ls.invs[:sNew]
		for i := 0; i < sNew; i++ {
			old := ls.idx[i+e]
			switch {
			case old < 0:
				ls.corr[i], ls.idx[i] = math.Inf(-1), -1
			case int(old) >= e:
				ls.corr[i], ls.idx[i] = ls.corr[i+e], old-int32(e)
			default:
				// Neighbor evicted: recompute this offset's exact best over
				// the window from one dot-product row.
				if rows[w] == nil {
					rows[w] = make([]float64, len(s.t))
				}
				row := clones[w].Dots(s.t[i:i+ls.l], rows[w])
				e1 := i - ls.excl + 1
				if e1 < 0 {
					e1 = 0
				}
				j2 := i + ls.excl
				if j2 > sNew {
					j2 = sNew
				}
				bc, bj := kernels.ArgmaxCorr(row, ls.means, ls.invs, e1, j2, sNew,
					ls.invFl, ls.means[i], ls.invs[i], math.Inf(-1), -1)
				if bj >= 0 {
					ls.corr[i], ls.idx[i] = bc, int32(bj)
				} else {
					ls.corr[i], ls.idx[i] = math.Inf(-1), -1
				}
			}
		}
		ls.corr = ls.corr[:sNew]
		ls.idx = ls.idx[:sNew]
		return nil
	})
}

// rebuild discards one length's carried state and replays the column
// recurrence over the retained series from scratch — bit-identical to
// feeding the trailing window into a fresh stream. evict switches to it
// when eviction invalidated so many neighbors that per-slot FFT repairs
// would cost more than the replay.
func (s *Streamer) rebuild(ls *streamLen) error {
	ls.col = ls.col[:0]
	ls.corr = ls.corr[:0]
	ls.idx = ls.idx[:0]
	ls.means = ls.means[:0]
	ls.invs = ls.invs[:0]
	for p := ls.l; p <= len(s.t); p++ {
		if err := s.advance(ls, s.t[:p]); err != nil {
			return err
		}
	}
	return nil
}

// forEachLength runs fn over every length, claiming lengths from an
// atomic counter across min(workers, lengths) goroutines. fn receives the
// worker slot for per-worker scratch. Each length is touched by exactly
// one worker and the per-length work is identical regardless of which,
// so worker count never changes output bits.
func (s *Streamer) forEachLength(fn func(w int, ls *streamLen) error) error {
	workers := s.workers
	if workers > len(s.lens) {
		workers = len(s.lens)
	}
	if workers <= 1 {
		for i := range s.lens {
			if err := fn(0, &s.lens[i]); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(s.lens))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(s.lens) {
					return
				}
				errs[i] = fn(w, &s.lens[i])
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Snapshot materializes the carried state into a full Result over the
// retained series, covering lengths [LMin, min(LMax, n)]. It is
// read-only with respect to the stream (Append may continue afterwards)
// and returns ErrTooShort before the first window exists. Materialized
// lengths flow through the same sink pipeline as the batch engine, in
// ascending length order on this goroutine, so pair extraction, VALMAP
// folding and discord ranking are shared code. Offsets are relative to
// the retained window; add Start() for stream-global offsets.
func (s *Streamer) Snapshot() (*Result, error) {
	n := len(s.t)
	if n < s.cfg.LMin {
		return nil, fmt.Errorf("%w: %d points, need %d", ErrTooShort, n, s.cfg.LMin)
	}
	cfg := s.cfg
	if cfg.LMax > n {
		cfg.LMax = n
	}
	pairs := &pairsSink{}
	vms, err := newValmapSink(cfg.LMin, cfg.LMax, n-cfg.LMin+1)
	if err != nil {
		return nil, err
	}
	sinks := []Sink{pairs, vms}
	var ds *discordSink
	if cfg.Discords > 0 {
		ds = newDiscordSink(cfg.Discords, cfg.ExclusionFactor)
		sinks = append(sinks, ds)
	}
	mp := profile.New(0, 0, 0) // recycled across lengths; sinks copy what they keep
	for li := range s.lens {
		ls := &s.lens[li]
		if ls.l > cfg.LMax {
			break
		}
		ld := s.materialize(ls, mp)
		if ld.L == cfg.LMin && ld.Profile == nil {
			// The VALMAP seeds from the ℓmin profile unconditionally; a
			// length admitting no non-trivial pair seeds it empty (every
			// entry +Inf/−1) rather than not at all.
			mp.Reset(ls.l, ls.excl, n-ls.l+1)
			ld.Profile = mp
		}
		// pairsSink retains the first delivered profile as MPMin; hand the
		// scratch over and start a fresh one for the remaining lengths.
		retained := ld.Profile == mp && pairs.mpMin == nil
		for _, snk := range sinks {
			if sinkWants(snk, ld.L) {
				snk.Consume(ld)
			}
		}
		if retained {
			mp = profile.New(0, 0, 0)
		}
	}
	res := &Result{
		N:         n,
		Cfg:       cfg,
		MPMin:     pairs.mpMin,
		PerLength: pairs.perLength,
		VMap:      vms.vm,
	}
	if ds != nil {
		res.Discords = ds.Discords()
	}
	return res, nil
}

// materialize turns one length's accumulators into the LengthData the
// sinks consume: clamp each winner's correlation to [−1, 1], convert with
// d = √(2ℓ(1−c)), apply the degenerate constant-window fixup — exactly
// the batch materialization in processLengthIncremental. Lengths admitting
// no non-trivial pair (s ≤ excl) deliver a nil profile, matching the
// batch contract.
func (s *Streamer) materialize(ls *streamLen, mp *profile.MatrixProfile) LengthData {
	sl := len(s.t) - ls.l + 1
	lr := LengthResult{M: ls.l}
	lr.Stats.FullRecompute = true
	lr.Stats.Incremental = true
	if sl <= ls.excl {
		return LengthData{L: ls.l, Result: lr}
	}
	mp.Reset(ls.l, ls.excl, sl)
	fl := float64(ls.l)
	for i := 0; i < sl; i++ {
		if ls.idx[i] < 0 {
			continue
		}
		c := ls.corr[i]
		if c > 1 {
			c = 1
		} else if c < -1 {
			c = -1
		}
		mp.Dist[i] = math.Sqrt(2 * fl * (1 - c))
		mp.Index[i] = int(ls.idx[i])
	}
	s.degs = applyDegenerateFixup(mp, ls.invs, ls.excl, s.degs[:0])
	lr.Pairs = mp.TopKPairsInto(s.cfg.TopK, &s.topk)
	return LengthData{L: ls.l, Result: lr, Profile: mp}
}

// streamCkptPayload is the gob image of a Streamer between Appends: the
// retained series, the total appended count, and every length's carried
// column/winner state. Stats and the derived per-length constants are
// rebuilt on resume (series.Stats.Append is bit-identical to a rebuild, so
// recomputing them cannot perturb results). Slices alias live stream state
// at capture time — encoding happens synchronously inside Checkpoint.
type streamCkptPayload struct {
	CfgDigest string
	Total     int
	T         []float64
	Lens      []streamLenCkpt
}

// streamLenCkpt is one length's carried state.
type streamLenCkpt struct {
	L           int
	Col, Corr   []float64
	Idx         []int32
	Means, Invs []float64
}

// streamCfgDigest extends the batch config digest with the streaming-only
// result-affecting knob (WindowCap). Workers stays excluded: stream output
// is worker-count invariant.
func streamCfgDigest(c Config) string {
	return fmt.Sprintf("%s wcap=%d", cfgDigest(c), c.WindowCap)
}

// Checkpoint serializes the stream's full state between Appends into a
// versioned, checksummed blob. ResumeStreamer over the same configuration
// restores a stream whose every future Append and Snapshot is
// bit-identical to the original's — the carried state is restored exactly
// and everything else (moment sums, FFT plans) is a deterministic pure
// function of the retained series. Unlike the batch engine's cadence-driven
// Config.OnCheckpoint, stream checkpoints are caller-pulled: the serving
// layer takes one every N appends.
func (s *Streamer) Checkpoint() ([]byte, error) {
	p := &streamCkptPayload{
		CfgDigest: streamCfgDigest(s.cfg),
		Total:     s.total,
		T:         s.t,
	}
	for i := range s.lens {
		ls := &s.lens[i]
		p.Lens = append(p.Lens, streamLenCkpt{
			L: ls.l, Col: ls.col, Corr: ls.corr, Idx: ls.idx,
			Means: ls.means, Invs: ls.invs,
		})
	}
	return encodeFrame(streamMagic, p)
}

// ResumeStreamer reconstructs a Streamer from a Checkpoint blob taken
// under the same configuration (Workers may differ). Mismatched, corrupted
// or truncated blobs fail with ErrBadCheckpoint; the caller's fallback is
// replaying the appends into a fresh stream, which the chunking-invariance
// contract makes equally exact.
func ResumeStreamer(cfg Config, ckpt []byte) (*Streamer, error) {
	s, err := NewStreamer(cfg)
	if err != nil {
		return nil, err
	}
	p := &streamCkptPayload{}
	if err := decodeFrame(streamMagic, ckpt, p); err != nil {
		return nil, err
	}
	if got := streamCfgDigest(s.cfg); p.CfgDigest != got {
		return nil, fmt.Errorf("%w: config mismatch (checkpoint %q, stream %q)", ErrBadCheckpoint, p.CfgDigest, got)
	}
	if len(p.Lens) != len(s.lens) {
		return nil, fmt.Errorf("%w: %d length sections, want %d", ErrBadCheckpoint, len(p.Lens), len(s.lens))
	}
	if p.Total < len(p.T) {
		return nil, fmt.Errorf("%w: total %d below retained %d", ErrBadCheckpoint, p.Total, len(p.T))
	}
	s.t = p.T
	s.st = series.NewStats(s.t)
	s.total = p.Total
	for i := range s.lens {
		ls, lp := &s.lens[i], &p.Lens[i]
		if lp.L != ls.l {
			return nil, fmt.Errorf("%w: length section %d is for ℓ=%d, want %d", ErrBadCheckpoint, i, lp.L, ls.l)
		}
		sl := len(s.t) - ls.l + 1
		if sl < 0 {
			sl = 0
		}
		if len(lp.Col) != sl || len(lp.Corr) != sl || len(lp.Idx) != sl ||
			len(lp.Means) != sl || len(lp.Invs) != sl {
			return nil, fmt.Errorf("%w: length ℓ=%d sections have inconsistent sizes", ErrBadCheckpoint, ls.l)
		}
		ls.col, ls.corr, ls.idx = lp.Col, lp.Corr, lp.Idx
		ls.means, ls.invs = lp.Means, lp.Invs
	}
	return s, nil
}
