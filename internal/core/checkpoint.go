package core

// Checkpointing: the engine can serialize the carried state of an
// in-flight run at a length-pass boundary — the diagonal head row, the
// per-anchor partial profiles (hot rows included: a hot anchor resolves
// through a different, equally exact arithmetic path than a cold one, so
// bit-identical resume needs them), the accumulated sink state and the
// plan counters — into a self-describing blob, and later resume from it.
// A resumed run produces byte-identical results to the uninterrupted one
// at every worker count, because everything the remaining lengths read is
// either restored exactly (float64 bits survive gob) or recomputed by a
// deterministic pure function of the series (moments, correlator plans).
//
// Blob layout: an 8-byte magic, a big-endian version and payload length,
// the SHA-256 of the payload, then the gob-encoded payload. The hash makes
// torn or corrupted writes detectable before any field is trusted; the
// version gates format evolution. The payload additionally pins the series
// (length + SHA-256 of its float64 bits) and the result-affecting
// configuration, so a checkpoint can never silently resume against the
// wrong input. Workers is deliberately excluded from the digest: the
// determinism contract makes worker count output-neutral, so a run may
// resume with a different parallelism than it started with.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"

	"github.com/seriesmining/valmod/internal/core/anchors"
	"github.com/seriesmining/valmod/internal/profile"
	"github.com/seriesmining/valmod/internal/valmap"
)

// ErrBadCheckpoint is returned when a checkpoint blob is malformed,
// corrupted, of an unknown version, or does not match the series and
// configuration it is being resumed against.
var ErrBadCheckpoint = fmt.Errorf("core: bad checkpoint")

const (
	// ckptMagic frames batch-run checkpoints; streamMagic (stream.go's
	// Checkpoint) frames streaming ones. Same layout, disjoint magics, so
	// neither kind can be resumed as the other.
	ckptMagic   = "VALCKPT1"
	streamMagic = "VALSTRM1"
	ckptVersion = 1
	// ckptHeaderLen = magic(8) + version(4) + payloadLen(8) + sha256(32).
	ckptHeaderLen = 8 + 4 + 8 + 32
)

// ckptPayload is the gob image of a run at a length-pass boundary. Slices
// alias live engine state at capture time — encoding happens synchronously
// before the engine mutates anything, so no defensive copies are taken.
type ckptPayload struct {
	// Identity pins: the checkpoint resumes only against the same series
	// (length and content hash) and the same result-affecting config.
	N          int
	SeriesHash [32]byte
	CfgDigest  string

	// NextIdx is the plan index (0 = ℓmin) of the first length the resumed
	// run must process; everything before it is already folded into the
	// sink sections below.
	NextIdx int
	Plan    PlanStats

	// Pruned-machinery carry (see run.seeded / run.entriesAt).
	Seeded    bool
	EntriesAt int
	Anchors   *anchors.Snapshot // nil until seeded

	// Incremental-engine carry (see incState).
	IncCur    int
	IncHead   []float64
	IncHead32 []float32

	// Built-in sink state: per-length results + ℓmin profile (pairsSink),
	// the VALMAP (valmapSink), and discord candidates (discordSink, only
	// when the run has one).
	PerLength   []LengthResult
	MPMin       *profile.MatrixProfile
	VM          *valmap.VALMAP
	HasDiscords bool
	Cands       []Discord
}

// cfgDigest renders the result-affecting configuration fields. Workers and
// the callback fields are excluded (output-neutral); WindowCap is a
// streaming-only knob batch runs ignore.
func cfgDigest(c Config) string {
	return fmt.Sprintf(
		"v1 lmin=%d lmax=%d k=%d p=%d ex=%d rf=%g dp=%t di=%t disc=%d skip=%t stride=%d rr=%d strict=%t c32=%t",
		c.LMin, c.LMax, c.TopK, c.P, c.ExclusionFactor, c.RecomputeFraction,
		c.DisablePruning, c.DisableIncremental, c.Discords,
		c.LengthSkip, c.LengthStride, c.RefineRadius, c.Strict, c.Carry32)
}

// seriesHash is the SHA-256 of the series' float64 bits (little-endian),
// pinning a checkpoint to the exact input it was taken over.
func seriesHash(t []float64) [32]byte {
	h := sha256.New()
	var buf [8]byte
	for _, v := range t {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// encodeFrame gob-encodes v and frames it: header with magic, version,
// payload length and payload hash, then the gob bytes.
func encodeFrame(magic string, v interface{}) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(v); err != nil {
		return nil, fmt.Errorf("core: encode checkpoint: %w", err)
	}
	payload := body.Bytes()
	out := make([]byte, ckptHeaderLen+len(payload))
	copy(out, magic)
	binary.BigEndian.PutUint32(out[8:], ckptVersion)
	binary.BigEndian.PutUint64(out[12:], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(out[20:], sum[:])
	copy(out[ckptHeaderLen:], payload)
	return out, nil
}

// decodeFrame validates the frame (magic, version, length, hash) and
// decodes the payload into v. Every failure wraps ErrBadCheckpoint.
func decodeFrame(magic string, b []byte, v interface{}) error {
	if len(b) < ckptHeaderLen {
		return fmt.Errorf("%w: truncated header (%d bytes)", ErrBadCheckpoint, len(b))
	}
	if string(b[:8]) != magic {
		return fmt.Errorf("%w: bad magic", ErrBadCheckpoint)
	}
	if ver := binary.BigEndian.Uint32(b[8:]); ver != ckptVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrBadCheckpoint, ver)
	}
	plen := binary.BigEndian.Uint64(b[12:])
	if plen != uint64(len(b)-ckptHeaderLen) {
		return fmt.Errorf("%w: payload length %d, have %d bytes", ErrBadCheckpoint, plen, len(b)-ckptHeaderLen)
	}
	payload := b[ckptHeaderLen:]
	if sum := sha256.Sum256(payload); !bytes.Equal(sum[:], b[20:20+32]) {
		return fmt.Errorf("%w: payload checksum mismatch", ErrBadCheckpoint)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	return nil
}

// encodeCheckpoint / decodeCheckpoint frame the batch-run payload.
func encodeCheckpoint(p *ckptPayload) ([]byte, error) {
	return encodeFrame(ckptMagic, p)
}

func decodeCheckpoint(b []byte) (*ckptPayload, error) {
	p := &ckptPayload{}
	if err := decodeFrame(ckptMagic, b, p); err != nil {
		return nil, err
	}
	return p, nil
}

// ckptSinks are the built-in sink pipeline a checkpoint can serialize.
// Checkpointing is defined only over this pipeline (Engine.Run's): external
// RunSinks consumers carry arbitrary state the engine cannot capture.
type ckptSinks struct {
	pairs *pairsSink
	vms   *valmapSink
	ds    *discordSink // nil when the run has no discord sink
}

// builtinSinks recognizes the Engine.Run sink pipeline, in any order.
// ok is false when any sink is not one of the built-in types or the
// mandatory pairs/valmap sinks are missing.
func builtinSinks(sinks []Sink) (cs ckptSinks, ok bool) {
	for _, s := range sinks {
		switch v := s.(type) {
		case *pairsSink:
			cs.pairs = v
		case *valmapSink:
			cs.vms = v
		case *discordSink:
			cs.ds = v
		default:
			return ckptSinks{}, false
		}
	}
	return cs, cs.pairs != nil && cs.vms != nil
}

// maybeCheckpoint emits a checkpoint through cfg.OnCheckpoint after the
// length at plan index nextIdx−1 completed, when the cadence says so and
// work remains. Emission failures are non-fatal: the run keeps computing,
// it just stops checkpointing (the caller's durable fallback is a scratch
// re-run, which the determinism contract makes byte-identical anyway).
func (r *run) maybeCheckpoint(cs ckptSinks, nextIdx, total int) {
	if r.cfg.OnCheckpoint == nil || r.ckptOff || nextIdx >= total {
		return
	}
	every := r.cfg.CheckpointEvery
	if every < 1 {
		every = 1
	}
	if nextIdx%every != 0 {
		return
	}
	b, err := r.captureCheckpoint(cs, nextIdx)
	if err != nil {
		r.ckptOff = true
		return
	}
	if err := r.cfg.OnCheckpoint(b); err != nil {
		r.ckptOff = true
	}
}

// captureCheckpoint serializes the run's carried state with the next plan
// index to process.
func (r *run) captureCheckpoint(cs ckptSinks, nextIdx int) ([]byte, error) {
	p := &ckptPayload{
		N:          len(r.t),
		SeriesHash: r.seriesSum(),
		CfgDigest:  cfgDigest(r.cfg),
		NextIdx:    nextIdx,
		Plan:       r.planStats,
		Seeded:     r.seeded,
		EntriesAt:  r.entriesAt,
		IncCur:     r.inc.cur,
		IncHead:    r.inc.head,
		IncHead32:  r.inc.head32,
		PerLength:  cs.pairs.perLength,
		MPMin:      cs.pairs.mpMin,
		VM:         cs.vms.vm,
	}
	if r.seeded {
		p.Anchors = r.store.Snapshot()
	}
	if cs.ds != nil {
		p.HasDiscords = true
		p.Cands = cs.ds.cands
	}
	return encodeCheckpoint(p)
}

// seriesSum returns the (lazily computed, per-run cached) series hash.
func (r *run) seriesSum() [32]byte {
	if !r.hashed {
		r.tHash = seriesHash(r.t)
		r.hashed = true
	}
	return r.tHash
}

// restore loads a decoded checkpoint into a freshly constructed run and
// returns the plan index to resume at. Hot rows go through the engine's
// row pool so the get/put balance invariant holds across resumed runs.
func (r *run) restore(p *ckptPayload) int {
	r.planStats = p.Plan
	r.seeded = p.Seeded
	r.entriesAt = p.EntriesAt
	r.inc = incState{head: p.IncHead, head32: p.IncHead32, cur: p.IncCur}
	if p.Anchors != nil {
		r.store.Restore(p.Anchors, r.eng.getRow)
	}
	return p.NextIdx
}

// validateResume checks a decoded checkpoint against the series and config
// of the resuming run.
func (p *ckptPayload) validateResume(t []float64, cfg Config) error {
	if p.N != len(t) {
		return fmt.Errorf("%w: checkpoint is for n=%d, series has n=%d", ErrBadCheckpoint, p.N, len(t))
	}
	if got := cfgDigest(cfg); p.CfgDigest != got {
		return fmt.Errorf("%w: config mismatch (checkpoint %q, run %q)", ErrBadCheckpoint, p.CfgDigest, got)
	}
	if p.SeriesHash != seriesHash(t) {
		return fmt.Errorf("%w: series content mismatch", ErrBadCheckpoint)
	}
	if p.NextIdx < 1 || p.NextIdx > cfg.LMax-cfg.LMin+1 {
		return fmt.Errorf("%w: resume index %d out of range", ErrBadCheckpoint, p.NextIdx)
	}
	return nil
}

// ResumeRun continues a checkpointed Engine.Run over the same series and
// configuration (Workers may differ — the output is worker-count
// invariant) and returns the completed Result, byte-identical to the
// uninterrupted run's. The checkpoint must have been produced through
// Config.OnCheckpoint by a run over the identical series and
// result-affecting configuration; anything else fails with
// ErrBadCheckpoint, in which case the caller's fallback is a fresh run
// (deterministically identical, just slower).
func (e *Engine) ResumeRun(ctx context.Context, t []float64, cfg Config, ckpt []byte) (*Result, error) {
	cfg.Fill()
	if err := cfg.validate(len(t)); err != nil {
		return nil, err
	}
	p, err := decodeCheckpoint(ckpt)
	if err != nil {
		return nil, err
	}
	if err := p.validateResume(t, cfg); err != nil {
		return nil, err
	}
	pairs := &pairsSink{perLength: p.PerLength, mpMin: p.MPMin}
	vms := &valmapSink{vm: p.VM}
	if vms.vm == nil {
		return nil, fmt.Errorf("%w: missing VALMAP section", ErrBadCheckpoint)
	}
	sinks := []Sink{pairs, vms}
	var ds *discordSink
	if cfg.Discords > 0 {
		if !p.HasDiscords {
			return nil, fmt.Errorf("%w: missing discord section", ErrBadCheckpoint)
		}
		ds = newDiscordSink(cfg.Discords, cfg.ExclusionFactor)
		ds.cands = p.Cands
		sinks = append(sinks, ds)
	}
	plan, err := e.runSinksFrom(ctx, t, cfg, sinks, p)
	if err != nil {
		return nil, err
	}
	res := &Result{
		N:         len(t),
		Cfg:       cfg,
		MPMin:     pairs.mpMin,
		PerLength: pairs.perLength,
		VMap:      vms.vm,
		Plan:      plan,
	}
	if ds != nil {
		res.Discords = ds.Discords()
	}
	return res, nil
}
