package core

// Tests for the incremental cross-length profile engine: extended profiles
// against the brute-force ground truth at every length and worker count
// (bit-identical across worker counts), parity with the from-scratch
// whole-profile plan, and the degenerate-length hardening near the end of
// the series.

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"github.com/seriesmining/valmod/internal/profile"
	"github.com/seriesmining/valmod/internal/series"
	"github.com/seriesmining/valmod/internal/stomp"
)

// profileSink collects every delivered length (with its profile); when
// lengths is non-nil it narrows itself to that subset via LengthSelector.
type profileSink struct {
	lengths map[int]bool
	got     []LengthData
}

func (*profileSink) Requires() Requirement   { return FullProfile }
func (s *profileSink) Consume(ld LengthData) { s.got = append(s.got, ld) }
func (s *profileSink) WantsLength(l int) bool {
	if s.lengths == nil {
		return true
	}
	return s.lengths[l]
}

// flatWalk is a random walk with a constant run planted at [lo, hi), so
// degenerate (σ = 0) windows exercise the constant-window conventions.
// The planted value is exactly representable, so both the cumulative-sum
// moments of the engine and the two-pass moments of the baseline compute
// σ = 0 exactly and the conventions trigger consistently (a value with
// rounding residue would leave σ ~1e-16 on both paths and make the
// clamped correlations legitimately ill-conditioned).
func flatWalk(rng *rand.Rand, n, lo, hi int) []float64 {
	x := randWalk(rng, n)
	for i := lo; i < hi; i++ {
		x[i] = 5.0
	}
	return x
}

// TestIncrementalProfileMatchesBrute: the profiles the incremental engine
// extends across lengths must match the O(n²·ℓ) definitional baseline at
// every length — including over a flat region, where the constant-window
// conventions apply — and be bit-identical at every worker count.
func TestIncrementalProfileMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	x := flatWalk(rng, 300, 120, 145)
	const lmin, lmax = 10, 26

	var base []LengthData
	for _, w := range []int{1, 2, 4, 7} {
		sink := &profileSink{}
		eng := NewEngine()
		err := eng.RunSinks(context.Background(), x, Config{LMin: lmin, LMax: lmax, TopK: 2, Workers: w}, sink)
		if err != nil {
			t.Fatal(err)
		}
		if len(sink.got) != lmax-lmin+1 {
			t.Fatalf("workers=%d: %d lengths delivered, want %d", w, len(sink.got), lmax-lmin+1)
		}
		if w == 1 {
			base = sink.got
		}
		for li, ld := range sink.got {
			if ld.Profile == nil {
				t.Fatalf("workers=%d l=%d: nil profile", w, ld.L)
			}
			want, err := stomp.Brute(x, ld.L, 0)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want.Dist {
				g, b := ld.Profile.Dist[i], want.Dist[i]
				if math.IsInf(g, 1) != math.IsInf(b, 1) {
					t.Fatalf("workers=%d l=%d i=%d: dist %g, brute %g", w, ld.L, i, g, b)
				}
				if !math.IsInf(b, 1) && math.Abs(g-b) > 1e-8*(1+b) {
					t.Fatalf("workers=%d l=%d i=%d: dist %g, brute %g", w, ld.L, i, g, b)
				}
				// The reported neighbor must realize the reported distance.
				if j := ld.Profile.Index[i]; j >= 0 {
					d := series.ZNormDist(x[i:i+ld.L], x[j:j+ld.L])
					if math.Abs(d-g) > 1e-8*(1+g) {
						t.Fatalf("workers=%d l=%d i=%d: index %d realizes %g, profile says %g", w, ld.L, i, j, d, g)
					}
				}
			}
			// Bit-identical across worker counts: same fixed diagonal
			// grid, total-order merges.
			ref := base[li].Profile
			for i := range ref.Dist {
				gd, rd := ld.Profile.Dist[i], ref.Dist[i]
				if (gd != rd && !(math.IsInf(gd, 1) && math.IsInf(rd, 1))) || ld.Profile.Index[i] != ref.Index[i] {
					t.Fatalf("workers=%d l=%d i=%d: (%v,%d) differs from workers=1 (%v,%d)",
						w, ld.L, i, gd, ld.Profile.Index[i], rd, ref.Index[i])
				}
			}
		}
	}
}

// TestIncrementalMatchesFromScratchPlan: the incremental plan and the
// DisableIncremental ablation must discover the same pairs and discords —
// identical offsets, lengths and ordering; distances equal within floating
// tolerance (the two passes take different arithmetic paths).
func TestIncrementalMatchesFromScratchPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	x := randWalk(rng, 600)
	cfg := Config{LMin: 12, LMax: 40, TopK: 3, Discords: 4}
	inc, err := Run(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DisableIncremental = true
	scratch, err := Run(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Plan.IncrementalLengths != 40-12+1 || inc.Plan.HeadSeeds != 1 {
		t.Fatalf("incremental plan stats: %+v", inc.Plan)
	}
	if scratch.Plan.IncrementalLengths != 0 || scratch.Plan.RecomputeLengths != 40-12+1 {
		t.Fatalf("from-scratch plan stats: %+v", scratch.Plan)
	}
	for li := range inc.PerLength {
		a, b := inc.PerLength[li], scratch.PerLength[li]
		assertPairsEquivalent(t, a.StatsTag(), a.Pairs, b.Pairs)
	}
	if len(inc.Discords) != len(scratch.Discords) {
		t.Fatalf("%d discords incremental, %d from scratch", len(inc.Discords), len(scratch.Discords))
	}
	for i := range inc.Discords {
		a, b := inc.Discords[i], scratch.Discords[i]
		if a.I != b.I || a.L != b.L {
			t.Fatalf("discord %d: (i=%d,l=%d) incremental, (i=%d,l=%d) from scratch", i, a.I, a.L, b.I, b.L)
		}
		if math.Abs(a.Dist-b.Dist) > 1e-9*(1+b.Dist) {
			t.Fatalf("discord %d: dist %g incremental, %g from scratch", i, a.Dist, b.Dist)
		}
	}
}

// TestFullProfileDegenerateLengthsNearSeriesEnd: with LMax near the series
// length, the tail lengths admit no non-trivial pair (s ≤ excl) and the
// whole-profile passes hand the sinks a nil profile — the dispatch and
// every built-in sink must survive that, and the discords must come from
// the valid lengths only.
func TestFullProfileDegenerateLengthsNearSeriesEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	x := randWalk(rng, 60)
	for _, w := range []int{1, 3} {
		res, err := Run(x, Config{LMin: 40, LMax: 58, TopK: 1, Discords: 2, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.PerLength) != 58-40+1 {
			t.Fatalf("workers=%d: %d lengths, want %d", w, len(res.PerLength), 58-40+1)
		}
		if len(res.Discords) == 0 {
			t.Fatalf("workers=%d: no discords from the valid lengths", w)
		}
		for _, d := range res.Discords {
			s := len(x) - d.L + 1
			if excl := profile.ExclusionZone(d.L, res.Cfg.ExclusionFactor); s <= excl {
				t.Fatalf("workers=%d: discord at degenerate length %d (s=%d excl=%d)", w, d.L, s, excl)
			}
		}
		// The degenerate tail lengths must report no pairs.
		for _, lr := range res.PerLength {
			s := len(x) - lr.M + 1
			if excl := profile.ExclusionZone(lr.M, res.Cfg.ExclusionFactor); s <= excl && len(lr.Pairs) > 0 {
				t.Fatalf("workers=%d: %d pairs at degenerate length %d", w, len(lr.Pairs), lr.M)
			}
		}
	}
}
