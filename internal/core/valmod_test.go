package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/seriesmining/valmod/internal/profile"
	"github.com/seriesmining/valmod/internal/series"
	"github.com/seriesmining/valmod/internal/stomp"
)

func randWalk(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	v := 0.0
	for i := range x {
		v += rng.NormFloat64()
		x[i] = v
	}
	return x
}

// sineMix builds structured data with motifs at several scales.
func sineMix(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		f := float64(i)
		x[i] = math.Sin(f*0.21) + 0.5*math.Sin(f*0.043) + 0.2*math.Sin(f*0.009)
	}
	return x
}

// referencePairs computes the exact top-k pairs at one length via STOMP.
func referencePairs(t *testing.T, x []float64, m, k, exclFactor int) []profile.MotifPair {
	t.Helper()
	mp, err := stomp.Compute(x, m, exclFactor)
	if err != nil {
		t.Fatal(err)
	}
	return mp.TopKPairs(k)
}

// assertPairsEquivalent compares two top-k pair lists: same cardinality and
// pairwise-equal distances within floating tolerance. Offsets are compared
// only for the best pair (later pairs may legally differ under exact
// distance ties).
func assertPairsEquivalent(t *testing.T, tag string, got, want []profile.MotifPair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d pairs, want %d\n got: %v\nwant: %v", tag, len(got), len(want), got, want)
	}
	for i := range got {
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-6*(1+want[i].Dist) {
			t.Fatalf("%s: pair %d dist %g, want %g", tag, i, got[i].Dist, want[i].Dist)
		}
	}
	if len(got) > 0 {
		g, w := got[0], want[0]
		if g.A != w.A || g.B != w.B {
			// Allow a true tie: distances equal within tolerance already
			// checked; verify the reference profile agrees the distance at
			// got's offsets equals want's distance.
			if math.Abs(g.Dist-w.Dist) > 1e-9*(1+w.Dist) {
				t.Fatalf("%s: best pair (%d,%d), want (%d,%d)", tag, g.A, g.B, w.A, w.B)
			}
		}
	}
}

func TestRunExactOnRandomWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randWalk(rng, 400)
	cfg := Config{LMin: 8, LMax: 48, TopK: 3, P: 5}
	res, err := Run(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerLength) != 48-8+1 {
		t.Fatalf("per-length count %d", len(res.PerLength))
	}
	for _, lr := range res.PerLength {
		want := referencePairs(t, x, lr.M, 3, 0)
		assertPairsEquivalent(t, lr.StatsTag(), lr.Pairs, want)
	}
}

func TestRunExactOnStructuredData(t *testing.T) {
	x := sineMix(600)
	cfg := Config{LMin: 16, LMax: 80, TopK: 2, P: 8}
	res, err := Run(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range res.PerLength {
		want := referencePairs(t, x, lr.M, 2, 0)
		assertPairsEquivalent(t, lr.StatsTag(), lr.Pairs, want)
	}
}

func TestRunExactWithPlantedMotifs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 800
	x := randWalk(rng, n)
	// Plant two scales of motif: short at (100, 400), long at (200, 600).
	for i := 0; i < 24; i++ {
		v := math.Sin(float64(i) * 0.5)
		x[100+i] = v*8 + 1
		x[400+i] = v*8 + 1 + rng.NormFloat64()*0.01
	}
	for i := 0; i < 64; i++ {
		v := math.Sin(float64(i)*0.2) + 0.7*math.Cos(float64(i)*0.05)
		x[200+i] = v*9 - 2
		x[600+i] = v*9 - 2 + rng.NormFloat64()*0.01
	}
	cfg := Config{LMin: 16, LMax: 64, TopK: 1, P: 6}
	res, err := Run(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range res.PerLength {
		want := referencePairs(t, x, lr.M, 1, 0)
		assertPairsEquivalent(t, lr.StatsTag(), lr.Pairs, want)
	}
	// The length-24 result must land on planted structure: either the short
	// pair (100,400) or a window pair inside the long planted regions,
	// which match each other equally well at this length (spacing 400).
	lr24, ok := res.ResultOfLength(24)
	if !ok || len(lr24.Pairs) == 0 {
		t.Fatal("no result at length 24")
	}
	p := lr24.Pairs[0]
	shortHit := nearInt(p.A, 100, 2) && nearInt(p.B, 400, 2)
	longHit := p.B-p.A == 400 && p.A >= 198 && p.A+24 <= 266
	if !shortHit && !longHit {
		t.Errorf("length-24 motif = %v, want planted structure", p)
	}
	// The length-64 result must recover the long planted pair.
	lr64, _ := res.ResultOfLength(64)
	p = lr64.Pairs[0]
	if !(nearInt(p.A, 200, 2) && nearInt(p.B, 600, 2)) {
		t.Errorf("length-64 motif = %v, want ~(200,600)", p)
	}
}

func TestDisablePruningSameAnswers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randWalk(rng, 300)
	base := Config{LMin: 10, LMax: 30, TopK: 2, P: 4}
	ablated := base
	ablated.DisablePruning = true
	a, err := Run(x, base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(x, ablated)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.PerLength {
		assertPairsEquivalent(t, a.PerLength[i].StatsTag(), a.PerLength[i].Pairs, b.PerLength[i].Pairs)
	}
	for _, lr := range b.PerLength {
		if !lr.Stats.FullRecompute {
			t.Fatal("DisablePruning must full-recompute every length")
		}
	}
}

func TestSmallPStillExact(t *testing.T) {
	// P=1 certifies almost nothing; correctness must survive via recompute.
	rng := rand.New(rand.NewSource(4))
	x := randWalk(rng, 250)
	res, err := Run(x, Config{LMin: 8, LMax: 24, TopK: 2, P: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range res.PerLength {
		want := referencePairs(t, x, lr.M, 2, 0)
		assertPairsEquivalent(t, lr.StatsTag(), lr.Pairs, want)
	}
}

func TestVALMAPInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randWalk(rng, 400)
	cfg := Config{LMin: 10, LMax: 40, TopK: 5, P: 6}
	res, err := Run(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	vm := res.VMap
	if vm.Len() != len(x)-cfg.LMin+1 {
		t.Fatalf("VALMAP size %d", vm.Len())
	}
	for i := 0; i < vm.Len(); i++ {
		if vm.IP[i] < 0 {
			continue
		}
		if vm.LP[i] < cfg.LMin || vm.LP[i] > cfg.LMax {
			t.Fatalf("LP[%d] = %d outside range", i, vm.LP[i])
		}
		// MPn must never exceed the initial (ℓmin) normalized profile value.
		init := series.LengthNormalize(res.MPMin.Dist[i], cfg.LMin)
		if vm.MPn[i] > init+1e-9 {
			t.Fatalf("MPn[%d] = %g worse than initial %g", i, vm.MPn[i], init)
		}
		// The recorded pair really has that normalized distance at LP.
		l, j := vm.LP[i], vm.IP[i]
		d := series.ZNormDist(x[i:i+l], x[j:j+l])
		if math.Abs(series.LengthNormalize(d, l)-vm.MPn[i]) > 1e-6*(1+vm.MPn[i]) {
			t.Fatalf("MPn[%d] = %g but recomputed %g (l=%d j=%d)", i, vm.MPn[i], series.LengthNormalize(d, l), l, j)
		}
	}
	// Checkpoints are in increasing length order.
	prev := 0
	for _, cp := range vm.Checkpoints {
		if cp.L <= prev {
			t.Fatalf("checkpoint order violated: %d after %d", cp.L, prev)
		}
		prev = cp.L
	}
}

func TestGlobalBest(t *testing.T) {
	x := sineMix(500)
	res, err := Run(x, Config{LMin: 16, LMax: 48, TopK: 2, P: 6})
	if err != nil {
		t.Fatal(err)
	}
	best, ok := res.GlobalBest()
	if !ok {
		t.Fatal("no global best")
	}
	// Must equal the minimum normalized distance over all reported pairs.
	want := math.Inf(1)
	for _, lr := range res.PerLength {
		for _, p := range lr.Pairs {
			if nd := p.NormDist(); nd < want {
				want = nd
			}
		}
	}
	if math.Abs(best.NormDist()-want) > 1e-12 {
		t.Errorf("GlobalBest norm %g, want %g", best.NormDist(), want)
	}
}

func TestConfigValidation(t *testing.T) {
	x := make([]float64, 100)
	if _, err := Run(x, Config{LMin: 2, LMax: 10}); err == nil {
		t.Error("LMin too small should fail")
	}
	if _, err := Run(x, Config{LMin: 20, LMax: 10}); err == nil {
		t.Error("inverted range should fail")
	}
	if _, err := Run(x, Config{LMin: 10, LMax: 200}); err == nil {
		t.Error("LMax beyond series should fail")
	}
}

func TestDefaultsFilled(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randWalk(rng, 120)
	res, err := Run(x, Config{LMin: 8, LMax: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cfg.TopK != DefaultTopK || res.Cfg.P != DefaultP {
		t.Errorf("defaults not filled: %+v", res.Cfg)
	}
	if res.Cfg.RecomputeFraction != DefaultRecomputeFraction {
		t.Errorf("recompute fraction default: %v", res.Cfg.RecomputeFraction)
	}
}

func TestLengthNearSeriesEnd(t *testing.T) {
	// LMax = n/2+something: lengths where few subsequences remain must not
	// panic and must report empty or tiny pair lists consistently.
	rng := rand.New(rand.NewSource(7))
	x := randWalk(rng, 64)
	res, err := Run(x, Config{LMin: 8, LMax: 60, TopK: 2, P: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range res.PerLength {
		want := referencePairs(t, x, lr.M, 2, 0)
		if len(lr.Pairs) != len(want) {
			t.Fatalf("m=%d: %d pairs, reference %d", lr.M, len(lr.Pairs), len(want))
		}
	}
}

func TestResultOfLength(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := randWalk(rng, 120)
	res, err := Run(x, Config{LMin: 8, LMax: 16})
	if err != nil {
		t.Fatal(err)
	}
	if lr, ok := res.ResultOfLength(12); !ok || lr.M != 12 {
		t.Errorf("ResultOfLength(12) = %v %v", lr.M, ok)
	}
	if _, ok := res.ResultOfLength(7); ok {
		t.Error("length below range should miss")
	}
	if _, ok := res.ResultOfLength(17); ok {
		t.Error("length above range should miss")
	}
}

func TestStatsAccounting(t *testing.T) {
	x := sineMix(500)
	res, err := Run(x, Config{LMin: 16, LMax: 48, TopK: 2, P: 8})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary()
	if s.Lengths != 33 {
		t.Errorf("lengths = %d", s.Lengths)
	}
	if s.CertifiedAnchors+s.RecomputedAnchors == 0 && s.FullRecomputes == 0 {
		t.Error("stats are all zero; instrumentation broken")
	}
}

func nearInt(x, target, tol int) bool {
	d := x - target
	if d < 0 {
		d = -d
	}
	return d <= tol
}
