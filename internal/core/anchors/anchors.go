// Package anchors holds the per-anchor state of a VALMOD run: one partial
// distance profile per subsequence offset (the retained lower-bound entries
// of demo Figure 2a) plus the hot-row cache for anchors that keep failing
// certification. The Store partitions its anchors into contiguous shards so
// the per-length advance→certify pass can run one shard per goroutine:
// every anchor owns its state and its slots of the engine's scratch arrays
// exclusively, which keeps the parallel pass bit-identical to the serial
// one regardless of the shard-to-worker assignment.
package anchors

import "github.com/seriesmining/valmod/internal/lb"

// State is the partial distance profile of one anchor.
type State struct {
	// Entries are the retained candidates, at most P, kept as a min-heap
	// on q̃² (see lb.Heapify).
	Entries []lb.Entry
	// Base is the length at which Entries and their q̃ were (re)seeded.
	Base int32
	// NextQ2 is the q̃² of the best candidate NOT retained (the (p+1)-th
	// largest at seed time): every unkept candidate has q̃² ≤ NextQ2, so
	// Bound(√NextQ2) lower-bounds all of them — a strictly tighter
	// certification threshold than bounding via the worst kept entry.
	// Negative when every candidate was retained (nothing to bound:
	// maxLB = +Inf).
	NextQ2 float64
	// Degenerate marks a constant anchor window at the seed length, for
	// which no lower bound is available (maxLB = 0).
	Degenerate bool
}

// Store owns the anchor states of one run plus the hot-row cache. Hot rows
// are kept in flat slices indexed by anchor offset (not a map) so that
// concurrent shard workers can advance distinct anchors' rows without
// synchronization; retention (MakeHot) happens only on the serial
// recompute path.
type Store struct {
	states []State

	// hotRows[i] is anchor i's cached full dot-product row (nil when the
	// anchor is not hot); hotLens[i] the length the row is currently at.
	hotRows  [][]float64
	hotLens  []int32
	hotCount int
	budget   int
}

// NewStore returns a store for n anchors whose hot-row cache is bounded by
// budgetBytes of row storage (at least 32 rows).
func NewStore(n, budgetBytes int) *Store {
	budget := 0
	if n > 0 {
		budget = budgetBytes / (8 * n)
	}
	if budget < 32 {
		budget = 32
	}
	return &Store{
		states:  make([]State, n),
		hotRows: make([][]float64, n),
		hotLens: make([]int32, n),
		budget:  budget,
	}
}

// Len returns the number of anchors.
func (s *Store) Len() int { return len(s.states) }

// At returns anchor i's state for in-place mutation.
func (s *Store) At(i int) *State { return &s.states[i] }

// BeginReseed prepares anchor i for a fresh top-p selection at base length
// l and returns its state: entries emptied (capacity p), bound fields
// reset. The caller fills Entries and NextQ2 (the fused scan in core does
// this inline for speed).
func (s *Store) BeginReseed(i, p, l int) *State {
	a := &s.states[i]
	if cap(a.Entries) < p {
		a.Entries = make([]lb.Entry, 0, p)
	}
	a.Entries = a.Entries[:0]
	a.Base = int32(l)
	a.Degenerate = false
	a.NextQ2 = -1
	return a
}

// HotRow returns anchor i's cached dot-product row and the length it is
// currently advanced to, or ok=false when the anchor is not hot.
func (s *Store) HotRow(i int) (row []float64, l int, ok bool) {
	row = s.hotRows[i]
	if row == nil {
		return nil, 0, false
	}
	return row, int(s.hotLens[i]), true
}

// SetHotLen records that anchor i's cached row has been advanced to length
// l. Distinct anchors may be updated concurrently.
func (s *Store) SetHotLen(i, l int) { s.hotLens[i] = int32(l) }

// MakeHot caches row (already advanced to length l) for anchor i and
// reports whether the store retained it; false when the anchor is already
// hot or the budget is exhausted, in which case the caller keeps ownership
// of row. Serial use only.
func (s *Store) MakeHot(i int, row []float64, l int) bool {
	if s.hotRows[i] != nil || s.hotCount >= s.budget {
		return false
	}
	s.hotRows[i] = row
	s.hotLens[i] = int32(l)
	s.hotCount++
	return true
}

// HotCount returns the number of cached rows; Budget the cap.
func (s *Store) HotCount() int { return s.hotCount }

// Budget returns the maximum number of rows the cache may hold.
func (s *Store) Budget() int { return s.budget }

// Shard is a contiguous anchor range [Lo, Hi).
type Shard struct{ Lo, Hi int }

// Shards partitions the first n anchors (n ≤ Len) into count near-equal
// contiguous ranges. The boundaries depend only on n and count — never on
// which worker processes which shard — so any schedule over the shards
// computes identical results.
func (s *Store) Shards(n, count int) []Shard {
	return s.ShardsInto(n, count, nil)
}

// DrainHotRows removes every cached row, handing each to release (the
// engine returns them to its row pool). After draining no anchor is hot;
// the store remains usable.
func (s *Store) DrainHotRows(release func([]float64)) {
	for i, row := range s.hotRows {
		if row != nil {
			release(row)
			s.hotRows[i] = nil
		}
	}
	s.hotCount = 0
}

// Snapshot is the serializable image of a Store: the per-anchor partial
// profiles plus the hot-row cache. It is the anchors section of an engine
// checkpoint — resuming a pruned run bit-identically requires the hot rows
// too, because a hot anchor resolves through a different (equally exact,
// but not bit-equal) arithmetic path than a cold one.
type Snapshot struct {
	States []State
	// HotAnchors lists the hot anchor offsets in ascending order; HotLens
	// and HotRows are parallel to it. Rows are stored at their full
	// retained length (later lengths read a shrinking prefix).
	HotAnchors []int32
	HotLens    []int32
	HotRows    [][]float64
}

// Snapshot captures the store's current state. The returned snapshot
// aliases the live slices (states, entries, rows) — it is a view for
// immediate serialization between per-length passes, not a defensive copy.
func (s *Store) Snapshot() *Snapshot {
	sn := &Snapshot{States: s.states}
	for i, row := range s.hotRows {
		if row != nil {
			sn.HotAnchors = append(sn.HotAnchors, int32(i))
			sn.HotLens = append(sn.HotLens, s.hotLens[i])
			sn.HotRows = append(sn.HotRows, row)
		}
	}
	return sn
}

// Restore loads a snapshot into the store. Hot rows are copied into
// buffers acquired through getRow so the engine's row-pool accounting
// (every retained row drains back through putRow at run end) stays exact.
// The store must have been built for the same anchor count.
func (s *Store) Restore(sn *Snapshot, getRow func(n int) []float64) {
	copy(s.states, sn.States)
	s.DrainHotRows(func([]float64) {})
	for k, i := range sn.HotAnchors {
		src := sn.HotRows[k]
		row := getRow(len(src))[:len(src)]
		copy(row, src)
		s.hotRows[i] = row
		s.hotLens[i] = sn.HotLens[k]
		s.hotCount++
	}
}

// ShardsInto is Shards appending into buf (reused across lengths by the
// advance pass so the steady state allocates nothing).
func (s *Store) ShardsInto(n, count int, buf []Shard) []Shard {
	if n > len(s.states) {
		n = len(s.states)
	}
	if count > n {
		count = n
	}
	if count < 1 {
		count = 1
	}
	out := buf[:0]
	for w := 0; w < count; w++ {
		lo, hi := w*n/count, (w+1)*n/count
		if lo < hi {
			out = append(out, Shard{Lo: lo, Hi: hi})
		}
	}
	return out
}
