package anchors

import (
	"testing"

	"github.com/seriesmining/valmod/internal/lb"
)

func TestBeginReseedResetsState(t *testing.T) {
	s := NewStore(4, 1<<20)
	a := s.At(2)
	a.Entries = append(a.Entries, lb.Entry{J: 9})
	a.Degenerate = true
	a.NextQ2 = 7

	a = s.BeginReseed(2, 3, 17)
	if len(a.Entries) != 0 || cap(a.Entries) < 3 {
		t.Fatalf("entries len=%d cap=%d, want empty with cap >= 3", len(a.Entries), cap(a.Entries))
	}
	if a.Base != 17 || a.Degenerate || a.NextQ2 >= 0 {
		t.Fatalf("state not reset: %+v", *a)
	}
}

func TestHotRowLifecycle(t *testing.T) {
	s := NewStore(100, 1<<20)
	if _, _, ok := s.HotRow(5); ok {
		t.Fatal("anchor 5 should not start hot")
	}
	row := make([]float64, 10)
	if !s.MakeHot(5, row, 32) {
		t.Fatal("MakeHot should retain the first row")
	}
	if s.MakeHot(5, make([]float64, 10), 33) {
		t.Fatal("MakeHot must decline an already-hot anchor")
	}
	got, l, ok := s.HotRow(5)
	if !ok || l != 32 || &got[0] != &row[0] {
		t.Fatalf("HotRow = (%p, %d, %v), want original row at 32", got, l, ok)
	}
	s.SetHotLen(5, 40)
	if _, l, _ := s.HotRow(5); l != 40 {
		t.Fatalf("hot length %d after SetHotLen, want 40", l)
	}
	if s.HotCount() != 1 {
		t.Fatalf("HotCount = %d", s.HotCount())
	}
}

func TestHotBudgetEnforced(t *testing.T) {
	// budgetBytes sized for exactly 40 rows of 100 anchors — below the
	// 32-row floor this would clamp, so pick above it.
	s := NewStore(100, 40*8*100)
	if got := s.Budget(); got != 40 {
		t.Fatalf("budget = %d, want 40", got)
	}
	retained := 0
	for i := 0; i < 100; i++ {
		if s.MakeHot(i, make([]float64, 1), 8) {
			retained++
		}
	}
	if retained != 40 || s.HotCount() != 40 {
		t.Fatalf("retained %d rows (count %d), want 40", retained, s.HotCount())
	}
}

func TestBudgetFloor(t *testing.T) {
	if s := NewStore(1000, 0); s.Budget() != 32 {
		t.Fatalf("budget floor = %d, want 32", s.Budget())
	}
}

func TestShardsPartition(t *testing.T) {
	s := NewStore(1000, 1<<20)
	for _, tc := range []struct{ n, count int }{
		{1000, 4}, {1000, 7}, {1000, 1}, {3, 8}, {1000, 1000}, {0, 4}, {2000, 3},
	} {
		shards := s.Shards(tc.n, tc.count)
		n := tc.n
		if n > s.Len() {
			n = s.Len()
		}
		pos := 0
		for _, sh := range shards {
			if sh.Lo != pos {
				t.Fatalf("n=%d count=%d: gap at %d (shard starts %d)", tc.n, tc.count, pos, sh.Lo)
			}
			if sh.Hi <= sh.Lo {
				t.Fatalf("n=%d count=%d: empty shard %+v", tc.n, tc.count, sh)
			}
			pos = sh.Hi
		}
		if n > 0 && pos != n {
			t.Fatalf("n=%d count=%d: shards cover [0,%d), want [0,%d)", tc.n, tc.count, pos, n)
		}
		if len(shards) > tc.count && tc.count >= 1 {
			t.Fatalf("n=%d count=%d: %d shards", tc.n, tc.count, len(shards))
		}
	}
}
