// Package core implements VALMOD (Variable-Length Motif Discovery), the
// paper's primary contribution: exact top-k motif pairs for every
// subsequence length in [ℓmin, ℓmax], at a fraction of the cost of running
// a fixed-length algorithm per length.
//
// The algorithm follows the demo paper §2 exactly:
//
//  1. Compute the matrix profile at ℓmin with STOMP-style row recurrences.
//     While each distance-profile row is in memory, retain the p entries
//     with the smallest lower-bounding distance (internal/lb; rank
//     preservation makes this the p largest q̃²) — the "partial distance
//     profiles".
//  2. For each longer length, advance each retained entry's dot product in
//     O(1), recompute its exact distance, and compare the anchor's best
//     exact distance (minDist) against the bound covering every
//     non-retained candidate (maxLB). minDist ≤ maxLB certifies the anchor:
//     its matrix-profile value at this length is exact (a "valid partial
//     distance profile", Figure 2b top). Otherwise the anchor is non-valid
//     (Figure 2b bottom).
//  3. minLBAbs — the smallest maxLB among non-valid anchors — certifies the
//     extracted top-k pairs; anchors that could still hide better matches
//     (maxLB below the current k-th best distance) get their distance
//     profile recomputed with MASS and their partial profile reseeded.
//     When too many anchors need recomputing, fall back to one full
//     STOMP pass at that length and reseed everything.
//
// The implementation is structured as a pipeline around a reusable Engine:
// config.go (parameters), engine.go (Engine, pooled scratch, the per-run
// orchestration), seed.go (the seeding / full-recompute block scan),
// length.go (the per-length advance→certify→recompute loop),
// incremental.go (the incremental cross-length profile engine serving
// FullProfile lengths: diagonal dot-product state carried from length to
// length with one FMA per cell, one FFT per run), sink.go (the per-length
// Sink pipeline: the planner deciding pruned/full/skip per length plus
// the built-in pairs, VALMAP and discord sinks), result.go (outputs),
// with the per-anchor state in internal/core/anchors.
package core

import (
	"errors"
	"fmt"

	"github.com/seriesmining/valmod/internal/profile"
)

// Default parameter values; see Config.
const (
	DefaultTopK = 10
	DefaultP    = 10
	// DefaultRecomputeFraction: one MASS recompute costs Θ(n log n), a full
	// STOMP pass Θ(s²) — but the full pass also reseeds every partial
	// profile with tight bounds at the current length, so the breakeven
	// sits near s/log n ≈ 5% of anchors, not 25%.
	DefaultRecomputeFraction = 0.05
)

// ErrBadConfig is returned when the configuration is inconsistent with the
// series.
var ErrBadConfig = errors.New("core: bad config")

// Config parameterizes a VALMOD run.
type Config struct {
	// LMin, LMax bound the subsequence lengths (inclusive).
	LMin, LMax int
	// TopK is the number of motif pairs reported per length (default 10).
	TopK int
	// P is the number of entries retained per partial distance profile
	// (default 10). Larger P certifies more anchors per length at the cost
	// of memory and per-length work.
	P int
	// ExclusionFactor sets the trivial-match zone ⌈ℓ/factor⌉ (default 4).
	ExclusionFactor int
	// RecomputeFraction is the fraction of anchors above which a full
	// per-length STOMP recompute replaces individual MASS recomputes
	// (default 0.05; see DefaultRecomputeFraction for the cost model).
	RecomputeFraction float64
	// DisablePruning forces a whole-profile pass at every length — the
	// lower-bound ablation. The output is identical; only time changes.
	DisablePruning bool
	// DisableIncremental forces every whole-profile length to recompute
	// from scratch (FFT reseeds + STOMP row scan) instead of extending
	// the carried cross-length dot-product state — the incremental-engine
	// ablation, and the parity reference the CI smoke checks the
	// incremental plan against. Equivalent output, one full pass per
	// length.
	DisableIncremental bool
	// Discords, when positive, reports that many variable-length
	// discords (Result.Discords): per length the k largest exact NN
	// distances with trivial-match de-dup, then ranked across lengths by
	// length-normalized distance under cross-length exclusion (see
	// discordSink). The exact per-offset NN distances require the
	// FullProfile plan, so a positive value switches every length to the
	// incremental whole-profile pass (pairs and VALMAP stay equivalent
	// within floating tolerance; per-length resolution stats report
	// full — incremental — recomputes).
	Discords int
	// WindowCap, when positive, puts the streaming engine (Streamer) in
	// sliding-window mode: after every Append the retained series is
	// trimmed to exactly the trailing WindowCap points, evicted offsets
	// are dropped and surviving profile entries whose nearest neighbor
	// was evicted are repaired exactly over the remaining window — so
	// results are always a pure function of the last min(n, WindowCap)
	// points, independent of how the stream was chunked. Must be at least
	// LMax (every length needs one window). Batch runs ignore it.
	WindowCap int
	// LengthSkip enables LB length skipping on pairs+discords runs
	// (Discords > 0): only ℓmin pays a whole-profile pass; every later
	// length runs the cheap pruned pairs pass, and its discord candidates
	// come from the lower-bound certificate instead of an O(s²) profile —
	// each anchor's best retained-entry distance is a true pair distance,
	// hence an upper bound on its NN distance, so anchors whose bound
	// normalizes below the running k-th best discord (with 1−1e−9 slack)
	// provably cannot carry the top discord and are skipped; the few
	// survivors get one exact MASS row each. Per-length pairs stay exact,
	// the top-1 discord is exact, and deeper discord candidates keep exact
	// distances but may differ in selection depth from the exhaustive
	// plan. Ignored when Discords == 0 (the default plan is already
	// all-pruned) and under the DisablePruning/DisableIncremental
	// ablations.
	LengthSkip bool
	// LengthStride, when > 1, switches pairs+discords runs to the
	// coarse-to-fine plan: whole-profile passes run only at every
	// LengthStride-th length starting from ℓmin (the scan grid), and after
	// the scan a refine phase re-resolves the unscanned lengths within
	// RefineRadius of the winners (the global best pair's length and the
	// top discord's length) with full passes. Between scanned lengths the
	// engine carries each anchor's scan-time NN dot product forward (one
	// FMA per anchor per length), which yields exact distances of real
	// pairs — approximate per-length top-k — plus the same lower-bound
	// discord certificate LengthSkip uses, so the top discord stays exact
	// while per-length pairs at strided-over lengths are best-effort
	// unless Strict is set. 0 or 1 means every length is scanned
	// (exhaustive). Ignored when Discords == 0 and under the ablations.
	LengthStride int
	// RefineRadius bounds the refine window: unscanned lengths within
	// this distance of a winner length are re-resolved exhaustively.
	// 0 selects the full gap (LengthStride − 1), which makes Strict
	// stride/refine cover every length adjacent to a winner; large-n runs
	// can shrink it to bound the number of O(s²) refine passes.
	RefineRadius int
	// Strict upgrades strided-over lengths from the carried-NN
	// approximation to the LengthSkip treatment: the run seeds the pruned
	// machinery at ℓmin with a full row scan, every strided-over length
	// runs the exact pruned pairs pass, and discord candidates keep the
	// lower-bound certificate — so stride/refine reports exact per-length
	// pairs at every length and the exact top discord. No effect unless
	// LengthStride > 1 (LengthSkip already implies the strict treatment).
	Strict bool
	// Carry32 stores the incremental engine's cross-length diagonal carry
	// — the head row and the series copy feeding the in-length recurrence
	// — in float32 with float64 accumulation (kernels.DiagScan32 /
	// ExtendRow32), halving the bandwidth of the arrays the diagonal pass
	// streams at large n. Whole-profile correlations then differ from the
	// float64 plan in the last bits (pair/discord identities are expected
	// to agree; tolerance-tested, not bit-identical). The pruned pass and
	// the seed row scan always stay float64: their rows feed the q̃² ranks
	// that drive lower-bound certification.
	Carry32 bool
	// Workers bounds the goroutines used by the data-parallel phases: the
	// ℓmin seed, full-recompute fallbacks, and the per-length
	// advance→certify pass over anchor shards. 0 selects GOMAXPROCS;
	// 1 runs serially. Both phases are partitioned on fixed grids that do
	// not depend on the worker count, so the output is bit-identical at
	// every setting.
	Workers int
	// OnLength, when non-nil, receives a Progress notification after each
	// completed length (ℓmin included), in increasing-length order, on the
	// goroutine running the engine. A slow callback slows the run; the run
	// still honors context cancellation between lengths.
	OnLength func(Progress)
	// OnCheckpoint, when non-nil, receives a serialized engine checkpoint
	// (see checkpoint.go) after completed lengths, on the engine goroutine;
	// the blob is valid only during the callback (durable consumers write
	// it out before returning). Resume through Engine.ResumeRun is
	// byte-identical to the uninterrupted run at every worker count. An
	// error return disables further checkpoints for the run without
	// failing it. Ignored by the fast coarse-to-fine plans
	// (LengthSkip/LengthStride) and rejected when custom RunSinks
	// consumers are registered — only Engine.Run's built-in sink pipeline
	// is serializable.
	OnCheckpoint func(ckpt []byte) error
	// CheckpointEvery emits a checkpoint every k-th completed length
	// (default 1 — every length boundary). Larger values amortize the
	// O(state) serialization over more compute at the cost of more lost
	// work on a crash. No effect unless OnCheckpoint is set.
	CheckpointEvery int
}

// Fill substitutes the effective defaults for zero/out-of-range fields.
// Run applies it on entry; the serving layer calls it too, so cache keys
// are derived from exactly the configuration that runs — keep this the
// single place the default rules live.
func (c *Config) Fill() {
	if c.TopK <= 0 {
		c.TopK = DefaultTopK
	}
	if c.P <= 0 {
		c.P = DefaultP
	}
	if c.ExclusionFactor <= 0 {
		c.ExclusionFactor = profile.DefaultExclusionFactor
	}
	if c.RecomputeFraction <= 0 || c.RecomputeFraction > 1 {
		c.RecomputeFraction = DefaultRecomputeFraction
	}
}

// ValidateRange is the single statement of the length-range rules, shared
// by Config.validate and the public API's pre-flight Validate so the two
// can never drift. The error is unwrapped; callers add their sentinel.
func ValidateRange(n, lmin, lmax int) error {
	if lmin < 4 {
		return fmt.Errorf("lmin=%d: must be >= 4", lmin)
	}
	if lmax < lmin {
		return fmt.Errorf("lmax=%d: must be >= lmin (%d)", lmax, lmin)
	}
	if lmax > n {
		return fmt.Errorf("lmax=%d: exceeds series length %d", lmax, n)
	}
	return nil
}

func (c Config) validate(n int) error {
	if err := ValidateRange(n, c.LMin, c.LMax); err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return nil
}
