package core

// Tests for the sink pipeline: the discord sink against a from-scratch
// brute-force baseline, bit-identical discords at every worker count, and
// the invariant that registering a FullProfile sink does not change the
// pairs/VALMAP outputs the TopKPairs plan produces.

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/seriesmining/valmod/internal/profile"
	"github.com/seriesmining/valmod/internal/series"
)

// bruteDiscords recomputes the exact variable-length discords from
// scratch: per length, every offset's NN distance by direct z-normalized
// comparison (no FFT, no recurrences), then the documented extraction —
// per-length top-k with trivial-match de-dup, cross-length greedy
// selection by length-normalized distance under the
// |I−I'| < ⌈max(L,L')/factor⌉ exclusion.
func bruteDiscords(x []float64, lmin, lmax, k, factor int) []Discord {
	var cands []Discord
	for l := lmin; l <= lmax; l++ {
		s := len(x) - l + 1
		excl := profile.ExclusionZone(l, factor)
		if s <= excl {
			continue
		}
		// Exact per-offset NN distances, the slow way.
		type cand struct {
			i int
			d float64
		}
		var perLen []cand
		for i := 0; i < s; i++ {
			best := math.Inf(1)
			found := false
			for j := 0; j < s; j++ {
				if j > i-excl && j < i+excl {
					continue
				}
				if d := series.ZNormDist(x[i:i+l], x[j:j+l]); d < best {
					best = d
					found = true
				}
			}
			if found {
				perLen = append(perLen, cand{i, best})
			}
		}
		// Per-length top-k discords: largest NN distance first, offset
		// ascending on ties, de-duplicated by the per-length zone.
		sort.Slice(perLen, func(a, b int) bool {
			if perLen[a].d != perLen[b].d {
				return perLen[a].d > perLen[b].d
			}
			return perLen[a].i < perLen[b].i
		})
		var used []int
		for _, c := range perLen {
			if len(used) >= k {
				break
			}
			skip := false
			for _, u := range used {
				if abs(c.i-u) < excl {
					skip = true
					break
				}
			}
			if skip {
				continue
			}
			used = append(used, c.i)
			cands = append(cands, Discord{I: c.i, L: l, Dist: c.d})
		}
	}
	// Cross-length selection, same total order as the sink.
	sort.Slice(cands, func(a, b int) bool {
		da, db := cands[a].NormDist(), cands[b].NormDist()
		if da != db {
			return da > db
		}
		if cands[a].L != cands[b].L {
			return cands[a].L < cands[b].L
		}
		return cands[a].I < cands[b].I
	})
	var out []Discord
	for _, c := range cands {
		if len(out) >= k {
			break
		}
		trivial := false
		for _, u := range out {
			lz := c.L
			if u.L > lz {
				lz = u.L
			}
			if abs(c.I-u.I) < profile.ExclusionZone(lz, factor) {
				trivial = true
				break
			}
		}
		if !trivial {
			out = append(out, c)
		}
	}
	return out
}

// TestDiscordSinkMatchesBruteForce: the discord sink must reproduce the
// brute-force baseline — same (offset, length) discords in the same
// order, distances within floating tolerance — at every worker count.
func TestDiscordSinkMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	x := randWalk(rng, 260)
	const lmin, lmax, k = 8, 24, 3
	want := bruteDiscords(x, lmin, lmax, k, profile.DefaultExclusionFactor)
	if len(want) == 0 {
		t.Fatal("brute force found no discords — test series too small")
	}
	for _, w := range []int{1, 2, 3, 8} {
		res, err := Run(x, Config{LMin: lmin, LMax: lmax, TopK: 2, Discords: k, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		got := res.Discords
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d discords, brute force %d\n got: %v\nwant: %v",
				w, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i].I != want[i].I || got[i].L != want[i].L {
				t.Fatalf("workers=%d discord %d: (i=%d,l=%d), brute force (i=%d,l=%d)",
					w, i, got[i].I, got[i].L, want[i].I, want[i].L)
			}
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-6*(1+want[i].Dist) {
				t.Fatalf("workers=%d discord %d: dist %g, brute force %g",
					w, i, got[i].Dist, want[i].Dist)
			}
		}
	}
}

// TestDiscordsBitIdenticalAcrossWorkers: the full-profile pass runs on
// the seed's fixed block grid, so discord output must be byte-for-byte
// identical — not merely tolerance-equal — at every worker count.
func TestDiscordsBitIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	x := randWalk(rng, 1100)
	var results [][]Discord
	for _, w := range []int{1, 2, 4, 7} {
		res, err := Run(x, Config{LMin: 12, LMax: 48, TopK: 3, Discords: 5, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res.Discords)
	}
	base := results[0]
	if len(base) == 0 {
		t.Fatal("no discords found")
	}
	for ri, ds := range results[1:] {
		if len(ds) != len(base) {
			t.Fatalf("variant %d: %d discords vs %d", ri, len(ds), len(base))
		}
		for i := range ds {
			if ds[i] != base[i] {
				t.Fatalf("variant %d discord %d: %+v vs %+v", ri, i, ds[i], base[i])
			}
		}
	}
}

// TestFullProfilePlanKeepsPairsAndVALMAP: registering the FullProfile
// discord sink switches the length plan, but pairs and VALMAP must stay
// equivalent to the pruned TopKPairs plan (same pair sets within
// floating tolerance — the two plans take different arithmetic paths).
func TestFullProfilePlanKeepsPairsAndVALMAP(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	x := randWalk(rng, 500)
	pruned, err := Run(x, Config{LMin: 10, LMax: 30, TopK: 2, P: 4})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(x, Config{LMin: 10, LMax: 30, TopK: 2, P: 4, Discords: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned.PerLength) != len(full.PerLength) {
		t.Fatalf("length counts differ: %d vs %d", len(pruned.PerLength), len(full.PerLength))
	}
	for li := range pruned.PerLength {
		a, b := pruned.PerLength[li], full.PerLength[li]
		if len(a.Pairs) != len(b.Pairs) {
			t.Fatalf("m=%d: %d pairs vs %d", a.M, len(a.Pairs), len(b.Pairs))
		}
		for pi := range a.Pairs {
			if math.Abs(a.Pairs[pi].Dist-b.Pairs[pi].Dist) > 1e-9*(1+a.Pairs[pi].Dist) {
				t.Fatalf("m=%d pair %d: %v vs %v", a.M, pi, a.Pairs[pi], b.Pairs[pi])
			}
		}
	}
	for i := range pruned.VMap.MPn {
		if math.Abs(pruned.VMap.MPn[i]-full.VMap.MPn[i]) > 1e-9*(1+pruned.VMap.MPn[i]) &&
			!(math.IsInf(pruned.VMap.MPn[i], 1) && math.IsInf(full.VMap.MPn[i], 1)) {
			t.Fatalf("VALMAP slot %d: %g vs %g", i, pruned.VMap.MPn[i], full.VMap.MPn[i])
		}
	}
}

// TestRunSinksCustomSink: an external TopKPairs sink plugs into the
// pipeline and sees every length in order with the pairs the Result
// reports; the ℓmin profile is delivered regardless of requirements.
func TestRunSinksCustomSink(t *testing.T) {
	x := sineMix(400)
	var seen []LengthData
	collect := &collectSink{out: &seen}
	eng := NewEngine()
	if err := eng.RunSinks(context.Background(), x, Config{LMin: 12, LMax: 24, TopK: 2}, collect); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 24-12+1 {
		t.Fatalf("%d lengths delivered, want %d", len(seen), 24-12+1)
	}
	if seen[0].Profile == nil {
		t.Fatal("ℓmin profile not delivered")
	}
	for i, ld := range seen {
		if ld.L != 12+i {
			t.Fatalf("delivery %d: length %d, want %d", i, ld.L, 12+i)
		}
		if i > 0 && ld.Profile != nil {
			t.Fatalf("length %d: profile delivered under a TopKPairs-only plan", ld.L)
		}
	}
}

type collectSink struct{ out *[]LengthData }

func (*collectSink) Requires() Requirement { return TopKPairs }
func (c *collectSink) Consume(ld LengthData) {
	// Result.Pairs is engine scratch, valid only during Consume: copy.
	ld.Result.Pairs = append([]profile.MotifPair(nil), ld.Result.Pairs...)
	*c.out = append(*c.out, ld)
}
