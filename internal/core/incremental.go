package core

// The incremental cross-length profile engine: the FullProfile plan's
// per-length pass. Instead of re-seeding FFTs and re-running a STOMP row
// scan from scratch at every length (the PR3 behavior, kept behind
// Config.DisableIncremental as processLengthFull), the run carries one
// piece of state across lengths — the diagonal head row QT(0, k) — and
// extends it from length ℓ to ℓ+1 with the one-FMA-per-cell recurrence
// QT(i,j)ₗ₊₁ = QT(i,j)ₗ + t[i+ℓ]·t[j+ℓ]. Each length is then resolved by
// one fused diagonal pass that visits every non-trivial pair exactly once
// (symmetry updates both endpoints), on a fixed diagonal-block grid, so
// the pass costs half the cells of the row scan and zero FFTs.
//
// Determinism: a diagonal's cells depend only on its head cell, never on
// which block or worker scans it, so the computed correlations are
// bit-identical at every worker count. Winner selection per profile slot
// uses the strict total order (corr descending, neighbor offset ascending
// on exact ties); a total-order maximum is independent of encounter order,
// so block scheduling and the per-worker local merges cannot change the
// result either.

import (
	"math"
	"sync"
	"sync/atomic"

	"github.com/seriesmining/valmod/internal/kernels"
	"github.com/seriesmining/valmod/internal/profile"
	"github.com/seriesmining/valmod/internal/stomp"
)

// diagBlockCells is the minimum target cell count of one diagonal block —
// the fixed grid the incremental pass is partitioned on. Like
// seedBlockRows it depends only on the geometry (s, excl), never on the
// worker count.
const diagBlockCells = 128 * 1024

// diagBlockMinWidth is the minimum number of diagonals per block. The
// kernel interleaves 4 (AVX2) or 8 (ILP) diagonals per sweep; a block
// narrower than one interleave group degrades the whole scan to the
// scalar single-diagonal path. Under the old cells-only rule that was
// exactly what happened at scale: once a single diagonal holds ≥
// diagBlockCells cells (n ≳ 130k near the exclusion zone), every block
// came out one diagonal wide.
const diagBlockMinWidth = 16

// diagBlockShards is the target block count of a full-size pass: the cell
// target grows with the workload (total/diagBlockShards) so huge inputs
// don't fragment into hundreds of thousands of blocks, while staying small
// enough that the dynamic scheduler can balance the triangle's uneven
// diagonals across workers.
const diagBlockShards = 2048

// incState is the cross-length state of the incremental engine: the
// diagonal head row QT(0, k) at length cur. Seeded with one FFT at the
// first FullProfile length of the run, then FMA-extended; cur == 0 means
// unseeded. Under Config.Carry32 the head lives in head32 instead
// (float32 storage, float64 accumulation); a state uses one
// representation for its whole life. The refine phase of the
// coarse-to-fine plan (modes.go) runs fresh local states, so the pass is
// not tied to the run's primary carried state r.inc.
type incState struct {
	head   []float64
	head32 []float32
	cur    int
}

// diagBlock is a contiguous range of diagonals [k0, k1).
type diagBlock struct{ k0, k1 int }

// diagBlocks partitions diagonals [excl, s) into blocks of at least
// diagBlockMinWidth diagonals and roughly target cells each (diagonal k
// has s−k cells), where target scales with the total workload. The
// boundaries are a pure function of s and excl; the block grid never
// affects results (winner selection is a total-order maximum), only how
// evenly the pass schedules.
func diagBlocks(s, excl int) []diagBlock {
	d := s - excl // diagonal count; total cells form the triangle d(d+1)/2
	target := diagBlockCells
	if t := d * (d + 1) / 2 / diagBlockShards; t > target {
		target = t
	}
	var out []diagBlock
	k0, acc := excl, 0
	for k := excl; k < s; k++ {
		acc += s - k
		if acc >= target && k+1-k0 >= diagBlockMinWidth {
			out = append(out, diagBlock{k0, k + 1})
			k0, acc = k+1, 0
		}
	}
	if k0 < s {
		out = append(out, diagBlock{k0, s})
	}
	return out
}

// headAt returns st's diagonal head row advanced to length l: one FFT on
// first use (the correlator amortizes the series-side transform), then
// stomp.ExtendDiagonalHead's one-FMA-per-cell recurrence per length step.
// A given state only ever moves forward (l never regresses within one).
func (r *run) headAt(st *incState, l int) ([]float64, error) {
	if st.cur == 0 {
		n := len(r.t)
		st.head = r.corr.Dots(r.t[0:l], make([]float64, n-l+1))
		st.cur = l
		r.planStats.HeadSeeds++
		return st.head, nil
	}
	head, err := stomp.ExtendDiagonalHead(st.head, r.t, st.cur, l)
	if err != nil {
		return nil, err
	}
	r.planStats.HeadExtensions += l - st.cur
	st.head = head
	st.cur = l
	return head, nil
}

// head32At is headAt for the float32-stored carry (Config.Carry32): the
// FFT seed is computed in float64 and rounded once into the float32 head;
// extensions accumulate in float64 from widened loads and round once per
// cell per call (stomp.ExtendDiagonalHead32 / kernels.ExtendRow32).
func (r *run) head32At(st *incState, l int) ([]float32, error) {
	if st.cur == 0 {
		n := len(r.t)
		head := r.corr.Dots(r.t[0:l], make([]float64, n-l+1))
		st.head32 = make([]float32, len(head))
		for i, v := range head {
			st.head32[i] = float32(v)
		}
		st.cur = l
		r.planStats.HeadSeeds++
		return st.head32, nil
	}
	head, err := stomp.ExtendDiagonalHead32(st.head32, r.series32(), st.cur, l)
	if err != nil {
		return nil, err
	}
	r.planStats.HeadExtensions += l - st.cur
	st.head32 = head
	st.cur = l
	return head, nil
}

// series32 returns the float32 copy of the series the Carry32 diagonal
// pass streams, built once per run on first use.
func (r *run) series32() []float32 {
	if r.t32 == nil {
		r.t32 = make([]float32, len(r.t))
		for i, v := range r.t {
			r.t32[i] = float32(v)
		}
	}
	return r.t32
}

// ensureDiagScratch sizes the per-worker (corr, index) accumulators of the
// diagonal pass. They are allocated once per run at the ℓmin anchor count
// and resliced per length. Each allocation carries a 64-byte tail pad
// (capacity-clamped off the visible slice) so the last cells of one
// worker's accumulator never share a cache line with the first cells of
// the next worker's — the hottest slots sit at the small-offset end, and
// without the pad adjacent heap objects can false-share.
func (r *run) ensureDiagScratch(workers int) {
	for len(r.diagCorr) < workers {
		c := make([]float64, r.sMin+8)
		r.diagCorr = append(r.diagCorr, c[:r.sMin:r.sMin])
		ix := make([]int32, r.sMin+16)
		r.diagIdx = append(r.diagIdx, ix[:r.sMin:r.sMin])
	}
}

// processLengthIncremental resolves length l with the incremental
// cross-length pass over the run's primary carried state.
func (r *run) processLengthIncremental(l int) (LengthResult, *profile.MatrixProfile, error) {
	return r.processLengthIncrementalAt(&r.inc, l)
}

// processLengthIncrementalAt resolves length l with the incremental
// cross-length pass over st: extend the carried head row to l, then one
// fused diagonal scan — in-length recurrence, division-free correlation,
// both endpoints of each pair updated — over the fixed diagonal-block
// grid. Output contract matches processLengthFull: the exact top-k pairs
// and the exact matrix profile (nil when the length admits no non-trivial
// pair). Under Config.Carry32 the head and the series stream as float32
// with float64 accumulation (kernels.DiagScan32).
func (r *run) processLengthIncrementalAt(st *incState, l int) (LengthResult, *profile.MatrixProfile, error) {
	s := len(r.t) - l + 1
	excl := profile.ExclusionZone(l, r.cfg.ExclusionFactor)
	lr := LengthResult{M: l}
	if s <= excl {
		// No non-trivial pair (hence no finite NN distance) can exist, and
		// none can at any longer length either: the head row stays put.
		return lr, nil, nil
	}
	r.momentsAt(l)
	var (
		head   []float64
		head32 []float32
		t32    []float32
		err    error
	)
	if r.cfg.Carry32 {
		t32 = r.series32()
		head32, err = r.head32At(st, l)
	} else {
		head, err = r.headAt(st, l)
	}
	if err != nil {
		return lr, nil, err
	}
	scan := func(k0, k1 int, corr []float64, idx []int32) {
		if r.cfg.Carry32 {
			kernels.DiagScan32(t32, head32, r.means, r.invStds, k0, k1, l, s, corr, idx)
		} else {
			kernels.DiagScan(r.t, head, r.means, r.invStds, k0, k1, l, s, corr, idx)
		}
	}

	blocks := diagBlocks(s, excl)
	workers := r.workers
	if workers > len(blocks) {
		workers = len(blocks)
	}
	if workers < 1 {
		workers = 1
	}
	r.ensureDiagScratch(workers)
	for w := 0; w < workers; w++ {
		corr, idx := r.diagCorr[w][:s], r.diagIdx[w][:s]
		for i := range corr {
			corr[i] = math.Inf(-1)
			idx[i] = -1
		}
	}

	if workers == 1 {
		corr, idx := r.diagCorr[0][:s], r.diagIdx[0][:s]
		for _, b := range blocks {
			if err := r.ctx.Err(); err != nil {
				return lr, nil, err
			}
			scan(b.k0, b.k1, corr, idx)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				corr, idx := r.diagCorr[w][:s], r.diagIdx[w][:s]
				for {
					if r.ctx.Err() != nil {
						return
					}
					b := int(next.Add(1)) - 1
					if b >= len(blocks) {
						return
					}
					scan(blocks[b].k0, blocks[b].k1, corr, idx)
				}
			}(w)
		}
		wg.Wait()
		if err := r.ctx.Err(); err != nil {
			return lr, nil, err
		}
		r.mergeDiagLocals(workers, s)
	}

	mp := profile.New(l, excl, s)
	fl := float64(l)
	corr, idx := r.diagCorr[0][:s], r.diagIdx[0][:s]
	for i := 0; i < s; i++ {
		if idx[i] < 0 {
			continue
		}
		c := corr[i]
		if c > 1 {
			c = 1
		} else if c < -1 {
			c = -1
		}
		mp.Dist[i] = math.Sqrt(2 * fl * (1 - c))
		mp.Index[i] = int(idx[i])
	}
	if r.degCount > 0 {
		r.fixupDegenerate(mp, excl, s)
	}
	lr.Pairs = mp.TopKPairsInto(r.cfg.TopK, &r.topk)
	lr.Stats.FullRecompute = true
	lr.Stats.Incremental = true
	return lr, mp, nil
}

// mergeDiagShard is the per-slot fold used by both merge shapes below.
const mergeShardAlign = 16 // slots; ×8 bytes = two cache lines, no false sharing on base

// mergeParallelMinSlots gates the parallel merge: below it the fold is a
// few microseconds of linear memory and two goroutine handoffs would cost
// more than they save.
const mergeParallelMinSlots = 1 << 15

// mergeDiagLocals folds the worker-local accumulators into slot 0 under
// the total order (corr desc, neighbor asc), which makes the merged winner
// independent of which worker scanned which blocks AND of how this fold is
// sharded. For large anchor counts the fold runs sharded: each goroutine
// owns a disjoint slot range aligned to mergeShardAlign and folds every
// worker's local over it in one streaming pass — unlike a tree reduction
// there are no inter-round barriers and each base cell is written by
// exactly one goroutine.
func (r *run) mergeDiagLocals(workers, s int) {
	base, bidx := r.diagCorr[0][:s], r.diagIdx[0][:s]
	fold := func(lo, hi int) {
		for w := 1; w < workers; w++ {
			wc, wi := r.diagCorr[w][:s], r.diagIdx[w][:s]
			for i := lo; i < hi; i++ {
				if wi[i] < 0 {
					continue
				}
				if wc[i] > base[i] || (wc[i] == base[i] && wi[i] < bidx[i]) {
					base[i], bidx[i] = wc[i], wi[i]
				}
			}
		}
	}
	if s < mergeParallelMinSlots || workers < 2 {
		fold(0, s)
		return
	}
	shard := (s + workers - 1) / workers
	shard = (shard + mergeShardAlign - 1) &^ (mergeShardAlign - 1)
	var wg sync.WaitGroup
	for lo := 0; lo < s; lo += shard {
		hi := lo + shard
		if hi > s {
			hi = s
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fold(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// The diagonal scan itself lives in kernels.DiagScan (shared, interleaved,
// parity-tested against kernels.RefDiagScan): each diagonal starts from
// its head cell, advances with the in-length recurrence, and each cell's
// division-free correlation updates the best-so-far of both endpoints
// under the total order (corr desc, neighbor asc). A degenerate endpoint
// (σ = 0, inv = 0) zeroes the correlation, which matches the
// one-constant-window convention d = √(2ℓ); the both-constant-windows case
// (d = 0) is restored by fixupDegenerate.

// fixupDegenerate restores the constant-window convention the fused
// correlation kernel cannot express: two degenerate (σ = 0) subsequences
// are at distance 0 of each other, which beats the √(2ℓ) every candidate
// contributed through the zeroed correlation. The winner is the smallest
// qualifying degenerate offset — the same index the ascending scalar scan
// of the recompute path selects.
func (r *run) fixupDegenerate(mp *profile.MatrixProfile, excl, s int) {
	r.degs = applyDegenerateFixup(mp, r.invStds[:s], excl, r.degs[:0])
}

// applyDegenerateFixup is the shared implementation of the constant-window
// convention, used by both the batch run above and the streaming engine's
// snapshot materialization (stream.go) so the two can never drift. degs is
// caller scratch; the (reused) slice is returned.
func applyDegenerateFixup(mp *profile.MatrixProfile, invs []float64, excl int, degs []int) []int {
	for i, inv := range invs {
		if inv == 0 {
			degs = append(degs, i)
		}
	}
	for _, i := range degs {
		for _, j := range degs {
			if j > i-excl && j < i+excl {
				continue
			}
			mp.Dist[i] = 0
			mp.Index[i] = j
			break // degs ascend, so the first qualifying j is the smallest
		}
	}
	return degs
}
