package core

// The streaming equivalence harness: any chunking of a series through
// Streamer.Append is tolerance-equivalent to one-shot batch Run over the
// same points; a fixed chunking is bit-identical at every worker count;
// an uncapped stream is bit-identical under any chunking; a capped stream
// always equals a batch run over the trailing window — including when
// eviction removes the reigning best pair.

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// streamChunks feeds x through a fresh Streamer in the given chunk sizes
// (which must sum to len(x)) and returns the stream.
func streamChunks(t testing.TB, cfg Config, x []float64, chunks []int) *Streamer {
	t.Helper()
	st, err := NewStreamer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pos := 0
	for _, c := range chunks {
		if err := st.Append(x[pos : pos+c]); err != nil {
			t.Fatalf("append chunk at %d (size %d): %v", pos, c, err)
		}
		pos += c
	}
	if pos != len(x) {
		t.Fatalf("chunks cover %d of %d points", pos, len(x))
	}
	return st
}

// randomChunks splits n points into random chunk sizes, forcing a few
// 1-point chunks so window boundaries land mid-chunk and mid-window.
func randomChunks(rng *rand.Rand, n, maxChunk int) []int {
	var out []int
	pos := 0
	for pos < n {
		c := 1 + rng.Intn(maxChunk)
		if rng.Intn(4) == 0 {
			c = 1
		}
		if pos+c > n {
			c = n - pos
		}
		out = append(out, c)
		pos += c
	}
	return out
}

// assertDiscordsEquivalent mirrors assertPairsEquivalent for the
// cross-length discord ranking: rank-wise equal normalized distances
// within tolerance, identities compared with a true-tie allowance.
func assertDiscordsEquivalent(t *testing.T, tag string, got, want []Discord) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d discords, want %d\n got: %v\nwant: %v", tag, len(got), len(want), got, want)
	}
	for i := range got {
		g, w := got[i], want[i]
		if math.Abs(g.NormDist()-w.NormDist()) > 1e-6*(1+w.NormDist()) {
			t.Fatalf("%s: discord %d norm dist %g, want %g", tag, i, g.NormDist(), w.NormDist())
		}
		if g.I != w.I || g.L != w.L {
			if math.Abs(g.NormDist()-w.NormDist()) > 1e-9*(1+w.NormDist()) {
				t.Fatalf("%s: discord %d = (I=%d,L=%d), want (I=%d,L=%d)", tag, i, g.I, g.L, w.I, w.L)
			}
		}
	}
}

// assertStreamEqualsBatch compares a stream snapshot against a batch run:
// per-length top-k pairs and the discord ranking, both within floating
// tolerance (the two engines reach the same dot products along different
// arithmetic paths).
func assertStreamEqualsBatch(t *testing.T, tag string, got, want *Result) {
	t.Helper()
	if got.N != want.N {
		t.Fatalf("%s: N=%d, want %d", tag, got.N, want.N)
	}
	if len(got.PerLength) != len(want.PerLength) {
		t.Fatalf("%s: %d lengths, want %d", tag, len(got.PerLength), len(want.PerLength))
	}
	for i := range got.PerLength {
		g, w := got.PerLength[i], want.PerLength[i]
		if g.M != w.M {
			t.Fatalf("%s: length slot %d is m=%d, want m=%d", tag, i, g.M, w.M)
		}
		assertPairsEquivalent(t, tag+"/"+g.StatsTag(), g.Pairs, w.Pairs)
	}
	assertDiscordsEquivalent(t, tag, got.Discords, want.Discords)
}

// snapshotFingerprint strips a Result to the fields the bit-identity
// assertions compare (Cfg carries Workers, which legitimately differs).
type snapshotFingerprint struct {
	N         int
	MPMin     any
	PerLength []LengthResult
	VMap      any
	Discords  []Discord
}

func fingerprint(r *Result) snapshotFingerprint {
	return snapshotFingerprint{N: r.N, MPMin: r.MPMin, PerLength: r.PerLength, VMap: r.VMap, Discords: r.Discords}
}

func TestStreamEqualsBatchRandomChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	data := map[string][]float64{
		"walk": randWalk(rng, 700),
		"sine": sineMix(650),
	}
	// A constant prefix exercises the degenerate conventions end to end.
	// It must sit at the very start: there the cumulative sums are exact
	// (5·i), Var computes to exactly 0, and both engines see the same
	// degenerate set. A constant run planted mid-series lands on rounded
	// cumulative sums, leaves σ at tiny nonzero garbage, and the resulting
	// near-zero distances are too ill-conditioned for any cross-engine
	// tolerance (the batch engine's own paths disagree there too).
	for i := 0; i < 40; i++ {
		data["walk"][i] = 5.0
	}
	cfg := Config{LMin: 8, LMax: 40, TopK: 3, Discords: 3}
	for name, x := range data {
		want, err := Run(x, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 3; trial++ {
			chunks := randomChunks(rng, len(x), 97)
			for _, workers := range []int{1, 4} {
				c := cfg
				c.Workers = workers
				st := streamChunks(t, c, x, chunks)
				got, err := st.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				tag := name + "/w=" + string(rune('0'+workers))
				assertStreamEqualsBatch(t, tag, got, want)
			}
		}
	}
}

func TestStreamChunkingInvarianceBitIdentical(t *testing.T) {
	// Without WindowCap every length's arithmetic is one serial chain in
	// append order, so the carried state — and hence the snapshot — cannot
	// depend on how the same points were chunked.
	rng := rand.New(rand.NewSource(72))
	x := randWalk(rng, 600)
	cfg := Config{LMin: 8, LMax: 32, TopK: 3, Discords: 2, Workers: 2}
	onePoint := make([]int, len(x))
	for i := range onePoint {
		onePoint[i] = 1
	}
	ref, err := streamChunks(t, cfg, x, []int{len(x)}).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		chunks := randomChunks(rng, len(x), 64)
		if trial == 0 {
			chunks = onePoint
		}
		got, err := streamChunks(t, cfg, x, chunks).Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fingerprint(got), fingerprint(ref)) {
			t.Fatalf("trial %d: snapshot differs across chunkings of the same points", trial)
		}
	}
}

func TestStreamWorkerCountBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	x := randWalk(rng, 600)
	chunks := randomChunks(rng, len(x), 50)
	for _, cap := range []int{0, 300} {
		cfg := Config{LMin: 8, LMax: 32, TopK: 3, Discords: 2, WindowCap: cap, Workers: 1}
		ref, err := streamChunks(t, cfg, x, chunks).Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 7} {
			cfg.Workers = workers
			got, err := streamChunks(t, cfg, x, chunks).Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fingerprint(got), fingerprint(ref)) {
				t.Fatalf("cap=%d: snapshot at workers=%d differs from workers=1", cap, workers)
			}
		}
	}
}

func TestStreamEvictionEqualsTrailingBatch(t *testing.T) {
	// Plant the global best pair early so eviction removes it: the capped
	// stream must forget it and agree with a batch run over exactly the
	// trailing window, repairing every profile entry that pointed into the
	// evicted prefix.
	rng := rand.New(rand.NewSource(74))
	x := randWalk(rng, 900)
	motif := randWalk(rng, 24)
	copy(x[50:], motif)
	copy(x[150:], motif) // identical pair: distance ~0, the undisputed best
	const cap = 400
	cfg := Config{LMin: 8, LMax: 32, TopK: 3, Discords: 3, WindowCap: cap, Workers: 4}

	st, err := NewStreamer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pos := 0
	for _, stop := range []int{350, 600, 900} {
		for pos < stop {
			c := 1 + rng.Intn(60)
			if pos+c > stop {
				c = stop - pos
			}
			if err := st.Append(x[pos : pos+c]); err != nil {
				t.Fatal(err)
			}
			pos += c
		}
		lo := pos - cap
		if lo < 0 {
			lo = 0
		}
		batchCfg := cfg
		batchCfg.WindowCap = 0
		want, err := Run(x[lo:pos], batchCfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := st.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if st.N() != pos-lo || st.Start() != lo || st.Total() != pos {
			t.Fatalf("at %d: N=%d Start=%d Total=%d, want %d/%d/%d", pos, st.N(), st.Start(), st.Total(), pos-lo, lo, pos)
		}
		assertStreamEqualsBatch(t, "trail@"+string(rune('0'+stop/100)), got, want)
	}

	// The planted pair must reign while retained and be gone once evicted.
	final, _ := st.Snapshot()
	if best, ok := final.GlobalBest(); ok && best.Dist < 1e-6 {
		t.Fatalf("evicted planted pair still reported: %v", best)
	}
}

func TestStreamSnapshotGrowsWithSeries(t *testing.T) {
	// Between LMin and LMax points, Snapshot covers the lengths that have
	// windows — and matches a batch run with the clamped range.
	rng := rand.New(rand.NewSource(75))
	x := randWalk(rng, 60)
	cfg := Config{LMin: 8, LMax: 100, TopK: 2}
	st, err := NewStreamer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(x[:5]); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Snapshot(); err == nil {
		t.Fatal("snapshot before LMin points: want ErrTooShort")
	}
	if err := st.Append(x[5:]); err != nil {
		t.Fatal(err)
	}
	got, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	bcfg := cfg
	bcfg.LMax = len(x)
	want, err := Run(x, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	assertStreamEqualsBatch(t, "clamped", got, want)
}

func TestStreamAppendRejectsNonFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	x := randWalk(rng, 120)
	cfg := Config{LMin: 8, LMax: 24, TopK: 2}
	st, err := NewStreamer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(x); err != nil {
		t.Fatal(err)
	}
	before, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]float64{{1, math.NaN()}, {math.Inf(1)}, {0, 2, math.Inf(-1), 3}} {
		if err := st.Append(bad); err == nil {
			t.Fatalf("append %v: want ErrBadValue", bad)
		}
		if st.N() != len(x) || st.Total() != len(x) {
			t.Fatalf("rejected append mutated the stream: N=%d Total=%d", st.N(), st.Total())
		}
	}
	after, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fingerprint(before), fingerprint(after)) {
		t.Fatal("rejected appends changed the snapshot")
	}
}

func TestStreamConfigValidation(t *testing.T) {
	if _, err := NewStreamer(Config{LMin: 2, LMax: 8}); err == nil {
		t.Fatal("lmin=2: want error")
	}
	if _, err := NewStreamer(Config{LMin: 8, LMax: 4}); err == nil {
		t.Fatal("lmax<lmin: want error")
	}
	if _, err := NewStreamer(Config{LMin: 8, LMax: 32, WindowCap: 31}); err == nil {
		t.Fatal("window_cap<lmax: want error")
	}
}

// FuzzAppend drives the streaming engine with fuzzer-chosen points and
// chunk boundaries (and a capped variant), checking every accepted stream
// against the batch engine and every non-finite chunk for clean
// rejection. Bytes 0xFF/0xFE/0xFD inject NaN/±Inf.
func FuzzAppend(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 250, 1, 9}, []byte{7, 3, 1}, false)
	f.Add([]byte{128, 128, 128, 128, 128, 128, 128, 128, 128, 128}, []byte{1}, true)
	f.Add([]byte{0xFF, 10, 20, 30, 40, 50, 60, 70, 80, 90, 0xFE, 5}, []byte{4, 4, 200}, true)
	f.Fuzz(func(t *testing.T, raw, chunkBytes []byte, capped bool) {
		if len(raw) < 32 {
			return
		}
		if len(raw) > 300 {
			raw = raw[:300]
		}
		x := make([]float64, len(raw))
		v := 0.0
		for i, b := range raw {
			switch b {
			case 0xFF:
				x[i] = math.NaN()
			case 0xFE:
				x[i] = math.Inf(1)
			case 0xFD:
				x[i] = math.Inf(-1)
			default:
				v += (float64(b) - 128) / 32
				x[i] = v
			}
		}
		cfg := Config{LMin: 8, LMax: 16, TopK: 1, Workers: 2}
		if capped {
			cfg.WindowCap = 16 + len(x)/2
		}
		st, err := NewStreamer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Chunk per chunkBytes, round-robin; chunks holding a non-finite
		// point must be rejected atomically and drop out of the stream.
		var accepted []float64
		pos := 0
		for ci := 0; pos < len(x); ci++ {
			c := 1
			if len(chunkBytes) > 0 {
				c = int(chunkBytes[ci%len(chunkBytes)])%29 + 1
			}
			if pos+c > len(x) {
				c = len(x) - pos
			}
			chunk := x[pos : pos+c]
			pos += c
			finite := true
			for _, p := range chunk {
				if math.IsNaN(p) || math.IsInf(p, 0) {
					finite = false
					break
				}
			}
			nBefore, totalBefore := st.N(), st.Total()
			err := st.Append(chunk)
			if finite != (err == nil) {
				t.Fatalf("chunk finite=%v, append err=%v", finite, err)
			}
			if !finite && (st.N() != nBefore || st.Total() != totalBefore) {
				t.Fatal("rejected chunk mutated the stream")
			}
			if finite {
				accepted = append(accepted, chunk...)
			}
		}
		lo := 0
		if cfg.WindowCap > 0 && len(accepted) > cfg.WindowCap {
			lo = len(accepted) - cfg.WindowCap
		}
		window := accepted[lo:]
		if len(window) < cfg.LMax {
			if _, err := st.Snapshot(); err == nil && len(window) < cfg.LMin {
				t.Fatal("snapshot below LMin points: want error")
			}
			return
		}
		got, err := st.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		bcfg := cfg
		bcfg.WindowCap = 0
		want, err := Run(window, bcfg)
		if err != nil {
			t.Fatal(err)
		}
		// Fuzzed bytes can build arbitrarily ill-conditioned series, so
		// compare in d²-space (d² = 2ℓ(1−c): a fixed d² tolerance is a
		// fixed correlation tolerance, well-conditioned even at d ≈ 0) and
		// skip offset identity (exact ties legitimately reorder).
		if len(got.PerLength) != len(want.PerLength) {
			t.Fatalf("%d lengths, want %d", len(got.PerLength), len(want.PerLength))
		}
		for i := range got.PerLength {
			g, w := got.PerLength[i], want.PerLength[i]
			if len(g.Pairs) != len(w.Pairs) {
				t.Fatalf("m=%d: %d pairs, want %d", g.M, len(g.Pairs), len(w.Pairs))
			}
			for r := range g.Pairs {
				d2g, d2w := g.Pairs[r].Dist*g.Pairs[r].Dist, w.Pairs[r].Dist*w.Pairs[r].Dist
				if math.Abs(d2g-d2w) > 1e-6*2*float64(g.M) {
					t.Fatalf("m=%d rank %d: d²=%g, want %g", g.M, r, d2g, d2w)
				}
			}
		}
	})
}
