package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// captureAll runs cfg over x collecting every emitted checkpoint blob
// (copied — blobs are valid only during the callback) and returns the
// final result with them.
func captureAll(t *testing.T, e *Engine, x []float64, cfg Config) (*Result, [][]byte) {
	t.Helper()
	var ckpts [][]byte
	cfg.OnCheckpoint = func(b []byte) error {
		ckpts = append(ckpts, append([]byte(nil), b...))
		return nil
	}
	res, err := e.Run(context.Background(), x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, ckpts
}

// assertResultsBitIdentical fails unless a and b agree byte-for-byte on
// every output surface: ℓmin profile, per-length pairs and stats, VALMAP,
// discords and plan counters.
func assertResultsBitIdentical(t *testing.T, tag string, a, b *Result) {
	t.Helper()
	if (a.MPMin == nil) != (b.MPMin == nil) {
		t.Fatalf("%s: MPMin presence differs", tag)
	}
	if a.MPMin != nil {
		for i := range a.MPMin.Dist {
			if a.MPMin.Dist[i] != b.MPMin.Dist[i] || a.MPMin.Index[i] != b.MPMin.Index[i] {
				t.Fatalf("%s: profile slot %d: (%v,%d) vs (%v,%d)", tag, i,
					a.MPMin.Dist[i], a.MPMin.Index[i], b.MPMin.Dist[i], b.MPMin.Index[i])
			}
		}
	}
	if len(a.PerLength) != len(b.PerLength) {
		t.Fatalf("%s: %d vs %d lengths", tag, len(a.PerLength), len(b.PerLength))
	}
	for li := range a.PerLength {
		pa, pb := a.PerLength[li], b.PerLength[li]
		if pa.M != pb.M || pa.Stats != pb.Stats || len(pa.Pairs) != len(pb.Pairs) {
			t.Fatalf("%s: m=%d header differs: %+v vs %+v", tag, pa.M, pa.Stats, pb.Stats)
		}
		for pi := range pa.Pairs {
			if pa.Pairs[pi] != pb.Pairs[pi] {
				t.Fatalf("%s: m=%d pair %d: %v vs %v", tag, pa.M, pi, pa.Pairs[pi], pb.Pairs[pi])
			}
		}
	}
	for i := range a.VMap.MPn {
		if a.VMap.MPn[i] != b.VMap.MPn[i] || a.VMap.IP[i] != b.VMap.IP[i] || a.VMap.LP[i] != b.VMap.LP[i] {
			t.Fatalf("%s: VALMAP slot %d differs", tag, i)
		}
	}
	if len(a.Discords) != len(b.Discords) {
		t.Fatalf("%s: %d vs %d discords", tag, len(a.Discords), len(b.Discords))
	}
	for i := range a.Discords {
		if a.Discords[i] != b.Discords[i] {
			t.Fatalf("%s: discord %d: %+v vs %+v", tag, i, a.Discords[i], b.Discords[i])
		}
	}
	if a.Plan != b.Plan {
		t.Fatalf("%s: plan stats %+v vs %+v", tag, a.Plan, b.Plan)
	}
}

// TestCheckpointResumeBitIdentical is the tentpole contract: killing a run
// at ANY length boundary and resuming from the last checkpoint yields
// results byte-identical to the uninterrupted run — across the pruned plan
// and the incremental discords plan, and with a different worker count on
// the resume side (the checkpoint digest deliberately ignores Workers).
func TestCheckpointResumeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := randWalk(rng, 900)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"pruned", Config{LMin: 12, LMax: 44, TopK: 4, P: 6, Workers: 1}},
		{"discords", Config{LMin: 12, LMax: 36, TopK: 3, P: 6, Discords: 3, Workers: 1}},
		{"carry32", Config{LMin: 12, LMax: 30, TopK: 3, Discords: 2, Carry32: true, Workers: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEngine()
			base, ckpts := captureAll(t, e, x, tc.cfg)
			total := tc.cfg.LMax - tc.cfg.LMin + 1
			if len(ckpts) != total-1 {
				t.Fatalf("expected %d checkpoints, got %d", total-1, len(ckpts))
			}
			for i, ck := range ckpts {
				for _, w := range []int{1, 3} {
					cfg := tc.cfg
					cfg.Workers = w
					res, err := e.ResumeRun(context.Background(), x, cfg, ck)
					if err != nil {
						t.Fatalf("resume from boundary %d (workers=%d): %v", i+1, w, err)
					}
					assertResultsBitIdentical(t, tc.name, base, res)
				}
			}
			if bal := e.rowPoolBalance(); bal != 0 {
				t.Fatalf("row pool unbalanced after resumes: %d", bal)
			}
		})
	}
}

// TestCheckpointRejectsTampering: the frame validation must catch every
// way a blob can be wrong before any field is trusted.
func TestCheckpointRejectsTampering(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := randWalk(rng, 400)
	cfg := Config{LMin: 10, LMax: 20, TopK: 3, Workers: 1}
	e := NewEngine()
	_, ckpts := captureAll(t, e, x, cfg)
	ck := ckpts[len(ckpts)/2]

	expectBad := func(tag string, blob []byte, series []float64, c Config) {
		t.Helper()
		if _, err := e.ResumeRun(context.Background(), series, c, blob); !errors.Is(err, ErrBadCheckpoint) {
			t.Fatalf("%s: want ErrBadCheckpoint, got %v", tag, err)
		}
	}

	flipped := append([]byte(nil), ck...)
	flipped[len(flipped)-1] ^= 0x40
	expectBad("payload corruption", flipped, x, cfg)

	expectBad("truncated", ck[:30], x, cfg)

	badMagic := append([]byte(nil), ck...)
	badMagic[0] = 'X'
	expectBad("bad magic", badMagic, x, cfg)

	badVer := append([]byte(nil), ck...)
	badVer[11] = 9
	expectBad("unknown version", badVer, x, cfg)

	otherSeries := randWalk(rand.New(rand.NewSource(9)), 400)
	expectBad("different series content", ck, otherSeries, cfg)

	otherCfg := cfg
	otherCfg.TopK = 5
	expectBad("different config", ck, x, otherCfg)

	fastCfg := Config{LMin: 10, LMax: 20, Discords: 2, LengthSkip: true, Workers: 1}
	expectBad("fast-mode resume", ck, x, fastCfg)
}

// TestCheckpointEveryCadence: CheckpointEvery k emits only at every k-th
// completed length, and never after the final length (nothing remains to
// resume).
func TestCheckpointEveryCadence(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := randWalk(rng, 400)
	cfg := Config{LMin: 10, LMax: 29, TopK: 3, Workers: 1, CheckpointEvery: 5}
	_, ckpts := captureAll(t, NewEngine(), x, cfg)
	if len(ckpts) != 3 { // boundaries 5, 10, 15 of 20 lengths; 20 is final
		t.Fatalf("expected 3 checkpoints at cadence 5 over 20 lengths, got %d", len(ckpts))
	}
}

// TestCheckpointCallbackErrorNonFatal: a failing OnCheckpoint must not
// fail the run — it just stops checkpointing.
func TestCheckpointCallbackErrorNonFatal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := randWalk(rng, 400)
	calls := 0
	cfg := Config{LMin: 10, LMax: 24, TopK: 3, Workers: 1,
		OnCheckpoint: func([]byte) error { calls++; return errors.New("disk full") }}
	res, err := Run(x, cfg)
	if err != nil {
		t.Fatalf("run failed on checkpoint error: %v", err)
	}
	if calls != 1 {
		t.Fatalf("checkpointing not disabled after first failure: %d calls", calls)
	}
	if len(res.PerLength) != 15 {
		t.Fatalf("run incomplete: %d lengths", len(res.PerLength))
	}
}

// TestCheckpointFastModeSilent: the coarse-to-fine plans never emit
// checkpoints (their refine phase makes length boundaries inconsistent
// cuts); callers fall back to scratch re-runs.
func TestCheckpointFastModeSilent(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := randWalk(rng, 500)
	calls := 0
	cfg := Config{LMin: 10, LMax: 30, Discords: 2, LengthSkip: true, Workers: 1,
		OnCheckpoint: func([]byte) error { calls++; return nil }}
	if _, err := Run(x, cfg); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("fast mode emitted %d checkpoints", calls)
	}
}

// TestCheckpointRequiresBuiltinSinks: checkpointing is defined only over
// the Engine.Run pipeline; a custom sink's state cannot be captured.
func TestCheckpointRequiresBuiltinSinks(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := randWalk(rng, 300)
	cfg := Config{LMin: 10, LMax: 14, Workers: 1, OnCheckpoint: func([]byte) error { return nil }}
	err := NewEngine().RunSinks(context.Background(), x, cfg, &collectSink{out: new([]LengthData)})
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("want ErrBadConfig, got %v", err)
	}
}
