package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/seriesmining/valmod/internal/profile"
)

// fastSeries builds the adversarial fast-mode workload: a random walk with
// a planted repeated motif (a clear cross-length best pair), and a constant
// segment (σ = 0 windows through the carry and survivor machinery).
func fastSeries(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := randWalk(rng, n)
	copy(x[n/2:n/2+n/10], x[n/8:n/8+n/10])
	for i := 3 * n / 4; i < 3*n/4+n/24 && i < n; i++ {
		x[i] = 5
	}
	return x
}

// bestOf returns the run's globally best pair under the length-normalized
// ranking (the cross-length winner the coarse-to-fine plan must preserve).
func bestOf(res *Result) profile.MotifPair {
	best := profile.MotifPair{Dist: math.Inf(1)}
	bn := math.Inf(1)
	for _, lr := range res.PerLength {
		for _, p := range lr.Pairs {
			if nd := p.NormDist(); nd < bn {
				bn, best = nd, p
			}
		}
	}
	return best
}

func runCfg(t *testing.T, x []float64, cfg Config) *Result {
	t.Helper()
	res, err := Run(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// assertTopAgree checks the two exactness anchors the strict coarse-to-fine
// modes certify: the globally best pair and the top-1 discord, identical
// offsets/lengths and distances within floating tolerance (the plans take
// different arithmetic paths).
func assertTopAgree(t *testing.T, tag string, got, want *Result) {
	t.Helper()
	gb, wb := bestOf(got), bestOf(want)
	if gb.A != wb.A || gb.B != wb.B || gb.M != wb.M {
		t.Fatalf("%s: best pair (%d,%d,len=%d) != reference (%d,%d,len=%d)",
			tag, gb.A, gb.B, gb.M, wb.A, wb.B, wb.M)
	}
	if math.Abs(gb.Dist-wb.Dist) > 1e-9*(1+wb.Dist) {
		t.Fatalf("%s: best pair dist %g != reference %g", tag, gb.Dist, wb.Dist)
	}
	if len(want.Discords) == 0 || len(got.Discords) == 0 {
		t.Fatalf("%s: missing discords (got %d, want %d)", tag, len(got.Discords), len(want.Discords))
	}
	gd, wd := got.Discords[0], want.Discords[0]
	if gd.I != wd.I || gd.L != wd.L {
		t.Fatalf("%s: top discord (%d,len=%d) != reference (%d,len=%d)", tag, gd.I, gd.L, wd.I, wd.L)
	}
	if math.Abs(gd.Dist-wd.Dist) > 1e-9*(1+wd.Dist) {
		t.Fatalf("%s: top discord dist %g != reference %g", tag, gd.Dist, wd.Dist)
	}
}

func TestLengthSkipMatchesExhaustive(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		x := fastSeries(2000, seed)
		base := Config{LMin: 24, LMax: 43, TopK: 3, Discords: 3, Workers: 1}
		want := runCfg(t, x, base)
		for _, w := range []int{1, 2, 4} {
			cfg := base
			cfg.Workers = w
			cfg.LengthSkip = true
			got := runCfg(t, x, cfg)
			assertTopAgree(t, "skip", got, want)
			p := got.Plan
			if p.RecomputeLengths != 1 {
				t.Fatalf("w=%d: RecomputeLengths = %d, want 1 (the ℓmin seed)", w, p.RecomputeLengths)
			}
			if p.LBSkippedLengths+p.PrunedLengths != 19 {
				t.Fatalf("w=%d: LBSkipped+Pruned = %d+%d, want 19 unscanned lengths",
					w, p.LBSkippedLengths, p.PrunedLengths)
			}
			if p.StrideScanned != 0 || p.RefinedLengths != 0 {
				t.Fatalf("w=%d: stride counters %d/%d set on a pure skip run",
					w, p.StrideScanned, p.RefinedLengths)
			}
		}
	}
}

func TestStrideStrictMatchesExhaustive(t *testing.T) {
	x := fastSeries(2000, 3)
	base := Config{LMin: 24, LMax: 43, TopK: 3, Discords: 3, Workers: 1}
	want := runCfg(t, x, base)
	for _, w := range []int{1, 2, 4} {
		cfg := base
		cfg.Workers = w
		cfg.LengthStride = 3
		cfg.Strict = true
		got := runCfg(t, x, cfg)
		assertTopAgree(t, "stride-strict", got, want)
		p := got.Plan
		if p.StrideScanned != 7 { // lengths 24,27,...,42
			t.Fatalf("w=%d: StrideScanned = %d, want 7", w, p.StrideScanned)
		}
		if got := p.LBSkippedLengths + p.PrunedLengths + p.StrideScanned + p.RefinedLengths; got != 20 {
			t.Fatalf("w=%d: plan counters cover %d lengths, want 20", w, got)
		}
	}
}

// TestStrideNonStrictTopDiscordExact: without Strict the per-length pairs at
// carried lengths are best-effort, but the top-1 discord stays exact — the
// global argmax anchor's carried upper bound clears every pool threshold, so
// it is always recomputed exactly and wins the final ranking.
func TestStrideNonStrictTopDiscordExact(t *testing.T) {
	x := fastSeries(2000, 4)
	base := Config{LMin: 24, LMax: 43, TopK: 3, Discords: 3, Workers: 1}
	want := runCfg(t, x, base)
	for _, stride := range []int{4, 20} {
		cfg := base
		cfg.LengthStride = stride
		got := runCfg(t, x, cfg)
		if len(got.Discords) == 0 {
			t.Fatalf("stride=%d: no discords", stride)
		}
		gd, wd := got.Discords[0], want.Discords[0]
		if gd.I != wd.I || gd.L != wd.L {
			t.Fatalf("stride=%d: top discord (%d,len=%d) != exhaustive (%d,len=%d)",
				stride, gd.I, gd.L, wd.I, wd.L)
		}
		if math.Abs(gd.Dist-wd.Dist) > 1e-9*(1+wd.Dist) {
			t.Fatalf("stride=%d: top discord dist %g != exhaustive %g", stride, gd.Dist, wd.Dist)
		}
		if len(got.PerLength) != 20 {
			t.Fatalf("stride=%d: %d per-length records, want 20", stride, len(got.PerLength))
		}
	}
}

// TestFastModeWorkerBitIdentity: within one coarse-to-fine mode the output
// is bit-identical at every worker count (fixed grids plus per-anchor slot
// writes in the survivor recompute).
func TestFastModeWorkerBitIdentity(t *testing.T) {
	x := fastSeries(1600, 5)
	for _, mode := range []struct {
		name string
		mut  func(*Config)
	}{
		{"skip", func(c *Config) { c.LengthSkip = true }},
		{"stride", func(c *Config) { c.LengthStride = 4 }},
		{"stride-strict", func(c *Config) { c.LengthStride = 4; c.Strict = true }},
	} {
		var ref *Result
		for _, w := range []int{1, 3} {
			cfg := Config{LMin: 20, LMax: 39, TopK: 3, Discords: 3, Workers: w}
			mode.mut(&cfg)
			res := runCfg(t, x, cfg)
			if ref == nil {
				ref = res
				continue
			}
			if len(res.PerLength) != len(ref.PerLength) {
				t.Fatalf("%s: length count differs across workers", mode.name)
			}
			for li := range ref.PerLength {
				a, b := ref.PerLength[li], res.PerLength[li]
				if len(a.Pairs) != len(b.Pairs) {
					t.Fatalf("%s l=%d: pair count %d != %d", mode.name, a.M, len(b.Pairs), len(a.Pairs))
				}
				for pi := range a.Pairs {
					pa, pb := a.Pairs[pi], b.Pairs[pi]
					if pa.A != pb.A || pa.B != pb.B || math.Float64bits(pa.Dist) != math.Float64bits(pb.Dist) {
						t.Fatalf("%s l=%d pair %d: %v != %v", mode.name, a.M, pi, pb, pa)
					}
				}
			}
			if len(res.Discords) != len(ref.Discords) {
				t.Fatalf("%s: discord count differs across workers", mode.name)
			}
			for di := range ref.Discords {
				da, db := ref.Discords[di], res.Discords[di]
				if da.I != db.I || da.L != db.L || math.Float64bits(da.Dist) != math.Float64bits(db.Dist) {
					t.Fatalf("%s discord %d: %v != %v", mode.name, di, db, da)
				}
			}
		}
	}
}

// TestFastModeProgress: phase 1 emits exactly one tick per length with Done
// running 1..Total — the SSE progress contract — no matter how many lengths
// the plan skipped, and refine adds no extra ticks.
func TestFastModeProgress(t *testing.T) {
	x := fastSeries(1200, 6)
	for _, mode := range []struct {
		name string
		mut  func(*Config)
	}{
		{"skip", func(c *Config) { c.LengthSkip = true }},
		{"stride", func(c *Config) { c.LengthStride = 5 }},
	} {
		var dones []int
		total := 0
		cfg := Config{LMin: 16, LMax: 35, TopK: 2, Discords: 2, Workers: 2}
		mode.mut(&cfg)
		cfg.OnLength = func(p Progress) {
			dones = append(dones, p.Done)
			total = p.Total
		}
		runCfg(t, x, cfg)
		if total != 20 || len(dones) != 20 {
			t.Fatalf("%s: %d ticks with Total=%d, want 20/20", mode.name, len(dones), total)
		}
		for i, d := range dones {
			if d != i+1 {
				t.Fatalf("%s: tick %d has Done=%d, want %d", mode.name, i, d, i+1)
			}
		}
	}
}

// TestCarry32CloseToFloat64: the float32 dot-carry changes only trailing
// digits — the top discord anchor survives (its exact recompute runs in
// float64 either way) and distances stay within the documented tolerance.
func TestCarry32CloseToFloat64(t *testing.T) {
	x := fastSeries(2000, 7)
	base := Config{LMin: 24, LMax: 43, TopK: 3, Discords: 3, Workers: 1, LengthStride: 4}
	want := runCfg(t, x, base)
	cfg := base
	cfg.Carry32 = true
	got := runCfg(t, x, cfg)
	gd, wd := got.Discords[0], want.Discords[0]
	if gd.I != wd.I || gd.L != wd.L {
		t.Fatalf("carry32: top discord (%d,len=%d) != float64 (%d,len=%d)", gd.I, gd.L, wd.I, wd.L)
	}
	if math.Abs(gd.Dist-wd.Dist) > 1e-5*(1+wd.Dist) {
		t.Fatalf("carry32: top discord dist %g vs float64 %g", gd.Dist, wd.Dist)
	}
	gb, wb := bestOf(got), bestOf(want)
	if math.Abs(gb.NormDist()-wb.NormDist()) > 1e-4*(1+wb.NormDist()) {
		t.Fatalf("carry32: best pair norm dist %g vs float64 %g", gb.NormDist(), wb.NormDist())
	}
}

// TestFastModeDeclines: configurations outside the fast plan's contract —
// ablated machinery, pairs-only runs, an ℓmin admitting no pair — fall back
// to the legacy loop (no fast-mode counters) with unchanged output.
func TestFastModeDeclines(t *testing.T) {
	x := fastSeries(900, 8)
	// Ablations decline.
	for _, mut := range []func(*Config){
		func(c *Config) { c.DisablePruning = true },
		func(c *Config) { c.DisableIncremental = true },
	} {
		cfg := Config{LMin: 16, LMax: 25, TopK: 2, Discords: 2, Workers: 1, LengthSkip: true}
		mut(&cfg)
		ref := cfg
		ref.LengthSkip = false
		got, want := runCfg(t, x, cfg), runCfg(t, x, ref)
		if got.Plan.LBSkippedLengths != 0 || got.Plan.StrideScanned != 0 {
			t.Fatalf("ablated run took the fast plan: %+v", got.Plan)
		}
		assertTopAgree(t, "ablated", got, want)
	}
	// Pairs-only runs decline (no discord sink to prune for).
	cfg := Config{LMin: 16, LMax: 25, TopK: 2, Workers: 1, LengthSkip: true}
	if got := runCfg(t, x, cfg); got.Plan.LBSkippedLengths != 0 {
		t.Fatalf("pairs-only run took the fast plan: %+v", got.Plan)
	}
	// A range whose ℓmin admits no non-trivial pair declines.
	short := x[:20]
	tiny := Config{LMin: 17, LMax: 18, TopK: 1, Discords: 1, Workers: 1, LengthSkip: true}
	got, err := Run(short, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if got.Plan.LBSkippedLengths != 0 {
		t.Fatalf("degenerate-range run took the fast plan: %+v", got.Plan)
	}
}

// TestLengthSkipDegenerateHeavy runs the strict skip plan over a series
// dominated by constant segments, where most windows are degenerate at the
// shorter lengths — the σ = 0 conventions must flow through the candidate
// and survivor machinery unchanged.
func TestLengthSkipDegenerateHeavy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := randWalk(rng, 1200)
	for i := 100; i < 400; i++ {
		x[i] = 1.5
	}
	for i := 700; i < 1000; i++ {
		x[i] = -2.5
	}
	base := Config{LMin: 12, LMax: 27, TopK: 2, Discords: 3, Workers: 2}
	want := runCfg(t, x, base)
	cfg := base
	cfg.LengthSkip = true
	got := runCfg(t, x, cfg)
	assertTopAgree(t, "degenerate", got, want)
}
