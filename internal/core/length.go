package core

import (
	"math"
	"sync"
	"sync/atomic"

	"github.com/seriesmining/valmod/internal/fft"
	"github.com/seriesmining/valmod/internal/kernels"
	"github.com/seriesmining/valmod/internal/lb"
	"github.com/seriesmining/valmod/internal/profile"
	"github.com/seriesmining/valmod/internal/series"
)

// hotRowBudgetBytes bounds the memory the hot-row cache may hold.
const hotRowBudgetBytes = 64 << 20

// advanceShardRows is the minimum anchors-per-worker below which the
// advance→certify pass stays serial (goroutine handoff would cost more
// than the work).
const advanceShardRows = 256

// processLengthFull resolves length l with the from-scratch per-length
// profile pass (the STOMP row scan on the seed's fixed block grid) and
// returns both the top-k pairs and the full profile. It is the
// DisableIncremental variant of the FullProfile plan (the default is
// processLengthIncremental) and the pass the planner uses when a
// whole-profile length doubles as the pruned machinery's seed: the row
// scan reseeds every anchor's partial profile, which the diagonal pass
// does not.
func (r *run) processLengthFull(l int) (LengthResult, *profile.MatrixProfile, error) {
	s := len(r.t) - l + 1
	excl := profile.ExclusionZone(l, r.cfg.ExclusionFactor)
	lr := LengthResult{M: l}

	if s <= excl {
		// No non-trivial pair (hence no finite NN distance) can exist.
		return lr, nil, nil
	}
	mp, err := r.fullRecompute(l)
	if err != nil {
		return lr, nil, err
	}
	lr.Pairs = mp.TopKPairsInto(r.cfg.TopK, &r.topk)
	lr.Stats.FullRecompute = true
	return lr, mp, nil
}

// processLength resolves length l exactly, using pruning where possible:
// the data-parallel advance→certify pass over anchor shards, then the
// serial recompute-to-fixpoint over the (few) uncertified stragglers.
// The returned profile is non-nil only when the fixpoint fell back to a
// whole-profile recompute (so callers that also want discords can reuse
// the pass instead of paying a second one); on the pruned path it is nil
// and r.lmp holds the certified-or-upper-bound candidate profile.
func (r *run) processLength(l int) (LengthResult, *profile.MatrixProfile, error) {
	n := len(r.t)
	s := n - l + 1
	excl := profile.ExclusionZone(l, r.cfg.ExclusionFactor)
	lr := LengthResult{M: l}

	if s <= excl {
		// No non-trivial pair can exist at this length.
		return lr, nil, nil
	}

	r.momentsAt(l)
	r.advanceAll(l, excl, s)

	// Assemble the candidate profile. Certified anchors contribute their
	// exact profile value; uncertified anchors contribute minDist — a true
	// pair distance (upper bound on their profile value), which sharpens τ
	// and provably never survives into the reported top-k: a chosen
	// uncertified pair would have minDist ≤ τ, hence maxLB < τ, putting
	// its anchor into the recompute set below. lmp is run-owned scratch:
	// it never leaves processLength, so recycling it across lengths is
	// invisible outside (and makes the steady state allocation-free).
	lmp := &r.lmp
	lmp.Reset(l, excl, s)
	certified := 0
	for i := 0; i < s; i++ {
		if r.indexes[i] >= 0 {
			lmp.Dist[i] = r.dists[i]
			lmp.Index[i] = r.indexes[i]
		}
		if r.cert[i] {
			certified++
		}
	}
	lr.Stats.Certified = certified

	// Recompute-to-fixpoint: extraction with pair de-duplication is not
	// monotone in its candidate set (a newly recomputed anchor can block
	// two others and *raise* the k-th best distance τ), so one recompute
	// pass is not enough — iterate until no non-certified anchor's maxLB
	// falls at or below the current τ. Each round certifies at least one
	// new anchor, so the loop terminates.
	recomputed := 0
	for {
		if err := r.ctx.Err(); err != nil {
			return lr, nil, err
		}
		pairs := lmp.TopKPairsInto(r.cfg.TopK, &r.topk)
		// τ is the certification threshold: with a full top-k in hand, the
		// k-th best distance; otherwise +Inf (anything could still improve
		// the set).
		tau := math.Inf(1)
		if len(pairs) == r.cfg.TopK {
			tau = pairs[len(pairs)-1].Dist
		}
		need := r.need[:0]
		for i := 0; i < s; i++ {
			if !r.cert[i] && r.maxLBs[i] <= tau {
				need = append(need, i)
			}
		}
		r.need = need
		if len(need) == 0 {
			lr.Pairs = pairs
			lr.Stats.Recomputed = recomputed
			return lr, nil, nil
		}
		if float64(recomputed+len(need)) >= r.cfg.RecomputeFraction*float64(s) {
			mp, err := r.fullRecompute(l)
			if err != nil {
				return lr, nil, err
			}
			lr.Pairs = mp.TopKPairsInto(r.cfg.TopK, &r.topk)
			lr.Stats.Recomputed = recomputed
			lr.Stats.FullRecompute = true
			return lr, mp, nil
		}
		r.recomputeBatch(need, l, excl, s, lmp)
		recomputed += len(need)
	}
}

// recomputeBatch resolves the anchors in need (ascending) exactly at
// length l. Neighboring anchors fail certification together (their windows
// overlap), so contiguous runs are recomputed with one FFT + O(s) row
// recurrences and reseeded; isolated hard anchors are resolved two per FFT
// round trip via the packed correlator and their rows join the hot-row
// cache (one FFT now, O(s) per length afterwards). The jobs — one per run,
// one per anchor pair — are fixed by the need list alone and touch
// disjoint anchors, so they are distributed across Workers goroutines with
// bit-identical results; only the hot-cache retention stays serial, in
// need order, so the cache contents are deterministic too.
// recSpan is one contiguous recompute run [lo, lo+count).
type recSpan struct{ lo, count int }

func (r *run) recomputeBatch(need []int, l, excl, s int, lmp *profile.MatrixProfile) {
	const runReseedMin = 8
	runs := r.runs[:0]
	hotPend := r.hotPend[:0]
	for start := 0; start < len(need); {
		end := start + 1
		for end < len(need) && need[end] == need[end-1]+1 {
			end++
		}
		if end-start >= runReseedMin {
			runs = append(runs, recSpan{need[start], end - start})
		} else {
			hotPend = append(hotPend, need[start:end]...)
		}
		for _, i := range need[start:end] {
			r.cert[i] = true // exact now at this length
		}
		start = end
	}

	r.runs, r.hotPend = runs, hotPend

	nJobs := len(runs) + (len(hotPend)+1)/2
	if cap(r.hotRows) < len(hotPend) {
		r.hotRows = make([][]float64, len(hotPend))
	}
	hotRows := r.hotRows[:len(hotPend)]
	runJob := func(k int, corr *fft.Correlator, rowBuf []float64) {
		if k < len(runs) {
			r.processRunWith(runs[k].lo, runs[k].count, l, excl, s, lmp, corr, rowBuf)
			return
		}
		x := (k - len(runs)) * 2
		if x+1 < len(hotPend) {
			i1, i2 := hotPend[x], hotPend[x+1]
			row1, row2 := corr.DotsPair(r.t[i1:i1+l], r.t[i2:i2+l],
				r.eng.getRow(s), r.eng.getRow(s))
			r.scanRow(i1, l, excl, s, row1, lmp)
			r.scanRow(i2, l, excl, s, row2, lmp)
			hotRows[x], hotRows[x+1] = row1, row2
		} else {
			i := hotPend[x]
			row := corr.Dots(r.t[i:i+l], r.eng.getRow(s))
			r.scanRow(i, l, excl, s, row, lmp)
			hotRows[x] = row
		}
	}

	workers := r.workers
	if workers > nJobs {
		workers = nJobs
	}
	if workers <= 1 {
		for k := 0; k < nJobs; k++ {
			runJob(k, r.corr, r.rowQT[:s])
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				corr := r.corr.Clone()
				defer corr.Release()
				rowBuf := r.eng.getRow(s)
				defer r.eng.putRow(rowBuf)
				for {
					k := int(next.Add(1)) - 1
					if k >= nJobs {
						return
					}
					runJob(k, corr, rowBuf)
				}
			}()
		}
		wg.Wait()
	}

	// Hot-cache retention: serial, in need order. Every recomputed row is
	// either retained by the store (and returned to the pool when the run
	// drains the hot cache) or returned here — no third path, so the
	// engine's get/put balance stays exact.
	for x, i := range hotPend {
		if !r.store.MakeHot(i, hotRows[x], l) {
			r.eng.putRow(hotRows[x])
		}
		hotRows[x] = nil // no stale row outlives the batch
	}
}

// advanceAll runs the advance→certify pass over every anchor, partitioned
// into shards across Workers goroutines when the length is big enough.
// Each anchor reads shared immutable state (series, moments, stats) and
// writes only its own anchor state and its own slots of the per-anchor
// scratch arrays, so any shard schedule computes bit-identical results.
func (r *run) advanceAll(l, excl, s int) {
	workers := r.workers
	if workers > s/advanceShardRows {
		workers = s / advanceShardRows
	}
	if workers <= 1 {
		r.advanceShard(0, s, l, excl, s)
		r.entriesAt = l
		return
	}
	// More shards than workers evens out load skew (hot anchors cluster);
	// the shard grid is fixed by s alone, assignment order is irrelevant.
	shards := r.store.ShardsInto(s, workers*4, r.shards)
	r.shards = shards
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(shards) {
					return
				}
				r.advanceShard(shards[k].Lo, shards[k].Hi, l, excl, s)
			}
		}()
	}
	wg.Wait()
	r.entriesAt = l
}

// advanceShard advances anchors [lo, hi) to length l: hot anchors resolve
// exactly from their cached row; the rest advance their retained entries —
// one fused multiply-add per intervening length, so entries catch up
// across lengths the planner resolved incrementally or skipped — and
// compare their best exact distance against the lower bound covering
// every unretained candidate (certification).
func (r *run) advanceShard(lo, hi, l, excl, s int) {
	fl := float64(l)
	from := r.entriesAt + 1 // entries currently hold QT at length entriesAt
	for i := lo; i < hi; i++ {
		a := r.store.At(i)
		r.cert[i] = false
		r.dists[i] = math.Inf(1)
		r.indexes[i] = -1

		// Hot anchors resolve exactly with one advance-and-scan pass.
		if row, cur, ok := r.store.HotRow(i); ok {
			r.advanceAndScanHot(i, l, excl, s, row, cur)
			continue
		}

		muA, sdA := r.means[i], r.stds[i]
		switch {
		case a.Degenerate:
			// Constant anchor at seed time: no bound exists; always
			// resolved by recompute when within τ.
			r.maxLBs[i] = 0
		case a.NextQ2 < 0:
			// Every candidate is retained: nothing unseen to bound.
			r.maxLBs[i] = math.Inf(1)
		default:
			terms := lb.NewAnchorTerms(r.st, i, int(a.Base), l-int(a.Base))
			r.maxLBs[i] = terms.Bound(math.Sqrt(a.NextQ2))
		}
		if a.Degenerate {
			continue
		}

		minDist := math.Inf(1)
		minIdx := -1
		for e := range a.Entries {
			ent := &a.Entries[e]
			j := int(ent.J)
			if j >= s {
				continue // candidate no longer long enough
			}
			// All pending length steps in one fused pass (the per-length
			// lb.Entry.Advance loop, carried through every step at once).
			ent.QT = kernels.AdvanceDot(ent.QT, r.t, i, j, from-1, l)
			if j > i-excl && j < i+excl {
				continue // grown exclusion zone swallowed it
			}
			d := series.DistFromDot(ent.QT, fl, muA, sdA, r.means[j], r.stds[j])
			if d < minDist {
				minDist, minIdx = d, j
			}
		}
		// Record the best retained pair unconditionally: it is a true
		// distance either way, exact iff certified.
		r.dists[i] = minDist
		r.indexes[i] = minIdx
		if minDist <= r.maxLBs[i] {
			r.cert[i] = true
		}
	}
}

// advanceAndScanHot advances anchor i's cached dot-product row from length
// cur to length l (every pending length step carried through each cell in
// one fused kernels.ExtendRow pass) and scans it for the exact profile
// value — certification without FFT work.
func (r *run) advanceAndScanHot(i, l, excl, s int, row []float64, cur int) {
	fl := float64(l)
	kernels.ExtendRow(row, r.t, i, cur, l)
	r.store.SetHotLen(i, l)

	means, stds, invs := r.means, r.stds, r.invStds
	muA, invA := means[i], invs[i]
	if invA == 0 {
		best, bestJ := math.Inf(1), -1
		for j := 0; j < s; j++ {
			if j > i-excl && j < i+excl {
				continue
			}
			d := series.DistFromDot(row[j], fl, muA, 0, means[j], stds[j])
			if d < best {
				best, bestJ = d, j
			}
		}
		r.dists[i], r.indexes[i], r.cert[i] = best, bestJ, true
		return
	}
	e1, j2 := exclSplit(i, excl, s)
	bestCorr, bestJ := kernels.ArgmaxCorr(row, means, invs, e1, j2, s, 1/fl, muA, invA, math.Inf(-1), -1)
	if bestJ >= 0 {
		if bestCorr > 1 {
			bestCorr = 1
		} else if bestCorr < -1 {
			bestCorr = -1
		}
		r.dists[i] = math.Sqrt(2 * fl * (1 - bestCorr))
		r.indexes[i] = bestJ
	}
	r.cert[i] = true
}

// fullRecompute runs the STOMP row scan at length l, reseeding every
// anchor, and returns the exact matrix profile.
func (r *run) fullRecompute(l int) (*profile.MatrixProfile, error) {
	return r.seedAll(l)
}
