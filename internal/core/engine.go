package core

import (
	"context"
	"runtime"
	"sync"

	"github.com/seriesmining/valmod/internal/core/anchors"
	"github.com/seriesmining/valmod/internal/fft"
	"github.com/seriesmining/valmod/internal/series"
)

// Engine is a reusable VALMOD pipeline. It owns the pooled scratch rows
// (the MASS/STOMP dot-product row buffers of the recompute paths and the
// seed workers; the FFT correlator scratch is pooled inside internal/fft)
// so repeated runs stop re-allocating. An Engine is safe for concurrent
// Run calls; per-run state lives in the run struct.
type Engine struct {
	rowPool sync.Pool // stores *[]float64, capacity re-checked on Get
}

// NewEngine returns an Engine with empty pools.
func NewEngine() *Engine { return &Engine{} }

// defaultEngine backs the package-level Run/RunContext helpers so one-shot
// callers still share pooled scratch process-wide.
var defaultEngine = NewEngine()

// Run executes VALMOD over t and returns the exact per-length top-k motif
// pairs and the VALMAP.
func Run(t []float64, cfg Config) (*Result, error) {
	return defaultEngine.Run(context.Background(), t, cfg)
}

// RunContext is Run with cooperative cancellation, checked between lengths,
// between seed/full-recompute blocks, and between recompute rounds (the
// granularity wall-clock budgets and a serving layer's job cancellation
// need). On cancellation it returns ctx.Err().
func RunContext(ctx context.Context, t []float64, cfg Config) (*Result, error) {
	return defaultEngine.Run(ctx, t, cfg)
}

func (e *Engine) getRow(n int) []float64 {
	if v := e.rowPool.Get(); v != nil {
		if row := *(v.(*[]float64)); cap(row) >= n {
			return row[:n]
		}
	}
	return make([]float64, n)
}

func (e *Engine) putRow(row []float64) {
	e.rowPool.Put(&row)
}

// run carries the mutable state of one VALMOD execution.
type run struct {
	eng     *Engine
	ctx     context.Context
	t       []float64
	st      *series.Stats
	cfg     Config
	sMin    int
	workers int
	store   *anchors.Store

	// scratch per length
	dists   []float64 // best retained pair distance per anchor
	indexes []int
	maxLBs  []float64
	cert    []bool

	// corr amortizes the series-side FFT across every recompute query.
	corr *fft.Correlator

	// profileOnly marks a FullProfile-plan run: every length is resolved
	// by the exact per-length scan, the advance→certify machinery never
	// runs, so the row scans skip the partial-profile reseed bookkeeping
	// (the top-p heap and bound terms exist only to feed that machinery).
	profileOnly bool

	// cached sliding moments of the current working length; invStds[j] is
	// 1/σ_j (0 for degenerate windows) so the hot loops run division-free
	momentsL             int
	means, stds, invStds []float64
	rowQT                []float64 // scratch dot-product row for run scans
}

// momentsAt fills the cached sliding mean/σ/1÷σ arrays for length l (O(s)
// via the cumulative sums, shared by every anchor at that length).
func (r *run) momentsAt(l int) {
	if r.momentsL == l {
		return
	}
	s := len(r.t) - l + 1
	if cap(r.means) < s {
		r.means = make([]float64, s)
		r.stds = make([]float64, s)
		r.invStds = make([]float64, s)
	}
	r.means = r.means[:s]
	r.stds = r.stds[:s]
	r.invStds = r.invStds[:s]
	for i := 0; i < s; i++ {
		mu, sd := r.st.MeanStd(i, l)
		r.means[i], r.stds[i] = mu, sd
		if sd > 0 {
			r.invStds[i] = 1 / sd
		} else {
			r.invStds[i] = 0
		}
	}
	r.momentsL = l
}

// Run executes one VALMOD discovery over t through the built-in sink
// pipeline: the per-length top-k pairs, the VALMAP, and — when
// cfg.Discords is positive — exact variable-length discords.
func (e *Engine) Run(ctx context.Context, t []float64, cfg Config) (*Result, error) {
	cfg.Fill()
	if err := cfg.validate(len(t)); err != nil {
		return nil, err
	}
	pairs := &pairsSink{}
	vms, err := newValmapSink(cfg.LMin, cfg.LMax, len(t)-cfg.LMin+1)
	if err != nil {
		return nil, err
	}
	sinks := []Sink{pairs, vms}
	var ds *discordSink
	if cfg.Discords > 0 {
		ds = newDiscordSink(cfg.Discords, cfg.ExclusionFactor)
		sinks = append(sinks, ds)
	}
	if err := e.RunSinks(ctx, t, cfg, sinks...); err != nil {
		return nil, err
	}
	res := &Result{
		N:         len(t),
		Cfg:       cfg,
		MPMin:     pairs.mpMin,
		PerLength: pairs.perLength,
		VMap:      vms.vm,
	}
	if ds != nil {
		res.Discords = ds.Discords()
	}
	return res, nil
}

// RunSinks executes the VALMOD length loop and streams each completed
// length into the registered sinks. The per-length work is planned from
// the union of the sink requirements: with only TopKPairs sinks the
// pruned pipeline runs (seed ℓmin with a block-parallel STOMP scan, then
// advance→certify across anchor shards and recompute the uncertified
// stragglers to a fixpoint); one FullProfile sink — or
// cfg.DisablePruning — switches every length to the exact STOMP-style
// per-length pass on the same fixed block grid, so either plan is
// bit-identical at any worker count. Sinks are consumed in registration
// order on this goroutine; progress is emitted after every completed
// length (sinks included) when cfg.OnLength is set.
func (e *Engine) RunSinks(ctx context.Context, t []float64, cfg Config, sinks ...Sink) error {
	cfg.Fill()
	if err := cfg.validate(len(t)); err != nil {
		return err
	}
	sMin := len(t) - cfg.LMin + 1
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	r := &run{
		eng:     e,
		ctx:     ctx,
		t:       t,
		st:      series.NewStats(t),
		cfg:     cfg,
		sMin:    sMin,
		workers: workers,
		store:   anchors.NewStore(sMin, hotRowBudgetBytes),
		dists:   make([]float64, sMin),
		indexes: make([]int, sMin),
		maxLBs:  make([]float64, sMin),
		cert:    make([]bool, sMin),
		corr:    fft.NewCorrelator(t, cfg.LMax),
	}
	defer r.corr.Release()

	fullEveryLength := cfg.DisablePruning || planRequirement(sinks) == FullProfile
	r.profileOnly = fullEveryLength
	total := cfg.LMax - cfg.LMin + 1
	dispatch := func(ld LengthData, done int) {
		for _, s := range sinks {
			s.Consume(ld)
		}
		if cfg.OnLength != nil {
			cfg.OnLength(Progress{Done: done, Total: total, Result: ld.Result})
		}
	}

	// Phase 1: exact matrix profile at ℓmin + initial partial profiles.
	// The ℓmin profile is always computed in full, so it is delivered to
	// the sinks on every plan.
	mpMin, err := r.seedAll(cfg.LMin)
	if err != nil {
		return err
	}
	first := LengthResult{M: cfg.LMin, Pairs: mpMin.TopKPairs(cfg.TopK)}
	first.Stats.FullRecompute = true
	dispatch(LengthData{L: cfg.LMin, Result: first, Profile: mpMin}, 1)

	// Phase 2: longer lengths, planned per the sink requirements.
	for l := cfg.LMin + 1; l <= cfg.LMax; l++ {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		var ld LengthData
		if fullEveryLength {
			lr, mp, err := r.processLengthFull(l)
			if err != nil {
				return err
			}
			ld = LengthData{L: l, Result: lr, Profile: mp}
		} else {
			lr, err := r.processLength(l)
			if err != nil {
				return err
			}
			ld = LengthData{L: l, Result: lr}
		}
		dispatch(ld, l-cfg.LMin+1)
	}
	return nil
}
