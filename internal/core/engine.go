package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/seriesmining/valmod/internal/core/anchors"
	"github.com/seriesmining/valmod/internal/faultinject"
	"github.com/seriesmining/valmod/internal/fft"
	"github.com/seriesmining/valmod/internal/profile"
	"github.com/seriesmining/valmod/internal/series"
)

// Engine is a reusable VALMOD pipeline. It owns the pooled scratch rows
// (the MASS/STOMP dot-product row buffers of the recompute paths and the
// seed workers; the FFT correlator scratch is pooled inside internal/fft)
// so repeated runs stop re-allocating. An Engine is safe for concurrent
// Run calls; per-run state lives in the run struct.
type Engine struct {
	rowPool sync.Pool // stores *[]float64, capacity re-checked on Get

	// rowGets/rowPuts count getRow/putRow calls. Every acquired row must
	// be returned exactly once (hot-cache rows included, drained at run
	// end), so after any number of completed runs the two counters are
	// equal — the invariant TestRowPoolBalanced asserts to catch row
	// leaks like the one recomputeBatch's retention path used to have.
	rowGets, rowPuts atomic.Int64
}

// NewEngine returns an Engine with empty pools.
func NewEngine() *Engine { return &Engine{} }

// rowPoolBalance returns getRow calls minus putRow calls: 0 when every
// scratch row has been returned (no run in flight).
func (e *Engine) rowPoolBalance() int64 {
	return e.rowGets.Load() - e.rowPuts.Load()
}

// defaultEngine backs the package-level Run/RunContext helpers so one-shot
// callers still share pooled scratch process-wide.
var defaultEngine = NewEngine()

// Run executes VALMOD over t and returns the exact per-length top-k motif
// pairs and the VALMAP.
func Run(t []float64, cfg Config) (*Result, error) {
	return defaultEngine.Run(context.Background(), t, cfg)
}

// RunContext is Run with cooperative cancellation, checked between lengths,
// between seed/full-recompute blocks, and between recompute rounds (the
// granularity wall-clock budgets and a serving layer's job cancellation
// need). On cancellation it returns ctx.Err().
func RunContext(ctx context.Context, t []float64, cfg Config) (*Result, error) {
	return defaultEngine.Run(ctx, t, cfg)
}

func (e *Engine) getRow(n int) []float64 {
	e.rowGets.Add(1)
	if v := e.rowPool.Get(); v != nil {
		if row := *(v.(*[]float64)); cap(row) >= n {
			return row[:n]
		}
	}
	return make([]float64, n)
}

func (e *Engine) putRow(row []float64) {
	e.rowPuts.Add(1)
	e.rowPool.Put(&row)
}

// run carries the mutable state of one VALMOD execution.
type run struct {
	eng     *Engine
	ctx     context.Context
	t       []float64
	t32     []float32 // lazy float32 series copy (Config.Carry32), see series32
	st      *series.Stats
	cfg     Config
	sMin    int
	workers int
	store   *anchors.Store

	// scratch per length
	dists   []float64 // best retained pair distance per anchor
	indexes []int
	maxLBs  []float64
	cert    []bool

	// corr amortizes the series-side FFT across every recompute query.
	corr *fft.Correlator

	// profileOnly marks a run whose plan contains no pruned length: the
	// advance→certify machinery never runs, so the row scans skip the
	// partial-profile reseed bookkeeping (the top-p heap and bound terms
	// exist only to feed that machinery).
	profileOnly bool

	// seeded reports that the pruned machinery (anchor partial profiles)
	// has been seeded by a full row scan; entriesAt is the length the
	// retained entries' dot products are currently advanced to, so the
	// advance pass can catch up across lengths the planner resolved
	// incrementally or skipped.
	seeded    bool
	entriesAt int

	// incremental cross-length profile state (see incremental.go): the
	// diagonal head row carried across FullProfile lengths plus the
	// per-worker (corr, index) accumulators of the diagonal pass.
	inc      incState
	diagCorr [][]float64
	diagIdx  [][]int32

	// planStats instruments the per-length planner for this run.
	planStats PlanStats

	// ckptOff latches after a checkpoint capture or delivery fails: the
	// run keeps computing, it just stops emitting checkpoints (resume then
	// falls back to an older checkpoint or a scratch re-run, both exact).
	ckptOff bool
	// tHash caches the series content hash across checkpoint captures.
	tHash  [32]byte
	hashed bool

	// cached sliding moments of the current working length; invStds[j] is
	// 1/σ_j (0 for degenerate windows) so the hot loops run division-free;
	// degCount counts degenerate windows at that length
	momentsL             int
	means, stds, invStds []float64
	degCount             int
	rowQT                []float64 // scratch dot-product row for run scans

	// Steady-state per-length scratch, allocated (or pooled) once per run
	// and recycled across lengths so the pruned per-length pass performs
	// zero heap allocations after the first length (asserted by
	// TestProcessLengthSteadyStateZeroAlloc):
	lmp     profile.MatrixProfile // candidate profile of the pruned pass
	topk    profile.TopKScratch   // TopKPairsInto working memory
	need    []int                 // per-round recompute set
	runs    []recSpan             // contiguous recompute runs of a batch
	hotPend []int                 // isolated hard anchors of a batch
	hotRows [][]float64           // per-batch recomputed rows awaiting retention
	degs    []int                 // degenerate offsets of fixupDegenerate
	shards  []anchors.Shard       // advance-pass shard grid
}

// momentsAt fills the cached sliding mean/σ/1÷σ arrays for length l (O(s)
// via the cumulative sums, shared by every anchor at that length).
func (r *run) momentsAt(l int) {
	if r.momentsL == l {
		return
	}
	s := len(r.t) - l + 1
	if cap(r.means) < s {
		r.means = make([]float64, s)
		r.stds = make([]float64, s)
		r.invStds = make([]float64, s)
	}
	r.means = r.means[:s]
	r.stds = r.stds[:s]
	r.invStds = r.invStds[:s]
	deg := 0
	for i := 0; i < s; i++ {
		mu, sd := r.st.MeanStd(i, l)
		r.means[i], r.stds[i] = mu, sd
		if sd > 0 {
			r.invStds[i] = 1 / sd
		} else {
			r.invStds[i] = 0
			deg++
		}
	}
	r.degCount = deg
	r.momentsL = l
}

// Run executes one VALMOD discovery over t through the built-in sink
// pipeline: the per-length top-k pairs, the VALMAP, and — when
// cfg.Discords is positive — exact variable-length discords.
func (e *Engine) Run(ctx context.Context, t []float64, cfg Config) (*Result, error) {
	cfg.Fill()
	if err := cfg.validate(len(t)); err != nil {
		return nil, err
	}
	pairs := &pairsSink{}
	vms, err := newValmapSink(cfg.LMin, cfg.LMax, len(t)-cfg.LMin+1)
	if err != nil {
		return nil, err
	}
	sinks := []Sink{pairs, vms}
	var ds *discordSink
	if cfg.Discords > 0 {
		ds = newDiscordSink(cfg.Discords, cfg.ExclusionFactor)
		sinks = append(sinks, ds)
	}
	plan, err := e.runSinks(ctx, t, cfg, sinks)
	if err != nil {
		return nil, err
	}
	res := &Result{
		N:         len(t),
		Cfg:       cfg,
		MPMin:     pairs.mpMin,
		PerLength: pairs.perLength,
		VMap:      vms.vm,
		Plan:      plan,
	}
	if ds != nil {
		res.Discords = ds.Discords()
	}
	return res, nil
}

// RunSinks executes the VALMOD length loop and streams each completed
// length into the registered sinks. Each length's work is planned from
// the sinks that want it (Requirement × LengthSelector, see
// planLengths): lengths only TopKPairs sinks want run the pruned
// pipeline (seed the first such length with a block-parallel STOMP scan,
// then advance→certify across anchor shards and recompute the
// uncertified stragglers to a fixpoint); lengths a FullProfile sink
// wants — or any wanted length under cfg.DisablePruning — run the
// incremental cross-length profile pass (or a from-scratch STOMP pass
// under cfg.DisableIncremental); lengths no sink wants are skipped. All
// passes run on fixed grids, so every plan is bit-identical at any
// worker count. Sinks are consumed in registration order on this
// goroutine, each only for the lengths it wants; progress is emitted
// after every length (skipped ones included) when cfg.OnLength is set.
func (e *Engine) RunSinks(ctx context.Context, t []float64, cfg Config, sinks ...Sink) error {
	_, err := e.runSinks(ctx, t, cfg, sinks)
	return err
}

// runSinks is RunSinks returning the per-length plan instrumentation.
func (e *Engine) runSinks(ctx context.Context, t []float64, cfg Config, sinks []Sink) (PlanStats, error) {
	return e.runSinksFrom(ctx, t, cfg, sinks, nil)
}

// runSinksFrom is runSinks optionally resuming from a decoded checkpoint:
// the run's carried state is restored before the loop and processing
// starts at the checkpoint's next plan index. resume == nil runs from
// scratch.
func (e *Engine) runSinksFrom(ctx context.Context, t []float64, cfg Config, sinks []Sink, resume *ckptPayload) (PlanStats, error) {
	cfg.Fill()
	if err := cfg.validate(len(t)); err != nil {
		return PlanStats{}, err
	}
	var cs ckptSinks
	if cfg.OnCheckpoint != nil || resume != nil {
		var ok bool
		if cs, ok = builtinSinks(sinks); !ok {
			return PlanStats{}, fmt.Errorf("%w: checkpointing requires the built-in sink pipeline", ErrBadConfig)
		}
	}
	sMin := len(t) - cfg.LMin + 1
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	r := &run{
		eng:     e,
		ctx:     ctx,
		t:       t,
		st:      series.NewStats(t),
		cfg:     cfg,
		sMin:    sMin,
		workers: workers,
		store:   anchors.NewStore(sMin, hotRowBudgetBytes),
		dists:   make([]float64, sMin),
		indexes: make([]int, sMin),
		maxLBs:  make([]float64, sMin),
		cert:    make([]bool, sMin),
		corr:    fft.NewCorrelator(t, cfg.LMax),
	}
	defer r.corr.Release()
	// The run-scan row buffer is pooled (sMin covers every length), and
	// every row the hot cache retained goes back to the pool at run end —
	// the engine's get/put balance is the row-leak invariant.
	r.rowQT = e.getRow(sMin)
	defer func() {
		e.putRow(r.rowQT)
		r.store.DrainHotRows(e.putRow)
	}()

	if fm := newFastMode(r, sinks); fm != nil {
		// The coarse-to-fine plans never emit checkpoints (their refine
		// phase revisits earlier lengths, so a length boundary is not a
		// consistent cut); a scratch re-run is the exact resume fallback.
		if resume != nil {
			return PlanStats{}, fmt.Errorf("%w: fast-mode plans (LengthSkip/LengthStride) do not support resume", ErrBadCheckpoint)
		}
		return fm.run()
	}

	plans := planLengths(cfg, sinks)
	lastPruned := -1
	for idx, p := range plans {
		if p == planPruned {
			lastPruned = idx
		}
	}
	r.profileOnly = lastPruned < 0
	total := cfg.LMax - cfg.LMin + 1
	dispatch := func(ld LengthData, done int) {
		for _, s := range sinks {
			if sinkWants(s, ld.L) {
				s.Consume(ld)
			}
		}
		if cfg.OnLength != nil {
			cfg.OnLength(Progress{Done: done, Total: total, Result: ld.Result})
		}
	}

	startIdx := 0
	if resume != nil {
		startIdx = r.restore(resume)
	}
	for idx, l := startIdx, cfg.LMin+startIdx; l <= cfg.LMax; idx, l = idx+1, l+1 {
		select {
		case <-ctx.Done():
			return r.planStats, ctx.Err()
		default:
		}
		if err := faultinject.Hit("core.length"); err != nil {
			return r.planStats, err
		}
		done := idx + 1
		switch plans[idx] {
		case planSkip:
			// No sink wants this length: no state even needs advancing —
			// the head row and the retained entries catch up lazily at
			// the next length that runs.
			r.planStats.SkippedLengths++
			if cfg.OnLength != nil {
				cfg.OnLength(Progress{Done: done, Total: total, Result: LengthResult{M: l}})
			}
		case planPruned:
			if !r.seeded {
				// First pruned length: seed the partial profiles with the
				// full row scan. The scan yields the exact profile for
				// free, so it is delivered (on the default all-pruned
				// plan this is the classic ℓmin seed).
				mp, err := r.seedAll(l)
				if err != nil {
					return r.planStats, err
				}
				r.planStats.RecomputeLengths++
				lr := LengthResult{M: l, Pairs: mp.TopKPairsInto(cfg.TopK, &r.topk)}
				lr.Stats.FullRecompute = true
				dispatch(LengthData{L: l, Result: lr, Profile: mp}, done)
				r.maybeCheckpoint(cs, done, total)
				continue
			}
			lr, _, err := r.processLength(l)
			if err != nil {
				return r.planStats, err
			}
			r.planStats.PrunedLengths++
			dispatch(LengthData{L: l, Result: lr}, done)
		default: // planFull
			var (
				lr  LengthResult
				mp  *profile.MatrixProfile
				err error
			)
			if cfg.DisableIncremental || (!r.seeded && idx < lastPruned) {
				// From-scratch row scan: either the incremental engine is
				// ablated, or pruned lengths follow and the row scan's
				// partial-profile reseed seeds them without an extra pass.
				lr, mp, err = r.processLengthFull(l)
				r.planStats.RecomputeLengths++
			} else {
				lr, mp, err = r.processLengthIncremental(l)
				r.planStats.IncrementalLengths++
			}
			if err != nil {
				return r.planStats, err
			}
			dispatch(LengthData{L: l, Result: lr, Profile: mp}, done)
		}
		r.maybeCheckpoint(cs, done, total)
	}
	return r.planStats, nil
}
