package core

import (
	"context"
	"runtime"
	"sync"

	"github.com/seriesmining/valmod/internal/core/anchors"
	"github.com/seriesmining/valmod/internal/fft"
	"github.com/seriesmining/valmod/internal/series"
	"github.com/seriesmining/valmod/internal/valmap"
)

// Engine is a reusable VALMOD pipeline. It owns the pooled scratch rows
// (the MASS/STOMP dot-product row buffers of the recompute paths and the
// seed workers; the FFT correlator scratch is pooled inside internal/fft)
// so repeated runs stop re-allocating. An Engine is safe for concurrent
// Run calls; per-run state lives in the run struct.
type Engine struct {
	rowPool sync.Pool // stores *[]float64, capacity re-checked on Get
}

// NewEngine returns an Engine with empty pools.
func NewEngine() *Engine { return &Engine{} }

// defaultEngine backs the package-level Run/RunContext helpers so one-shot
// callers still share pooled scratch process-wide.
var defaultEngine = NewEngine()

// Run executes VALMOD over t and returns the exact per-length top-k motif
// pairs and the VALMAP.
func Run(t []float64, cfg Config) (*Result, error) {
	return defaultEngine.Run(context.Background(), t, cfg)
}

// RunContext is Run with cooperative cancellation, checked between lengths,
// between seed/full-recompute blocks, and between recompute rounds (the
// granularity wall-clock budgets and a serving layer's job cancellation
// need). On cancellation it returns ctx.Err().
func RunContext(ctx context.Context, t []float64, cfg Config) (*Result, error) {
	return defaultEngine.Run(ctx, t, cfg)
}

func (e *Engine) getRow(n int) []float64 {
	if v := e.rowPool.Get(); v != nil {
		if row := *(v.(*[]float64)); cap(row) >= n {
			return row[:n]
		}
	}
	return make([]float64, n)
}

func (e *Engine) putRow(row []float64) {
	e.rowPool.Put(&row)
}

// run carries the mutable state of one VALMOD execution.
type run struct {
	eng     *Engine
	ctx     context.Context
	t       []float64
	st      *series.Stats
	cfg     Config
	sMin    int
	workers int
	store   *anchors.Store
	vmap    *valmap.VALMAP

	// scratch per length
	dists   []float64 // best retained pair distance per anchor
	indexes []int
	maxLBs  []float64
	cert    []bool

	// corr amortizes the series-side FFT across every recompute query.
	corr *fft.Correlator

	// cached sliding moments of the current working length; invStds[j] is
	// 1/σ_j (0 for degenerate windows) so the hot loops run division-free
	momentsL             int
	means, stds, invStds []float64
	rowQT                []float64 // scratch dot-product row for run scans
}

// momentsAt fills the cached sliding mean/σ/1÷σ arrays for length l (O(s)
// via the cumulative sums, shared by every anchor at that length).
func (r *run) momentsAt(l int) {
	if r.momentsL == l {
		return
	}
	s := len(r.t) - l + 1
	if cap(r.means) < s {
		r.means = make([]float64, s)
		r.stds = make([]float64, s)
		r.invStds = make([]float64, s)
	}
	r.means = r.means[:s]
	r.stds = r.stds[:s]
	r.invStds = r.invStds[:s]
	for i := 0; i < s; i++ {
		mu, sd := r.st.MeanStd(i, l)
		r.means[i], r.stds[i] = mu, sd
		if sd > 0 {
			r.invStds[i] = 1 / sd
		} else {
			r.invStds[i] = 0
		}
	}
	r.momentsL = l
}

// Run executes one VALMOD discovery over t. The pipeline: validate →
// seed ℓmin (block-parallel STOMP scan, partial profiles retained) →
// for each longer length, advance→certify across anchor shards, then
// recompute the uncertified stragglers to a fixpoint. Progress is emitted
// after every completed length when cfg.OnLength is set.
func (e *Engine) Run(ctx context.Context, t []float64, cfg Config) (*Result, error) {
	cfg.Fill()
	if err := cfg.validate(len(t)); err != nil {
		return nil, err
	}
	n := len(t)
	sMin := n - cfg.LMin + 1
	vm, err := valmap.New(cfg.LMin, cfg.LMax, sMin)
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	r := &run{
		eng:     e,
		ctx:     ctx,
		t:       t,
		st:      series.NewStats(t),
		cfg:     cfg,
		sMin:    sMin,
		workers: workers,
		store:   anchors.NewStore(sMin, hotRowBudgetBytes),
		vmap:    vm,
		dists:   make([]float64, sMin),
		indexes: make([]int, sMin),
		maxLBs:  make([]float64, sMin),
		cert:    make([]bool, sMin),
		corr:    fft.NewCorrelator(t, cfg.LMax),
	}
	defer r.corr.Release()

	res := &Result{N: n, Cfg: cfg, VMap: vm}
	total := cfg.LMax - cfg.LMin + 1
	emit := func(lr LengthResult, done int) {
		if cfg.OnLength != nil {
			cfg.OnLength(Progress{Done: done, Total: total, Result: lr})
		}
	}

	// Phase 1: exact matrix profile at ℓmin + initial partial profiles.
	mpMin, err := r.seedAll(cfg.LMin)
	if err != nil {
		return nil, err
	}
	res.MPMin = mpMin
	first := LengthResult{M: cfg.LMin, Pairs: mpMin.TopKPairs(cfg.TopK)}
	first.Stats.FullRecompute = true
	res.PerLength = append(res.PerLength, first)

	// VALMAP starts as the length-normalized ℓmin profile (flat LP).
	for i := 0; i < sMin; i++ {
		if mpMin.Index[i] >= 0 {
			vm.InitFromProfile(i, series.LengthNormalize(mpMin.Dist[i], cfg.LMin), mpMin.Index[i], cfg.LMin)
		}
	}
	vm.Seal()
	emit(first, 1)

	// Phase 2: longer lengths.
	for l := cfg.LMin + 1; l <= cfg.LMax; l++ {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
		}
		lr, err := r.processLength(l)
		if err != nil {
			return nil, err
		}
		vm.BeginLength(l)
		for _, p := range lr.Pairs {
			nd := p.NormDist()
			vm.Apply(p.A, nd, p.B, l)
			vm.Apply(p.B, nd, p.A, l)
		}
		vm.EndLength()
		res.PerLength = append(res.PerLength, lr)
		emit(lr, l-cfg.LMin+1)
	}
	return res, nil
}
