package core

import (
	"math"
	"sync"
	"sync/atomic"

	"github.com/seriesmining/valmod/internal/fft"
	"github.com/seriesmining/valmod/internal/lb"
	"github.com/seriesmining/valmod/internal/profile"
	"github.com/seriesmining/valmod/internal/series"
	"github.com/seriesmining/valmod/internal/stomp"
)

// seedBlockRows is the fixed height of the block grid the seed scan is
// partitioned on. The grid depends only on the anchor count — never on the
// worker count: each block seeds its first dot-product row with one FFT and
// streams the rest via the STOMP recurrence, so a block computes the same
// values whether blocks run serially or concurrently. Workers changes
// wall-clock time, never output.
const seedBlockRows = 512

// seedAll computes the exact matrix profile at length l and reseeds every
// anchor's partial profile with base l. Rows are independent; blocks of the
// fixed grid are handed to up to Workers goroutines, each with a cloned
// correlator and a pooled row buffer.
func (r *run) seedAll(l int) (*profile.MatrixProfile, error) {
	n := len(r.t)
	s := n - l + 1
	excl := profile.ExclusionZone(l, r.cfg.ExclusionFactor)
	mp := profile.New(l, excl, s)
	if err := stomp.ValidateLength(n, l); err != nil {
		return nil, err
	}
	r.momentsAt(l)
	nBlocks := (s + seedBlockRows - 1) / seedBlockRows
	workers := r.workers
	if workers > nBlocks {
		workers = nBlocks
	}
	if workers <= 1 {
		if cap(r.rowQT) < s {
			r.rowQT = make([]float64, s)
		}
		for b := 0; b < nBlocks; b++ {
			if err := r.ctx.Err(); err != nil {
				return nil, err
			}
			lo, hi := blockBounds(b, s)
			r.processRunWith(lo, hi-lo, l, excl, s, mp, r.corr, r.rowQT[:s])
		}
		r.markSeeded(l)
		return mp, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			corr := r.corr.Clone()
			defer corr.Release()
			row := r.eng.getRow(s)
			defer r.eng.putRow(row)
			for {
				// Bail between blocks on cancellation; the partial profile
				// is discarded with the run, so early exit cannot leak into
				// any returned result.
				if r.ctx.Err() != nil {
					return
				}
				b := int(next.Add(1)) - 1
				if b >= nBlocks {
					return
				}
				lo, hi := blockBounds(b, s)
				r.processRunWith(lo, hi-lo, l, excl, s, mp, corr, row)
			}
		}()
	}
	wg.Wait()
	if err := r.ctx.Err(); err != nil {
		return nil, err
	}
	r.markSeeded(l)
	return mp, nil
}

// markSeeded records that the full row scan just reseeded every anchor's
// partial profile at base length l (no-op on profileOnly runs, whose scans
// skip the reseed bookkeeping entirely): the pruned machinery is live and
// its retained entries hold dot products at l.
func (r *run) markSeeded(l int) {
	if r.profileOnly {
		return
	}
	r.seeded = true
	r.entriesAt = l
}

// blockBounds returns the anchor range [lo, hi) of seed block b.
func blockBounds(b, s int) (lo, hi int) {
	lo = b * seedBlockRows
	hi = lo + seedBlockRows
	if hi > s {
		hi = s
	}
	return lo, hi
}

// processRunWith resolves the contiguous anchors [i0, i0+count) exactly at
// length l: one FFT seeds the dot-product row of i0, each following row
// costs O(s) via the STOMP recurrence, and a single fused pass per row
// finds the exact profile minimum (division-free correlation compare) and
// reseeds the anchor's partial profile. It writes exact values into mp.
// The correlator and row buffer are caller-owned, enabling concurrent
// block scans; the moment cache must already be at l.
func (r *run) processRunWith(i0, count, l, excl, s int, mp *profile.MatrixProfile, corr *fft.Correlator, rowBuf []float64) {
	t := r.t
	row := corr.Dots(t[i0:i0+l], rowBuf)
	for i := i0; i < i0+count; i++ {
		if i > i0 {
			// Row recurrence, descending j so row[j-1] is still row i−1.
			tail := t[i+l-1]
			head := t[i-1]
			for j := s - 1; j >= 1; j-- {
				row[j] = row[j-1] + tail*t[j+l-1] - head*t[j-1]
			}
			row[0] = series.Dot(t[i:i+l], t[0:l])
		}
		r.scanRow(i, l, excl, s, row, mp)
	}
}

// scanRow is the fused per-row pass: exact nearest neighbor of anchor i at
// length l (outside the exclusion zone) plus the partial-profile reseed
// (top-p candidates by q̃²). The moment cache must be filled for l. Each
// anchor touches only its own state, so rows may be scanned concurrently.
// On a profileOnly run the reseed feeds nothing (the advance→certify pass
// never runs), so the row takes the lean profile-only scan instead — the
// correlation compare is the identical expression, so the profile values
// are bit-for-bit the same on either path.
func (r *run) scanRow(i, l, excl, s int, row []float64, mp *profile.MatrixProfile) {
	if r.profileOnly {
		r.scanRowProfileOnly(i, l, excl, s, row, mp)
		return
	}
	p := r.cfg.P
	means, invs := r.means, r.invStds
	fl := float64(l)
	sumA := r.st.Sum(i, l)
	muA := means[i]
	invA := invs[i]

	a := r.store.BeginReseed(i, p, l)

	// Degenerate anchor: the fused correlation math is undefined; fall back
	// to the convention-aware scalar path for this (rare) row.
	if invA == 0 {
		for j := 0; j < s; j++ {
			if j > i-excl && j < i+excl {
				continue
			}
			d := series.DistFromDot(row[j], fl, muA, 0, means[j], r.stds[j])
			mp.Update(i, d, j)
		}
		a.Degenerate = true
		return
	}

	bestCorr := math.Inf(-1)
	bestJ := -1
	heapMinQ2 := math.Inf(-1) // q̃² of the heap root once the heap is full
	bestRejQ2 := -1.0         // best q̃² among rejected/evicted candidates
	lo, hi := i-excl, i+excl  // exclusion interval (exclusive bounds)
	for j := 0; j < s; j++ {
		if j > lo && j < hi {
			continue // trivial at this and every longer length
		}
		qtj := row[j]
		q := (qtj - means[j]*sumA) * invs[j] // q̃ (0 for degenerate candidate)
		q2 := q * q
		if len(a.Entries) < p {
			a.Entries = append(a.Entries, lb.Entry{J: int32(j), QT: qtj, QTilde: q})
			if len(a.Entries) == p {
				lb.Heapify(a.Entries)
				q0 := a.Entries[0].QTilde
				heapMinQ2 = q0 * q0
			}
		} else if q2 > heapMinQ2 {
			if heapMinQ2 > bestRejQ2 {
				bestRejQ2 = heapMinQ2 // evicted root joins the unkept set
			}
			a.Entries[0] = lb.Entry{J: int32(j), QT: qtj, QTilde: q}
			lb.SiftDown(a.Entries, 0)
			q0 := a.Entries[0].QTilde
			heapMinQ2 = q0 * q0
		} else if q2 > bestRejQ2 {
			bestRejQ2 = q2
		}
		// Division-free correlation compare; invs[j]=0 (degenerate
		// candidate) yields corr 0 ⇒ distance √(2l), the convention.
		corr := (qtj/fl - muA*means[j]) * invA * invs[j]
		if corr > bestCorr {
			bestCorr, bestJ = corr, j
		}
	}
	if len(a.Entries) > 0 && len(a.Entries) < p {
		lb.Heapify(a.Entries)
	}
	a.NextQ2 = bestRejQ2
	if bestJ >= 0 {
		if bestCorr > 1 {
			bestCorr = 1
		} else if bestCorr < -1 {
			bestCorr = -1
		}
		mp.Update(i, math.Sqrt(2*fl*(1-bestCorr)), bestJ)
	}
}

// scanRowProfileOnly is scanRow minus the partial-profile bookkeeping:
// just the exact nearest neighbor of anchor i from its dot-product row.
// It must mirror scanRow's arithmetic exactly (same correlation
// expression, same degenerate fallback) so the two paths produce
// bit-identical profiles.
func (r *run) scanRowProfileOnly(i, l, excl, s int, row []float64, mp *profile.MatrixProfile) {
	means, invs := r.means, r.invStds
	fl := float64(l)
	muA := means[i]
	invA := invs[i]
	if invA == 0 {
		for j := 0; j < s; j++ {
			if j > i-excl && j < i+excl {
				continue
			}
			d := series.DistFromDot(row[j], fl, muA, 0, means[j], r.stds[j])
			mp.Update(i, d, j)
		}
		return
	}
	bestCorr := math.Inf(-1)
	bestJ := -1
	lo, hi := i-excl, i+excl
	for j := 0; j < s; j++ {
		if j > lo && j < hi {
			continue
		}
		corr := (row[j]/fl - muA*means[j]) * invA * invs[j]
		if corr > bestCorr {
			bestCorr, bestJ = corr, j
		}
	}
	if bestJ >= 0 {
		if bestCorr > 1 {
			bestCorr = 1
		} else if bestCorr < -1 {
			bestCorr = -1
		}
		mp.Update(i, math.Sqrt(2*fl*(1-bestCorr)), bestJ)
	}
}
