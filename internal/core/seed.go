package core

import (
	"math"
	"sync"
	"sync/atomic"

	"github.com/seriesmining/valmod/internal/core/anchors"
	"github.com/seriesmining/valmod/internal/fft"
	"github.com/seriesmining/valmod/internal/kernels"
	"github.com/seriesmining/valmod/internal/lb"
	"github.com/seriesmining/valmod/internal/profile"
	"github.com/seriesmining/valmod/internal/series"
	"github.com/seriesmining/valmod/internal/stomp"
)

// seedBlockRows is the fixed height of the block grid the seed scan is
// partitioned on. The grid depends only on the anchor count — never on the
// worker count: each block seeds its first dot-product row with one FFT and
// streams the rest via the STOMP recurrence, so a block computes the same
// values whether blocks run serially or concurrently. Workers changes
// wall-clock time, never output.
const seedBlockRows = 512

// seedAll computes the exact matrix profile at length l and reseeds every
// anchor's partial profile with base l. Rows are independent; blocks of the
// fixed grid are handed to up to Workers goroutines, each with a cloned
// correlator and a pooled row buffer.
func (r *run) seedAll(l int) (*profile.MatrixProfile, error) {
	n := len(r.t)
	s := n - l + 1
	excl := profile.ExclusionZone(l, r.cfg.ExclusionFactor)
	mp := profile.New(l, excl, s)
	if err := stomp.ValidateLength(n, l); err != nil {
		return nil, err
	}
	r.momentsAt(l)
	nBlocks := (s + seedBlockRows - 1) / seedBlockRows
	workers := r.workers
	if workers > nBlocks {
		workers = nBlocks
	}
	if workers <= 1 {
		for b := 0; b < nBlocks; b++ {
			if err := r.ctx.Err(); err != nil {
				return nil, err
			}
			lo, hi := blockBounds(b, s)
			r.processRunWith(lo, hi-lo, l, excl, s, mp, r.corr, r.rowQT[:s])
		}
		r.markSeeded(l)
		return mp, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			corr := r.corr.Clone()
			defer corr.Release()
			row := r.eng.getRow(s)
			defer r.eng.putRow(row)
			for {
				// Bail between blocks on cancellation; the partial profile
				// is discarded with the run, so early exit cannot leak into
				// any returned result.
				if r.ctx.Err() != nil {
					return
				}
				b := int(next.Add(1)) - 1
				if b >= nBlocks {
					return
				}
				lo, hi := blockBounds(b, s)
				r.processRunWith(lo, hi-lo, l, excl, s, mp, corr, row)
			}
		}()
	}
	wg.Wait()
	if err := r.ctx.Err(); err != nil {
		return nil, err
	}
	r.markSeeded(l)
	return mp, nil
}

// markSeeded records that the full row scan just reseeded every anchor's
// partial profile at base length l (no-op on profileOnly runs, whose scans
// skip the reseed bookkeeping entirely): the pruned machinery is live and
// its retained entries hold dot products at l.
func (r *run) markSeeded(l int) {
	if r.profileOnly {
		return
	}
	r.seeded = true
	r.entriesAt = l
}

// blockBounds returns the anchor range [lo, hi) of seed block b.
func blockBounds(b, s int) (lo, hi int) {
	lo = b * seedBlockRows
	hi = lo + seedBlockRows
	if hi > s {
		hi = s
	}
	return lo, hi
}

// processRunWith resolves the contiguous anchors [i0, i0+count) exactly at
// length l: one FFT seeds the dot-product row of i0, each following row
// costs O(s) via the STOMP recurrence (kernels.RowNext), and per row the
// kernel scans find the exact profile minimum (division-free correlation
// compare) and reseed the anchor's partial profile. It writes exact values
// into mp. The correlator and row buffer are caller-owned, enabling
// concurrent block scans; the moment cache must already be at l.
func (r *run) processRunWith(i0, count, l, excl, s int, mp *profile.MatrixProfile, corr *fft.Correlator, rowBuf []float64) {
	t := r.t
	row := corr.Dots(t[i0:i0+l], rowBuf)
	for i := i0; i < i0+count; i++ {
		if i > i0 {
			kernels.RowNext(row, t, i, l, s)
			row[0] = series.Dot(t[i:i+l], t[0:l])
		}
		r.scanRow(i, l, excl, s, row, mp)
	}
}

// exclSplit maps anchor i's exclusion interval (j excluded when
// i−excl < j < i+excl) onto the two included branch-free ranges
// [0, e1) and [j2, s) the kernels take, clipped at the series edges.
func exclSplit(i, excl, s int) (e1, j2 int) {
	e1 = i - excl + 1
	if e1 < 0 {
		e1 = 0
	}
	j2 = i + excl
	if j2 > s {
		j2 = s
	}
	return e1, j2
}

// scanRow is the per-row pass: exact nearest neighbor of anchor i at
// length l (outside the exclusion zone) plus the partial-profile reseed
// (top-p candidates by q̃²). The moment cache must be filled for l. Each
// anchor touches only its own state, so rows may be scanned concurrently.
// On a profileOnly run the reseed feeds nothing (the advance→certify pass
// never runs), so the row takes the lean profile-only scan instead — both
// paths share kernels.ArgmaxCorr, so the profile values are bit-for-bit
// the same on either.
func (r *run) scanRow(i, l, excl, s int, row []float64, mp *profile.MatrixProfile) {
	if r.profileOnly {
		r.scanRowProfileOnly(i, l, excl, s, row, mp)
		return
	}
	p := r.cfg.P
	means, invs := r.means, r.invStds
	fl := float64(l)
	sumA := r.st.Sum(i, l)
	muA := means[i]
	invA := invs[i]

	a := r.store.BeginReseed(i, p, l)

	// Degenerate anchor: the fused correlation math is undefined; fall back
	// to the convention-aware scalar path for this (rare) row.
	if invA == 0 {
		r.scanRowDegenerate(i, l, excl, s, row, mp)
		a.Degenerate = true
		return
	}

	e1, j2 := exclSplit(i, excl, s)
	st := reseedState{heapMinQ2: math.Inf(-1), bestRejQ2: -1}
	r.reseedRange(a, row, 0, e1, p, sumA, &st)
	r.reseedRange(a, row, j2, s, p, sumA, &st)
	if len(a.Entries) > 0 && len(a.Entries) < p {
		lb.Heapify(a.Entries)
	}
	a.NextQ2 = st.bestRejQ2

	bestCorr, bestJ := kernels.ArgmaxCorr(row, means, invs, e1, j2, s, 1/fl, muA, invA, math.Inf(-1), -1)
	if bestJ >= 0 {
		if bestCorr > 1 {
			bestCorr = 1
		} else if bestCorr < -1 {
			bestCorr = -1
		}
		mp.Update(i, math.Sqrt(2*fl*(1-bestCorr)), bestJ)
	}
}

// reseedState carries the top-p selection thresholds across the two
// included j-ranges of one row's reseed.
type reseedState struct {
	heapMinQ2 float64 // q̃² of the heap root once the heap is full
	bestRejQ2 float64 // best q̃² among rejected/evicted candidates
}

// reseedRange runs the top-p-by-q̃² selection of the partial-profile
// reseed over the included candidate range [j0, j1) — the same selection
// the pre-kernel fused loop performed, minus the per-cell exclusion test.
// The fill phase (heap not yet full) is peeled off the front so the
// steady-state loop is just compute-q̃²-and-compare with hoisted slice
// bounds; candidates are visited in the identical ascending order.
func (r *run) reseedRange(a *anchors.State, row []float64, j0, j1, p int, sumA float64, st *reseedState) {
	if j1 <= j0 {
		return
	}
	means, invs := r.means, r.invStds
	j := j0
	for ; j < j1 && len(a.Entries) < p; j++ {
		qtj := row[j]
		q := (qtj - means[j]*sumA) * invs[j] // q̃ (0 for degenerate candidate)
		a.Entries = append(a.Entries, lb.Entry{J: int32(j), QT: qtj, QTilde: q})
	}
	if len(a.Entries) < p {
		return // range exhausted while filling; heapMinQ2 stays unset
	}
	if math.IsInf(st.heapMinQ2, -1) {
		// The p-th entry was just appended: order the heap once.
		lb.Heapify(a.Entries)
		q0 := a.Entries[0].QTilde
		st.heapMinQ2 = q0 * q0
	}
	rr := row[j:j1]
	mm := means[j:j1]
	mm = mm[:len(rr)]
	vv := invs[j:j1]
	vv = vv[:len(rr)]
	heapMin, bestRej := st.heapMinQ2, st.bestRejQ2
	for x := 0; x < len(rr); x++ {
		qtj := rr[x]
		q := (qtj - mm[x]*sumA) * vv[x]
		q2 := q * q
		if q2 > heapMin {
			if heapMin > bestRej {
				bestRej = heapMin // evicted root joins the unkept set
			}
			a.Entries[0] = lb.Entry{J: int32(j + x), QT: qtj, QTilde: q}
			lb.SiftDown(a.Entries, 0)
			q0 := a.Entries[0].QTilde
			heapMin = q0 * q0
		} else if q2 > bestRej {
			bestRej = q2
		}
	}
	st.heapMinQ2, st.bestRejQ2 = heapMin, bestRej
}

// scanRowDegenerate resolves a σ=0 anchor's row with the convention-aware
// scalar distance (the correlation kernels cannot express it): the shared
// fallback of every row-scan path.
func (r *run) scanRowDegenerate(i, l, excl, s int, row []float64, mp *profile.MatrixProfile) {
	fl := float64(l)
	muA := r.means[i]
	for j := 0; j < s; j++ {
		if j > i-excl && j < i+excl {
			continue
		}
		d := series.DistFromDot(row[j], fl, muA, 0, r.means[j], r.stds[j])
		mp.Update(i, d, j)
	}
}

// scanRowProfileOnly is scanRow minus the partial-profile bookkeeping:
// just the exact nearest neighbor of anchor i from its dot-product row,
// through the same kernels.ArgmaxCorr — shared arithmetic, bit-identical
// profiles.
func (r *run) scanRowProfileOnly(i, l, excl, s int, row []float64, mp *profile.MatrixProfile) {
	means, invs := r.means, r.invStds
	fl := float64(l)
	muA := means[i]
	invA := invs[i]
	if invA == 0 {
		r.scanRowDegenerate(i, l, excl, s, row, mp)
		return
	}
	e1, j2 := exclSplit(i, excl, s)
	bestCorr, bestJ := kernels.ArgmaxCorr(row, means, invs, e1, j2, s, 1/fl, muA, invA, math.Inf(-1), -1)
	if bestJ >= 0 {
		if bestCorr > 1 {
			bestCorr = 1
		} else if bestCorr < -1 {
			bestCorr = -1
		}
		mp.Update(i, math.Sqrt(2*fl*(1-bestCorr)), bestJ)
	}
}
