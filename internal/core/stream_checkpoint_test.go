package core

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// TestStreamCheckpointResumeBitIdentical: checkpointing a stream at any
// append boundary and resuming must leave every future Append/Snapshot
// bit-identical to the uninterrupted stream — in uncapped and
// sliding-window mode, and with a different worker count on the resume
// side.
func TestStreamCheckpointResumeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	x := randWalk(rng, 700)
	for _, wcap := range []int{0, 300} {
		cfg := Config{LMin: 8, LMax: 32, TopK: 3, Discords: 2, WindowCap: wcap, Workers: 2}
		chunks := randomChunks(rng, len(x), 48)
		ref := streamChunks(t, cfg, x, chunks)
		refSnap, err := ref.Snapshot()
		if err != nil {
			t.Fatal(err)
		}

		// Checkpoint after each of a few prefixes of the chunk sequence,
		// resume at a different worker count, replay the remaining chunks.
		for _, cut := range []int{1, len(chunks) / 2, len(chunks) - 1} {
			s := mustStreamer(t, cfg)
			off := 0
			for _, c := range chunks[:cut] {
				if err := s.Append(x[off : off+c]); err != nil {
					t.Fatal(err)
				}
				off += c
			}
			ck, err := s.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			ck = append([]byte(nil), ck...)

			rcfg := cfg
			rcfg.Workers = 5
			rs, err := ResumeStreamer(rcfg, ck)
			if err != nil {
				t.Fatalf("cap=%d cut=%d: resume: %v", wcap, cut, err)
			}
			if rs.Total() != s.Total() || rs.N() != s.N() {
				t.Fatalf("cap=%d cut=%d: resumed counters total=%d n=%d, want total=%d n=%d",
					wcap, cut, rs.Total(), rs.N(), s.Total(), s.N())
			}
			for _, c := range chunks[cut:] {
				if err := rs.Append(x[off : off+c]); err != nil {
					t.Fatal(err)
				}
				off += c
			}
			got, err := rs.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fingerprint(got), fingerprint(refSnap)) {
				t.Fatalf("cap=%d cut=%d: resumed snapshot differs from uninterrupted stream", wcap, cut)
			}
		}
	}
}

func mustStreamer(t *testing.T, cfg Config) *Streamer {
	t.Helper()
	s, err := NewStreamer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStreamCheckpointRejectsMismatch: frame and identity validation on
// the stream side.
func TestStreamCheckpointRejectsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	x := randWalk(rng, 300)
	cfg := Config{LMin: 8, LMax: 24, TopK: 3, Workers: 1}
	s := mustStreamer(t, cfg)
	if err := s.Append(x); err != nil {
		t.Fatal(err)
	}
	ck, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	expectBad := func(tag string, c Config, blob []byte) {
		t.Helper()
		if _, err := ResumeStreamer(c, blob); !errors.Is(err, ErrBadCheckpoint) {
			t.Fatalf("%s: want ErrBadCheckpoint, got %v", tag, err)
		}
	}
	otherCfg := cfg
	otherCfg.LMax = 20
	expectBad("different config", otherCfg, ck)

	capCfg := cfg
	capCfg.WindowCap = 100
	expectBad("different window cap", capCfg, ck)

	flipped := append([]byte(nil), ck...)
	flipped[len(flipped)-7] ^= 0x01
	expectBad("payload corruption", cfg, flipped)

	expectBad("truncated", cfg, ck[:20])

	// A batch checkpoint must not resume as a stream (disjoint magics).
	_, batchCk := captureAll(t, NewEngine(), x, Config{LMin: 8, LMax: 24, TopK: 3, Workers: 1})
	expectBad("batch blob as stream", cfg, batchCk[0])
}
