// Package core implements VALMOD (Variable-Length Motif Discovery), the
// paper's primary contribution: exact top-k motif pairs for every
// subsequence length in [ℓmin, ℓmax], at a fraction of the cost of running
// a fixed-length algorithm per length.
//
// The algorithm follows the demo paper §2 exactly:
//
//  1. Compute the matrix profile at ℓmin with STOMP-style row recurrences.
//     While each distance-profile row is in memory, retain the p entries
//     with the smallest lower-bounding distance (internal/lb; rank
//     preservation makes this the p largest q̃²) — the "partial distance
//     profiles".
//  2. For each longer length, advance each retained entry's dot product in
//     O(1), recompute its exact distance, and compare the anchor's best
//     exact distance (minDist) against the bound covering every
//     non-retained candidate (maxLB). minDist ≤ maxLB certifies the anchor:
//     its matrix-profile value at this length is exact (a "valid partial
//     distance profile", Figure 2b top). Otherwise the anchor is non-valid
//     (Figure 2b bottom).
//  3. minLBAbs — the smallest maxLB among non-valid anchors — certifies the
//     extracted top-k pairs; anchors that could still hide better matches
//     (maxLB below the current k-th best distance) get their distance
//     profile recomputed with MASS and their partial profile reseeded.
//     When too many anchors need recomputing, fall back to one full
//     STOMP pass at that length and reseed everything.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"github.com/seriesmining/valmod/internal/fft"
	"github.com/seriesmining/valmod/internal/lb"
	"github.com/seriesmining/valmod/internal/profile"
	"github.com/seriesmining/valmod/internal/series"
	"github.com/seriesmining/valmod/internal/stomp"
	"github.com/seriesmining/valmod/internal/valmap"
)

// Default parameter values; see Config.
const (
	DefaultTopK = 10
	DefaultP    = 10
	// DefaultRecomputeFraction: one MASS recompute costs Θ(n log n), a full
	// STOMP pass Θ(s²) — but the full pass also reseeds every partial
	// profile with tight bounds at the current length, so the breakeven
	// sits near s/log n ≈ 5% of anchors, not 25%.
	DefaultRecomputeFraction = 0.05
)

// ErrBadConfig is returned when the configuration is inconsistent with the
// series.
var ErrBadConfig = errors.New("core: bad config")

// Config parameterizes a VALMOD run.
type Config struct {
	// LMin, LMax bound the subsequence lengths (inclusive).
	LMin, LMax int
	// TopK is the number of motif pairs reported per length (default 10).
	TopK int
	// P is the number of entries retained per partial distance profile
	// (default 10). Larger P certifies more anchors per length at the cost
	// of memory and per-length work.
	P int
	// ExclusionFactor sets the trivial-match zone ⌈ℓ/factor⌉ (default 4).
	ExclusionFactor int
	// RecomputeFraction is the fraction of anchors above which a full
	// per-length STOMP recompute replaces individual MASS recomputes
	// (default 0.05; see DefaultRecomputeFraction for the cost model).
	RecomputeFraction float64
	// DisablePruning forces a full recompute at every length — the
	// lower-bound ablation. The output is identical; only time changes.
	DisablePruning bool
	// Workers bounds the goroutines used by the full-length scans (the
	// ℓmin seed and full-recompute fallbacks). 0 selects GOMAXPROCS;
	// 1 runs serially. Rows are independent, so results agree across
	// settings up to floating-point rounding: each block seeds its first
	// dot-product row by FFT instead of the serial recurrence chain, which
	// can move a distance by ~1e-10 and resolve an exact tie differently.
	Workers int
}

func (c *Config) fill() {
	if c.TopK <= 0 {
		c.TopK = DefaultTopK
	}
	if c.P <= 0 {
		c.P = DefaultP
	}
	if c.ExclusionFactor <= 0 {
		c.ExclusionFactor = profile.DefaultExclusionFactor
	}
	if c.RecomputeFraction <= 0 || c.RecomputeFraction > 1 {
		c.RecomputeFraction = DefaultRecomputeFraction
	}
}

func (c Config) validate(n int) error {
	if c.LMin < 4 {
		return fmt.Errorf("%w: LMin=%d, need >= 4", ErrBadConfig, c.LMin)
	}
	if c.LMax < c.LMin {
		return fmt.Errorf("%w: LMax=%d < LMin=%d", ErrBadConfig, c.LMax, c.LMin)
	}
	if c.LMax > n {
		return fmt.Errorf("%w: LMax=%d > series length %d", ErrBadConfig, c.LMax, n)
	}
	return nil
}

// LengthStats instruments one length of the run for the ablation benches.
type LengthStats struct {
	// Certified counts anchors whose profile value was certified by the
	// lower bound alone.
	Certified int
	// Recomputed counts anchors individually recomputed with MASS.
	Recomputed int
	// FullRecompute reports a whole-length STOMP fallback.
	FullRecompute bool
}

// LengthResult carries the exact output of one subsequence length.
type LengthResult struct {
	// M is the subsequence length.
	M int
	// Pairs are the exact top-k motif pairs, ascending distance.
	Pairs []profile.MotifPair
	// Stats instruments how the length was resolved.
	Stats LengthStats
}

// Best returns the best pair and true, or a zero pair and false when the
// length admits no pair.
func (lr LengthResult) Best() (profile.MotifPair, bool) {
	if len(lr.Pairs) == 0 {
		return profile.MotifPair{}, false
	}
	return lr.Pairs[0], true
}

// StatsTag renders a short diagnostic label ("m=32 cert=412 rec=3 full=false")
// used by tests and verbose logs.
func (lr LengthResult) StatsTag() string {
	return fmt.Sprintf("m=%d cert=%d rec=%d full=%v",
		lr.M, lr.Stats.Certified, lr.Stats.Recomputed, lr.Stats.FullRecompute)
}

// Result is a completed VALMOD run.
type Result struct {
	// N is the input series length.
	N int
	// Cfg echoes the effective configuration (defaults filled in).
	Cfg Config
	// MPMin is the exact matrix profile at ℓmin (demo Figure 1b-c).
	MPMin *profile.MatrixProfile
	// PerLength holds one entry per length, ℓmin first.
	PerLength []LengthResult
	// VMap is the VALMAP meta structure (demo Figure 1e-f).
	VMap *valmap.VALMAP
}

// GlobalBest returns the best motif pair across all lengths under the
// length-normalized distance, or false when no length produced a pair.
func (r *Result) GlobalBest() (profile.MotifPair, bool) {
	best := profile.MotifPair{Dist: math.Inf(1)}
	found := false
	bestNorm := math.Inf(1)
	for _, lr := range r.PerLength {
		for _, p := range lr.Pairs {
			if nd := p.NormDist(); nd < bestNorm {
				bestNorm = nd
				best = p
				found = true
			}
		}
	}
	return best, found
}

// ResultOfLength returns the LengthResult for m, or false.
func (r *Result) ResultOfLength(m int) (LengthResult, bool) {
	i := m - r.Cfg.LMin
	if i < 0 || i >= len(r.PerLength) {
		return LengthResult{}, false
	}
	return r.PerLength[i], true
}

// Summary aggregates the per-length instrumentation of a run.
type Summary struct {
	// Lengths is the number of lengths processed (LMax − LMin + 1).
	Lengths int
	// CertifiedAnchors sums anchors certified by the lower bound alone.
	CertifiedAnchors int
	// RecomputedAnchors sums anchors individually recomputed with MASS.
	RecomputedAnchors int
	// FullRecomputes counts lengths resolved by a whole STOMP pass
	// (including the mandatory one at ℓmin).
	FullRecomputes int
}

// Summary aggregates stats across the whole run.
func (r *Result) Summary() Summary {
	s := Summary{Lengths: len(r.PerLength)}
	for _, lr := range r.PerLength {
		s.CertifiedAnchors += lr.Stats.Certified
		s.RecomputedAnchors += lr.Stats.Recomputed
		if lr.Stats.FullRecompute {
			s.FullRecomputes++
		}
	}
	return s
}

// anchorState is the partial distance profile of one anchor.
type anchorState struct {
	entries []lb.Entry // retained candidates, at most P
	base    int32      // length at which entries/q̃ were (re)seeded
	// nextQ2 is the q̃² of the best candidate NOT retained (the (p+1)-th
	// largest at seed time): every unkept candidate has q̃² ≤ nextQ2, so
	// Bound(√nextQ2) lower-bounds all of them — a strictly tighter
	// certification threshold than bounding via the worst kept entry.
	// Negative when every candidate was retained (nothing to bound:
	// maxLB = +Inf).
	nextQ2 float64
	// degenerate marks a constant anchor window at the seed length, for
	// which no lower bound is available (maxLB = 0).
	degenerate bool
}

// run carries the mutable state of one VALMOD execution.
type run struct {
	t    []float64
	st   *series.Stats
	cfg  Config
	sMin int
	anch []anchorState
	vmap *valmap.VALMAP

	// scratch per length
	dists   []float64 // best retained pair distance per anchor
	indexes []int
	maxLBs  []float64
	cert    []bool

	// hot-row cache: anchors that keep failing certification get their
	// full dot-product row cached after one FFT; every later length then
	// resolves them exactly with one O(s) advance-and-scan pass instead of
	// another FFT. Bounded by hotBudget rows (≈64 MB total).
	hotRows   map[int][]float64
	hotL      map[int]int // length each cached row is currently at
	hotBudget int

	// corr amortizes the series-side FFT across every recompute query.
	corr *fft.Correlator

	// cached sliding moments of the current working length; invStds[j] is
	// 1/σ_j (0 for degenerate windows) so the hot loops run division-free
	momentsL             int
	means, stds, invStds []float64
	rowQT                []float64 // scratch dot-product row for run scans
}

// momentsAt fills the cached sliding mean/σ/1÷σ arrays for length l (O(s)
// via the cumulative sums, shared by every anchor at that length).
func (r *run) momentsAt(l int) {
	if r.momentsL == l {
		return
	}
	s := len(r.t) - l + 1
	if cap(r.means) < s {
		r.means = make([]float64, s)
		r.stds = make([]float64, s)
		r.invStds = make([]float64, s)
	}
	r.means = r.means[:s]
	r.stds = r.stds[:s]
	r.invStds = r.invStds[:s]
	for i := 0; i < s; i++ {
		mu, sd := r.st.MeanStd(i, l)
		r.means[i], r.stds[i] = mu, sd
		if sd > 0 {
			r.invStds[i] = 1 / sd
		} else {
			r.invStds[i] = 0
		}
	}
	r.momentsL = l
}

// Run executes VALMOD over t and returns the exact per-length top-k motif
// pairs and the VALMAP.
func Run(t []float64, cfg Config) (*Result, error) {
	return RunContext(context.Background(), t, cfg)
}

// RunContext is Run with cooperative cancellation, checked between lengths
// (the granularity the benchmark harness's wall-clock budgets need). On
// cancellation it returns ctx.Err().
func RunContext(ctx context.Context, t []float64, cfg Config) (*Result, error) {
	cfg.fill()
	if err := cfg.validate(len(t)); err != nil {
		return nil, err
	}
	n := len(t)
	sMin := n - cfg.LMin + 1
	vm, err := valmap.New(cfg.LMin, cfg.LMax, sMin)
	if err != nil {
		return nil, err
	}
	hotBudget := hotRowBudgetBytes / (8 * sMin)
	if hotBudget < 32 {
		hotBudget = 32
	}
	r := &run{
		t:         t,
		st:        series.NewStats(t),
		cfg:       cfg,
		sMin:      sMin,
		anch:      make([]anchorState, sMin),
		vmap:      vm,
		dists:     make([]float64, sMin),
		indexes:   make([]int, sMin),
		maxLBs:    make([]float64, sMin),
		cert:      make([]bool, sMin),
		hotRows:   make(map[int][]float64),
		hotL:      make(map[int]int),
		hotBudget: hotBudget,
		corr:      fft.NewCorrelator(t, cfg.LMax),
	}

	res := &Result{N: n, Cfg: cfg, VMap: vm}

	// Phase 1: exact matrix profile at ℓmin + initial partial profiles.
	mpMin, err := r.seedAll(cfg.LMin)
	if err != nil {
		return nil, err
	}
	res.MPMin = mpMin
	first := LengthResult{M: cfg.LMin, Pairs: mpMin.TopKPairs(cfg.TopK)}
	first.Stats.FullRecompute = true
	res.PerLength = append(res.PerLength, first)

	// VALMAP starts as the length-normalized ℓmin profile (flat LP).
	for i := 0; i < sMin; i++ {
		if mpMin.Index[i] >= 0 {
			vm.InitFromProfile(i, series.LengthNormalize(mpMin.Dist[i], cfg.LMin), mpMin.Index[i], cfg.LMin)
		}
	}
	vm.Seal()

	// Phase 2: longer lengths.
	for l := cfg.LMin + 1; l <= cfg.LMax; l++ {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
		}
		lr, err := r.processLength(l)
		if err != nil {
			return nil, err
		}
		vm.BeginLength(l)
		for _, p := range lr.Pairs {
			nd := p.NormDist()
			vm.Apply(p.A, nd, p.B, l)
			vm.Apply(p.B, nd, p.A, l)
		}
		vm.EndLength()
		res.PerLength = append(res.PerLength, lr)
	}
	return res, nil
}

// seedAll computes the exact matrix profile at length l and reseeds every
// anchor's partial profile with base l. Rows are independent, so the scan
// is partitioned into contiguous blocks across workers; each block seeds
// its first row with one FFT and streams the rest via the recurrence.
// Output is identical at any worker count.
func (r *run) seedAll(l int) (*profile.MatrixProfile, error) {
	n := len(r.t)
	s := n - l + 1
	excl := profile.ExclusionZone(l, r.cfg.ExclusionFactor)
	mp := profile.New(l, excl, s)
	if err := stomp.ValidateLength(n, l); err != nil {
		return nil, err
	}
	workers := r.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > s/64 {
		workers = s / 64 // blocks below ~64 rows don't amortize their FFT
	}
	if workers <= 1 {
		r.processRun(0, s, l, excl, s, mp)
		return mp, nil
	}
	r.momentsAt(l)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * s / workers
		hi := (w + 1) * s / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			r.processRunWith(lo, hi-lo, l, excl, s, mp,
				r.corr.Clone(), make([]float64, s))
		}(lo, hi)
	}
	wg.Wait()
	return mp, nil
}

// processRun resolves the contiguous anchors [i0, i0+count) exactly at
// length l: one FFT seeds the dot-product row of i0, each following row
// costs O(s) via the STOMP recurrence, and a single fused pass per row
// finds the exact profile minimum (division-free correlation compare) and
// reseeds the anchor's partial profile. It writes exact values into mp.
func (r *run) processRun(i0, count, l, excl, s int, mp *profile.MatrixProfile) {
	r.momentsAt(l)
	if cap(r.rowQT) < s {
		r.rowQT = make([]float64, s)
	}
	r.processRunWith(i0, count, l, excl, s, mp, r.corr, r.rowQT[:s])
}

// processRunWith is processRun with caller-owned correlator and row buffer,
// enabling concurrent block scans. The moment cache must already be at l.
func (r *run) processRunWith(i0, count, l, excl, s int, mp *profile.MatrixProfile, corr *fft.Correlator, rowBuf []float64) {
	t := r.t
	row := corr.Dots(t[i0:i0+l], rowBuf)
	for i := i0; i < i0+count; i++ {
		if i > i0 {
			// Row recurrence, descending j so row[j-1] is still row i−1.
			tail := t[i+l-1]
			head := t[i-1]
			for j := s - 1; j >= 1; j-- {
				row[j] = row[j-1] + tail*t[j+l-1] - head*t[j-1]
			}
			row[0] = series.Dot(t[i:i+l], t[0:l])
		}
		r.scanRow(i, l, excl, s, row, mp)
	}
}

// scanRow is the fused per-row pass: exact nearest neighbor of anchor i at
// length l (outside the exclusion zone) plus the partial-profile reseed
// (top-p candidates by q̃²). The moment cache must be filled for l.
func (r *run) scanRow(i, l, excl, s int, row []float64, mp *profile.MatrixProfile) {
	p := r.cfg.P
	means, invs := r.means, r.invStds
	fl := float64(l)
	sumA := r.st.Sum(i, l)
	muA := means[i]
	invA := invs[i]

	a := &r.anch[i]
	if cap(a.entries) < p {
		a.entries = make([]lb.Entry, 0, p)
	}
	a.entries = a.entries[:0]
	a.base = int32(l)

	// Degenerate anchor: the fused correlation math is undefined; fall back
	// to the convention-aware scalar path for this (rare) row.
	if invA == 0 {
		for j := 0; j < s; j++ {
			if j > i-excl && j < i+excl {
				continue
			}
			d := series.DistFromDot(row[j], fl, muA, 0, means[j], r.stds[j])
			mp.Update(i, d, j)
		}
		a.degenerate = true
		a.nextQ2 = -1
		return
	}
	a.degenerate = false

	bestCorr := math.Inf(-1)
	bestJ := -1
	heapMinQ2 := math.Inf(-1) // q̃² of the heap root once the heap is full
	bestRejQ2 := -1.0         // best q̃² among rejected/evicted candidates
	lo, hi := i-excl, i+excl  // exclusion interval (exclusive bounds)
	for j := 0; j < s; j++ {
		if j > lo && j < hi {
			continue // trivial at this and every longer length
		}
		qtj := row[j]
		q := (qtj - means[j]*sumA) * invs[j] // q̃ (0 for degenerate candidate)
		q2 := q * q
		if len(a.entries) < p {
			a.entries = append(a.entries, lb.Entry{J: int32(j), QT: qtj, QTilde: q})
			if len(a.entries) == p {
				heapify(a.entries)
				q0 := a.entries[0].QTilde
				heapMinQ2 = q0 * q0
			}
		} else if q2 > heapMinQ2 {
			if heapMinQ2 > bestRejQ2 {
				bestRejQ2 = heapMinQ2 // evicted root joins the unkept set
			}
			a.entries[0] = lb.Entry{J: int32(j), QT: qtj, QTilde: q}
			siftDown(a.entries, 0)
			q0 := a.entries[0].QTilde
			heapMinQ2 = q0 * q0
		} else if q2 > bestRejQ2 {
			bestRejQ2 = q2
		}
		// Division-free correlation compare; invs[j]=0 (degenerate
		// candidate) yields corr 0 ⇒ distance √(2l), the convention.
		corr := (qtj/fl - muA*means[j]) * invA * invs[j]
		if corr > bestCorr {
			bestCorr, bestJ = corr, j
		}
	}
	if len(a.entries) > 0 && len(a.entries) < p {
		heapify(a.entries)
	}
	a.nextQ2 = bestRejQ2
	if bestJ >= 0 {
		if bestCorr > 1 {
			bestCorr = 1
		} else if bestCorr < -1 {
			bestCorr = -1
		}
		mp.Update(i, math.Sqrt(2*fl*(1-bestCorr)), bestJ)
	}
}

// heapify orders entries as a min-heap on q̃².
func heapify(es []lb.Entry) {
	for i := len(es)/2 - 1; i >= 0; i-- {
		siftDown(es, i)
	}
}

func siftDown(es []lb.Entry, i int) {
	n := len(es)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && es[l].QTilde*es[l].QTilde < es[small].QTilde*es[small].QTilde {
			small = l
		}
		if r < n && es[r].QTilde*es[r].QTilde < es[small].QTilde*es[small].QTilde {
			small = r
		}
		if small == i {
			return
		}
		es[i], es[small] = es[small], es[i]
	}
}

// processLength resolves length l exactly, using pruning where possible.
func (r *run) processLength(l int) (LengthResult, error) {
	n := len(r.t)
	s := n - l + 1
	excl := profile.ExclusionZone(l, r.cfg.ExclusionFactor)
	lr := LengthResult{M: l}

	if s <= excl {
		// No non-trivial pair can exist at this length.
		return lr, nil
	}

	if r.cfg.DisablePruning {
		mp, err := r.fullRecompute(l)
		if err != nil {
			return lr, err
		}
		lr.Pairs = mp.TopKPairs(r.cfg.TopK)
		lr.Stats.FullRecompute = true
		return lr, nil
	}

	fl := float64(l)
	r.momentsAt(l)
	for i := 0; i < s; i++ {
		a := &r.anch[i]
		r.cert[i] = false
		r.dists[i] = math.Inf(1)
		r.indexes[i] = -1

		// Hot anchors resolve exactly with one advance-and-scan pass.
		if row, ok := r.hotRows[i]; ok {
			r.advanceAndScanHot(i, l, excl, s, row)
			continue
		}

		muA, sdA := r.means[i], r.stds[i]
		switch {
		case a.degenerate:
			// Constant anchor at seed time: no bound exists; always
			// resolved by recompute when within τ.
			r.maxLBs[i] = 0
		case a.nextQ2 < 0:
			// Every candidate is retained: nothing unseen to bound.
			r.maxLBs[i] = math.Inf(1)
		default:
			terms := lb.NewAnchorTerms(r.st, i, int(a.base), l-int(a.base))
			r.maxLBs[i] = terms.Bound(math.Sqrt(a.nextQ2))
		}
		if a.degenerate {
			continue
		}

		minDist := math.Inf(1)
		minIdx := -1
		for e := range a.entries {
			ent := &a.entries[e]
			j := int(ent.J)
			if j >= s {
				continue // candidate no longer long enough
			}
			ent.Advance(r.t, i, l)
			if j > i-excl && j < i+excl {
				continue // grown exclusion zone swallowed it
			}
			d := series.DistFromDot(ent.QT, fl, muA, sdA, r.means[j], r.stds[j])
			if d < minDist {
				minDist, minIdx = d, j
			}
		}
		// Record the best retained pair unconditionally: it is a true
		// distance either way, exact iff certified.
		r.dists[i] = minDist
		r.indexes[i] = minIdx
		if minDist <= r.maxLBs[i] {
			r.cert[i] = true
		}
	}

	// Assemble the candidate profile. Certified anchors contribute their
	// exact profile value; uncertified anchors contribute minDist — a true
	// pair distance (upper bound on their profile value), which sharpens τ
	// and provably never survives into the reported top-k: a chosen
	// uncertified pair would have minDist ≤ τ, hence maxLB < τ, putting
	// its anchor into the recompute set below.
	lmp := profile.New(l, excl, s)
	certified := 0
	for i := 0; i < s; i++ {
		if r.indexes[i] >= 0 {
			lmp.Dist[i] = r.dists[i]
			lmp.Index[i] = r.indexes[i]
		}
		if r.cert[i] {
			certified++
		}
	}
	lr.Stats.Certified = certified

	// Recompute-to-fixpoint: extraction with pair de-duplication is not
	// monotone in its candidate set (a newly recomputed anchor can block
	// two others and *raise* the k-th best distance τ), so one recompute
	// pass is not enough — iterate until no non-certified anchor's maxLB
	// falls at or below the current τ. Each round certifies at least one
	// new anchor, so the loop terminates.
	recomputed := 0
	for {
		pairs := lmp.TopKPairs(r.cfg.TopK)
		// τ is the certification threshold: with a full top-k in hand, the
		// k-th best distance; otherwise +Inf (anything could still improve
		// the set).
		tau := math.Inf(1)
		if len(pairs) == r.cfg.TopK {
			tau = pairs[len(pairs)-1].Dist
		}
		var need []int
		for i := 0; i < s; i++ {
			if !r.cert[i] && r.maxLBs[i] <= tau {
				need = append(need, i)
			}
		}
		if len(need) == 0 {
			lr.Pairs = pairs
			lr.Stats.Recomputed = recomputed
			return lr, nil
		}
		if float64(recomputed+len(need)) >= r.cfg.RecomputeFraction*float64(s) {
			mp, err := r.fullRecompute(l)
			if err != nil {
				return lr, err
			}
			lr.Pairs = mp.TopKPairs(r.cfg.TopK)
			lr.Stats.Recomputed = recomputed
			lr.Stats.FullRecompute = true
			return lr, nil
		}
		// Neighboring anchors fail certification together (their windows
		// overlap), so contiguous runs are recomputed with one FFT + O(s)
		// row recurrences and reseeded. Isolated hard anchors instead join
		// the hot-row cache: one FFT now, O(s) per length afterwards.
		const runReseedMin = 8
		var hotPend []int
		for start := 0; start < len(need); {
			end := start + 1
			for end < len(need) && need[end] == need[end-1]+1 {
				end++
			}
			if end-start >= runReseedMin {
				r.processRun(need[start], end-start, l, excl, s, lmp)
			} else {
				hotPend = append(hotPend, need[start:end]...)
			}
			for _, i := range need[start:end] {
				r.cert[i] = true // exact now at this length
			}
			start = end
		}
		// Isolated hard anchors: resolve two per FFT round trip via the
		// packed correlator, then cache their rows as hot.
		for x := 0; x+1 < len(hotPend); x += 2 {
			i1, i2 := hotPend[x], hotPend[x+1]
			row1, row2 := r.corr.DotsPair(r.t[i1:i1+l], r.t[i2:i2+l],
				make([]float64, s), make([]float64, s))
			r.makeHot(i1, l, excl, s, row1, lmp)
			r.makeHot(i2, l, excl, s, row2, lmp)
		}
		if len(hotPend)%2 == 1 {
			i := hotPend[len(hotPend)-1]
			row := r.corr.Dots(r.t[i:i+l], make([]float64, s))
			r.makeHot(i, l, excl, s, row, lmp)
		}
		recomputed += len(need)
	}
}

// makeHot resolves anchor i exactly at length l from its freshly computed
// dot-product row, reseeds its partial profile, and caches the row so every
// later length costs O(s) instead of an FFT.
func (r *run) makeHot(i, l, excl, s int, row []float64, lmp *profile.MatrixProfile) {
	r.scanRow(i, l, excl, s, row, lmp)
	if _, ok := r.hotRows[i]; !ok && len(r.hotRows) < r.hotBudget {
		r.hotRows[i] = row
		r.hotL[i] = l
	}
}

// hotRowBudgetBytes bounds the memory the hot-row cache may hold.
const hotRowBudgetBytes = 64 << 20

// advanceAndScanHot advances anchor i's cached dot-product row to length l
// (one fused multiply-add per cell per length step) and scans it for the
// exact profile value — certification without FFT work.
func (r *run) advanceAndScanHot(i, l, excl, s int, row []float64) {
	t := r.t
	fl := float64(l)
	for cur := r.hotL[i]; cur < l; cur++ {
		tail := t[i+cur]
		for j := 0; j < len(t)-cur; j++ {
			row[j] += tail * t[j+cur]
		}
	}
	r.hotL[i] = l

	means, stds, invs := r.means, r.stds, r.invStds
	muA, invA := means[i], invs[i]
	if invA == 0 {
		best, bestJ := math.Inf(1), -1
		for j := 0; j < s; j++ {
			if j > i-excl && j < i+excl {
				continue
			}
			d := series.DistFromDot(row[j], fl, muA, 0, means[j], stds[j])
			if d < best {
				best, bestJ = d, j
			}
		}
		r.dists[i], r.indexes[i], r.cert[i] = best, bestJ, true
		return
	}
	bestCorr, bestJ := math.Inf(-1), -1
	for j := 0; j < s; j++ {
		if j > i-excl && j < i+excl {
			continue
		}
		corr := (row[j]/fl - muA*means[j]) * invA * invs[j]
		if corr > bestCorr {
			bestCorr, bestJ = corr, j
		}
	}
	if bestJ >= 0 {
		if bestCorr > 1 {
			bestCorr = 1
		} else if bestCorr < -1 {
			bestCorr = -1
		}
		r.dists[i] = math.Sqrt(2 * fl * (1 - bestCorr))
		r.indexes[i] = bestJ
	}
	r.cert[i] = true
}

// fullRecompute runs the STOMP row scan at length l, reseeding every
// anchor, and returns the exact matrix profile.
func (r *run) fullRecompute(l int) (*profile.MatrixProfile, error) {
	return r.seedAll(l)
}
