package valmap

import (
	"bytes"
	"math"
	"testing"
)

func newSealed(t *testing.T, lmin, lmax, s int) *VALMAP {
	t.Helper()
	v, err := New(lmin, lmax, s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s; i++ {
		v.InitFromProfile(i, float64(10+i), (i+1)%s, lmin)
	}
	v.Seal()
	return v
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 10, 5); err == nil {
		t.Error("lmin=1 should fail")
	}
	if _, err := New(10, 5, 5); err == nil {
		t.Error("lmax<lmin should fail")
	}
	if _, err := New(5, 10, 0); err == nil {
		t.Error("s=0 should fail")
	}
}

func TestApplyOnlyImproves(t *testing.T) {
	v := newSealed(t, 50, 400, 4)
	v.BeginLength(51)
	if !v.Apply(0, 5, 2, 51) {
		t.Error("improvement should apply")
	}
	if v.Apply(0, 6, 3, 52) {
		t.Error("worse value should not apply")
	}
	if v.Apply(0, 5, 3, 52) {
		t.Error("equal value should not apply")
	}
	if n := v.EndLength(); n != 1 {
		t.Errorf("EndLength = %d, want 1", n)
	}
	if v.MPn[0] != 5 || v.IP[0] != 2 || v.LP[0] != 51 {
		t.Errorf("state = %v %v %v", v.MPn[0], v.IP[0], v.LP[0])
	}
}

func TestEmptyCheckpointDropped(t *testing.T) {
	v := newSealed(t, 50, 400, 4)
	v.BeginLength(51)
	if n := v.EndLength(); n != 0 {
		t.Errorf("EndLength = %d", n)
	}
	if len(v.Checkpoints) != 0 {
		t.Error("empty checkpoint should be dropped")
	}
}

func TestStateAtReplaysCheckpoints(t *testing.T) {
	v := newSealed(t, 50, 400, 4)
	v.BeginLength(60)
	v.Apply(1, 3, 0, 60)
	v.EndLength()
	v.BeginLength(70)
	v.Apply(1, 2, 3, 70)
	v.Apply(2, 4, 0, 70)
	v.EndLength()

	// At 50 (before any checkpoint): initial state.
	mpn, ip, lp, err := v.StateAt(50)
	if err != nil {
		t.Fatal(err)
	}
	if mpn[1] != 11 || ip[1] != 2 || lp[1] != 50 {
		t.Errorf("state@50 slot1 = %v %v %v", mpn[1], ip[1], lp[1])
	}

	// At 65: first checkpoint applied only.
	mpn, _, lp, _ = v.StateAt(65)
	if mpn[1] != 3 || lp[1] != 60 {
		t.Errorf("state@65 slot1 = %v %v", mpn[1], lp[1])
	}
	if mpn[2] != 12 {
		t.Errorf("state@65 slot2 = %v", mpn[2])
	}

	// At 400: everything.
	mpn, ip, lp, _ = v.StateAt(400)
	if mpn[1] != 2 || ip[1] != 3 || lp[1] != 70 || mpn[2] != 4 {
		t.Errorf("state@400 = %v %v %v", mpn, ip, lp)
	}

	// Final state matches StateAt(lmax).
	for i := range mpn {
		if mpn[i] != v.MPn[i] || ip[i] != v.IP[i] || lp[i] != v.LP[i] {
			t.Fatalf("StateAt(lmax) != live state at slot %d", i)
		}
	}
}

func TestStateAtErrors(t *testing.T) {
	v, _ := New(50, 400, 4)
	if _, _, _, err := v.StateAt(100); err == nil {
		t.Error("StateAt before Seal should fail")
	}
	v.Seal()
	if _, _, _, err := v.StateAt(10); err == nil {
		t.Error("length below lmin should fail")
	}
	if _, _, _, err := v.StateAt(1000); err == nil {
		t.Error("length above lmax should fail")
	}
}

func TestMin(t *testing.T) {
	v := newSealed(t, 50, 400, 5)
	v.BeginLength(99)
	v.Apply(3, 0.5, 1, 99)
	v.EndLength()
	i, d, j, l := v.Min()
	if i != 3 || d != 0.5 || j != 1 || l != 99 {
		t.Errorf("Min = %d %g %d %d", i, d, j, l)
	}
}

func TestMinEmpty(t *testing.T) {
	v, _ := New(50, 60, 3)
	if i, d, _, _ := v.Min(); i != -1 || !math.IsInf(d, 1) {
		t.Errorf("empty Min = %d %g", i, d)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	v := newSealed(t, 50, 400, 4)
	v.BeginLength(60)
	v.Apply(0, 1.25, 3, 60)
	v.EndLength()

	var buf bytes.Buffer
	if err := v.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.LMin != 50 || got.LMax != 400 || got.Len() != 4 {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range v.MPn {
		if got.MPn[i] != v.MPn[i] || got.IP[i] != v.IP[i] || got.LP[i] != v.LP[i] {
			t.Fatalf("slot %d mismatch", i)
		}
	}
	// StateAt still works after a round trip.
	mpn, _, _, err := got.StateAt(55)
	if err != nil {
		t.Fatal(err)
	}
	if mpn[0] != 10 {
		t.Errorf("state@55 slot0 = %v, want initial 10", mpn[0])
	}
}

func TestJSONRoundTripInfinities(t *testing.T) {
	v, _ := New(50, 60, 3)
	v.InitFromProfile(0, 1.5, 1, 50)
	v.Seal() // slots 1,2 stay +Inf
	var buf bytes.Buffer
	if err := v.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got.MPn[1], 1) || !math.IsInf(got.MPn[2], 1) {
		t.Errorf("infinities lost: %v", got.MPn)
	}
	if got.MPn[0] != 1.5 {
		t.Errorf("finite value lost: %v", got.MPn[0])
	}
}

func TestReadJSONRejectsMalformed(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{")); err == nil {
		t.Error("truncated JSON should fail")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`{"lmin":2,"lmax":3,"mpn":[1],"ip":[],"lp":[]}`)); err == nil {
		t.Error("mismatched array lengths should fail")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`{"lmin":0,"lmax":3,"mpn":[1],"ip":[0],"lp":[2]}`)); err == nil {
		t.Error("bad range should fail")
	}
}
