// Package valmap implements VALMAP, the Variable-Length Matrix Profile the
// demo paper introduces: a triple ⟨MPn, IP, LP⟩ of length-normalized
// distances, best-match offsets and best-match lengths, plus the per-length
// update checkpoints the demo GUI exposes through its slider (Figures 1
// right and 5).
package valmap

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrBadRange is returned when the length range is invalid.
var ErrBadRange = errors.New("valmap: invalid length range")

// Update is one VALMAP cell improvement: at length L, subsequence I's best
// length-normalized match became (J, NormDist).
type Update struct {
	I        int     `json:"i"`
	J        int     `json:"j"`
	L        int     `json:"l"`
	NormDist float64 `json:"nd"`
}

// Checkpoint groups the updates applied at one subsequence length; the demo
// GUI's slider walks these (demo §3: "the checkpoints of the VALMAP, namely
// all the updates occurred from the length ℓmin till the desired length").
type Checkpoint struct {
	L       int      `json:"l"`
	Updates []Update `json:"updates"`
}

// VALMAP is the meta data series. MPn, IP and LP all have |D| − ℓmin + 1
// entries, one per subsequence offset at the minimum length.
type VALMAP struct {
	LMin int `json:"lmin"`
	LMax int `json:"lmax"`
	// MPn[i] is the smallest length-normalized distance d·√(1/ℓ) seen for
	// subsequence offset i across all lengths processed so far.
	MPn []float64 `json:"mpn"`
	// IP[i] is the offset of the best match (-1 when none).
	IP []int `json:"ip"`
	// LP[i] is the length at which the best match was found (0 when none).
	LP []int `json:"lp"`
	// Checkpoints records, per length with at least one improvement, the
	// updates applied. Replaying them over the initial state reconstructs
	// the VALMAP at any intermediate length.
	Checkpoints []Checkpoint `json:"checkpoints"`

	// initMPn/initIP/initLP snapshot the state right after initialization
	// (the flat length-ℓmin profile) so StateAt can replay checkpoints.
	initMPn []float64
	initIP  []int
	initLP  []int

	current *Checkpoint // checkpoint being accumulated, if any
}

// New returns a VALMAP for a series with s = |D|−ℓmin+1 subsequence slots,
// initialized to +Inf / -1 / 0.
func New(lmin, lmax, s int) (*VALMAP, error) {
	if lmin < 2 || lmax < lmin || s < 1 {
		return nil, fmt.Errorf("%w: lmin=%d lmax=%d s=%d", ErrBadRange, lmin, lmax, s)
	}
	v := &VALMAP{
		LMin: lmin,
		LMax: lmax,
		MPn:  make([]float64, s),
		IP:   make([]int, s),
		LP:   make([]int, s),
	}
	for i := range v.MPn {
		v.MPn[i] = math.Inf(1)
		v.IP[i] = -1
	}
	return v, nil
}

// Len returns the number of subsequence slots.
func (v *VALMAP) Len() int { return len(v.MPn) }

// InitFromProfile seeds slot i with the length-ℓmin matrix profile value
// (already length-normalized by the caller). Call Seal once seeding is done
// so the snapshot used by StateAt is frozen.
func (v *VALMAP) InitFromProfile(i int, normDist float64, j, l int) {
	v.MPn[i] = normDist
	v.IP[i] = j
	v.LP[i] = l
}

// Seal freezes the initial state; subsequent improvements must go through
// Apply and are recorded as checkpoints.
func (v *VALMAP) Seal() {
	v.initMPn = append([]float64(nil), v.MPn...)
	v.initIP = append([]int(nil), v.IP...)
	v.initLP = append([]int(nil), v.LP...)
}

// Sealed reports whether Seal has been called.
func (v *VALMAP) Sealed() bool { return v.initMPn != nil }

// BeginLength opens a checkpoint for updates at length l. Lengths must be
// presented in increasing order.
func (v *VALMAP) BeginLength(l int) {
	v.current = &Checkpoint{L: l}
}

// Apply improves slot i to (normDist, j, l) when normDist is strictly
// smaller than the current value, returning whether an update happened.
// The update is recorded in the open checkpoint.
func (v *VALMAP) Apply(i int, normDist float64, j, l int) bool {
	if normDist >= v.MPn[i] {
		return false
	}
	v.MPn[i] = normDist
	v.IP[i] = j
	v.LP[i] = l
	if v.current != nil {
		v.current.Updates = append(v.current.Updates, Update{I: i, J: j, L: l, NormDist: normDist})
	}
	return true
}

// EndLength closes the current checkpoint, keeping it only when it recorded
// at least one update. It reports how many updates were applied.
func (v *VALMAP) EndLength() int {
	if v.current == nil {
		return 0
	}
	n := len(v.current.Updates)
	if n > 0 {
		v.Checkpoints = append(v.Checkpoints, *v.current)
	}
	v.current = nil
	return n
}

// StateAt reconstructs the VALMAP as it looked after processing length l
// (inclusive), by replaying checkpoints over the sealed initial state. This
// is the backend of the demo GUI's slider.
func (v *VALMAP) StateAt(l int) (mpn []float64, ip, lp []int, err error) {
	if !v.Sealed() {
		return nil, nil, nil, errors.New("valmap: StateAt before Seal")
	}
	if l < v.LMin || l > v.LMax {
		return nil, nil, nil, fmt.Errorf("%w: length %d outside [%d,%d]", ErrBadRange, l, v.LMin, v.LMax)
	}
	mpn = append([]float64(nil), v.initMPn...)
	ip = append([]int(nil), v.initIP...)
	lp = append([]int(nil), v.initLP...)
	for _, cp := range v.Checkpoints {
		if cp.L > l {
			break
		}
		for _, u := range cp.Updates {
			mpn[u.I] = u.NormDist
			ip[u.I] = u.J
			lp[u.I] = u.L
		}
	}
	return mpn, ip, lp, nil
}

// Min returns the global best cell: the smallest length-normalized distance,
// its slot, match offset and length. Returns i = -1 on an empty VALMAP.
func (v *VALMAP) Min() (i int, normDist float64, j, l int) {
	i, normDist, j, l = -1, math.Inf(1), -1, 0
	for k, d := range v.MPn {
		if d < normDist {
			i, normDist, j, l = k, d, v.IP[k], v.LP[k]
		}
	}
	return i, normDist, j, l
}

// jsonVALMAP mirrors VALMAP for serialization, adding the sealed snapshot.
type jsonVALMAP struct {
	LMin        int          `json:"lmin"`
	LMax        int          `json:"lmax"`
	MPn         []float64    `json:"mpn"`
	IP          []int        `json:"ip"`
	LP          []int        `json:"lp"`
	Checkpoints []Checkpoint `json:"checkpoints"`
	InitMPn     []float64    `json:"init_mpn,omitempty"`
	InitIP      []int        `json:"init_ip,omitempty"`
	InitLP      []int        `json:"init_lp,omitempty"`
}

// WriteJSON serializes the VALMAP, including the sealed snapshot so a loaded
// VALMAP still supports StateAt. Infinities are encoded as nulls.
func (v *VALMAP) WriteJSON(w io.Writer) error {
	// JSON cannot carry +Inf; swap for a sentinel.
	enc := jsonVALMAP{
		LMin: v.LMin, LMax: v.LMax,
		MPn: encodeInf(v.MPn), IP: v.IP, LP: v.LP,
		Checkpoints: v.Checkpoints,
		InitMPn:     encodeInf(v.initMPn), InitIP: v.initIP, InitLP: v.initLP,
	}
	return json.NewEncoder(w).Encode(enc)
}

// ReadJSON deserializes a VALMAP written by WriteJSON.
func ReadJSON(r io.Reader) (*VALMAP, error) {
	var dec jsonVALMAP
	if err := json.NewDecoder(r).Decode(&dec); err != nil {
		return nil, fmt.Errorf("valmap: %w", err)
	}
	if dec.LMin < 2 || dec.LMax < dec.LMin || len(dec.MPn) == 0 ||
		len(dec.MPn) != len(dec.IP) || len(dec.MPn) != len(dec.LP) {
		return nil, fmt.Errorf("%w: malformed VALMAP document", ErrBadRange)
	}
	v := &VALMAP{
		LMin: dec.LMin, LMax: dec.LMax,
		MPn: decodeInf(dec.MPn), IP: dec.IP, LP: dec.LP,
		Checkpoints: dec.Checkpoints,
		initMPn:     decodeInf(dec.InitMPn), initIP: dec.InitIP, initLP: dec.InitLP,
	}
	return v, nil
}

// gobVALMAP mirrors VALMAP for gob serialization (engine checkpoints).
// Unlike JSON, gob carries ±Inf bit-exactly, so no sentinel is needed.
type gobVALMAP struct {
	LMin, LMax  int
	MPn         []float64
	IP, LP      []int
	Checkpoints []Checkpoint
	InitMPn     []float64
	InitIP      []int
	InitLP      []int
}

// GobEncode serializes the VALMAP including the sealed snapshot. It must be
// called between lengths (no checkpoint open); an open checkpoint would be
// silently dropped, so it is rejected.
func (v *VALMAP) GobEncode() ([]byte, error) {
	if v.current != nil {
		return nil, errors.New("valmap: GobEncode with an open length checkpoint")
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(gobVALMAP{
		LMin: v.LMin, LMax: v.LMax,
		MPn: v.MPn, IP: v.IP, LP: v.LP,
		Checkpoints: v.Checkpoints,
		InitMPn:     v.initMPn, InitIP: v.initIP, InitLP: v.initLP,
	})
	return buf.Bytes(), err
}

// GobDecode restores a VALMAP written by GobEncode.
func (v *VALMAP) GobDecode(b []byte) error {
	var dec gobVALMAP
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&dec); err != nil {
		return fmt.Errorf("valmap: %w", err)
	}
	v.LMin, v.LMax = dec.LMin, dec.LMax
	v.MPn, v.IP, v.LP = dec.MPn, dec.IP, dec.LP
	v.Checkpoints = dec.Checkpoints
	v.initMPn, v.initIP, v.initLP = dec.InitMPn, dec.InitIP, dec.InitLP
	v.current = nil
	return nil
}

// infSentinel stands in for +Inf inside JSON documents.
const infSentinel = math.MaxFloat64

func encodeInf(x []float64) []float64 {
	if x == nil {
		return nil
	}
	out := make([]float64, len(x))
	for i, v := range x {
		if math.IsInf(v, 1) {
			out[i] = infSentinel
		} else {
			out[i] = v
		}
	}
	return out
}

func decodeInf(x []float64) []float64 {
	if x == nil {
		return nil
	}
	out := make([]float64, len(x))
	for i, v := range x {
		if v == infSentinel {
			out[i] = math.Inf(1)
		} else {
			out[i] = v
		}
	}
	return out
}
