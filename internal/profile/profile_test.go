package profile

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestExclusionZone(t *testing.T) {
	cases := []struct{ m, factor, want int }{
		{100, 4, 25}, {101, 4, 26}, {100, 2, 50}, {100, 0, 25}, {2, 4, 1}, {1, 4, 1},
	}
	for _, c := range cases {
		if got := ExclusionZone(c.m, c.factor); got != c.want {
			t.Errorf("ExclusionZone(%d,%d) = %d, want %d", c.m, c.factor, got, c.want)
		}
	}
}

func TestNewInitializesToInf(t *testing.T) {
	mp := New(10, 3, 5)
	for i := 0; i < 5; i++ {
		if !math.IsInf(mp.Dist[i], 1) || mp.Index[i] != -1 {
			t.Fatalf("slot %d not initialized: %g %d", i, mp.Dist[i], mp.Index[i])
		}
	}
	if mp.Len() != 5 {
		t.Errorf("Len() = %d", mp.Len())
	}
}

func TestUpdateKeepsMinimum(t *testing.T) {
	mp := New(10, 3, 2)
	mp.Update(0, 5, 9)
	mp.Update(0, 7, 3) // worse: ignored
	mp.Update(0, 2, 4) // better: kept
	if mp.Dist[0] != 2 || mp.Index[0] != 4 {
		t.Errorf("got (%g,%d), want (2,4)", mp.Dist[0], mp.Index[0])
	}
}

func TestMin(t *testing.T) {
	mp := New(10, 3, 3)
	if d, i := mp.Min(); !math.IsInf(d, 1) || i != -1 {
		t.Errorf("empty Min() = (%g,%d)", d, i)
	}
	mp.Update(0, 5, 2)
	mp.Update(1, 1, 2)
	mp.Update(2, 3, 0)
	if d, i := mp.Min(); d != 1 || i != 1 {
		t.Errorf("Min() = (%g,%d), want (1,1)", d, i)
	}
}

func TestTopKPairsOrderingAndDedup(t *testing.T) {
	// Profile over 20 subsequences; two valleys, the deeper one at 3↔15.
	mp := New(8, 2, 20)
	mp.Update(3, 0.5, 15)
	mp.Update(15, 0.5, 3)
	mp.Update(4, 0.6, 16) // within zone of 3 and 15: must be deduped
	mp.Update(10, 1.0, 0)
	mp.Update(0, 1.0, 10)
	pairs := mp.TopKPairs(3)
	if len(pairs) != 2 {
		t.Fatalf("got %d pairs: %v", len(pairs), pairs)
	}
	if pairs[0].A != 3 || pairs[0].B != 15 || pairs[0].Dist != 0.5 {
		t.Errorf("pair 0 = %v", pairs[0])
	}
	if pairs[1].A != 0 || pairs[1].B != 10 {
		t.Errorf("pair 1 = %v", pairs[1])
	}
	if pairs[0].M != 8 {
		t.Errorf("pair length = %d, want 8", pairs[0].M)
	}
}

func TestTopKPairsAOrder(t *testing.T) {
	mp := New(4, 1, 10)
	mp.Update(7, 0.3, 1) // stored with i > index: must emit A=1, B=7
	pairs := mp.TopKPairs(1)
	if len(pairs) != 1 || pairs[0].A != 1 || pairs[0].B != 7 {
		t.Fatalf("pairs = %v", pairs)
	}
}

func TestTopKPairsEmptyProfile(t *testing.T) {
	mp := New(4, 1, 10)
	if pairs := mp.TopKPairs(5); len(pairs) != 0 {
		t.Errorf("expected no pairs, got %v", pairs)
	}
}

func TestNormDistFavorsLonger(t *testing.T) {
	short := MotifPair{A: 0, B: 10, M: 50, Dist: 10}
	long := MotifPair{A: 0, B: 10, M: 400, Dist: 10}
	if long.NormDist() >= short.NormDist() {
		t.Errorf("norm dist should favor longer: %g vs %g", long.NormDist(), short.NormDist())
	}
}

func TestTopKDiscords(t *testing.T) {
	mp := New(8, 3, 12)
	for i := 0; i < 12; i++ {
		mp.Update(i, 1.0, (i+6)%12)
	}
	mp.Dist[5], mp.Index[5] = 9.0, 11 // biggest NN distance → top discord
	mp.Dist[6] = 8.5                  // within zone of 5: deduped
	mp.Dist[0] = 7.0                  // second discord
	ds := mp.TopKDiscords(2)
	if len(ds) != 2 || ds[0].I != 5 || ds[1].I != 0 {
		t.Fatalf("discords = %v", ds)
	}
	if ds[0].Dist != 9.0 {
		t.Errorf("discord dist = %g", ds[0].Dist)
	}
}

func TestStringFormat(t *testing.T) {
	p := MotifPair{A: 1, B: 2, M: 3, Dist: 0.12345}
	if got := p.String(); got != "motif{A=1 B=2 m=3 d=0.1235}" {
		t.Errorf("String() = %q", got)
	}
}

// referenceTopKPairs is the full-sort extraction TopKPairs must equal: sort
// every candidate ascending (distance, then offset), then dedup-extract.
func referenceTopKPairs(mp *MatrixProfile, k int) []MotifPair {
	type cand struct {
		i int
		d float64
	}
	var cands []cand
	for i, d := range mp.Dist {
		if mp.Index[i] >= 0 && !math.IsInf(d, 1) {
			cands = append(cands, cand{i, d})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].d != cands[b].d {
			return cands[a].d < cands[b].d
		}
		return cands[a].i < cands[b].i
	})
	var out []MotifPair
	var used []int
	tooClose := func(x int) bool {
		for _, u := range used {
			if abs(x-u) < mp.Exclusion {
				return true
			}
		}
		return false
	}
	for _, c := range cands {
		if len(out) >= k {
			break
		}
		a, b := c.i, mp.Index[c.i]
		if a > b {
			a, b = b, a
		}
		if tooClose(a) || tooClose(b) {
			continue
		}
		out = append(out, MotifPair{A: a, B: b, M: mp.M, Dist: c.d})
		used = append(used, a, b)
	}
	return out
}

// TestTopKPairsMatchesReference: the partial-selection implementation must
// reproduce the full sort exactly, including the retry path where the
// dedup skips most of the initial candidate pool (the adversarial profile
// below points every anchor at one valley).
func TestTopKPairsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 50 + rng.Intn(400)
		m := 8 + rng.Intn(32)
		mp := New(m, ExclusionZone(m, 4), n)
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.05 {
				continue // leave some slots empty
			}
			j := rng.Intn(n)
			if j == i {
				j = (i + 1) % n
			}
			d := rng.Float64() * 10
			if rng.Float64() < 0.3 {
				d = math.Floor(d) // force exact ties
			}
			mp.Dist[i] = d
			mp.Index[i] = j
		}
		for _, k := range []int{1, 3, 10, 64} {
			got := mp.TopKPairs(k)
			want := referenceTopKPairs(mp, k)
			if len(got) != len(want) {
				t.Fatalf("trial %d k=%d: %d pairs, want %d", trial, k, len(got), len(want))
			}
			for pi := range got {
				if got[pi] != want[pi] {
					t.Fatalf("trial %d k=%d pair %d: %v, want %v", trial, k, pi, got[pi], want[pi])
				}
			}
		}
	}
}

// TestTopKPairsAdversarialDedup: every anchor's nearest neighbor is inside
// one small region, so extraction skips almost all of the best candidates
// and the selection must grow its pool to stay exact.
func TestTopKPairsAdversarialDedup(t *testing.T) {
	n, m := 600, 16
	mp := New(m, ExclusionZone(m, 4), n)
	for i := 0; i < n; i++ {
		if i >= 295 && i <= 305 {
			continue
		}
		mp.Dist[i] = 1 + float64(i)*1e-4
		mp.Index[i] = 300 // all pairs collapse onto one used endpoint
	}
	// Two genuinely distinct pairs, far from the valley, with worse ranks.
	mp.Dist[50], mp.Index[50] = 90, 120
	mp.Dist[400], mp.Index[400] = 95, 450
	got := mp.TopKPairs(3)
	want := referenceTopKPairs(mp, 3)
	if len(got) != len(want) {
		t.Fatalf("%d pairs, want %d (%v vs %v)", len(got), len(want), got, want)
	}
	for pi := range got {
		if got[pi] != want[pi] {
			t.Fatalf("pair %d: %v, want %v", pi, got[pi], want[pi])
		}
	}
	if len(got) != 3 {
		t.Fatalf("adversarial profile yielded %d pairs, want 3", len(got))
	}
}
