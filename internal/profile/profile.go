// Package profile defines the matrix-profile data structures shared by
// STOMP, VALMOD and the baselines: the MatrixProfile itself (distance +
// index profile, demo Figure 1 a–c), exclusion zones for trivial matches,
// top-k motif-pair extraction and discord extraction.
package profile

import (
	"fmt"
	"math"
	"slices"
	"sort"
)

// DefaultExclusionFactor is the denominator of the trivial-match exclusion
// zone: offsets closer than ⌈m/4⌉ are never matched, the Matrix Profile I
// convention.
const DefaultExclusionFactor = 4

// ExclusionZone returns the trivial-match radius for subsequence length m:
// ⌈m/factor⌉, at least 1. A non-positive factor selects the default.
func ExclusionZone(m, factor int) int {
	if factor <= 0 {
		factor = DefaultExclusionFactor
	}
	z := (m + factor - 1) / factor
	if z < 1 {
		z = 1
	}
	return z
}

// MatrixProfile is the classic meta data series: for every subsequence
// offset, the z-normalized distance to its nearest non-trivial neighbor and
// that neighbor's offset.
type MatrixProfile struct {
	// M is the subsequence length the profile was computed at.
	M int
	// Exclusion is the trivial-match radius used.
	Exclusion int
	// Dist[i] is the distance from subsequence i to its nearest neighbor.
	Dist []float64
	// Index[i] is the offset of that nearest neighbor (-1 when none exists,
	// e.g. the series is too short to have any non-trivial pair).
	Index []int
}

// New returns a MatrixProfile with n slots initialized to +Inf / -1.
func New(m, exclusion, n int) *MatrixProfile {
	mp := &MatrixProfile{}
	mp.Reset(m, exclusion, n)
	return mp
}

// Reset reinitializes mp in place for (m, exclusion, n), reusing the
// backing arrays when they are large enough — the zero-alloc path for
// callers that recycle one scratch profile across lengths.
func (mp *MatrixProfile) Reset(m, exclusion, n int) {
	mp.M = m
	mp.Exclusion = exclusion
	if cap(mp.Dist) < n {
		mp.Dist = make([]float64, n)
		mp.Index = make([]int, n)
	}
	mp.Dist = mp.Dist[:n]
	mp.Index = mp.Index[:n]
	for i := range mp.Dist {
		mp.Dist[i] = math.Inf(1)
		mp.Index[i] = -1
	}
}

// Len returns the number of profile entries.
func (mp *MatrixProfile) Len() int { return len(mp.Dist) }

// Update lowers entry i to (d, j) when d improves on the current value.
func (mp *MatrixProfile) Update(i int, d float64, j int) {
	if d < mp.Dist[i] {
		mp.Dist[i] = d
		mp.Index[i] = j
	}
}

// Min returns the smallest profile value and its offset; (+Inf, -1) when the
// profile is empty or nothing was ever updated.
func (mp *MatrixProfile) Min() (d float64, i int) {
	d, i = math.Inf(1), -1
	for k, v := range mp.Dist {
		if v < d {
			d, i = v, k
		}
	}
	return d, i
}

// MotifPair is a pair of subsequences and their distance. By the paper's
// convention A is the left (smaller-offset) subsequence and B its best
// match.
type MotifPair struct {
	A, B int     // subsequence offsets, A < B
	M    int     // subsequence length
	Dist float64 // z-normalized Euclidean distance
}

// NormDist returns the length-normalized distance d·√(1/m) used to rank
// motif pairs of different lengths.
func (p MotifPair) NormDist() float64 {
	return p.Dist * math.Sqrt(1/float64(p.M))
}

func (p MotifPair) String() string {
	return fmt.Sprintf("motif{A=%d B=%d m=%d d=%.4f}", p.A, p.B, p.M, p.Dist)
}

// TopKScratch is the reusable working memory of TopKPairsInto: the
// bounded candidate heap, the used-offset list, and the output slice.
// A zero value is ready to use; one scratch serves any number of calls.
type TopKScratch struct {
	cands []pairCand
	used  []int
	out   []MotifPair
}

// TopKPairs extracts the k best non-overlapping motif pairs from the
// profile. Pairs are emitted in ascending distance order; once a pair is
// chosen, any candidate whose either endpoint lies within the exclusion zone
// of an already-chosen endpoint is skipped, the standard de-duplication that
// stops one deep valley from occupying all k slots. The returned slice is
// freshly allocated; hot callers use TopKPairsInto with a retained scratch.
func (mp *MatrixProfile) TopKPairs(k int) []MotifPair {
	var sc TopKScratch
	return mp.TopKPairsInto(k, &sc)
}

// TopKPairsInto is TopKPairs backed by caller-owned scratch: the returned
// slice aliases sc and is valid only until the next call with the same
// scratch — callers that retain results must copy them out.
func (mp *MatrixProfile) TopKPairsInto(k int, sc *TopKScratch) []MotifPair {
	if k <= 0 {
		return nil
	}
	// Partial selection instead of a full sort: VALMOD calls this once (or
	// more, in the recompute fixpoint) per length, and sorting all s
	// candidates was the dominant serial cost of a pruned length. The
	// de-duplication can in principle skip many candidates (every anchor
	// may point into one already-used valley), so selection is retried with
	// a growing candidate pool until either k pairs are extracted or the
	// pool provably covers every candidate — the output is identical to the
	// full sort.
	limit := 4*k + 16
	for {
		pairs, exhausted := mp.topKPairsLimited(k, limit, sc)
		if len(pairs) >= k || exhausted {
			return pairs
		}
		limit *= 4
	}
}

type pairCand struct {
	i int
	d float64
}

// candLess is the extraction order: ascending distance, offset-ascending on
// exact ties. It is a total order, so the selected prefix is unambiguous.
func candLess(a, b pairCand) bool {
	if a.d != b.d {
		return a.d < b.d
	}
	return a.i < b.i
}

// topKPairsLimited extracts up to k pairs considering only the `limit`
// best candidates under candLess. exhausted reports that every candidate
// was considered (the pool never overflowed), making the result final.
func (mp *MatrixProfile) topKPairsLimited(k, limit int, sc *TopKScratch) ([]MotifPair, bool) {
	// Max-heap (root = worst kept) of the `limit` best candidates.
	if cap(sc.cands) < limit {
		sc.cands = make([]pairCand, 0, limit+1)
	}
	cands := sc.cands[:0]
	exhausted := true
	for i, d := range mp.Dist {
		if mp.Index[i] < 0 || math.IsInf(d, 1) {
			continue
		}
		c := pairCand{i, d}
		if len(cands) < limit {
			cands = append(cands, c)
			if len(cands) == limit {
				for j := len(cands)/2 - 1; j >= 0; j-- {
					candSiftDown(cands, j)
				}
			}
			continue
		}
		exhausted = false
		if candLess(c, cands[0]) {
			cands[0] = c
			candSiftDown(cands, 0)
		}
	}
	sc.cands = cands
	// candLess is a strict total order (offsets are unique), so the
	// non-stable sort has exactly one possible output.
	slices.SortFunc(cands, func(a, b pairCand) int {
		if candLess(a, b) {
			return -1
		}
		return 1
	})

	out := sc.out[:0]
	used := sc.used[:0]
	zone := mp.Exclusion
	tooClose := func(x int) bool {
		for _, u := range used {
			if abs(x-u) < zone {
				return true
			}
		}
		return false
	}
	for _, c := range cands {
		if len(out) >= k {
			break
		}
		a, b := c.i, mp.Index[c.i]
		if a > b {
			a, b = b, a
		}
		if tooClose(a) || tooClose(b) {
			continue
		}
		out = append(out, MotifPair{A: a, B: b, M: mp.M, Dist: c.d})
		used = append(used, a, b)
	}
	sc.out, sc.used = out, used
	return out, exhausted
}

// candSiftDown restores the max-heap (worst candidate at the root) below i.
func candSiftDown(cands []pairCand, i int) {
	n := len(cands)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && candLess(cands[worst], cands[l]) {
			worst = l
		}
		if r < n && candLess(cands[worst], cands[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		cands[i], cands[worst] = cands[worst], cands[i]
		i = worst
	}
}

// Discord holds a discord (anomaly) candidate: the subsequence whose
// nearest-neighbor distance is largest.
type Discord struct {
	I    int
	Dist float64
}

// TopKDiscords returns the k subsequences with the largest nearest-neighbor
// distances, de-duplicated by the exclusion zone. Matrix profiles give
// discords for free (Matrix Profile I), and the suite exposes them because
// the demo positions VALMAP as a general analysis surface.
func (mp *MatrixProfile) TopKDiscords(k int) []Discord {
	type cand struct {
		i int
		d float64
	}
	cands := make([]cand, 0, len(mp.Dist))
	for i, d := range mp.Dist {
		if mp.Index[i] >= 0 && !math.IsInf(d, 1) {
			cands = append(cands, cand{i, d})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].d != cands[b].d {
			return cands[a].d > cands[b].d
		}
		return cands[a].i < cands[b].i
	})
	var out []Discord
	used := make([]int, 0, k)
	for _, c := range cands {
		if len(out) >= k {
			break
		}
		skip := false
		for _, u := range used {
			if abs(c.i-u) < mp.Exclusion {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		out = append(out, Discord{I: c.i, Dist: c.d})
		used = append(used, c.i)
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
