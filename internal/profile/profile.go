// Package profile defines the matrix-profile data structures shared by
// STOMP, VALMOD and the baselines: the MatrixProfile itself (distance +
// index profile, demo Figure 1 a–c), exclusion zones for trivial matches,
// top-k motif-pair extraction and discord extraction.
package profile

import (
	"fmt"
	"math"
	"sort"
)

// DefaultExclusionFactor is the denominator of the trivial-match exclusion
// zone: offsets closer than ⌈m/4⌉ are never matched, the Matrix Profile I
// convention.
const DefaultExclusionFactor = 4

// ExclusionZone returns the trivial-match radius for subsequence length m:
// ⌈m/factor⌉, at least 1. A non-positive factor selects the default.
func ExclusionZone(m, factor int) int {
	if factor <= 0 {
		factor = DefaultExclusionFactor
	}
	z := (m + factor - 1) / factor
	if z < 1 {
		z = 1
	}
	return z
}

// MatrixProfile is the classic meta data series: for every subsequence
// offset, the z-normalized distance to its nearest non-trivial neighbor and
// that neighbor's offset.
type MatrixProfile struct {
	// M is the subsequence length the profile was computed at.
	M int
	// Exclusion is the trivial-match radius used.
	Exclusion int
	// Dist[i] is the distance from subsequence i to its nearest neighbor.
	Dist []float64
	// Index[i] is the offset of that nearest neighbor (-1 when none exists,
	// e.g. the series is too short to have any non-trivial pair).
	Index []int
}

// New returns a MatrixProfile with n slots initialized to +Inf / -1.
func New(m, exclusion, n int) *MatrixProfile {
	mp := &MatrixProfile{
		M:         m,
		Exclusion: exclusion,
		Dist:      make([]float64, n),
		Index:     make([]int, n),
	}
	for i := range mp.Dist {
		mp.Dist[i] = math.Inf(1)
		mp.Index[i] = -1
	}
	return mp
}

// Len returns the number of profile entries.
func (mp *MatrixProfile) Len() int { return len(mp.Dist) }

// Update lowers entry i to (d, j) when d improves on the current value.
func (mp *MatrixProfile) Update(i int, d float64, j int) {
	if d < mp.Dist[i] {
		mp.Dist[i] = d
		mp.Index[i] = j
	}
}

// Min returns the smallest profile value and its offset; (+Inf, -1) when the
// profile is empty or nothing was ever updated.
func (mp *MatrixProfile) Min() (d float64, i int) {
	d, i = math.Inf(1), -1
	for k, v := range mp.Dist {
		if v < d {
			d, i = v, k
		}
	}
	return d, i
}

// MotifPair is a pair of subsequences and their distance. By the paper's
// convention A is the left (smaller-offset) subsequence and B its best
// match.
type MotifPair struct {
	A, B int     // subsequence offsets, A < B
	M    int     // subsequence length
	Dist float64 // z-normalized Euclidean distance
}

// NormDist returns the length-normalized distance d·√(1/m) used to rank
// motif pairs of different lengths.
func (p MotifPair) NormDist() float64 {
	return p.Dist * math.Sqrt(1/float64(p.M))
}

func (p MotifPair) String() string {
	return fmt.Sprintf("motif{A=%d B=%d m=%d d=%.4f}", p.A, p.B, p.M, p.Dist)
}

// TopKPairs extracts the k best non-overlapping motif pairs from the
// profile. Pairs are emitted in ascending distance order; once a pair is
// chosen, any candidate whose either endpoint lies within the exclusion zone
// of an already-chosen endpoint is skipped, the standard de-duplication that
// stops one deep valley from occupying all k slots.
func (mp *MatrixProfile) TopKPairs(k int) []MotifPair {
	type cand struct {
		i int
		d float64
	}
	cands := make([]cand, 0, len(mp.Dist))
	for i, d := range mp.Dist {
		if mp.Index[i] >= 0 && !math.IsInf(d, 1) {
			cands = append(cands, cand{i, d})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].d != cands[b].d {
			return cands[a].d < cands[b].d
		}
		return cands[a].i < cands[b].i
	})
	var out []MotifPair
	used := make([]int, 0, 2*k)
	zone := mp.Exclusion
	tooClose := func(x int) bool {
		for _, u := range used {
			if abs(x-u) < zone {
				return true
			}
		}
		return false
	}
	for _, c := range cands {
		if len(out) >= k {
			break
		}
		a, b := c.i, mp.Index[c.i]
		if a > b {
			a, b = b, a
		}
		if tooClose(a) || tooClose(b) {
			continue
		}
		out = append(out, MotifPair{A: a, B: b, M: mp.M, Dist: c.d})
		used = append(used, a, b)
	}
	return out
}

// Discord holds a discord (anomaly) candidate: the subsequence whose
// nearest-neighbor distance is largest.
type Discord struct {
	I    int
	Dist float64
}

// TopKDiscords returns the k subsequences with the largest nearest-neighbor
// distances, de-duplicated by the exclusion zone. Matrix profiles give
// discords for free (Matrix Profile I), and the suite exposes them because
// the demo positions VALMAP as a general analysis surface.
func (mp *MatrixProfile) TopKDiscords(k int) []Discord {
	type cand struct {
		i int
		d float64
	}
	cands := make([]cand, 0, len(mp.Dist))
	for i, d := range mp.Dist {
		if mp.Index[i] >= 0 && !math.IsInf(d, 1) {
			cands = append(cands, cand{i, d})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].d != cands[b].d {
			return cands[a].d > cands[b].d
		}
		return cands[a].i < cands[b].i
	})
	var out []Discord
	used := make([]int, 0, k)
	for _, c := range cands {
		if len(out) >= k {
			break
		}
		skip := false
		for _, u := range used {
			if abs(c.i-u) < mp.Exclusion {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		out = append(out, Discord{I: c.i, Dist: c.d})
		used = append(used, c.i)
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
