package motifset

import (
	"math"
	"math/rand"
	"testing"

	"github.com/seriesmining/valmod/internal/profile"
)

// plantedSeries embeds reps copies of a sine pattern of length m into noise,
// spaced far apart, returning the series and the planted offsets.
func plantedSeries(rng *rand.Rand, n, m, reps int) ([]float64, []int) {
	x := make([]float64, n)
	v := 0.0
	for i := range x {
		v += rng.NormFloat64()
		x[i] = v
	}
	offsets := make([]int, reps)
	gap := n / (reps + 1)
	for r := 0; r < reps; r++ {
		off := gap * (r + 1)
		offsets[r] = off
		for i := 0; i < m; i++ {
			x[off+i] = math.Sin(float64(i)*0.35)*12 + rng.NormFloat64()*0.02
		}
	}
	return x, offsets
}

func TestExpandFindsAllOccurrences(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, offs := plantedSeries(rng, 1200, 40, 4)
	pair := profile.MotifPair{A: offs[0], B: offs[1], M: 40, Dist: 0.3}
	set, err := Expand(x, pair, 2.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if set.Size() < 4 {
		t.Fatalf("found %d members, want >= 4 (%v)", set.Size(), set.Offsets())
	}
	for _, want := range offs {
		found := false
		for _, got := range set.Offsets() {
			if abs(got-want) <= 2 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("occurrence at %d not found; members %v", want, set.Offsets())
		}
	}
}

func TestExpandMembersSortedAndDeduped(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, offs := plantedSeries(rng, 800, 32, 3)
	pair := profile.MotifPair{A: offs[0], B: offs[1], M: 32, Dist: 0.3}
	set, err := Expand(x, pair, 0, 0) // default radius
	if err != nil {
		t.Fatal(err)
	}
	excl := profile.ExclusionZone(32, 0)
	for i := 1; i < set.Size(); i++ {
		if set.Members[i].Dist < set.Members[i-1].Dist {
			t.Fatal("members not sorted by distance")
		}
	}
	for i := 0; i < set.Size(); i++ {
		for j := i + 1; j < set.Size(); j++ {
			if abs(set.Members[i].I-set.Members[j].I) < excl {
				t.Fatalf("members %d and %d within exclusion zone", set.Members[i].I, set.Members[j].I)
			}
		}
	}
	// Pair members themselves (distance 0 to self) must be present.
	found := 0
	for _, m := range set.Offsets() {
		if m == pair.A || m == pair.B {
			found++
		}
	}
	if found != 2 {
		t.Errorf("pair members missing from set: %v", set.Offsets())
	}
}

func TestExpandRadiusLimits(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, offs := plantedSeries(rng, 800, 32, 3)
	pair := profile.MotifPair{A: offs[0], B: offs[1], M: 32, Dist: 0.3}
	// A tiny radius keeps only the pair itself.
	set, err := Expand(x, pair, 1e-9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if set.Size() > 2 {
		t.Errorf("tiny radius admitted %d members", set.Size())
	}
}

func TestExpandValidation(t *testing.T) {
	x := make([]float64, 100)
	if _, err := Expand(x, profile.MotifPair{A: 0, B: 90, M: 20}, 1, 0); err == nil {
		t.Error("B+M beyond series should fail")
	}
	if _, err := Expand(x, profile.MotifPair{A: -1, B: 10, M: 20}, 1, 0); err == nil {
		t.Error("negative offset should fail")
	}
	if _, err := Expand(x, profile.MotifPair{A: 0, B: 10, M: 1}, 1, 0); err == nil {
		t.Error("m=1 should fail")
	}
}

func TestRadiusFloor(t *testing.T) {
	p := profile.MotifPair{A: 0, B: 10, M: 50, Dist: 0}
	if r := Radius(p, 2); r <= 0 {
		t.Errorf("zero-distance pair must still get a positive radius, got %g", r)
	}
	p.Dist = 3
	if r := Radius(p, 2); math.Abs(r-6) > 1e-12 {
		t.Errorf("Radius = %g, want 6", r)
	}
}
