// Package motifset expands a motif pair into its motif set: every
// subsequence of the series within a radius of either pair member (demo §3,
// third bullet: "expand a selected motif pair to the relative Motif Set,
// containing all the similar subsequences of the pair in the data").
package motifset

import (
	"errors"
	"math"
	"sort"

	"github.com/seriesmining/valmod/internal/mass"
	"github.com/seriesmining/valmod/internal/profile"
)

// DefaultRadiusFactor multiplies the pair distance to form the default
// expansion radius, the usual "2d" rule for range motifs.
const DefaultRadiusFactor = 2.0

// ErrBadPair is returned when the pair does not fit the series.
var ErrBadPair = errors.New("motifset: pair out of range")

// Member is one subsequence of a motif set with its distance to the closest
// pair member (0 for the pair members themselves).
type Member struct {
	I    int
	Dist float64
}

// MotifSet is a pair expanded to all its occurrences.
type MotifSet struct {
	Pair    profile.MotifPair
	Radius  float64
	Members []Member // ascending distance; the two pair members come first
}

// Radius returns the default expansion radius for a pair: factor×dist with
// a small floor so that near-identical pairs (d≈0) still capture exact
// repeats.
func Radius(p profile.MotifPair, factor float64) float64 {
	if factor <= 0 {
		factor = DefaultRadiusFactor
	}
	r := factor * p.Dist
	floor := 0.02 * math.Sqrt(2*float64(p.M))
	if r < floor {
		r = floor
	}
	return r
}

// Expand returns the motif set of pair within radius (≤ 0 selects
// Radius(pair, DefaultRadiusFactor)), de-duplicating occurrences with the
// exclusion zone ⌈m/exclFactor⌉. Occurrences are found with two MASS
// distance profiles (one per pair member) and admitted by their distance to
// the closer member.
func Expand(t []float64, pair profile.MotifPair, radius float64, exclFactor int) (*MotifSet, error) {
	m := pair.M
	if m < 2 || pair.A < 0 || pair.B < 0 || pair.A+m > len(t) || pair.B+m > len(t) {
		return nil, ErrBadPair
	}
	if radius <= 0 {
		radius = Radius(pair, DefaultRadiusFactor)
	}
	excl := profile.ExclusionZone(m, exclFactor)
	dA := mass.DistanceProfile(t[pair.A:pair.A+m], t)
	dB := mass.DistanceProfile(t[pair.B:pair.B+m], t)

	type cand struct {
		i int
		d float64
	}
	cands := make([]cand, 0, 16)
	for j := range dA {
		d := math.Min(dA[j], dB[j])
		if d <= radius {
			cands = append(cands, cand{j, d})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].d != cands[b].d {
			return cands[a].d < cands[b].d
		}
		return cands[a].i < cands[b].i
	})

	set := &MotifSet{Pair: pair, Radius: radius}
	var used []int
	for _, c := range cands {
		ok := true
		for _, u := range used {
			if abs(c.i-u) < excl {
				ok = false
				break
			}
		}
		if ok {
			set.Members = append(set.Members, Member{I: c.i, Dist: c.d})
			used = append(used, c.i)
		}
	}
	return set, nil
}

// Size returns the number of occurrences (including the pair members).
func (s *MotifSet) Size() int { return len(s.Members) }

// Offsets returns the member offsets in ascending distance order.
func (s *MotifSet) Offsets() []int {
	out := make([]int, len(s.Members))
	for i, m := range s.Members {
		out[i] = m.I
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
