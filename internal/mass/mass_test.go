package mass

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/seriesmining/valmod/internal/series"
)

func randSlice(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()*5 + 2
	}
	return x
}

func TestDistanceProfileMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range []struct{ m, n int }{{2, 10}, {8, 64}, {16, 100}, {50, 500}, {100, 100}} {
		q := randSlice(rng, c.m)
		tt := randSlice(rng, c.n)
		got := DistanceProfile(q, tt)
		want := BruteDistanceProfile(q, tt)
		if len(got) != len(want) {
			t.Fatalf("m=%d n=%d: len %d want %d", c.m, c.n, len(got), len(want))
		}
		for j := range got {
			if math.Abs(got[j]-want[j]) > 1e-7*(1+want[j]) {
				t.Errorf("m=%d n=%d j=%d: %g want %g", c.m, c.n, j, got[j], want[j])
				break
			}
		}
	}
}

func TestDistanceProfileProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 10
		m := rng.Intn(n-1) + 2
		if m > n {
			m = n
		}
		q := randSlice(rng, m)
		tt := randSlice(rng, n)
		got := DistanceProfile(q, tt)
		want := BruteDistanceProfile(q, tt)
		for j := range got {
			// Compare squared distances: d = √(2m(1−ρ)) turns an O(ε)
			// dot-product discrepancy into an O(√ε) distance discrepancy
			// near-perfect matches (ρ→1), so the distance itself has no
			// uniform relative tolerance; d² is linear in ρ and does.
			g2, w2 := got[j]*got[j], want[j]*want[j]
			if math.Abs(g2-w2) > 1e-6*(1+w2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDistanceProfileSelfMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tt := randSlice(rng, 200)
	m := 20
	q := tt[37 : 37+m]
	d := DistanceProfile(q, tt)
	if d[37] > 1e-6 {
		t.Errorf("self match distance %g, want ~0", d[37])
	}
}

func TestDistanceProfileDegenerate(t *testing.T) {
	if DistanceProfile(nil, []float64{1, 2}) != nil {
		t.Error("empty query should return nil")
	}
	if DistanceProfile([]float64{1, 2, 3}, []float64{1, 2}) != nil {
		t.Error("long query should return nil")
	}
}

func TestDistanceProfileConstantRegions(t *testing.T) {
	// Series with a flat region: distances against the flat windows must
	// follow the √(2m) convention, never NaN.
	tt := make([]float64, 100)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		tt[i] = rng.NormFloat64()
	}
	for i := 50; i < 100; i++ {
		tt[i] = 4.2
	}
	m := 10
	q := tt[0:m]
	d := DistanceProfile(q, tt)
	for j, v := range d {
		if math.IsNaN(v) {
			t.Fatalf("NaN at %d", j)
		}
	}
	want := math.Sqrt(2 * float64(m))
	if math.Abs(d[70]-want) > 1e-9 {
		t.Errorf("flat-window distance %g, want %g", d[70], want)
	}
}

func TestSlidingDotProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tt := randSlice(rng, 150)
	m := 12
	q := tt[5 : 5+m]
	qt, dist := SlidingDotProfile(q, tt)
	if len(qt) != len(dist) || len(qt) != len(tt)-m+1 {
		t.Fatalf("lengths: qt=%d dist=%d", len(qt), len(dist))
	}
	for j := 0; j < len(qt); j += 13 {
		if want := series.Dot(q, tt[j:j+m]); math.Abs(qt[j]-want) > 1e-7*(1+math.Abs(want)) {
			t.Errorf("qt[%d] = %g want %g", j, qt[j], want)
		}
	}
}

func TestDistanceProfilePrecomputedMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tt := randSlice(rng, 300)
	m := 25
	means, stds := series.SlidingMeanStd(tt, m)
	q := tt[100 : 100+m]
	want := DistanceProfile(q, tt)
	buf := make([]float64, 0, len(want))
	got := DistanceProfilePrecomputed(q, tt, means, stds, buf)
	for j := range want {
		if math.Abs(got[j]-want[j]) > 1e-12 {
			t.Fatalf("j=%d: %g want %g", j, got[j], want[j])
		}
	}
	// Reuses the provided buffer when capacity allows.
	if cap(buf) > 0 && len(got) > 0 && &got[0] != &buf[:1][0] {
		t.Error("expected dst buffer reuse")
	}
}

func BenchmarkMASS(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	tt := randSlice(rng, 1<<14)
	q := tt[100:356]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DistanceProfile(q, tt)
	}
}

func BenchmarkBruteProfile(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	tt := randSlice(rng, 1<<12)
	q := tt[100:356]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BruteDistanceProfile(q, tt)
	}
}
