// Package mass implements MASS (Mueen's Algorithm for Similarity Search),
// the O(n log n) computation of the z-normalized Euclidean distance profile
// of a query against every subsequence of a data series. VALMOD uses it to
// recompute individual distance profiles when the lower-bound pruning cannot
// certify an anchor (demo §2: "we recompute only the distance profiles which
// have the maxLB smaller than the smallest mindist found").
package mass

import (
	"github.com/seriesmining/valmod/internal/fft"
	"github.com/seriesmining/valmod/internal/series"
)

// DistanceProfile returns d[j] = zdist(q, t[j:j+len(q)]) for every valid j.
// Returns nil when len(q) == 0 or len(q) > len(t).
func DistanceProfile(q, t []float64) []float64 {
	m := len(q)
	if m == 0 || m > len(t) {
		return nil
	}
	qt := fft.SlidingDotProducts(q, t)
	muQ, sdQ := series.MeanStdTwoPass(q)
	means, stds := series.SlidingMeanStd(t, m)
	out := make([]float64, len(qt))
	fm := float64(m)
	for j := range qt {
		out[j] = series.DistFromDot(qt[j], fm, muQ, sdQ, means[j], stds[j])
	}
	return out
}

// DistanceProfilePrecomputed is DistanceProfile with the series-side sliding
// statistics already available (the VALMOD inner loop computes one profile
// per anchor at a fixed length, so means/stds are shared across calls).
// st must be the Stats of t, and means/stds the sliding moments of t at
// window m. The returned slice is written into dst when cap(dst) suffices.
func DistanceProfilePrecomputed(q, t []float64, means, stds []float64, dst []float64) []float64 {
	m := len(q)
	if m == 0 || m > len(t) {
		return nil
	}
	qt := fft.SlidingDotProducts(q, t)
	muQ, sdQ := series.MeanStdTwoPass(q)
	if cap(dst) >= len(qt) {
		dst = dst[:len(qt)]
	} else {
		dst = make([]float64, len(qt))
	}
	fm := float64(m)
	for j := range qt {
		dst[j] = series.DistFromDot(qt[j], fm, muQ, sdQ, means[j], stds[j])
	}
	return dst
}

// SlidingDotProfile returns the raw sliding dot products of q against t,
// alongside the distance profile. VALMOD stores the dot products of kept
// entries so they can be extended in O(1) per length.
func SlidingDotProfile(q, t []float64) (qt, dist []float64) {
	m := len(q)
	if m == 0 || m > len(t) {
		return nil, nil
	}
	qt = fft.SlidingDotProducts(q, t)
	muQ, sdQ := series.MeanStdTwoPass(q)
	means, stds := series.SlidingMeanStd(t, m)
	dist = make([]float64, len(qt))
	fm := float64(m)
	for j := range qt {
		dist[j] = series.DistFromDot(qt[j], fm, muQ, sdQ, means[j], stds[j])
	}
	return qt, dist
}

// BruteDistanceProfile is the O(n·m) reference implementation used in tests
// and in the MASS-vs-naive ablation benchmark.
func BruteDistanceProfile(q, t []float64) []float64 {
	m := len(q)
	if m == 0 || m > len(t) {
		return nil
	}
	out := make([]float64, len(t)-m+1)
	for j := range out {
		out[j] = series.ZNormDist(q, t[j:j+m])
	}
	return out
}
