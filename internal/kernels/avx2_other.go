//go:build !amd64

package kernels

// Non-amd64 builds never select the AVX2 tier (hasAVX2 is false), but the
// dispatchers still reference these names; delegate to the ILP bodies.

func rowNextAVX2(row, t []float64, i, l, s int) {
	rowNextILP(row, t, i, l, s)
}

func argmaxCorrRangeAVX2(row, means, invs []float64, j0, j1 int, invFl, muA, invA float64, bestCorr float64, bestJ int) (float64, int) {
	return argmaxCorrRangeILP(row, means, invs, j0, j1, invFl, muA, invA, bestCorr, bestJ)
}

func extendRowAVX2(row, t []float64, i, cur, l int) {
	extendRowILP(row, t, i, cur, l)
}

func colScanAVX2(col, means, invs []float64, iEnd int, invFl, muJ, invJ float64, corr []float64, idx []int32, j int32, bestCorr float64, bestIdx int32) (float64, int32) {
	return colScanILP(col, means, invs, iEnd, invFl, muJ, invJ, corr, idx, j, bestCorr, bestIdx)
}

func diagScanAVX2(t, head, means, invs []float64, k0, k1, l, s int, corr []float64, idx []int32) {
	diagScanILP(t, head, means, invs, k0, k1, l, s, corr, idx)
}

func diagScan32AVX2(t, head []float32, means, invs []float64, k0, k1, l, s int, corr []float64, idx []int32) {
	diagScan32ILP(t, head, means, invs, k0, k1, l, s, corr, idx)
}
