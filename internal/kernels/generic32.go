package kernels

// The generic tier of the float32 carry kernels (the PR 8 bodies).

// rowNext32Generic is RowNext32 as a plain descending loop.
func rowNext32Generic(row, t []float32, i, l, s int) {
	if s < 2 {
		return
	}
	tail := float64(t[i+l-1])
	head := float64(t[i-1])
	a := t[l : l+s-1]
	b := t[0 : s-1]
	r := row[0:s]
	for p := s - 2; p >= 0; p-- {
		r[p+1] = float32(float64(r[p]) + tail*float64(a[p]) - head*float64(b[p]))
	}
}

// extendRow32Generic is ExtendRow32 with one scalar chain per cell.
func extendRow32Generic(row, t []float32, i, cur, l int) {
	n := len(t)
	if cur >= l {
		return
	}
	q := t[i+cur : i+l]
	full := n - l + 1
	if full < 0 {
		full = 0
	}
	for j := 0; j < full; j++ {
		w := t[j+cur : j+l]
		v := float64(row[j])
		for x, qv := range q {
			v += float64(qv) * float64(w[x])
		}
		row[j] = float32(v)
	}
	extendRow32Ragged(row, t, full, cur, n, q)
}

// extendRow32Ragged finishes the cells [full, n−cur) whose step ranges
// clip at the series end — shared by every portable tier.
func extendRow32Ragged(row, t []float32, full, cur, n int, q []float32) {
	for j := full; j < n-cur; j++ {
		w := t[j+cur : n]
		v := float64(row[j])
		for x, wv := range w {
			v += float64(q[x]) * float64(wv)
		}
		row[j] = float32(v)
	}
}

// diagScan32Generic is DiagScan32 with the 4-diagonal interleave.
func diagScan32Generic(t, head []float32, means, invs []float64, k0, k1, l, s int, corr []float64, idx []int32) {
	invFl := 1 / float64(l)
	k := k0
	for ; k+4 <= k1; k += 4 {
		diagQuad32(t, head, means, invs, k, l, s, invFl, corr, idx)
	}
	for ; k < k1; k++ {
		diagOneTail32(t, means, invs, headCorr32(head, means, invs, k, invFl, corr, idx), k, l, s, invFl, corr, idx, 0)
	}
}

// headCorr32 applies diagonal k's head cell (i = 0 row) and returns the
// widened chain value the tail resumes from.
func headCorr32(head []float32, means, invs []float64, k int, invFl float64, corr []float64, idx []int32) float64 {
	qt := float64(head[k])
	c := (qt*invFl - means[0]*means[k]) * invs[0] * invs[k]
	update(corr, idx, 0, c, int32(k))
	update(corr, idx, k, c, 0)
	return qt
}

// diagQuad32 interleaves diagonals k…k+3, mirroring diagQuad with
// float32 loads widened at use.
func diagQuad32(t, head []float32, means, invs []float64, k, l, s int, invFl float64, corr []float64, idx []int32) {
	qt0, qt1, qt2, qt3 := float64(head[k]), float64(head[k+1]), float64(head[k+2]), float64(head[k+3])
	c0 := (qt0*invFl - means[0]*means[k]) * invs[0] * invs[k]
	c1 := (qt1*invFl - means[0]*means[k+1]) * invs[0] * invs[k+1]
	c2 := (qt2*invFl - means[0]*means[k+2]) * invs[0] * invs[k+2]
	c3 := (qt3*invFl - means[0]*means[k+3]) * invs[0] * invs[k+3]
	bc, bj := c0, int32(k)
	if c1 > bc {
		bc, bj = c1, int32(k+1)
	}
	if c2 > bc {
		bc, bj = c2, int32(k+2)
	}
	if c3 > bc {
		bc, bj = c3, int32(k+3)
	}
	update(corr, idx, 0, bc, bj)
	update(corr, idx, k, c0, 0)
	update(corr, idx, k+1, c1, 0)
	update(corr, idx, k+2, c2, 0)
	update(corr, idx, k+3, c3, 0)

	m := s - k - 4
	{
		w := t[k+l-1 : s+l-1]
		u := t[k-1 : s-1]
		u = u[:len(w)]
		ta := t[l-1 : l-1+s-k]
		ta = ta[:len(w)]
		tb := t[0 : s-k]
		tb = tb[:len(w)]
		mi := means[0 : s-k]
		mi = mi[:len(w)]
		vi := invs[0 : s-k]
		vi = vi[:len(w)]
		mj := means[k:s]
		mj = mj[:len(w)]
		vj := invs[k:s]
		vj = vj[:len(w)]
		ci := corr[0 : s-k]
		ci = ci[:len(w)]
		ii := idx[0 : s-k]
		ii = ii[:len(w)]
		cj := corr[k:s]
		cj = cj[:len(w)]
		ij := idx[k:s]
		ij = ij[:len(w)]
		for i := 1; i+4 <= len(w); i++ {
			ha, hb := float64(ta[i]), float64(tb[i-1])
			qt0 += ha*float64(w[i]) - hb*float64(u[i])
			qt1 += ha*float64(w[i+1]) - hb*float64(u[i+1])
			qt2 += ha*float64(w[i+2]) - hb*float64(u[i+2])
			qt3 += ha*float64(w[i+3]) - hb*float64(u[i+3])
			m0, v0 := mi[i], vi[i]
			c0 := (qt0*invFl - m0*mj[i]) * v0 * vj[i]
			c1 := (qt1*invFl - m0*mj[i+1]) * v0 * vj[i+1]
			c2 := (qt2*invFl - m0*mj[i+2]) * v0 * vj[i+2]
			c3 := (qt3*invFl - m0*mj[i+3]) * v0 * vj[i+3]
			j := int32(i + k)
			if c0 >= ci[i] {
				if c0 > ci[i] || j < ii[i] {
					ci[i], ii[i] = c0, j
				}
			}
			if c1 >= ci[i] {
				if c1 > ci[i] || j+1 < ii[i] {
					ci[i], ii[i] = c1, j+1
				}
			}
			if c2 >= ci[i] {
				if c2 > ci[i] || j+2 < ii[i] {
					ci[i], ii[i] = c2, j+2
				}
			}
			if c3 >= ci[i] {
				if c3 > ci[i] || j+3 < ii[i] {
					ci[i], ii[i] = c3, j+3
				}
			}
			a := int32(i)
			if c0 >= cj[i] {
				if c0 > cj[i] || a < ij[i] {
					cj[i], ij[i] = c0, a
				}
			}
			if c1 >= cj[i+1] {
				if c1 > cj[i+1] || a < ij[i+1] {
					cj[i+1], ij[i+1] = c1, a
				}
			}
			if c2 >= cj[i+2] {
				if c2 > cj[i+2] || a < ij[i+2] {
					cj[i+2], ij[i+2] = c2, a
				}
			}
			if c3 >= cj[i+3] {
				if c3 > cj[i+3] || a < ij[i+3] {
					cj[i+3], ij[i+3] = c3, a
				}
			}
		}
	}

	if m < 0 {
		m = 0
	}
	diagOneTail32(t, means, invs, qt0, k, l, s, invFl, corr, idx, m)
	diagOneTail32(t, means, invs, qt1, k+1, l, s, invFl, corr, idx, m)
	diagOneTail32(t, means, invs, qt2, k+2, l, s, invFl, corr, idx, m)
}

// diagOneTail32 finishes diagonal k from cell i0+1 onward, given qt = the
// widened chain value at cell i0 (whose compare has already been applied).
func diagOneTail32(t []float32, means, invs []float64, qt float64, k, l, s int, invFl float64, corr []float64, idx []int32, i0 int) {
	w := t[k+l-1 : s+l-1]
	u := t[k-1 : s-1]
	u = u[:len(w)]
	ta := t[l-1 : l-1+s-k]
	ta = ta[:len(w)]
	tb := t[0 : s-k]
	tb = tb[:len(w)]
	mi := means[0 : s-k]
	mi = mi[:len(w)]
	vi := invs[0 : s-k]
	vi = vi[:len(w)]
	mj := means[k:s]
	mj = mj[:len(w)]
	vj := invs[k:s]
	vj = vj[:len(w)]
	ci := corr[0 : s-k]
	ci = ci[:len(w)]
	ii := idx[0 : s-k]
	ii = ii[:len(w)]
	cj := corr[k:s]
	cj = cj[:len(w)]
	ij := idx[k:s]
	ij = ij[:len(w)]
	for i := i0 + 1; i < len(w); i++ {
		qt += float64(ta[i])*float64(w[i]) - float64(tb[i-1])*float64(u[i])
		c := (qt*invFl - mi[i]*mj[i]) * vi[i] * vj[i]
		j := int32(i + k)
		if c >= ci[i] {
			if c > ci[i] || j < ii[i] {
				ci[i], ii[i] = c, j
			}
		}
		a := int32(i)
		if c >= cj[i] {
			if c > cj[i] || a < ij[i] {
				cj[i], ij[i] = c, a
			}
		}
	}
}
