//go:build amd64

package kernels

// cpuid executes the CPUID instruction for (leaf, subleaf).
func cpuid(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the extended control register that reports which
// vector register state the OS saves on context switch.
func xgetbv0() (eax, edx uint32)

// hasAVX2 reports whether this CPU and OS support AVX2: the CPU must
// advertise AVX (leaf 1 ECX bit 28) and AVX2 (leaf 7 EBX bit 5), and the
// OS must save XMM+YMM state (OSXSAVE set, XCR0 bits 1–2).
var hasAVX2 = detectAVX2()

func detectAVX2() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	xcr0, _ := xgetbv0()
	if xcr0&0x6 != 0x6 { // XMM (bit 1) and YMM (bit 2) state enabled
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}
