package kernels

// The ILP tier of the float32 carry kernels: the same restructurings as
// ilp.go — wider interleaves, independent chains — with loads widened at
// use and one float64→float32 rounding per store, exactly as the generic
// bodies round.

// rowNext32ILP is rowNext32Generic with a 4-way unroll (the generic body
// is not unrolled at all). Each output cell depends only on the
// pre-update value of its left neighbor, so the four lanes of a group are
// independent; descending group order keeps later groups reading cells no
// earlier group wrote.
func rowNext32ILP(row, t []float32, i, l, s int) {
	if s < 2 {
		return
	}
	tail := float64(t[i+l-1])
	head := float64(t[i-1])
	a := t[l : l+s-1]
	b := t[0 : s-1]
	r := row[0:s]
	p := s - 2
	for ; p >= 3; p -= 4 {
		r0 := float32(float64(r[p]) + tail*float64(a[p]) - head*float64(b[p]))
		r1 := float32(float64(r[p-1]) + tail*float64(a[p-1]) - head*float64(b[p-1]))
		r2 := float32(float64(r[p-2]) + tail*float64(a[p-2]) - head*float64(b[p-2]))
		r3 := float32(float64(r[p-3]) + tail*float64(a[p-3]) - head*float64(b[p-3]))
		r[p+1] = r0
		r[p] = r1
		r[p-1] = r2
		r[p-2] = r3
	}
	for ; p >= 0; p-- {
		r[p+1] = float32(float64(r[p]) + tail*float64(a[p]) - head*float64(b[p]))
	}
}

// extendRow32ILP interleaves the per-cell float64 accumulation chains of
// eight adjacent cells; each cell still accumulates its steps in
// ascending order and rounds once at the store, so every chain is
// bit-identical to the generic body's. Eight chains (vs the four the
// float64 body uses) pay for the widening converts: each chain issues a
// convert per step, and the deeper interleave keeps the convert unit's
// latency off the critical path.
func extendRow32ILP(row, t []float32, i, cur, l int) {
	n := len(t)
	if cur >= l {
		return
	}
	q := t[i+cur : i+l]
	full := n - l + 1
	if full < 0 {
		full = 0
	}
	j := 0
	for ; j+8 <= full; j += 8 {
		base := t[j+cur:] // base[x+d] = t[(j+d)+cur+x], cell j+d's step x
		v0 := float64(row[j])
		v1 := float64(row[j+1])
		v2 := float64(row[j+2])
		v3 := float64(row[j+3])
		v4 := float64(row[j+4])
		v5 := float64(row[j+5])
		v6 := float64(row[j+6])
		v7 := float64(row[j+7])
		for x, qv := range q {
			qw := float64(qv)
			v0 += qw * float64(base[x])
			v1 += qw * float64(base[x+1])
			v2 += qw * float64(base[x+2])
			v3 += qw * float64(base[x+3])
			v4 += qw * float64(base[x+4])
			v5 += qw * float64(base[x+5])
			v6 += qw * float64(base[x+6])
			v7 += qw * float64(base[x+7])
		}
		row[j] = float32(v0)
		row[j+1] = float32(v1)
		row[j+2] = float32(v2)
		row[j+3] = float32(v3)
		row[j+4] = float32(v4)
		row[j+5] = float32(v5)
		row[j+6] = float32(v6)
		row[j+7] = float32(v7)
	}
	for ; j < full; j++ {
		w := t[j+cur : j+l]
		v := float64(row[j])
		for x, qv := range q {
			v += float64(qv) * float64(w[x])
		}
		row[j] = float32(v)
	}
	extendRow32Ragged(row, t, full, cur, n, q)
}

// diagScan32ILP delegates to the generic four-chain interleave. An
// eight-chain variant mirroring diagOct was measured ~10% SLOWER than the
// quad here: every float32 load costs a widening convert, so eight chains
// double the live values per iteration past what the register file holds
// and the spills eat the interleave's gain. The float64 oct keeps its win
// because its loads need no converts.
func diagScan32ILP(t, head []float32, means, invs []float64, k0, k1, l, s int, corr []float64, idx []int32) {
	diagScan32Generic(t, head, means, invs, k0, k1, l, s, corr, idx)
}
