//go:build amd64

package kernels

// The AVX2 dispatch tier, amd64 side: thin Go orchestration around the
// assembly routines in kernels_amd64.s. Division of labor:
//
//   - Pure arithmetic (RowNext, ExtendRow, the correlation sweeps) runs
//     entirely in four-lane assembly; remainders shorter than a vector
//     run the identical scalar expressions here.
//   - Winner selection stays in Go. The argmax sweep returns only the
//     maximum correlation; if it beats the running best, a scalar re-scan
//     recomputes the identical per-lane expression and keeps the first
//     cell comparing equal — the cell the sequential scan would keep.
//   - The diagonal stepper uses a stop protocol: assembly advances the
//     four interleaved chains cell by cell and returns at the first cell
//     where any lane's correlation reaches either endpoint's current
//     winner (a conservative superset of the cells that actually update,
//     since slot values only ever grow); Go applies the exact sequential
//     compare-update there and re-enters at the next cell. The assembly
//     never writes winner state, so the total order is enforced in
//     exactly one place.
//
// None of the assembly uses FMA: fused multiply-adds round differently
// from the separate multiply and add every other tier performs, and
// bit-identity across tiers is a hard contract.

// rowNextBlocks processes p = hi … lo (inclusive, descending, hi−lo+1 a
// multiple of 4): r[p+1] = r[p] + tail·a[p] − head·b[p], four lanes at a
// time, all group loads before group stores.
//
//go:noescape
func rowNextBlocks(r, a, b *float64, tail, head float64, lo, hi int)

// axpyBlocks adds a·x[j] to dst[j] for j ∈ [0, n), n a multiple of 4.
//
//go:noescape
func axpyBlocks(dst, x *float64, a float64, n int)

// corrMax returns max over j ∈ [0, n) of (r[j]·invFl − muA·m[j])·invA·v[j];
// n must be a positive multiple of 4.
//
//go:noescape
func corrMax(r, m, v *float64, invFl, muA, invA float64, n int) float64

// corrBuf stores (cb[y]·invFl − mb[y]·muJ)·vb[y]·invJ into dst[y] for
// y ∈ [0, n), n a multiple of 4.
//
//go:noescape
func corrBuf(dst, cb, mb, vb *float64, invFl, muJ, invJ float64, n int)

// diagSteps4 advances the four interleaved diagonal chains qt[0..3] over
// cells i ∈ [i0, n): qt += ta[i]·w[i+x] − tb[i−1]·u[i+x] per lane x, then
// c = (qt·invFl − mi[i]·mj[i+x])·vi[i]·vj[i+x]. It returns at the first i
// where any lane satisfies c ≥ ci[i] or c ≥ cj[i+x] (qt already advanced
// to that cell, lanes stored back), or n if no cell triggers.
//
//go:noescape
func diagSteps4(qt, w, u, ta, tb, mi, vi, mj, vj, ci, cj *float64, invFl float64, i0, n int) int

// diagSteps32x is diagSteps4 with w, u, ta, tb stored in float32 and
// widened at load; the chains and compares run in float64.
//
//go:noescape
func diagSteps32x(qt *float64, w, u, ta, tb *float32, mi, vi, mj, vj, ci, cj *float64, invFl float64, i0, n int) int

func rowNextAVX2(row, t []float64, i, l, s int) {
	if s < 2 {
		return
	}
	tail := t[i+l-1]
	head := t[i-1]
	a := t[l : l+s-1]
	b := t[0 : s-1]
	r := row[0:s]
	lo := (s - 1) % 4
	if s-1-lo > 0 {
		rowNextBlocks(&r[0], &a[0], &b[0], tail, head, lo, s-2)
	}
	for p := lo - 1; p >= 0; p-- {
		r[p+1] = r[p] + tail*a[p] - head*b[p]
	}
}

// extendRowAVX2 runs the l−cur pending steps as one-step vector passes.
// ExtendRow's contract makes this bit-identical to the fused form: each
// cell's additions arrive in ascending step order either way, only the
// pass structure differs.
func extendRowAVX2(row, t []float64, i, cur, l int) {
	n := len(t)
	for p := cur; p < l; p++ {
		e := n - p // the one-step pass at step p updates cells j < n−p
		if e <= 0 {
			break
		}
		dst := row[0:e]
		x := t[p:n]
		a := t[i+p]
		nv := e &^ 3
		if nv > 0 {
			axpyBlocks(&dst[0], &x[0], a, nv)
		}
		for j := nv; j < e; j++ {
			dst[j] += a * x[j]
		}
	}
}

func argmaxCorrRangeAVX2(row, means, invs []float64, j0, j1 int, invFl, muA, invA float64, bestCorr float64, bestJ int) (float64, int) {
	if j0 < 0 {
		j0 = 0
	}
	if j1 <= j0 {
		return bestCorr, bestJ
	}
	r := row[j0:j1]
	m := means[j0:j1]
	m = m[:len(r)]
	v := invs[j0:j1]
	v = v[:len(r)]
	n := len(r)
	x := 0
	if nv := n &^ 3; nv > 0 {
		bm := corrMax(&r[0], &m[0], &v[0], invFl, muA, invA, nv)
		if bm > bestCorr {
			for y := 0; y < nv; y++ {
				c := (r[y]*invFl - muA*m[y]) * invA * v[y]
				if c == bm {
					bestCorr, bestJ = c, j0+y
					break
				}
			}
		}
		x = nv
	}
	for ; x < n; x++ {
		c := (r[x]*invFl - muA*m[x]) * invA * v[x]
		if c > bestCorr {
			bestCorr, bestJ = c, j0+x
		}
	}
	return bestCorr, bestJ
}

func colScanAVX2(col, means, invs []float64, iEnd int, invFl, muJ, invJ float64, corr []float64, idx []int32, j int32, bestCorr float64, bestIdx int32) (float64, int32) {
	if iEnd <= 0 {
		return bestCorr, bestIdx
	}
	cl := col[0:iEnd]
	m := means[0:iEnd]
	m = m[:len(cl)]
	v := invs[0:iEnd]
	v = v[:len(cl)]
	cr := corr[0:iEnd]
	cr = cr[:len(cl)]
	ix := idx[0:iEnd]
	ix = ix[:len(cl)]
	var buf [argmaxBlock]float64
	i := 0
	for ; i+argmaxBlock <= len(cl); i += argmaxBlock {
		corrBuf(&buf[0], &cl[i], &m[i], &v[i], invFl, muJ, invJ, argmaxBlock)
		crb := cr[i : i+argmaxBlock]
		ixb := ix[i : i+argmaxBlock]
		ixb = ixb[:len(crb)]
		for y := range buf {
			c := buf[y]
			if c > crb[y] || (c == crb[y] && j < ixb[y]) {
				crb[y], ixb[y] = c, j
			}
			if c > bestCorr {
				bestCorr, bestIdx = c, int32(i+y)
			}
		}
	}
	for ; i < len(cl); i++ {
		c := (cl[i]*invFl - m[i]*muJ) * v[i] * invJ
		if c > cr[i] || (c == cr[i] && j < ix[i]) {
			cr[i], ix[i] = c, j
		}
		if c > bestCorr {
			bestCorr, bestIdx = c, int32(i)
		}
	}
	return bestCorr, bestIdx
}

func diagScanAVX2(t, head, means, invs []float64, k0, k1, l, s int, corr []float64, idx []int32) {
	invFl := 1 / float64(l)
	k := k0
	for ; k+4 <= k1; k += 4 {
		diagQuadAVX2(t, head, means, invs, k, l, s, invFl, corr, idx)
	}
	for ; k < k1; k++ {
		diagOne(t, means, invs, head[k], k, l, s, invFl, corr, idx)
	}
}

// diagQuadAVX2 mirrors diagQuad: identical head-row handling and tails,
// with the common range driven through the diagSteps4 stop protocol.
func diagQuadAVX2(t, head, means, invs []float64, k, l, s int, invFl float64, corr []float64, idx []int32) {
	var qt [4]float64
	qt[0], qt[1], qt[2], qt[3] = head[k], head[k+1], head[k+2], head[k+3]
	c0 := (qt[0]*invFl - means[0]*means[k]) * invs[0] * invs[k]
	c1 := (qt[1]*invFl - means[0]*means[k+1]) * invs[0] * invs[k+1]
	c2 := (qt[2]*invFl - means[0]*means[k+2]) * invs[0] * invs[k+2]
	c3 := (qt[3]*invFl - means[0]*means[k+3]) * invs[0] * invs[k+3]
	bc, bj := c0, int32(k)
	if c1 > bc {
		bc, bj = c1, int32(k+1)
	}
	if c2 > bc {
		bc, bj = c2, int32(k+2)
	}
	if c3 > bc {
		bc, bj = c3, int32(k+3)
	}
	update(corr, idx, 0, bc, bj)
	update(corr, idx, k, c0, 0)
	update(corr, idx, k+1, c1, 0)
	update(corr, idx, k+2, c2, 0)
	update(corr, idx, k+3, c3, 0)

	m := s - k - 4
	if m >= 1 {
		w := t[k+l-1:]
		u := t[k-1:]
		ta := t[l-1:]
		mj := means[k:]
		vj := invs[k:]
		cj := corr[k:]
		n := m + 1 // common cells are i ∈ [1, m]
		i := 1
		for i < n {
			hit := diagSteps4(&qt[0], &w[0], &u[0], &ta[0], &t[0],
				&means[0], &invs[0], &mj[0], &vj[0], &corr[0], &cj[0],
				invFl, i, n)
			if hit >= n {
				break
			}
			i = hit
			// Recompute the lane correlations from the carried chains —
			// scalar, same expression, bit-identical to the vector lanes —
			// and apply the exact sequential compare-updates of diagQuad.
			m0, v0 := means[i], invs[i]
			c0 := (qt[0]*invFl - m0*mj[i]) * v0 * vj[i]
			c1 := (qt[1]*invFl - m0*mj[i+1]) * v0 * vj[i+1]
			c2 := (qt[2]*invFl - m0*mj[i+2]) * v0 * vj[i+2]
			c3 := (qt[3]*invFl - m0*mj[i+3]) * v0 * vj[i+3]
			j := int32(i + k)
			if c0 >= corr[i] {
				if c0 > corr[i] || j < idx[i] {
					corr[i], idx[i] = c0, j
				}
			}
			if c1 >= corr[i] {
				if c1 > corr[i] || j+1 < idx[i] {
					corr[i], idx[i] = c1, j+1
				}
			}
			if c2 >= corr[i] {
				if c2 > corr[i] || j+2 < idx[i] {
					corr[i], idx[i] = c2, j+2
				}
			}
			if c3 >= corr[i] {
				if c3 > corr[i] || j+3 < idx[i] {
					corr[i], idx[i] = c3, j+3
				}
			}
			a := int32(i)
			if c0 >= corr[k+i] {
				if c0 > corr[k+i] || a < idx[k+i] {
					corr[k+i], idx[k+i] = c0, a
				}
			}
			if c1 >= corr[k+i+1] {
				if c1 > corr[k+i+1] || a < idx[k+i+1] {
					corr[k+i+1], idx[k+i+1] = c1, a
				}
			}
			if c2 >= corr[k+i+2] {
				if c2 > corr[k+i+2] || a < idx[k+i+2] {
					corr[k+i+2], idx[k+i+2] = c2, a
				}
			}
			if c3 >= corr[k+i+3] {
				if c3 > corr[k+i+3] || a < idx[k+i+3] {
					corr[k+i+3], idx[k+i+3] = c3, a
				}
			}
			i++
		}
	}

	if m < 0 {
		m = 0
	}
	diagOneTail(t, means, invs, qt[0], k, l, s, invFl, corr, idx, m)
	diagOneTail(t, means, invs, qt[1], k+1, l, s, invFl, corr, idx, m)
	diagOneTail(t, means, invs, qt[2], k+2, l, s, invFl, corr, idx, m)
	diagOneTail(t, means, invs, qt[3], k+3, l, s, invFl, corr, idx, m)
}

func diagScan32AVX2(t, head []float32, means, invs []float64, k0, k1, l, s int, corr []float64, idx []int32) {
	invFl := 1 / float64(l)
	k := k0
	for ; k+4 <= k1; k += 4 {
		diagQuad32AVX2(t, head, means, invs, k, l, s, invFl, corr, idx)
	}
	for ; k < k1; k++ {
		diagOneTail32(t, means, invs, headCorr32(head, means, invs, k, invFl, corr, idx), k, l, s, invFl, corr, idx, 0)
	}
}

// diagQuad32AVX2 mirrors diagQuad32 with the common range driven through
// the widening-load stop protocol.
func diagQuad32AVX2(t, head []float32, means, invs []float64, k, l, s int, invFl float64, corr []float64, idx []int32) {
	var qt [4]float64
	qt[0], qt[1], qt[2], qt[3] = float64(head[k]), float64(head[k+1]), float64(head[k+2]), float64(head[k+3])
	c0 := (qt[0]*invFl - means[0]*means[k]) * invs[0] * invs[k]
	c1 := (qt[1]*invFl - means[0]*means[k+1]) * invs[0] * invs[k+1]
	c2 := (qt[2]*invFl - means[0]*means[k+2]) * invs[0] * invs[k+2]
	c3 := (qt[3]*invFl - means[0]*means[k+3]) * invs[0] * invs[k+3]
	bc, bj := c0, int32(k)
	if c1 > bc {
		bc, bj = c1, int32(k+1)
	}
	if c2 > bc {
		bc, bj = c2, int32(k+2)
	}
	if c3 > bc {
		bc, bj = c3, int32(k+3)
	}
	update(corr, idx, 0, bc, bj)
	update(corr, idx, k, c0, 0)
	update(corr, idx, k+1, c1, 0)
	update(corr, idx, k+2, c2, 0)
	update(corr, idx, k+3, c3, 0)

	m := s - k - 4
	if m >= 1 {
		w := t[k+l-1:]
		u := t[k-1:]
		ta := t[l-1:]
		mj := means[k:]
		vj := invs[k:]
		cj := corr[k:]
		n := m + 1
		i := 1
		for i < n {
			hit := diagSteps32x(&qt[0], &w[0], &u[0], &ta[0], &t[0],
				&means[0], &invs[0], &mj[0], &vj[0], &corr[0], &cj[0],
				invFl, i, n)
			if hit >= n {
				break
			}
			i = hit
			m0, v0 := means[i], invs[i]
			c0 := (qt[0]*invFl - m0*mj[i]) * v0 * vj[i]
			c1 := (qt[1]*invFl - m0*mj[i+1]) * v0 * vj[i+1]
			c2 := (qt[2]*invFl - m0*mj[i+2]) * v0 * vj[i+2]
			c3 := (qt[3]*invFl - m0*mj[i+3]) * v0 * vj[i+3]
			j := int32(i + k)
			if c0 >= corr[i] {
				if c0 > corr[i] || j < idx[i] {
					corr[i], idx[i] = c0, j
				}
			}
			if c1 >= corr[i] {
				if c1 > corr[i] || j+1 < idx[i] {
					corr[i], idx[i] = c1, j+1
				}
			}
			if c2 >= corr[i] {
				if c2 > corr[i] || j+2 < idx[i] {
					corr[i], idx[i] = c2, j+2
				}
			}
			if c3 >= corr[i] {
				if c3 > corr[i] || j+3 < idx[i] {
					corr[i], idx[i] = c3, j+3
				}
			}
			a := int32(i)
			if c0 >= corr[k+i] {
				if c0 > corr[k+i] || a < idx[k+i] {
					corr[k+i], idx[k+i] = c0, a
				}
			}
			if c1 >= corr[k+i+1] {
				if c1 > corr[k+i+1] || a < idx[k+i+1] {
					corr[k+i+1], idx[k+i+1] = c1, a
				}
			}
			if c2 >= corr[k+i+2] {
				if c2 > corr[k+i+2] || a < idx[k+i+2] {
					corr[k+i+2], idx[k+i+2] = c2, a
				}
			}
			if c3 >= corr[k+i+3] {
				if c3 > corr[k+i+3] || a < idx[k+i+3] {
					corr[k+i+3], idx[k+i+3] = c3, a
				}
			}
			i++
		}
	}

	if m < 0 {
		m = 0
	}
	diagOneTail32(t, means, invs, qt[0], k, l, s, invFl, corr, idx, m)
	diagOneTail32(t, means, invs, qt[1], k+1, l, s, invFl, corr, idx, m)
	diagOneTail32(t, means, invs, qt[2], k+2, l, s, invFl, corr, idx, m)
	diagOneTail32(t, means, invs, qt[3], k+3, l, s, invFl, corr, idx, m)
}
