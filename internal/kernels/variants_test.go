package kernels

import (
	"math"
	"math/rand"
	"testing"

	"github.com/seriesmining/valmod/internal/series"
)

// forEachVariant runs f once per available dispatch tier as a subtest, so
// every parity assertion certifies every reachable dispatch path (on
// amd64 with AVX2 that is generic, ilp, and avx2). The active tier is
// restored afterwards.
func forEachVariant(t *testing.T, f func(t *testing.T)) {
	t.Helper()
	orig := Active()
	defer func() {
		if err := SetVariant(orig); err != nil {
			t.Fatalf("restore variant %v: %v", orig, err)
		}
	}()
	for _, v := range Available() {
		if err := SetVariant(v); err != nil {
			t.Fatalf("SetVariant(%v): %v", v, err)
		}
		t.Run(v.String(), f)
	}
}

// forEachVariantB is forEachVariant for benchmarks: one sub-benchmark per
// dispatch tier, so `go test -bench` reports generic/ilp/avx2 side by side.
func forEachVariantB(b *testing.B, f func(b *testing.B)) {
	b.Helper()
	orig := Active()
	defer func() {
		if err := SetVariant(orig); err != nil {
			b.Fatalf("restore variant %v: %v", orig, err)
		}
	}()
	for _, v := range Available() {
		if err := SetVariant(v); err != nil {
			b.Fatalf("SetVariant(%v): %v", v, err)
		}
		b.Run(v.String(), f)
	}
}

// allVariants is the plain-loop form for fuzz targets, where t.Run is not
// permitted: f runs once per available tier with that tier active and its
// Variant passed for failure messages. The active tier is restored.
func allVariants(t *testing.T, f func(v Variant)) {
	t.Helper()
	orig := Active()
	defer func() {
		if err := SetVariant(orig); err != nil {
			t.Fatalf("restore variant %v: %v", orig, err)
		}
	}()
	for _, v := range Available() {
		if err := SetVariant(v); err != nil {
			t.Fatalf("SetVariant(%v): %v", v, err)
		}
		f(v)
	}
}

// fuzzSeries builds a series with fuzz-controlled degeneracy: a seeded
// random walk with up to two constant segments (σ = 0 windows) whose
// placement, including flush against either edge, comes from the fuzz
// input, plus a planted exact repeat for correlation ties.
func fuzzSeries(n int, seed int64, segA, segB uint8) []float64 {
	rng := rand.New(rand.NewSource(seed))
	t := make([]float64, n)
	v := 0.0
	for i := range t {
		v += rng.NormFloat64()
		t[i] = v
	}
	if segA&1 != 0 {
		start, end := int(segA)%n, int(segA)%n+n/6
		if end > n {
			end = n
		}
		for i := start; i < end; i++ {
			t[i] = 3.25
		}
	}
	if segB&1 != 0 {
		start := n - 1 - int(segB)%(n/2+1)
		if start < 0 {
			start = 0
		}
		for i := start; i < n; i++ {
			t[i] = -1.5
		}
	}
	if n >= 24 {
		copy(t[n/2:n/2+n/12], t[n/8:n/8+n/12])
	}
	return t
}

// FuzzKernelParity drives every dispatch tier of every kernel against its
// Ref* baseline on fuzz-chosen series sizes, lengths, anchors and
// degenerate-segment placements, asserting bit-identity (float64 paths)
// and exact float32 store parity (carry paths). Random sizes exercise the
// unroll and vector-width remainders; random anchors exercise
// edge-clipped exclusion zones.
func FuzzKernelParity(f *testing.F) {
	f.Add(int64(1), uint16(64), uint8(4), uint8(0), uint8(0), uint8(0))
	f.Add(int64(2), uint16(257), uint8(31), uint8(3), uint8(7), uint8(1))
	f.Add(int64(3), uint16(500), uint8(63), uint8(129), uint8(255), uint8(2))
	f.Add(int64(4), uint16(100), uint8(8), uint8(1), uint8(1), uint8(3))
	f.Add(int64(5), uint16(333), uint8(16), uint8(0), uint8(9), uint8(4))
	f.Add(int64(6), uint16(1000), uint8(40), uint8(200), uint8(0), uint8(5))
	f.Add(int64(7), uint16(96), uint8(5), uint8(11), uint8(33), uint8(6))
	f.Add(int64(8), uint16(770), uint8(50), uint8(77), uint8(128), uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint16, lRaw, segA, segB, kernel uint8) {
		n := 32 + int(nRaw)%1200
		l := 3 + int(lRaw)%62
		if l > n/2 {
			l = n / 2
		}
		s := n - l + 1
		ts := fuzzSeries(n, seed, segA, segB)
		means, invs := moments(ts, l)
		invFl := 1 / float64(l)
		excl := (l + 3) / 4
		if excl < 1 {
			excl = 1
		}
		anchor := int(seed&0x7fffffff) % s

		switch kernel % 8 {
		case 0: // RowNext
			row0 := make([]float64, s)
			for j := range row0 {
				row0[j] = series.Dot(ts[0:l], ts[j:j+l])
			}
			i := 1 + anchor%s
			if i >= s {
				i = s - 1
			}
			if i < 1 {
				return
			}
			want := append([]float64(nil), row0...)
			RefRowNext(want, ts, i, l, s)
			allVariants(t, func(v Variant) {
				got := append([]float64(nil), row0...)
				RowNext(got, ts, i, l, s)
				if !bitsEqual(got, want) {
					t.Fatalf("%v: RowNext(n=%d l=%d i=%d) diverges from reference", v, n, l, i)
				}
			})
		case 1: // ArgmaxCorr with an edge-clippable exclusion zone
			i := anchor
			row := make([]float64, s)
			for j := range row {
				row[j] = series.Dot(ts[i:i+l], ts[j:j+l])
			}
			muA, invA := means[i], invs[i]
			if invA == 0 {
				invA = 1
			}
			e1, j2 := i-excl+1, i+excl
			wc, wj := RefArgmaxCorr(row, means, invs, e1, j2, s, invFl, muA, invA, math.Inf(-1), -1)
			allVariants(t, func(v Variant) {
				gc, gj := ArgmaxCorr(row, means, invs, e1, j2, s, invFl, muA, invA, math.Inf(-1), -1)
				if math.Float64bits(gc) != math.Float64bits(wc) || gj != wj {
					t.Fatalf("%v: ArgmaxCorr(n=%d l=%d i=%d): (%v,%d) != reference (%v,%d)", v, n, l, i, gc, gj, wc, wj)
				}
			})
		case 2: // ExtendRow, single- and multi-step
			cur := l
			newL := l + 1 + int(segA)%12
			if newL > n {
				newL = n
			}
			i := anchor % (n - newL + 1)
			row0 := make([]float64, n-cur+1)
			for j := range row0 {
				row0[j] = series.Dot(ts[i:i+cur], ts[j:j+cur])
			}
			want := append([]float64(nil), row0...)
			RefExtendRow(want, ts, i, cur, newL)
			allVariants(t, func(v Variant) {
				got := append([]float64(nil), row0...)
				ExtendRow(got, ts, i, cur, newL)
				if !bitsEqual(got, want) {
					t.Fatalf("%v: ExtendRow(n=%d i=%d cur=%d l=%d) diverges from reference", v, n, i, cur, newL)
				}
			})
		case 3: // DiagScan over a fuzz-chosen diagonal block
			if excl >= s {
				return
			}
			head := make([]float64, s)
			for k := range head {
				head[k] = series.Dot(ts[0:l], ts[k:k+l])
			}
			k0 := excl + anchor%(s-excl)
			k1 := k0 + 1 + int(segB)%16
			if k1 > s {
				k1 = s
			}
			wc := make([]float64, s)
			wi := make([]int32, s)
			for i := 0; i < s; i++ {
				wc[i], wi[i] = math.Inf(-1), -1
			}
			RefDiagScan(ts, head, means, invs, k0, k1, l, s, wc, wi)
			allVariants(t, func(v Variant) {
				gc := make([]float64, s)
				gi := make([]int32, s)
				for i := 0; i < s; i++ {
					gc[i], gi[i] = math.Inf(-1), -1
				}
				DiagScan(ts, head, means, invs, k0, k1, l, s, gc, gi)
				if !bitsEqual(gc, wc) {
					t.Fatalf("%v: DiagScan(n=%d l=%d k=[%d,%d)) corr diverges", v, n, l, k0, k1)
				}
				for i := range gi {
					if gi[i] != wi[i] {
						t.Fatalf("%v: DiagScan(n=%d l=%d k=[%d,%d)) idx[%d]=%d != %d", v, n, l, k0, k1, i, gi[i], wi[i])
					}
				}
			})
		case 4: // ColScan at a fuzz-chosen appended column
			j := 1 + anchor%s
			if j >= s {
				j = s - 1
			}
			if j < 1 {
				return
			}
			col := make([]float64, s)
			for i := range col {
				col[i] = series.Dot(ts[i:i+l], ts[j:j+l])
			}
			iEnd := j - excl + 1
			mkSlots := func() ([]float64, []int32) {
				c := make([]float64, s)
				ix := make([]int32, s)
				for i := 0; i < s; i++ {
					c[i], ix[i] = math.Inf(-1), -1
				}
				return c, ix
			}
			wc, wi := mkSlots()
			wantC, wantI := RefColScan(col, means, invs, iEnd, invFl, means[j], invs[j], wc, wi, int32(j), math.Inf(-1), -1)
			allVariants(t, func(v Variant) {
				gc, gi := mkSlots()
				gotC, gotI := ColScan(col, means, invs, iEnd, invFl, means[j], invs[j], gc, gi, int32(j), math.Inf(-1), -1)
				if math.Float64bits(gotC) != math.Float64bits(wantC) || gotI != wantI {
					t.Fatalf("%v: ColScan(n=%d l=%d j=%d) best (%v,%d) != reference (%v,%d)", v, n, l, j, gotC, gotI, wantC, wantI)
				}
				if !bitsEqual(gc, wc) {
					t.Fatalf("%v: ColScan(n=%d l=%d j=%d) corr slots diverge", v, n, l, j)
				}
				for i := range gi {
					if gi[i] != wi[i] {
						t.Fatalf("%v: ColScan(n=%d l=%d j=%d) idx[%d]=%d != %d", v, n, l, j, i, gi[i], wi[i])
					}
				}
			})
		case 5: // RowNext32
			t32 := toF32(ts)
			row0 := make([]float32, s)
			for j := range row0 {
				sum := 0.0
				for p := 0; p < l; p++ {
					sum += float64(t32[p]) * float64(t32[j+p])
				}
				row0[j] = float32(sum)
			}
			i := 1 + anchor%s
			if i >= s {
				i = s - 1
			}
			if i < 1 {
				return
			}
			want := append([]float32(nil), row0...)
			RefRowNext32(want, t32, i, l, s)
			allVariants(t, func(v Variant) {
				got := append([]float32(nil), row0...)
				RowNext32(got, t32, i, l, s)
				got[0] = want[0]
				if !bits32Equal(got, want) {
					t.Fatalf("%v: RowNext32(n=%d l=%d i=%d) diverges from reference", v, n, l, i)
				}
			})
		case 6: // ExtendRow32
			t32 := toF32(ts)
			cur := l
			newL := l + 1 + int(segA)%12
			if newL > n {
				newL = n
			}
			i := anchor % (n - newL + 1)
			row0 := make([]float32, n-cur+1)
			for j := range row0 {
				sum := 0.0
				for p := 0; p < cur; p++ {
					sum += float64(t32[i+p]) * float64(t32[j+p])
				}
				row0[j] = float32(sum)
			}
			want := append([]float32(nil), row0...)
			RefExtendRow32(want, t32, i, cur, newL)
			allVariants(t, func(v Variant) {
				got := append([]float32(nil), row0...)
				ExtendRow32(got, t32, i, cur, newL)
				if !bits32Equal(got, want) {
					t.Fatalf("%v: ExtendRow32(n=%d i=%d cur=%d l=%d) diverges from reference", v, n, i, cur, newL)
				}
			})
		default: // DiagScan32
			if excl >= s {
				return
			}
			t32 := toF32(ts)
			head := make([]float32, s)
			for k := range head {
				sum := 0.0
				for p := 0; p < l; p++ {
					sum += float64(t32[p]) * float64(t32[k+p])
				}
				head[k] = float32(sum)
			}
			k0 := excl + anchor%(s-excl)
			k1 := k0 + 1 + int(segB)%16
			if k1 > s {
				k1 = s
			}
			wc := make([]float64, s)
			wi := make([]int32, s)
			for i := 0; i < s; i++ {
				wc[i], wi[i] = math.Inf(-1), -1
			}
			RefDiagScan32(t32, head, means, invs, k0, k1, l, s, wc, wi)
			allVariants(t, func(v Variant) {
				gc := make([]float64, s)
				gi := make([]int32, s)
				for i := 0; i < s; i++ {
					gc[i], gi[i] = math.Inf(-1), -1
				}
				DiagScan32(t32, head, means, invs, k0, k1, l, s, gc, gi)
				if !bitsEqual(gc, wc) {
					t.Fatalf("%v: DiagScan32(n=%d l=%d k=[%d,%d)) corr diverges", v, n, l, k0, k1)
				}
				for i := range gi {
					if gi[i] != wi[i] {
						t.Fatalf("%v: DiagScan32(n=%d l=%d k=[%d,%d)) idx[%d]=%d != %d", v, n, l, k0, k1, i, gi[i], wi[i])
					}
				}
			})
		}
	})
}
