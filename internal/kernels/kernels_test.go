package kernels

import (
	"math"
	"math/rand"
	"testing"

	"github.com/seriesmining/valmod/internal/series"
)

// testSeries builds an adversarial series: a random walk with two planted
// constant segments (σ = 0 windows at any length shorter than the
// segments) and a repeated motif, exercising degenerate moments and exact
// correlation ties.
func testSeries(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	t := make([]float64, n)
	v := 0.0
	for i := range t {
		v += rng.NormFloat64()
		t[i] = v
	}
	// Constant segments: one interior, one flush against the series end.
	for i := n / 3; i < n/3+n/8 && i < n; i++ {
		t[i] = 7.5
	}
	for i := n - n/10; i < n; i++ {
		t[i] = -2.25
	}
	// A planted exact repeat (correlation ties for the argmax paths).
	copy(t[n/2:n/2+n/12], t[n/6:n/6+n/12])
	return t
}

// moments returns sliding means and inverse stds (0 on degenerate
// windows) at length l — the exact arrays the engine hands the kernels.
func moments(t []float64, l int) (means, invs []float64) {
	m, sd := series.SlidingMeanStd(t, l)
	invs = make([]float64, len(sd))
	for i, v := range sd {
		if v > 0 {
			invs[i] = 1 / v
		}
	}
	return m, invs
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestKernelParityRowNext(t *testing.T) { forEachVariant(t, testKernelParityRowNext) }

func testKernelParityRowNext(t *testing.T) {
	for _, n := range []int{64, 257, 1000} {
		ts := testSeries(n, 1)
		for _, l := range []int{4, 7, 32} {
			s := n - l + 1
			row0 := make([]float64, s)
			for j := range row0 {
				row0[j] = series.Dot(ts[0:l], ts[j:j+l])
			}
			got := append([]float64(nil), row0...)
			want := append([]float64(nil), row0...)
			// Stream several rows so errors compound if the recurrence drifts.
			for i := 1; i < 6 && i < s; i++ {
				RowNext(got, ts, i, l, s)
				got[0] = series.Dot(ts[i:i+l], ts[0:l])
				RefRowNext(want, ts, i, l, s)
				want[0] = series.Dot(ts[i:i+l], ts[0:l])
				if !bitsEqual(got, want) {
					t.Fatalf("n=%d l=%d row %d: RowNext diverges from reference", n, l, i)
				}
			}
		}
	}
}

func TestKernelParityArgmaxCorr(t *testing.T) { forEachVariant(t, testKernelParityArgmaxCorr) }

func testKernelParityArgmaxCorr(t *testing.T) {
	const n, l = 700, 23
	ts := testSeries(n, 2)
	s := n - l + 1
	means, invs := moments(ts, l)
	invFl := 1 / float64(l)
	excl := (l + 3) / 4
	for _, i := range []int{0, 1, excl - 1, excl, s / 2, s - excl, s - 1} {
		if i < 0 || i >= s {
			continue
		}
		row := make([]float64, s)
		for j := range row {
			row[j] = series.Dot(ts[i:i+l], ts[j:j+l])
		}
		muA, invA := means[i], invs[i]
		if invA == 0 {
			invA = 1 // exercise the candidate-side zeros regardless
		}
		// The engine's split: included j ≤ i−excl or j ≥ i+excl, both
		// clipped at the series edges.
		e1, j2 := i-excl+1, i+excl
		gc, gj := ArgmaxCorr(row, means, invs, e1, j2, s, invFl, muA, invA, math.Inf(-1), -1)
		wc, wj := RefArgmaxCorr(row, means, invs, e1, j2, s, invFl, muA, invA, math.Inf(-1), -1)
		if math.Float64bits(gc) != math.Float64bits(wc) || gj != wj {
			t.Fatalf("i=%d: ArgmaxCorr (%v,%d) != reference (%v,%d)", i, gc, gj, wc, wj)
		}
	}
	// Whole-row scan (no exclusion split): e1 = s, j2 = s.
	row := make([]float64, s)
	for j := range row {
		row[j] = series.Dot(ts[0:l], ts[j:j+l])
	}
	gc, gj := ArgmaxCorr(row, means, invs, s, s, s, invFl, means[0], invs[0], math.Inf(-1), -1)
	wc, wj := RefArgmaxCorr(row, means, invs, s, s, s, invFl, means[0], invs[0], math.Inf(-1), -1)
	if math.Float64bits(gc) != math.Float64bits(wc) || gj != wj {
		t.Fatalf("full row: ArgmaxCorr (%v,%d) != reference (%v,%d)", gc, gj, wc, wj)
	}
}

func TestKernelParityExtendRow(t *testing.T) { forEachVariant(t, testKernelParityExtendRow) }

func testKernelParityExtendRow(t *testing.T) {
	const n = 512
	ts := testSeries(n, 3)
	for _, tc := range []struct{ i, cur, l int }{
		{0, 8, 9},     // single step, anchor 0 (the head-row case)
		{0, 8, 20},    // multi-step head extension
		{5, 16, 17},   // single step, interior anchor (hot-row case)
		{5, 16, 31},   // multi-step hot row across a planner gap
		{2, 500, 510}, // partial region dominates (cells falling off the end)
		{3, 12, 12},   // no-op (cur == l)
	} {
		row0 := make([]float64, n-tc.cur+1)
		for j := range row0 {
			end := j + tc.cur
			row0[j] = series.Dot(ts[tc.i:tc.i+tc.cur], ts[j:end])
		}
		got := append([]float64(nil), row0...)
		want := append([]float64(nil), row0...)
		ExtendRow(got, ts, tc.i, tc.cur, tc.l)
		RefExtendRow(want, ts, tc.i, tc.cur, tc.l)
		if !bitsEqual(got, want) {
			t.Fatalf("i=%d cur=%d l=%d: ExtendRow diverges from reference", tc.i, tc.cur, tc.l)
		}
	}
}

func TestKernelParityAdvanceDot(t *testing.T) { forEachVariant(t, testKernelParityAdvanceDot) }

func testKernelParityAdvanceDot(t *testing.T) {
	const n = 300
	ts := testSeries(n, 4)
	for _, tc := range []struct{ i, j, p0, p1 int }{
		{0, 50, 10, 11},
		{3, 200, 16, 40},
		{7, 9, 0, 99},
		{5, 5, 20, 20}, // empty range
		{5, 5, 21, 20}, // inverted range (post-catch-up no-op)
	} {
		got := AdvanceDot(1.25, ts, tc.i, tc.j, tc.p0, tc.p1)
		want := RefAdvanceDot(1.25, ts, tc.i, tc.j, tc.p0, tc.p1)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("%+v: AdvanceDot %v != reference %v", tc, got, want)
		}
	}
}

func TestKernelParityDiagScan(t *testing.T) { forEachVariant(t, testKernelParityDiagScan) }

func testKernelParityDiagScan(t *testing.T) {
	for _, n := range []int{120, 493, 1000} {
		ts := testSeries(n, 5)
		for _, l := range []int{8, 21} {
			s := n - l + 1
			means, invs := moments(ts, l)
			head := make([]float64, s)
			for k := range head {
				head[k] = series.Dot(ts[0:l], ts[k:k+l])
			}
			excl := (l + 3) / 4
			// Block splits exercising the quad path, its tails, and
			// remainders of 1..3 diagonals.
			splits := [][2]int{{excl, s}, {excl, excl + 1}, {excl, excl + 5}, {s - 3, s}, {s - 1, s}}
			for _, sp := range splits {
				k0, k1 := sp[0], sp[1]
				if k0 < excl || k1 > s || k0 >= k1 {
					continue
				}
				gc := make([]float64, s)
				gi := make([]int32, s)
				wc := make([]float64, s)
				wi := make([]int32, s)
				for i := 0; i < s; i++ {
					gc[i], wc[i] = math.Inf(-1), math.Inf(-1)
					gi[i], wi[i] = -1, -1
				}
				DiagScan(ts, head, means, invs, k0, k1, l, s, gc, gi)
				RefDiagScan(ts, head, means, invs, k0, k1, l, s, wc, wi)
				if !bitsEqual(gc, wc) {
					t.Fatalf("n=%d l=%d k=[%d,%d): DiagScan corr diverges", n, l, k0, k1)
				}
				for i := range gi {
					if gi[i] != wi[i] {
						t.Fatalf("n=%d l=%d k=[%d,%d): DiagScan idx[%d]=%d != %d", n, l, k0, k1, i, gi[i], wi[i])
					}
				}
			}
		}
	}
}

func TestKernelParityColScan(t *testing.T) { forEachVariant(t, testKernelParityColScan) }

func testKernelParityColScan(t *testing.T) {
	for _, n := range []int{90, 301, 743} {
		ts := testSeries(n, 6)
		for _, l := range []int{5, 16, 33} {
			s := n - l + 1
			if s < 2 {
				continue
			}
			means, invs := moments(ts, l)
			excl := (l + 3) / 4
			// Replay the streaming append: column j is built from column
			// j−1 exactly as the streamer does, so the scanned values carry
			// the real recurrence history (compounding any drift).
			col := make([]float64, s)
			col[0] = series.Dot(ts[0:l], ts[0:l])
			gc := make([]float64, s)
			gi := make([]int32, s)
			wc := make([]float64, s)
			wi := make([]int32, s)
			for i := 0; i < s; i++ {
				gc[i], wc[i] = math.Inf(-1), math.Inf(-1)
				gi[i], wi[i] = -1, -1
			}
			for j := 1; j < s; j++ {
				RowNext(col, ts, j, l, j+1)
				col[0] = series.Dot(ts[0:l], ts[j:j+l])
				iEnd := j - excl + 1
				gotC, gotI := ColScan(col, means, invs, iEnd, 1/float64(l), means[j], invs[j], gc, gi, int32(j), math.Inf(-1), -1)
				wantC, wantI := RefColScan(col, means, invs, iEnd, 1/float64(l), means[j], invs[j], wc, wi, int32(j), math.Inf(-1), -1)
				if math.Float64bits(gotC) != math.Float64bits(wantC) || gotI != wantI {
					t.Fatalf("n=%d l=%d j=%d: ColScan best (%v,%d) != reference (%v,%d)", n, l, j, gotC, gotI, wantC, wantI)
				}
				if gotI >= 0 {
					gc[j], gi[j] = gotC, gotI
					wc[j], wi[j] = wantC, wantI
				}
			}
			if !bitsEqual(gc, wc) {
				t.Fatalf("n=%d l=%d: ColScan corr slots diverge from reference", n, l)
			}
			for i := range gi {
				if gi[i] != wi[i] {
					t.Fatalf("n=%d l=%d: ColScan idx[%d]=%d != %d", n, l, i, gi[i], wi[i])
				}
			}
		}
	}
}

func benchSetup(n, l int) (ts, head, means, invs []float64, s int) {
	ts = testSeries(n, 9)
	s = n - l + 1
	means, invs = moments(ts, l)
	head = make([]float64, s)
	for k := range head {
		head[k] = series.Dot(ts[0:l], ts[k:k+l])
	}
	return
}

func BenchmarkDiagScan(b *testing.B) {
	forEachVariantB(b, func(b *testing.B) {
		ts, head, means, invs, s := benchSetup(4096, 64)
		excl := 16
		corr := make([]float64, s)
		idx := make([]int32, s)
		b.ReportAllocs()
		b.SetBytes(int64(8 * (s - excl) * (s - excl) / 2))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < s; j++ {
				corr[j] = math.Inf(-1)
				idx[j] = -1
			}
			DiagScan(ts, head, means, invs, excl, s, 64, s, corr, idx)
		}
	})
}

func BenchmarkDiagScan32(b *testing.B) {
	forEachVariantB(b, func(b *testing.B) {
		ts, head, means, invs, s := benchSetup(4096, 64)
		t32, h32 := toF32(ts), toF32(head)
		excl := 16
		corr := make([]float64, s)
		idx := make([]int32, s)
		b.ReportAllocs()
		b.SetBytes(int64(8 * (s - excl) * (s - excl) / 2))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < s; j++ {
				corr[j] = math.Inf(-1)
				idx[j] = -1
			}
			DiagScan32(t32, h32, means, invs, excl, s, 64, s, corr, idx)
		}
	})
}

func BenchmarkColScan(b *testing.B) {
	forEachVariantB(b, func(b *testing.B) {
		ts, _, means, invs, s := benchSetup(8192, 64)
		j := s - 1
		col := make([]float64, s)
		for i := range col {
			col[i] = series.Dot(ts[i:i+l64], ts[j:j+l64])
		}
		iEnd := j - 16 + 1
		corr := make([]float64, s)
		idx := make([]int32, s)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for x := 0; x < s; x++ {
				corr[x] = math.Inf(-1)
				idx[x] = -1
			}
			sinkCorr, _ = ColScan(col, means, invs, iEnd, 1.0/64, means[j], invs[j], corr, idx, int32(j), math.Inf(-1), -1)
		}
	})
}

func BenchmarkRefDiagScan(b *testing.B) {
	ts, head, means, invs, s := benchSetup(4096, 64)
	excl := 16
	corr := make([]float64, s)
	idx := make([]int32, s)
	b.ReportAllocs()
	b.SetBytes(int64(8 * (s - excl) * (s - excl) / 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < s; j++ {
			corr[j] = math.Inf(-1)
			idx[j] = -1
		}
		RefDiagScan(ts, head, means, invs, excl, s, 64, s, corr, idx)
	}
}

func BenchmarkArgmaxCorr(b *testing.B) {
	forEachVariantB(b, func(b *testing.B) {
		ts, _, means, invs, s := benchSetup(8192, 64)
		row := make([]float64, s)
		for j := range row {
			row[j] = series.Dot(ts[0:l64], ts[j:j+l64])
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sinkCorr, sinkJ = ArgmaxCorr(row, means, invs, 100, 132, s, 1.0/64, means[0], invs[0], math.Inf(-1), -1)
		}
	})
}

func BenchmarkRefArgmaxCorr(b *testing.B) {
	ts, _, means, invs, s := benchSetup(8192, 64)
	row := make([]float64, s)
	for j := range row {
		row[j] = series.Dot(ts[0:l64], ts[j:j+l64])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkCorr, sinkJ = RefArgmaxCorr(row, means, invs, 100, 132, s, 1.0/64, means[0], invs[0], math.Inf(-1), -1)
	}
}

const l64 = 64

var (
	sinkCorr float64
	sinkJ    int
)

func BenchmarkExtendRowOneStep(b *testing.B) {
	forEachVariantB(b, func(b *testing.B) {
		ts, head, _, _, _ := benchSetup(8192, 64)
		row := append([]float64(nil), head...)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ExtendRow(row, ts, 0, 64, 65)
			ExtendRow(row, ts, 0, 64, 65) // keep the row hot; values drift, timing doesn't
		}
	})
}

func BenchmarkExtendRowMultiStep(b *testing.B) {
	forEachVariantB(b, func(b *testing.B) {
		ts, head, _, _, _ := benchSetup(8192, 64)
		row := append([]float64(nil), head...)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ExtendRow(row, ts, 0, 64, 72) // 8 pending steps, the planner-gap shape
		}
	})
}

func BenchmarkRowNext(b *testing.B) {
	forEachVariantB(b, func(b *testing.B) {
		ts, head, _, _, s := benchSetup(8192, 64)
		row := append([]float64(nil), head...)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			RowNext(row, ts, 1+(i&7), 64, s)
		}
	})
}
