// Float32 dot-carry kernels (Config.Carry32): the cross-length diagonal
// carry — the head row QT(0, k) and the series samples feeding the
// in-length recurrence — is *stored* in float32, halving the memory
// bandwidth of the arrays the diagonal pass streams, while every
// arithmetic step *accumulates* in float64: loads are widened once, the
// per-cell recurrence and the division-free correlation run in float64
// registers, and only the cross-length store (ExtendRow32/RowNext32)
// rounds back to float32. The moment arrays stay float64 — they feed the
// correlation, not the carry.
//
// Placement is gated by the Ref* parity suite (ref32.go): the diagonal
// pass and the head extension are safe (one rounding per cell per length
// step, drift bounded by the parity tolerance tests), while the seed row
// recurrence is NOT adopted by the engine — its rows feed the
// partial-profile reseed whose q̃² ranks drive certification, and the
// rank flips a float32 carry can introduce there would silently void the
// lower-bound certificates. RowNext32 therefore exists (and is
// parity-tested) but internal/core wires float32 only into
// DiagScan32/ExtendRow32.
//
// The float32 kernels dispatch on the same tiers as the float64 ones.
// Under the AVX2 tier, DiagScan32 runs the assembly diagonal stepper with
// widening loads; RowNext32 and ExtendRow32 fall back to the ILP bodies —
// their fused per-call rounding discipline rules out the multi-pass
// formulation the float64 assembly uses, and with widened loads they are
// bandwidth-bound anyway.
package kernels

// RowNext32 is RowNext with the row and series stored in float32: the
// recurrence row[j] = row[j−1] + t[i+l−1]·t[j+l−1] − t[i−1]·t[j−1]
// evaluates in float64 from widened loads and rounds once at the store.
func RowNext32(row, t []float32, i, l, s int) {
	switch active {
	case AVX2, ILP:
		rowNext32ILP(row, t, i, l, s)
	default:
		rowNext32Generic(row, t, i, l, s)
	}
}

// ExtendRow32 is ExtendRow with the row and series stored in float32:
// cell j accumulates every pending step product t[i+p]·t[j+p],
// p ∈ [cur, min(l, n−j)), in one float64 sum and rounds once at the
// store. Fusing changes the float32 result versus repeated one-step
// calls (one rounding per call per cell, not per step) — the reference
// RefExtendRow32 defines exactly this per-call rounding discipline.
func ExtendRow32(row, t []float32, i, cur, l int) {
	switch active {
	case AVX2, ILP:
		extendRow32ILP(row, t, i, cur, l)
	default:
		extendRow32Generic(row, t, i, cur, l)
	}
}

// DiagScan32 is DiagScan with the head row and the series stored in
// float32: each diagonal's dot product is seeded from the float32 head
// cell, widened once, and carried along the diagonal in a float64
// register; the correlation expression, the total-order winner rule and
// the diagonal interleave match DiagScan exactly (the accumulators
// corr/idx stay float64/int32). The moment slices must be at length l;
// s = len(t) − l + 1.
func DiagScan32(t, head []float32, means, invs []float64, k0, k1, l, s int, corr []float64, idx []int32) {
	switch active {
	case AVX2:
		diagScan32AVX2(t, head, means, invs, k0, k1, l, s, corr, idx)
	case ILP:
		diagScan32ILP(t, head, means, invs, k0, k1, l, s, corr, idx)
	default:
		diagScan32Generic(t, head, means, invs, k0, k1, l, s, corr, idx)
	}
}
