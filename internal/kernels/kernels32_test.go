package kernels

import (
	"math"
	"testing"

	"github.com/seriesmining/valmod/internal/series"
)

func toF32(t []float64) []float32 {
	out := make([]float32, len(t))
	for i, v := range t {
		out[i] = float32(v)
	}
	return out
}

func bits32Equal(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

func TestKernelParityRowNext32(t *testing.T) { forEachVariant(t, testKernelParityRowNext32) }

func testKernelParityRowNext32(t *testing.T) {
	for _, n := range []int{64, 257, 1000} {
		ts := toF32(testSeries(n, 11))
		for _, l := range []int{4, 7, 32} {
			s := n - l + 1
			row0 := make([]float32, s)
			for j := range row0 {
				sum := 0.0
				for p := 0; p < l; p++ {
					sum += float64(ts[p]) * float64(ts[j+p])
				}
				row0[j] = float32(sum)
			}
			got := append([]float32(nil), row0...)
			want := append([]float32(nil), row0...)
			for i := 1; i < 6 && i < s; i++ {
				RowNext32(got, ts, i, l, s)
				RefRowNext32(want, ts, i, l, s)
				got[0], want[0] = row0[0], row0[0] // column 0 is recomputed by the caller
				if !bits32Equal(got, want) {
					t.Fatalf("n=%d l=%d row %d: RowNext32 diverges from reference", n, l, i)
				}
			}
		}
	}
}

func TestKernelParityExtendRow32(t *testing.T) { forEachVariant(t, testKernelParityExtendRow32) }

func testKernelParityExtendRow32(t *testing.T) {
	const n = 512
	ts := toF32(testSeries(n, 12))
	for _, tc := range []struct{ i, cur, l int }{
		{0, 8, 9},
		{0, 8, 20},
		{5, 16, 17},
		{5, 16, 31},
		{2, 500, 510},
		{3, 12, 12},
	} {
		row0 := make([]float32, n-tc.cur+1)
		for j := range row0 {
			sum := 0.0
			for p := 0; p < tc.cur; p++ {
				sum += float64(ts[tc.i+p]) * float64(ts[j+p])
			}
			row0[j] = float32(sum)
		}
		got := append([]float32(nil), row0...)
		want := append([]float32(nil), row0...)
		ExtendRow32(got, ts, tc.i, tc.cur, tc.l)
		RefExtendRow32(want, ts, tc.i, tc.cur, tc.l)
		if !bits32Equal(got, want) {
			t.Fatalf("i=%d cur=%d l=%d: ExtendRow32 diverges from reference", tc.i, tc.cur, tc.l)
		}
	}
}

func TestKernelParityDiagScan32(t *testing.T) { forEachVariant(t, testKernelParityDiagScan32) }

func testKernelParityDiagScan32(t *testing.T) {
	for _, n := range []int{120, 493, 1000} {
		ts64 := testSeries(n, 13)
		ts := toF32(ts64)
		for _, l := range []int{8, 21} {
			s := n - l + 1
			means, invs := moments(ts64, l)
			head := make([]float32, s)
			for k := range head {
				sum := 0.0
				for p := 0; p < l; p++ {
					sum += float64(ts[p]) * float64(ts[k+p])
				}
				head[k] = float32(sum)
			}
			excl := (l + 3) / 4
			splits := [][2]int{{excl, s}, {excl, excl + 1}, {excl, excl + 5}, {s - 3, s}, {s - 1, s}}
			for _, sp := range splits {
				k0, k1 := sp[0], sp[1]
				if k0 < excl || k1 > s || k0 >= k1 {
					continue
				}
				gc := make([]float64, s)
				gi := make([]int32, s)
				wc := make([]float64, s)
				wi := make([]int32, s)
				for i := 0; i < s; i++ {
					gc[i], wc[i] = math.Inf(-1), math.Inf(-1)
					gi[i], wi[i] = -1, -1
				}
				DiagScan32(ts, head, means, invs, k0, k1, l, s, gc, gi)
				RefDiagScan32(ts, head, means, invs, k0, k1, l, s, wc, wi)
				if !bitsEqual(gc, wc) {
					t.Fatalf("n=%d l=%d k=[%d,%d): DiagScan32 corr diverges", n, l, k0, k1)
				}
				for i := range gi {
					if gi[i] != wi[i] {
						t.Fatalf("n=%d l=%d k=[%d,%d): DiagScan32 idx[%d]=%d != %d", n, l, k0, k1, i, gi[i], wi[i])
					}
				}
			}
		}
	}
}

// TestDiagScan32TracksFloat64 bounds the float32 carry's drift against the
// float64 diagonal pass: with the head and series rounded once to float32,
// the winning correlations must stay within single-precision tolerance
// (the engine's Carry32 contract: trailing digits only).
func TestDiagScan32TracksFloat64(t *testing.T) { forEachVariant(t, testDiagScan32TracksFloat64) }

func testDiagScan32TracksFloat64(t *testing.T) {
	const n, l = 800, 16
	ts64 := testSeries(n, 14)
	ts := toF32(ts64)
	s := n - l + 1
	means, invs := moments(ts64, l)
	head64 := make([]float64, s)
	head32 := make([]float32, s)
	for k := range head64 {
		head64[k] = series.Dot(ts64[0:l], ts64[k:k+l])
		head32[k] = float32(head64[k])
	}
	excl := (l + 3) / 4
	c64 := make([]float64, s)
	i64 := make([]int32, s)
	c32 := make([]float64, s)
	i32 := make([]int32, s)
	for i := 0; i < s; i++ {
		c64[i], c32[i] = math.Inf(-1), math.Inf(-1)
		i64[i], i32[i] = -1, -1
	}
	DiagScan(ts64, head64, means, invs, excl, s, l, s, c64, i64)
	DiagScan32(ts, head32, means, invs, excl, s, l, s, c32, i32)
	for i := 0; i < s; i++ {
		if math.IsInf(c64[i], -1) != math.IsInf(c32[i], -1) {
			t.Fatalf("offset %d: coverage differs (%v vs %v)", i, c64[i], c32[i])
		}
		if math.IsInf(c64[i], -1) {
			continue
		}
		// The f32 scan reads the same f64 moments; the drift comes from the
		// one-time rounding of head and series (relative ~1e-7, amplified
		// along a diagonal chain).
		if d := math.Abs(c64[i] - c32[i]); d > 2e-4 {
			t.Fatalf("offset %d: corr drift %g (f64 %g, f32-carry %g)", i, d, c64[i], c32[i])
		}
	}
}
