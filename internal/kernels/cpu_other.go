//go:build !amd64

package kernels

// Non-amd64 builds have no assembly tier.
const hasAVX2 = false
