//go:build amd64

#include "textflag.h"

// AVX2 kernel routines. Hard rules:
//
//   - No FMA, ever: every multiply-add is a separate VMULPD/VADDPD (or
//     VSUBPD) pair so the rounding matches the portable tiers bit for bit.
//   - No winner-state writes: the scan routines compute correlations and
//     (for the diagonal stepper) improvement masks only; the Go callers
//     own the total-order compare-updates.
//   - Every evaluation order mirrors the scalar expression it replaces,
//     lane by lane.

// func rowNextBlocks(r, a, b *float64, tail, head float64, lo, hi int)
// Descending groups of four: r[p+1] = r[p] + tail*a[p] - head*b[p] for
// p = hi … lo; caller guarantees (hi-lo+1) % 4 == 0. Group loads all
// happen before the group store, and descending order keeps later groups
// reading cells no earlier group wrote.
TEXT ·rowNextBlocks(SB), NOSPLIT, $0-56
	MOVQ r+0(FP), R8
	MOVQ a+8(FP), R9
	MOVQ b+16(FP), R10
	VBROADCASTSD tail+24(FP), Y1
	VBROADCASTSD head+32(FP), Y2
	MOVQ lo+40(FP), DX
	MOVQ hi+48(FP), AX

rowloop:
	LEAQ -3(AX), CX
	VMOVUPD (R8)(CX*8), Y3  // r[p-3 : p+1]
	VMOVUPD (R9)(CX*8), Y4  // a[p-3 : p+1]
	VMOVUPD (R10)(CX*8), Y5 // b[p-3 : p+1]
	VMULPD  Y4, Y1, Y4      // tail*a
	VADDPD  Y4, Y3, Y3      // r + tail*a
	VMULPD  Y5, Y2, Y5      // head*b
	VSUBPD  Y5, Y3, Y3      // (r + tail*a) - head*b
	LEAQ -2(AX), CX
	VMOVUPD Y3, (R8)(CX*8)  // r[p-2 : p+2]
	SUBQ $4, AX
	CMPQ AX, DX
	JGE  rowloop

	VZEROUPPER
	RET

// func axpyBlocks(dst, x *float64, a float64, n int)
// dst[j] += a*x[j] for j in [0, n), n a multiple of 4.
TEXT ·axpyBlocks(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), R8
	MOVQ x+8(FP), R9
	VBROADCASTSD a+16(FP), Y1
	MOVQ n+24(FP), DX
	XORQ AX, AX

axpy8:
	LEAQ 8(AX), CX
	CMPQ CX, DX
	JGT  axpy4
	VMOVUPD (R9)(AX*8), Y2
	VMOVUPD 32(R9)(AX*8), Y3
	VMULPD  Y2, Y1, Y2
	VMULPD  Y3, Y1, Y3
	VMOVUPD (R8)(AX*8), Y4
	VMOVUPD 32(R8)(AX*8), Y5
	VADDPD  Y2, Y4, Y4 // dst + a*x
	VADDPD  Y3, Y5, Y5
	VMOVUPD Y4, (R8)(AX*8)
	VMOVUPD Y5, 32(R8)(AX*8)
	ADDQ $8, AX
	JMP  axpy8

axpy4:
	LEAQ 4(AX), CX
	CMPQ CX, DX
	JGT  axpydone
	VMOVUPD (R9)(AX*8), Y2
	VMULPD  Y2, Y1, Y2
	VMOVUPD (R8)(AX*8), Y4
	VADDPD  Y2, Y4, Y4
	VMOVUPD Y4, (R8)(AX*8)
	ADDQ $4, AX
	JMP  axpy4

axpydone:
	VZEROUPPER
	RET

// func corrMax(r, m, v *float64, invFl, muA, invA float64, n int) float64
// max over [0, n) of ((r*invFl) - muA*m) * invA * v; n a positive
// multiple of 4. No NaNs reach the kernels, so VMAXPD is a pure maximum.
TEXT ·corrMax(SB), NOSPLIT, $0-64
	MOVQ r+0(FP), R8
	MOVQ m+8(FP), R9
	MOVQ v+16(FP), R10
	VBROADCASTSD invFl+24(FP), Y1
	VBROADCASTSD muA+32(FP), Y2
	VBROADCASTSD invA+40(FP), Y3
	MOVQ n+48(FP), DX

	// First group seeds the running lane maxima.
	VMOVUPD (R8), Y4
	VMULPD  Y1, Y4, Y4 // r*invFl
	VMOVUPD (R9), Y5
	VMULPD  Y2, Y5, Y5 // muA*m
	VSUBPD  Y5, Y4, Y4
	VMULPD  Y3, Y4, Y4 // * invA
	VMOVUPD (R10), Y5
	VMULPD  Y5, Y4, Y4 // * v
	MOVQ $4, AX

maxloop:
	CMPQ AX, DX
	JGE  maxdone
	VMOVUPD (R8)(AX*8), Y5
	VMULPD  Y1, Y5, Y5
	VMOVUPD (R9)(AX*8), Y6
	VMULPD  Y2, Y6, Y6
	VSUBPD  Y6, Y5, Y5
	VMULPD  Y3, Y5, Y5
	VMOVUPD (R10)(AX*8), Y6
	VMULPD  Y6, Y5, Y5
	VMAXPD  Y5, Y4, Y4
	ADDQ $4, AX
	JMP  maxloop

maxdone:
	VEXTRACTF128 $1, Y4, X5
	VMAXPD   X5, X4, X4
	VPERMILPD $1, X4, X5
	VMAXSD   X5, X4, X4
	VZEROUPPER
	MOVSD X4, ret+56(FP)
	RET

// func corrBuf(dst, cb, mb, vb *float64, invFl, muJ, invJ float64, n int)
// dst[y] = ((cb*invFl) - mb*muJ) * vb * invJ for y in [0, n), n a
// multiple of 4 (note: *vb before *invJ — ColScan's evaluation order).
TEXT ·corrBuf(SB), NOSPLIT, $0-64
	MOVQ dst+0(FP), R8
	MOVQ cb+8(FP), R9
	MOVQ mb+16(FP), R10
	MOVQ vb+24(FP), R11
	VBROADCASTSD invFl+32(FP), Y1
	VBROADCASTSD muJ+40(FP), Y2
	VBROADCASTSD invJ+48(FP), Y3
	MOVQ n+56(FP), DX
	XORQ AX, AX

bufloop:
	CMPQ AX, DX
	JGE  bufdone
	VMOVUPD (R9)(AX*8), Y4
	VMULPD  Y1, Y4, Y4 // cb*invFl
	VMOVUPD (R10)(AX*8), Y5
	VMULPD  Y2, Y5, Y5 // mb*muJ
	VSUBPD  Y5, Y4, Y4
	VMOVUPD (R11)(AX*8), Y6
	VMULPD  Y6, Y4, Y4 // * vb
	VMULPD  Y3, Y4, Y4 // * invJ
	VMOVUPD Y4, (R8)(AX*8)
	ADDQ $4, AX
	JMP  bufloop

bufdone:
	VZEROUPPER
	RET

// func diagSteps4(qt, w, u, ta, tb, mi, vi, mj, vj, ci, cj *float64,
//                 invFl float64, i0, n int) int
// Advances the four interleaved diagonal chains over cells i in [i0, n):
//   qt[x] += ta[i]*w[i+x] - tb[i-1]*u[i+x]
//   c[x]   = ((qt[x]*invFl) - mi[i]*mj[i+x]) * vi[i] * vj[i+x]
// and returns at the first i where any lane has c >= ci[i] or
// c >= cj[i+x] (chains already advanced to that cell and stored back),
// or n when no cell triggers. Winner state is never written here.
TEXT ·diagSteps4(SB), NOSPLIT, $0-120
	MOVQ w+8(FP), R8
	MOVQ u+16(FP), R9
	MOVQ ta+24(FP), R10
	MOVQ tb+32(FP), R11
	MOVQ mi+40(FP), R12
	MOVQ vi+48(FP), R13
	MOVQ mj+56(FP), R14
	MOVQ vj+64(FP), DI
	MOVQ ci+72(FP), SI
	MOVQ cj+80(FP), BX
	VBROADCASTSD invFl+88(FP), Y1
	MOVQ i0+96(FP), AX
	MOVQ n+104(FP), DX
	MOVQ qt+0(FP), CX
	VMOVUPD (CX), Y0 // chain lanes
	CMPQ AX, DX
	JGE  dsdone

dsloop:
	VBROADCASTSD (R10)(AX*8), Y2 // ha = ta[i]
	LEAQ -1(AX), CX
	VBROADCASTSD (R11)(CX*8), Y3 // hb = tb[i-1]
	VMOVUPD (R8)(AX*8), Y4       // w[i : i+4]
	VMOVUPD (R9)(AX*8), Y5       // u[i : i+4]
	VMULPD  Y4, Y2, Y4           // ha*w
	VMULPD  Y5, Y3, Y5           // hb*u
	VSUBPD  Y5, Y4, Y4
	VADDPD  Y4, Y0, Y0           // qt += ha*w - hb*u
	VMULPD  Y1, Y0, Y6           // qt*invFl
	VBROADCASTSD (R12)(AX*8), Y7 // m0 = mi[i]
	VMOVUPD (R14)(AX*8), Y8      // mj[i : i+4]
	VMULPD  Y8, Y7, Y7           // m0*mj
	VSUBPD  Y7, Y6, Y6
	VBROADCASTSD (R13)(AX*8), Y9 // v0 = vi[i]
	VMULPD  Y9, Y6, Y6           // * v0
	VMOVUPD (DI)(AX*8), Y10      // vj[i : i+4]
	VMULPD  Y10, Y6, Y6          // * vj → c lanes
	VBROADCASTSD (SI)(AX*8), Y11 // ci[i]
	VCMPPD  $0x0d, Y11, Y6, Y12  // c >= ci[i] (GE_OS)
	VMOVUPD (BX)(AX*8), Y13      // cj[i : i+4]
	VCMPPD  $0x0d, Y13, Y6, Y14  // c >= cj[i+x]
	VORPD   Y14, Y12, Y12
	VMOVMSKPD Y12, CX
	TESTL CX, CX
	JNE  dsdone
	INCQ AX
	CMPQ AX, DX
	JLT  dsloop

dsdone:
	MOVQ qt+0(FP), CX
	VMOVUPD Y0, (CX)
	MOVQ AX, ret+112(FP)
	VZEROUPPER
	RET

// func diagSteps32x(qt *float64, w, u, ta, tb *float32,
//                   mi, vi, mj, vj, ci, cj *float64,
//                   invFl float64, i0, n int) int
// diagSteps4 with the series-derived streams stored in float32 and
// widened at load; chains and compares run in float64.
TEXT ·diagSteps32x(SB), NOSPLIT, $0-120
	MOVQ w+8(FP), R8
	MOVQ u+16(FP), R9
	MOVQ ta+24(FP), R10
	MOVQ tb+32(FP), R11
	MOVQ mi+40(FP), R12
	MOVQ vi+48(FP), R13
	MOVQ mj+56(FP), R14
	MOVQ vj+64(FP), DI
	MOVQ ci+72(FP), SI
	MOVQ cj+80(FP), BX
	VBROADCASTSD invFl+88(FP), Y1
	MOVQ i0+96(FP), AX
	MOVQ n+104(FP), DX
	MOVQ qt+0(FP), CX
	VMOVUPD (CX), Y0
	CMPQ AX, DX
	JGE  d32done

d32loop:
	VBROADCASTSS (R10)(AX*4), X2 // ta[i] ×4 (float32)
	VCVTPS2PD X2, Y2             // widen → ha lanes
	LEAQ -1(AX), CX
	VBROADCASTSS (R11)(CX*4), X3 // tb[i-1] ×4
	VCVTPS2PD X3, Y3
	VCVTPS2PD (R8)(AX*4), Y4     // w[i : i+4] widened
	VCVTPS2PD (R9)(AX*4), Y5     // u[i : i+4] widened
	VMULPD  Y4, Y2, Y4
	VMULPD  Y5, Y3, Y5
	VSUBPD  Y5, Y4, Y4
	VADDPD  Y4, Y0, Y0
	VMULPD  Y1, Y0, Y6
	VBROADCASTSD (R12)(AX*8), Y7
	VMOVUPD (R14)(AX*8), Y8
	VMULPD  Y8, Y7, Y7
	VSUBPD  Y7, Y6, Y6
	VBROADCASTSD (R13)(AX*8), Y9
	VMULPD  Y9, Y6, Y6
	VMOVUPD (DI)(AX*8), Y10
	VMULPD  Y10, Y6, Y6
	VBROADCASTSD (SI)(AX*8), Y11
	VCMPPD  $0x0d, Y11, Y6, Y12
	VMOVUPD (BX)(AX*8), Y13
	VCMPPD  $0x0d, Y13, Y6, Y14
	VORPD   Y14, Y12, Y12
	VMOVMSKPD Y12, CX
	TESTL CX, CX
	JNE  d32done
	INCQ AX
	CMPQ AX, DX
	JLT  d32loop

d32done:
	MOVQ qt+0(FP), CX
	VMOVUPD Y0, (CX)
	MOVQ AX, ret+112(FP)
	VZEROUPPER
	RET
