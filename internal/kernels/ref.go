package kernels

// This file retains the naive reference implementation of every kernel:
// the defining scalar loop, with the per-cell exclusion/boundary branches
// spelled out and no unrolling or interleaving. TestKernelParity asserts
// each optimized routine is bit-identical to its reference on adversarial
// inputs (σ=0 degenerate windows, exclusion zones clipped at the series
// edges, lengths that exercise every unroll remainder). The references are
// compiled into tests only in practice, but live in the package proper so
// ablation benchmarks can measure the optimized/naive gap directly.

// RefRowNext is RowNext as the plain descending loop.
func RefRowNext(row, t []float64, i, l, s int) {
	tail := t[i+l-1]
	head := t[i-1]
	for j := s - 1; j >= 1; j-- {
		row[j] = row[j-1] + tail*t[j+l-1] - head*t[j-1]
	}
}

// RefArgmaxCorr is ArgmaxCorr as the one-range loop with the per-cell
// exclusion test: j ∈ [0, s) skipping e1 ≤ j < j2.
func RefArgmaxCorr(row, means, invs []float64, e1, j2, s int, invFl, muA, invA float64, bestCorr float64, bestJ int) (float64, int) {
	for j := 0; j < s; j++ {
		if j >= e1 && j < j2 {
			continue
		}
		c := (row[j]*invFl - muA*means[j]) * invA * invs[j]
		if c > bestCorr {
			bestCorr, bestJ = c, j
		}
	}
	return bestCorr, bestJ
}

// RefExtendRow is ExtendRow as the one-pass-per-length-step loop nest the
// fused kernel replaces (each step updates every cell still in range).
func RefExtendRow(row, t []float64, i, cur, l int) {
	n := len(t)
	for ; cur < l; cur++ {
		tail := t[i+cur]
		for j := 0; j < n-cur; j++ {
			row[j] += tail * t[j+cur]
		}
	}
}

// RefAdvanceDot is AdvanceDot as the per-step loop.
func RefAdvanceDot(qt float64, t []float64, i, j, p0, p1 int) float64 {
	for p := p0; p < p1; p++ {
		qt += t[i+p] * t[j+p]
	}
	return qt
}

// RefColScan is ColScan as the plain ascending loop: one candidate per
// earlier window, the slot-i total-order update and the slot-j running
// maximum spelled out.
func RefColScan(col, means, invs []float64, iEnd int, invFl, muJ, invJ float64, corr []float64, idx []int32, j int32, bestCorr float64, bestIdx int32) (float64, int32) {
	for i := 0; i < iEnd; i++ {
		c := (col[i]*invFl - means[i]*muJ) * invs[i] * invJ
		if c > corr[i] || (c == corr[i] && j < idx[i]) {
			corr[i], idx[i] = c, j
		}
		if c > bestCorr {
			bestCorr, bestIdx = c, int32(i)
		}
	}
	return bestCorr, bestIdx
}

// RefDiagScan is DiagScan one diagonal at a time — the shape the
// incremental engine's pass had before the kernels were consolidated.
func RefDiagScan(t, head, means, invs []float64, k0, k1, l, s int, corr []float64, idx []int32) {
	invFl := 1 / float64(l)
	for k := k0; k < k1; k++ {
		qt := head[k]
		c := (qt*invFl - means[0]*means[k]) * invs[0] * invs[k]
		if c > corr[0] || (c == corr[0] && int32(k) < idx[0]) {
			corr[0], idx[0] = c, int32(k)
		}
		if c > corr[k] || (c == corr[k] && 0 < idx[k]) {
			corr[k], idx[k] = c, 0
		}
		for i := 1; i+k < s; i++ {
			j := i + k
			qt += t[i+l-1]*t[j+l-1] - t[i-1]*t[j-1]
			c := (qt*invFl - means[i]*means[j]) * invs[i] * invs[j]
			if c > corr[i] || (c == corr[i] && int32(j) < idx[i]) {
				corr[i], idx[i] = c, int32(j)
			}
			if c > corr[j] || (c == corr[j] && int32(i) < idx[j]) {
				corr[j], idx[j] = c, int32(i)
			}
		}
	}
}
