package kernels

// The generic dispatch tier: the portable 4-way-unrolled kernels (PR 5).
// These are the first bodies the Ref* parity suite certified and the
// baseline every other tier must match bit-for-bit; keep them boring.

// rowNextGeneric is RowNext, 4-way unrolled.
func rowNextGeneric(row, t []float64, i, l, s int) {
	if s < 2 {
		return
	}
	tail := t[i+l-1]
	head := t[i-1]
	// Shift to p = j−1: row[p+1] = row[p] + tail·a[p] − head·b[p] with
	// a[p] = t[p+l], b[p] = t[p]. Hoisted sub-slices of exact length s−1
	// let the compiler drop the per-cell bounds checks.
	a := t[l : l+s-1]
	b := t[0 : s-1]
	r := row[0:s]
	p := s - 2
	for ; p >= 3; p -= 4 {
		r0 := r[p] + tail*a[p] - head*b[p]
		r1 := r[p-1] + tail*a[p-1] - head*b[p-1]
		r2 := r[p-2] + tail*a[p-2] - head*b[p-2]
		r3 := r[p-3] + tail*a[p-3] - head*b[p-3]
		r[p+1] = r0
		r[p] = r1
		r[p-1] = r2
		r[p-2] = r3
	}
	for ; p >= 0; p-- {
		r[p+1] = r[p] + tail*a[p] - head*b[p]
	}
}

// argmaxCorrRange scans one contiguous range [j0, j1), 4-way unrolled.
func argmaxCorrRange(row, means, invs []float64, j0, j1 int, invFl, muA, invA float64, bestCorr float64, bestJ int) (float64, int) {
	if j0 < 0 {
		j0 = 0
	}
	if j1 <= j0 {
		return bestCorr, bestJ
	}
	r := row[j0:j1]
	m := means[j0:j1]
	m = m[:len(r)] // equal-length facts for BCE (panics on violated preconditions)
	v := invs[j0:j1]
	v = v[:len(r)]
	n := len(r)
	x := 0
	for ; x+4 <= n; x += 4 {
		c0 := (r[x]*invFl - muA*m[x]) * invA * v[x]
		c1 := (r[x+1]*invFl - muA*m[x+1]) * invA * v[x+1]
		c2 := (r[x+2]*invFl - muA*m[x+2]) * invA * v[x+2]
		c3 := (r[x+3]*invFl - muA*m[x+3]) * invA * v[x+3]
		if c0 > bestCorr {
			bestCorr, bestJ = c0, j0+x
		}
		if c1 > bestCorr {
			bestCorr, bestJ = c1, j0+x+1
		}
		if c2 > bestCorr {
			bestCorr, bestJ = c2, j0+x+2
		}
		if c3 > bestCorr {
			bestCorr, bestJ = c3, j0+x+3
		}
	}
	for ; x < n; x++ {
		c := (r[x]*invFl - muA*m[x]) * invA * v[x]
		if c > bestCorr {
			bestCorr, bestJ = c, j0+x
		}
	}
	return bestCorr, bestJ
}

// extendRowGeneric is ExtendRow with the per-cell accumulation written as
// one scalar chain per cell.
func extendRowGeneric(row, t []float64, i, cur, l int) {
	n := len(t)
	if cur >= l {
		return
	}
	if l-cur == 1 {
		extendRowOne(row, t, i, cur, n)
		return
	}
	q := t[i+cur : i+l] // q[x] = t[i+cur+x], the anchor-side step factors
	full := n - l + 1   // cells [0, full) take every step
	if full < 0 {
		full = 0
	}
	for j := 0; j < full; j++ {
		w := t[j+cur : j+l]
		v := row[j]
		for x, qv := range q {
			v += qv * w[x]
		}
		row[j] = v
	}
	extendRowRagged(row, t, full, cur, n, q)
}

// extendRowRagged finishes the cells [full, n−cur) whose step ranges clip
// at the series end — shared by every portable tier (the region is O(l)
// cells, never the pass cost).
func extendRowRagged(row, t []float64, full, cur, n int, q []float64) {
	for j := full; j < n-cur; j++ {
		w := t[j+cur : n] // len = n−j−cur = the steps this cell still takes
		v := row[j]
		for x, wv := range w {
			v += q[x] * wv
		}
		row[j] = v
	}
}

// extendRowOne is the single-step fast path of ExtendRow (the common case
// on consecutive lengths), 4-way unrolled.
func extendRowOne(row, t []float64, i, cur, n int) {
	tail := t[i+cur]
	w := t[cur:n] // w[j] = t[j+cur], j < n−cur
	r := row[0 : n-cur]
	j := 0
	for ; j+4 <= len(r); j += 4 {
		r0 := r[j] + tail*w[j]
		r1 := r[j+1] + tail*w[j+1]
		r2 := r[j+2] + tail*w[j+2]
		r3 := r[j+3] + tail*w[j+3]
		r[j] = r0
		r[j+1] = r1
		r[j+2] = r2
		r[j+3] = r3
	}
	for ; j < len(r); j++ {
		r[j] += tail * w[j]
	}
}

// colScanGeneric is ColScan, 4-way unrolled with sequential compare-updates.
func colScanGeneric(col, means, invs []float64, iEnd int, invFl, muJ, invJ float64, corr []float64, idx []int32, j int32, bestCorr float64, bestIdx int32) (float64, int32) {
	if iEnd <= 0 {
		return bestCorr, bestIdx
	}
	// Hoisted equal-length sub-slices let the compiler drop the per-cell
	// bounds checks (they panic on violated preconditions, as intended).
	cl := col[0:iEnd]
	m := means[0:iEnd]
	m = m[:len(cl)]
	v := invs[0:iEnd]
	v = v[:len(cl)]
	cr := corr[0:iEnd]
	cr = cr[:len(cl)]
	ix := idx[0:iEnd]
	ix = ix[:len(cl)]
	i := 0
	for ; i+4 <= len(cl); i += 4 {
		c0 := (cl[i]*invFl - m[i]*muJ) * v[i] * invJ
		c1 := (cl[i+1]*invFl - m[i+1]*muJ) * v[i+1] * invJ
		c2 := (cl[i+2]*invFl - m[i+2]*muJ) * v[i+2] * invJ
		c3 := (cl[i+3]*invFl - m[i+3]*muJ) * v[i+3] * invJ
		if c0 > cr[i] || (c0 == cr[i] && j < ix[i]) {
			cr[i], ix[i] = c0, j
		}
		if c1 > cr[i+1] || (c1 == cr[i+1] && j < ix[i+1]) {
			cr[i+1], ix[i+1] = c1, j
		}
		if c2 > cr[i+2] || (c2 == cr[i+2] && j < ix[i+2]) {
			cr[i+2], ix[i+2] = c2, j
		}
		if c3 > cr[i+3] || (c3 == cr[i+3] && j < ix[i+3]) {
			cr[i+3], ix[i+3] = c3, j
		}
		// Sequential compare-updates in ascending i keep the first maximum
		// (= smallest neighbor on exact ties), matching the total order.
		if c0 > bestCorr {
			bestCorr, bestIdx = c0, int32(i)
		}
		if c1 > bestCorr {
			bestCorr, bestIdx = c1, int32(i+1)
		}
		if c2 > bestCorr {
			bestCorr, bestIdx = c2, int32(i+2)
		}
		if c3 > bestCorr {
			bestCorr, bestIdx = c3, int32(i+3)
		}
	}
	for ; i < len(cl); i++ {
		c := (cl[i]*invFl - m[i]*muJ) * v[i] * invJ
		if c > cr[i] || (c == cr[i] && j < ix[i]) {
			cr[i], ix[i] = c, j
		}
		if c > bestCorr {
			bestCorr, bestIdx = c, int32(i)
		}
	}
	return bestCorr, bestIdx
}

// diagScanGeneric is DiagScan with the 4-diagonal interleave.
func diagScanGeneric(t, head, means, invs []float64, k0, k1, l, s int, corr []float64, idx []int32) {
	invFl := 1 / float64(l)
	k := k0
	for ; k+4 <= k1; k += 4 {
		diagQuad(t, head, means, invs, k, l, s, invFl, corr, idx)
	}
	for ; k < k1; k++ {
		diagOne(t, means, invs, head[k], k, l, s, invFl, corr, idx)
	}
}

// diagOne streams one whole diagonal k from its head cell qt = QT(0, k).
func diagOne(t, means, invs []float64, qt float64, k, l, s int, invFl float64, corr []float64, idx []int32) {
	c := (qt*invFl - means[0]*means[k]) * invs[0] * invs[k]
	update(corr, idx, 0, c, int32(k))
	update(corr, idx, k, c, 0)
	diagOneTail(t, means, invs, qt, k, l, s, invFl, corr, idx, 0)
}

// diagQuad interleaves diagonals k, k+1, k+2, k+3: the four dot-product
// chains advance together over their common cell range, then each
// diagonal's leftover tail finishes on the scalar path, resuming from the
// carried chain value.
func diagQuad(t, head, means, invs []float64, k, l, s int, invFl float64, corr []float64, idx []int32) {
	qt0, qt1, qt2, qt3 := head[k], head[k+1], head[k+2], head[k+3]
	// i = 0 row: the head cells themselves.
	c0 := (qt0*invFl - means[0]*means[k]) * invs[0] * invs[k]
	c1 := (qt1*invFl - means[0]*means[k+1]) * invs[0] * invs[k+1]
	c2 := (qt2*invFl - means[0]*means[k+2]) * invs[0] * invs[k+2]
	c3 := (qt3*invFl - means[0]*means[k+3]) * invs[0] * invs[k+3]
	bc, bj := c0, int32(k)
	if c1 > bc {
		bc, bj = c1, int32(k+1)
	}
	if c2 > bc {
		bc, bj = c2, int32(k+2)
	}
	if c3 > bc {
		bc, bj = c3, int32(k+3)
	}
	update(corr, idx, 0, bc, bj)
	update(corr, idx, k, c0, 0)
	update(corr, idx, k+1, c1, 0)
	update(corr, idx, k+2, c2, 0)
	update(corr, idx, k+3, c3, 0)

	// Common range: every i with all four diagonals still in bounds
	// (i + k+3 ≤ s−1). Every array is hoisted into a sub-slice of exactly
	// the common length so the compiler can prove all indexes in range.
	m := s - k - 4
	{
		w := t[k+l-1 : s+l-1] // w[i+x] = t[(i+x)+k+l-1] = t[j+x+l-1]
		u := t[k-1 : s-1]     // u[i+x] = t[j+x-1]
		u = u[:len(w)]
		ta := t[l-1 : l-1+s-k] // ta[i] = t[i+l-1]
		ta = ta[:len(w)]
		tb := t[0 : s-k] // tb[i-1] = t[i-1]
		tb = tb[:len(w)]
		mi := means[0 : s-k]
		mi = mi[:len(w)]
		vi := invs[0 : s-k]
		vi = vi[:len(w)]
		mj := means[k:s] // mj[i+x] = means[j+x]
		mj = mj[:len(w)]
		vj := invs[k:s]
		vj = vj[:len(w)]
		ci := corr[0 : s-k]
		ci = ci[:len(w)]
		ii := idx[0 : s-k]
		ii = ii[:len(w)]
		cj := corr[k:s]
		cj = cj[:len(w)]
		ij := idx[k:s]
		ij = ij[:len(w)]
		for i := 1; i+4 <= len(w); i++ {
			ha, hb := ta[i], tb[i-1]
			qt0 += ha*w[i] - hb*u[i]
			qt1 += ha*w[i+1] - hb*u[i+1]
			qt2 += ha*w[i+2] - hb*u[i+2]
			qt3 += ha*w[i+3] - hb*u[i+3]
			m0, v0 := mi[i], vi[i]
			c0 := (qt0*invFl - m0*mj[i]) * v0 * vj[i]
			c1 := (qt1*invFl - m0*mj[i+1]) * v0 * vj[i+1]
			c2 := (qt2*invFl - m0*mj[i+2]) * v0 * vj[i+2]
			c3 := (qt3*invFl - m0*mj[i+3]) * v0 * vj[i+3]
			j := int32(i + k)
			// Sequential compare-updates, ascending j: each branch is
			// almost always not-taken (predictable), unlike a pairwise
			// max reduction whose branches are data-random. One compare
			// on the common path: c ≥ cur implies c == cur when c > cur
			// fails (no NaNs reach here), so the tie-break only runs on
			// the rare improving path.
			if c0 >= ci[i] {
				if c0 > ci[i] || j < ii[i] {
					ci[i], ii[i] = c0, j
				}
			}
			if c1 >= ci[i] {
				if c1 > ci[i] || j+1 < ii[i] {
					ci[i], ii[i] = c1, j+1
				}
			}
			if c2 >= ci[i] {
				if c2 > ci[i] || j+2 < ii[i] {
					ci[i], ii[i] = c2, j+2
				}
			}
			if c3 >= ci[i] {
				if c3 > ci[i] || j+3 < ii[i] {
					ci[i], ii[i] = c3, j+3
				}
			}
			a := int32(i)
			if c0 >= cj[i] {
				if c0 > cj[i] || a < ij[i] {
					cj[i], ij[i] = c0, a
				}
			}
			if c1 >= cj[i+1] {
				if c1 > cj[i+1] || a < ij[i+1] {
					cj[i+1], ij[i+1] = c1, a
				}
			}
			if c2 >= cj[i+2] {
				if c2 > cj[i+2] || a < ij[i+2] {
					cj[i+2], ij[i+2] = c2, a
				}
			}
			if c3 >= cj[i+3] {
				if c3 > cj[i+3] || a < ij[i+3] {
					cj[i+3], ij[i+3] = c3, a
				}
			}
		}
	}

	// Tails: diagonals k, k+1, k+2 have 3, 2, 1 cells left past the common
	// range (diagonal k+3 ended exactly at i = m). Each resumes from its
	// carried chain value at the last visited cell. When m = 0 the common
	// loop never ran and the chains resume from the head cells themselves.
	if m < 0 {
		m = 0
	}
	diagOneTail(t, means, invs, qt0, k, l, s, invFl, corr, idx, m)
	diagOneTail(t, means, invs, qt1, k+1, l, s, invFl, corr, idx, m)
	diagOneTail(t, means, invs, qt2, k+2, l, s, invFl, corr, idx, m)
}

// diagOneTail finishes diagonal k from cell i0+1 onward, given qt = the
// chain value at cell i0 (whose compare has already been applied).
func diagOneTail(t, means, invs []float64, qt float64, k, l, s int, invFl float64, corr []float64, idx []int32, i0 int) {
	w := t[k+l-1 : s+l-1] // w[i] = t[j+l-1], len s−k
	u := t[k-1 : s-1]
	u = u[:len(w)]
	ta := t[l-1 : l-1+s-k]
	ta = ta[:len(w)]
	tb := t[0 : s-k]
	tb = tb[:len(w)]
	mi := means[0 : s-k]
	mi = mi[:len(w)]
	vi := invs[0 : s-k]
	vi = vi[:len(w)]
	mj := means[k:s]
	mj = mj[:len(w)]
	vj := invs[k:s]
	vj = vj[:len(w)]
	ci := corr[0 : s-k]
	ci = ci[:len(w)]
	ii := idx[0 : s-k]
	ii = ii[:len(w)]
	cj := corr[k:s]
	cj = cj[:len(w)]
	ij := idx[k:s]
	ij = ij[:len(w)]
	for i := i0 + 1; i < len(w); i++ {
		qt += ta[i]*w[i] - tb[i-1]*u[i]
		c := (qt*invFl - mi[i]*mj[i]) * vi[i] * vj[i]
		j := int32(i + k)
		if c >= ci[i] {
			if c > ci[i] || j < ii[i] {
				ci[i], ii[i] = c, j
			}
		}
		a := int32(i)
		if c >= cj[i] {
			if c > cj[i] || a < ij[i] {
				cj[i], ij[i] = c, a
			}
		}
	}
}
