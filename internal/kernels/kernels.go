// Package kernels holds the engine's arithmetic hot loops — the STOMP row
// recurrence, the branch-free argmax-correlation scans, the fused
// multi-length dot-product extensions, the streaming column scan, and the
// diagonal pass of the incremental cross-length engine — consolidated from
// the per-file copies that used to live in internal/core, internal/stomp
// and the hot-row path.
//
// Every routine here is paired with a naive reference implementation in
// ref.go that spells out the defining loop, and TestKernelParity asserts
// every dispatch tier is bit-identical to it (including σ=0 degenerate
// windows and exclusion zones clipped at the series edges). Because every
// plan of the engine — pruned, from-scratch full, incremental, streaming —
// calls the same kernels, arithmetic identity across plans is enforced by
// construction: there is exactly one expression for each recurrence and
// one for the division-free correlation compare of each path.
//
// # Dispatch tiers
//
// Each kernel dispatches to one of up to three implementations, selected
// once at process start (see dispatch.go; VALMOD_KERNELS forces a tier):
//
//   - generic — the portable 4-way-unrolled loops (the PR 5 kernels), the
//     shape the references certify first.
//   - ilp — restructured portable variants: wider diagonal interleave
//     (8 chains), interleaved per-cell accumulation chains in the fused
//     extensions, and the argmax scans split into a branch-light
//     correlation sweep plus a rare winner re-scan.
//   - avx2 — amd64 assembly (runtime CPUID-detected), four float64 lanes
//     per vector. The assembly never uses FMA: fused multiply-adds round
//     differently from the separate multiply and add the portable tiers
//     perform, and bit-identity across tiers is a hard contract.
//
// Every tier must produce bit-identical outputs. For pure arithmetic
// (RowNext, ExtendRow) that holds lane-by-lane because each output cell's
// operations run in the same order in every tier. For the winner scans
// (ArgmaxCorr, ColScan, DiagScan) it holds because winner selection is a
// maximum under the strict total order (correlation descending, neighbor
// offset ascending on exact ties), which is associative and commutative —
// any tier may reorder candidate visits, but every reordering reduces to
// the same argmax. AdvanceDot is the one kernel with a single serial
// floating-point accumulation chain and no slack to reorder, so every
// tier shares the one scalar loop.
//
// # Optimization rules the kernels follow
//
//   - Exclusion zones are handled by splitting each per-cell scan into the
//     two branch-free j-ranges [0, lo] and [hi, s) instead of testing
//     every cell against the zone.
//   - Loops are unrolled with slice bounds hoisted into sub-slices, so the
//     compiler can eliminate per-cell bounds checks.
//   - The diagonal pass interleaves independent diagonals per sweep: each
//     diagonal's dot product is a serial dependency chain, so interleaving
//     independent chains is what actually feeds the multiply units.
//   - Cross-length extensions carry all pending length steps through each
//     cell in one pass (ascending step order per cell, so the float adds
//     associate exactly as the one-pass-per-length loops they replace).
package kernels

// RowNext advances a STOMP dot-product row in place from anchor i−1 to
// anchor i at length l: row[j] = row[j−1] + t[i+l−1]·t[j+l−1] −
// t[i−1]·t[j−1] for j = s−1 … 1, reading row[j−1] before it is
// overwritten (descending order). row[0] is left untouched — the caller
// owns the j=0 boundary (an O(l) dot product or a symmetry lookup).
func RowNext(row, t []float64, i, l, s int) {
	switch active {
	case AVX2:
		rowNextAVX2(row, t, i, l, s)
	case ILP:
		rowNextILP(row, t, i, l, s)
	default:
		rowNextGeneric(row, t, i, l, s)
	}
}

// ArgmaxCorr returns the argmax over j ∈ [0, e1) ∪ [j2, s) of the
// division-free correlation
//
//	corr(j) = (row[j]·invFl − muA·means[j]) · invA · invs[j]
//
// — the ONE correlation expression of the engine, shared bit-for-bit with
// DiagScan (invFl = 1/ℓ, computed once per scan) — under strict
// improvement (the first maximum in ascending j wins — exactly the tie
// behavior of the scalar scan it replaces; an incoming bestCorr/bestJ seed
// survives exact ties). A degenerate candidate (invs[j] = 0) contributes
// corr 0, the √(2l)-distance convention. bestCorr/bestJ seed the running
// maximum (pass −Inf, −1 to start fresh). The two half-open ranges are the
// branch-free split of the exclusion zone: callers pass e1 = min(lo+1, s)
// clamped at 0 and j2 = max(hi, 0) clamped at s.
func ArgmaxCorr(row, means, invs []float64, e1, j2, s int, invFl, muA, invA float64, bestCorr float64, bestJ int) (float64, int) {
	switch active {
	case AVX2:
		bestCorr, bestJ = argmaxCorrRangeAVX2(row, means, invs, 0, e1, invFl, muA, invA, bestCorr, bestJ)
		return argmaxCorrRangeAVX2(row, means, invs, j2, s, invFl, muA, invA, bestCorr, bestJ)
	case ILP:
		bestCorr, bestJ = argmaxCorrRangeILP(row, means, invs, 0, e1, invFl, muA, invA, bestCorr, bestJ)
		return argmaxCorrRangeILP(row, means, invs, j2, s, invFl, muA, invA, bestCorr, bestJ)
	default:
		bestCorr, bestJ = argmaxCorrRange(row, means, invs, 0, e1, invFl, muA, invA, bestCorr, bestJ)
		return argmaxCorrRange(row, means, invs, j2, s, invFl, muA, invA, bestCorr, bestJ)
	}
}

// ExtendRow advances anchor i's dot-product row across every pending
// length step in one pass: cell j accumulates t[i+p]·t[j+p] for
// p ∈ [cur, min(l, n−j)) in ascending p order — bit-identical to running
// l−cur one-step passes (each of which updates j < n−p), because each
// cell's additions happen in the same order; only the pass structure is
// fused. Cells at j ≥ n−cur receive no step and are not touched. row must
// have at least n−cur valid cells when cur < l.
func ExtendRow(row, t []float64, i, cur, l int) {
	switch active {
	case AVX2:
		extendRowAVX2(row, t, i, cur, l)
	case ILP:
		extendRowILP(row, t, i, cur, l)
	default:
		extendRowGeneric(row, t, i, cur, l)
	}
}

// AdvanceDot adds Σ t[i+p]·t[j+p] for p ∈ [p0, p1) to qt, in ascending p
// order — the fused form of per-length lb.Entry.Advance calls, carrying a
// retained entry's dot product across every pending length step at once.
//
// AdvanceDot is one serial floating-point accumulation chain: any
// reassociation (lane splitting, pairwise trees) changes the rounding, so
// every dispatch tier shares this scalar loop. The callers amortize it —
// one call per retained entry, ranges of a few steps — so it is never the
// pass bottleneck the vectorized kernels are.
func AdvanceDot(qt float64, t []float64, i, j, p0, p1 int) float64 {
	if p1 <= p0 {
		return qt
	}
	a := t[i+p0 : i+p1]
	b := t[j+p0 : j+p1]
	b = b[:len(a)] // same width by construction; the fact feeds BCE
	for x, av := range a {
		qt += av * b[x]
	}
	return qt
}

// ColScan is the streaming right-append pass: window j of length l has
// just been appended and col[i] = QT(i, j) holds its dot products against
// every earlier window (the column AppendColumn produced). The scan visits
// the non-trivial candidates i ∈ [0, iEnd) (iEnd = j − excl + 1 clamped at
// 0), computes the engine's ONE division-free correlation
//
//	c = (col[i]·invFl − means[i]·muJ) · invs[i] · invJ
//
// (anchor-side factors first — the same association DiagScan uses for a
// cell (i, j) with i < j), improves slot i with candidate (c, j) under the
// strict total order (corr descending, neighbor ascending on exact ties),
// and returns the running best candidate for slot j itself — seeded by
// bestCorr/bestIdx (pass −Inf, −1 to start fresh), scanned in ascending i
// under strict improvement, so exact ties keep the smallest neighbor
// exactly as the total order demands. A degenerate endpoint (invs or invJ
// zero) contributes correlation 0, the √(2l)-distance convention.
func ColScan(col, means, invs []float64, iEnd int, invFl, muJ, invJ float64, corr []float64, idx []int32, j int32, bestCorr float64, bestIdx int32) (float64, int32) {
	switch active {
	case AVX2:
		return colScanAVX2(col, means, invs, iEnd, invFl, muJ, invJ, corr, idx, j, bestCorr, bestIdx)
	case ILP:
		return colScanILP(col, means, invs, iEnd, invFl, muJ, invJ, corr, idx, j, bestCorr, bestIdx)
	default:
		return colScanGeneric(col, means, invs, iEnd, invFl, muJ, invJ, corr, idx, j, bestCorr, bestIdx)
	}
}

// DiagScan streams diagonals [k0, k1) of the length-l self-join: each
// diagonal starts from its head cell head[k] = QT(0, k), advances with the
// in-length recurrence QT(i,j) = QT(i−1,j−1) + t[i+l−1]·t[j+l−1] −
// t[i−1]·t[j−1], and every cell's division-free correlation
//
//	c = (qt·invFl − means[i]·means[j]) · invs[i] · invs[j]
//
// updates the running best of both endpoints in corr/idx under the strict
// total order (corr descending, neighbor offset ascending on exact ties).
// Independent diagonals are interleaved per sweep — independent recurrence
// chains — which the total order renders bit-identical to the
// one-diagonal reference regardless of the interleave width each dispatch
// tier picks. The moment slices must be at length l; s = len(t) − l + 1.
func DiagScan(t, head, means, invs []float64, k0, k1, l, s int, corr []float64, idx []int32) {
	switch active {
	case AVX2:
		diagScanAVX2(t, head, means, invs, k0, k1, l, s, corr, idx)
	case ILP:
		diagScanILP(t, head, means, invs, k0, k1, l, s, corr, idx)
	default:
		diagScanGeneric(t, head, means, invs, k0, k1, l, s, corr, idx)
	}
}

// update applies one candidate (c, j) to slot i of corr/idx under the
// total order. It is the single definition of the winner rule.
func update(corr []float64, idx []int32, i int, c float64, j int32) {
	if c > corr[i] || (c == corr[i] && j < idx[i]) {
		corr[i], idx[i] = c, j
	}
}
