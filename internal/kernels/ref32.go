package kernels

// Naive references for the float32 dot-carry kernels (kernels32.go),
// following the ref.go discipline: the defining scalar loop with the
// rounding points spelled out. TestKernelParity32 asserts the optimized
// routines are bit-identical to these; the float64-vs-float32 drift
// itself is bounded by tolerance tests, not parity.

// RefRowNext32 is RowNext32 as the plain descending loop: widen, one
// float64 expression, round at the store.
func RefRowNext32(row, t []float32, i, l, s int) {
	tail := float64(t[i+l-1])
	head := float64(t[i-1])
	for j := s - 1; j >= 1; j-- {
		row[j] = float32(float64(row[j-1]) + tail*float64(t[j+l-1]) - head*float64(t[j-1]))
	}
}

// RefExtendRow32 is ExtendRow32 as the per-cell loop: each cell sums its
// pending step products in float64 (ascending step order) and rounds once
// per call — the per-call rounding discipline the fused kernel must match.
func RefExtendRow32(row, t []float32, i, cur, l int) {
	n := len(t)
	if cur >= l {
		return
	}
	for j := 0; j < n-cur; j++ {
		v := float64(row[j])
		for p := cur; p < l && j+p < n; p++ {
			v += float64(t[i+p]) * float64(t[j+p])
		}
		row[j] = float32(v)
	}
}

// RefDiagScan32 is DiagScan32 one diagonal at a time: float32 head and
// series widened at use, float64 chain carry, the engine's one
// correlation expression and total-order winner rule.
func RefDiagScan32(t, head []float32, means, invs []float64, k0, k1, l, s int, corr []float64, idx []int32) {
	invFl := 1 / float64(l)
	for k := k0; k < k1; k++ {
		qt := float64(head[k])
		c := (qt*invFl - means[0]*means[k]) * invs[0] * invs[k]
		if c > corr[0] || (c == corr[0] && int32(k) < idx[0]) {
			corr[0], idx[0] = c, int32(k)
		}
		if c > corr[k] || (c == corr[k] && 0 < idx[k]) {
			corr[k], idx[k] = c, 0
		}
		for i := 1; i+k < s; i++ {
			j := i + k
			qt += float64(t[i+l-1])*float64(t[j+l-1]) - float64(t[i-1])*float64(t[j-1])
			c := (qt*invFl - means[i]*means[j]) * invs[i] * invs[j]
			if c > corr[i] || (c == corr[i] && int32(j) < idx[i]) {
				corr[i], idx[i] = c, int32(j)
			}
			if c > corr[j] || (c == corr[j] && int32(i) < idx[j]) {
				corr[j], idx[j] = c, int32(i)
			}
		}
	}
}
