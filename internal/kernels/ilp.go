package kernels

import "math"

// The ILP dispatch tier: portable restructurings of the generic kernels
// with wider interleaves and inner bodies free of cross-iteration
// dependencies, so superscalar cores (and the compiler's auto-vectorizer,
// where it engages) can overlap the arithmetic. Per-lane evaluation
// orders are identical to the generic tier; only independent work is
// reordered, which the total-order winner rule renders bit-identical.

// rowNextILP delegates to the generic 4-way body. An 8-way unroll was
// measured ~15% SLOWER here: the lanes carry no dependency either way
// (each output reads only the pre-update left neighbor), so the
// out-of-order core already overlaps the generic groups, and the wider
// unroll just adds register pressure and code-size without removing a
// single stall. Kernels whose generic bodies DO carry a serial chain
// (ExtendRow's per-cell accumulators) are where the tier earns its keep.
func rowNextILP(row, t []float64, i, l, s int) {
	rowNextGeneric(row, t, i, l, s)
}

// argmaxBlock is the block width of the split argmax scans: big enough to
// amortize the rare winner re-scan, small enough to stay in L1.
const argmaxBlock = 64

// argmaxCorrRangeILP splits the fused compare-update scan into a pure
// correlation sweep (four independent running lane maxima, no
// cross-iteration dependency on the winner) plus a rare scalar re-scan of
// any block whose maximum beats the running best. The re-scan recomputes
// each correlation with the identical expression, so the first cell
// comparing equal to the block maximum is exactly the cell the sequential
// scan would have kept: bit-identical winner, branch-light common path.
func argmaxCorrRangeILP(row, means, invs []float64, j0, j1 int, invFl, muA, invA float64, bestCorr float64, bestJ int) (float64, int) {
	if j0 < 0 {
		j0 = 0
	}
	if j1 <= j0 {
		return bestCorr, bestJ
	}
	r := row[j0:j1]
	m := means[j0:j1]
	m = m[:len(r)]
	v := invs[j0:j1]
	v = v[:len(r)]
	n := len(r)
	x := 0
	for ; x+argmaxBlock <= n; x += argmaxBlock {
		rb := r[x : x+argmaxBlock]
		mb := m[x : x+argmaxBlock]
		mb = mb[:len(rb)]
		vb := v[x : x+argmaxBlock]
		vb = vb[:len(rb)]
		neg := math.Inf(-1)
		l0, l1, l2, l3 := neg, neg, neg, neg
		for y := 0; y+4 <= argmaxBlock; y += 4 {
			c0 := (rb[y]*invFl - muA*mb[y]) * invA * vb[y]
			c1 := (rb[y+1]*invFl - muA*mb[y+1]) * invA * vb[y+1]
			c2 := (rb[y+2]*invFl - muA*mb[y+2]) * invA * vb[y+2]
			c3 := (rb[y+3]*invFl - muA*mb[y+3]) * invA * vb[y+3]
			if c0 > l0 {
				l0 = c0
			}
			if c1 > l1 {
				l1 = c1
			}
			if c2 > l2 {
				l2 = c2
			}
			if c3 > l3 {
				l3 = c3
			}
		}
		if l1 > l0 {
			l0 = l1
		}
		if l2 > l0 {
			l0 = l2
		}
		if l3 > l0 {
			l0 = l3
		}
		if l0 > bestCorr {
			// Rare path: this block improves the best. The first cell
			// whose recomputed correlation equals the block maximum is
			// the one the sequential scan keeps.
			for y := 0; y < argmaxBlock; y++ {
				c := (rb[y]*invFl - muA*mb[y]) * invA * vb[y]
				if c == l0 {
					bestCorr, bestJ = c, j0+x+y
					break
				}
			}
		}
	}
	for ; x < n; x++ {
		c := (r[x]*invFl - muA*m[x]) * invA * v[x]
		if c > bestCorr {
			bestCorr, bestJ = c, j0+x
		}
	}
	return bestCorr, bestJ
}

// extendRowILP interleaves the per-cell accumulation chains of four
// adjacent cells. The generic body is one serial float64 chain per cell —
// latency-bound — while four chains overlap; each cell still accumulates
// its steps in ascending order, so every chain is bit-identical.
func extendRowILP(row, t []float64, i, cur, l int) {
	n := len(t)
	if cur >= l {
		return
	}
	if l-cur == 1 {
		extendRowOne(row, t, i, cur, n)
		return
	}
	q := t[i+cur : i+l]
	full := n - l + 1
	if full < 0 {
		full = 0
	}
	j := 0
	for ; j+4 <= full; j += 4 {
		base := t[j+cur:] // base[x+d] = t[(j+d)+cur+x], cell j+d's step x
		v0 := row[j]
		v1 := row[j+1]
		v2 := row[j+2]
		v3 := row[j+3]
		for x, qv := range q {
			v0 += qv * base[x]
			v1 += qv * base[x+1]
			v2 += qv * base[x+2]
			v3 += qv * base[x+3]
		}
		row[j] = v0
		row[j+1] = v1
		row[j+2] = v2
		row[j+3] = v3
	}
	for ; j < full; j++ {
		w := t[j+cur : j+l]
		v := row[j]
		for x, qv := range q {
			v += qv * w[x]
		}
		row[j] = v
	}
	extendRowRagged(row, t, full, cur, n, q)
}

// colScanILP widens the fused generic loop to eight cells per iteration:
// all eight correlations are computed up front (eight independent FP
// chains in flight) before any winner compare runs. The compares consume
// the identical values in the identical ascending order, so the result is
// bit-identical to the generic loop. (An earlier buffered two-pass form —
// block sweep into a scratch array, then a winner pass — measured slower
// than the fused loop: the second sweep re-pays the loads and the store
// buffer stalls on the scratch writes.)
func colScanILP(col, means, invs []float64, iEnd int, invFl, muJ, invJ float64, corr []float64, idx []int32, j int32, bestCorr float64, bestIdx int32) (float64, int32) {
	if iEnd <= 0 {
		return bestCorr, bestIdx
	}
	cl := col[0:iEnd]
	m := means[0:iEnd]
	m = m[:len(cl)]
	v := invs[0:iEnd]
	v = v[:len(cl)]
	cr := corr[0:iEnd]
	cr = cr[:len(cl)]
	ix := idx[0:iEnd]
	ix = ix[:len(cl)]
	i := 0
	for ; i+8 <= len(cl); i += 8 {
		c0 := (cl[i]*invFl - m[i]*muJ) * v[i] * invJ
		c1 := (cl[i+1]*invFl - m[i+1]*muJ) * v[i+1] * invJ
		c2 := (cl[i+2]*invFl - m[i+2]*muJ) * v[i+2] * invJ
		c3 := (cl[i+3]*invFl - m[i+3]*muJ) * v[i+3] * invJ
		c4 := (cl[i+4]*invFl - m[i+4]*muJ) * v[i+4] * invJ
		c5 := (cl[i+5]*invFl - m[i+5]*muJ) * v[i+5] * invJ
		c6 := (cl[i+6]*invFl - m[i+6]*muJ) * v[i+6] * invJ
		c7 := (cl[i+7]*invFl - m[i+7]*muJ) * v[i+7] * invJ
		if c0 > cr[i] || (c0 == cr[i] && j < ix[i]) {
			cr[i], ix[i] = c0, j
		}
		if c1 > cr[i+1] || (c1 == cr[i+1] && j < ix[i+1]) {
			cr[i+1], ix[i+1] = c1, j
		}
		if c2 > cr[i+2] || (c2 == cr[i+2] && j < ix[i+2]) {
			cr[i+2], ix[i+2] = c2, j
		}
		if c3 > cr[i+3] || (c3 == cr[i+3] && j < ix[i+3]) {
			cr[i+3], ix[i+3] = c3, j
		}
		if c4 > cr[i+4] || (c4 == cr[i+4] && j < ix[i+4]) {
			cr[i+4], ix[i+4] = c4, j
		}
		if c5 > cr[i+5] || (c5 == cr[i+5] && j < ix[i+5]) {
			cr[i+5], ix[i+5] = c5, j
		}
		if c6 > cr[i+6] || (c6 == cr[i+6] && j < ix[i+6]) {
			cr[i+6], ix[i+6] = c6, j
		}
		if c7 > cr[i+7] || (c7 == cr[i+7] && j < ix[i+7]) {
			cr[i+7], ix[i+7] = c7, j
		}
		// Sequential compare-updates in ascending i keep the first maximum
		// (= smallest neighbor on exact ties), matching the total order.
		if c0 > bestCorr {
			bestCorr, bestIdx = c0, int32(i)
		}
		if c1 > bestCorr {
			bestCorr, bestIdx = c1, int32(i+1)
		}
		if c2 > bestCorr {
			bestCorr, bestIdx = c2, int32(i+2)
		}
		if c3 > bestCorr {
			bestCorr, bestIdx = c3, int32(i+3)
		}
		if c4 > bestCorr {
			bestCorr, bestIdx = c4, int32(i+4)
		}
		if c5 > bestCorr {
			bestCorr, bestIdx = c5, int32(i+5)
		}
		if c6 > bestCorr {
			bestCorr, bestIdx = c6, int32(i+6)
		}
		if c7 > bestCorr {
			bestCorr, bestIdx = c7, int32(i+7)
		}
	}
	for ; i < len(cl); i++ {
		c := (cl[i]*invFl - m[i]*muJ) * v[i] * invJ
		if c > cr[i] || (c == cr[i] && j < ix[i]) {
			cr[i], ix[i] = c, j
		}
		if c > bestCorr {
			bestCorr, bestIdx = c, int32(i)
		}
	}
	return bestCorr, bestIdx
}

// diagScanILP widens the diagonal interleave to eight chains per sweep.
func diagScanILP(t, head, means, invs []float64, k0, k1, l, s int, corr []float64, idx []int32) {
	invFl := 1 / float64(l)
	k := k0
	for ; k+8 <= k1; k += 8 {
		diagOct(t, head, means, invs, k, l, s, invFl, corr, idx)
	}
	for ; k+4 <= k1; k += 4 {
		diagQuad(t, head, means, invs, k, l, s, invFl, corr, idx)
	}
	for ; k < k1; k++ {
		diagOne(t, means, invs, head[k], k, l, s, invFl, corr, idx)
	}
}

// diagOct interleaves diagonals k…k+7: eight independent dot-product
// chains advance together over their common cell range — enough
// independent multiplies to saturate the FP units — then each diagonal's
// leftover tail finishes on the scalar path from its carried chain value.
func diagOct(t, head, means, invs []float64, k, l, s int, invFl float64, corr []float64, idx []int32) {
	qt0, qt1, qt2, qt3 := head[k], head[k+1], head[k+2], head[k+3]
	qt4, qt5, qt6, qt7 := head[k+4], head[k+5], head[k+6], head[k+7]
	m0h, v0h := means[0], invs[0]
	c0 := (qt0*invFl - m0h*means[k]) * v0h * invs[k]
	c1 := (qt1*invFl - m0h*means[k+1]) * v0h * invs[k+1]
	c2 := (qt2*invFl - m0h*means[k+2]) * v0h * invs[k+2]
	c3 := (qt3*invFl - m0h*means[k+3]) * v0h * invs[k+3]
	c4 := (qt4*invFl - m0h*means[k+4]) * v0h * invs[k+4]
	c5 := (qt5*invFl - m0h*means[k+5]) * v0h * invs[k+5]
	c6 := (qt6*invFl - m0h*means[k+6]) * v0h * invs[k+6]
	c7 := (qt7*invFl - m0h*means[k+7]) * v0h * invs[k+7]
	bc, bj := c0, int32(k)
	if c1 > bc {
		bc, bj = c1, int32(k+1)
	}
	if c2 > bc {
		bc, bj = c2, int32(k+2)
	}
	if c3 > bc {
		bc, bj = c3, int32(k+3)
	}
	if c4 > bc {
		bc, bj = c4, int32(k+4)
	}
	if c5 > bc {
		bc, bj = c5, int32(k+5)
	}
	if c6 > bc {
		bc, bj = c6, int32(k+6)
	}
	if c7 > bc {
		bc, bj = c7, int32(k+7)
	}
	update(corr, idx, 0, bc, bj)
	update(corr, idx, k, c0, 0)
	update(corr, idx, k+1, c1, 0)
	update(corr, idx, k+2, c2, 0)
	update(corr, idx, k+3, c3, 0)
	update(corr, idx, k+4, c4, 0)
	update(corr, idx, k+5, c5, 0)
	update(corr, idx, k+6, c6, 0)
	update(corr, idx, k+7, c7, 0)

	m := s - k - 8
	{
		w := t[k+l-1 : s+l-1]
		u := t[k-1 : s-1]
		u = u[:len(w)]
		ta := t[l-1 : l-1+s-k]
		ta = ta[:len(w)]
		tb := t[0 : s-k]
		tb = tb[:len(w)]
		mi := means[0 : s-k]
		mi = mi[:len(w)]
		vi := invs[0 : s-k]
		vi = vi[:len(w)]
		mj := means[k:s]
		mj = mj[:len(w)]
		vj := invs[k:s]
		vj = vj[:len(w)]
		ci := corr[0 : s-k]
		ci = ci[:len(w)]
		ii := idx[0 : s-k]
		ii = ii[:len(w)]
		cj := corr[k:s]
		cj = cj[:len(w)]
		ij := idx[k:s]
		ij = ij[:len(w)]
		for i := 1; i+8 <= len(w); i++ {
			ha, hb := ta[i], tb[i-1]
			qt0 += ha*w[i] - hb*u[i]
			qt1 += ha*w[i+1] - hb*u[i+1]
			qt2 += ha*w[i+2] - hb*u[i+2]
			qt3 += ha*w[i+3] - hb*u[i+3]
			qt4 += ha*w[i+4] - hb*u[i+4]
			qt5 += ha*w[i+5] - hb*u[i+5]
			qt6 += ha*w[i+6] - hb*u[i+6]
			qt7 += ha*w[i+7] - hb*u[i+7]
			m0, v0 := mi[i], vi[i]
			c0 := (qt0*invFl - m0*mj[i]) * v0 * vj[i]
			c1 := (qt1*invFl - m0*mj[i+1]) * v0 * vj[i+1]
			c2 := (qt2*invFl - m0*mj[i+2]) * v0 * vj[i+2]
			c3 := (qt3*invFl - m0*mj[i+3]) * v0 * vj[i+3]
			c4 := (qt4*invFl - m0*mj[i+4]) * v0 * vj[i+4]
			c5 := (qt5*invFl - m0*mj[i+5]) * v0 * vj[i+5]
			c6 := (qt6*invFl - m0*mj[i+6]) * v0 * vj[i+6]
			c7 := (qt7*invFl - m0*mj[i+7]) * v0 * vj[i+7]
			j := int32(i + k)
			if c0 >= ci[i] {
				if c0 > ci[i] || j < ii[i] {
					ci[i], ii[i] = c0, j
				}
			}
			if c1 >= ci[i] {
				if c1 > ci[i] || j+1 < ii[i] {
					ci[i], ii[i] = c1, j+1
				}
			}
			if c2 >= ci[i] {
				if c2 > ci[i] || j+2 < ii[i] {
					ci[i], ii[i] = c2, j+2
				}
			}
			if c3 >= ci[i] {
				if c3 > ci[i] || j+3 < ii[i] {
					ci[i], ii[i] = c3, j+3
				}
			}
			if c4 >= ci[i] {
				if c4 > ci[i] || j+4 < ii[i] {
					ci[i], ii[i] = c4, j+4
				}
			}
			if c5 >= ci[i] {
				if c5 > ci[i] || j+5 < ii[i] {
					ci[i], ii[i] = c5, j+5
				}
			}
			if c6 >= ci[i] {
				if c6 > ci[i] || j+6 < ii[i] {
					ci[i], ii[i] = c6, j+6
				}
			}
			if c7 >= ci[i] {
				if c7 > ci[i] || j+7 < ii[i] {
					ci[i], ii[i] = c7, j+7
				}
			}
			a := int32(i)
			if c0 >= cj[i] {
				if c0 > cj[i] || a < ij[i] {
					cj[i], ij[i] = c0, a
				}
			}
			if c1 >= cj[i+1] {
				if c1 > cj[i+1] || a < ij[i+1] {
					cj[i+1], ij[i+1] = c1, a
				}
			}
			if c2 >= cj[i+2] {
				if c2 > cj[i+2] || a < ij[i+2] {
					cj[i+2], ij[i+2] = c2, a
				}
			}
			if c3 >= cj[i+3] {
				if c3 > cj[i+3] || a < ij[i+3] {
					cj[i+3], ij[i+3] = c3, a
				}
			}
			if c4 >= cj[i+4] {
				if c4 > cj[i+4] || a < ij[i+4] {
					cj[i+4], ij[i+4] = c4, a
				}
			}
			if c5 >= cj[i+5] {
				if c5 > cj[i+5] || a < ij[i+5] {
					cj[i+5], ij[i+5] = c5, a
				}
			}
			if c6 >= cj[i+6] {
				if c6 > cj[i+6] || a < ij[i+6] {
					cj[i+6], ij[i+6] = c6, a
				}
			}
			if c7 >= cj[i+7] {
				if c7 > cj[i+7] || a < ij[i+7] {
					cj[i+7], ij[i+7] = c7, a
				}
			}
		}
	}

	if m < 0 {
		m = 0
	}
	diagOneTail(t, means, invs, qt0, k, l, s, invFl, corr, idx, m)
	diagOneTail(t, means, invs, qt1, k+1, l, s, invFl, corr, idx, m)
	diagOneTail(t, means, invs, qt2, k+2, l, s, invFl, corr, idx, m)
	diagOneTail(t, means, invs, qt3, k+3, l, s, invFl, corr, idx, m)
	diagOneTail(t, means, invs, qt4, k+4, l, s, invFl, corr, idx, m)
	diagOneTail(t, means, invs, qt5, k+5, l, s, invFl, corr, idx, m)
	diagOneTail(t, means, invs, qt6, k+6, l, s, invFl, corr, idx, m)
}
