package kernels

import (
	"fmt"
	"os"
)

// Variant identifies one dispatch tier of the kernel layer.
type Variant int

const (
	// Generic is the portable 4-way-unrolled tier (the PR 5 kernels).
	Generic Variant = iota
	// ILP is the restructured portable tier: wider interleaves and
	// vectorizable sweeps with no cross-iteration dependencies.
	ILP
	// AVX2 is the amd64 assembly tier (4 float64 lanes, no FMA).
	AVX2
)

func (v Variant) String() string {
	switch v {
	case Generic:
		return "generic"
	case ILP:
		return "ilp"
	case AVX2:
		return "avx2"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// active is the tier every kernel entry point dispatches on. It is chosen
// once at init (highest available tier, overridable via VALMOD_KERNELS)
// and only tests change it afterwards; all tiers are bit-identical, so a
// racy read could at worst pick a stale — equally correct — tier.
var active = defaultVariant()

// Active reports the tier kernels currently dispatch to.
func Active() Variant { return active }

// Available lists the tiers this process can run, in ascending order.
// Parity tests iterate it so every reachable dispatch path is certified.
func Available() []Variant {
	vs := []Variant{Generic, ILP}
	if hasAVX2 {
		vs = append(vs, AVX2)
	}
	return vs
}

// SetVariant forces the dispatch tier. It fails if the tier needs CPU
// features this machine lacks. Intended for tests and benchmarks; the
// production override is the VALMOD_KERNELS environment variable.
func SetVariant(v Variant) error {
	switch v {
	case Generic, ILP:
	case AVX2:
		if !hasAVX2 {
			return fmt.Errorf("kernels: avx2 variant not available on this CPU")
		}
	default:
		return fmt.Errorf("kernels: unknown variant %d", int(v))
	}
	active = v
	return nil
}

// defaultVariant picks the startup tier: VALMOD_KERNELS=generic|ilp|avx2
// if set (falling back with a warning when the hardware can't honor it),
// otherwise the highest tier the CPU supports.
func defaultVariant() Variant {
	switch env := os.Getenv("VALMOD_KERNELS"); env {
	case "":
	case "generic":
		return Generic
	case "ilp":
		return ILP
	case "avx2":
		if hasAVX2 {
			return AVX2
		}
		fmt.Fprintln(os.Stderr, "valmod: VALMOD_KERNELS=avx2 but CPU lacks AVX2; using ilp")
		return ILP
	default:
		fmt.Fprintf(os.Stderr, "valmod: unknown VALMOD_KERNELS=%q (want generic|ilp|avx2); using default\n", env)
	}
	if hasAVX2 {
		return AVX2
	}
	return ILP
}
