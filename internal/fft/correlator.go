package fft

import "sync"

// scratchPool recycles the complex work buffers behind correlators. One
// VALMOD run builds a correlator per series plus a clone per seed worker,
// and repeated engine runs would otherwise reallocate the two size-padded
// complex slices (the largest allocations in the pipeline) every time.
var scratchPool sync.Pool // stores *[]complex128

func getScratch(size int) []complex128 {
	if v := scratchPool.Get(); v != nil {
		if x := *(v.(*[]complex128)); cap(x) >= size {
			return x[:size]
		}
	}
	return make([]complex128, size)
}

func putScratch(x []complex128) {
	scratchPool.Put(&x)
}

// Correlator computes sliding dot products of many queries against one
// fixed series, amortizing the series-side FFT: the spectrum of the padded
// series is computed once, after which each query costs one forward and one
// inverse transform — and DotsPair packs two real queries into a single
// complex transform each way, bringing the cost to one FFT per query.
// VALMOD's recompute path issues thousands of such queries per run.
type Correlator struct {
	n    int
	size int
	ft   []complex128
	x    []complex128 // scratch
	// ownsFT marks the correlator that built the spectrum; clones share it
	// and must not return it to the pool on Release.
	ownsFT bool
}

// NewCorrelator prepares a correlator for series t accepting queries up to
// maxQueryLen points. It panics when t is empty or maxQueryLen < 1.
// Call Release when done to recycle the buffers.
func NewCorrelator(t []float64, maxQueryLen int) *Correlator {
	if len(t) == 0 || maxQueryLen < 1 {
		panic("fft: NewCorrelator requires a series and maxQueryLen >= 1")
	}
	size := NextPowerOfTwo(len(t) + maxQueryLen - 1)
	c := &Correlator{
		n:      len(t),
		size:   size,
		ft:     getScratch(size),
		x:      getScratch(size),
		ownsFT: true,
	}
	for i, v := range t {
		c.ft[i] = complex(v, 0)
	}
	for i := len(t); i < size; i++ {
		c.ft[i] = 0 // pooled memory may be dirty past the series
	}
	radix2(c.ft, false)
	return c
}

// N returns the series length.
func (c *Correlator) N() int { return c.n }

// Clone returns a correlator sharing the (immutable) series spectrum but
// owning fresh scratch, so clones can run queries concurrently. Release the
// clone before releasing the correlator it was cloned from.
func (c *Correlator) Clone() *Correlator {
	return &Correlator{
		n:    c.n,
		size: c.size,
		ft:   c.ft,
		x:    getScratch(c.size),
	}
}

// Release returns the correlator's buffers to the pool. The correlator must
// not be used afterwards; a spectrum-owning correlator must outlive its
// clones. Release is idempotent.
func (c *Correlator) Release() {
	if c.x != nil {
		putScratch(c.x)
		c.x = nil
	}
	if c.ownsFT && c.ft != nil {
		putScratch(c.ft)
	}
	c.ft = nil
}

// Dots writes dot(q, t[j:j+len(q)]) for every valid j into dst (allocated
// when too small) and returns it. Returns nil when the query is empty or
// longer than the series (or the correlator's maxQueryLen).
func (c *Correlator) Dots(q []float64, dst []float64) []float64 {
	m := len(q)
	out := c.n - m + 1
	if m == 0 || out <= 0 || c.n+m-1 > c.size {
		return nil
	}
	x := c.x
	for i, v := range q {
		x[m-1-i] = complex(v, 0) // fills x[0:m]
	}
	for i := m; i < len(x); i++ {
		x[i] = 0
	}
	radix2(x, false)
	for i := range x {
		x[i] *= c.ft[i]
	}
	radix2(x, true)
	scale := 1 / float64(c.size)
	if cap(dst) >= out {
		dst = dst[:out]
	} else {
		dst = make([]float64, out)
	}
	for j := 0; j < out; j++ {
		dst[j] = real(x[m-1+j]) * scale
	}
	return dst
}

// DotsPair computes the sliding dot products of two equal-length queries
// with one forward and one inverse transform total: the reversed queries
// are packed as real and imaginary parts, and linearity keeps them
// separated through the pointwise product with the series spectrum.
// Returns (nil, nil) on invalid input.
func (c *Correlator) DotsPair(q1, q2 []float64, dst1, dst2 []float64) ([]float64, []float64) {
	m := len(q1)
	if m == 0 || len(q2) != m {
		return nil, nil
	}
	out := c.n - m + 1
	if out <= 0 || c.n+m-1 > c.size {
		return nil, nil
	}
	x := c.x
	for i := 0; i < m; i++ {
		x[m-1-i] = complex(q1[i], q2[i]) // fills x[0:m]
	}
	for i := m; i < len(x); i++ {
		x[i] = 0
	}
	radix2(x, false)
	for i := range x {
		x[i] *= c.ft[i]
	}
	radix2(x, true)
	scale := 1 / float64(c.size)
	if cap(dst1) >= out {
		dst1 = dst1[:out]
	} else {
		dst1 = make([]float64, out)
	}
	if cap(dst2) >= out {
		dst2 = dst2[:out]
	} else {
		dst2 = make([]float64, out)
	}
	for j := 0; j < out; j++ {
		v := x[m-1+j]
		dst1[j] = real(v) * scale
		dst2[j] = imag(v) * scale
	}
	return dst1, dst2
}
