package fft

import (
	"math"
	"math/cmplx"
)

// bluestein computes the DFT of x (any length) via the chirp-z transform:
// X_k = conj(w_k) * Σ_j x_j w_j * conj(w_{k-j}) with w_j = exp(iπ j²/n),
// turning the DFT into one convolution of power-of-two length.
// When inverse is true the sign of the chirp flips (normalization is the
// caller's responsibility).
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	// Chirp factors w[j] = exp(±iπ j²/n). The exponent is reduced mod 2n
	// before the trig call: j² overflows float64 precision long before it
	// overflows int for the series sizes used here.
	w := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for j := 0; j < n; j++ {
		// j² mod 2n keeps the angle argument small and exact.
		jj := (j * j) % (2 * n)
		w[j] = cmplx.Rect(1, sign*math.Pi*float64(jj)/float64(n))
	}

	m := NextPowerOfTwo(2*n - 1)
	a := make([]complex128, m)
	b := make([]complex128, m)
	for j := 0; j < n; j++ {
		a[j] = x[j] * w[j]
	}
	// b is the conjugate chirp, laid out for circular convolution:
	// b[j] = conj(w[j]) for j in (-n, n), with negative indices wrapped.
	for j := 0; j < n; j++ {
		c := cmplx.Conj(w[j])
		b[j] = c
		if j > 0 {
			b[m-j] = c
		}
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	scale := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		x[k] = a[k] * scale * w[k]
	}
}
