package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-9

// naiveDFT is the O(n²) reference transform.
func naiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			ang := sign * 2 * math.Pi * float64(k*j%n) / float64(n)
			sum += x[j] * cmplx.Rect(1, ang)
		}
		out[k] = sum
	}
	if inverse {
		for i := range out {
			out[i] /= complex(float64(n), 0)
		}
	}
	return out
}

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxDiff(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestIsPowerOfTwo(t *testing.T) {
	cases := map[int]bool{
		-4: false, 0: false, 1: true, 2: true, 3: false,
		4: true, 6: false, 1024: true, 1023: false,
	}
	for n, want := range cases {
		if got := IsPowerOfTwo(n); got != want {
			t.Errorf("IsPowerOfTwo(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestNextPowerOfTwo(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 17: 32, 1024: 1024, 1025: 2048}
	for n, want := range cases {
		if got := NextPowerOfTwo(n); got != want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestNextPowerOfTwoPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n <= 0")
		}
	}()
	NextPowerOfTwo(0)
}

func TestForwardMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 13, 16, 31, 32, 100, 127, 128, 255, 257} {
		x := randComplex(rng, n)
		want := naiveDFT(x, false)
		got := append([]complex128(nil), x...)
		Forward(got)
		if d := maxDiff(got, want); d > 1e-8 {
			t.Errorf("n=%d: forward max diff %g", n, d)
		}
	}
}

func TestInverseMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 3, 8, 11, 16, 50, 64, 101} {
		x := randComplex(rng, n)
		want := naiveDFT(x, true)
		got := append([]complex128(nil), x...)
		Inverse(got)
		if d := maxDiff(got, want); d > 1e-8 {
			t.Errorf("n=%d: inverse max diff %g", n, d)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		r := rand.New(rand.NewSource(seed))
		_ = rng
		x := randComplex(r, n)
		orig := append([]complex128(nil), x...)
		Inverse(Forward(x))
		return maxDiff(x, orig) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	// Σ|x|² == (1/n)·Σ|X|² for the unnormalized forward transform.
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%150 + 1
		r := rand.New(rand.NewSource(seed))
		x := randComplex(r, n)
		var timeEnergy float64
		for _, v := range x {
			timeEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		Forward(x)
		var freqEnergy float64
		for _, v := range x {
			freqEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		freqEnergy /= float64(n)
		return math.Abs(timeEnergy-freqEnergy) <= 1e-7*(1+timeEnergy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(100) + 2
		a := randComplex(r, n)
		b := randComplex(r, n)
		alpha := complex(r.NormFloat64(), r.NormFloat64())
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a[i] + alpha*b[i]
		}
		fa := Forward(append([]complex128(nil), a...))
		fb := Forward(append([]complex128(nil), b...))
		fsum := Forward(sum)
		for i := range fsum {
			if cmplx.Abs(fsum[i]-(fa[i]+alpha*fb[i])) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func naiveConvolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]float64, len(a)+len(b)-1)
	for i, av := range a {
		for j, bv := range b {
			out[i+j] += av * bv
		}
	}
	return out
}

func TestConvolveMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, sizes := range [][2]int{{1, 1}, {2, 3}, {5, 5}, {16, 7}, {33, 70}, {128, 128}} {
		a := make([]float64, sizes[0])
		b := make([]float64, sizes[1])
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		got := Convolve(a, b)
		want := naiveConvolve(a, b)
		if len(got) != len(want) {
			t.Fatalf("sizes %v: len %d want %d", sizes, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Errorf("sizes %v idx %d: %g want %g", sizes, i, got[i], want[i])
				break
			}
		}
	}
}

func TestConvolveEmpty(t *testing.T) {
	if Convolve(nil, []float64{1}) != nil || Convolve([]float64{1}, nil) != nil {
		t.Error("Convolve with empty input should return nil")
	}
}

func TestSlidingDotProducts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, sz := range [][2]int{{1, 1}, {3, 10}, {8, 8}, {17, 100}, {50, 333}} {
		m, n := sz[0], sz[1]
		q := make([]float64, m)
		tt := make([]float64, n)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		for i := range tt {
			tt[i] = rng.NormFloat64()
		}
		got := SlidingDotProducts(q, tt)
		if len(got) != n-m+1 {
			t.Fatalf("m=%d n=%d: len %d want %d", m, n, len(got), n-m+1)
		}
		for j := range got {
			var want float64
			for k := 0; k < m; k++ {
				want += q[k] * tt[j+k]
			}
			if math.Abs(got[j]-want) > 1e-8*(1+math.Abs(want)) {
				t.Errorf("m=%d n=%d j=%d: %g want %g", m, n, j, got[j], want)
				break
			}
		}
	}
}

func TestSlidingDotProductsDegenerate(t *testing.T) {
	if SlidingDotProducts(nil, []float64{1, 2}) != nil {
		t.Error("empty query should return nil")
	}
	if SlidingDotProducts([]float64{1, 2, 3}, []float64{1, 2}) != nil {
		t.Error("query longer than series should return nil")
	}
}

func TestForwardKnownValues(t *testing.T) {
	// DFT of [1, 0, 0, 0] is [1, 1, 1, 1].
	x := []complex128{1, 0, 0, 0}
	Forward(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > tol {
			t.Errorf("impulse DFT[%d] = %v, want 1", i, v)
		}
	}
	// DFT of constant c over n points is [n*c, 0, ..., 0].
	y := []complex128{2, 2, 2}
	Forward(y)
	if cmplx.Abs(y[0]-6) > tol || cmplx.Abs(y[1]) > tol || cmplx.Abs(y[2]) > tol {
		t.Errorf("constant DFT = %v, want [6 0 0]", y)
	}
}

func BenchmarkForwardPow2(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x := randComplex(rng, 1<<14)
	buf := make([]complex128, len(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		Forward(buf)
	}
}

func BenchmarkForwardBluestein(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := randComplex(rng, 10000)
	buf := make([]complex128, len(x))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, x)
		Forward(buf)
	}
}
