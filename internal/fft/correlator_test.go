package fft

import (
	"math"
	"math/rand"
	"testing"
)

func TestCorrelatorDotsMatchesSlidingDotProducts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tt := make([]float64, 500)
	for i := range tt {
		tt[i] = rng.NormFloat64()
	}
	c := NewCorrelator(tt, 64)
	for _, m := range []int{1, 7, 32, 64} {
		q := tt[100 : 100+m]
		got := c.Dots(q, nil)
		want := SlidingDotProducts(q, tt)
		if len(got) != len(want) {
			t.Fatalf("m=%d: len %d want %d", m, len(got), len(want))
		}
		for j := range got {
			if math.Abs(got[j]-want[j]) > 1e-7*(1+math.Abs(want[j])) {
				t.Fatalf("m=%d j=%d: %g want %g", m, j, got[j], want[j])
			}
		}
	}
}

func TestCorrelatorDotsPairMatchesSingles(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tt := make([]float64, 400)
	for i := range tt {
		tt[i] = rng.NormFloat64() * 3
	}
	c := NewCorrelator(tt, 50)
	q1 := tt[30:75]
	q2 := tt[200:245]
	d1, d2 := c.DotsPair(q1, q2, nil, nil)
	w1 := SlidingDotProducts(q1, tt)
	w2 := SlidingDotProducts(q2, tt)
	for j := range w1 {
		if math.Abs(d1[j]-w1[j]) > 1e-7*(1+math.Abs(w1[j])) {
			t.Fatalf("pair q1 j=%d: %g want %g", j, d1[j], w1[j])
		}
		if math.Abs(d2[j]-w2[j]) > 1e-7*(1+math.Abs(w2[j])) {
			t.Fatalf("pair q2 j=%d: %g want %g", j, d2[j], w2[j])
		}
	}
}

func TestCorrelatorDstReuse(t *testing.T) {
	tt := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	c := NewCorrelator(tt, 4)
	buf := make([]float64, 0, 8)
	got := c.Dots([]float64{1, 1}, buf)
	if len(got) != 7 {
		t.Fatalf("len %d", len(got))
	}
	if &got[0] != &buf[:1][0] {
		t.Error("expected dst reuse")
	}
}

func TestCorrelatorInvalidInputs(t *testing.T) {
	tt := make([]float64, 20)
	c := NewCorrelator(tt, 8)
	if c.Dots(nil, nil) != nil {
		t.Error("empty query should return nil")
	}
	if c.Dots(make([]float64, 30), nil) != nil {
		t.Error("oversized query should return nil")
	}
	if d1, d2 := c.DotsPair(make([]float64, 3), make([]float64, 4), nil, nil); d1 != nil || d2 != nil {
		t.Error("length mismatch should return nils")
	}
	if c.N() != 20 {
		t.Errorf("N() = %d", c.N())
	}
}

func TestNewCorrelatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty series")
		}
	}()
	NewCorrelator(nil, 4)
}

// TestCorrelatorReleaseRecycles: a released correlator's buffers come back
// from the pool, and a correlator built on recycled (dirty) scratch still
// computes correct dot products.
func TestCorrelatorReleaseRecycles(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tt := make([]float64, 300)
	for i := range tt {
		tt[i] = rng.NormFloat64()
	}
	c1 := NewCorrelator(tt, 32)
	clone := c1.Clone()
	_ = clone.Dots(tt[10:26], nil)
	clone.Release()
	c1.Release()
	c1.Release() // idempotent

	// The next correlator reuses the pooled (now dirty) buffers; results
	// must be unaffected.
	c2 := NewCorrelator(tt, 32)
	defer c2.Release()
	q := tt[40:72]
	got := c2.Dots(q, nil)
	want := SlidingDotProducts(q, tt)
	for j := range want {
		if math.Abs(got[j]-want[j]) > 1e-7*(1+math.Abs(want[j])) {
			t.Fatalf("j=%d: %g want %g", j, got[j], want[j])
		}
	}
}

// TestCloneSharesSpectrum: clones must agree with the original exactly
// (same spectrum, so bit-identical outputs).
func TestCloneSharesSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tt := make([]float64, 257)
	for i := range tt {
		tt[i] = rng.NormFloat64()
	}
	c := NewCorrelator(tt, 16)
	defer c.Release()
	clone := c.Clone()
	defer clone.Release()
	q := tt[5:21]
	a := c.Dots(q, nil)
	b := clone.Dots(q, nil)
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("j=%d: clone %g vs original %g", j, b[j], a[j])
		}
	}
}
