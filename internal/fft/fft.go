// Package fft provides fast Fourier transforms over complex128 slices.
//
// The package exists because the VALMOD reproduction is stdlib-only and the
// MASS distance-profile algorithm (internal/mass) needs O(n log n) sliding
// dot products. Transforms of power-of-two length use an iterative
// decimation-in-time radix-2 kernel; every other length is handled by
// Bluestein's chirp-z algorithm, which reduces an arbitrary-length DFT to a
// power-of-two convolution.
//
// All transforms are unnormalized in the forward direction; Inverse divides
// by the length so that Inverse(Forward(x)) == x.
package fft

import (
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// NextPowerOfTwo returns the smallest power of two >= n. It panics if n <= 0
// or the result would overflow int.
func NextPowerOfTwo(n int) int {
	if n <= 0 {
		panic("fft: NextPowerOfTwo requires n > 0")
	}
	if IsPowerOfTwo(n) {
		return n
	}
	shift := bits.Len(uint(n))
	if shift >= bits.UintSize-2 {
		panic("fft: NextPowerOfTwo overflow")
	}
	return 1 << shift
}

// Forward computes the in-place forward DFT of x and returns x.
// len(x) may be any positive value; zero-length input is returned unchanged.
func Forward(x []complex128) []complex128 {
	n := len(x)
	switch {
	case n <= 1:
		return x
	case IsPowerOfTwo(n):
		radix2(x, false)
		return x
	default:
		bluestein(x, false)
		return x
	}
}

// Inverse computes the in-place inverse DFT of x (normalized by 1/len(x))
// and returns x.
func Inverse(x []complex128) []complex128 {
	n := len(x)
	switch {
	case n <= 1:
		return x
	case IsPowerOfTwo(n):
		radix2(x, true)
	default:
		bluestein(x, true)
	}
	inv := complex(1/float64(n), 0)
	for i := range x {
		x[i] *= inv
	}
	return x
}

// twiddleCache holds one forward twiddle table per transform size. The
// tables are immutable once built and shared by every transform of that
// size, so repeated correlator queries pay sin/cos exactly once.
var twiddleCache sync.Map // int -> []complex128 (n/2 forward twiddles)

// twiddleTable returns the forward twiddles w_k = e^(−2πik/n), k < n/2.
// Direct evaluation per entry is also more accurate than the running
// product the butterfly loop previously accumulated.
func twiddleTable(n int) []complex128 {
	if v, ok := twiddleCache.Load(n); ok {
		return v.([]complex128)
	}
	tw := make([]complex128, n/2)
	for k := range tw {
		tw[k] = cmplx.Rect(1, -2*math.Pi*float64(k)/float64(n))
	}
	v, _ := twiddleCache.LoadOrStore(n, tw)
	return v.([]complex128)
}

// radix2 runs the iterative Cooley–Tukey decimation-in-time FFT.
// len(x) must be a power of two. When inverse is true the conjugate
// twiddles are used (normalization is the caller's responsibility).
// Twiddles come from the cached table (stage size s uses every (n/s)-th
// entry), which removes the serial w·=wStep recurrence from the butterfly
// loop — the former chain both bounded ILP and drifted in precision.
func radix2(x []complex128, inverse bool) {
	n := len(x)
	bitReverse(x)
	tw := twiddleTable(n)
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		stride := n / size
		for start := 0; start < n; start += size {
			blk := x[start : start+size]
			if inverse {
				for k := 0; k < half; k++ {
					w := tw[k*stride]
					w = complex(real(w), -imag(w))
					even := blk[k]
					odd := blk[k+half] * w
					blk[k] = even + odd
					blk[k+half] = even - odd
				}
			} else {
				for k := 0; k < half; k++ {
					even := blk[k]
					odd := blk[k+half] * tw[k*stride]
					blk[k] = even + odd
					blk[k+half] = even - odd
				}
			}
		}
	}
}

// bitReverse permutes x into bit-reversed order. len(x) must be a power of two.
func bitReverse(x []complex128) {
	n := len(x)
	shift := bits.UintSize - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse(uint(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
}

// Convolve returns the linear convolution of a and b, of length
// len(a)+len(b)-1. Either input may have any positive length; empty input
// yields nil. The inputs are not modified.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	outLen := len(a) + len(b) - 1
	n := NextPowerOfTwo(outLen)
	fa := make([]complex128, n)
	fb := make([]complex128, n)
	for i, v := range a {
		fa[i] = complex(v, 0)
	}
	for i, v := range b {
		fb[i] = complex(v, 0)
	}
	Forward(fa)
	Forward(fb)
	for i := range fa {
		fa[i] *= fb[i]
	}
	Inverse(fa)
	out := make([]float64, outLen)
	for i := range out {
		out[i] = real(fa[i])
	}
	return out
}

// SlidingDotProducts returns, for every offset j in [0, len(t)-len(q)], the
// dot product of q with t[j:j+len(q)], computed with one FFT convolution.
// It is the workhorse behind MASS. Returns nil when len(q) == 0 or
// len(q) > len(t).
func SlidingDotProducts(q, t []float64) []float64 {
	m, n := len(q), len(t)
	if m == 0 || m > n {
		return nil
	}
	// Convolving t with reversed(q) places dot(q, t[j:j+m]) at index j+m-1.
	qr := make([]float64, m)
	for i, v := range q {
		qr[m-1-i] = v
	}
	conv := Convolve(t, qr)
	out := make([]float64, n-m+1)
	copy(out, conv[m-1:m-1+len(out)])
	return out
}
