package gen

import (
	"math"
	"testing"

	"github.com/seriesmining/valmod/internal/series"
	"github.com/seriesmining/valmod/internal/stomp"
)

func TestAllGeneratorsProduceValidSeries(t *testing.T) {
	n := 3000
	for _, name := range Names() {
		s, err := Dataset(name, n, 42)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Len() != n {
			t.Errorf("%s: length %d, want %d", name, s.Len(), n)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		// Not constant.
		_, sd := series.MeanStdTwoPass(s.Values)
		if sd == 0 {
			t.Errorf("%s: degenerate constant output", name)
		}
	}
}

func TestDeterministicInSeed(t *testing.T) {
	for _, name := range Names() {
		a, _ := Dataset(name, 500, 7)
		b, _ := Dataset(name, 500, 7)
		for i := range a.Values {
			if a.Values[i] != b.Values[i] {
				t.Fatalf("%s: not deterministic at %d", name, i)
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := ECG(500, 1)
	b := ECG(500, 2)
	same := true
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should give different ECG series")
	}
}

func TestUnknownDataset(t *testing.T) {
	if _, err := Dataset("nope", 100, 1); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestECGHasRepeatingBeats(t *testing.T) {
	// An ECG must contain strong motifs at beat scale: the matrix profile
	// minimum at m=200 should be far below the profile mean.
	s := ECG(4000, 3)
	mp, err := stomp.Compute(s.Values, 200, 0)
	if err != nil {
		t.Fatal(err)
	}
	minD, _ := mp.Min()
	// The best beat pair must be close in absolute terms: a tiny fraction
	// of the maximum possible z-normalized distance 2√m.
	if limit := 0.15 * math.Sqrt(2*200); minD > limit {
		t.Errorf("ECG beats not motif-like: min=%g, limit=%g", minD, limit)
	}
}

func TestSeismicHasQuietFloorAndEvents(t *testing.T) {
	s := Seismic(8000, 4)
	// Peak amplitude must dwarf the noise floor.
	var peak float64
	for _, v := range s.Values {
		if a := math.Abs(v); a > peak {
			peak = a
		}
	}
	if peak < 0.5 {
		t.Errorf("no seismic events generated: peak %g", peak)
	}
}

func TestEPGStateStructure(t *testing.T) {
	s := EPG(5000, 5)
	// EPG levels live on distinct plateaus; the series range must span the
	// baseline (~0.1) to ingestion (~2.1) bands.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range s.Values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if lo > 0.3 || hi < 1.5 {
		t.Errorf("EPG range [%g, %g] lacks state structure", lo, hi)
	}
}

func TestPlantMotifRecoverable(t *testing.T) {
	s := RandomWalk(3000, 6)
	offs := PlantMotif(s, 64, 3, 0.01, 7)
	if len(offs) != 3 {
		t.Fatalf("planted %d instances", len(offs))
	}
	mp, err := stomp.Compute(s.Values, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	pairs := mp.TopKPairs(1)
	if len(pairs) == 0 {
		t.Fatal("no motif found")
	}
	p := pairs[0]
	hit := func(x int) bool {
		for _, o := range offs {
			if abs(x-o) <= 2 {
				return true
			}
		}
		return false
	}
	if !hit(p.A) || !hit(p.B) {
		t.Errorf("motif %v does not match planted offsets %v", p, offs)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
