// Package gen synthesizes the evaluation workloads. The paper benchmarks on
// real recordings (ECG, ASTRO celestial series, plus Seismology and
// Entomology demo datasets) that are not redistributable here; these
// generators produce series with the same structural properties the
// algorithms are sensitive to — quasi-periodic repeated patterns whose
// instances vary in length, amplitude and phase, over realistic noise —
// so every code path the paper exercises is exercised (DESIGN.md §5).
//
// All generators are deterministic in their seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/seriesmining/valmod/internal/series"
)

// ECG generates an electrocardiogram-like series: a PQRST beat modeled as a
// sum of Gaussian bumps, beat-to-beat (RR) interval and amplitude jitter,
// slow baseline wander, and measurement noise. Typical beat span is ~220
// samples, so motifs live at the scales the paper's Figure 1 explores
// (ℓ ∈ [50, 400]).
func ECG(n int, seed int64) *series.Series {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)

	// PQRST wave template: center (fraction of beat), width (fraction),
	// amplitude — loosely the ECGSYN morphology.
	waves := []struct{ center, width, amp float64 }{
		{0.15, 0.040, 0.18},  // P
		{0.26, 0.012, -0.12}, // Q
		{0.30, 0.016, 1.40},  // R
		{0.34, 0.014, -0.30}, // S
		{0.55, 0.060, 0.35},  // T
	}
	pos := 0
	for pos < n {
		beat := 204 + rng.Intn(22) // ~10% RR jitter, physiological range
		ampScale := 1 + 0.08*rng.NormFloat64()
		for i := 0; i < beat && pos+i < n; i++ {
			f := float64(i) / float64(beat)
			v := 0.0
			for _, w := range waves {
				d := (f - w.center) / w.width
				v += w.amp * math.Exp(-0.5*d*d)
			}
			x[pos+i] += v * ampScale
		}
		pos += beat
	}
	for i := range x {
		wander := 0.15*math.Sin(2*math.Pi*float64(i)/2400) + 0.08*math.Sin(2*math.Pi*float64(i)/901)
		x[i] += wander + 0.02*rng.NormFloat64()
	}
	return series.New("ECG", x)
}

// Astro generates a celestial-object light-curve-like series: superposed
// variable-star pulsation modes with slow amplitude modulation, occasional
// transit-like box dips, and photometric noise.
func Astro(n int, seed int64) *series.Series {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	modes := []struct{ period, amp, phase float64 }{
		{173, 1.00, rng.Float64() * 2 * math.Pi},
		{89, 0.45, rng.Float64() * 2 * math.Pi},
		{311, 0.30, rng.Float64() * 2 * math.Pi},
	}
	for i := range x {
		f := float64(i)
		v := 0.0
		for _, m := range modes {
			mod := 1 + 0.25*math.Sin(2*math.Pi*f/(m.period*13.7)+m.phase)
			v += m.amp * mod * math.Sin(2*math.Pi*f/m.period+m.phase)
		}
		x[i] = v + 0.05*rng.NormFloat64()
	}
	// Transit dips: box-shaped flux drops of varying duration.
	for pos := 900 + rng.Intn(600); pos < n-200; pos += 1500 + rng.Intn(900) {
		dur := 40 + rng.Intn(80)
		depth := 0.6 + 0.5*rng.Float64()
		for i := 0; i < dur && pos+i < n; i++ {
			edge := math.Min(float64(i)/8, math.Min(float64(dur-i)/8, 1))
			x[pos+i] -= depth * edge
		}
	}
	return series.New("ASTRO", x)
}

// Seismic generates a seismogram-like series: a low noise floor punctuated
// by AR(2)-resonant events with exponentially decaying envelopes and
// variable durations — the repeated-event-of-unknown-duration workload that
// motivates variable-length motif discovery.
func Seismic(n int, seed int64) *series.Series {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = 0.03 * rng.NormFloat64()
	}
	pos := 400 + rng.Intn(300)
	for pos < n-600 {
		dur := 250 + rng.Intn(350)
		// AR(2) resonance: y_t = a1·y_{t-1} + a2·y_{t-2} + shock.
		freq := 0.12 + 0.06*rng.Float64()
		r := 0.995
		a1 := 2 * r * math.Cos(freq)
		a2 := -r * r
		y1, y2 := 0.0, 0.0
		for i := 0; i < dur && pos+i < n; i++ {
			shock := 0.0
			if i < 12 {
				shock = rng.NormFloat64()
			}
			y := a1*y1 + a2*y2 + shock
			y2, y1 = y1, y
			env := math.Exp(-3 * float64(i) / float64(dur))
			x[pos+i] += 1.6 * env * y
		}
		pos += dur + 700 + rng.Intn(1200)
	}
	return series.New("SEISMIC", x)
}

// EPG generates an electrical-penetration-graph-like series (entomology:
// insect feeding behavior): alternating behavioral states — non-probing
// baseline, probing (fast small oscillations), and ingestion (slow sawtooth
// waves) — each with a random duration, which is exactly the
// variable-length repeated structure the demo's entomology scenario shows.
func EPG(n int, seed int64) *series.Series {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	pos := 0
	state := 0
	for pos < n {
		var dur int
		switch state {
		case 0: // baseline
			dur = 150 + rng.Intn(250)
			for i := 0; i < dur && pos+i < n; i++ {
				x[pos+i] = 0.1 + 0.02*rng.NormFloat64()
			}
		case 1: // probing: fast oscillation with drift
			dur = 200 + rng.Intn(300)
			phase := rng.Float64() * 2 * math.Pi
			for i := 0; i < dur && pos+i < n; i++ {
				f := float64(i)
				x[pos+i] = 0.8 + 0.3*math.Sin(f*0.9+phase) + 0.004*f + 0.03*rng.NormFloat64()
			}
		default: // ingestion: sawtooth waves, period varies per episode
			dur = 300 + rng.Intn(500)
			period := 45 + rng.Intn(30)
			for i := 0; i < dur && pos+i < n; i++ {
				saw := math.Mod(float64(i), float64(period)) / float64(period)
				x[pos+i] = 1.6 + 0.5*saw + 0.03*rng.NormFloat64()
			}
		}
		pos += dur
		state = (state + 1) % 3
	}
	return series.New("EPG", x)
}

// RandomWalk generates a cumulative-sum-of-Gaussian series, the standard
// unstructured control workload.
func RandomWalk(n int, seed int64) *series.Series {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	v := 0.0
	for i := range x {
		v += rng.NormFloat64()
		x[i] = v
	}
	return series.New("RANDOMWALK", x)
}

// WhiteNoise generates i.i.d. Gaussian samples.
func WhiteNoise(n int, seed int64) *series.Series {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return series.New("NOISE", x)
}

// SineMix generates a deterministic blend of incommensurate sinusoids —
// dense multi-scale motif structure with no randomness at all.
func SineMix(n int) *series.Series {
	x := make([]float64, n)
	for i := range x {
		f := float64(i)
		x[i] = math.Sin(f*0.21) + 0.5*math.Sin(f*0.043) + 0.2*math.Sin(f*0.009)
	}
	return series.New("SINEMIX", x)
}

// PlantMotif overwrites s with reps noisy instances of a smooth pattern of
// length m at the returned offsets (evenly spaced), for ground-truth
// recovery tests. noise is the per-point jitter σ.
func PlantMotif(s *series.Series, m, reps int, noise float64, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	n := s.Len()
	offsets := make([]int, 0, reps)
	gap := n / (reps + 1)
	shape := make([]float64, m)
	for i := range shape {
		f := float64(i)
		shape[i] = math.Sin(f*0.31) + 0.6*math.Cos(f*0.11)
	}
	for r := 0; r < reps; r++ {
		off := gap * (r + 1)
		if off+m > n {
			break
		}
		offsets = append(offsets, off)
		for i := 0; i < m; i++ {
			s.Values[off+i] = shape[i]*6 + noise*rng.NormFloat64()
		}
	}
	return offsets
}

// Dataset dispatches by name ("ecg", "astro", "seismic", "epg",
// "randomwalk", "noise", "sinemix"); it is the surface the CLI tools and
// the experiment harness share.
func Dataset(name string, n int, seed int64) (*series.Series, error) {
	switch name {
	case "ecg", "ECG":
		return ECG(n, seed), nil
	case "astro", "ASTRO":
		return Astro(n, seed), nil
	case "seismic", "SEISMIC":
		return Seismic(n, seed), nil
	case "epg", "EPG":
		return EPG(n, seed), nil
	case "randomwalk", "RANDOMWALK":
		return RandomWalk(n, seed), nil
	case "noise", "NOISE":
		return WhiteNoise(n, seed), nil
	case "sinemix", "SINEMIX":
		return SineMix(n), nil
	default:
		return nil, fmt.Errorf("gen: unknown dataset %q", name)
	}
}

// Names lists the datasets Dataset accepts.
func Names() []string {
	return []string{"ecg", "astro", "seismic", "epg", "randomwalk", "noise", "sinemix"}
}
