// Package stomp implements STOMP (Zhu et al., "Matrix Profile II", ICDM
// 2016): the exact O(n²) self-join matrix profile with O(1)-amortized
// sliding dot products. It is both the paper's fixed-length baseline
// (adapted to length ranges in internal/baseline/stomprange) and the engine
// VALMOD runs once at ℓmin.
//
// Three variants are provided: a cache-friendly diagonal traversal
// (Compute), a goroutine-parallel version partitioning diagonals
// (ComputeParallel), and a brute-force reference (Brute) used only in tests
// and ablation benchmarks.
//
// The diagonal traversal is split into a seed path and an extend path:
// DiagonalHead computes the first cell of every diagonal with one FFT, and
// ExtendDiagonalHead advances that head row from length ℓ to ℓ+1 with one
// fused multiply-add per cell — the cross-length recurrence
// QT(i,j)ₗ₊₁ = QT(i,j)ₗ + t[i+ℓ]·t[j+ℓ] specialized to row 0. A scan over
// a length range therefore pays for one FFT total, not one per length;
// VALMOD's incremental cross-length profile engine (internal/core) is built
// on the same split.
package stomp

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"github.com/seriesmining/valmod/internal/fft"
	"github.com/seriesmining/valmod/internal/kernels"
	"github.com/seriesmining/valmod/internal/profile"
	"github.com/seriesmining/valmod/internal/series"
)

// ErrBadLength is returned when the subsequence length is out of range.
var ErrBadLength = errors.New("stomp: subsequence length out of range")

func validate(n, m int) error {
	if m < 2 || m > n {
		return fmt.Errorf("%w: m=%d, n=%d", ErrBadLength, m, n)
	}
	return nil
}

// ValidateLength reports whether subsequence length m is usable for a
// series of n points, with the same rule every algorithm in the suite
// applies (2 ≤ m ≤ n).
func ValidateLength(n, m int) error { return validate(n, m) }

// DiagonalHead is the *seed path* of the diagonal traversal: the first
// cell QT(0, k) of every diagonal at length m, computed with one FFT.
// head[k] = Σ_{p<m} t[p]·t[k+p] for k in [0, n−m]. One head row is enough
// to stream every diagonal of the length-m self-join in O(1) per cell —
// and it is the only state the cross-length *extend path* below needs.
func DiagonalHead(t []float64, m int) ([]float64, error) {
	if err := validate(len(t), m); err != nil {
		return nil, err
	}
	return fft.SlidingDotProducts(t[0:m], t), nil
}

// ExtendDiagonalHead is the *extend path*: it advances a diagonal head row
// from length cur to length next with the cross-length recurrence
// QT(0,k)ₗ₊₁ = QT(0,k)ₗ + t[ℓ]·t[k+ℓ] — one fused multiply-add per cell
// per length step, no FFT. All pending steps are carried through each cell
// in one pass (kernels.ExtendRow with anchor 0), bit-identical to the
// one-pass-per-step loop it replaces. It returns the head trimmed to the
// diagonals that still exist at the new length (n−next+1 cells). This is
// what lets a length-range scan seed its FFT exactly once: VALMOD's
// incremental cross-length engine carries one head row through the whole
// range.
func ExtendDiagonalHead(head, t []float64, cur, next int) ([]float64, error) {
	if err := validate(len(t), cur); err != nil {
		return nil, err
	}
	if err := validate(len(t), next); err != nil {
		return nil, err
	}
	if next < cur || len(head) < len(t)-cur+1 {
		return nil, fmt.Errorf("%w: extend from m=%d (head %d cells) to m=%d", ErrBadLength, cur, len(head), next)
	}
	n := len(t)
	kernels.ExtendRow(head[:n-cur+1], t, 0, cur, next)
	return head[:n-next+1], nil
}

// ExtendDiagonalHead32 is the extend path for a float32-stored head row
// (Config.Carry32): the same cross-length recurrence, accumulated in
// float64 from widened float32 loads with one rounding per cell per call
// (kernels.ExtendRow32). The range rules match ExtendDiagonalHead.
func ExtendDiagonalHead32(head, t []float32, cur, next int) ([]float32, error) {
	if err := validate(len(t), cur); err != nil {
		return nil, err
	}
	if err := validate(len(t), next); err != nil {
		return nil, err
	}
	if next < cur || len(head) < len(t)-cur+1 {
		return nil, fmt.Errorf("%w: extend from m=%d (head %d cells) to m=%d", ErrBadLength, cur, len(head), next)
	}
	n := len(t)
	kernels.ExtendRow32(head[:n-cur+1], t, 0, cur, next)
	return head[:n-next+1], nil
}

// ComputeFromHead builds the exact matrix profile at length m from a
// diagonal head row (len ≥ n−m+1 cells, already at length m): each
// diagonal streams from its head cell with the in-length recurrence, and
// symmetry resolves both endpoints of every pair in one visit. Compute
// seeds the head with one FFT; a caller holding an extended head (see
// ExtendDiagonalHead) skips the FFT entirely.
func ComputeFromHead(t []float64, m, exclFactor int, head []float64) (*profile.MatrixProfile, error) {
	n := len(t)
	if err := validate(n, m); err != nil {
		return nil, err
	}
	s := n - m + 1
	if len(head) < s {
		return nil, fmt.Errorf("%w: head has %d cells, need %d at m=%d", ErrBadLength, len(head), s, m)
	}
	excl := profile.ExclusionZone(m, exclFactor)
	mp := profile.New(m, excl, s)
	if s <= excl {
		return mp, nil // no non-trivial pairs exist
	}
	means, stds := series.SlidingMeanStd(t, m)
	fm := float64(m)
	for k := excl; k < s; k++ {
		qt := head[k]
		for i := 0; i+k < s; i++ {
			j := i + k
			if i > 0 {
				qt += t[i+m-1]*t[j+m-1] - t[i-1]*t[j-1]
			}
			d := series.DistFromDot(qt, fm, means[i], stds[i], means[j], stds[j])
			mp.Update(i, d, j)
			mp.Update(j, d, i)
		}
	}
	return mp, nil
}

// Compute returns the exact matrix profile of t at subsequence length m,
// using exclusion zone ⌈m/exclFactor⌉ (exclFactor ≤ 0 selects the default).
// Diagonal traversal: one FFT seeds every diagonal's first dot product
// (DiagonalHead), then each diagonal streams in O(1) per cell
// (ComputeFromHead).
func Compute(t []float64, m, exclFactor int) (*profile.MatrixProfile, error) {
	head, err := DiagonalHead(t, m)
	if err != nil {
		return nil, err
	}
	return ComputeFromHead(t, m, exclFactor, head)
}

// ComputeParallel is Compute with diagonals partitioned across workers.
// workers ≤ 0 selects GOMAXPROCS. Each worker owns a private profile that is
// min-merged at the end, so results equal the serial version (nearest-
// neighbor ties may resolve to a different, equally-near index).
func ComputeParallel(t []float64, m, exclFactor, workers int) (*profile.MatrixProfile, error) {
	n := len(t)
	if err := validate(n, m); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := n - m + 1
	excl := profile.ExclusionZone(m, exclFactor)
	mp := profile.New(m, excl, s)
	if s <= excl {
		return mp, nil
	}
	if workers == 1 || s-excl < 4*workers {
		return Compute(t, m, exclFactor)
	}
	means, stds := series.SlidingMeanStd(t, m)
	qt0 := fft.SlidingDotProducts(t[0:m], t)
	fm := float64(m)

	// Diagonal k has s-k cells; assign contiguous ranges of k with roughly
	// equal total cell counts so workers finish together.
	totalCells := 0
	for k := excl; k < s; k++ {
		totalCells += s - k
	}
	bounds := make([]int, 0, workers+1)
	bounds = append(bounds, excl)
	acc, target, next := 0, totalCells/workers, 1
	for k := excl; k < s && next < workers; k++ {
		acc += s - k
		if acc >= target*next {
			bounds = append(bounds, k+1)
			next++
		}
	}
	bounds = append(bounds, s)

	locals := make([]*profile.MatrixProfile, len(bounds)-1)
	var wg sync.WaitGroup
	for w := 0; w < len(bounds)-1; w++ {
		lo, hi := bounds[w], bounds[w+1]
		local := profile.New(m, excl, s)
		locals[w] = local
		wg.Add(1)
		go func(lo, hi int, local *profile.MatrixProfile) {
			defer wg.Done()
			for k := lo; k < hi; k++ {
				qt := qt0[k]
				for i := 0; i+k < s; i++ {
					j := i + k
					if i > 0 {
						qt += t[i+m-1]*t[j+m-1] - t[i-1]*t[j-1]
					}
					d := series.DistFromDot(qt, fm, means[i], stds[i], means[j], stds[j])
					local.Update(i, d, j)
					local.Update(j, d, i)
				}
			}
		}(lo, hi, local)
	}
	wg.Wait()
	for _, local := range locals {
		for i := 0; i < s; i++ {
			mp.Update(i, local.Dist[i], local.Index[i])
		}
	}
	return mp, nil
}

// Rows streams the full distance-profile row of every anchor i, in order,
// with O(1)-amortized dot-product updates per cell. visit receives the raw
// sliding dot products and distances of row i; both buffers are reused
// across calls, so the visitor must not retain them. Trivial-match masking
// is the visitor's responsibility (the profile row includes |i−j| < excl
// cells). VALMOD's ℓmin phase uses this to select its p lower-bound entries
// per anchor while the matrix profile is built.
func Rows(t []float64, m int, visit func(i int, qt, dist []float64)) error {
	n := len(t)
	if err := validate(n, m); err != nil {
		return err
	}
	s := n - m + 1
	means, stds := series.SlidingMeanStd(t, m)
	row0 := fft.SlidingDotProducts(t[0:m], t)
	qt := append([]float64(nil), row0...)
	dist := make([]float64, s)
	fm := float64(m)
	for i := 0; i < s; i++ {
		if i > 0 {
			// In-place row recurrence, descending j so qt[j-1] is still row i-1.
			for j := s - 1; j >= 1; j-- {
				qt[j] = qt[j-1] + t[i+m-1]*t[j+m-1] - t[i-1]*t[j-1]
			}
			qt[0] = row0[i] // symmetry: QT(i,0) == QT(0,i)
		}
		for j := 0; j < s; j++ {
			dist[j] = series.DistFromDot(qt[j], fm, means[i], stds[i], means[j], stds[j])
		}
		visit(i, qt, dist)
	}
	return nil
}

// ComputeFromRows builds the matrix profile through the Rows iterator; it is
// the row-variant cross-check for Compute and the code path reused by
// VALMOD's full-recompute fallback.
func ComputeFromRows(t []float64, m, exclFactor int) (*profile.MatrixProfile, error) {
	n := len(t)
	if err := validate(n, m); err != nil {
		return nil, err
	}
	s := n - m + 1
	excl := profile.ExclusionZone(m, exclFactor)
	mp := profile.New(m, excl, s)
	err := Rows(t, m, func(i int, _, dist []float64) {
		for j := 0; j < s; j++ {
			if j >= i-excl+1 && j <= i+excl-1 {
				continue
			}
			mp.Update(i, dist[j], j)
		}
	})
	if err != nil {
		return nil, err
	}
	return mp, nil
}

// Brute is the O(n²·m) definitional matrix profile used as ground truth in
// tests and the pruning ablation.
func Brute(t []float64, m, exclFactor int) (*profile.MatrixProfile, error) {
	n := len(t)
	if err := validate(n, m); err != nil {
		return nil, err
	}
	s := n - m + 1
	excl := profile.ExclusionZone(m, exclFactor)
	mp := profile.New(m, excl, s)
	for i := 0; i < s; i++ {
		for j := i + excl; j < s; j++ {
			d := series.ZNormDist(t[i:i+m], t[j:j+m])
			mp.Update(i, d, j)
			mp.Update(j, d, i)
		}
	}
	return mp, nil
}
