package stomp

import (
	"math"
	"math/rand"
	"testing"

	"github.com/seriesmining/valmod/internal/series"
)

// TestAppendColumnMatchesDots replays a growing series point by point and
// checks the carried last column against direct dot products at every step
// — the recurrence must track the definition within floating tolerance as
// the chain depth grows.
func TestAppendColumnMatchesDots(t *testing.T) {
	const n, m = 400, 16
	rng := rand.New(rand.NewSource(11))
	full := make([]float64, n)
	v := 0.0
	for i := range full {
		v += rng.NormFloat64()
		full[i] = v
	}
	// A constant segment so σ=0 windows flow through the recurrence too.
	for i := 150; i < 190; i++ {
		full[i] = 3.25
	}

	var col []float64
	var err error
	for np := m; np <= n; np++ {
		ts := full[:np]
		col, err = AppendColumn(col, ts, m)
		if err != nil {
			t.Fatalf("n=%d: AppendColumn: %v", np, err)
		}
		j := np - m
		if len(col) != j+1 {
			t.Fatalf("n=%d: column has %d cells, want %d", np, len(col), j+1)
		}
		for i := 0; i <= j; i++ {
			want := series.Dot(ts[i:i+m], ts[j:j+m])
			scale := math.Abs(want)
			if scale < 1 {
				scale = 1
			}
			if math.Abs(col[i]-want) > 1e-9*scale {
				t.Fatalf("n=%d: QT(%d,%d) = %v, want %v", np, i, j, col[i], want)
			}
		}
	}
}

// TestAppendColumnErrors covers the argument contract.
func TestAppendColumnErrors(t *testing.T) {
	ts := make([]float64, 10)
	if _, err := AppendColumn(nil, ts[:3], 4); err == nil {
		t.Fatal("m > n: want error")
	}
	if _, err := AppendColumn(nil, ts, 4); err == nil {
		t.Fatal("short column: want error (need 6 cells, have 0)")
	}
}
