package stomp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/seriesmining/valmod/internal/profile"
	"github.com/seriesmining/valmod/internal/series"
)

func randWalk(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	v := 0.0
	for i := range x {
		v += rng.NormFloat64()
		x[i] = v
	}
	return x
}

func profilesMatch(t *testing.T, got, want *profile.MatrixProfile, tag string) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: len %d want %d", tag, got.Len(), want.Len())
	}
	for i := 0; i < got.Len(); i++ {
		g, w := got.Dist[i], want.Dist[i]
		if math.IsInf(g, 1) != math.IsInf(w, 1) {
			t.Fatalf("%s: i=%d inf mismatch %g vs %g", tag, i, g, w)
		}
		if !math.IsInf(g, 1) && math.Abs(g-w) > 1e-6*(1+w) {
			t.Fatalf("%s: i=%d dist %g want %g", tag, i, g, w)
		}
	}
}

func TestComputeMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range []struct{ n, m int }{{64, 8}, {128, 16}, {200, 10}, {100, 50}} {
		x := randWalk(rng, c.n)
		got, err := Compute(x, c.m, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Brute(x, c.m, 0)
		if err != nil {
			t.Fatal(err)
		}
		profilesMatch(t, got, want, "compute-vs-brute")
	}
}

func TestComputeFromRowsMatchesCompute(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, c := range []struct{ n, m int }{{80, 8}, {150, 25}} {
		x := randWalk(rng, c.n)
		a, err := Compute(x, c.m, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ComputeFromRows(x, c.m, 0)
		if err != nil {
			t.Fatal(err)
		}
		profilesMatch(t, a, b, "rows-vs-diagonal")
	}
}

func TestComputeParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randWalk(rng, 400)
	serial, err := Compute(x, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		par, err := ComputeParallel(x, 20, 0, workers)
		if err != nil {
			t.Fatal(err)
		}
		profilesMatch(t, par, serial, "parallel")
	}
}

func TestComputeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(120) + 30
		m := rng.Intn(n/3) + 4
		x := randWalk(rng, n)
		got, err := Compute(x, m, 0)
		if err != nil {
			return false
		}
		want, err := Brute(x, m, 0)
		if err != nil {
			return false
		}
		for i := 0; i < got.Len(); i++ {
			g, w := got.Dist[i], want.Dist[i]
			if math.IsInf(g, 1) != math.IsInf(w, 1) {
				return false
			}
			if !math.IsInf(g, 1) && math.Abs(g-w) > 1e-5*(1+w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRowsDistancesMatchDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randWalk(rng, 120)
	m := 12
	err := Rows(x, m, func(i int, qt, dist []float64) {
		if i%17 != 0 {
			return
		}
		for j := 0; j < len(dist); j += 11 {
			want := series.ZNormDist(x[i:i+m], x[j:j+m])
			if math.Abs(dist[j]-want) > 1e-6*(1+want) {
				t.Errorf("row %d col %d: %g want %g", i, j, dist[j], want)
			}
			wantQT := series.Dot(x[i:i+m], x[j:j+m])
			if math.Abs(qt[j]-wantQT) > 1e-6*(1+math.Abs(wantQT)) {
				t.Errorf("row %d col %d: qt %g want %g", i, j, qt[j], wantQT)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfJoinSymmetryInvariant(t *testing.T) {
	// The motif pair (i, MP.Index[i]) at the global minimum must be mutual
	// within distance equality: dist[i] == dist[index[i]] at the minimum.
	rng := rand.New(rand.NewSource(5))
	x := randWalk(rng, 300)
	mp, err := Compute(x, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, i := mp.Min()
	j := mp.Index[i]
	if math.Abs(mp.Dist[j]-d) > 1e-9*(1+d) {
		t.Errorf("global motif not mutual: d[i]=%g d[j]=%g", d, mp.Dist[j])
	}
}

func TestValidation(t *testing.T) {
	x := make([]float64, 10)
	if _, err := Compute(x, 1, 0); err == nil {
		t.Error("m=1 should fail")
	}
	if _, err := Compute(x, 11, 0); err == nil {
		t.Error("m>n should fail")
	}
	if _, err := ComputeParallel(x, 0, 0, 2); err == nil {
		t.Error("m=0 should fail")
	}
	if err := Rows(x, 99, func(int, []float64, []float64) {}); err == nil {
		t.Error("Rows with m>n should fail")
	}
}

func TestNoPairsWhenTooShort(t *testing.T) {
	// s <= excl: profile exists but is all +Inf / -1.
	x := randWalk(rand.New(rand.NewSource(6)), 20)
	mp, err := Compute(x, 16, 0) // s=5, excl=4 → only j-i=4 allowed... s>excl so pairs exist
	if err != nil {
		t.Fatal(err)
	}
	_ = mp
	mp2, err := Compute(x[:18], 16, 0) // s=3, excl=4 → no pairs
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < mp2.Len(); i++ {
		if mp2.Index[i] != -1 {
			t.Fatalf("expected empty profile, got index %d at %d", mp2.Index[i], i)
		}
	}
}

func TestPlantedMotifIsFound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, m := 500, 32
	x := randWalk(rng, n)
	// Plant a near-identical pattern at offsets 50 and 300.
	pattern := make([]float64, m)
	for i := range pattern {
		pattern[i] = math.Sin(float64(i) * 0.4)
	}
	for i := 0; i < m; i++ {
		x[50+i] = pattern[i]*10 + 3
		x[300+i] = pattern[i]*10 + 3 + rng.NormFloat64()*0.001
	}
	mp, err := Compute(x, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	pairs := mp.TopKPairs(1)
	if len(pairs) != 1 {
		t.Fatal("no motif found")
	}
	p := pairs[0]
	if !(near(p.A, 50, 2) && near(p.B, 300, 2)) {
		t.Errorf("motif pair = %v, want ~(50,300)", p)
	}
}

func near(x, target, tol int) bool {
	d := x - target
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func BenchmarkComputeN2000M64(b *testing.B) {
	x := randWalk(rand.New(rand.NewSource(8)), 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(x, 64, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComputeParallelN2000M64(b *testing.B) {
	x := randWalk(rand.New(rand.NewSource(9)), 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ComputeParallel(x, 64, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// TestExtendDiagonalHeadMatchesSeed: the extend path (cross-length FMA
// recurrence) must agree with the seed path (a fresh FFT) at the target
// length, and the profile built from the extended head must match the
// one built from a fresh seed.
func TestExtendDiagonalHeadMatchesSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := randWalk(rng, 400)
	const m0, m1 = 16, 40
	head, err := DiagonalHead(x, m0)
	if err != nil {
		t.Fatal(err)
	}
	head, err = ExtendDiagonalHead(head, x, m0, m1)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := DiagonalHead(x, m1)
	if err != nil {
		t.Fatal(err)
	}
	if len(head) != len(fresh) {
		t.Fatalf("extended head has %d cells, fresh seed %d", len(head), len(fresh))
	}
	for k := range fresh {
		if math.Abs(head[k]-fresh[k]) > 1e-6*(1+math.Abs(fresh[k])) {
			t.Fatalf("k=%d: extended %g, fresh %g", k, head[k], fresh[k])
		}
	}
	got, err := ComputeFromHead(x, m1, 0, head)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Compute(x, m1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Dist {
		if math.Abs(got.Dist[i]-want.Dist[i]) > 1e-6*(1+want.Dist[i]) {
			t.Fatalf("i=%d: dist %g from extended head, %g from fresh seed", i, got.Dist[i], want.Dist[i])
		}
	}
}

// TestExtendDiagonalHeadValidation: the extend path rejects shrinking
// targets, undersized heads and out-of-range lengths.
func TestExtendDiagonalHeadValidation(t *testing.T) {
	x := randWalk(rand.New(rand.NewSource(22)), 64)
	head, err := DiagonalHead(x, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExtendDiagonalHead(head, x, 8, 6); err == nil {
		t.Error("shrinking extension accepted")
	}
	if _, err := ExtendDiagonalHead(head[:10], x, 8, 12); err == nil {
		t.Error("undersized head accepted")
	}
	if _, err := ExtendDiagonalHead(head, x, 8, len(x)+1); err == nil {
		t.Error("target length beyond the series accepted")
	}
	if _, err := ComputeFromHead(x, 12, 0, head[:10]); err == nil {
		t.Error("ComputeFromHead accepted an undersized head")
	}
}
