package stomp

import (
	"github.com/seriesmining/valmod/internal/fft"
	"github.com/seriesmining/valmod/internal/profile"
	"github.com/seriesmining/valmod/internal/series"
)

// ComputeAB returns the AB-join matrix profile: for every subsequence of a,
// the z-normalized distance to its nearest neighbor among the subsequences
// of b (Matrix Profile I's join semantics). No exclusion zone applies —
// the two series are distinct, so no match is trivial. The returned
// profile's Index values are offsets into b.
func ComputeAB(a, b []float64, m int) (*profile.MatrixProfile, error) {
	if err := validate(len(a), m); err != nil {
		return nil, err
	}
	if err := validate(len(b), m); err != nil {
		return nil, err
	}
	sA := len(a) - m + 1
	sB := len(b) - m + 1
	mp := profile.New(m, 0, sA)
	mp.Exclusion = 0

	meansA, stdsA := series.SlidingMeanStd(a, m)
	meansB, stdsB := series.SlidingMeanStd(b, m)
	// Row 0 via FFT, then the standard dot-product recurrence row by row.
	qt := fft.SlidingDotProducts(a[0:m], b)
	row0 := append([]float64(nil), qt...)
	fm := float64(m)
	for i := 0; i < sA; i++ {
		if i > 0 {
			tail := a[i+m-1]
			head := a[i-1]
			for j := sB - 1; j >= 1; j-- {
				qt[j] = qt[j-1] + tail*b[j+m-1] - head*b[j-1]
			}
			// Column 0 has no left neighbor in the recurrence; one O(m)
			// dot product per row keeps it exact.
			qt[0] = series.Dot(a[i:i+m], b[0:m])
		} else {
			copy(qt, row0)
		}
		for j := 0; j < sB; j++ {
			d := series.DistFromDot(qt[j], fm, meansA[i], stdsA[i], meansB[j], stdsB[j])
			mp.Update(i, d, j)
		}
	}
	return mp, nil
}

// BruteAB is the O(|a|·|b|·m) reference join used in tests.
func BruteAB(a, b []float64, m int) (*profile.MatrixProfile, error) {
	if err := validate(len(a), m); err != nil {
		return nil, err
	}
	if err := validate(len(b), m); err != nil {
		return nil, err
	}
	sA := len(a) - m + 1
	sB := len(b) - m + 1
	mp := profile.New(m, 0, sA)
	mp.Exclusion = 0
	for i := 0; i < sA; i++ {
		for j := 0; j < sB; j++ {
			mp.Update(i, series.ZNormDist(a[i:i+m], b[j:j+m]), j)
		}
	}
	return mp, nil
}
