package stomp

// The right-append path of the diagonal traversal: where DiagonalHead /
// ExtendDiagonalHead carry dot-product state across *lengths*, AppendColumn
// carries it across *time*. A growing series gains one window per appended
// point (once n ≥ m), and the new window's dot products against every
// earlier window — the new last column QT(·, j) of the self-join — follow
// from the previous last column with the STOMP right-append recurrence
//
//	QT(i, j) = QT(i−1, j−1) + t[i+m−1]·t[j+m−1] − t[i−1]·t[j−1]
//
// (one fused multiply-add pair per cell; QT is symmetric, so this is
// kernels.RowNext with the anchor and candidate roles swapped). Only the
// head cell QT(0, j) needs a direct O(m) dot product. VALMOD's streaming
// append engine (internal/core) runs one such column per appended point
// per length — no prefix recompute, ever.

import (
	"fmt"

	"github.com/seriesmining/valmod/internal/kernels"
	"github.com/seriesmining/valmod/internal/series"
)

// AppendColumn advances the last-column state of a growing series to its
// newest window. t must already contain the appended point(s) up to and
// including window j = len(t) − m; col must hold the previous last column
// QT(i, j−1) in its first j cells (empty when j = 0). The returned slice
// (col, grown in place when capacity allows) holds QT(i, j) for i ∈ [0, j]
// — including the self-dot QT(j, j), which seeds the next append's
// recurrence.
func AppendColumn(col, t []float64, m int) ([]float64, error) {
	if err := validate(len(t), m); err != nil {
		return nil, err
	}
	j := len(t) - m
	if len(col) < j {
		return nil, fmt.Errorf("%w: append column has %d cells, need %d at m=%d", ErrBadLength, len(col), j, m)
	}
	col = append(col[:j], 0)
	if j == 0 {
		col[0] = series.Dot(t[0:m], t[0:m])
		return col, nil
	}
	// kernels.RowNext streams the recurrence downward (descending i reads
	// col[i−1] before overwriting it); the head cell is the one direct dot.
	kernels.RowNext(col, t, j, m, j+1)
	col[0] = series.Dot(t[0:m], t[j:j+m])
	return col, nil
}
