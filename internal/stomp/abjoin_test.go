package stomp

import (
	"math"
	"math/rand"
	"testing"
)

func TestComputeABMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randWalk(rng, 150)
	b := randWalk(rng, 220)
	for _, m := range []int{8, 16, 40} {
		got, err := ComputeAB(a, b, m)
		if err != nil {
			t.Fatal(err)
		}
		want, err := BruteAB(a, b, m)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != want.Len() {
			t.Fatalf("m=%d: len %d want %d", m, got.Len(), want.Len())
		}
		for i := 0; i < got.Len(); i++ {
			if math.Abs(got.Dist[i]-want.Dist[i]) > 2e-5*(1+want.Dist[i]) {
				t.Fatalf("m=%d i=%d: %g want %g", m, i, got.Dist[i], want.Dist[i])
			}
		}
	}
}

func TestComputeABFindsSharedPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randWalk(rng, 300)
	b := randWalk(rng, 300)
	m := 24
	// Plant the same shape in both series.
	for i := 0; i < m; i++ {
		v := math.Sin(float64(i)*0.4) * 9
		a[70+i] = v
		b[210+i] = v + rng.NormFloat64()*0.001
	}
	mp, err := ComputeAB(a, b, m)
	if err != nil {
		t.Fatal(err)
	}
	d, i := mp.Min()
	if !near(i, 70, 2) || !near(mp.Index[i], 210, 2) {
		t.Errorf("join min at (%d,%d), want ~(70,210)", i, mp.Index[i])
	}
	if d > 0.1 {
		t.Errorf("join distance %g, want ~0", d)
	}
}

func TestComputeABNoExclusion(t *testing.T) {
	// Self-join via AB on the same series: every subsequence matches
	// itself at distance 0 since no exclusion zone applies.
	rng := rand.New(rand.NewSource(3))
	a := randWalk(rng, 100)
	mp, err := ComputeAB(a, a, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < mp.Len(); i++ {
		if mp.Dist[i] > 2e-5 {
			t.Fatalf("self AB-join dist[%d] = %g, want 0", i, mp.Dist[i])
		}
		if mp.Index[i] != i {
			// Equal-distance ties may pick another exact duplicate; verify
			// the distance, not the index.
			if mp.Dist[i] > 2e-5 {
				t.Fatalf("index %d != %d with nonzero distance", mp.Index[i], i)
			}
		}
	}
}

func TestComputeABValidation(t *testing.T) {
	x := make([]float64, 30)
	if _, err := ComputeAB(x, x, 1); err == nil {
		t.Error("m=1 should fail")
	}
	if _, err := ComputeAB(x, make([]float64, 5), 10); err == nil {
		t.Error("b shorter than m should fail")
	}
}
