package series

import "math"

// Stats holds precomputed cumulative sums of a series, from which the mean
// and population standard deviation of any subsequence are recovered in
// O(1). One Stats value serves every subsequence length, which is what the
// VALMOD per-length loop needs: a fresh pair of μ/σ arrays per length would
// cost O(n) per length anyway, but the cumulative sums are shared.
type Stats struct {
	// cum[i] = Σ_{t<i} x_t, cumSq[i] = Σ_{t<i} x_t²; both have length n+1.
	cum   []float64
	cumSq []float64
	n     int
}

// NewStats precomputes cumulative sums for x.
func NewStats(x []float64) *Stats {
	n := len(x)
	st := &Stats{
		cum:   make([]float64, n+1),
		cumSq: make([]float64, n+1),
		n:     n,
	}
	for i, v := range x {
		st.cum[i+1] = st.cum[i] + v
		st.cumSq[i+1] = st.cumSq[i] + v*v
	}
	return st
}

// N returns the length of the underlying series.
func (st *Stats) N() int { return st.n }

// Append extends the cumulative sums for points appended to the series.
// Because the sums accumulate strictly left to right, the extended arrays
// are bit-identical to a NewStats rebuild over the whole series — the
// streaming engine relies on this to keep appended moments exactly equal
// to their batch counterparts.
func (st *Stats) Append(x []float64) {
	for _, v := range x {
		st.cum = append(st.cum, st.cum[st.n]+v)
		st.cumSq = append(st.cumSq, st.cumSq[st.n]+v*v)
		st.n++
	}
}

// Sum returns Σ x[i:i+m].
func (st *Stats) Sum(i, m int) float64 { return st.cum[i+m] - st.cum[i] }

// SumSq returns Σ x[i:i+m]².
func (st *Stats) SumSq(i, m int) float64 { return st.cumSq[i+m] - st.cumSq[i] }

// Mean returns the mean of x[i:i+m].
func (st *Stats) Mean(i, m int) float64 {
	return st.Sum(i, m) / float64(m)
}

// Var returns the population variance of x[i:i+m], clamped at zero to guard
// against catastrophic cancellation on near-constant windows. A single-point
// window has variance exactly 0.
func (st *Stats) Var(i, m int) float64 {
	if m == 1 {
		return 0
	}
	mu := st.Mean(i, m)
	v := st.SumSq(i, m)/float64(m) - mu*mu
	if v < 0 {
		return 0
	}
	return v
}

// Std returns the population standard deviation of x[i:i+m].
func (st *Stats) Std(i, m int) float64 { return math.Sqrt(st.Var(i, m)) }

// MeanStd returns both moments of x[i:i+m] with one pass over the sums.
func (st *Stats) MeanStd(i, m int) (mean, std float64) {
	mean = st.Sum(i, m) / float64(m)
	if m == 1 {
		return mean, 0
	}
	v := st.SumSq(i, m)/float64(m) - mean*mean
	if v < 0 {
		v = 0
	}
	return mean, math.Sqrt(v)
}

// SlidingMeanStd computes μ and σ (population) of every length-m window of
// x directly, without a Stats value. It returns slices of length
// len(x)-m+1, or nils when m is out of range. This is the two-pass
// reference used in tests and by callers that need whole arrays at once.
func SlidingMeanStd(x []float64, m int) (means, stds []float64) {
	n := len(x)
	if m <= 0 || m > n {
		return nil, nil
	}
	k := n - m + 1
	means = make([]float64, k)
	stds = make([]float64, k)
	st := NewStats(x)
	for i := 0; i < k; i++ {
		means[i], stds[i] = st.MeanStd(i, m)
	}
	return means, stds
}

// MeanStdTwoPass computes the moments of one window precisely with a
// two-pass algorithm. It is the numerical ground truth the cumulative-sum
// path is tested against.
func MeanStdTwoPass(w []float64) (mean, std float64) {
	n := float64(len(w))
	if n == 0 {
		return 0, 0
	}
	var sum float64
	for _, v := range w {
		sum += v
	}
	mean = sum / n
	var ss float64
	for _, v := range w {
		d := v - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / n)
}
