package series

import "math"

// ZNormalize returns a z-normalized copy of w: zero mean, unit population
// standard deviation. A constant window (σ = 0) normalizes to all zeros,
// the standard matrix-profile convention.
func ZNormalize(w []float64) []float64 {
	out := make([]float64, len(w))
	mean, std := MeanStdTwoPass(w)
	if std == 0 {
		return out
	}
	for i, v := range w {
		out[i] = (v - mean) / std
	}
	return out
}

// ZNormDist returns the z-normalized Euclidean distance between two equal
// length windows, computed directly (O(m)). It panics when lengths differ.
//
// Degenerate convention (documented in DESIGN.md §7): when both windows are
// constant the distance is 0; when exactly one is constant it is √(2m), the
// distance between any unit-energy z-normalized vector and the zero vector
// scaled to the 2m(1−ρ) form with ρ = 0.
func ZNormDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("series: ZNormDist length mismatch")
	}
	m := len(a)
	if m == 0 {
		return 0
	}
	muA, sdA := MeanStdTwoPass(a)
	muB, sdB := MeanStdTwoPass(b)
	if sdA == 0 && sdB == 0 {
		return 0
	}
	if sdA == 0 || sdB == 0 {
		return math.Sqrt(2 * float64(m))
	}
	var qt float64
	for i := range a {
		qt += a[i] * b[i]
	}
	return DistFromDot(qt, float64(m), muA, sdA, muB, sdB)
}

// DistFromDot converts a raw dot product QT = Σ aᵢbᵢ between two length-m
// windows with the given moments into the z-normalized Euclidean distance
// d = sqrt(2m(1−ρ)), ρ = (QT − m·μa·μb)/(m·σa·σb). The correlation is
// clamped to [−1, 1] so floating-point noise can never produce NaN.
// Degenerate σ handling follows ZNormDist.
func DistFromDot(qt, m, muA, sdA, muB, sdB float64) float64 {
	if sdA == 0 && sdB == 0 {
		return 0
	}
	if sdA == 0 || sdB == 0 {
		return math.Sqrt(2 * m)
	}
	rho := (qt - m*muA*muB) / (m * sdA * sdB)
	if rho > 1 {
		rho = 1
	} else if rho < -1 {
		rho = -1
	}
	return math.Sqrt(2 * m * (1 - rho))
}

// CorrFromDot returns the Pearson correlation implied by a dot product,
// clamped to [−1, 1]. Degenerate σ yields 0 (one constant window) or 1
// (both constant), matching the distance conventions above.
func CorrFromDot(qt, m, muA, sdA, muB, sdB float64) float64 {
	if sdA == 0 && sdB == 0 {
		return 1
	}
	if sdA == 0 || sdB == 0 {
		return 0
	}
	rho := (qt - m*muA*muB) / (m * sdA * sdB)
	if rho > 1 {
		return 1
	}
	if rho < -1 {
		return -1
	}
	return rho
}

// Dot returns the plain dot product of two equal-length windows.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("series: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// LengthNormalize converts a z-normalized Euclidean distance of length-ℓ
// subsequences into the paper's length-normalized distance d·sqrt(1/ℓ),
// which makes motifs of different lengths comparable (demo §"Rank Motif
// Pairs of Variable Lengths").
func LengthNormalize(d float64, l int) float64 {
	return d * math.Sqrt(1/float64(l))
}
