package series

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadTextBasic(t *testing.T) {
	in := "# comment\n1.5\n2.5\n\n3 4\n"
	s, err := ReadText(strings.NewReader(in), "t")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 2.5, 3, 4}
	if len(s.Values) != len(want) {
		t.Fatalf("got %v", s.Values)
	}
	for i := range want {
		if s.Values[i] != want[i] {
			t.Fatalf("got %v want %v", s.Values, want)
		}
	}
}

func TestReadTextRejectsGarbage(t *testing.T) {
	if _, err := ReadText(strings.NewReader("1\nnot-a-number\n"), "t"); err == nil {
		t.Error("expected parse error")
	}
	if _, err := ReadText(strings.NewReader("1\nNaN\n"), "t"); err == nil {
		t.Error("expected NaN rejection")
	}
	if _, err := ReadText(strings.NewReader("+Inf\n"), "t"); err == nil {
		t.Error("expected Inf rejection")
	}
}

func TestReadCSV(t *testing.T) {
	in := "time,value\n0,1.5\n1,2.5\n2,3.5\n"
	s, err := ReadCSV(strings.NewReader(in), "t", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Values) != 3 || s.Values[2] != 3.5 {
		t.Fatalf("got %v", s.Values)
	}
}

func TestReadCSVColumnOutOfRange(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("1,2\n"), "t", 5); err == nil {
		t.Error("expected out-of-range error")
	}
}

func TestTextRoundTrip(t *testing.T) {
	s := New("t", []float64{1.25, -3.5e-7, 0, 123456789.123})
	var buf bytes.Buffer
	if err := s.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf, "t")
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Values {
		if got.Values[i] != s.Values[i] {
			t.Fatalf("round trip mismatch: %v vs %v", got.Values, s.Values)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	s := New("t", []float64{1.25, -2.5, math.Pi, 1e-300})
	var buf bytes.Buffer
	if err := s.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf, "t")
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.Values {
		if got.Values[i] != s.Values[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestReadBinaryRejectsNaN(t *testing.T) {
	s := New("t", []float64{1})
	var buf bytes.Buffer
	_ = s.WriteBinary(&buf)
	nan := make([]byte, 8)
	for i := range nan {
		nan[i] = 0xff // quiet NaN pattern
	}
	buf.Write(nan)
	if _, err := ReadBinary(&buf, "t"); err == nil {
		t.Error("expected NaN rejection from binary stream")
	}
}

func TestLoadSaveFile(t *testing.T) {
	dir := t.TempDir()
	s := New("t", []float64{9, 8, 7})

	txtPath := filepath.Join(dir, "data.txt")
	if err := s.SaveFile(txtPath); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(txtPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 || got.Values[0] != 9 {
		t.Fatalf("text file round trip: %v", got.Values)
	}
	if got.Name != "data.txt" {
		t.Errorf("name should be base name, got %q", got.Name)
	}

	binPath := filepath.Join(dir, "data.bin")
	if err := s.SaveFile(binPath); err != nil {
		t.Fatal(err)
	}
	got, err = LoadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 || got.Values[2] != 7 {
		t.Fatalf("binary file round trip: %v", got.Values)
	}

	csvPath := filepath.Join(dir, "data.csv")
	if err := os.WriteFile(csvPath, []byte("v\n5\n6\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = LoadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Values[1] != 6 {
		t.Fatalf("csv load: %v", got.Values)
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/path/data.txt"); err == nil {
		t.Error("expected error for missing file")
	}
}
