package series

import (
	"math"
	"math/rand"
	"testing"
)

func TestNumSubsequences(t *testing.T) {
	s := New("t", make([]float64, 10))
	cases := []struct{ m, want int }{
		{1, 10}, {5, 6}, {10, 1}, {11, 0}, {0, 0}, {-3, 0},
	}
	for _, c := range cases {
		if got := s.NumSubsequences(c.m); got != c.want {
			t.Errorf("NumSubsequences(%d) = %d, want %d", c.m, got, c.want)
		}
	}
}

func TestSubAliases(t *testing.T) {
	s := New("t", []float64{0, 1, 2, 3, 4})
	sub := s.Sub(1, 3)
	if len(sub) != 3 || sub[0] != 1 || sub[2] != 3 {
		t.Fatalf("Sub(1,3) = %v", sub)
	}
	sub[0] = 99
	if s.Values[1] != 99 {
		t.Error("Sub should alias the series storage")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := New("t", []float64{1, 2, 3})
	c := s.Clone()
	c.Values[0] = 42
	if s.Values[0] != 1 {
		t.Error("Clone must not share storage")
	}
	if c.Name != "t" {
		t.Error("Clone must preserve the name")
	}
}

func TestPrefix(t *testing.T) {
	s := New("t", []float64{1, 2, 3, 4})
	p := s.Prefix(2)
	if p.Len() != 2 || p.Values[1] != 2 {
		t.Fatalf("Prefix(2) = %v", p.Values)
	}
}

func TestValidate(t *testing.T) {
	if err := New("ok", []float64{1, 2, 3}).Validate(); err != nil {
		t.Errorf("clean series: %v", err)
	}
	if err := New("nan", []float64{1, math.NaN()}).Validate(); err == nil {
		t.Error("NaN series should fail validation")
	}
	if err := New("inf", []float64{math.Inf(1)}).Validate(); err == nil {
		t.Error("Inf series should fail validation")
	}
}

func TestStringSummary(t *testing.T) {
	if got := New("ECG", make([]float64, 7)).String(); got != "ECG(n=7)" {
		t.Errorf("String() = %q", got)
	}
	if got := New("", nil).String(); got != "series(n=0)" {
		t.Errorf("String() = %q", got)
	}
}

func TestStatsMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 500)
	for i := range x {
		x[i] = rng.NormFloat64()*100 + 50
	}
	st := NewStats(x)
	for _, m := range []int{1, 2, 7, 64, 500} {
		for i := 0; i+m <= len(x); i += 37 {
			mu, sd := st.MeanStd(i, m)
			wantMu, wantSd := MeanStdTwoPass(x[i : i+m])
			if math.Abs(mu-wantMu) > 1e-9*(1+math.Abs(wantMu)) {
				t.Fatalf("m=%d i=%d mean %g want %g", m, i, mu, wantMu)
			}
			if math.Abs(sd-wantSd) > 1e-6*(1+math.Abs(mu)+wantSd) {
				t.Fatalf("m=%d i=%d std %g want %g", m, i, sd, wantSd)
			}
		}
	}
}

func TestStatsConstantWindow(t *testing.T) {
	x := []float64{3, 3, 3, 3, 3}
	st := NewStats(x)
	mu, sd := st.MeanStd(0, 5)
	if mu != 3 || sd != 0 {
		t.Errorf("constant window: mean=%g std=%g", mu, sd)
	}
	if st.Var(1, 3) != 0 {
		t.Errorf("variance of constant window should clamp to 0")
	}
}

func TestSlidingMeanStd(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	means, stds := SlidingMeanStd(x, 2)
	wantMeans := []float64{1.5, 2.5, 3.5, 4.5}
	for i := range wantMeans {
		if math.Abs(means[i]-wantMeans[i]) > 1e-12 {
			t.Errorf("means[%d] = %g, want %g", i, means[i], wantMeans[i])
		}
		if math.Abs(stds[i]-0.5) > 1e-12 {
			t.Errorf("stds[%d] = %g, want 0.5", i, stds[i])
		}
	}
	if m, s := SlidingMeanStd(x, 6); m != nil || s != nil {
		t.Error("out-of-range m should return nils")
	}
	if m, s := SlidingMeanStd(x, 0); m != nil || s != nil {
		t.Error("m=0 should return nils")
	}
}

func TestStatsSumAndSumSq(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	st := NewStats(x)
	if st.Sum(1, 2) != 5 {
		t.Errorf("Sum(1,2) = %g, want 5", st.Sum(1, 2))
	}
	if st.SumSq(1, 3) != 4+9+16 {
		t.Errorf("SumSq(1,3) = %g, want 29", st.SumSq(1, 3))
	}
	if st.N() != 4 {
		t.Errorf("N() = %d", st.N())
	}
}
