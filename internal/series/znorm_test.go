package series

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveZNormDist computes the distance by explicitly normalizing both
// windows — the definitional reference.
func naiveZNormDist(a, b []float64) float64 {
	za := ZNormalize(a)
	zb := ZNormalize(b)
	var ss float64
	for i := range za {
		d := za[i] - zb[i]
		ss += d * d
	}
	return math.Sqrt(ss)
}

func randWindow(rng *rand.Rand, m int) []float64 {
	w := make([]float64, m)
	for i := range w {
		w[i] = rng.NormFloat64()*10 + 3
	}
	return w
}

func TestZNormalizeMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range []int{2, 5, 50, 333} {
		z := ZNormalize(randWindow(rng, m))
		mu, sd := MeanStdTwoPass(z)
		if math.Abs(mu) > 1e-10 {
			t.Errorf("m=%d: mean %g, want 0", m, mu)
		}
		if math.Abs(sd-1) > 1e-10 {
			t.Errorf("m=%d: std %g, want 1", m, sd)
		}
	}
}

func TestZNormalizeConstant(t *testing.T) {
	z := ZNormalize([]float64{5, 5, 5})
	for _, v := range z {
		if v != 0 {
			t.Fatalf("constant window should z-normalize to zeros, got %v", z)
		}
	}
}

func TestZNormDistMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, m := range []int{2, 3, 10, 100} {
		a, b := randWindow(rng, m), randWindow(rng, m)
		got := ZNormDist(a, b)
		want := naiveZNormDist(a, b)
		if math.Abs(got-want) > 1e-8*(1+want) {
			t.Errorf("m=%d: %g want %g", m, got, want)
		}
	}
}

func TestZNormDistProperties(t *testing.T) {
	// Shift/scale invariance and symmetry: d(x, a·y+b) == d(x, y) for a>0.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(60) + 2
		a, b := randWindow(rng, m), randWindow(rng, m)
		scale := math.Abs(rng.NormFloat64()) + 0.1
		shift := rng.NormFloat64() * 5
		bScaled := make([]float64, m)
		for i := range b {
			bScaled[i] = scale*b[i] + shift
		}
		d1 := ZNormDist(a, b)
		d2 := ZNormDist(a, bScaled)
		d3 := ZNormDist(b, a)
		return math.Abs(d1-d2) < 1e-7*(1+d1) && math.Abs(d1-d3) < 1e-9*(1+d1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestZNormDistSelfIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randWindow(rng, 30)
	if d := ZNormDist(a, a); d > 1e-9 {
		t.Errorf("d(a,a) = %g, want 0", d)
	}
}

func TestZNormDistRange(t *testing.T) {
	// Max distance is 2√m (perfectly anti-correlated).
	m := 16
	up := make([]float64, m)
	down := make([]float64, m)
	for i := 0; i < m; i++ {
		up[i] = float64(i)
		down[i] = float64(m - i)
	}
	d := ZNormDist(up, down)
	want := 2 * math.Sqrt(float64(m))
	if math.Abs(d-want) > 1e-9 {
		t.Errorf("anti-correlated distance %g, want %g", d, want)
	}
}

func TestZNormDistDegenerate(t *testing.T) {
	flat := []float64{2, 2, 2, 2}
	flat2 := []float64{-7, -7, -7, -7}
	varied := []float64{1, 2, 3, 4}
	if d := ZNormDist(flat, flat2); d != 0 {
		t.Errorf("both constant: d = %g, want 0", d)
	}
	want := math.Sqrt(2 * 4)
	if d := ZNormDist(flat, varied); math.Abs(d-want) > 1e-12 {
		t.Errorf("one constant: d = %g, want %g", d, want)
	}
}

func TestZNormDistPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	ZNormDist([]float64{1, 2}, []float64{1, 2, 3})
}

func TestDistFromDotMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		m := rng.Intn(80) + 2
		a, b := randWindow(rng, m), randWindow(rng, m)
		muA, sdA := MeanStdTwoPass(a)
		muB, sdB := MeanStdTwoPass(b)
		got := DistFromDot(Dot(a, b), float64(m), muA, sdA, muB, sdB)
		want := ZNormDist(a, b)
		if math.Abs(got-want) > 1e-8*(1+want) {
			t.Fatalf("m=%d: DistFromDot %g want %g", m, got, want)
		}
	}
}

func TestCorrFromDot(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := 40
	a := randWindow(rng, m)
	muA, sdA := MeanStdTwoPass(a)
	// Self-correlation is 1.
	if rho := CorrFromDot(Dot(a, a), float64(m), muA, sdA, muA, sdA); math.Abs(rho-1) > 1e-9 {
		t.Errorf("self correlation %g, want 1", rho)
	}
	// Degenerate conventions.
	if rho := CorrFromDot(0, float64(m), 0, 0, 0, 0); rho != 1 {
		t.Errorf("both constant: %g, want 1", rho)
	}
	if rho := CorrFromDot(0, float64(m), 0, 0, muA, sdA); rho != 0 {
		t.Errorf("one constant: %g, want 0", rho)
	}
}

func TestLengthNormalize(t *testing.T) {
	// d/√ℓ: equal raw distances at different lengths rank the longer first.
	short := LengthNormalize(10, 50)
	long := LengthNormalize(10, 400)
	if long >= short {
		t.Errorf("length normalization should favor longer: %g vs %g", long, short)
	}
	if math.Abs(LengthNormalize(6, 9)-2) > 1e-12 {
		t.Errorf("LengthNormalize(6,9) = %g, want 2", LengthNormalize(6, 9))
	}
}

func TestDistCorrConsistency(t *testing.T) {
	// d² == 2m(1−ρ) must tie the two helpers together.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(60) + 2
		a, b := randWindow(rng, m), randWindow(rng, m)
		muA, sdA := MeanStdTwoPass(a)
		muB, sdB := MeanStdTwoPass(b)
		qt := Dot(a, b)
		d := DistFromDot(qt, float64(m), muA, sdA, muB, sdB)
		rho := CorrFromDot(qt, float64(m), muA, sdA, muB, sdB)
		return math.Abs(d*d-2*float64(m)*(1-rho)) < 1e-6*(1+d*d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
