package series

import (
	"math"
	"math/rand"
	"testing"
)

// TestStatsAppendBitIdentical grows a Stats value in random chunks and
// asserts the result is bit-identical to a fresh NewStats over the same
// prefix at every step — the property the streaming engine's moment
// equality rests on.
func TestStatsAppendBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 500
	x := make([]float64, n)
	v := 0.0
	for i := range x {
		v += rng.NormFloat64()
		x[i] = v
	}

	st := NewStats(nil)
	pos := 0
	for pos < n {
		chunk := 1 + rng.Intn(40)
		if pos+chunk > n {
			chunk = n - pos
		}
		st.Append(x[pos : pos+chunk])
		pos += chunk

		want := NewStats(x[:pos])
		if st.N() != want.N() {
			t.Fatalf("pos=%d: N=%d, want %d", pos, st.N(), want.N())
		}
		for i := 0; i <= pos; i++ {
			if math.Float64bits(st.cum[i]) != math.Float64bits(want.cum[i]) ||
				math.Float64bits(st.cumSq[i]) != math.Float64bits(want.cumSq[i]) {
				t.Fatalf("pos=%d: sums diverge at i=%d: (%v,%v) vs (%v,%v)",
					pos, i, st.cum[i], st.cumSq[i], want.cum[i], want.cumSq[i])
			}
		}
	}
}
