package series

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// ReadText parses a whitespace- or newline-separated stream of float64
// values. Lines starting with '#' are comments. Empty input yields an empty
// series. Non-finite values are rejected.
func ReadText(r io.Reader, name string) (*Series, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	var values []float64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		for _, field := range strings.Fields(text) {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("series: line %d: %w", line, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("series: line %d: %w", line, ErrInvalidValue)
			}
			values = append(values, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("series: %w", err)
	}
	return New(name, values), nil
}

// ReadCSV parses one column (0-based index col) of a comma-separated stream.
// A non-numeric first row is treated as a header and skipped.
func ReadCSV(r io.Reader, name string, col int) (*Series, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	var values []float64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		if col >= len(fields) {
			return nil, fmt.Errorf("series: line %d: column %d out of range (%d fields)", line, col, len(fields))
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(fields[col]), 64)
		if err != nil {
			if line == 1 {
				continue // header row
			}
			return nil, fmt.Errorf("series: line %d: %w", line, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("series: line %d: %w", line, ErrInvalidValue)
		}
		values = append(values, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("series: %w", err)
	}
	return New(name, values), nil
}

// ReadBinary parses little-endian float64 values until EOF.
func ReadBinary(r io.Reader, name string) (*Series, error) {
	br := bufio.NewReader(r)
	var values []float64
	buf := make([]byte, 8)
	for {
		_, err := io.ReadFull(br, buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("series: binary read: %w", err)
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(buf))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("series: %w in binary stream", ErrInvalidValue)
		}
		values = append(values, v)
	}
	return New(name, values), nil
}

// WriteText writes one value per line with full float64 round-trip
// precision.
func (s *Series) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, v := range s.Values {
		if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteBinary writes little-endian float64 values.
func (s *Series) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	buf := make([]byte, 8)
	for _, v := range s.Values {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadFile loads a series from path, picking the format from the extension:
// ".bin" → binary float64, ".csv" → first CSV column, anything else → text.
func LoadFile(path string) (*Series, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		name = path[i+1:]
	}
	switch {
	case strings.HasSuffix(path, ".bin"):
		return ReadBinary(f, name)
	case strings.HasSuffix(path, ".csv"):
		return ReadCSV(f, name, 0)
	default:
		return ReadText(f, name)
	}
}

// SaveFile writes the series to path, picking the format from the extension
// the same way LoadFile does.
func (s *Series) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".bin") {
		return s.WriteBinary(f)
	}
	return s.WriteText(f)
}
