// Package series provides the data-series substrate shared by every other
// package in the VALMOD reproduction: the Series type, rolling subsequence
// statistics, z-normalization, the z-normalized Euclidean distance, and
// loaders/writers for common on-disk formats.
//
// Terminology follows the paper: a data series D of length |D| has
// contiguous subsequences D_{i,ℓ} identified by offset i and length ℓ.
package series

import (
	"errors"
	"fmt"
	"math"
)

// ErrTooShort is returned when a series is shorter than an operation needs.
var ErrTooShort = errors.New("series: too short")

// ErrInvalidValue is returned when a series contains NaN or ±Inf.
var ErrInvalidValue = errors.New("series: non-finite value")

// Series is an in-memory data series. The zero value is an empty series
// ready to use. Values holds the raw points in order.
type Series struct {
	// Name is an optional label used in reports ("ECG", "ASTRO", ...).
	Name string
	// Values are the raw data points.
	Values []float64
}

// New returns a Series wrapping values (not copied) with the given name.
func New(name string, values []float64) *Series {
	return &Series{Name: name, Values: values}
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Values) }

// NumSubsequences returns the number of contiguous subsequences of length m,
// i.e. |D| − m + 1, or 0 when m is out of range.
func (s *Series) NumSubsequences(m int) int {
	if m <= 0 || m > len(s.Values) {
		return 0
	}
	return len(s.Values) - m + 1
}

// Sub returns the subsequence D_{i,m} as a slice aliasing the series
// storage. It panics when the window is out of range, mirroring slice
// semantics.
func (s *Series) Sub(i, m int) []float64 {
	return s.Values[i : i+m]
}

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	v := make([]float64, len(s.Values))
	copy(v, s.Values)
	return &Series{Name: s.Name, Values: v}
}

// Prefix returns a view of the first n points (useful for the dataset-length
// scaling experiment, Figure 3 bottom). It panics when n is out of range.
func (s *Series) Prefix(n int) *Series {
	return &Series{Name: s.Name, Values: s.Values[:n]}
}

// Validate returns an error when the series contains NaN or infinite values,
// identifying the first offending index.
func (s *Series) Validate() error {
	for i, v := range s.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w at index %d: %v", ErrInvalidValue, i, v)
		}
	}
	return nil
}

// String implements fmt.Stringer with a short summary, not the full data.
func (s *Series) String() string {
	name := s.Name
	if name == "" {
		name = "series"
	}
	return fmt.Sprintf("%s(n=%d)", name, len(s.Values))
}
