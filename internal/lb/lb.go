// Package lb implements the VALMOD lower-bounding distance: a bound on the
// z-normalized Euclidean distance between two subsequences at length ℓ+k
// computable from (a) full knowledge of one subsequence (the anchor, whose
// distance profile is being extended) and (b) only the length-ℓ statistics
// of the other (the candidate), retained from the ℓmin phase.
//
// # Derivation
//
// Let A = T[i : i+L+k] (anchor, fully known) and B = T[j : j+L+k]
// (candidate; only QT_L = Σ_{t<L} a_t·b_t, μ_{B,L}, σ_{B,L} known).
// With â the z-normalization of A at length L+k, the squared distance is
// d² = 2(L+k)(1−ρ), so a lower bound on d needs an upper bound on the
// correlation ρ = (1/(L+k))·Σ_t â_t·b̂_t.
//
// Parameterize the unknown full-length moments of B by α = σ_{B,L}/σ_B and
// β = (μ_{B,L}−μ_B)/σ_B, so that b̂_t = α·b̃_t + β on the known head
// (b̃ = B's head z-normalized at length L). Then
//
//	Σ_{t<L} â_t·b̂_t = α·Q̃ + β·S_head,
//	Q̃ = q̃/σ_A,  q̃ = (QT_L − μ_{B,L}·S_{A,L})/σ_{B,L},
//	S_head = (S_{A,L} − L·μ_A)/σ_A,
//
// and Cauchy–Schwarz bounds the unknown tail by
// sqrt(E_tail)·sqrt(L+k − L(α²+β²)) with E_tail = Σ_{t≥L} â_t².
// Maximizing over (α, β) (a second Cauchy–Schwarz over the disk
// α²+β² ≤ (L+k)/L) yields the closed form
//
//	ρ ≤ ρmax = min(1, sqrt( (Q̃² + S_head² + L·E_tail) / (L·(L+k)) ))
//	LB = sqrt( 2(L+k)·(1 − ρmax) )  ≤  d.
//
// # Rank preservation
//
// For a fixed anchor and target length, S_head and E_tail are shared by all
// candidates, and Q̃² = q̃²/σ_A² orders candidates identically for every k
// because q̃ is k-independent. Sorting candidates by q̃² descending therefore
// equals sorting by LB ascending at every length — the property the demo
// paper states ("the same rank will be preserved along all the lower bound
// updates") and the one that lets VALMOD keep only the p most-promising
// entries per distance profile.
package lb

import (
	"math"

	"github.com/seriesmining/valmod/internal/series"
)

// QTilde returns the k-independent candidate term q̃ of the lower bound:
// q̃ = (QT_L − μ_{B,L}·S_{A,L})/σ_{B,L}, where qtL is the length-L dot
// product between anchor and candidate, sumA the anchor head sum Σ_{t<L} a_t
// and muB/sdB the candidate's length-L moments. A degenerate candidate
// (σ_{B,L} = 0) contributes q̃ = 0, which the derivation shows is the exact
// collapse of the head term, not a special case.
func QTilde(qtL, sumA, muB, sdB float64) float64 {
	if sdB == 0 {
		return 0
	}
	return (qtL - muB*sumA) / sdB
}

// AnchorTerms holds the candidate-independent pieces of the bound for one
// anchor at one target length L+k. Building it costs O(1) given series
// cumulative statistics.
type AnchorTerms struct {
	L      int     // base length (where candidate stats were frozen)
	K      int     // extension, target length is L+K
	SigmaA float64 // anchor σ at length L+K
	SHead  float64 // (S_{A,L} − L·μ_A)/σ_A
	ETail  float64 // Σ_{t=L}^{L+K−1} â_t²
	valid  bool
}

// NewAnchorTerms computes the anchor-side terms for anchor offset i, base
// length l and target length l+k, from the series' cumulative statistics.
// A degenerate anchor (σ = 0 at the target length) yields terms whose
// Bound is always 0 (trivially valid).
func NewAnchorTerms(st *series.Stats, i, l, k int) AnchorTerms {
	muA, sdA := st.MeanStd(i, l+k)
	t := AnchorTerms{L: l, K: k, SigmaA: sdA}
	if sdA == 0 {
		return t
	}
	sumAL := st.Sum(i, l)
	t.SHead = (sumAL - float64(l)*muA) / sdA
	if k > 0 {
		sTail := st.Sum(i+l, k)
		ssTail := st.SumSq(i+l, k)
		et := (ssTail - 2*muA*sTail + float64(k)*muA*muA) / (sdA * sdA)
		if et < 0 {
			et = 0
		}
		t.ETail = et
	}
	t.valid = true
	return t
}

// Bound returns the lower bound on the z-normalized distance at length
// L+K between the anchor described by t and a candidate with the given q̃.
func (t AnchorTerms) Bound(qTilde float64) float64 {
	if !t.valid {
		return 0
	}
	lf := float64(t.L)
	lk := float64(t.L + t.K)
	qHat := qTilde / t.SigmaA
	num := qHat*qHat + t.SHead*t.SHead + lf*t.ETail
	rhoMax := math.Sqrt(num / (lf * lk))
	if rhoMax > 1 {
		rhoMax = 1
	}
	return math.Sqrt(2 * lk * (1 - rhoMax))
}

// Entry is one retained cell of a partial distance profile (demo Figure 2a
// table row): the candidate offset, the running dot product at the current
// length, and the frozen q̃ that orders the lower bounds.
type Entry struct {
	J      int32   // candidate offset
	QT     float64 // Σ_{t<ℓcur} a_t·b_t, advanced by one product per length
	QTilde float64 // frozen at the base length; orders LBs at every length
}

// Advance extends the entry's dot product from length ℓ−1 to ℓ for anchor i:
// QT += T[i+ℓ−1]·T[j+ℓ−1].
func (e *Entry) Advance(t []float64, i, l int) {
	e.QT += t[i+l-1] * t[int(e.J)+l-1]
}

// Heapify orders entries as a min-heap on q̃². This is the layout VALMOD
// keeps a partial distance profile in: rank preservation makes the root —
// the entry with the smallest q̃² — the retained candidate with the largest
// lower bound, so eviction always discards the least promising entry.
func Heapify(es []Entry) {
	for i := len(es)/2 - 1; i >= 0; i-- {
		SiftDown(es, i)
	}
}

// SiftDown restores the min-heap ordering on q̃² below slot i after the
// entry there was replaced. (The pre-refactor core had a latent one-level
// sift here — benign for exactness, since VALMOD's bounds stay valid for
// any retained set, but it let less-promising entries survive eviction and
// so weakened the pruning.)
func SiftDown(es []Entry, i int) {
	n := len(es)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && es[l].QTilde*es[l].QTilde < es[small].QTilde*es[small].QTilde {
			small = l
		}
		if r < n && es[r].QTilde*es[r].QTilde < es[small].QTilde*es[small].QTilde {
			small = r
		}
		if small == i {
			return
		}
		es[i], es[small] = es[small], es[i]
		i = small
	}
}

// MaxLB returns the largest lower bound among the entries — the certification
// threshold maxLB of the demo paper: every candidate *not* retained in the
// partial profile has a true distance of at least this value. Entries must
// be the retained set (sorted or not; rank preservation makes the max the
// entry with the smallest q̃²).
func MaxLB(t AnchorTerms, entries []Entry) float64 {
	if len(entries) == 0 {
		return 0
	}
	// Smallest q̃² gives the largest LB; scan rather than trust ordering.
	minQ2 := math.Inf(1)
	for _, e := range entries {
		if q2 := e.QTilde * e.QTilde; q2 < minQ2 {
			minQ2 = q2
		}
	}
	return t.Bound(math.Sqrt(minQ2))
}
