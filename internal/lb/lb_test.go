package lb

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/seriesmining/valmod/internal/series"
)

func randWalk(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	v := 0.0
	for i := range x {
		v += rng.NormFloat64()
		x[i] = v
	}
	return x
}

// qTildeFor computes q̃ for anchor i, candidate j at base length l.
func qTildeFor(t []float64, st *series.Stats, i, j, l int) float64 {
	qtL := series.Dot(t[i:i+l], t[j:j+l])
	muB, sdB := st.MeanStd(j, l)
	return QTilde(qtL, st.Sum(i, l), muB, sdB)
}

// TestBoundSoundness is the load-bearing property: LB(i,j,ℓ+k) must never
// exceed the true z-normalized distance, for any anchor/candidate/extension.
func TestBoundSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(150) + 60
		x := randWalk(rng, n)
		st := series.NewStats(x)
		l := rng.Intn(20) + 4
		maxK := n - l
		for trial := 0; trial < 20; trial++ {
			k := rng.Intn(maxK/2 + 1)
			m := l + k
			if m > n/2 {
				continue
			}
			i := rng.Intn(n - m + 1)
			j := rng.Intn(n - m + 1)
			qt := qTildeFor(x, st, i, j, l)
			terms := NewAnchorTerms(st, i, l, k)
			bound := terms.Bound(qt)
			truth := series.ZNormDist(x[i:i+m], x[j:j+m])
			// Compare squared distances: d = √(2m(1−ρ)) amplifies one ULP
			// of correlation error into ~1e-6 of distance near perfect
			// matches (ρ→1, e.g. i=j), so the distance has no uniform
			// relative tolerance; d² is linear in ρ and does.
			if bound*bound > truth*truth+1e-6*(1+truth*truth) {
				t.Logf("violation: i=%d j=%d l=%d k=%d bound=%g truth=%g", i, j, l, k, bound, truth)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestBoundSoundnessStructured repeats the soundness check on structured
// (sinusoidal) data where correlations are high and the bound is tight.
func TestBoundSoundnessStructured(t *testing.T) {
	n := 400
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i)*0.17) + 0.3*math.Sin(float64(i)*0.031)
	}
	st := series.NewStats(x)
	l := 16
	for k := 0; k <= 64; k += 8 {
		m := l + k
		for i := 0; i+m <= n; i += 29 {
			for j := 0; j+m <= n; j += 17 {
				qt := qTildeFor(x, st, i, j, l)
				bound := NewAnchorTerms(st, i, l, k).Bound(qt)
				truth := series.ZNormDist(x[i:i+m], x[j:j+m])
				if bound > truth+1e-6*(1+truth) {
					t.Fatalf("violation: i=%d j=%d k=%d bound=%g truth=%g", i, j, k, bound, truth)
				}
			}
		}
	}
}

// TestBoundTightAtKZero: with k=0 and non-negative correlation the bound
// equals the true distance (the derivation collapses to d itself).
func TestBoundTightAtKZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randWalk(rng, 200)
	st := series.NewStats(x)
	l := 24
	for i := 0; i+l <= 200; i += 31 {
		for j := 0; j+l <= 200; j += 13 {
			ai, aj := x[i:i+l], x[j:j+l]
			muA, sdA := series.MeanStdTwoPass(ai)
			muB, sdB := series.MeanStdTwoPass(aj)
			if sdA == 0 || sdB == 0 {
				continue
			}
			rho := series.CorrFromDot(series.Dot(ai, aj), float64(l), muA, sdA, muB, sdB)
			if rho < 0 {
				continue
			}
			qt := qTildeFor(x, st, i, j, l)
			bound := NewAnchorTerms(st, i, l, 0).Bound(qt)
			truth := series.ZNormDist(ai, aj)
			if math.Abs(bound-truth) > 1e-6*(1+truth) {
				t.Fatalf("k=0 not tight: i=%d j=%d bound=%g truth=%g rho=%g", i, j, bound, truth, rho)
			}
		}
	}
}

// TestRankPreservation: ordering candidates by q̃² descending must equal
// ordering by LB ascending, at every extension k.
func TestRankPreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randWalk(rng, 300)
	st := series.NewStats(x)
	l, i := 16, 40
	cands := []int{0, 10, 25, 70, 99, 130, 180, 220, 260}
	for _, k := range []int{1, 5, 20, 60} {
		terms := NewAnchorTerms(st, i, l, k)
		type pair struct{ q2, lb float64 }
		ps := make([]pair, len(cands))
		for c, j := range cands {
			qt := qTildeFor(x, st, i, j, l)
			ps[c] = pair{qt * qt, terms.Bound(qt)}
		}
		byQ2 := append([]pair(nil), ps...)
		sort.Slice(byQ2, func(a, b int) bool { return byQ2[a].q2 > byQ2[b].q2 })
		for c := 1; c < len(byQ2); c++ {
			if byQ2[c-1].lb > byQ2[c].lb+1e-12 {
				t.Fatalf("k=%d: q̃² order violates LB order: %v then %v", k, byQ2[c-1], byQ2[c])
			}
		}
	}
}

// TestBoundMonotoneInQTilde: for one anchor, LB is non-increasing in |q̃|.
func TestBoundMonotoneInQTilde(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randWalk(rng, 150)
	st := series.NewStats(x)
	terms := NewAnchorTerms(st, 10, 12, 8)
	prev := math.Inf(1)
	for q := 0.0; q < 50; q += 2.5 {
		b := terms.Bound(q)
		if b > prev+1e-12 {
			t.Fatalf("bound increased with |q̃|: %g → %g at q=%g", prev, b, q)
		}
		prev = b
	}
}

func TestDegenerateAnchor(t *testing.T) {
	x := make([]float64, 50) // all zeros: every window constant
	st := series.NewStats(x)
	terms := NewAnchorTerms(st, 0, 8, 4)
	if b := terms.Bound(3); b != 0 {
		t.Errorf("degenerate anchor bound = %g, want 0 (trivially valid)", b)
	}
}

func TestDegenerateCandidate(t *testing.T) {
	// Candidate head constant: q̃ = 0, and the bound must still be sound.
	rng := rand.New(rand.NewSource(6))
	x := randWalk(rng, 100)
	for i := 30; i < 40; i++ {
		x[i] = 7 // flat candidate head at j=30, l=8
	}
	st := series.NewStats(x)
	l, k := 8, 6
	i, j := 0, 30
	muB, sdB := st.MeanStd(j, l)
	if sdB != 0 {
		t.Fatal("test setup: candidate head should be constant")
	}
	qt := QTilde(series.Dot(x[i:i+l], x[j:j+l]), st.Sum(i, l), muB, sdB)
	if qt != 0 {
		t.Errorf("degenerate candidate q̃ = %g, want 0", qt)
	}
	bound := NewAnchorTerms(st, i, l, k).Bound(qt)
	truth := series.ZNormDist(x[i:i+l+k], x[j:j+l+k])
	if bound > truth+1e-9 {
		t.Errorf("degenerate candidate bound %g exceeds truth %g", bound, truth)
	}
}

func TestEntryAdvance(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	i, j, l := 0, 3, 3
	e := Entry{J: int32(j), QT: series.Dot(x[i:i+l], x[j:j+l])}
	e.Advance(x, i, l+1)
	want := series.Dot(x[i:i+l+1], x[j:j+l+1])
	if math.Abs(e.QT-want) > 1e-12 {
		t.Errorf("advanced QT = %g, want %g", e.QT, want)
	}
}

func TestMaxLB(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := randWalk(rng, 200)
	st := series.NewStats(x)
	i, l, k := 5, 10, 15
	terms := NewAnchorTerms(st, i, l, k)
	entries := []Entry{
		{J: 50, QTilde: 30},
		{J: 80, QTilde: -2}, // smallest |q̃| → largest LB
		{J: 120, QTilde: 11},
	}
	want := terms.Bound(2)
	if got := MaxLB(terms, entries); math.Abs(got-want) > 1e-12 {
		t.Errorf("MaxLB = %g, want %g", got, want)
	}
	if got := MaxLB(terms, nil); got != 0 {
		t.Errorf("MaxLB(empty) = %g, want 0", got)
	}
}

// TestMaxLBCoversUnkept ties MaxLB to its semantic claim: given the p
// entries with largest q̃², every other candidate's true distance at the
// extended length is ≥ MaxLB.
func TestMaxLBCoversUnkept(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := randWalk(rng, 250)
	st := series.NewStats(x)
	i, l, k, p := 17, 12, 9, 5
	m := l + k
	sCur := len(x) - m + 1
	type cand struct {
		j  int
		q2 float64
	}
	var all []cand
	for j := 0; j < sCur; j++ {
		if absInt(j-i) < 3 {
			continue
		}
		qt := qTildeFor(x, st, i, j, l)
		all = append(all, cand{j, qt * qt})
	}
	sort.Slice(all, func(a, b int) bool { return all[a].q2 > all[b].q2 })
	terms := NewAnchorTerms(st, i, l, k)
	entries := make([]Entry, p)
	for c := 0; c < p; c++ {
		entries[c] = Entry{J: int32(all[c].j), QTilde: math.Sqrt(all[c].q2)}
	}
	maxLB := MaxLB(terms, entries)
	for _, c := range all[p:] {
		truth := series.ZNormDist(x[i:i+m], x[c.j:c.j+m])
		if truth < maxLB-1e-7*(1+maxLB) {
			t.Fatalf("unkept candidate j=%d has d=%g < maxLB=%g", c.j, truth, maxLB)
		}
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestHeapifyAndSiftDownKeepMinHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	checkHeap := func(es []Entry) {
		for i := range es {
			for _, c := range []int{2*i + 1, 2*i + 2} {
				if c < len(es) {
					pi, ci := es[i].QTilde*es[i].QTilde, es[c].QTilde*es[c].QTilde
					if ci < pi {
						t.Fatalf("heap violated at %d->%d: %g < %g", i, c, ci, pi)
					}
				}
			}
		}
	}
	for trial := 0; trial < 100; trial++ {
		es := make([]Entry, 1+rng.Intn(32))
		for i := range es {
			es[i] = Entry{J: int32(i), QTilde: rng.NormFloat64() * 3}
		}
		Heapify(es)
		checkHeap(es)
		// Repeated root replacement must keep the invariant at every step
		// (a one-level sift breaks this on deep heaps).
		for rep := 0; rep < 50; rep++ {
			es[0] = Entry{J: int32(rep), QTilde: rng.NormFloat64() * 3}
			SiftDown(es, 0)
			checkHeap(es)
		}
	}
}
