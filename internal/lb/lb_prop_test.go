package lb

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/seriesmining/valmod/internal/gen"
	"github.com/seriesmining/valmod/internal/series"
)

// propSeries returns the two datasets the coarse-to-fine plan leans on the
// bound for: the ECG generator (structured, high correlations) and a
// generated random walk with a planted constant segment (σ = 0 windows).
func propSeries(n int, seed int64) map[string][]float64 {
	rng := rand.New(rand.NewSource(seed))
	walk := randWalk(rng, n)
	for i := n / 3; i < n/3+n/10 && i < n; i++ {
		walk[i] = 4.25
	}
	return map[string][]float64{
		"ecg":       gen.ECG(n, seed).Values,
		"generated": walk,
	}
}

// TestRankPreservationLargeK: the property the length-skipping plan's
// retained-entry machinery relies on across long planner gaps — ordering
// candidates by q̃² descending equals ordering by LB ascending — must hold
// at extensions far beyond the base length (k up to ~10ℓ), on ECG and on
// degenerate-window data, for every candidate of the row (σ = 0 candidates
// included: their q̃ is 0, so they sort last by q̃² and must carry the
// largest bound).
func TestRankPreservationLargeK(t *testing.T) {
	for name, x := range propSeries(600, 21) {
		st := series.NewStats(x)
		l := 16
		for _, i := range []int{0, 37, 190} {
			for _, k := range []int{1, 10, 50, 200} {
				m := l + k
				sExt := len(x) - m + 1
				if i >= sExt {
					continue
				}
				terms := NewAnchorTerms(st, i, l, k)
				type pair struct {
					j      int
					q2, lb float64
				}
				var ps []pair
				for j := 0; j < sExt; j += 3 {
					qt := qTildeFor(x, st, i, j, l)
					ps = append(ps, pair{j, qt * qt, terms.Bound(qt)})
				}
				sort.Slice(ps, func(a, b int) bool { return ps[a].q2 > ps[b].q2 })
				for c := 1; c < len(ps); c++ {
					if ps[c-1].lb > ps[c].lb+1e-12 {
						t.Fatalf("%s i=%d k=%d: q̃² order violates LB order: j=%d (q2=%g lb=%g) before j=%d (q2=%g lb=%g)",
							name, i, k, ps[c-1].j, ps[c-1].q2, ps[c-1].lb, ps[c].j, ps[c].q2, ps[c].lb)
					}
				}
			}
		}
	}
}

// TestBoundSoundnessLargeKProperty: randomized soundness at large-k
// extensions over both datasets — LB(i,j,ℓ+k) never exceeds the true
// distance, σ = 0 anchors and candidates included.
func TestBoundSoundnessLargeKProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for name, x := range propSeries(500, seed) {
			st := series.NewStats(x)
			l := rng.Intn(24) + 4
			for trial := 0; trial < 12; trial++ {
				k := l * (1 + rng.Intn(10)) // large-k regime: k ∈ [ℓ, 10ℓ]
				m := l + k
				sExt := len(x) - m + 1
				if sExt < 2 {
					continue
				}
				i, j := rng.Intn(sExt), rng.Intn(sExt)
				qt := qTildeFor(x, st, i, j, l)
				bound := NewAnchorTerms(st, i, l, k).Bound(qt)
				truth := series.ZNormDist(x[i:i+m], x[j:j+m])
				if bound*bound > truth*truth+1e-6*(1+truth*truth) {
					t.Logf("%s: i=%d j=%d l=%d k=%d bound=%g truth=%g", name, i, j, l, k, bound, truth)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRankPreservationSigmaZeroWindows pins the σ = 0 conventions the rank
// order depends on: a degenerate candidate head yields q̃ = 0 (never a NaN
// or an Inf), a degenerate anchor collapses every bound to 0, and mixing
// degenerate candidates into a row cannot break the q̃²/LB duality.
func TestRankPreservationSigmaZeroWindows(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := randWalk(rng, 300)
	for i := 120; i < 170; i++ {
		x[i] = -1.5 // σ = 0 at every window inside, at any l ≤ 50
	}
	st := series.NewStats(x)
	l, i, k := 12, 20, 60
	terms := NewAnchorTerms(st, i, l, k)
	degBound := math.Inf(-1)
	var maxBound float64
	for j := 0; j+l+k <= len(x); j++ {
		_, sd := st.MeanStd(j, l)
		qt := qTildeFor(x, st, i, j, l)
		b := terms.Bound(qt)
		if math.IsNaN(qt) || math.IsNaN(b) || math.IsInf(b, 0) {
			t.Fatalf("j=%d: non-finite q̃=%g or bound=%g", j, qt, b)
		}
		if sd == 0 {
			if qt != 0 {
				t.Fatalf("degenerate candidate j=%d: q̃ = %g, want 0", j, qt)
			}
			degBound = b
		}
		if b > maxBound {
			maxBound = b
		}
	}
	if degBound == math.Inf(-1) {
		t.Fatal("test setup: no degenerate candidate window visited")
	}
	// q̃ = 0 is the row's q̃² minimum, so by rank preservation its bound is
	// the row's maximum.
	if degBound < maxBound-1e-12 {
		t.Fatalf("degenerate candidate bound %g below row max %g", degBound, maxBound)
	}
}
