package asciiplot

import (
	"math"
	"strings"
	"testing"
)

func TestSparklineWidthAndLevels(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 0)
	if got := len([]rune(s)); got != 8 {
		t.Fatalf("width %d, want 8", got)
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("extremes wrong: %q", s)
	}
}

func TestSparklineResample(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i)
	}
	s := Sparkline(vals, 40)
	if got := len([]rune(s)); got != 40 {
		t.Fatalf("width %d, want 40", got)
	}
}

func TestSparklineEmptyAndInf(t *testing.T) {
	if Sparkline(nil, 10) != "" {
		t.Error("empty input should render empty")
	}
	s := Sparkline([]float64{1, math.Inf(1), 3}, 0)
	if !strings.Contains(s, " ") {
		t.Errorf("infinite value should render as space: %q", s)
	}
}

func TestSparklineConstant(t *testing.T) {
	s := Sparkline([]float64{5, 5, 5}, 0)
	if len([]rune(s)) != 3 {
		t.Fatalf("constant sparkline: %q", s)
	}
}

func TestPlotDimensions(t *testing.T) {
	vals := []float64{0, 5, 10, 5, 0}
	out := Plot(vals, 20, 6)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 7 { // 6 rows + axis
		t.Fatalf("got %d lines", len(lines))
	}
	// Top row carries the max label, bottom data row the min label.
	if !strings.Contains(lines[0], "10") {
		t.Errorf("max label missing: %q", lines[0])
	}
	if !strings.Contains(lines[5], "0") {
		t.Errorf("min label missing: %q", lines[5])
	}
	// A peak must appear in the top row.
	if !strings.Contains(lines[0], "*") {
		t.Errorf("peak not at top: %q", lines[0])
	}
}

func TestPlotEmpty(t *testing.T) {
	if Plot(nil, 10, 5) != "" || Plot([]float64{1}, 0, 5) != "" {
		t.Error("degenerate plots should be empty")
	}
}

func TestMark(t *testing.T) {
	m := Mark(100, 10, 0, 50, 99)
	if len(m) != 10 {
		t.Fatalf("width %d", len(m))
	}
	if m[0] != '^' || m[5] != '^' || m[9] != '^' {
		t.Errorf("markers misplaced: %q", m)
	}
	if Mark(100, 10, -5, 200) != strings.Repeat(" ", 10) {
		t.Error("out-of-range indices should be ignored")
	}
}

func TestResampleBuckets(t *testing.T) {
	vals := []float64{1, 1, 3, 3}
	out := resample(vals, 2)
	if out[0] != 1 || out[1] != 3 {
		t.Errorf("bucket means = %v", out)
	}
}

func TestFiniteRange(t *testing.T) {
	lo, hi := finiteRange([]float64{math.Inf(1), 2, -1, math.NaN()})
	if lo != -1 || hi != 2 {
		t.Errorf("range = %g %g", lo, hi)
	}
	lo, hi = finiteRange([]float64{math.Inf(1)})
	if lo != 0 || hi != 0 {
		t.Errorf("all-inf range = %g %g", lo, hi)
	}
}
