// Package asciiplot renders data series and profiles as terminal text. It
// stands in for the demo system's Python/matplotlib front-end (demo
// Figures 4–5): cmd/valmod-view composes these plots into the VALMAP
// analysis screens.
package asciiplot

import (
	"fmt"
	"math"
	"strings"
)

// sparkRunes are eight vertical-resolution levels for one-line plots.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a single line of block characters, resampling
// to width columns (width ≤ 0 uses one column per value). Infinite values
// render as spaces.
func Sparkline(values []float64, width int) string {
	if len(values) == 0 {
		return ""
	}
	cols := resample(values, width)
	lo, hi := finiteRange(cols)
	var b strings.Builder
	for _, v := range cols {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			b.WriteByte(' ')
			continue
		}
		level := 0
		if hi > lo {
			level = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[level])
	}
	return b.String()
}

// Plot renders values as a width×height character panel with a left axis
// showing the min and max. Infinite values are skipped.
func Plot(values []float64, width, height int) string {
	if len(values) == 0 || width <= 0 || height <= 0 {
		return ""
	}
	cols := resample(values, width)
	lo, hi := finiteRange(cols)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for c, v := range cols {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			continue
		}
		row := height - 1
		if hi > lo {
			row = int((hi - v) / (hi - lo) * float64(height-1))
		}
		grid[row][c] = '*'
	}
	var b strings.Builder
	for r, line := range grid {
		switch r {
		case 0:
			fmt.Fprintf(&b, "%10.3g |%s\n", hi, line)
		case height - 1:
			fmt.Fprintf(&b, "%10.3g |%s\n", lo, line)
		default:
			fmt.Fprintf(&b, "%10s |%s\n", "", line)
		}
	}
	b.WriteString(strings.Repeat(" ", 11) + "+" + strings.Repeat("-", width) + "\n")
	return b.String()
}

// Mark returns a one-line ruler of the same width as a resampled plot with
// '^' markers at the given original indices (e.g. motif offsets).
func Mark(n, width int, indices ...int) string {
	if width <= 0 || n <= 0 {
		return ""
	}
	if width > n {
		width = n
	}
	line := []byte(strings.Repeat(" ", width))
	for _, idx := range indices {
		if idx < 0 || idx >= n {
			continue
		}
		c := idx * width / n
		if c >= width {
			c = width - 1
		}
		line[c] = '^'
	}
	return string(line)
}

// resample shrinks values to width columns by bucket means (of the finite
// entries); width ≤ 0 or width ≥ len keeps the original resolution.
func resample(values []float64, width int) []float64 {
	n := len(values)
	if width <= 0 || width >= n {
		out := make([]float64, n)
		copy(out, values)
		return out
	}
	out := make([]float64, width)
	for c := 0; c < width; c++ {
		lo := c * n / width
		hi := (c + 1) * n / width
		if hi <= lo {
			hi = lo + 1
		}
		sum, cnt := 0.0, 0
		for _, v := range values[lo:hi] {
			if !math.IsInf(v, 0) && !math.IsNaN(v) {
				sum += v
				cnt++
			}
		}
		if cnt == 0 {
			out[c] = math.Inf(1)
		} else {
			out[c] = sum / float64(cnt)
		}
	}
	return out
}

// finiteRange returns the min and max over finite entries; (0, 0) when none.
func finiteRange(values []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if lo > hi {
		return 0, 0
	}
	return lo, hi
}
