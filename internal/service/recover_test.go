package service

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	valmod "github.com/seriesmining/valmod"
)

// ckptSignal wraps a WAL and signals once a job has persisted minCkpts
// checkpoints, so interruption tests can kill the process deterministically
// mid-run instead of racing a sleep against the engine.
type ckptSignal struct {
	*WAL
	minCkpts int64
	n        atomic.Int64
	once     sync.Once
	ch       chan struct{}
}

func newCkptSignal(w *WAL, min int) *ckptSignal {
	return &ckptSignal{WAL: w, minCkpts: int64(min), ch: make(chan struct{})}
}

func (c *ckptSignal) SaveCheckpoint(id string, ckpt []byte) error {
	err := c.WAL.SaveCheckpoint(id, ckpt)
	if c.n.Add(1) >= c.minCkpts {
		c.once.Do(func() { close(c.ch) })
	}
	return err
}

// TestRecoverResumesInterruptedDiscover is the tentpole scenario: a
// discover job is interrupted by a drain mid-run, and the restarted
// manager re-queues it under its original ID, resumes from the last
// durable checkpoint rather than from scratch, and produces a result
// byte-identical to an uninterrupted run.
func TestRecoverResumesInterruptedDiscover(t *testing.T) {
	dir := t.TempDir()
	wal1, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Cadence 16: a checkpoint serializes the engine's hot-row cache (tens
	// of MB once warm), so the test keeps the job small and checkpoints
	// sparse to stay fast while still interrupting after two real frames.
	sig := newCkptSignal(wal1, 2)
	m1 := NewManager(Config{MaxConcurrent: 1, Store: sig, CheckpointEvery: 16})
	values := testSeries(3000)
	req := JobRequest{Values: values, LMin: 16, LMax: 160, Workers: 1}
	job, err := m1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-sig.ch:
	case <-time.After(60 * time.Second):
		t.Fatalf("no checkpoint written after 60s (job state %s)", job.Status().State)
	}
	m1.Shutdown()
	if st := waitTerminal(t, job); st.State != StateCanceled {
		t.Fatalf("drained job state = %s, want canceled (finished before the drain?)", st.State)
	}
	if err := wal1.Close(); err != nil {
		t.Fatal(err)
	}

	wal2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	m2 := NewManager(Config{MaxConcurrent: 1, Store: wal2, CheckpointEvery: 16})
	if err := m2.Recover(wal2.Recovered()); err != nil {
		t.Fatal(err)
	}
	job2, ok := m2.Job(job.ID)
	if !ok {
		t.Fatalf("interrupted job %s not re-queued after restart", job.ID)
	}
	// The first progress event of the resumed run proves it picked up from
	// the checkpoint: Done counts absolute completed lengths, so a resume
	// past the >=3 checkpointed lengths starts above 1.
	watchCtx, watchCancel := context.WithCancel(context.Background())
	defer watchCancel()
	first, okEv := <-job2.Watch(watchCtx)
	if !okEv {
		t.Fatal("resumed job produced no events")
	}
	if first.Done <= 1 {
		t.Fatalf("resumed run's first progress event Done=%d, want >1 (ran from scratch?)", first.Done)
	}
	st2 := waitTerminal(t, job2)
	if st2.State != StateDone {
		t.Fatalf("resumed job: state=%s err=%q", st2.State, st2.Error)
	}
	direct, err := valmod.Discover(values, req.LMin, req.LMax, req.options())
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(ResultOf(direct))
	got, _ := json.Marshal(st2.Result)
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed result differs from uninterrupted run\n got %s\nwant %s", got, want)
	}
	m2.Shutdown()
}

// collectEvents drains a job's full event history after it is terminal.
func collectEvents(t *testing.T, j *Job) []Event {
	t.Helper()
	var out []Event
	for e := range j.Watch(context.Background()) {
		out = append(out, e)
	}
	return out
}

// TestRecoverRebuildsInterruptedStream: a stream job interrupted by a
// drain is rebuilt on restart by replaying its logged appends, keeps
// accepting chunks, and its final result and regenerated event history
// match a never-interrupted stream fed the same chunk sequence.
func TestRecoverRebuildsInterruptedStream(t *testing.T) {
	values := testSeries(600)
	var chunks [][]float64
	for i := 0; i < len(values); i += 37 {
		end := i + 37
		if end > len(values) {
			end = len(values)
		}
		chunks = append(chunks, values[i:end])
	}
	split := len(chunks) / 2
	req := JobRequest{Kind: KindStream, LMin: 8, LMax: 16, Workers: 1}

	dir := t.TempDir()
	wal1, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1 := NewManager(Config{Store: wal1})
	job, err := m1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range chunks[:split] {
		if err := job.AppendStream(c); err != nil {
			t.Fatal(err)
		}
	}
	m1.Shutdown()
	waitTerminal(t, job)
	if err := wal1.Close(); err != nil {
		t.Fatal(err)
	}

	wal2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	m2 := NewManager(Config{Store: wal2})
	if err := m2.Recover(wal2.Recovered()); err != nil {
		t.Fatal(err)
	}
	job2, ok := m2.Job(job.ID)
	if !ok {
		t.Fatalf("interrupted stream %s not rebuilt after restart", job.ID)
	}
	if st := job2.Status(); st.State != StateRunning || st.N != 37*split {
		t.Fatalf("rebuilt stream: state=%s n=%d, want running with n=%d", st.State, st.N, 37*split)
	}
	for _, c := range chunks[split:] {
		if err := job2.AppendStream(c); err != nil {
			t.Fatal(err)
		}
	}
	job2.Cancel()
	st2 := waitTerminal(t, job2)
	if st2.State != StateDone {
		t.Fatalf("closed stream: state=%s err=%q", st2.State, st2.Error)
	}

	// Reference: the same chunk sequence into a never-interrupted stream.
	m3 := NewManager(Config{})
	ref, err := m3.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range chunks {
		if err := ref.AppendStream(c); err != nil {
			t.Fatal(err)
		}
	}
	ref.Cancel()
	stRef := waitTerminal(t, ref)

	want, _ := json.Marshal(stRef.Result)
	got, _ := json.Marshal(st2.Result)
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered stream result differs from uninterrupted stream\n got %s\nwant %s", got, want)
	}
	if evGot, evWant := collectEvents(t, job2), collectEvents(t, ref); !reflect.DeepEqual(evGot, evWant) {
		t.Fatalf("recovered stream events differ from uninterrupted stream\n got %+v\nwant %+v", evGot, evWant)
	}
}

// TestRecoverTerminalStubs: done and user-canceled jobs, and uploaded
// series, survive a restart as queryable state — the done job with its
// exact result bytes, the canceled job with its state, the series usable
// by new submissions.
func TestRecoverTerminalStubs(t *testing.T) {
	dir := t.TempDir()
	wal1, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	m1 := NewManager(Config{MaxConcurrent: 1, Store: wal1})
	small := testSeries(600)
	info, err := m1.UploadSeries(small)
	if err != nil {
		t.Fatal(err)
	}
	jobD, err := m1.Submit(JobRequest{SeriesID: info.ID, LMin: 16, LMax: 24, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	stD := waitTerminal(t, jobD)
	if stD.State != StateDone {
		t.Fatalf("seed job: state=%s err=%q", stD.State, stD.Error)
	}
	jobC, err := m1.Submit(JobRequest{Values: testSeries(6000), LMin: 16, LMax: 300, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	jobC.Cancel()
	if st := waitTerminal(t, jobC); st.State != StateCanceled {
		t.Fatalf("canceled job: state=%s", st.State)
	}
	if err := wal1.Close(); err != nil {
		t.Fatal(err)
	}

	wal2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	m2 := NewManager(Config{MaxConcurrent: 1, Store: wal2})
	if err := m2.Recover(wal2.Recovered()); err != nil {
		t.Fatal(err)
	}
	d2, ok := m2.Job(jobD.ID)
	if !ok {
		t.Fatalf("done job %s lost across restart", jobD.ID)
	}
	st := d2.Status()
	if st.State != StateDone {
		t.Fatalf("recovered done job: state=%s", st.State)
	}
	want, _ := json.Marshal(stD.Result)
	got, _ := json.Marshal(st.Result)
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered result differs\n got %s\nwant %s", got, want)
	}
	if c2, ok := m2.Job(jobC.ID); !ok || c2.Status().State != StateCanceled {
		t.Fatalf("canceled job not recovered as canceled")
	}
	if _, ok := m2.Series(info.ID); !ok {
		t.Fatalf("series %s lost across restart", info.ID)
	}
	// The recovered series is live, not just metadata: a new job resolves it.
	fresh, err := m2.Submit(JobRequest{SeriesID: info.ID, LMin: 20, LMax: 28, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, fresh); st.State != StateDone {
		t.Fatalf("job on recovered series: state=%s err=%q", st.State, st.Error)
	}
}

// TestRecoverUnresumableJobFailsDurably: an interrupted job whose series
// no longer exists is marked failed with a reason naming the series, and
// the failure is written through the store so the next restart recovers it
// as a terminal stub instead of re-deciding it.
func TestRecoverUnresumableJobFailsDurably(t *testing.T) {
	dir := t.TempDir()
	wal1, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := wal1.SaveSubmit("j_ghost", JobRequest{SeriesID: "s_ghost", LMin: 16, LMax: 32}); err != nil {
		t.Fatal(err)
	}
	if err := wal1.Close(); err != nil {
		t.Fatal(err)
	}

	wal2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewManager(Config{Store: wal2})
	if err := m2.Recover(wal2.Recovered()); err != nil {
		t.Fatal(err)
	}
	g, ok := m2.Job("j_ghost")
	if !ok {
		t.Fatal("unresumable job vanished instead of failing with a reason")
	}
	st := g.Status()
	if st.State != StateFailed || !strings.Contains(st.Error, "s_ghost") {
		t.Fatalf("unresumable job: state=%s err=%q, want failed naming the series", st.State, st.Error)
	}
	if err := wal2.Close(); err != nil {
		t.Fatal(err)
	}

	// Third boot: the failure must now be a durable terminal record.
	wal3, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer wal3.Close()
	var rj *RecoveredJob
	for i := range wal3.Recovered().Jobs {
		if wal3.Recovered().Jobs[i].ID == "j_ghost" {
			rj = &wal3.Recovered().Jobs[i]
		}
	}
	if rj == nil || !rj.Done || rj.State != StateFailed {
		t.Fatalf("failure not durable: %+v", rj)
	}
}

// TestWALTornTailTruncated: a crash mid-write leaves a torn final record;
// the WAL must truncate it on open and keep serving, losing only that
// record.
func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	wal1, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := wal1.SaveSeries("s_1", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := wal1.SaveSubmit("j_1", JobRequest{SeriesID: "s_1", LMin: 2, LMax: 3}); err != nil {
		t.Fatal(err)
	}
	if err := wal1.Close(); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"series","id":"s_torn","values":[4,5`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	wal2, err := OpenWAL(dir)
	if err != nil {
		t.Fatalf("torn tail must truncate, not fail: %v", err)
	}
	rec := wal2.Recovered()
	if len(rec.Series) != 1 || rec.Series[0].ID != "s_1" || len(rec.Jobs) != 1 {
		t.Fatalf("recovered %+v, want exactly s_1 and j_1", rec)
	}
	// The truncated log keeps accepting records at the repaired offset.
	if err := wal2.SaveSeries("s_2", []float64{7, 8}); err != nil {
		t.Fatal(err)
	}
	if err := wal2.Close(); err != nil {
		t.Fatal(err)
	}
	wal3, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer wal3.Close()
	if got := len(wal3.Recovered().Series); got != 2 {
		t.Fatalf("after repair+append recovered %d series, want 2", got)
	}
}

// TestWALInteriorCorruptionRefused: a flipped byte in the middle of the
// log is not a torn tail — silently dropping interior records could
// resurrect canceled jobs or lose results, so the WAL must refuse to open.
func TestWALInteriorCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	wal1, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"s_a", "s_b", "s_c"} {
		if err := wal1.SaveSeries(id, []float64{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	if err := wal1.Close(); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("expected >=4 log lines, got %d", len(lines))
	}
	lines[2][0] = 'X' // second record (after the header) is now not JSON
	if err := os.WriteFile(logPath, bytes.Join(lines, nil), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(dir); err == nil {
		t.Fatal("interior corruption must refuse to open, got nil error")
	}
}
