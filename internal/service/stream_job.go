package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	valmod "github.com/seriesmining/valmod"
)

// KindStream is the JobRequest.Kind selecting a streaming job: the job is
// born running with an empty series, points arrive through POST
// /v1/jobs/{id}/append, and the SSE channel carries motif/discord change
// events instead of per-length progress. DELETE closes the stream: the
// final snapshot becomes the job's result (state "done"), or "canceled"
// when the stream never accumulated lmin points.
const KindStream = "stream"

// Errors of the append path. The HTTP layer maps ErrNotStream to 400 and
// ErrStreamClosed to 409.
var (
	ErrNotStream    = errors.New("service: not a stream job")
	ErrStreamClosed = errors.New("service: stream job already closed")
)

// streamState is the mutable half of a stream job: the live engine plus
// the last published best pair and top discord (in global stream offsets)
// used to detect changes. mu serializes appends and the final close; it is
// never held together with Job.mu (publish/finish take Job.mu after the
// engine work is done), so the lock order is ss.mu → Job.mu.
type streamState struct {
	mu     sync.Mutex
	s      *valmod.Stream
	closed bool
	// total mirrors s.Total() for lock-free Status reads.
	total atomic.Int64

	pair       valmod.MotifPair
	hasPair    bool
	discord    valmod.Discord
	hasDiscord bool
}

// submitStream admits a streaming job: no cache, no coalescing, no
// semaphore wait — the job holds no engine slot between appends — but it
// does occupy a live-queue slot until closed, so MaxQueue bounds open
// streams and batch jobs together.
func (m *Manager) submitStream(req JobRequest, opts valmod.Options) (*Job, error) {
	if req.Values != nil || req.SeriesID != "" {
		return nil, fmt.Errorf("%w: stream jobs take points via POST /v1/jobs/{id}/append, not values/series_id", valmod.ErrBadInput)
	}
	// Clamp client-supplied parallelism to the machine, as run does for
	// batch jobs. Sound for the same reason: worker count never changes
	// the output (the stream engine is bit-identical at every setting).
	if limit := runtime.GOMAXPROCS(0); opts.Workers <= 0 || opts.Workers > limit {
		opts.Workers = limit
	}
	st, err := valmod.NewStream(req.LMin, req.LMax, opts)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.liveJobs >= m.cfg.MaxQueue {
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	var job *Job
	job = newJob(newID("j_"), func() { m.closeStream(job) })
	job.kind = KindStream
	job.stream = &streamState{s: st}
	m.liveJobs++
	m.registerJobLocked(job)
	m.mu.Unlock()
	// Born running: a stream job is "executing" from the moment it can
	// accept appends.
	job.setState(StateRunning)
	return job, nil
}

// closeStream is the stream job's cancel function (Job.Cancel and manager
// Shutdown both land here): it seals the engine against further appends,
// turns the final snapshot into the job's result, and releases the
// live-queue slot. Idempotent via ss.closed.
func (m *Manager) closeStream(job *Job) {
	ss := job.stream
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		return
	}
	ss.closed = true
	var out *Result
	if ss.s.Ready() {
		if res, err := ss.s.Snapshot(); err == nil {
			out = ResultOf(res)
		}
	}
	ss.mu.Unlock()
	if out != nil {
		job.finish(out, nil)
	} else {
		job.finish(nil, context.Canceled)
	}
	m.mu.Lock()
	m.liveJobs--
	m.mu.Unlock()
}

// AppendStream feeds the next chunk of points to a stream job and
// publishes change events: one Kind "best_pair" event whenever the
// globally best motif pair moves to a new location, one Kind "top_discord"
// event whenever the top discord does. Event offsets are global stream
// offsets (window offset + Stream.Start), so they stay stable while a
// sliding window evicts old points. Non-finite values reject the whole
// chunk (wrapping valmod.ErrBadInput) and leave the stream untouched.
// Safe for concurrent callers: appends serialize on the job's stream lock.
func (j *Job) AppendStream(values []float64) error {
	ss := j.stream
	if ss == nil {
		return ErrNotStream
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return ErrStreamClosed
	}
	if err := ss.s.Append(values); err != nil {
		return err
	}
	ss.total.Store(int64(ss.s.Total()))
	if !ss.s.Ready() {
		return nil
	}
	snap, err := ss.s.Snapshot()
	if err != nil {
		return nil // unreachable once Ready; never fail a successful append
	}
	n, start := ss.s.Total(), ss.s.Start()
	if best, ok := snap.BestOverall(); ok {
		best.A += start
		best.B += start
		if !ss.hasPair || !samePlace(ss.pair, best) {
			ss.pair, ss.hasPair = best, true
			p := best
			j.publish(Event{Kind: "best_pair", N: n, Pair: &p})
		}
	}
	if len(snap.Discords) > 0 {
		top := snap.Discords[0]
		top.Offset += start
		if !ss.hasDiscord || ss.discord.Offset != top.Offset || ss.discord.Length != top.Length {
			ss.discord, ss.hasDiscord = top, true
			d := top
			j.publish(Event{Kind: "top_discord", N: n, Discord: &d})
		}
	}
	return nil
}

// samePlace reports whether two pairs name the same subsequences. Change
// detection is by location, not distance: under a sliding window the same
// physical pair can be re-derived through the eviction repair path with a
// last-bit distance difference, which is not a change worth an event.
func samePlace(a, b valmod.MotifPair) bool {
	return a.A == b.A && a.B == b.B && a.Length == b.Length
}
