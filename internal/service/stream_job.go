package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	valmod "github.com/seriesmining/valmod"
)

// KindStream is the JobRequest.Kind selecting a streaming job: the job is
// born running with an empty series, points arrive through POST
// /v1/jobs/{id}/append, and the SSE channel carries motif/discord change
// events instead of per-length progress. DELETE closes the stream: the
// final snapshot becomes the job's result (state "done"), or "canceled"
// when the stream never accumulated lmin points.
const KindStream = "stream"

// Errors of the append path. The HTTP layer maps ErrNotStream to 400 and
// ErrStreamClosed to 409.
var (
	ErrNotStream    = errors.New("service: not a stream job")
	ErrStreamClosed = errors.New("service: stream job already closed")
)

// streamState is the mutable half of a stream job: the live engine plus
// the last published best pair and top discord (in global stream offsets)
// used to detect changes. mu serializes appends and the final close; it is
// never held together with Job.mu (publish/finish take Job.mu after the
// engine work is done), so the lock order is ss.mu → Job.mu.
type streamState struct {
	mu     sync.Mutex
	s      *valmod.Stream
	closed bool
	// total mirrors s.Total() for lock-free Status reads.
	total atomic.Int64

	// persist tees each accepted chunk through the store — nil without
	// one, and during recovery replay (those chunks are already logged).
	// fail seals the stream and fails the job; AppendStream calls it when
	// a chunk's durability is lost or the engine panics mid-append, since
	// continuing either way would let the live stream diverge from what a
	// restart could rebuild. Both are called with mu held.
	persist func(values []float64) error
	fail    func(err error)

	pair       valmod.MotifPair
	hasPair    bool
	discord    valmod.Discord
	hasDiscord bool
}

// submitStream admits a streaming job: no cache, no coalescing, no
// semaphore wait — the job holds no engine slot between appends — but it
// does occupy a live-queue slot until closed, so MaxQueue bounds open
// streams and batch jobs together.
func (m *Manager) submitStream(req JobRequest, opts valmod.Options) (*Job, error) {
	if req.Values != nil || req.SeriesID != "" {
		return nil, fmt.Errorf("%w: stream jobs take points via POST /v1/jobs/{id}/append, not values/series_id", valmod.ErrBadInput)
	}
	// Clamp client-supplied parallelism to the machine, as run does for
	// batch jobs. Sound for the same reason: worker count never changes
	// the output (the stream engine is bit-identical at every setting).
	if limit := runtime.GOMAXPROCS(0); opts.Workers <= 0 || opts.Workers > limit {
		opts.Workers = limit
	}
	st, err := valmod.NewStream(req.LMin, req.LMax, opts)
	if err != nil {
		return nil, err
	}
	id, err := newID("j_")
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.liveJobs >= m.cfg.MaxQueue {
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	var job *Job
	job = newJob(id, func() { m.closeStream(job) })
	job.kind = KindStream
	ss := &streamState{s: st}
	job.stream = ss
	if m.store != nil {
		ss.persist = func(v []float64) error { return m.store.SaveAppend(job.ID, v) }
	}
	ss.fail = func(err error) { m.failStream(job, err) }
	m.liveJobs++
	m.registerJobLocked(job)
	m.mu.Unlock()
	if err := m.persistSubmit(id, req); err != nil {
		ss.mu.Lock()
		ss.closed = true
		ss.mu.Unlock()
		job.finish(nil, err)
		m.mu.Lock()
		m.liveJobs--
		m.mu.Unlock()
		return nil, err
	}
	// Born running: a stream job is "executing" from the moment it can
	// accept appends.
	job.setState(StateRunning)
	return job, nil
}

// failStream seals a stream job with err: the engine panicked mid-append
// or the log stopped accepting chunks, so continuing would let the live
// stream diverge from what a restart could rebuild. Called with the
// stream lock held (as ss.fail).
func (m *Manager) failStream(job *Job, err error) {
	job.stream.closed = true
	job.finish(nil, err)
	m.mu.Lock()
	m.liveJobs--
	m.mu.Unlock()
	m.persistOutcome(job)
}

// closeStream is the stream job's cancel function (Job.Cancel and manager
// Shutdown both land here): it seals the engine against further appends,
// turns the final snapshot into the job's result, and releases the
// live-queue slot. Idempotent via ss.closed.
func (m *Manager) closeStream(job *Job) {
	ss := job.stream
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		return
	}
	ss.closed = true
	var out *Result
	if ss.s.Ready() {
		if res, err := ss.s.Snapshot(); err == nil {
			out = ResultOf(res)
		}
	}
	ss.mu.Unlock()
	if out != nil {
		job.finish(out, nil)
	} else {
		job.finish(nil, context.Canceled)
	}
	m.mu.Lock()
	m.liveJobs--
	m.mu.Unlock()
	// A drain close is an interruption, not an outcome: without a
	// terminal record the next process rebuilds the stream live from its
	// logged appends.
	if !m.draining.Load() {
		m.persistOutcome(job)
	}
}

// AppendStream feeds the next chunk of points to a stream job and
// publishes change events: one Kind "best_pair" event whenever the
// globally best motif pair moves to a new location, one Kind "top_discord"
// event whenever the top discord does. Event offsets are global stream
// offsets (window offset + Stream.Start), so they stay stable while a
// sliding window evicts old points. Non-finite values reject the whole
// chunk (wrapping valmod.ErrBadInput) and leave the stream untouched.
// Safe for concurrent callers: appends serialize on the job's stream lock.
func (j *Job) AppendStream(values []float64) (err error) {
	ss := j.stream
	if ss == nil {
		return ErrNotStream
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return ErrStreamClosed
	}
	// A panic inside the append path fails this job alone — the engine
	// state is suspect, so the stream seals rather than serving further
	// appends from it.
	defer func() {
		if r := recover(); r != nil {
			perr := fmt.Errorf("service: append panicked: %v\n%s", r, debug.Stack())
			if ss.fail != nil {
				ss.fail(perr)
			} else {
				ss.closed = true
				j.finish(nil, perr)
			}
			err = perr
		}
	}()
	if err := ss.s.Append(values); err != nil {
		return err
	}
	// Chunk accepted → log it. A chunk the log didn't take must seal the
	// stream: acknowledging it would let the live state diverge from what
	// a restart can rebuild. (A crash between accept and log loses only
	// the unacknowledged chunk — the client retries it.)
	if ss.persist != nil {
		if perr := ss.persist(values); perr != nil {
			perr = fmt.Errorf("service: stream append not durable: %w", perr)
			if ss.fail != nil {
				ss.fail(perr)
			}
			return perr
		}
	}
	ss.total.Store(int64(ss.s.Total()))
	if !ss.s.Ready() {
		return nil
	}
	snap, err := ss.s.Snapshot()
	if err != nil {
		return nil // unreachable once Ready; never fail a successful append
	}
	n, start := ss.s.Total(), ss.s.Start()
	if best, ok := snap.BestOverall(); ok {
		best.A += start
		best.B += start
		if !ss.hasPair || !samePlace(ss.pair, best) {
			ss.pair, ss.hasPair = best, true
			p := best
			j.publish(Event{Kind: "best_pair", N: n, Pair: &p})
		}
	}
	if len(snap.Discords) > 0 {
		top := snap.Discords[0]
		top.Offset += start
		if !ss.hasDiscord || ss.discord.Offset != top.Offset || ss.discord.Length != top.Length {
			ss.discord, ss.hasDiscord = top, true
			d := top
			j.publish(Event{Kind: "top_discord", N: n, Discord: &d})
		}
	}
	return nil
}

// samePlace reports whether two pairs name the same subsequences. Change
// detection is by location, not distance: under a sliding window the same
// physical pair can be re-derived through the eviction repair path with a
// last-bit distance difference, which is not a change worth an event.
func samePlace(a, b valmod.MotifPair) bool {
	return a.A == b.A && a.B == b.B && a.Length == b.Length
}
