package service

import (
	"bufio"
	"flag"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/seriesmining/valmod/internal/gen"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

func doDelete(t *testing.T, client *http.Client, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func appendChunk(t *testing.T, client *http.Client, base, id string, values []float64) Status {
	t.Helper()
	resp := postJSON(t, client, base+"/v1/jobs/"+id+"/append", map[string]any{"values": values})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append: status %d", resp.StatusCode)
	}
	return decode[Status](t, resp)
}

// TestStreamJobSSEGolden drives a stream job end to end over HTTP — fixed
// chunking of the deterministic ECG generator through a sliding window —
// and byte-compares the SSE change-event sequence (replayed via Job.Watch
// after the stream closed) against a committed golden file. The sequence
// is reproducible everywhere because the stream engine is bit-identical
// at every worker count and the chunking is fixed; regenerate with
// -update-golden after an intentional engine change.
func TestStreamJobSSEGolden(t *testing.T) {
	m := NewManager(Config{})
	defer m.Shutdown()
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()
	client := ts.Client()

	req := JobRequest{Kind: KindStream, LMin: 8, LMax: 32, TopK: 1, Discords: 1, Workers: 2, WindowCap: 320}
	st := decode[Status](t, postJSON(t, client, ts.URL+"/v1/jobs", req))
	if st.State != StateRunning || st.Kind != KindStream {
		t.Fatalf("submitted stream job: state=%s kind=%q, want running/stream", st.State, st.Kind)
	}

	x := gen.ECG(600, 7).Values
	const chunk = 64
	var last Status
	for pos := 0; pos < len(x); pos += chunk {
		end := pos + chunk
		if end > len(x) {
			end = len(x)
		}
		last = appendChunk(t, client, ts.URL, st.ID, x[pos:end])
	}
	if last.N != len(x) || last.State != StateRunning {
		t.Fatalf("after feed: N=%d state=%s, want %d/running", last.N, last.State, len(x))
	}

	// Close the stream: DELETE finalizes it, the last snapshot is the result.
	final := decode[Status](t, doDelete(t, client, ts.URL+"/v1/jobs/"+st.ID))
	if final.State != StateDone || final.Result == nil {
		t.Fatalf("closed stream: state=%s result=%v, want done with result", final.State, final.Result != nil)
	}
	if final.Result.N != 320 {
		t.Fatalf("final result over %d points, want the 320-point trailing window", final.Result.N)
	}

	// Replay the full SSE stream and split it at the terminal event: the
	// change-event prefix is the golden payload.
	resp, err := client.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var changes strings.Builder
	var terminal string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") && !strings.HasPrefix(line, "event: change") {
			terminal = strings.TrimPrefix(line, "event: ")
			break
		}
		changes.WriteString(line)
		changes.WriteString("\n")
	}
	if terminal != string(StateDone) {
		t.Fatalf("terminal SSE event %q, want %q", terminal, StateDone)
	}
	got := changes.String()
	if !strings.Contains(got, `"kind":"best_pair"`) || !strings.Contains(got, `"kind":"top_discord"`) {
		t.Fatalf("change stream misses a kind:\n%s", got)
	}

	goldenPath := filepath.Join("testdata", "stream_events.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("SSE change events diverge from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

// TestStreamJobErrors pins the append endpoint's error contract and the
// queue accounting of stream jobs.
func TestStreamJobErrors(t *testing.T) {
	m := NewManager(Config{MaxQueue: 1})
	defer m.Shutdown()
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()
	client := ts.Client()

	expectStatus := func(resp *http.Response, want int, tag string) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s: status %d, want %d", tag, resp.StatusCode, want)
		}
	}

	// Submit-time validation: data at submit, bad range, unknown kind.
	expectStatus(postJSON(t, client, ts.URL+"/v1/jobs",
		JobRequest{Kind: KindStream, LMin: 8, LMax: 16, Values: []float64{1, 2}}),
		http.StatusBadRequest, "stream with values")
	expectStatus(postJSON(t, client, ts.URL+"/v1/jobs",
		JobRequest{Kind: KindStream, LMin: 2, LMax: 16}),
		http.StatusBadRequest, "lmin too small")
	expectStatus(postJSON(t, client, ts.URL+"/v1/jobs",
		JobRequest{Kind: KindStream, LMin: 8, LMax: 16, WindowCap: 15}),
		http.StatusBadRequest, "window cap below lmax")
	expectStatus(postJSON(t, client, ts.URL+"/v1/jobs",
		JobRequest{Kind: "batch", LMin: 8, LMax: 16, Values: make([]float64, 64)}),
		http.StatusBadRequest, "unknown kind")

	st := decode[Status](t, postJSON(t, client, ts.URL+"/v1/jobs",
		JobRequest{Kind: KindStream, LMin: 8, LMax: 16, TopK: 1}))

	// An open stream occupies the (only) queue slot.
	expectStatus(postJSON(t, client, ts.URL+"/v1/jobs",
		JobRequest{Kind: KindStream, LMin: 8, LMax: 16}),
		http.StatusTooManyRequests, "second stream over MaxQueue")

	// Malformed JSON is a 400 (JSON cannot even spell NaN; the engine's
	// own non-finite rejection is pinned below through the Go API), and a
	// rejected append leaves the stream untouched.
	after := appendChunk(t, client, ts.URL, st.ID, []float64{1, 2, 3})
	resp := postJSON(t, client, ts.URL+"/v1/jobs/"+st.ID+"/append",
		map[string]any{"values": []any{1.0, "NaN"}})
	expectStatus(resp, http.StatusBadRequest, "non-numeric value")
	job, ok := m.Job(st.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	if err := job.AppendStream([]float64{1, math.NaN()}); err == nil {
		t.Fatal("NaN append: want error")
	}
	r, err := client.Get(ts.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := decode[Status](t, r); got.N != after.N {
		t.Fatalf("rejected append changed N: %d → %d", after.N, got.N)
	}

	// Appending to a batch job is a 400; to a closed stream a 409.
	expectStatus(doDelete(t, client, ts.URL+"/v1/jobs/"+st.ID), http.StatusOK, "close")
	expectStatus(postJSON(t, client, ts.URL+"/v1/jobs/"+st.ID+"/append",
		map[string]any{"values": []float64{1}}), http.StatusConflict, "append after close")

	// The slot freed by the close admits a batch job; appending to it fails.
	values := make([]float64, 128)
	for i := range values {
		values[i] = math.Sin(float64(i) / 3)
	}
	bj := decode[Status](t, postJSON(t, client, ts.URL+"/v1/jobs",
		JobRequest{Values: values, LMin: 8, LMax: 16, Workers: 1}))
	expectStatus(postJSON(t, client, ts.URL+"/v1/jobs/"+bj.ID+"/append",
		map[string]any{"values": []float64{1}}), http.StatusBadRequest, "append to batch job")
	waitHTTPTerminal(t, client, ts.URL, bj.ID)
}

// TestStreamJobConcurrentAppends hammers one stream job from several
// goroutines; the per-job lock must serialize them (this test is the
// -race witness) and every point must land exactly once.
func TestStreamJobConcurrentAppends(t *testing.T) {
	m := NewManager(Config{})
	defer m.Shutdown()
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()
	client := ts.Client()

	st := decode[Status](t, postJSON(t, client, ts.URL+"/v1/jobs",
		JobRequest{Kind: KindStream, LMin: 8, LMax: 24, TopK: 1, Discords: 1}))
	x := gen.SineMix(512).Values
	const parts = 8
	var wg sync.WaitGroup
	for p := 0; p < parts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			lo, hi := p*len(x)/parts, (p+1)*len(x)/parts
			resp := postJSON(t, client, ts.URL+"/v1/jobs/"+st.ID+"/append",
				map[string]any{"values": x[lo:hi]})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("concurrent append: status %d", resp.StatusCode)
			}
			resp.Body.Close()
		}(p)
	}
	wg.Wait()
	final := decode[Status](t, doDelete(t, client, ts.URL+"/v1/jobs/"+st.ID))
	if final.State != StateDone || final.Result == nil || final.N != len(x) {
		t.Fatalf("state=%s result=%v N=%d, want done with result over %d points",
			final.State, final.Result != nil, final.N, len(x))
	}
	if final.Result.Best == nil {
		t.Fatal("final result has no best pair")
	}
}

// TestStreamCloseWithoutData: a stream closed before lmin points has no
// result to give and lands in "canceled".
func TestStreamCloseWithoutData(t *testing.T) {
	m := NewManager(Config{})
	defer m.Shutdown()
	job, err := m.Submit(JobRequest{Kind: KindStream, LMin: 8, LMax: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.AppendStream([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	job.Cancel()
	if st := job.Status(); st.State != StateCanceled || st.Result != nil {
		t.Fatalf("state=%s result=%v, want canceled without result", st.State, st.Result != nil)
	}
	// Cancel is idempotent for stream jobs too.
	job.Cancel()
	if err := job.AppendStream([]float64{1}); err == nil {
		t.Fatal("append after close: want error")
	}
}
