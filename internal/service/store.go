package service

// The store interfaces split the manager's record-keeping into its two
// durable halves. The manager's in-memory maps remain the hot lookup
// index; a Store, when configured, is the system of record behind them:
// every mutation that must survive a crash — an uploaded series, an
// accepted submission, a stream append, an engine checkpoint, a terminal
// outcome — is teed through the store before (submissions) or as
// (outcomes, checkpoints) it takes effect. A nil Config.Store disables
// durability and restores the pre-WAL in-memory-only behavior exactly.
//
// The disk-backed implementation is WAL (see wal.go); docs/operations.md
// specifies the on-disk layout and the recovery guarantees.

// SeriesStore persists uploaded series so jobs referencing them by ID
// survive a restart.
type SeriesStore interface {
	// SaveSeries records an uploaded series under its handle. It is called
	// after validation, so implementations may assume the values are
	// non-empty and finite (in particular, JSON-encodable).
	SaveSeries(id string, values []float64) error
}

// JobStore persists the job lifecycle: the submission, the engine's
// progress checkpoints, stream appends, and the terminal outcome. A job
// whose submission was saved but whose outcome was not is, by definition,
// interrupted — recovery re-queues it.
type JobStore interface {
	// SaveSubmit records an accepted submission under its job ID. Until
	// SaveOutcome is called for the same ID the job counts as live and is
	// re-queued on recovery.
	SaveSubmit(id string, req JobRequest) error
	// SaveAppend records one accepted chunk of a stream job, in order.
	// Recovery rebuilds the stream by replaying the chunks; the engine's
	// chunking-invariance contract makes the replay exact.
	SaveAppend(id string, values []float64) error
	// SaveCheckpoint durably replaces the job's resume point with ckpt.
	// The blob is only valid during the call (the engine reuses its
	// backing storage), so implementations must copy or write it out
	// before returning. An error disables further checkpoints for the run
	// without failing it; the job then recovers from the previous blob or
	// from scratch.
	SaveCheckpoint(id string, ckpt []byte) error
	// SaveOutcome records the job's terminal state. res is non-nil only
	// for state done. After this record the job is never re-queued.
	SaveOutcome(id string, state State, errMsg string, res *Result) error
}

// Store is the full persistence surface a Manager tees through
// (Config.Store). Implementations must be safe for concurrent use: jobs
// checkpoint and finish on their own goroutines.
type Store interface {
	SeriesStore
	JobStore
}
