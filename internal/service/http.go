package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	valmod "github.com/seriesmining/valmod"
)

// NewServer wraps m in the HTTP API documented in docs/api.md:
//
//	POST   /v1/series          upload a series for reuse across jobs
//	GET    /v1/series/{id}     uploaded-series metadata
//	POST   /v1/jobs            submit a discovery (inline values or series_id)
//	                           or open a stream job (kind "stream")
//	GET    /v1/jobs/{id}       job status; result JSON once done
//	GET    /v1/jobs/{id}/events  SSE stream: per-length progress for batch
//	                           jobs, motif/discord change events for streams
//	POST   /v1/jobs/{id}/append  feed the next chunk of points to a stream job
//	DELETE /v1/jobs/{id}       cancel the job (closes a stream job: the
//	                           final snapshot becomes its result)
//	GET    /v1/stats           engine-run / cache / per-plan counters
//	GET    /healthz            liveness
func NewServer(m *Manager) http.Handler {
	s := &server{m: m}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/series", s.uploadSeries)
	mux.HandleFunc("GET /v1/series/{id}", s.getSeries)
	mux.HandleFunc("POST /v1/jobs", s.submitJob)
	mux.HandleFunc("GET /v1/jobs/{id}", s.getJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.jobEvents)
	mux.HandleFunc("POST /v1/jobs/{id}/append", s.appendJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancelJob)
	mux.HandleFunc("GET /v1/stats", s.getStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

type server struct {
	m *Manager
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

// limitBody caps the request body so an oversized upload is rejected
// mid-read instead of being materialized; Decode then fails with a
// *http.MaxBytesError.
func (s *server) limitBody(w http.ResponseWriter, r *http.Request) {
	if s.m.cfg.MaxBodyBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.m.cfg.MaxBodyBytes)
	}
}

func decodeErrorStatus(err error) int {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func (s *server) uploadSeries(w http.ResponseWriter, r *http.Request) {
	s.limitBody(w, r)
	var body struct {
		Values []float64 `json:"values"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, decodeErrorStatus(err), fmt.Errorf("bad JSON: %w", err))
		return
	}
	info, err := s.m.UploadSeries(body.Values)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *server) getSeries(w http.ResponseWriter, r *http.Request) {
	info, ok := s.m.Series(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown series"))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *server) submitJob(w http.ResponseWriter, r *http.Request) {
	s.limitBody(w, r)
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, decodeErrorStatus(err), fmt.Errorf("bad JSON: %w", err))
		return
	}
	job, err := s.m.Submit(req)
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, valmod.ErrBadInput):
			code = http.StatusBadRequest
		case errors.Is(err, ErrQueueFull):
			code = http.StatusTooManyRequests
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

func (s *server) getStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.m.Stats())
}

func (s *server) getJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.m.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

// appendJob feeds the next chunk of points to a stream job. 200 returns
// the updated status (state stays "running"); 400 rejects non-finite
// chunks and non-stream targets with the stream untouched; 409 marks a
// stream already closed by DELETE.
func (s *server) appendJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.m.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	s.limitBody(w, r)
	var body struct {
		Values []float64 `json:"values"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, decodeErrorStatus(err), fmt.Errorf("bad JSON: %w", err))
		return
	}
	if err := job.AppendStream(body.Values); err != nil {
		// Bad chunks and non-stream targets are the client's fault (400);
		// a closed stream is a conflict (409); anything else — a lost
		// append record, a sealed stream — is the server's (500).
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, valmod.ErrBadInput), errors.Is(err, ErrNotStream):
			code = http.StatusBadRequest
		case errors.Is(err, ErrStreamClosed):
			code = http.StatusConflict
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *server) cancelJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.m.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusOK, job.Status())
}

// jobEvents streams a job's events as Server-Sent Events, replayed from
// the start for late subscribers: batch jobs emit one "progress" event per
// completed length, stream jobs one "change" event per best-pair or
// top-discord change. Either way a single terminal event named after the
// final state ("done"/"failed"/"canceled") carrying the full status —
// result included — closes the stream.
func (s *server) jobEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.m.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	for e := range job.Watch(r.Context()) {
		name := "progress"
		if e.Kind != "" {
			name = "change"
		}
		if err := writeSSE(w, name, e); err != nil {
			return
		}
		flusher.Flush()
	}
	if r.Context().Err() != nil {
		return // client went away; no terminal event
	}
	st := job.Status()
	if writeSSE(w, string(st.State), st) == nil {
		flusher.Flush()
	}
}

func writeSSE(w http.ResponseWriter, event string, data any) error {
	payload, err := json.Marshal(data)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, payload)
	return err
}
