package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sync"

	valmod "github.com/seriesmining/valmod"
	"github.com/seriesmining/valmod/internal/core"
)

// cacheKey identifies one (series, range, options) result. Two submissions
// collide exactly when the engine would produce byte-identical results.
type cacheKey [sha256.Size]byte

// hashSeries fingerprints a series by the IEEE-754 bits of its values,
// encoding in 4 KiB chunks so the digest costs one hash.Write per block
// rather than one per sample (this runs on the synchronous submit path).
func hashSeries(values []float64) [sha256.Size]byte {
	h := sha256.New()
	var buf [4096]byte
	for len(values) > 0 {
		chunk := values
		if len(chunk) > len(buf)/8 {
			chunk = chunk[:len(buf)/8]
		}
		for i, v := range chunk {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
		h.Write(buf[:len(chunk)*8])
		values = values[len(chunk):]
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// resultKey derives the cache key for one submission. Options are
// normalized to their effective defaults first, so an explicit TopK of 10
// and the zero value share an entry. Every field that can change the
// result bytes participates: TopK and ExclusionFactor change the pairs; P,
// RecomputeFraction, DisablePruning and DisableIncremental change the
// per-length resolution and plan stats the result reports (and the two
// whole-profile passes take different arithmetic paths); Discords changes
// the query kind (it adds the discord payload and switches the engine to
// the full-profile plan, which also changes the stats); LengthSkip,
// LengthStride, RefineRadius, Strict and Carry32 select the coarse-to-fine
// plan, which changes the plan stats always and the result payload in the
// non-strict modes. Workers is excluded — the fixed-grid contract makes
// output bit-identical at every worker count.
func resultKey(seriesHash [sha256.Size]byte, lmin, lmax int, o valmod.Options) cacheKey {
	o = normalizeOptions(o)
	h := sha256.New()
	h.Write(seriesHash[:])
	var buf [8]byte
	for _, v := range []uint64{
		uint64(lmin), uint64(lmax),
		uint64(o.TopK), uint64(o.P), uint64(o.ExclusionFactor),
		math.Float64bits(o.RecomputeFraction),
		uint64(o.Discords),
		uint64(o.LengthStride), uint64(o.RefineRadius),
	} {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	flags := []byte{0, 0, 0, 0, 0}
	if o.DisablePruning {
		flags[0] = 1
	}
	if o.DisableIncremental {
		flags[1] = 1
	}
	if o.LengthSkip {
		flags[2] = 1
	}
	if o.Strict {
		flags[3] = 1
	}
	if o.Carry32 {
		flags[4] = 1
	}
	h.Write(flags)
	var out cacheKey
	h.Sum(out[:0])
	return out
}

// normalizeOptions substitutes the engine's effective defaults via
// core.Config.Fill — the same code the engine runs on entry — so keying
// happens on exactly the configuration that executes.
func normalizeOptions(o valmod.Options) valmod.Options {
	cfg := core.Config{
		TopK:              o.TopK,
		P:                 o.P,
		ExclusionFactor:   o.ExclusionFactor,
		RecomputeFraction: o.RecomputeFraction,
	}
	cfg.Fill()
	o.TopK = cfg.TopK
	o.P = cfg.P
	o.ExclusionFactor = cfg.ExclusionFactor
	o.RecomputeFraction = cfg.RecomputeFraction
	return o
}

// resultCache is a mutex-guarded LRU over completed job results. Values
// are immutable once inserted; readers share them.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[cacheKey]*list.Element
}

type cacheEntry struct {
	key cacheKey
	res *Result
}

// newResultCache returns a cache holding up to capacity results; a
// capacity below 1 disables caching (every Get misses).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[cacheKey]*list.Element),
	}
}

// Get returns the cached result for key, promoting it to most recent.
func (c *resultCache) Get(key cacheKey) (*Result, bool) {
	if c.cap < 1 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put stores res under key, evicting the least recently used entry when
// the cache is full.
func (c *resultCache) Put(key cacheKey, res *Result) {
	if c.cap < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		el := c.order.Back()
		c.order.Remove(el)
		delete(c.entries, el.Value.(*cacheEntry).key)
	}
}

// Len reports the number of cached results.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
