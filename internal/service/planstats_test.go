package service

// Tests for the per-plan instrumentation the serving layer exposes: plan
// stats in job results and their aggregation in Manager.Stats (the
// /v1/stats payload).

import (
	"testing"
)

func TestJobResultAndStatsCarryPlanStats(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 1})
	values := testSeries(600)

	// A pairs-only query: one seeding row scan, the rest pruned.
	j, err := m.Submit(JobRequest{Values: values, LMin: 16, LMax: 32, TopK: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j)
	if st.State != StateDone {
		t.Fatalf("job state %s: %s", st.State, st.Error)
	}
	lengths := 32 - 16 + 1
	plan := st.Result.Plan
	if plan.RecomputeLengths != 1 || plan.PrunedLengths != lengths-1 || plan.IncrementalLengths != 0 {
		t.Fatalf("pairs-only plan stats %+v", plan)
	}

	// A discords query: every length incremental, one FFT head seed.
	j, err = m.Submit(JobRequest{Values: values, LMin: 16, LMax: 32, TopK: 2, Discords: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	st = waitTerminal(t, j)
	if st.State != StateDone {
		t.Fatalf("job state %s: %s", st.State, st.Error)
	}
	plan = st.Result.Plan
	if plan.IncrementalLengths != lengths || plan.HeadSeeds != 1 || plan.HeadExtensions != lengths-1 {
		t.Fatalf("discords plan stats %+v", plan)
	}

	// The ablation knob forces from-scratch passes and caches separately.
	j, err = m.Submit(JobRequest{Values: values, LMin: 16, LMax: 32, TopK: 2, Discords: 2, Workers: 1, DisableIncremental: true})
	if err != nil {
		t.Fatal(err)
	}
	st = waitTerminal(t, j)
	if st.State != StateDone {
		t.Fatalf("job state %s: %s", st.State, st.Error)
	}
	if st.CacheHit {
		t.Fatal("DisableIncremental submission answered from the incremental plan's cache entry")
	}
	plan = st.Result.Plan
	if plan.IncrementalLengths != 0 || plan.RecomputeLengths != lengths {
		t.Fatalf("ablated plan stats %+v", plan)
	}

	// /v1/stats aggregates across the three runs.
	totals := m.Stats().Plan
	if totals.PrunedLengths != int64(lengths-1) ||
		totals.IncrementalLengths != int64(lengths) ||
		totals.RecomputeLengths != int64(1+lengths) ||
		totals.HeadSeeds != 1 || totals.HeadExtensions != int64(lengths-1) {
		t.Fatalf("aggregated plan totals %+v", totals)
	}
}

// TestCoarseToFinePlanStatsAndProgress covers the request plumbing of the
// length-pruning flags: the job result reports the new plan counters, the
// progress stream still reaches Done == Total even though most lengths
// were never given a whole-profile pass, and /v1/stats aggregates the new
// totals.
func TestCoarseToFinePlanStatsAndProgress(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 1})
	values := testSeries(900)
	lengths := 35 - 16 + 1

	// Strict LB length skipping.
	j, err := m.Submit(JobRequest{Values: values, LMin: 16, LMax: 35, TopK: 2, Discords: 2, Workers: 1, LengthSkip: true})
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j)
	if st.State != StateDone {
		t.Fatalf("job state %s: %s", st.State, st.Error)
	}
	if st.Done != st.Total || st.Total != lengths {
		t.Fatalf("progress stalled at %d/%d, want %d/%d", st.Done, st.Total, lengths, lengths)
	}
	plan := st.Result.Plan
	if plan.RecomputeLengths != 1 || plan.LBSkippedLengths+plan.PrunedLengths != lengths-1 {
		t.Fatalf("length-skip plan stats %+v", plan)
	}
	skipTotal := plan.LBSkippedLengths

	// Stride/refine (distinct cache entry: the key covers the new fields).
	j, err = m.Submit(JobRequest{Values: values, LMin: 16, LMax: 35, TopK: 2, Discords: 2, Workers: 1, LengthStride: 5, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	st = waitTerminal(t, j)
	if st.State != StateDone {
		t.Fatalf("job state %s: %s", st.State, st.Error)
	}
	if st.CacheHit {
		t.Fatal("stride submission answered from the length-skip cache entry")
	}
	if st.Done != st.Total || st.Total != lengths {
		t.Fatalf("stride progress stalled at %d/%d", st.Done, st.Total)
	}
	plan = st.Result.Plan
	if plan.StrideScanned != 4 { // lengths 16, 21, 26, 31
		t.Fatalf("stride plan stats %+v", plan)
	}

	totals := m.Stats().Plan
	if totals.LBSkippedLengths != int64(skipTotal+plan.LBSkippedLengths) ||
		totals.StrideScanned != int64(plan.StrideScanned) ||
		totals.RefinedLengths != int64(plan.RefinedLengths) {
		t.Fatalf("aggregated coarse-to-fine totals %+v", totals)
	}
}
