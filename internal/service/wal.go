package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"github.com/seriesmining/valmod/internal/faultinject"
)

// WAL is the disk-backed Store: a JSON-lines write-ahead log plus one
// checkpoint blob file per live discover job.
//
// Layout under the data directory:
//
//	wal.log        append-only JSON lines, one record each, fsynced per
//	               record: a version header, then series / submit /
//	               append / done records in arrival order
//	ckpt/<job-id>  the job's latest engine checkpoint frame, replaced
//	               atomically (tmp + rename) at every checkpoint and
//	               removed when the job reaches a terminal state
//
// JSON carries float64 exactly (Go marshals the shortest round-tripping
// decimal), so replayed series and appends are bit-identical to what was
// submitted — the property the engine's byte-identical resume contract
// stands on. The log is never compacted in place; docs/operations.md
// covers growth and the offline compaction story.
type WAL struct {
	dir string
	rec *RecoveredState

	mu     sync.Mutex
	f      *os.File
	closed bool
}

// RecoveredState is what a store replayed from disk: every series and job
// it knows about, in original arrival order. Manager.Recover consumes it.
type RecoveredState struct {
	Series []RecoveredSeries
	Jobs   []RecoveredJob
}

// RecoveredSeries is one replayed series upload.
type RecoveredSeries struct {
	ID     string
	Values []float64
}

// RecoveredJob is one replayed job. Done marks a terminal record was
// written: the job comes back as a queryable stub. Without it the job was
// live when the process died and is re-queued — discover jobs from
// Checkpoint (nil means from scratch), stream jobs by replaying Appends.
type RecoveredJob struct {
	ID      string
	Req     JobRequest
	Appends [][]float64
	Done    bool
	State   State
	Error   string
	Result  *Result
	// Checkpoint is the job's last durable engine checkpoint, loaded from
	// ckpt/<id>; nil when none was written or the file is unreadable.
	Checkpoint []byte
}

// walRecord is one wal.log line. T selects the shape: "hdr" (V), "series"
// (ID, Values), "submit" (ID, Req), "append" (ID, Values), "done" (ID,
// State, Error, Result). Unknown types are skipped on replay so older
// binaries tolerate logs written by newer ones within a version.
type walRecord struct {
	T      string      `json:"t"`
	V      int         `json:"v,omitempty"`
	ID     string      `json:"id,omitempty"`
	Values []float64   `json:"values,omitempty"`
	Req    *JobRequest `json:"req,omitempty"`
	State  State       `json:"state,omitempty"`
	Error  string      `json:"error,omitempty"`
	Result *Result     `json:"result,omitempty"`
}

// walVersion is the current log format version; a log declaring a higher
// version refuses to open rather than being misread.
const walVersion = 1

var errWALClosed = errors.New("service: wal closed")

// OpenWAL opens (creating as needed) the write-ahead log rooted at dir,
// replays any existing log into a RecoveredState, truncates a torn tail
// record left by a crash mid-write, and re-opens the log for appending.
func OpenWAL(dir string) (*WAL, error) {
	if err := os.MkdirAll(filepath.Join(dir, "ckpt"), 0o777); err != nil {
		return nil, fmt.Errorf("service: open wal: %w", err)
	}
	w := &WAL{dir: dir}
	if err := w.replay(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(w.logPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return nil, fmt.Errorf("service: open wal: %w", err)
	}
	w.f = f
	if st, err := f.Stat(); err == nil && st.Size() == 0 {
		if err := w.append(walRecord{T: "hdr", V: walVersion}); err != nil {
			f.Close()
			return nil, err
		}
	}
	return w, nil
}

func (w *WAL) logPath() string { return filepath.Join(w.dir, "wal.log") }

// Recovered returns the state replayed when the WAL was opened. The
// caller hands it to Manager.Recover; it is not updated by later writes.
func (w *WAL) Recovered() *RecoveredState { return w.rec }

// replay scans wal.log into w.rec. A torn final line (crash mid-write) is
// truncated away so the next append starts on a record boundary; any
// other malformed record is a corrupt log and refuses to open, because
// silently dropping an interior record could resurrect a finished job or
// lose a submitted one.
func (w *WAL) replay() error {
	rec := &RecoveredState{}
	w.rec = rec
	b, err := os.ReadFile(w.logPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("service: replay wal: %w", err)
	}
	jobs := map[string]*RecoveredJob{}
	var order []string
	good := 0 // offset just past the last well-formed record
	first := true
	for off := 0; off < len(b); {
		nl := bytes.IndexByte(b[off:], '\n')
		if nl < 0 {
			break // torn tail: no newline made it to disk
		}
		line := b[off : off+nl]
		var r walRecord
		if err := json.Unmarshal(line, &r); err != nil {
			if off+nl+1 >= len(b) {
				break // torn tail: half a record plus a stray newline
			}
			return fmt.Errorf("service: replay wal: corrupt record at offset %d: %v", off, err)
		}
		if first {
			if r.T != "hdr" {
				return fmt.Errorf("service: replay wal: %s does not start with a header record", w.logPath())
			}
			if r.V > walVersion {
				return fmt.Errorf("service: replay wal: log version %d is newer than this binary's %d", r.V, walVersion)
			}
			first = false
		}
		switch r.T {
		case "hdr":
			// Version checked above; repeated headers (log concatenation) pass.
		case "series":
			rec.Series = append(rec.Series, RecoveredSeries{ID: r.ID, Values: r.Values})
		case "submit":
			if r.Req == nil {
				return fmt.Errorf("service: replay wal: submit record for %s has no request", r.ID)
			}
			if _, dup := jobs[r.ID]; !dup {
				order = append(order, r.ID)
			}
			jobs[r.ID] = &RecoveredJob{ID: r.ID, Req: *r.Req}
		case "append":
			if j := jobs[r.ID]; j != nil && !j.Done {
				j.Appends = append(j.Appends, r.Values)
			}
		case "done":
			if j := jobs[r.ID]; j != nil {
				j.Done, j.State, j.Error, j.Result = true, r.State, r.Error, r.Result
			}
		default:
			// Unknown record type within a known version: skip.
		}
		off += nl + 1
		good = off
	}
	if good < len(b) {
		if err := os.Truncate(w.logPath(), int64(good)); err != nil {
			return fmt.Errorf("service: replay wal: truncate torn tail: %w", err)
		}
	}
	for _, id := range order {
		rec.Jobs = append(rec.Jobs, *jobs[id])
	}
	// Attach each live discover job's last durable checkpoint.
	for i := range rec.Jobs {
		j := &rec.Jobs[i]
		if j.Done || j.Req.Kind == KindStream {
			continue
		}
		if blob, err := os.ReadFile(w.ckptPath(j.ID)); err == nil {
			j.Checkpoint = blob
		}
	}
	return nil
}

// append marshals rec, writes it as one line, and fsyncs — the record is
// durable when append returns. "wal.write" is the fault-injection point
// chaos tests arm to fail individual records.
func (w *WAL) append(rec walRecord) error {
	if err := faultinject.Hit("wal.write"); err != nil {
		return err
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("service: wal append: %w", err)
	}
	b = append(b, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errWALClosed
	}
	if _, err := w.f.Write(b); err != nil {
		return fmt.Errorf("service: wal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("service: wal append: %w", err)
	}
	return nil
}

// SaveSeries implements SeriesStore.
func (w *WAL) SaveSeries(id string, values []float64) error {
	return w.append(walRecord{T: "series", ID: id, Values: values})
}

// SaveSubmit implements JobStore.
func (w *WAL) SaveSubmit(id string, req JobRequest) error {
	return w.append(walRecord{T: "submit", ID: id, Req: &req})
}

// SaveAppend implements JobStore.
func (w *WAL) SaveAppend(id string, values []float64) error {
	return w.append(walRecord{T: "append", ID: id, Values: values})
}

// SaveOutcome implements JobStore. The job's checkpoint blob is removed
// best-effort: once the outcome record is durable the blob is dead weight
// (recovery never resumes a job with a terminal record).
func (w *WAL) SaveOutcome(id string, state State, errMsg string, res *Result) error {
	if err := w.append(walRecord{T: "done", ID: id, State: state, Error: errMsg, Result: res}); err != nil {
		return err
	}
	_ = os.Remove(w.ckptPath(id))
	return nil
}

func (w *WAL) ckptPath(id string) string {
	return filepath.Join(w.dir, "ckpt", id)
}

// SaveCheckpoint implements JobStore: the blob replaces ckpt/<id> through
// a tmp file, fsync, and rename, so the file always holds a complete
// frame — a crash mid-write leaves the previous checkpoint intact.
// "wal.checkpoint" is the fault-injection point for chaos tests.
func (w *WAL) SaveCheckpoint(id string, ckpt []byte) error {
	if err := faultinject.Hit("wal.checkpoint"); err != nil {
		return err
	}
	if filepath.Base(id) != id || id == "" {
		return fmt.Errorf("service: wal checkpoint: unusable job id %q", id)
	}
	path := w.ckptPath(id)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o666)
	if err != nil {
		return fmt.Errorf("service: wal checkpoint: %w", err)
	}
	if _, err := f.Write(ckpt); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("service: wal checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("service: wal checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("service: wal checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("service: wal checkpoint: %w", err)
	}
	return nil
}

// Close fsyncs and closes the log. Further writes fail with an error;
// in-flight jobs finishing after Close simply stop persisting outcomes,
// which recovery treats as an interruption — the safe direction.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
