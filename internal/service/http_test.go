package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	valmod "github.com/seriesmining/valmod"
)

type sseEvent struct {
	name string
	data string
}

// readSSE consumes an SSE body into (event, data) pairs.
func readSSE(t *testing.T, body *bufio.Scanner) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	for body.Scan() {
		line := body.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.name != "" {
				events = append(events, cur)
				cur = sseEvent{}
			}
		}
	}
	return events
}

func postJSON(t *testing.T, client *http.Client, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// rawStatus mirrors Status but keeps the result's exact bytes.
type rawStatus struct {
	ID       string          `json:"id"`
	State    State           `json:"state"`
	Done     int             `json:"done"`
	Total    int             `json:"total"`
	CacheHit bool            `json:"cache_hit"`
	Error    string          `json:"error"`
	Result   json.RawMessage `json:"result"`
}

func getStatus(t *testing.T, client *http.Client, base, id string) rawStatus {
	t.Helper()
	resp, err := client.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	return decode[rawStatus](t, resp)
}

func waitHTTPTerminal(t *testing.T, client *http.Client, base, id string) rawStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, client, base, id)
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never terminal over HTTP", id)
	return rawStatus{}
}

// TestHTTPEndToEnd is the acceptance test: submit over HTTP, stream the
// SSE progress, and require the final result JSON to be byte-identical to
// a direct Discover call on the same series and options.
func TestHTTPEndToEnd(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 2})
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()
	client := ts.Client()

	values := testSeries(1000)
	req := JobRequest{Values: values, LMin: 16, LMax: 48, TopK: 5, Workers: 1}

	resp := postJSON(t, client, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	st := decode[rawStatus](t, resp)
	if st.ID == "" {
		t.Fatal("submit returned no job ID")
	}

	// Stream the SSE progress to completion.
	evResp, err := client.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()
	if ct := evResp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}
	events := readSSE(t, bufio.NewScanner(evResp.Body))
	if len(events) == 0 {
		t.Fatal("no SSE events")
	}
	total := req.LMax - req.LMin + 1
	progress := events[:len(events)-1]
	if len(progress) != total {
		t.Fatalf("got %d progress events, want %d", len(progress), total)
	}
	for i, e := range progress {
		if e.name != "progress" {
			t.Fatalf("event %d named %q", i, e.name)
		}
		var ev Event
		if err := json.Unmarshal([]byte(e.data), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Done != i+1 || ev.Total != total || ev.Length != req.LMin+i {
			t.Fatalf("event %d = %+v, want done=%d total=%d length=%d", i, ev, i+1, total, req.LMin+i)
		}
	}
	if last := events[len(events)-1]; last.name != string(StateDone) {
		t.Fatalf("terminal event named %q, want %q", last.name, StateDone)
	}

	// The final result must be byte-identical to a direct library run.
	final := waitHTTPTerminal(t, client, ts.URL, st.ID)
	if final.State != StateDone {
		t.Fatalf("state=%s err=%q", final.State, final.Error)
	}
	direct, err := valmod.Discover(values, req.LMin, req.LMax, req.options())
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(ResultOf(direct))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(final.Result, want) {
		t.Fatalf("service result is not byte-identical to direct Discover\n got %s\nwant %s", final.Result, want)
	}
}

// TestHTTPCacheHit requires the second identical submission to complete
// without re-running the engine, with the identical result bytes.
func TestHTTPCacheHit(t *testing.T) {
	m := NewManager(Config{})
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()
	client := ts.Client()

	values := testSeries(900)
	req := JobRequest{Values: values, LMin: 20, LMax: 40, Workers: 1}

	st1 := decode[rawStatus](t, postJSON(t, client, ts.URL+"/v1/jobs", req))
	final1 := waitHTTPTerminal(t, client, ts.URL, st1.ID)
	if final1.State != StateDone {
		t.Fatalf("first job: %s (%s)", final1.State, final1.Error)
	}
	runs := m.Stats().EngineRuns

	st2 := decode[rawStatus](t, postJSON(t, client, ts.URL+"/v1/jobs", req))
	if st2.State != StateDone || !st2.CacheHit {
		t.Fatalf("resubmission should be a done cache hit, got state=%s cache_hit=%v", st2.State, st2.CacheHit)
	}
	if !bytes.Equal(st2.Result, final1.Result) {
		t.Fatal("cached result bytes differ")
	}
	if m.Stats().EngineRuns != runs {
		t.Fatal("cache hit must not run the engine")
	}
	// SSE on a cached job: no progress, one terminal "done" event.
	evResp, err := client.Get(ts.URL + "/v1/jobs/" + st2.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()
	events := readSSE(t, bufio.NewScanner(evResp.Body))
	if len(events) != 1 || events[0].name != string(StateDone) {
		t.Fatalf("cached job SSE = %+v, want a single done event", events)
	}
}

// TestHTTPCancellation cancels a running job via DELETE and checks both
// the status endpoint and the SSE terminal event report "canceled".
func TestHTTPCancellation(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 1})
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()
	client := ts.Client()

	values := testSeries(6000)
	req := JobRequest{Values: values, LMin: 16, LMax: 600, Workers: 1}
	st := decode[rawStatus](t, postJSON(t, client, ts.URL+"/v1/jobs", req))

	evResp, err := client.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()

	del, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := client.Do(del); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	final := waitHTTPTerminal(t, client, ts.URL, st.ID)
	if final.State != StateCanceled {
		t.Fatalf("state=%s, want canceled", final.State)
	}
	events := readSSE(t, bufio.NewScanner(evResp.Body))
	if len(events) == 0 || events[len(events)-1].name != string(StateCanceled) {
		t.Fatalf("SSE should end with a canceled event, got %+v", events)
	}
}

// TestHTTPErrors covers the error model: bad JSON, validation failures,
// and unknown IDs.
func TestHTTPErrors(t *testing.T) {
	m := NewManager(Config{})
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()
	client := ts.Client()

	resp, err := client.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d", resp.StatusCode)
	}

	resp = postJSON(t, client, ts.URL+"/v1/jobs", JobRequest{Values: testSeries(100), LMin: 2, LMax: 10})
	body := decode[apiError](t, resp)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body.Error, "lmin=2") {
		t.Errorf("validation error: status %d body %q", resp.StatusCode, body.Error)
	}

	for _, path := range []string{"/v1/jobs/j_missing", "/v1/jobs/j_missing/events", "/v1/series/s_missing"} {
		resp, err := client.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestHTTPBodyLimit: bodies above MaxBodyBytes are rejected with 413
// before being materialized.
func TestHTTPBodyLimit(t *testing.T) {
	m := NewManager(Config{MaxBodyBytes: 8192})
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()
	client := ts.Client()

	big := testSeries(4096) // ~80 KB of JSON, far over the 8 KiB cap
	for _, path := range []string{"/v1/jobs", "/v1/series"} {
		resp := postJSON(t, client, ts.URL+path, map[string]any{"values": big, "lmin": 16, "lmax": 32})
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("POST %s oversized: status %d, want 413", path, resp.StatusCode)
		}
	}
	// Small bodies still pass.
	resp := postJSON(t, client, ts.URL+"/v1/jobs", JobRequest{Values: testSeries(60), LMin: 8, LMax: 16})
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("small body: status %d, want 202", resp.StatusCode)
	}
}

// TestHTTPQueueFull maps ErrQueueFull to 429.
func TestHTTPQueueFull(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 1, MaxQueue: 1})
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()
	client := ts.Client()

	values := testSeries(5000)
	st := decode[rawStatus](t, postJSON(t, client, ts.URL+"/v1/jobs",
		JobRequest{Values: values, LMin: 16, LMax: 300, Workers: 1}))
	resp := postJSON(t, client, ts.URL+"/v1/jobs",
		JobRequest{Values: values, LMin: 16, LMax: 299, Workers: 1})
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("full queue: status %d, want 429", resp.StatusCode)
	}
	m.Cancel(st.ID)
	waitHTTPTerminal(t, client, ts.URL, st.ID)
}

// TestHTTPSeriesUpload runs the upload → reference-by-id flow end to end.
func TestHTTPSeriesUpload(t *testing.T) {
	m := NewManager(Config{})
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()
	client := ts.Client()

	values := testSeries(700)
	up := decode[SeriesInfo](t, postJSON(t, client, ts.URL+"/v1/series",
		map[string]any{"values": values}))
	if up.ID == "" || up.N != len(values) {
		t.Fatalf("upload = %+v", up)
	}
	st := decode[rawStatus](t, postJSON(t, client, ts.URL+"/v1/jobs",
		JobRequest{SeriesID: up.ID, LMin: 16, LMax: 32, Workers: 1}))
	final := waitHTTPTerminal(t, client, ts.URL, st.ID)
	if final.State != StateDone {
		t.Fatalf("state=%s err=%q", final.State, final.Error)
	}
	var got Result
	if err := json.Unmarshal(final.Result, &got); err != nil {
		t.Fatal(err)
	}
	if got.N != len(values) || got.LMin != 16 || got.LMax != 32 {
		t.Fatalf("result header = %+v", got)
	}
}
