package service

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"runtime"

	valmod "github.com/seriesmining/valmod"
)

// Recover replays a store's recovered state into the manager: uploaded
// series come back under their original IDs, terminal jobs come back as
// queryable stubs (result included for done jobs), and jobs that were
// live when the previous process died are re-queued under their original
// IDs — discover jobs resume from their last durable checkpoint (or from
// scratch when none is usable; determinism makes the re-run
// byte-identical), stream jobs are rebuilt by replaying their accepted
// appends. Jobs that cannot be re-queued — their series evicted, their
// request no longer valid — are marked failed with a reason, durably, so
// they don't retry on every restart. Call once, after NewManager and
// before serving traffic; re-queued jobs start executing immediately.
//
// Recovery deliberately ignores MaxQueue: everything being re-queued was
// admitted under it before the crash. Timeout budgets start over — they
// bound one execution attempt, not a job's lifetime across restarts.
func (m *Manager) Recover(rs *RecoveredState) error {
	if rs == nil {
		return nil
	}
	for _, s := range rs.Series {
		if valmod.ValidateSeries(s.Values) != nil {
			// A series that passed validation at upload only fails here
			// through log corruption; jobs referencing it fail below with
			// a reason naming it.
			continue
		}
		m.insertSeries(s.ID, &storedSeries{values: s.Values, hash: hashSeries(s.Values)})
	}
	for _, j := range rs.Jobs {
		switch {
		case j.Done:
			m.recoverStub(j)
		case j.Req.Kind == KindStream:
			m.recoverStream(j)
		default:
			m.recoverDiscover(j)
		}
	}
	return nil
}

// recoverStub rebuilds a terminal job as a queryable record: same ID,
// same state, same result or error, no goroutines.
func (m *Manager) recoverStub(rj RecoveredJob) {
	job := newJob(rj.ID, func() {})
	if rj.Req.Kind == KindStream {
		job.kind = KindStream
	}
	job.state = rj.State
	if rj.Error != "" {
		job.err = errors.New(rj.Error)
	}
	if rj.State == StateDone {
		job.result = rj.Result
	}
	m.mu.Lock()
	m.registerJobLocked(job)
	m.mu.Unlock()
}

// failStub registers an interrupted job as failed with reason and writes
// the outcome through the store, so the failure is decided once rather
// than rediscovered on every restart.
func (m *Manager) failStub(rj RecoveredJob, reason string) {
	job := newJob(rj.ID, func() {})
	if rj.Req.Kind == KindStream {
		job.kind = KindStream
	}
	job.state = StateFailed
	job.err = errors.New(reason)
	m.mu.Lock()
	m.registerJobLocked(job)
	m.mu.Unlock()
	m.persistOutcome(job)
}

// recoverDiscover re-queues an interrupted batch discovery under its
// original ID, resuming from its last durable checkpoint when one exists.
func (m *Manager) recoverDiscover(rj RecoveredJob) {
	req := rj.Req
	opts := req.options()
	var values []float64
	var hash [sha256.Size]byte
	switch {
	case req.SeriesID != "" && req.Values != nil:
		m.failStub(rj, "unresumable after restart: submission carries both values and series_id")
		return
	case req.SeriesID != "":
		m.mu.Lock()
		s, ok := m.series[req.SeriesID]
		m.mu.Unlock()
		if !ok {
			m.failStub(rj, fmt.Sprintf("unresumable after restart: series %s is no longer available", req.SeriesID))
			return
		}
		values, hash = s.values, s.hash
	default:
		values, hash = req.Values, hashSeries(req.Values)
	}
	if err := valmod.Validate(values, req.LMin, req.LMax, opts); err != nil {
		m.failStub(rj, fmt.Sprintf("unresumable after restart: %v", err))
		return
	}
	key := resultKey(hash, req.LMin, req.LMax, opts)
	ctx, cancel := context.WithCancel(context.Background())
	job := newJob(rj.ID, cancel)
	job.ctxDone = ctx.Done()
	m.mu.Lock()
	m.liveJobs++
	// Several identical interrupted jobs (a crashed leader plus its
	// persisted followers) each re-run standalone; only the first takes
	// the single-flight slot, so new submissions coalesce onto it.
	if _, taken := m.inflight[key]; !taken {
		m.inflight[key] = job
	}
	m.registerJobLocked(job)
	m.mu.Unlock()
	go m.run(ctx, job, key, values, req.LMin, req.LMax, opts, req.TimeoutSec, rj.Checkpoint)
}

// recoverStream rebuilds an interrupted stream job by replaying its
// accepted appends into a fresh engine — exact under the stream's
// chunking-invariance contract — then re-arms durability so new appends
// keep logging.
func (m *Manager) recoverStream(rj RecoveredJob) {
	req := rj.Req
	opts := req.options()
	opts.WindowCap = req.WindowCap
	if limit := runtime.GOMAXPROCS(0); opts.Workers <= 0 || opts.Workers > limit {
		opts.Workers = limit
	}
	st, err := valmod.NewStream(req.LMin, req.LMax, opts)
	if err != nil {
		m.failStub(rj, fmt.Sprintf("unresumable after restart: %v", err))
		return
	}
	var job *Job
	job = newJob(rj.ID, func() { m.closeStream(job) })
	job.kind = KindStream
	ss := &streamState{s: st}
	job.stream = ss
	m.mu.Lock()
	m.liveJobs++
	m.registerJobLocked(job)
	m.mu.Unlock()
	job.setState(StateRunning)
	// Replay with persist unset: the chunks being replayed are already in
	// the log. Change events regenerate deterministically, so a client
	// re-attaching to the SSE stream sees the same history.
	for _, chunk := range rj.Appends {
		_ = job.AppendStream(chunk) // only rejects what the live stream rejected
	}
	ss.mu.Lock()
	if m.store != nil {
		ss.persist = func(v []float64) error { return m.store.SaveAppend(job.ID, v) }
	}
	ss.fail = func(err error) { m.failStream(job, err) }
	ss.mu.Unlock()
}
