package service

import (
	"encoding/json"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	valmod "github.com/seriesmining/valmod"
)

// testSeries builds a deterministic series with planted repeats so every
// length range yields non-trivial motifs.
func testSeries(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Sin(float64(i)/7) + 0.4*math.Sin(float64(i)/3.1) + 0.05*math.Cos(float64(i)*1.7)
	}
	return out
}

// waitTerminal polls a job until it reaches a terminal state.
func waitTerminal(t *testing.T, j *Job) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if st := j.Status(); st.State.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state (state=%s)", j.ID, j.Status().State)
	return Status{}
}

func TestManagerConcurrentSubmissionsMatchDirectDiscover(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 3})
	values := testSeries(1200)
	const jobs = 8

	// Distinct ranges so no submission is answered from the cache.
	reqs := make([]JobRequest, jobs)
	for i := range reqs {
		reqs[i] = JobRequest{Values: values, LMin: 16 + i, LMax: 40 + i, TopK: 5, Workers: 1}
	}
	out := make([]*Job, jobs)
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			j, err := m.Submit(req)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			out[i] = j
		}()
	}
	wg.Wait()
	for i, j := range out {
		if j == nil {
			continue
		}
		st := waitTerminal(t, j)
		if st.State != StateDone {
			t.Fatalf("job %d: state=%s err=%q", i, st.State, st.Error)
		}
		direct, err := valmod.Discover(values, reqs[i].LMin, reqs[i].LMax, reqs[i].options())
		if err != nil {
			t.Fatal(err)
		}
		want, _ := json.Marshal(ResultOf(direct))
		got, _ := json.Marshal(st.Result)
		if string(got) != string(want) {
			t.Fatalf("job %d: service result differs from direct Discover\n got %s\nwant %s", i, got, want)
		}
	}
	if runs := m.Stats().EngineRuns; runs != jobs {
		t.Errorf("EngineRuns=%d, want %d", runs, jobs)
	}
}

func TestManagerCacheHitSkipsEngine(t *testing.T) {
	m := NewManager(Config{})
	values := testSeries(800)
	req := JobRequest{Values: values, LMin: 16, LMax: 32, Workers: 1}

	j1, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st1 := waitTerminal(t, j1)
	if st1.State != StateDone {
		t.Fatalf("first job: state=%s err=%q", st1.State, st1.Error)
	}

	// Same series, same options modulo defaults and Workers → cache hit.
	j2, err := m.Submit(JobRequest{Values: values, LMin: 16, LMax: 32, TopK: 10, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	st2 := j2.Status()
	if st2.State != StateDone || !st2.CacheHit {
		t.Fatalf("second job should complete instantly from cache: state=%s cacheHit=%v", st2.State, st2.CacheHit)
	}
	if got, want := mustJSON(t, st2.Result), mustJSON(t, st1.Result); got != want {
		t.Fatal("cached result differs from the original")
	}
	s := m.Stats()
	if s.EngineRuns != 1 || s.CacheHits != 1 {
		t.Errorf("stats=%+v, want 1 engine run and 1 cache hit", s)
	}
}

func TestManagerCancellation(t *testing.T) {
	// One slot, and a long job occupying it, so the second job is
	// cancelable both while queued and while running.
	m := NewManager(Config{MaxConcurrent: 1})
	values := testSeries(6000)
	long := JobRequest{Values: values, LMin: 16, LMax: 600, Workers: 1}

	j1, err := m.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m.Submit(JobRequest{Values: values, LMin: 16, LMax: 599, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// j2 is queued behind j1; canceling it must resolve it without a run.
	if !m.Cancel(j2.ID) {
		t.Fatal("Cancel should know the job")
	}
	if st := waitTerminal(t, j2); st.State != StateCanceled {
		t.Fatalf("queued cancel: state=%s, want canceled", st.State)
	}
	// Cancel the running job too.
	j1.Cancel()
	if st := waitTerminal(t, j1); st.State != StateCanceled {
		t.Fatalf("running cancel: state=%s, want canceled", st.State)
	}
	if m.Cancel("j_nope") {
		t.Error("Cancel of an unknown ID should report false")
	}
}

func TestManagerSeriesUploadAndReference(t *testing.T) {
	m := NewManager(Config{})
	values := testSeries(600)
	if _, err := m.UploadSeries([]float64{1, math.NaN(), 3}); !errors.Is(err, valmod.ErrBadInput) {
		t.Fatalf("non-finite upload: want ErrBadInput, got %v", err)
	}
	info, err := m.UploadSeries(values)
	if err != nil {
		t.Fatal(err)
	}
	if info.N != len(values) {
		t.Fatalf("N=%d, want %d", info.N, len(values))
	}
	if _, ok := m.Series(info.ID); !ok {
		t.Fatal("uploaded series should be retrievable")
	}
	j, err := m.Submit(JobRequest{SeriesID: info.ID, LMin: 16, LMax: 32, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j); st.State != StateDone {
		t.Fatalf("state=%s err=%q", st.State, st.Error)
	}
	// Inline submission of the same values must hit the cache: the key is
	// the series hash, not the storage path.
	j2, err := m.Submit(JobRequest{Values: values, LMin: 16, LMax: 32})
	if err != nil {
		t.Fatal(err)
	}
	if st := j2.Status(); !st.CacheHit {
		t.Error("inline resubmission of an uploaded series should hit the cache")
	}
}

// TestManagerCoalescesInflight: a submission identical to one still in
// flight must not run the engine twice — it gets a follower job under its
// own ID, with per-submitter cancellation isolation.
func TestManagerCoalescesInflight(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 1})
	values := testSeries(5000)
	req := JobRequest{Values: values, LMin: 16, LMax: 300, Workers: 1}

	j1, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m.Submit(req) // identical, while j1 is queued/running
	if err != nil {
		t.Fatal(err)
	}
	if j2 == j1 || j2.ID == j1.ID {
		t.Fatal("follower must have its own job identity")
	}
	if c := m.Stats().Coalesced; c != 1 {
		t.Errorf("Coalesced=%d, want 1", c)
	}
	// The follower mirrors the leader's lifecycle: once the leader runs,
	// the follower must report running too, not sit in "queued".
	for deadline := time.Now().Add(10 * time.Second); ; {
		st1, st2 := j1.Status(), j2.Status()
		if st1.State == StateRunning && st2.State == StateRunning {
			break
		}
		if st1.State.Terminal() || st2.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("leader=%s follower=%s, want running/running", st1.State, st2.State)
		}
		time.Sleep(time.Millisecond)
	}
	// A different query must not coalesce.
	j3, err := m.Submit(JobRequest{Values: values, LMin: 16, LMax: 299, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if j3 == j1 {
		t.Fatal("distinct query coalesced onto the wrong job")
	}
	// The leader's cancel — even retried, as HTTP DELETEs are — spends
	// one vote and must not kill the follower's query…
	j1.Cancel()
	j1.Cancel()
	time.Sleep(50 * time.Millisecond)
	if st := j1.Status(); st.State.Terminal() {
		t.Fatalf("leader died while a follower was attached (state=%s)", st.State)
	}
	// …the follower's own cancel withdraws the last vote: both stop.
	j2.Cancel()
	if st := waitTerminal(t, j1); st.State != StateCanceled {
		t.Fatalf("leader state=%s, want canceled", st.State)
	}
	if st := waitTerminal(t, j2); st.State != StateCanceled {
		t.Fatalf("follower state=%s, want canceled", st.State)
	}
	j3.Cancel()
	waitTerminal(t, j3)
	// The doomed leader must not adopt new submitters: an identical
	// submission after cancellation gets a fresh run, not a dead job.
	j4, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if j4 == j1 || j4 == j2 {
		t.Fatal("new submission coalesced onto a canceled job")
	}
	j4.Cancel()
	waitTerminal(t, j4)
}

// TestManagerFollowerMirrorsResult: a follower completes with the
// leader's exact result while the engine runs once.
func TestManagerFollowerMirrorsResult(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 1})
	values := testSeries(1000)
	// A blocker holds the single slot so the leader is still queued when
	// the follower attaches.
	blocker, err := m.Submit(JobRequest{Values: values, LMin: 16, LMax: 200, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the blocker holds the slot, so its engine run is counted
	// deterministically and the leader below is surely queued.
	for deadline := time.Now().Add(10 * time.Second); ; {
		if st := blocker.Status(); st.State == StateRunning {
			break
		} else if st.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("blocker never started running (state=%s)", st.State)
		}
		time.Sleep(time.Millisecond)
	}
	req := JobRequest{Values: values, LMin: 20, LMax: 40, Workers: 1}
	leader, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	follower, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if follower == leader {
		t.Fatal("expected a follower job")
	}
	blocker.Cancel()
	stL := waitTerminal(t, leader)
	stF := waitTerminal(t, follower)
	if stL.State != StateDone || stF.State != StateDone {
		t.Fatalf("leader=%s follower=%s, want done/done", stL.State, stF.State)
	}
	if mustJSON(t, stF.Result) != mustJSON(t, stL.Result) {
		t.Fatal("follower result differs from leader result")
	}
	if stF.Done != stL.Done || stF.Total != stL.Total {
		t.Fatalf("follower progress %d/%d, leader %d/%d", stF.Done, stF.Total, stL.Done, stL.Total)
	}
	if runs := m.Stats().EngineRuns; runs != 2 { // blocker + leader; follower free
		t.Errorf("EngineRuns=%d, want 2", runs)
	}
}

// TestManagerQueueBound: above MaxQueue live jobs — queued, running, or
// coalesced followers — submissions are rejected with ErrQueueFull.
func TestManagerQueueBound(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 1, MaxQueue: 2})
	values := testSeries(5000)
	long := JobRequest{Values: values, LMin: 16, LMax: 300, Workers: 1}

	leader, err := m.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	// Slot 2 of 2: an identical submission coalesces as a follower…
	co, err := m.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	if co == leader {
		t.Fatal("expected a follower job, not the leader itself")
	}
	// …and the queue is now full for everything, distinct or identical:
	// followers hold goroutines and event state, so they count too.
	if _, err := m.Submit(JobRequest{Values: values, LMin: 16, LMax: 299, Workers: 1}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("distinct past full queue: want ErrQueueFull, got %v", err)
	}
	if _, err := m.Submit(long); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("follower past full queue: want ErrQueueFull, got %v", err)
	}
	leader.Cancel()
	co.Cancel() // both submitters withdraw → the discovery stops
	waitTerminal(t, leader)
	waitTerminal(t, co)
	// The slot frees once the leader is terminal.
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, err := m.Submit(JobRequest{Values: values, LMin: 16, LMax: 20, Workers: 1})
		if err == nil {
			waitTerminal(t, j)
			break
		}
		if !errors.Is(err, ErrQueueFull) || time.Now().After(deadline) {
			t.Fatalf("slot never freed: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestManagerClampsWorkers: an absurd client-supplied Workers must not
// reach the engine (each engine worker clones O(n) scratch), and — per
// the determinism contract — must not change the result either.
func TestManagerClampsWorkers(t *testing.T) {
	m := NewManager(Config{CacheEntries: -1}) // no cache: force both runs
	values := testSeries(600)
	j, err := m.Submit(JobRequest{Values: values, LMin: 16, LMax: 24, Workers: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, j)
	if st.State != StateDone {
		t.Fatalf("state=%s err=%q", st.State, st.Error)
	}
	direct, err := valmod.Discover(values, 16, 24, valmod.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mustJSON(t, st.Result) != mustJSON(t, ResultOf(direct)) {
		t.Fatal("clamped run differs from direct serial run")
	}
}

func TestManagerSubmitValidation(t *testing.T) {
	m := NewManager(Config{})
	cases := []JobRequest{
		{LMin: 8, LMax: 16}, // no series at all
		{Values: []float64{1, 2, 3}, SeriesID: "s_x", LMin: 8, LMax: 16}, // both
		{SeriesID: "s_unknown", LMin: 8, LMax: 16},                       // unknown reference
		{Values: testSeries(100), LMin: 2, LMax: 16},                     // bad range
		{Values: testSeries(100), LMin: 8, LMax: 16, TopK: -1},           // bad option
	}
	for i, req := range cases {
		if _, err := m.Submit(req); !errors.Is(err, valmod.ErrBadInput) {
			t.Errorf("case %d: want ErrBadInput, got %v", i, err)
		}
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
