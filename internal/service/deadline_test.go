package service

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	valmod "github.com/seriesmining/valmod"
)

// longRequest is a discovery big enough to run well past one second on any
// hardware, so a 1-second budget reliably interrupts it mid-run.
func longRequest() JobRequest {
	return JobRequest{Values: testSeries(20000), LMin: 16, LMax: 300, Workers: 1}
}

// TestTimeoutSecFailsWithDeadlineReason: a job that blows its client-set
// wall-clock budget ends failed — not canceled, nobody asked it to stop —
// with a distinct "deadline exceeded" reason.
func TestTimeoutSecFailsWithDeadlineReason(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 1})
	req := longRequest()
	req.TimeoutSec = 1
	job, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, job)
	if st.State != StateFailed {
		t.Fatalf("state=%s err=%q, want failed", st.State, st.Error)
	}
	if !strings.Contains(st.Error, "deadline exceeded") {
		t.Fatalf("error %q does not name the deadline", st.Error)
	}
}

// TestMaxJobSecondsCapsEveryJob: the server-side cap applies even when the
// client asked for no (or a longer) timeout.
func TestMaxJobSecondsCapsEveryJob(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 1, MaxJobSeconds: 1})
	req := longRequest()
	req.TimeoutSec = 3600 // client asks for more; the server cap wins
	job, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	st := waitTerminal(t, job)
	if st.State != StateFailed || !strings.Contains(st.Error, "deadline exceeded") {
		t.Fatalf("state=%s err=%q, want deadline failure", st.State, st.Error)
	}
	// Generous bound: the engine notices the deadline between length
	// passes, so runaway means minutes, not a few extra seconds.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cap of 1s took %v to bite", elapsed)
	}
}

// TestTimeoutExcludedFromCacheKey: two identical queries that differ only
// in timeout_sec share one cache entry.
func TestTimeoutExcludedFromCacheKey(t *testing.T) {
	m := NewManager(Config{})
	values := testSeries(600)
	req := JobRequest{Values: values, LMin: 16, LMax: 24, Workers: 1, TimeoutSec: 600}
	job, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, job); st.State != StateDone {
		t.Fatalf("seed job: state=%s err=%q", st.State, st.Error)
	}
	req.TimeoutSec = 0
	hit, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st := hit.Status(); !st.CacheHit || st.State != StateDone {
		t.Fatalf("resubmission with different timeout_sec: cache_hit=%t state=%s, want a cache hit", st.CacheHit, st.State)
	}
}

// TestNegativeTimeoutRejected: timeout_sec < 0 is a client error, rejected
// synchronously before any job is created.
func TestNegativeTimeoutRejected(t *testing.T) {
	m := NewManager(Config{})
	_, err := m.Submit(JobRequest{Values: testSeries(600), LMin: 16, LMax: 24, TimeoutSec: -1})
	if !errors.Is(err, valmod.ErrBadInput) {
		t.Fatalf("err=%v, want ErrBadInput", err)
	}
}

// TestEffectiveTimeout pins the cap-combining rule: the smaller positive
// side wins, zero means unbounded from that side.
func TestEffectiveTimeout(t *testing.T) {
	cases := []struct {
		req, cap int
		want     time.Duration
	}{
		{0, 0, 0},
		{5, 0, 5 * time.Second},
		{0, 7, 7 * time.Second},
		{5, 7, 5 * time.Second},
		{9, 7, 7 * time.Second},
	}
	for _, c := range cases {
		if got := effectiveTimeout(c.req, c.cap); got != c.want {
			t.Errorf("effectiveTimeout(%d, %d) = %v, want %v", c.req, c.cap, got, c.want)
		}
	}
}

// TestStalledWatcherDoesNotBlockOthers: one SSE consumer that never reads
// its channel must not stall the job's progress broadcast or any other
// watcher — each Watch channel is served by its own goroutine off the
// shared event log.
func TestStalledWatcherDoesNotBlockOthers(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 1})
	job, err := m.Submit(JobRequest{Values: testSeries(1500), LMin: 16, LMax: 64, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	stallCtx, stallCancel := context.WithCancel(context.Background())
	defer stallCancel()
	stalled := job.Watch(stallCtx)
	defer func() {
		stallCancel()
		for range stalled { // drain so its goroutine exits under -race
		}
	}()

	got := 0
	live := make(chan struct{})
	go func() {
		defer close(live)
		for range job.Watch(context.Background()) {
			got++
		}
	}()
	select {
	case <-live:
	case <-time.After(60 * time.Second):
		t.Fatal("live watcher starved behind a stalled one")
	}
	if want := 64 - 16 + 1; got != want {
		t.Fatalf("live watcher saw %d events, want %d", got, want)
	}
	if st := waitTerminal(t, job); st.State != StateDone {
		t.Fatalf("job: state=%s err=%q", st.State, st.Error)
	}
}
