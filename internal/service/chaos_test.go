//go:build faultinject

// Chaos suite: runs only under `go test -tags faultinject`, which compiles
// the real fault-injection hooks into the engine and WAL. Each test arms
// one injection point deterministically (exact nth hit, never random) and
// asserts the blast radius: a fault fails exactly the job that hit it, and
// the rest of the service keeps working.
package service

import (
	"errors"
	"strings"
	"testing"

	"github.com/seriesmining/valmod/internal/faultinject"
)

var errInjected = errors.New("injected fault")

// TestChaosLengthPanicFailsOnlyThatJob: a panic between length passes of
// one discovery is recovered on that job's goroutine — the job fails with
// the panic and stack in its reason, and the next job runs normally.
func TestChaosLengthPanicFailsOnlyThatJob(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	faultinject.ArmPanic("core.length", 3)
	m := NewManager(Config{MaxConcurrent: 1})
	values := testSeries(1200)
	victim, err := m.Submit(JobRequest{Values: values, LMin: 16, LMax: 48, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, victim)
	if st.State != StateFailed {
		t.Fatalf("victim state=%s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "job panicked") || !strings.Contains(st.Error, "injected panic at core.length") {
		t.Fatalf("victim error %q does not carry the recovered panic", st.Error)
	}
	bystander, err := m.Submit(JobRequest{Values: values, LMin: 20, LMax: 52, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, bystander); st.State != StateDone {
		t.Fatalf("bystander after a panic: state=%s err=%q, want done", st.State, st.Error)
	}
}

// TestChaosAppendPanicSealsOnlyThatStream: a panic inside one stream's
// append path seals that stream (failed, further appends rejected) and
// leaves a concurrent stream untouched.
func TestChaosAppendPanicSealsOnlyThatStream(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	m := NewManager(Config{})
	req := JobRequest{Kind: KindStream, LMin: 8, LMax: 12, Workers: 1}
	victim, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	bystander, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	chunk := testSeries(50)
	if err := victim.AppendStream(chunk); err != nil {
		t.Fatal(err)
	}
	faultinject.ArmPanic("core.append", 1)
	err = victim.AppendStream(chunk)
	if err == nil || !strings.Contains(err.Error(), "append panicked") {
		t.Fatalf("append during panic: err=%v, want recovered panic", err)
	}
	if st := victim.Status(); st.State != StateFailed {
		t.Fatalf("victim state=%s, want failed", st.State)
	}
	if err := victim.AppendStream(chunk); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("append to sealed stream: err=%v, want ErrStreamClosed", err)
	}
	// The injection fired once; the bystander stream keeps working.
	if err := bystander.AppendStream(chunk); err != nil {
		t.Fatalf("bystander append after victim's panic: %v", err)
	}
	bystander.Cancel()
	if st := waitTerminal(t, bystander); st.State != StateDone {
		t.Fatalf("bystander close: state=%s err=%q", st.State, st.Error)
	}
}

// TestChaosWALWriteFailureFailsSubmission: a submission whose submit
// record cannot be made durable is rejected with the store's error — the
// job must not run with no trace on disk — and the next submission, with
// the log healthy again, succeeds.
func TestChaosWALWriteFailureFailsSubmission(t *testing.T) {
	wal, err := OpenWAL(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	faultinject.Reset() // after OpenWAL: the header write also hits wal.write
	t.Cleanup(faultinject.Reset)
	m := NewManager(Config{Store: wal})
	values := testSeries(600)

	faultinject.ArmError("wal.write", 1, errInjected)
	if _, err := m.Submit(JobRequest{Values: values, LMin: 16, LMax: 24, Workers: 1}); !errors.Is(err, errInjected) {
		t.Fatalf("submit with failing log: err=%v, want the injected error", err)
	}
	job, err := m.Submit(JobRequest{Values: values, LMin: 16, LMax: 24, Workers: 1})
	if err != nil {
		t.Fatalf("submit after log recovered: %v", err)
	}
	if st := waitTerminal(t, job); st.State != StateDone {
		t.Fatalf("job after recovered log: state=%s err=%q", st.State, st.Error)
	}
}

// TestChaosStreamAppendWriteFailureSealsStream: a chunk the engine
// accepted but the log refused must seal the stream — acknowledging it
// would let the live state diverge from what a restart can rebuild.
func TestChaosStreamAppendWriteFailureSealsStream(t *testing.T) {
	wal, err := OpenWAL(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	m := NewManager(Config{Store: wal})
	job, err := m.Submit(JobRequest{Kind: KindStream, LMin: 8, LMax: 12, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	chunk := testSeries(50)
	if err := job.AppendStream(chunk); err != nil {
		t.Fatal(err)
	}
	faultinject.ArmError("wal.write", 1, errInjected)
	err = job.AppendStream(chunk)
	if err == nil || !strings.Contains(err.Error(), "not durable") {
		t.Fatalf("append with failing log: err=%v, want durability failure", err)
	}
	if st := job.Status(); st.State != StateFailed {
		t.Fatalf("stream state=%s, want failed", st.State)
	}
	if err := job.AppendStream(chunk); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("append after seal: err=%v, want ErrStreamClosed", err)
	}
}

// TestChaosCheckpointWriteFailureIsNonFatal: a checkpoint the store could
// not take stops further checkpointing but never the discovery — the
// durable fallback after a crash is a from-scratch re-run, which the
// determinism contract makes byte-identical.
func TestChaosCheckpointWriteFailureIsNonFatal(t *testing.T) {
	wal, err := OpenWAL(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	faultinject.ArmError("wal.checkpoint", 1, errInjected)
	m := NewManager(Config{Store: wal, CheckpointEvery: 4})
	job, err := m.Submit(JobRequest{Values: testSeries(1200), LMin: 16, LMax: 48, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, job); st.State != StateDone {
		t.Fatalf("job with failing checkpoints: state=%s err=%q, want done", st.State, st.Error)
	}
	// The engine latches checkpointing off after the first failure rather
	// than retrying a broken store every cadence boundary.
	if hits := faultinject.Hits("wal.checkpoint"); hits != 1 {
		t.Fatalf("checkpoint attempts after failure: %d hits, want exactly 1", hits)
	}
}
