package service

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	valmod "github.com/seriesmining/valmod"
)

// TestWALCheckpointLifecycle pins the store contract for checkpoint
// blobs: replace-in-place, survive reopen, and die with the outcome
// record.
func TestWALCheckpointLifecycle(t *testing.T) {
	dir := t.TempDir()
	wal, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := wal.SaveCheckpoint("../evil", []byte("x")); err == nil {
		t.Fatal("path-escaping job id accepted as a checkpoint name")
	}
	if err := wal.SaveSeries("s1", testSeries(40)); err != nil {
		t.Fatal(err)
	}
	if err := wal.SaveSubmit("j1", JobRequest{SeriesID: "s1", LMin: 8, LMax: 12}); err != nil {
		t.Fatal(err)
	}
	if err := wal.SaveCheckpoint("j1", []byte("frame-1")); err != nil {
		t.Fatal(err)
	}
	// A newer frame replaces the old one atomically.
	if err := wal.SaveCheckpoint("j1", []byte("frame-2")); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil { // idempotent
		t.Fatal(err)
	}

	wal2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := wal2.Recovered()
	if len(rec.Jobs) != 1 || string(rec.Jobs[0].Checkpoint) != "frame-2" {
		t.Fatalf("reopened job carries checkpoint %q, want frame-2", rec.Jobs[0].Checkpoint)
	}
	// The outcome record retires the blob: recovery never resumes a job
	// with a terminal record, so the frame is dead weight.
	if err := wal2.SaveOutcome("j1", StateDone, "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(wal2.ckptPath("j1")); !os.IsNotExist(err) {
		t.Fatalf("checkpoint blob survives the outcome record: %v", err)
	}
	wal2.Close()

	wal3, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer wal3.Close()
	rec = wal3.Recovered()
	if len(rec.Jobs) != 1 || !rec.Jobs[0].Done || rec.Jobs[0].Checkpoint != nil {
		t.Fatalf("after outcome: done=%t ckpt=%v, want terminal stub without a frame",
			rec.Jobs[0].Done, rec.Jobs[0].Checkpoint)
	}
}

// TestWALClosedRejectsWrites: every record type fails once the log is
// closed — silently dropping acknowledged work is the one unforgivable
// direction.
func TestWALClosedRejectsWrites(t *testing.T) {
	wal, err := OpenWAL(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	wal.Close()
	if err := wal.SaveSeries("s", []float64{1, 2}); !errors.Is(err, errWALClosed) {
		t.Fatalf("SaveSeries on closed log: %v", err)
	}
	if err := wal.SaveSubmit("j", JobRequest{}); !errors.Is(err, errWALClosed) {
		t.Fatalf("SaveSubmit on closed log: %v", err)
	}
	if err := wal.SaveOutcome("j", StateDone, "", nil); !errors.Is(err, errWALClosed) {
		t.Fatalf("SaveOutcome on closed log: %v", err)
	}
}

// TestOpenWALBadDir: an unusable data directory is a startup error, not
// a silently in-memory server.
func TestOpenWALBadDir(t *testing.T) {
	if _, err := OpenWAL("/dev/null/not-a-dir"); err == nil {
		t.Fatal("OpenWAL under a non-directory succeeded")
	}
}

// TestClosedStoreSealsStreamAndRejectsSubmits: when the log stops
// accepting writes mid-flight, new work is refused and a stream whose
// chunk could not be persisted is sealed — live state must never get
// ahead of what a restart can rebuild.
func TestClosedStoreSealsStreamAndRejectsSubmits(t *testing.T) {
	wal, err := OpenWAL(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(Config{Store: wal})
	job, err := m.Submit(JobRequest{Kind: KindStream, LMin: 8, LMax: 12, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	chunk := testSeries(50)
	if err := job.AppendStream(chunk); err != nil {
		t.Fatal(err)
	}
	wal.Close()
	err = job.AppendStream(chunk)
	if err == nil || !strings.Contains(err.Error(), "not durable") {
		t.Fatalf("append with closed log: err=%v, want durability failure", err)
	}
	if st := job.Status(); st.State != StateFailed {
		t.Fatalf("stream state=%s, want failed", st.State)
	}
	if err := job.AppendStream(chunk); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("append after seal: err=%v, want ErrStreamClosed", err)
	}
	if _, err := m.Submit(JobRequest{Values: testSeries(600), LMin: 16, LMax: 24}); err == nil {
		t.Fatal("submit with closed log succeeded")
	}
	if _, err := m.UploadSeries(testSeries(700)); err == nil {
		t.Fatal("upload with closed log succeeded")
	}
}

// TestJobEvictionKeepsLiveJobs: above MaxJobs the oldest *terminal* jobs
// are evicted; a live job older than all of them is never touched.
func TestJobEvictionKeepsLiveJobs(t *testing.T) {
	m := NewManager(Config{MaxJobs: 2})
	live, err := m.Submit(JobRequest{Kind: KindStream, LMin: 8, LMax: 12, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	values := testSeries(600)
	var done []*Job
	// Distinct ranges so nothing caches or coalesces.
	for _, lmax := range []int{24, 25, 26} {
		j, err := m.Submit(JobRequest{Values: values, LMin: 16, LMax: lmax, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if st := waitTerminal(t, j); st.State != StateDone {
			t.Fatalf("job lmax=%d: state=%s err=%q", lmax, st.State, st.Error)
		}
		done = append(done, j)
	}
	if _, ok := m.Job(done[0].ID); ok {
		t.Fatal("oldest terminal job survived above MaxJobs")
	}
	if _, ok := m.Job(live.ID); !ok {
		t.Fatal("live stream job was evicted")
	}
	if _, ok := m.Job(done[2].ID); !ok {
		t.Fatal("newest job was evicted")
	}
	live.Cancel()
	waitTerminal(t, live)
}

// TestSeriesEviction: uploads above MaxSeries evict FIFO, and a job
// referencing an evicted series is rejected at submit time.
func TestSeriesEviction(t *testing.T) {
	m := NewManager(Config{MaxSeries: 1})
	s1, err := m.UploadSeries(testSeries(600))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.UploadSeries(testSeries(700)); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Series(s1.ID); ok {
		t.Fatal("series above MaxSeries was retained")
	}
	_, err = m.Submit(JobRequest{SeriesID: s1.ID, LMin: 16, LMax: 24})
	if !errors.Is(err, valmod.ErrBadInput) || !strings.Contains(err.Error(), "series_id") {
		t.Fatalf("submit against evicted series: err=%v, want ErrBadInput naming series_id", err)
	}
}

// TestResultCachePutEdges covers the Put branches the LRU test doesn't:
// overwrite-in-place on an existing key and the disabled (capacity < 1)
// no-op.
func TestResultCachePutEdges(t *testing.T) {
	c := newResultCache(2)
	k := cacheKey{1}
	r1, r2 := &Result{N: 1}, &Result{N: 2}
	c.Put(k, r1)
	c.Put(k, r2) // overwrite, not a second entry
	if got, ok := c.Get(k); !ok || got != r2 {
		t.Fatalf("overwritten key: got=%v ok=%t, want the newer result", got, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("Len=%d after overwrite, want 1", c.Len())
	}
	d := newResultCache(0)
	d.Put(k, r1)
	if _, ok := d.Get(k); ok {
		t.Fatal("disabled cache stored an entry")
	}
}

// TestStreamSubmitErrors covers the stream admission branches: inline
// values rejected, a bad range rejected, queue-full rejected, and a
// submit record the store refuses unwinding the half-created job.
func TestStreamSubmitErrors(t *testing.T) {
	m := NewManager(Config{MaxQueue: 1})
	if _, err := m.Submit(JobRequest{Kind: KindStream, Values: testSeries(50), LMin: 8, LMax: 12}); !errors.Is(err, valmod.ErrBadInput) {
		t.Fatalf("stream with inline values: err=%v, want ErrBadInput", err)
	}
	if _, err := m.Submit(JobRequest{Kind: KindStream, LMin: 2, LMax: 12}); !errors.Is(err, valmod.ErrBadInput) {
		t.Fatalf("stream with lmin=2: err=%v, want ErrBadInput", err)
	}
	open, err := m.Submit(JobRequest{Kind: KindStream, LMin: 8, LMax: 12})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(JobRequest{Kind: KindStream, LMin: 8, LMax: 12}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("stream above MaxQueue: err=%v, want ErrQueueFull", err)
	}
	open.Cancel()
	waitTerminal(t, open)

	wal, err := OpenWAL(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	wal.Close()
	md := NewManager(Config{Store: wal})
	if _, err := md.Submit(JobRequest{Kind: KindStream, LMin: 8, LMax: 12}); !errors.Is(err, errWALClosed) {
		t.Fatalf("stream submit with closed log: err=%v, want the store's error", err)
	}
}

// TestHTTPStatsAndUnknownJob covers the stats endpoint shape and the
// 404 paths for job lookups by the cancel and status handlers.
func TestHTTPStatsAndUnknownJob(t *testing.T) {
	m := NewManager(Config{})
	ts := httptest.NewServer(NewServer(m))
	defer ts.Close()
	client := ts.Client()

	job, err := m.Submit(JobRequest{Values: testSeries(600), LMin: 16, LMax: 24, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, job); st.State != StateDone {
		t.Fatalf("seed job: state=%s err=%q", st.State, st.Error)
	}
	resp, err := client.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decode[Stats](t, resp)
	if stats.EngineRuns != 1 {
		t.Fatalf("stats report %d engine runs, want 1", stats.EngineRuns)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/j_nope", nil)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown job: %d, want 404", resp.StatusCode)
	}
}
