// Package service is the serving layer of the suite: it turns the one-run
// library (valmod.Engine) into a multi-user job system, the piece that
// absorbs the "interactive, repeated analysis" workload the VALMOD demo
// and its MAD follow-up describe.
//
// A Manager owns one base Engine whose pooled scratch every job shares
// (Engine.WithOptions hands each job its own Options and Progress callback
// over the same pools), a counting semaphore that bounds the discoveries
// running at once, and an LRU result cache keyed by series-hash + length
// range + every output-affecting option — Workers is deliberately excluded
// from the key because the engine's fixed-grid contract makes results
// bit-identical at any worker count, so repeated queries on the same data
// are served without engine work regardless of requested parallelism.
//
// Each Job carries its own context (DELETE cancels it, honored between
// lengths, seed blocks, and recompute rounds), an append-only event log of
// per-length progress, and a broadcast channel; Watch replays the log and
// then streams live events, which is what the HTTP layer's SSE endpoint
// consumes. Invariants: a job reaches exactly one terminal state
// (done/failed/canceled), its event log is monotone in Done, and a cached
// result is immutable once stored — handlers serialize it, never mutate it.
//
// NewServer wraps a Manager in the HTTP transport documented in
// docs/api.md; see ARCHITECTURE.md for how the layer sits between the core
// engine and the transports.
package service
