package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	valmod "github.com/seriesmining/valmod"
)

// State is a job's lifecycle position. A job moves queued → running →
// exactly one of done/failed/canceled; cache hits are born done.
type State string

// Job lifecycle states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one SSE payload. For batch jobs it is a per-length progress
// notification: Done/Total mirror valmod.Progress and Length is the
// completed subsequence length. For stream jobs it is a change event:
// Kind names what changed ("best_pair" or "top_discord"), N is the total
// points appended when the change was observed, and exactly one of
// Pair/Discord carries the new value with offsets in global stream
// coordinates. The two shapes share one struct so the wire format of the
// existing progress events is unchanged (the stream fields are omitted
// when empty).
type Event struct {
	Done   int `json:"done,omitempty"`
	Total  int `json:"total,omitempty"`
	Length int `json:"length,omitempty"`

	Kind    string            `json:"kind,omitempty"`
	N       int               `json:"n,omitempty"`
	Pair    *valmod.MotifPair `json:"pair,omitempty"`
	Discord *valmod.Discord   `json:"discord,omitempty"`
}

// Result is the JSON payload of a completed job. ResultOf builds the same
// payload from a direct Discover call, so service results can be compared
// byte-for-byte against library runs.
type Result struct {
	N         int                   `json:"n"`
	LMin      int                   `json:"lmin"`
	LMax      int                   `json:"lmax"`
	Best      *valmod.MotifPair     `json:"best,omitempty"`
	PerLength []valmod.LengthResult `json:"per_length"`
	// Discords carries the exact variable-length discords of a
	// pairs+discords query (JobRequest.Discords > 0); omitted otherwise.
	Discords []valmod.Discord `json:"discords,omitempty"`
	// Plan reports how the engine's per-length planner resolved the run
	// (pruned vs incremental vs from-scratch lengths, carried-state
	// seeds/extensions).
	Plan valmod.PlanStats `json:"plan"`
}

// ResultOf converts a library result into the service's wire result.
func ResultOf(r *valmod.Result) *Result {
	out := &Result{N: r.N, LMin: r.LMin, LMax: r.LMax, PerLength: r.PerLength, Discords: r.Discords, Plan: r.Plan}
	if best, ok := r.BestOverall(); ok {
		out.Best = &best
	}
	return out
}

// Status is a point-in-time snapshot of a job, the body of GET
// /v1/jobs/{id}. Result is present only in state "done". Kind is "stream"
// for streaming jobs, with N the total points appended so far; both are
// omitted for batch discoveries.
type Status struct {
	ID       string  `json:"id"`
	State    State   `json:"state"`
	Done     int     `json:"done"`
	Total    int     `json:"total"`
	Kind     string  `json:"kind,omitempty"`
	N        int     `json:"n,omitempty"`
	CacheHit bool    `json:"cache_hit,omitempty"`
	Error    string  `json:"error,omitempty"`
	Result   *Result `json:"result,omitempty"`
}

// Job is one submitted discovery. All mutable state sits behind mu;
// broadcast via the changed channel wakes every Watch stream after each
// append or state transition.
type Job struct {
	// ID is the job's handle in the HTTP API.
	ID string

	// cancelCtx fires the job's own context: the engine run for a
	// leader, the mirror stream for a follower.
	cancelCtx context.CancelFunc
	// ctxDone observes that context; Submit uses it to refuse coalescing
	// onto a leader whose cancellation has already fired.
	ctxDone <-chan struct{}
	// votes counts submitters attached to a leader (its own plus one per
	// follower). The discovery is only canceled once every one of them
	// has withdrawn, so no client can kill another client's query.
	votes      atomic.Int64
	cancelOnce sync.Once
	// onCancel spends this job's single cancellation vote; Cancel is
	// idempotent (HTTP DELETE retries must not burn a second vote).
	onCancel func()

	// kind is KindStream for streaming jobs, "" for batch discoveries;
	// stream then holds the live engine and change-detection state.
	kind   string
	stream *streamState

	mu       sync.Mutex
	state    State
	events   []Event
	changed  chan struct{}
	err      error
	result   *Result
	cacheHit bool
}

func newJob(id string, cancel context.CancelFunc) *Job {
	j := &Job{
		ID:        id,
		cancelCtx: cancel,
		state:     StateQueued,
		changed:   make(chan struct{}),
	}
	j.votes.Store(1)
	j.onCancel = j.withdrawVote
	return j
}

// withdrawVote removes one submitter; the last one out cancels the run.
func (j *Job) withdrawVote() {
	if j.votes.Add(-1) <= 0 {
		j.cancelCtx()
	}
}

// tryAttach adds a submitter vote only while the count is still positive.
// Once the last vote is spent the job is committed to cancellation (the
// context fires moments later), so attaching then would hand the new
// submitter a cancellation it never issued — the CAS closes that window.
func (j *Job) tryAttach() bool {
	for {
		v := j.votes.Load()
		if v <= 0 {
			return false
		}
		if j.votes.CompareAndSwap(v, v+1) {
			return true
		}
	}
}

// alive reports whether the job can still accept a coalescing submitter:
// not terminal and its cancellation has not already fired (attaching to a
// doomed job would hand the new client a cancellation it never asked for).
func (j *Job) alive() bool {
	if j.ctxDone != nil {
		select {
		case <-j.ctxDone:
			return false
		default:
		}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return !j.state.Terminal()
}

// terminalOutcome reads the final state; call only after Watch closed.
func (j *Job) terminalOutcome() (State, *Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.result, j.err
}

// terminal reports whether the job has reached a final state.
func (j *Job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.Terminal()
}

// broadcastLocked wakes watchers; callers hold mu.
func (j *Job) broadcastLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

func (j *Job) setState(s State) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = s
	j.broadcastLocked()
}

func (j *Job) publish(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append(j.events, e)
	j.broadcastLocked()
}

func (j *Job) finish(res *Result, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	switch {
	case err == nil:
		j.state, j.result = StateDone, res
	case errors.Is(err, context.DeadlineExceeded):
		// A blown deadline is a failure, not a cancellation: nobody asked
		// the job to stop, it ran out of budget. Keeping the two apart
		// gives Status a distinct "deadline exceeded" failure reason.
		j.state, j.err = StateFailed, err
	case errors.Is(err, context.Canceled):
		j.state, j.err = StateCanceled, err
	default:
		j.state, j.err = StateFailed, err
	}
	j.broadcastLocked()
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{ID: j.ID, State: j.state, Kind: j.kind, CacheHit: j.cacheHit}
	if j.stream != nil {
		st.N = int(j.stream.total.Load())
	}
	if n := len(j.events); n > 0 {
		st.Done, st.Total = j.events[n-1].Done, j.events[n-1].Total
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.state == StateDone {
		st.Result = j.result
		if st.Total == 0 && j.result != nil && j.kind == "" {
			// Cache hits carry no events; report the range as fully done.
			// Stream jobs measure progress in points (N), not lengths.
			st.Done = j.result.LMax - j.result.LMin + 1
			st.Total = st.Done
		}
	}
	return st
}

// Cancel withdraws this job's cancellation vote: a leader's own vote, or
// — for a job coalesced onto a leader — this follower's vote on the
// shared discovery. Idempotent: repeated calls (HTTP DELETE retries)
// spend the vote once.
func (j *Job) Cancel() {
	j.cancelOnce.Do(j.onCancel)
}

// forceCancel stops the job unconditionally (manager shutdown).
func (j *Job) forceCancel() { j.cancelCtx() }

// Watch returns a channel that replays the job's recorded progress events
// and then streams live ones. The channel closes once the job reaches a
// terminal state (after all events are delivered) or when ctx is done.
func (j *Job) Watch(ctx context.Context) <-chan Event {
	out := make(chan Event)
	go func() {
		defer close(out)
		next := 0
		for {
			j.mu.Lock()
			batch := make([]Event, len(j.events)-next)
			copy(batch, j.events[next:])
			next = len(j.events)
			terminal := j.state.Terminal()
			changed := j.changed
			j.mu.Unlock()
			for _, e := range batch {
				select {
				case out <- e:
				case <-ctx.Done():
					return
				}
			}
			if terminal {
				return
			}
			select {
			case <-changed:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}
