package service

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"testing"

	valmod "github.com/seriesmining/valmod"
)

func TestResultKeyNormalizesDefaults(t *testing.T) {
	h := hashSeries([]float64{1, 2, 3})
	zero := resultKey(h, 8, 16, valmod.Options{})
	explicit := resultKey(h, 8, 16, valmod.Options{TopK: 10, P: 10, ExclusionFactor: 4, RecomputeFraction: 0.05})
	if zero != explicit {
		t.Error("explicit defaults should share the zero value's cache key")
	}
}

func TestResultKeySensitivity(t *testing.T) {
	h := hashSeries([]float64{1, 2, 3})
	base := resultKey(h, 8, 16, valmod.Options{})
	diff := map[string]cacheKey{
		"series": resultKey(hashSeries([]float64{1, 2, 4}), 8, 16, valmod.Options{}),
		"lmin":   resultKey(h, 9, 16, valmod.Options{}),
		"lmax":   resultKey(h, 8, 17, valmod.Options{}),
		"TopK":   resultKey(h, 8, 16, valmod.Options{TopK: 5}),
		"P":      resultKey(h, 8, 16, valmod.Options{P: 20}),
		"Excl":   resultKey(h, 8, 16, valmod.Options{ExclusionFactor: 2}),
		"RF":     resultKey(h, 8, 16, valmod.Options{RecomputeFraction: 0.5}),
		"Prune":  resultKey(h, 8, 16, valmod.Options{DisablePruning: true}),
		"Skip":   resultKey(h, 8, 16, valmod.Options{LengthSkip: true}),
		"Stride": resultKey(h, 8, 16, valmod.Options{LengthStride: 4}),
		"Radius": resultKey(h, 8, 16, valmod.Options{RefineRadius: 2}),
		"Strict": resultKey(h, 8, 16, valmod.Options{Strict: true}),
		"C32":    resultKey(h, 8, 16, valmod.Options{Carry32: true}),
	}
	for name, k := range diff {
		if k == base {
			t.Errorf("%s change should change the cache key", name)
		}
	}
	// Workers never changes the output, so it must not change the key.
	if resultKey(h, 8, 16, valmod.Options{Workers: 7}) != base {
		t.Error("Workers must be excluded from the cache key")
	}
}

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	k := func(i int) cacheKey { return resultKey(hashSeries([]float64{float64(i)}), 8, 16, valmod.Options{}) }
	r1, r2, r3 := &Result{N: 1}, &Result{N: 2}, &Result{N: 3}
	c.Put(k(1), r1)
	c.Put(k(2), r2)
	if got, ok := c.Get(k(1)); !ok || got != r1 {
		t.Fatal("k1 should be cached")
	}
	c.Put(k(3), r3) // k2 is now least recently used → evicted
	if _, ok := c.Get(k(2)); ok {
		t.Error("k2 should have been evicted")
	}
	if _, ok := c.Get(k(1)); !ok {
		t.Error("k1 was promoted by Get and should survive")
	}
	if c.Len() != 2 {
		t.Errorf("Len=%d, want 2", c.Len())
	}
}

// TestHashSeriesChunking pins the chunked encoder to the per-sample
// reference digest across chunk-boundary sizes.
func TestHashSeriesChunking(t *testing.T) {
	reference := func(values []float64) [sha256.Size]byte {
		h := sha256.New()
		var b [8]byte
		for _, v := range values {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			h.Write(b[:])
		}
		var out [sha256.Size]byte
		h.Sum(out[:0])
		return out
	}
	for _, n := range []int{0, 1, 511, 512, 513, 1025} {
		values := make([]float64, n)
		for i := range values {
			values[i] = math.Sqrt(float64(i)) - 3
		}
		if hashSeries(values) != reference(values) {
			t.Errorf("n=%d: chunked digest diverges from per-sample reference", n)
		}
	}
}

func TestResultCacheDisabled(t *testing.T) {
	c := newResultCache(-1)
	k := resultKey(hashSeries([]float64{1}), 8, 16, valmod.Options{})
	c.Put(k, &Result{})
	if _, ok := c.Get(k); ok {
		t.Error("disabled cache must always miss")
	}
}
