package service

import (
	"testing"

	valmod "github.com/seriesmining/valmod"
)

// TestDiscordJobs covers the pairs+discords query kind end to end at the
// manager layer: the service result must be byte-identical to a direct
// library run with discords enabled, and the discord knob must separate
// cache entries — a pairs-only result can never answer a discords query
// (or vice versa), since their payloads and per-length stats differ.
func TestDiscordJobs(t *testing.T) {
	m := NewManager(Config{})
	values := testSeries(700)
	// A spike makes the top discord unambiguous.
	values[350] += 20

	plain := JobRequest{Values: values, LMin: 16, LMax: 28, TopK: 3, Workers: 1}
	withDiscords := plain
	withDiscords.Discords = 3

	j1, err := m.Submit(plain)
	if err != nil {
		t.Fatal(err)
	}
	st1 := waitTerminal(t, j1)
	if st1.State != StateDone {
		t.Fatalf("pairs job: state=%s err=%q", st1.State, st1.Error)
	}
	if len(st1.Result.Discords) != 0 {
		t.Fatalf("pairs-only result carries %d discords", len(st1.Result.Discords))
	}

	// Identical series and range but Discords set: must MISS the cache
	// and run the engine again.
	j2, err := m.Submit(withDiscords)
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitTerminal(t, j2)
	if st2.State != StateDone {
		t.Fatalf("discord job: state=%s err=%q", st2.State, st2.Error)
	}
	if st2.CacheHit {
		t.Fatal("discord query answered from the pairs-only cache entry")
	}
	if len(st2.Result.Discords) == 0 {
		t.Fatal("discord job returned no discords")
	}
	direct, err := valmod.Discover(values, withDiscords.LMin, withDiscords.LMax, withDiscords.options())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mustJSON(t, st2.Result), mustJSON(t, ResultOf(direct)); got != want {
		t.Fatalf("discord service result differs from direct Discover\n got %s\nwant %s", got, want)
	}

	// Resubmitting the discord query hits its own cache entry.
	j3, err := m.Submit(withDiscords)
	if err != nil {
		t.Fatal(err)
	}
	st3 := j3.Status()
	if st3.State != StateDone || !st3.CacheHit {
		t.Fatalf("repeat discord query: state=%s cacheHit=%v, want done from cache", st3.State, st3.CacheHit)
	}
	if got, want := mustJSON(t, st3.Result), mustJSON(t, st2.Result); got != want {
		t.Fatal("cached discord result differs from the first run")
	}
	// …and the pairs-only entry is still alive alongside it.
	j4, err := m.Submit(plain)
	if err != nil {
		t.Fatal(err)
	}
	if st4 := j4.Status(); st4.State != StateDone || !st4.CacheHit {
		t.Fatalf("pairs-only query lost its cache entry: state=%s cacheHit=%v", st4.State, st4.CacheHit)
	}
	if runs := m.Stats().EngineRuns; runs != 2 {
		t.Errorf("EngineRuns=%d, want 2 (one per query kind)", runs)
	}

	// A negative discord count is rejected synchronously, naming the field.
	bad := plain
	bad.Discords = -1
	if _, err := m.Submit(bad); err == nil {
		t.Error("negative discords accepted")
	}
}
