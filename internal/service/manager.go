package service

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	valmod "github.com/seriesmining/valmod"
)

// Config sizes a Manager. Zero fields select the defaults.
type Config struct {
	// MaxConcurrent bounds the discoveries running at once; further
	// submissions queue (default 2).
	MaxConcurrent int
	// CacheEntries is the LRU result-cache capacity (default 64; negative
	// disables the cache).
	CacheEntries int
	// MaxJobs bounds retained jobs; the oldest terminal jobs are evicted
	// first (default 256).
	MaxJobs int
	// MaxSeries bounds uploaded series retained for reference by later
	// jobs; the oldest are evicted first (default 64).
	MaxSeries int
	// MaxBodyBytes caps HTTP request bodies (default 64 MiB; negative
	// disables the cap). Applied by the transport before decoding, so an
	// oversized upload is rejected without materializing it.
	MaxBodyBytes int64
	// MaxQueue bounds live jobs — queued, running, and coalesced
	// followers alike (each holds goroutines and event state);
	// submissions beyond it are rejected with ErrQueueFull rather than
	// accumulated without bound (default 64). Cache hits don't count —
	// they are born terminal and never occupy a slot.
	MaxQueue int
	// Store, when non-nil, makes the manager durable: series uploads,
	// submissions, stream appends, engine checkpoints, and terminal
	// outcomes are persisted through it, and Manager.Recover replays them
	// after a restart. nil keeps everything in memory (the pre-WAL
	// behavior).
	Store Store
	// MaxJobSeconds caps every discover job's executing wall-clock time
	// (measured from when the job acquires an engine slot, so queue wait
	// is not billed). It bounds client-supplied timeout_sec from above; a
	// job that runs past its budget fails with a "deadline exceeded"
	// reason. 0 means no server-side cap. Stream jobs are exempt: they
	// hold no engine slot between appends.
	MaxJobSeconds int
	// CheckpointEvery sets the checkpoint cadence for durable discover
	// jobs in completed lengths (default 8). A checkpoint serializes the
	// engine's full carried state — dominated by the hot-row cache, tens
	// of MB on jobs big enough to fill it — so per-length checkpointing
	// is usually I/O-bound; raise the cadence to trade recovery
	// granularity for throughput, lower it (1 = every length) when
	// restarts must lose almost nothing. Ignored without a Store.
	CheckpointEvery int
}

func (c *Config) fill() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 64
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 256
	}
	if c.MaxSeries <= 0 {
		c.MaxSeries = 64
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 8
	}
}

// ErrQueueFull is returned by Submit when MaxQueue live jobs already
// exist; the HTTP layer maps it to 429.
var ErrQueueFull = errors.New("service: job queue full, retry later")

// JobRequest is one discovery submission: a series (inline values or a
// reference to an uploaded one), the length range, and the engine options.
// Zero option fields select the library defaults. A positive Discords
// changes the query kind from pairs-only to pairs+discords: the result
// additionally carries the exact variable-length discords, and the
// submission is cached and coalesced separately from pairs-only queries.
type JobRequest struct {
	// Kind selects the job shape: "" or "discover" is a batch discovery;
	// KindStream ("stream") opens a live stream job fed through POST
	// /v1/jobs/{id}/append (no values/series_id at submit time).
	Kind     string    `json:"kind,omitempty"`
	Values   []float64 `json:"values,omitempty"`
	SeriesID string    `json:"series_id,omitempty"`
	LMin     int       `json:"lmin"`
	LMax     int       `json:"lmax"`
	// WindowCap bounds a stream job to the trailing WindowCap points
	// (sliding-window mode); 0 keeps everything. Ignored by batch jobs.
	WindowCap         int     `json:"window_cap,omitempty"`
	TopK              int     `json:"topk,omitempty"`
	P                 int     `json:"p,omitempty"`
	ExclusionFactor   int     `json:"exclusion_factor,omitempty"`
	RecomputeFraction float64 `json:"recompute_fraction,omitempty"`
	Discords          int     `json:"discords,omitempty"`
	Workers           int     `json:"workers,omitempty"`
	// DisableIncremental forces from-scratch whole-profile passes (the
	// incremental-engine ablation); results are cached separately since
	// the reported plan stats differ.
	DisableIncremental bool `json:"disable_incremental,omitempty"`
	// LengthSkip, LengthStride, RefineRadius, Strict and Carry32 select
	// the coarse-to-fine plan on pairs+discords queries (see
	// valmod.Options); each is part of the cache key since every one can
	// change the reported result.
	LengthSkip   bool `json:"length_skip,omitempty"`
	LengthStride int  `json:"length_stride,omitempty"`
	RefineRadius int  `json:"refine_radius,omitempty"`
	Strict       bool `json:"strict,omitempty"`
	Carry32      bool `json:"carry32,omitempty"`
	// TimeoutSec caps this job's executing wall-clock time in seconds;
	// the server's MaxJobSeconds bounds it from above (the effective
	// budget is the smaller of the two). A job that exceeds it fails with
	// a "deadline exceeded" reason — failed, not canceled, because nobody
	// asked for it to stop. 0 leaves only the server cap. Excluded from
	// the cache key: a submission answered from the cache or coalesced
	// onto an identical running job does no work of its own to bound (a
	// coalesced follower shares the leader's budget). Ignored by stream
	// jobs. After a crash and restart the budget starts over — it bounds
	// one execution attempt, not the job's lifetime.
	TimeoutSec int `json:"timeout_sec,omitempty"`
}

// options maps the request's engine knobs onto valmod.Options.
func (r JobRequest) options() valmod.Options {
	return valmod.Options{
		TopK:               r.TopK,
		P:                  r.P,
		ExclusionFactor:    r.ExclusionFactor,
		RecomputeFraction:  r.RecomputeFraction,
		Discords:           r.Discords,
		Workers:            r.Workers,
		DisableIncremental: r.DisableIncremental,
		LengthSkip:         r.LengthSkip,
		LengthStride:       r.LengthStride,
		RefineRadius:       r.RefineRadius,
		Strict:             r.Strict,
		Carry32:            r.Carry32,
	}
}

// SeriesInfo describes one uploaded series.
type SeriesInfo struct {
	ID string `json:"id"`
	N  int    `json:"n"`
}

type storedSeries struct {
	values []float64
	hash   [sha256.Size]byte
}

// Stats counts the manager's work, primarily so tests (and operators) can
// tell cache hits from engine runs.
type Stats struct {
	// EngineRuns counts discoveries actually executed by the engine.
	EngineRuns int64 `json:"engine_runs"`
	// CacheHits counts submissions answered from the result cache.
	CacheHits int64 `json:"cache_hits"`
	// CacheMisses counts submissions that had to run (or queue).
	CacheMisses int64 `json:"cache_misses"`
	// Coalesced counts submissions attached to an identical in-flight job.
	Coalesced int64 `json:"coalesced"`
	// Plan aggregates the engine's per-length plan stats over every
	// executed run (cache hits and coalesced followers add nothing: no
	// engine work happened for them).
	Plan PlanTotals `json:"plan"`
}

// PlanTotals aggregates valmod.PlanStats across runs.
type PlanTotals struct {
	PrunedLengths      int64 `json:"pruned_lengths"`
	IncrementalLengths int64 `json:"incremental_lengths"`
	RecomputeLengths   int64 `json:"recompute_lengths"`
	SkippedLengths     int64 `json:"skipped_lengths"`
	HeadSeeds          int64 `json:"head_seeds"`
	HeadExtensions     int64 `json:"head_extensions"`
	LBSkippedLengths   int64 `json:"lb_skipped_lengths"`
	StrideScanned      int64 `json:"stride_scanned"`
	RefinedLengths     int64 `json:"refined_lengths"`
}

// Manager owns the serving state: the shared base engine, the concurrency
// semaphore, the result cache, and the job and series tables.
type Manager struct {
	cfg   Config
	base  *valmod.Engine // jobs run via base.WithOptions → shared pools
	sem   chan struct{}
	cache *resultCache
	store Store // nil = in-memory only
	// draining marks a shutdown in progress: jobs canceled while it is
	// set get no terminal record in the store, so recovery re-queues them
	// (a drain interruption is not an outcome the client asked for).
	draining atomic.Bool

	engineRuns  atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	coalesced   atomic.Int64

	planPruned      atomic.Int64
	planIncremental atomic.Int64
	planRecompute   atomic.Int64
	planSkipped     atomic.Int64
	planHeadSeeds   atomic.Int64
	planHeadExtends atomic.Int64
	planLBSkipped   atomic.Int64
	planStrideScan  atomic.Int64
	planRefined     atomic.Int64

	mu          sync.Mutex
	jobs        map[string]*Job
	jobOrder    []string // insertion order, drives terminal-first eviction
	inflight    map[cacheKey]*Job
	liveJobs    int // queued + running, bounded by cfg.MaxQueue
	series      map[string]*storedSeries
	seriesOrder []string
}

// NewManager returns a ready Manager.
func NewManager(cfg Config) *Manager {
	cfg.fill()
	return &Manager{
		cfg:      cfg,
		base:     valmod.NewEngine(valmod.Options{}),
		sem:      make(chan struct{}, cfg.MaxConcurrent),
		cache:    newResultCache(cfg.CacheEntries),
		store:    cfg.Store,
		jobs:     make(map[string]*Job),
		inflight: make(map[cacheKey]*Job),
		series:   make(map[string]*storedSeries),
	}
}

// Stats snapshots the counters.
func (m *Manager) Stats() Stats {
	return Stats{
		EngineRuns:  m.engineRuns.Load(),
		CacheHits:   m.cacheHits.Load(),
		CacheMisses: m.cacheMisses.Load(),
		Coalesced:   m.coalesced.Load(),
		Plan: PlanTotals{
			PrunedLengths:      m.planPruned.Load(),
			IncrementalLengths: m.planIncremental.Load(),
			RecomputeLengths:   m.planRecompute.Load(),
			SkippedLengths:     m.planSkipped.Load(),
			HeadSeeds:          m.planHeadSeeds.Load(),
			HeadExtensions:     m.planHeadExtends.Load(),
			LBSkippedLengths:   m.planLBSkipped.Load(),
			StrideScanned:      m.planStrideScan.Load(),
			RefinedLengths:     m.planRefined.Load(),
		},
	}
}

// newID returns a fresh random handle with the given prefix. A failing
// entropy source is reported as an error — it fails the one submission
// that hit it instead of taking the whole process down.
func newID(prefix string) (string, error) {
	var b [9]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("service: generate id: %w", err)
	}
	return prefix + hex.EncodeToString(b[:]), nil
}

// UploadSeries stores values for reference by later jobs and returns its
// handle. The data is validated here (non-empty, all finite) so bad
// series are rejected at the point they enter rather than failing every
// job that references them, and hashed once so jobs referencing it skip
// the per-submission hash.
func (m *Manager) UploadSeries(values []float64) (SeriesInfo, error) {
	if err := valmod.ValidateSeries(values); err != nil {
		return SeriesInfo{}, err
	}
	s := &storedSeries{values: values, hash: hashSeries(values)}
	id, err := newID("s_")
	if err != nil {
		return SeriesInfo{}, err
	}
	// Durable before visible: once a job can reference the ID, a restart
	// must be able to resolve it.
	if m.store != nil {
		if err := m.store.SaveSeries(id, values); err != nil {
			return SeriesInfo{}, fmt.Errorf("service: persist series: %w", err)
		}
	}
	m.insertSeries(id, s)
	return SeriesInfo{ID: id, N: len(values)}, nil
}

// insertSeries adds a validated series under id, applying the retention
// cap. Shared by UploadSeries and recovery replay.
func (m *Manager) insertSeries(id string, s *storedSeries) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.series[id] = s
	m.seriesOrder = append(m.seriesOrder, id)
	for len(m.seriesOrder) > m.cfg.MaxSeries {
		evict := m.seriesOrder[0]
		m.seriesOrder = m.seriesOrder[1:]
		delete(m.series, evict)
	}
}

// Series returns the metadata of an uploaded series.
func (m *Manager) Series(id string) (SeriesInfo, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.series[id]
	if !ok {
		return SeriesInfo{}, false
	}
	return SeriesInfo{ID: id, N: len(s.values)}, true
}

// Submit validates the request synchronously (errors wrap
// valmod.ErrBadInput) and returns the job. On a cache hit the job is
// already done. A submission identical to one still in flight coalesces
// onto the running job — the returned job (and its ID, progress, and
// cancellation) is shared. Otherwise a fresh job is queued and runs as
// soon as the semaphore admits it.
func (m *Manager) Submit(req JobRequest) (*Job, error) {
	var values []float64
	var hash [sha256.Size]byte
	if req.TimeoutSec < 0 {
		return nil, fmt.Errorf("%w: timeout_sec=%d: must be >= 0 (0 leaves only the server cap)", valmod.ErrBadInput, req.TimeoutSec)
	}
	opts := req.options()
	switch req.Kind {
	case "", "discover":
	case KindStream:
		// Stream jobs bypass the cache and coalescing (each stream is its
		// own mutable state, never shareable) but count toward MaxQueue.
		// WindowCap only reaches the engine here: batch discoveries ignore
		// it, and keeping it out of their options keeps the cache key
		// insensitive to a field that cannot change a batch result.
		opts.WindowCap = req.WindowCap
		return m.submitStream(req, opts)
	default:
		return nil, fmt.Errorf("%w: kind=%q: want \"discover\" or \"stream\"", valmod.ErrBadInput, req.Kind)
	}
	switch {
	case req.SeriesID != "" && req.Values != nil:
		return nil, fmt.Errorf("%w: values/series_id: give one, not both", valmod.ErrBadInput)
	case req.SeriesID != "":
		m.mu.Lock()
		s, ok := m.series[req.SeriesID]
		m.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("%w: series_id=%q: unknown series", valmod.ErrBadInput, req.SeriesID)
		}
		values, hash = s.values, s.hash
		// The series was scanned at upload time; only the query needs
		// checking — keeps the submit path O(1) in the series length.
		if err := valmod.ValidateQuery(len(values), req.LMin, req.LMax, opts); err != nil {
			return nil, err
		}
	default:
		if err := valmod.Validate(req.Values, req.LMin, req.LMax, opts); err != nil {
			return nil, err
		}
		values, hash = req.Values, hashSeries(req.Values)
	}

	key := resultKey(hash, req.LMin, req.LMax, opts)
	if res, ok := m.cache.Get(key); ok {
		return m.cachedJob(res)
	}
	// The ID is minted before the lock (either branch below uses it) and
	// the submission record is written after it: disk I/O never runs
	// under m.mu.
	id, err := newID("j_")
	if err != nil {
		return nil, err
	}

	m.mu.Lock()
	if leader, ok := m.inflight[key]; ok && leader.alive() {
		// Single-flight: instead of running the discovery twice, hand the
		// caller a follower job that mirrors the leader's progress and
		// result under its own ID. Its Cancel withdraws only this
		// submitter's vote, so clients of a shared discovery stay
		// isolated from each other's cancellations. Followers hold a
		// goroutine and a mirrored event log, so they occupy queue slots
		// like any other live job; the attach is a CAS that refuses
		// leaders whose last vote is already spent.
		if m.liveJobs >= m.cfg.MaxQueue {
			m.mu.Unlock()
			return nil, ErrQueueFull
		}
		if leader.tryAttach() {
			m.liveJobs++
			fctx, fcancel := context.WithCancel(context.Background())
			follower := newJob(id, fcancel)
			follower.ctxDone = fctx.Done()
			follower.onCancel = func() {
				fcancel()
				leader.withdrawVote()
			}
			m.registerJobLocked(follower)
			m.mu.Unlock()
			if err := m.persistSubmit(id, req); err != nil {
				leader.withdrawVote()
				fcancel()
				follower.finish(nil, err)
				m.mu.Lock()
				m.liveJobs--
				m.mu.Unlock()
				return nil, err
			}
			m.coalesced.Add(1)
			go m.follow(fctx, follower, leader)
			return follower, nil
		}
	}
	// Re-check the cache under the lock: an identical leader may have
	// finished (Put + inflight cleared) since the lock-free Get above.
	if res, ok := m.cache.Get(key); ok {
		m.mu.Unlock()
		return m.cachedJob(res)
	}
	if m.liveJobs >= m.cfg.MaxQueue {
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	ctx, cancel := context.WithCancel(context.Background())
	job := newJob(id, cancel)
	job.ctxDone = ctx.Done()
	m.liveJobs++
	m.inflight[key] = job
	m.registerJobLocked(job)
	m.mu.Unlock()
	if err := m.persistSubmit(id, req); err != nil {
		cancel()
		job.finish(nil, err)
		m.clearInflight(key, job)
		return nil, err
	}
	m.cacheMisses.Add(1)

	go m.run(ctx, job, key, values, req.LMin, req.LMax, opts, req.TimeoutSec, nil)
	return job, nil
}

// persistSubmit records an accepted submission before its goroutine
// starts. A store failure rejects the submission — running a job a
// restart would silently forget is worse than making the client retry.
func (m *Manager) persistSubmit(id string, req JobRequest) error {
	if m.store == nil {
		return nil
	}
	if err := m.store.SaveSubmit(id, req); err != nil {
		return fmt.Errorf("service: persist submission: %w", err)
	}
	return nil
}

// follow mirrors a leader onto a follower job: the running transition and
// progress events are re-published under the follower's ID, and the
// leader's terminal outcome becomes the follower's. A canceled follower
// stops mirroring without touching the leader (its vote withdrawal
// happens in onCancel).
func (m *Manager) follow(fctx context.Context, follower, leader *Job) {
	defer func() {
		m.mu.Lock()
		m.liveJobs--
		m.mu.Unlock()
	}()
	defer follower.cancelCtx()
	defer m.persistOutcome(follower)
	defer guardJob(follower)
	next := 0
	running := false
	for {
		leader.mu.Lock()
		batch := make([]Event, len(leader.events)-next)
		copy(batch, leader.events[next:])
		next = len(leader.events)
		state := leader.state
		changed := leader.changed
		leader.mu.Unlock()

		if !running && state == StateRunning {
			follower.setState(StateRunning)
			running = true
		}
		for _, e := range batch {
			follower.publish(e)
		}
		if state.Terminal() {
			break
		}
		select {
		case <-changed:
		case <-fctx.Done():
			follower.finish(nil, context.Canceled)
			return
		}
	}
	switch state, res, err := leader.terminalOutcome(); state {
	case StateDone:
		follower.finish(res, nil)
	case StateCanceled:
		follower.finish(nil, context.Canceled)
	default:
		if err == nil {
			err = errors.New("service: upstream job failed")
		}
		follower.finish(nil, err)
	}
}

// cachedJob registers and returns a job born done with a cached result.
// Cache-hit jobs are not persisted: they did no work, and after a restart
// an identical submission hits the cache or runs again.
func (m *Manager) cachedJob(res *Result) (*Job, error) {
	id, err := newID("j_")
	if err != nil {
		return nil, err
	}
	m.cacheHits.Add(1)
	job := newJob(id, func() {})
	job.cacheHit = true
	job.state = StateDone
	job.result = res
	m.mu.Lock()
	m.registerJobLocked(job)
	m.mu.Unlock()
	return job, nil
}

// run executes one job: wait for a slot, run the engine with a per-job
// progress callback (checkpointing through the store when one is
// configured), store the result in the cache, finish the job. resume,
// when non-nil, is a checkpoint blob from a previous process — the run
// continues from it, falling back to a from-scratch run if the blob
// doesn't validate (determinism makes the fallback equally exact).
func (m *Manager) run(ctx context.Context, job *Job, key cacheKey, values []float64, lmin, lmax int, opts valmod.Options, timeoutSec int, resume []byte) {
	// Registered first so it runs last: by the time the in-flight slot
	// clears, the job is terminal and (on success) the result is cached,
	// so a concurrent identical Submit finds either this job or the cache.
	defer m.clearInflight(key, job)
	defer job.cancelCtx() // release the context's resources
	defer m.persistOutcome(job)
	defer guardJob(job)
	select {
	case m.sem <- struct{}{}:
		defer func() { <-m.sem }()
	case <-ctx.Done():
		job.finish(nil, ctx.Err())
		return
	}
	job.setState(StateRunning)

	// The wall-clock budget starts when the job starts executing, not
	// while it waits in the queue (a queue wait bounded by other jobs'
	// budgets is not this job's fault).
	budget := effectiveTimeout(timeoutSec, m.cfg.MaxJobSeconds)
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}

	// Clamp client-supplied parallelism to the machine: each engine worker
	// clones O(n) FFT scratch, so an unbounded request could multiply
	// memory and oversubscribe every core MaxConcurrent is meant to
	// protect. Sound because Workers never changes the output (it is
	// excluded from the cache key for the same reason).
	if limit := runtime.GOMAXPROCS(0); opts.Workers <= 0 || opts.Workers > limit {
		opts.Workers = limit
	}

	opts.Progress = func(p valmod.Progress) {
		job.publish(Event{Done: p.Done, Total: p.Total, Length: p.Result.Length})
	}
	if m.store != nil {
		opts.CheckpointEvery = m.cfg.CheckpointEvery
		opts.Checkpoint = func(b []byte) error {
			return m.store.SaveCheckpoint(job.ID, b)
		}
	}
	m.engineRuns.Add(1)
	eng := m.base.WithOptions(opts)
	var res *valmod.Result
	var err error
	if resume != nil {
		res, err = eng.DiscoverResume(ctx, values, lmin, lmax, resume)
		if errors.Is(err, valmod.ErrBadCheckpoint) {
			// Stale or corrupt checkpoint: the from-scratch re-run is a
			// byte-identical substitute under the determinism contract.
			res, err = eng.DiscoverContext(ctx, values, lmin, lmax)
		}
	} else {
		res, err = eng.DiscoverContext(ctx, values, lmin, lmax)
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			err = fmt.Errorf("deadline exceeded: job ran past its %v wall-clock budget: %w", budget, err)
		}
		job.finish(nil, err)
		return
	}
	m.planPruned.Add(int64(res.Plan.PrunedLengths))
	m.planIncremental.Add(int64(res.Plan.IncrementalLengths))
	m.planRecompute.Add(int64(res.Plan.RecomputeLengths))
	m.planSkipped.Add(int64(res.Plan.SkippedLengths))
	m.planHeadSeeds.Add(int64(res.Plan.HeadSeeds))
	m.planHeadExtends.Add(int64(res.Plan.HeadExtensions))
	m.planLBSkipped.Add(int64(res.Plan.LBSkippedLengths))
	m.planStrideScan.Add(int64(res.Plan.StrideScanned))
	m.planRefined.Add(int64(res.Plan.RefinedLengths))
	out := ResultOf(res)
	m.cache.Put(key, out)
	job.finish(out, nil)
}

// clearInflight releases the single-flight slot job holds for key and
// returns its live-queue slot.
func (m *Manager) clearInflight(key cacheKey, job *Job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.inflight[key] == job {
		delete(m.inflight, key)
	}
	m.liveJobs--
}

// registerJobLocked adds the job to the table, evicting the oldest
// terminal jobs above the retention cap. Live jobs are never evicted.
// Callers hold m.mu.
func (m *Manager) registerJobLocked(job *Job) {
	m.jobs[job.ID] = job
	m.jobOrder = append(m.jobOrder, job.ID)
	if len(m.jobOrder) <= m.cfg.MaxJobs {
		return
	}
	kept := m.jobOrder[:0]
	excess := len(m.jobOrder) - m.cfg.MaxJobs
	for _, id := range m.jobOrder {
		if excess > 0 {
			if j, ok := m.jobs[id]; ok && j.terminal() {
				delete(m.jobs, id)
				excess--
				continue
			}
		}
		kept = append(kept, id)
	}
	m.jobOrder = kept
}

// Job looks a job up by ID.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Cancel withdraws one submitter from a job by ID (the job stops once
// every attached submitter has canceled); it reports whether the ID was
// known.
func (m *Manager) Cancel(id string) bool {
	j, ok := m.Job(id)
	if ok {
		j.Cancel()
	}
	return ok
}

// Shutdown force-cancels every live job (ignoring cancellation votes) so
// the process can exit promptly. The manager remains usable, but a
// serving process calls this only on its way down. With a Store
// configured the shutdown is checkpoint-aware: jobs interrupted by the
// drain get no terminal record (their last durable checkpoint stays on
// disk), so the next process re-queues and resumes them instead of
// reporting them canceled.
func (m *Manager) Shutdown() {
	m.draining.Store(true)
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	for _, j := range jobs {
		j.forceCancel()
	}
}

// persistOutcome tees a job's terminal state through the store. Failures
// are swallowed: the in-memory job is already terminal and correct, and
// the worst consequence of a lost outcome record is a redundant re-run
// after the next restart. Drain cancellations are deliberately not
// persisted — see Shutdown.
func (m *Manager) persistOutcome(job *Job) {
	if m.store == nil {
		return
	}
	state, res, err := job.terminalOutcome()
	if !state.Terminal() {
		return
	}
	if state == StateCanceled && m.draining.Load() {
		return
	}
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	if state != StateDone {
		res = nil
	}
	_ = m.store.SaveOutcome(job.ID, state, msg, res)
}

// guardJob converts a panic on a job goroutine into that job's failure,
// stack attached, so one poisoned input cannot take down the process or
// any other job. Deferred last in m.run/m.follow so it runs before the
// outcome is persisted.
func guardJob(job *Job) {
	if r := recover(); r != nil {
		job.finish(nil, fmt.Errorf("service: job panicked: %v\n%s", r, debug.Stack()))
	}
}

// effectiveTimeout combines the client's timeout_sec with the server's
// MaxJobSeconds cap: the smaller positive one wins; zero means no bound
// from that side.
func effectiveTimeout(reqSec, capSec int) time.Duration {
	sec := reqSec
	if capSec > 0 && (sec == 0 || capSec < sec) {
		sec = capSec
	}
	return time.Duration(sec) * time.Second
}
