package service

import (
	"context"
	"testing"
)

// TestJobTryAttachAfterLastVote pins the race closure: once the last
// cancellation vote is spent the job is committed to cancellation, and no
// new submitter may attach — even in the instant before the context
// visibly fires.
func TestJobTryAttachAfterLastVote(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	j := newJob("j_x", cancel)
	j.ctxDone = ctx.Done()
	if !j.tryAttach() {
		t.Fatal("attach to a live job should succeed")
	}
	j.Cancel() // spends the original submitter's vote (idempotent)
	j.Cancel()
	if got := j.votes.Load(); got != 1 {
		t.Fatalf("votes=%d after one submitter canceled twice, want 1", got)
	}
	j.withdrawVote() // the attached submitter leaves: votes hit zero
	if j.tryAttach() {
		t.Fatal("attach must fail once the last vote is spent")
	}
	select {
	case <-ctx.Done():
	default:
		t.Fatal("context should have fired with the last vote")
	}
}
