//go:build faultinject

package faultinject

import (
	"fmt"
	"sync"
)

// mode is what an armed point does when it fires.
type mode int

const (
	modeError mode = iota
	modePanic
)

type arming struct {
	nth  int // fire on the nth Hit (1-based)
	hits int
	mode mode
	err  error
}

var (
	mu     sync.Mutex
	points = map[string]*arming{}
)

// Reset disarms every point and zeroes every counter. Call from each test
// before arming.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = map[string]*arming{}
}

// ArmError makes point's nth Hit return err (subsequent hits pass).
func ArmError(point string, nth int, err error) {
	mu.Lock()
	defer mu.Unlock()
	points[point] = &arming{nth: nth, mode: modeError, err: err}
}

// ArmPanic makes point's nth Hit panic (subsequent hits pass).
func ArmPanic(point string, nth int) {
	mu.Lock()
	defer mu.Unlock()
	points[point] = &arming{nth: nth, mode: modePanic}
}

// Hits returns how many times point has been hit since it was armed.
func Hits(point string) int {
	mu.Lock()
	defer mu.Unlock()
	if a := points[point]; a != nil {
		return a.hits
	}
	return 0
}

// Hit marks an injection point: it counts the call and, at the armed nth
// hit, panics or returns the armed error. Disarmed points return nil.
func Hit(point string) error {
	mu.Lock()
	a := points[point]
	if a == nil {
		mu.Unlock()
		return nil
	}
	a.hits++
	fire := a.hits == a.nth
	m, err := a.mode, a.err
	mu.Unlock()
	if !fire {
		return nil
	}
	if m == modePanic {
		panic(fmt.Sprintf("faultinject: injected panic at %s (hit %d)", point, a.nth))
	}
	if err == nil {
		err = fmt.Errorf("faultinject: injected error at %s (hit %d)", point, a.nth)
	}
	return err
}
