// Package faultinject provides deterministic, test-only fault injection
// for the crash-safety suite. Production code marks injection points with
// Hit(point); tests compiled with the `faultinject` build tag arm a point
// to panic or return an error at its nth hit. Without the tag the arming
// API does not exist and Hit compiles to an inlined `return nil`, so
// release builds carry no branch, no counter, and no way to trigger a
// fault — the harness is compiled in for tests only.
//
// Determinism: a point fires at an exact hit count, never at random, so a
// chaos run is reproducible from (point, n) alone. NthFromSeed derives the
// hit count from a seed for randomized-but-replayable campaigns.
//
// Injection points currently marked:
//
//	core.length     — between per-length passes of a batch discovery
//	core.append     — between chunks of a streaming append
//	wal.write       — before a WAL record write (service durability layer)
//	wal.checkpoint  — before a checkpoint blob write
package faultinject

// NthFromSeed maps a campaign seed onto a hit count in [1, max]: a tiny
// splitmix64 step, so seed-driven chaos campaigns stay reproducible
// without importing math/rand into injection-point call sites.
func NthFromSeed(seed int64, max int) int {
	if max < 1 {
		return 1
	}
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z%uint64(max)) + 1
}
