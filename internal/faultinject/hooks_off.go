//go:build !faultinject

package faultinject

// Hit marks an injection point. In production builds (no `faultinject`
// tag) it is a constant nil the compiler inlines away.
func Hit(point string) error { return nil }
