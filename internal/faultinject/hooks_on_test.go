//go:build faultinject

package faultinject

import "testing"

func TestArmErrorFiresExactlyOnce(t *testing.T) {
	Reset()
	defer Reset()
	ArmError("p", 3, nil)
	for i := 1; i <= 5; i++ {
		err := Hit("p")
		if (err != nil) != (i == 3) {
			t.Fatalf("hit %d: err=%v", i, err)
		}
	}
	if Hits("p") != 5 {
		t.Fatalf("Hits=%d, want 5", Hits("p"))
	}
}

func TestArmPanicFires(t *testing.T) {
	Reset()
	defer Reset()
	ArmPanic("q", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected injected panic")
		}
	}()
	_ = Hit("q")
}
