package faultinject

import "testing"

func TestNthFromSeedDeterministicAndInRange(t *testing.T) {
	for seed := int64(-3); seed < 50; seed++ {
		for _, max := range []int{1, 2, 7, 100} {
			a, b := NthFromSeed(seed, max), NthFromSeed(seed, max)
			if a != b {
				t.Fatalf("seed=%d max=%d: not deterministic (%d vs %d)", seed, max, a, b)
			}
			if a < 1 || a > max {
				t.Fatalf("seed=%d max=%d: %d out of [1,%d]", seed, max, a, max)
			}
		}
	}
	if got := NthFromSeed(42, 0); got != 1 {
		t.Fatalf("max<1 should clamp to 1, got %d", got)
	}
}

func TestHitDisarmedIsNil(t *testing.T) {
	if err := Hit("nonexistent.point"); err != nil {
		t.Fatalf("disarmed Hit returned %v", err)
	}
}
