package rank

import (
	"math"
	"testing"

	"github.com/seriesmining/valmod/internal/profile"
)

func mp(a, b, m int, d float64) profile.MotifPair {
	return profile.MotifPair{A: a, B: b, M: m, Dist: d}
}

func TestByNormDistOrders(t *testing.T) {
	pairs := []profile.MotifPair{
		mp(0, 100, 50, 10),  // norm = 10/√50 ≈ 1.414
		mp(5, 200, 400, 10), // norm = 10/√400 = 0.5 → first
		mp(9, 300, 100, 25), // norm = 2.5 → last
	}
	got := ByNormDist(pairs)
	if got[0].M != 400 || got[1].M != 50 || got[2].M != 100 {
		t.Fatalf("order = %v", got)
	}
	// Input untouched.
	if pairs[0].M != 50 {
		t.Error("ByNormDist must not modify its input")
	}
}

func TestByNormDistTieBreakLongerFirst(t *testing.T) {
	// Same normalized distance: d/√m equal → longer length first.
	pairs := []profile.MotifPair{
		mp(0, 50, 100, 10), // 10/10 = 1
		mp(1, 60, 400, 20), // 20/20 = 1
	}
	got := ByNormDist(pairs)
	if got[0].M != 400 {
		t.Fatalf("tie should prefer longer: %v", got)
	}
}

func TestTopKDedupAcrossLengths(t *testing.T) {
	// Three reports of the same discovery at nearby lengths + one distinct.
	pairs := []profile.MotifPair{
		mp(100, 500, 60, 1.0),
		mp(98, 498, 64, 1.02),  // same event, slightly longer
		mp(102, 502, 56, 1.05), // same event, slightly shorter
		mp(800, 900, 60, 3.0),  // different event
	}
	got := TopK(pairs, 5, 0)
	if len(got) != 2 {
		t.Fatalf("want 2 distinct discoveries, got %v", got)
	}
	if got[0].A != 98 && got[0].A != 100 && got[0].A != 102 {
		t.Errorf("first discovery = %v", got[0])
	}
	if got[1].A != 800 {
		t.Errorf("second discovery = %v", got[1])
	}
}

func TestTopKCrossedPairDedup(t *testing.T) {
	// Same discovery with endpoints swapped roles must dedup too.
	pairs := []profile.MotifPair{
		mp(100, 500, 60, 1.0),
		mp(500, 100, 60, 1.1), // illegal ordering normally, but dedup must hold
	}
	got := TopK(pairs, 5, 0)
	if len(got) != 1 {
		t.Fatalf("crossed duplicate not folded: %v", got)
	}
}

func TestTopKRespectsK(t *testing.T) {
	var pairs []profile.MotifPair
	for i := 0; i < 10; i++ {
		pairs = append(pairs, mp(i*300, i*300+150, 50, float64(i)))
	}
	got := TopK(pairs, 3, 0)
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].NormDist() < got[i-1].NormDist() {
			t.Error("output not sorted")
		}
	}
}

func TestTopKNonOverlappingKept(t *testing.T) {
	// 40% overlap is below the default 50% threshold → both kept.
	pairs := []profile.MotifPair{
		mp(100, 500, 100, 1.0),
		mp(160, 560, 100, 1.2),
	}
	got := TopK(pairs, 5, 0)
	if len(got) != 2 {
		t.Fatalf("40%% overlap should not dedup: %v", got)
	}
}

func TestOverlapFrac(t *testing.T) {
	if f := overlapFrac(0, 10, 20, 10); f != 0 {
		t.Errorf("disjoint overlap = %g", f)
	}
	if f := overlapFrac(0, 10, 0, 10); f != 1 {
		t.Errorf("identical overlap = %g", f)
	}
	if f := overlapFrac(0, 10, 5, 10); math.Abs(f-0.5) > 1e-12 {
		t.Errorf("half overlap = %g", f)
	}
	if f := overlapFrac(0, 100, 40, 20); math.Abs(f-1.0) > 1e-12 {
		t.Errorf("contained overlap = %g (fraction of shorter)", f)
	}
}
