// Package rank orders motif pairs of different lengths with the paper's
// length-normalized distance (demo §"Rank Motif Pairs of Variable Lengths"):
// the Euclidean distance scaled by √(1/ℓ), which favors longer patterns at
// equal per-point similarity.
package rank

import (
	"sort"

	"github.com/seriesmining/valmod/internal/profile"
)

// DefaultOverlap is the interval-overlap fraction above which two
// variable-length pairs are considered the same discovery.
const DefaultOverlap = 0.5

// ByNormDist sorts pairs by ascending length-normalized distance, breaking
// ties by longer length first (the paper's preference), then offset. The
// input is not modified.
func ByNormDist(pairs []profile.MotifPair) []profile.MotifPair {
	out := append([]profile.MotifPair(nil), pairs...)
	sort.Slice(out, func(a, b int) bool {
		na, nb := out[a].NormDist(), out[b].NormDist()
		if na != nb {
			return na < nb
		}
		if out[a].M != out[b].M {
			return out[a].M > out[b].M
		}
		if out[a].A != out[b].A {
			return out[a].A < out[b].A
		}
		return out[a].B < out[b].B
	})
	return out
}

// overlapFrac returns the overlap between intervals [a, a+la) and [b, b+lb)
// as a fraction of the shorter interval.
func overlapFrac(a, la, b, lb int) float64 {
	lo := max(a, b)
	hi := min(a+la, b+lb)
	if hi <= lo {
		return 0
	}
	shorter := min(la, lb)
	return float64(hi-lo) / float64(shorter)
}

// samePair reports whether two pairs describe the same discovery: both
// intervals overlap their counterparts by more than frac (in either
// pairing order).
func samePair(p, q profile.MotifPair, frac float64) bool {
	direct := overlapFrac(p.A, p.M, q.A, q.M) > frac && overlapFrac(p.B, p.M, q.B, q.M) > frac
	crossed := overlapFrac(p.A, p.M, q.B, q.M) > frac && overlapFrac(p.B, p.M, q.A, q.M) > frac
	return direct || crossed
}

// TopK returns the k best pairs under the length-normalized distance,
// de-duplicated across lengths: once a pair is chosen, later pairs whose
// intervals overlap it by more than overlap (fraction of the shorter
// interval; ≤ 0 selects DefaultOverlap) are folded into the same discovery
// and skipped. This is the ranking the VALMAP view presents ("all the top-k
// motifs of variable length", demo §3).
func TopK(pairs []profile.MotifPair, k int, overlap float64) []profile.MotifPair {
	if overlap <= 0 {
		overlap = DefaultOverlap
	}
	sorted := ByNormDist(pairs)
	var out []profile.MotifPair
	for _, p := range sorted {
		if len(out) >= k {
			break
		}
		dup := false
		for _, chosen := range out {
			if samePair(p, chosen, overlap) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, p)
		}
	}
	return out
}
