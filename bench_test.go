package valmod_test

// Benchmark harness: one bench per figure panel of the paper (DESIGN.md §6
// maps them), plus the ablation benches DESIGN.md calls out. Sizes are
// laptop-scale so `go test -bench=.` finishes in minutes; the paper-scale
// sweeps live in cmd/valmod-experiments.

import (
	"context"
	"fmt"
	"testing"

	valmod "github.com/seriesmining/valmod"
	"github.com/seriesmining/valmod/internal/baseline/moen"
	"github.com/seriesmining/valmod/internal/baseline/quickmotif"
	"github.com/seriesmining/valmod/internal/baseline/stomprange"
	"github.com/seriesmining/valmod/internal/core"
	"github.com/seriesmining/valmod/internal/gen"
	"github.com/seriesmining/valmod/internal/lb"
	"github.com/seriesmining/valmod/internal/mass"
	"github.com/seriesmining/valmod/internal/series"
	"github.com/seriesmining/valmod/internal/stomp"
)

// BenchmarkFig1MatrixProfile regenerates Figure 1 (left): the fixed-length
// matrix profile of the ECG snippet at ℓ=50.
func BenchmarkFig1MatrixProfile(b *testing.B) {
	s := gen.ECG(5000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := valmod.MatrixProfile(s.Values, 50, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1VALMAP regenerates Figure 1 (right): VALMOD over [50, 400]
// on the ECG snippet, VALMAP included.
func BenchmarkFig1VALMAP(b *testing.B) {
	s := gen.ECG(5000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := valmod.Discover(s.Values, 50, 400, valmod.Options{TopK: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2PartialProfiles regenerates the Figure 2 machinery: one
// length-600 distance profile plus the lower-bound column and the length-601
// partial-profile updates.
func BenchmarkFig2PartialProfiles(b *testing.B) {
	s := gen.ECG(1800, 1)
	t := s.Values
	st := series.NewStats(t)
	const l, anchor = 600, 160
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qt, _ := mass.SlidingDotProfile(t[anchor:anchor+l], t)
		sumA := st.Sum(anchor, l)
		terms := lb.NewAnchorTerms(st, anchor, l, 1)
		var sink float64
		for j := range qt {
			muB, sdB := st.MeanStd(j, l)
			sink += terms.Bound(lb.QTilde(qt[j], sumA, muB, sdB))
		}
		_ = sink
	}
}

// fig3Algos runs one (algorithm, dataset, lmin, lmax) cell.
func fig3Algos(b *testing.B, algo string, values []float64, lmin, lmax int) {
	b.Helper()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		var err error
		switch algo {
		case "VALMOD":
			_, err = valmod.Discover(values, lmin, lmax, valmod.Options{TopK: 1})
		case "STOMP":
			_, err = stomprange.Run(ctx, values, stomprange.Config{LMin: lmin, LMax: lmax})
		case "MOEN":
			_, err = moen.Run(ctx, values, moen.Config{LMin: lmin, LMax: lmax})
		case "QUICKMOTIF":
			_, err = quickmotif.Run(ctx, values, quickmotif.Config{LMin: lmin, LMax: lmax})
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3Top regenerates Figure 3 (top): time vs motif length range,
// per dataset and algorithm (n=4000, ℓmin=64 at bench scale).
func BenchmarkFig3Top(b *testing.B) {
	const n, lmin = 4000, 64
	for _, ds := range []string{"ecg", "astro"} {
		s, err := gen.Dataset(ds, n, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, rangeLen := range []int{8, 16, 32, 64} {
			for _, algo := range []string{"VALMOD", "STOMP", "MOEN", "QUICKMOTIF"} {
				name := fmt.Sprintf("%s/range=%d/%s", ds, rangeLen, algo)
				b.Run(name, func(b *testing.B) {
					fig3Algos(b, algo, s.Values, lmin, lmin+rangeLen-1)
				})
			}
		}
	}
}

// BenchmarkFig3Bottom regenerates Figure 3 (bottom): time vs series length
// (range fixed at 16, ℓmin=64 at bench scale).
func BenchmarkFig3Bottom(b *testing.B) {
	const lmin, rangeLen = 64, 16
	for _, ds := range []string{"ecg", "astro"} {
		for _, n := range []int{2000, 4000, 8000} {
			s, err := gen.Dataset(ds, n, 1)
			if err != nil {
				b.Fatal(err)
			}
			for _, algo := range []string{"VALMOD", "STOMP", "MOEN", "QUICKMOTIF"} {
				name := fmt.Sprintf("%s/n=%d/%s", ds, n, algo)
				b.Run(name, func(b *testing.B) {
					fig3Algos(b, algo, s.Values, lmin, lmin+rangeLen-1)
				})
			}
		}
	}
}

// BenchmarkAblationP sweeps the partial-profile size p (DESIGN.md ablation).
func BenchmarkAblationP(b *testing.B) {
	s := gen.ECG(4000, 1)
	for _, p := range []int{2, 5, 10, 20, 50} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(s.Values, core.Config{LMin: 64, LMax: 128, TopK: 1, P: p}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPruning compares the lower-bound machinery against the
// same code path with pruning disabled (full recompute per length).
func BenchmarkAblationPruning(b *testing.B) {
	s := gen.ECG(4000, 1)
	for _, disable := range []bool{false, true} {
		name := "pruning=on"
		if disable {
			name = "pruning=off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.Config{LMin: 64, LMax: 128, TopK: 1, DisablePruning: disable}
				if _, err := core.Run(s.Values, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRecomputeFraction sweeps the full-recompute fallback
// threshold.
func BenchmarkAblationRecomputeFraction(b *testing.B) {
	s := gen.ECG(4000, 1)
	for _, frac := range []float64{0.01, 0.05, 0.20} {
		b.Run(fmt.Sprintf("frac=%.2f", frac), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.Config{LMin: 64, LMax: 128, TopK: 1, RecomputeFraction: frac}
				if _, err := core.Run(s.Values, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchProcessLength runs VALMOD's variable-length phase at paper-shaped
// scale (n=20k, [50, 400]) with the given worker count. The seedOnly
// sub-benchmark isolates the mandatory ℓmin scan, so the variable-length
// phase time is full − seedOnly; the serial/parallel ratio of that
// difference is the processLength speedup. Outputs are identical at every
// worker count (fixed block/shard grids), so only time changes.
func benchProcessLength(b *testing.B, workers int) {
	s := gen.ECG(20000, 1)
	run := func(b *testing.B, lmax int) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			cfg := core.Config{LMin: 50, LMax: lmax, TopK: 10, Workers: workers}
			if _, err := core.Run(s.Values, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("seedOnly", func(b *testing.B) { run(b, 50) })
	b.Run("full", func(b *testing.B) { run(b, 400) })
}

// BenchmarkProcessLengthSerial is the Workers=1 baseline of the
// variable-length phase.
func BenchmarkProcessLengthSerial(b *testing.B) { benchProcessLength(b, 1) }

// BenchmarkProcessLengthParallel runs the same workload with the
// advance→certify pass sharded across 4 workers.
func BenchmarkProcessLengthParallel(b *testing.B) { benchProcessLength(b, 4) }

// BenchmarkBenchCasePairs mirrors the valmod-experiments bench-json
// ecg/pairs case (n=5000, [64,83], pruned plan, workers=1) so the
// committed BENCH_PR*.json numbers can be re-derived and profiled with
// the standard go test tooling.
func BenchmarkBenchCasePairs(b *testing.B) {
	s, err := gen.Dataset("ecg", 5000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := valmod.Discover(s.Values, 64, 83, valmod.Options{TopK: 10, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBenchCaseDiscords mirrors the bench-json ecg/pairs+discords
// case (incremental full-profile plan).
func BenchmarkBenchCaseDiscords(b *testing.B) {
	s, err := gen.Dataset("ecg", 5000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := valmod.Discover(s.Values, 64, 83, valmod.Options{TopK: 10, Discords: 5, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationParallelSTOMP compares serial and goroutine-partitioned
// STOMP at a fixed length.
func BenchmarkAblationParallelSTOMP(b *testing.B) {
	s := gen.ECG(16000, 1)
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := stomp.Compute(s.Values, 128, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := stomp.ComputeParallel(s.Values, 128, 0, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationMASS compares the FFT distance profile against the
// brute-force one.
func BenchmarkAblationMASS(b *testing.B) {
	s := gen.ECG(16000, 1)
	q := s.Values[500:756]
	b.Run("mass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mass.DistanceProfile(q, s.Values)
		}
	})
	b.Run("brute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mass.BruteDistanceProfile(q, s.Values)
		}
	})
}
