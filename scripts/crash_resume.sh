#!/usr/bin/env bash
# crash_resume.sh — end-to-end witness that valmod-serve survives kill -9.
#
# Starts a server with -data-dir, submits an n=${CRASH_RESUME_N:-100000}
# discovery, waits until a few lengths (and at least one engine checkpoint)
# are durable, then SIGKILLs the process mid-run. A second server on the
# same data directory must resume the job under its original ID and finish
# it, and the recovered result must be byte-identical (canonicalized JSON)
# to an uninterrupted run of the same request on a fresh directory. That
# byte-for-byte equality is the whole point: resume-from-checkpoint is only
# acceptable because the determinism contract makes it indistinguishable
# from never having crashed.
#
# Usage: scripts/crash_resume.sh  (from the repo root; needs go + python3)
set -euo pipefail

N=${CRASH_RESUME_N:-100000}
LMIN=64
LMAX=73
PORT=${CRASH_RESUME_PORT:-8431}
BASE="http://127.0.0.1:${PORT}"
WORK=$(mktemp -d)
SRV_PID=""

cleanup() {
  [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build"
go build -o "$WORK/valmod-serve" ./cmd/valmod-serve

echo "== synth series (n=$N)"
python3 - "$N" "$LMIN" "$LMAX" "$WORK/req.json" <<'PY'
import json, math, sys
n, lmin, lmax, out = int(sys.argv[1]), int(sys.argv[2]), int(sys.argv[3]), sys.argv[4]
# Deterministic ECG-ish series: identical input for every run of this script.
x, vals = 0.0, []
for i in range(n):
    x += math.sin(i * 0.031) * 0.6 + math.sin(i * 1.7) * 0.05
    vals.append(round(x + math.sin(i * 0.8) * 0.3, 6))
json.dump({"values": vals, "lmin": lmin, "lmax": lmax,
           "topk": 4, "discords": 3, "workers": 1}, open(out, "w"))
PY

start_server() { # $1 = data dir
  "$WORK/valmod-serve" -addr "127.0.0.1:${PORT}" -data-dir "$1" \
    -max-concurrent 1 -checkpoint-every 2 &
  SRV_PID=$!
  for _ in $(seq 1 100); do
    curl -fsS "$BASE/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "server did not come up" >&2
  exit 1
}

poll_field() { # $1 = job id, $2 = python expr over status dict `s`
  curl -fsS "$BASE/v1/jobs/$1" | python3 -c "
import json, sys
s = json.load(sys.stdin)
print($2)
"
}

wait_done() { # $1 = job id, $2 = out file for canonical result
  for _ in $(seq 1 3600); do
    state=$(poll_field "$1" "s['state']")
    case "$state" in
      done)
        curl -fsS "$BASE/v1/jobs/$1" | python3 -c "
import json, sys
print(json.dumps(json.load(sys.stdin)['result'], sort_keys=True))
" > "$2"
        return 0 ;;
      failed|canceled)
        echo "job $1 ended $state" >&2
        curl -fsS "$BASE/v1/jobs/$1" >&2 || true
        exit 1 ;;
    esac
    sleep 1
  done
  echo "job $1 never finished" >&2
  exit 1
}

echo "== run 1: start, submit, kill -9 mid-discovery"
start_server "$WORK/durable"
JOB=$(curl -fsS -X POST "$BASE/v1/jobs" --data-binary @"$WORK/req.json" |
  python3 -c "import json,sys; print(json.load(sys.stdin)['id'])")
echo "   job $JOB"
# Wait until >=3 lengths are done: with -checkpoint-every 2 that guarantees
# at least one durable checkpoint, so the restart exercises resume (not just
# the from-scratch fallback).
for _ in $(seq 1 3600); do
  done_n=$(poll_field "$JOB" "s.get('done', 0)")
  [ "$done_n" -ge 3 ] && break
  sleep 1
done
echo "   $done_n lengths done — SIGKILL"
kill -9 "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""

echo "== run 2: restart on the same data dir, job must resume and finish"
start_server "$WORK/durable"
resumed_state=$(poll_field "$JOB" "s['state']")
echo "   job $JOB recovered in state '$resumed_state'"
wait_done "$JOB" "$WORK/resumed.json"
kill -9 "$SRV_PID"; wait "$SRV_PID" 2>/dev/null || true; SRV_PID=""

echo "== run 3: uninterrupted reference on a fresh data dir"
start_server "$WORK/fresh"
REF=$(curl -fsS -X POST "$BASE/v1/jobs" --data-binary @"$WORK/req.json" |
  python3 -c "import json,sys; print(json.load(sys.stdin)['id'])")
wait_done "$REF" "$WORK/reference.json"
kill -9 "$SRV_PID"; wait "$SRV_PID" 2>/dev/null || true; SRV_PID=""

echo "== compare"
if cmp -s "$WORK/resumed.json" "$WORK/reference.json"; then
  echo "OK: resumed result is byte-identical to the uninterrupted run ($(wc -c < "$WORK/resumed.json") bytes)"
else
  echo "FAIL: resumed result differs from the uninterrupted run" >&2
  diff <(python3 -m json.tool "$WORK/resumed.json") \
       <(python3 -m json.tool "$WORK/reference.json") | head -40 >&2 || true
  exit 1
fi
