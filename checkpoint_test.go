package valmod_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	valmod "github.com/seriesmining/valmod"
	"github.com/seriesmining/valmod/internal/gen"
)

// TestDiscoverResumePublicAPI: a discovery resumed from any checkpoint —
// here the middle one, at a different worker count — returns a Result
// deeply identical to the uninterrupted run's.
func TestDiscoverResumePublicAPI(t *testing.T) {
	x := gen.ECG(1200, 5).Values
	const lmin, lmax = 20, 50
	var ckpts [][]byte
	opts := valmod.Options{TopK: 3, Discords: 3, Workers: 1,
		Checkpoint: func(b []byte) error {
			ckpts = append(ckpts, append([]byte(nil), b...))
			return nil
		}}
	eng := valmod.NewEngine(opts)
	want, err := eng.Discover(x, lmin, lmax)
	if err != nil {
		t.Fatal(err)
	}
	if len(ckpts) != lmax-lmin {
		t.Fatalf("expected %d checkpoints, got %d", lmax-lmin, len(ckpts))
	}

	ropts := opts
	ropts.Workers = 3
	ropts.Checkpoint = nil
	reng := valmod.NewEngine(ropts)
	got, err := reng.DiscoverResume(context.Background(), x, lmin, lmax, ckpts[len(ckpts)/2])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("resumed result differs from uninterrupted run")
	}

	if _, err := reng.DiscoverResume(context.Background(), x, lmin, lmax, []byte("not a checkpoint")); !errors.Is(err, valmod.ErrBadCheckpoint) {
		t.Fatalf("garbage blob: want ErrBadCheckpoint, got %v", err)
	}
}

// TestStreamResumePublicAPI: a stream resumed mid-feed produces snapshots
// deeply identical to the uninterrupted stream's after the same appends.
func TestStreamResumePublicAPI(t *testing.T) {
	x := gen.ECG(800, 6).Values
	const lmin, lmax = 10, 36
	opts := valmod.Options{TopK: 3, Discords: 2, Workers: 2}

	ref, err := valmod.NewStream(lmin, lmax, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Append(x); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	st, err := valmod.NewStream(lmin, lmax, opts)
	if err != nil {
		t.Fatal(err)
	}
	cut := len(x) / 2
	if err := st.Append(x[:cut]); err != nil {
		t.Fatal(err)
	}
	ck, err := st.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	rs, err := valmod.ResumeStream(lmin, lmax, opts, ck)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Append(x[cut:]); err != nil {
		t.Fatal(err)
	}
	got, err := rs.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("resumed stream snapshot differs from uninterrupted stream")
	}

	if _, err := valmod.ResumeStream(lmin, lmax, opts, ck[:10]); !errors.Is(err, valmod.ErrBadCheckpoint) {
		t.Fatalf("truncated blob: want ErrBadCheckpoint, got %v", err)
	}
}
