package valmod_test

import (
	"bytes"
	"math"
	"testing"

	valmod "github.com/seriesmining/valmod"
	"github.com/seriesmining/valmod/internal/gen"
	"github.com/seriesmining/valmod/internal/stomp"
)

func TestDiscoverEndToEndECG(t *testing.T) {
	s := gen.ECG(3000, 1)
	res, err := valmod.Discover(s.Values, 50, 120, valmod.Options{TopK: 3, P: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerLength) != 120-50+1 {
		t.Fatalf("per-length count %d", len(res.PerLength))
	}
	// Every length exact vs STOMP.
	for _, lr := range res.PerLength {
		mp, err := stomp.Compute(s.Values, lr.Length, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := mp.TopKPairs(3)
		if len(lr.Pairs) != len(want) {
			t.Fatalf("m=%d: %d pairs, want %d", lr.Length, len(lr.Pairs), len(want))
		}
		for i := range want {
			if math.Abs(lr.Pairs[i].Distance-want[i].Dist) > 1e-6*(1+want[i].Dist) {
				t.Fatalf("m=%d pair %d: %g want %g", lr.Length, i, lr.Pairs[i].Distance, want[i].Dist)
			}
		}
	}
	// The fixed-length profile is exposed.
	if len(res.Profile) != s.Len()-50+1 || len(res.ProfileIndex) != len(res.Profile) {
		t.Fatalf("profile sizes: %d %d", len(res.Profile), len(res.ProfileIndex))
	}
	// VALMAP basics.
	if res.VALMAP == nil || len(res.VALMAP.MPn) != len(res.Profile) {
		t.Fatal("VALMAP missing or mis-sized")
	}
}

func TestDiscoverBestOverallAndTopMotifs(t *testing.T) {
	s := gen.SineMix(1500)
	res, err := valmod.Discover(s.Values, 32, 96, valmod.Options{TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	best, ok := res.BestOverall()
	if !ok {
		t.Fatal("no best motif")
	}
	top := res.TopMotifs(5)
	if len(top) == 0 {
		t.Fatal("no top motifs")
	}
	if math.Abs(top[0].NormDistance-best.NormDistance) > 1e-12 {
		t.Errorf("TopMotifs[0] %v != BestOverall %v", top[0], best)
	}
	for i := 1; i < len(top); i++ {
		if top[i].NormDistance < top[i-1].NormDistance {
			t.Error("TopMotifs not sorted")
		}
	}
	// NormDistance is consistent with Distance and Length.
	for _, p := range top {
		want := p.Distance * math.Sqrt(1/float64(p.Length))
		if math.Abs(p.NormDistance-want) > 1e-12 {
			t.Errorf("NormDistance inconsistent: %v", p)
		}
	}
}

func TestDiscoverMotifSet(t *testing.T) {
	s := gen.RandomWalk(2500, 2)
	offs := gen.PlantMotif(s, 48, 4, 0.01, 3)
	res, err := valmod.Discover(s.Values, 48, 52, valmod.Options{TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	lr, _ := res.OfLength(48)
	if len(lr.Pairs) == 0 {
		t.Fatal("no pair at planted length")
	}
	members, err := res.MotifSet(lr.Pairs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) < len(offs) {
		t.Fatalf("motif set has %d members, planted %d", len(members), len(offs))
	}
}

func TestDiscoverInputValidation(t *testing.T) {
	if _, err := valmod.Discover(nil, 8, 16, valmod.Options{}); err == nil {
		t.Error("empty series should fail")
	}
	if _, err := valmod.Discover([]float64{1, math.NaN(), 3}, 8, 16, valmod.Options{}); err == nil {
		t.Error("NaN should fail")
	}
	vals := make([]float64, 100)
	if _, err := valmod.Discover(vals, 16, 8, valmod.Options{}); err == nil {
		t.Error("inverted range should fail")
	}
	if _, err := valmod.Discover(vals, 8, 500, valmod.Options{}); err == nil {
		t.Error("range beyond series should fail")
	}
}

func TestVALMAPStateAtThroughPublicAPI(t *testing.T) {
	s := gen.ECG(2000, 4)
	res, err := valmod.Discover(s.Values, 50, 90, valmod.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mpn, ip, lp, err := res.VALMAP.StateAt(50)
	if err != nil {
		t.Fatal(err)
	}
	// At ℓmin the length profile is flat.
	for i := range lp {
		if ip[i] >= 0 && lp[i] != 50 {
			t.Fatalf("LP[%d] = %d at lmin state", i, lp[i])
		}
	}
	_ = mpn
	// Final state >= improvements only.
	mpnEnd, _, lpEnd, err := res.VALMAP.StateAt(90)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mpnEnd {
		if mpnEnd[i] > mpn[i]+1e-12 {
			t.Fatalf("MPn[%d] got worse over lengths", i)
		}
		if lpEnd[i] < lp[i] && lpEnd[i] != 0 {
			// A later state may keep the initial length; it must never
			// record a length below ℓmin.
			if lpEnd[i] < 50 {
				t.Fatalf("LP[%d] = %d below lmin", i, lpEnd[i])
			}
		}
	}
	// Checkpoints are within range and sorted.
	cps := res.VALMAP.Checkpoints()
	for i, l := range cps {
		if l <= 50 || l > 90 {
			t.Fatalf("checkpoint %d out of range", l)
		}
		if i > 0 && cps[i] <= cps[i-1] {
			t.Fatal("checkpoints not sorted")
		}
	}
	// JSON export works through the facade.
	var buf bytes.Buffer
	if err := res.VALMAP.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty JSON export")
	}
}

func TestMatrixProfilePublicAPI(t *testing.T) {
	s := gen.ECG(2000, 5)
	fp, err := valmod.MatrixProfile(s.Values, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	fpPar, err := valmod.MatrixProfile(s.Values, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fp.Dist {
		if math.Abs(fp.Dist[i]-fpPar.Dist[i]) > 1e-9*(1+fp.Dist[i]) {
			t.Fatalf("serial/parallel mismatch at %d", i)
		}
	}
	pairs := fp.TopPairs(3)
	if len(pairs) == 0 {
		t.Fatal("no pairs from fixed profile")
	}
	for _, p := range pairs {
		if p.Length != 100 {
			t.Errorf("pair length %d", p.Length)
		}
	}
	discords := fp.Discords(2)
	if len(discords) == 0 {
		t.Fatal("no discords")
	}
	for _, d := range discords {
		if d.Length != 100 {
			t.Errorf("discord length %d, want 100", d.Length)
		}
		if want := d.Distance * math.Sqrt(1.0/100); math.Abs(d.NormDistance-want) > 1e-12 {
			t.Errorf("discord norm distance %g, want %g", d.NormDistance, want)
		}
	}
	if _, err := valmod.MatrixProfile(s.Values, 1, false); err == nil {
		t.Error("m=1 should fail")
	}
}

func TestDistanceProfilePublicAPI(t *testing.T) {
	s := gen.SineMix(500)
	q := s.Values[100:150]
	dp, err := valmod.DistanceProfile(q, s.Values)
	if err != nil {
		t.Fatal(err)
	}
	if len(dp) != 500-50+1 {
		t.Fatalf("profile length %d", len(dp))
	}
	if dp[100] > 1e-6 {
		t.Errorf("self-match distance %g", dp[100])
	}
	if _, err := valmod.DistanceProfile(nil, s.Values); err == nil {
		t.Error("empty query should fail")
	}
	if _, err := valmod.DistanceProfile(s.Values, q); err == nil {
		t.Error("query longer than series should fail")
	}
}

func TestDisablePruningPublicOption(t *testing.T) {
	s := gen.RandomWalk(400, 6)
	a, err := valmod.Discover(s.Values, 10, 20, valmod.Options{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := valmod.Discover(s.Values, 10, 20, valmod.Options{TopK: 2, DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.PerLength {
		pa, pb := a.PerLength[i].Pairs, b.PerLength[i].Pairs
		if len(pa) != len(pb) {
			t.Fatalf("m=%d: pair count mismatch", a.PerLength[i].Length)
		}
		for j := range pa {
			if math.Abs(pa[j].Distance-pb[j].Distance) > 1e-9*(1+pa[j].Distance) {
				t.Fatalf("m=%d pair %d mismatch", a.PerLength[i].Length, j)
			}
		}
	}
}
