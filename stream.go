package valmod

import (
	"errors"
	"fmt"

	"github.com/seriesmining/valmod/internal/core"
)

// Stream is a live variable-length discovery over a growing series. Points
// arrive through Append in chunks of any size; Snapshot materializes the
// exact discovery over the points seen so far — tolerance-equivalent to
// running Discover on the same points in one shot, at a fraction of the
// cost: each appended point extends carried dot-product state with the
// STOMP right-append recurrence (O(n·lengths) per point, never a prefix
// recompute).
//
// Guarantees, pinned by the equivalence harness in stream_test.go:
//
//   - Any chunking of the same points yields results equal to batch
//     Discover within floating tolerance; without Options.WindowCap the
//     results are bit-identical across chunkings.
//   - A fixed chunking yields bit-identical results at every
//     Options.Workers setting.
//   - With Options.WindowCap = W, the stream holds exactly the trailing
//     min(n, W) points after every Append: old offsets are evicted
//     deterministically and every surviving profile entry whose nearest
//     neighbor was evicted is repaired exactly, so Snapshot always equals
//     a batch Discover over the retained window.
//
// Snapshot offsets are relative to the retained window; add Start for
// offsets into the full appended stream. A Stream is not safe for
// concurrent use; callers serialize Append and Snapshot.
type Stream struct {
	inner      *core.Streamer
	lmin, lmax int
}

// NewStream opens a stream discovering lengths [lmin, lmax] under opts
// (Progress is ignored; results arrive via Snapshot). The range is
// validated against itself — lmax points are enough for one window of
// every length — and the series grows from empty.
func NewStream(lmin, lmax int, opts Options) (*Stream, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := validateRange(lmax, lmin, lmax); err != nil {
		return nil, err
	}
	if opts.WindowCap > 0 && opts.WindowCap < lmax {
		return nil, fmt.Errorf("%w: Options.WindowCap=%d: must be >= lmax (%d)", ErrBadInput, opts.WindowCap, lmax)
	}
	inner, err := core.NewStreamer(core.Config{
		LMin:            lmin,
		LMax:            lmax,
		TopK:            opts.TopK,
		ExclusionFactor: opts.ExclusionFactor,
		Discords:        opts.Discords,
		WindowCap:       opts.WindowCap,
		Workers:         opts.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return &Stream{inner: inner, lmin: lmin, lmax: lmax}, nil
}

// NewStream opens a stream bound to the engine's Options.
func (e *Engine) NewStream(lmin, lmax int) (*Stream, error) {
	return NewStream(lmin, lmax, e.opts)
}

// Append feeds the next chunk of points. Non-finite values reject the
// whole chunk with an error wrapping ErrBadInput; the stream state is
// untouched and the caller may continue with good data.
func (s *Stream) Append(values []float64) error {
	if err := s.inner.Append(values); err != nil {
		return fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return nil
}

// N returns the number of retained points; Total the number ever
// appended (evicted ones included); Start the global offset of the first
// retained point (Total − N).
func (s *Stream) N() int     { return s.inner.N() }
func (s *Stream) Total() int { return s.inner.Total() }
func (s *Stream) Start() int { return s.inner.Start() }

// Ready reports whether Snapshot has at least one length to materialize
// (the stream holds lmin or more points).
func (s *Stream) Ready() bool { return s.inner.N() >= s.lmin }

// Snapshot materializes the discovery over the retained points, covering
// lengths [lmin, min(lmax, N)] — the full range once the stream holds
// lmax points. Before lmin points it returns an error wrapping
// ErrBadInput. The stream may keep growing afterwards; the returned
// Result is independent of later Appends.
func (s *Stream) Snapshot() (*Result, error) {
	res, err := s.inner.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	values := append([]float64(nil), s.inner.Series()...)
	return resultFromCore(res, values), nil
}

// Checkpoint serializes the stream's full state between Appends into a
// versioned, checksummed blob. ResumeStream over the same length range and
// options restores a stream whose every future Append and Snapshot is
// bit-identical to this one's (Options.Workers may differ). Callers decide
// the cadence — e.g. a serving layer checkpoints every N appends.
func (s *Stream) Checkpoint() ([]byte, error) {
	b, err := s.inner.Checkpoint()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return b, nil
}

// ResumeStream reconstructs a Stream from a Checkpoint blob taken under
// the same lmin/lmax and options. Corrupted blobs, or blobs from a
// different configuration, fail with an error wrapping ErrBadCheckpoint;
// the fallback is replaying the original appends into a fresh stream,
// which the chunking-invariance contract makes equally exact.
func ResumeStream(lmin, lmax int, opts Options, ckpt []byte) (*Stream, error) {
	s, err := NewStream(lmin, lmax, opts)
	if err != nil {
		return nil, err
	}
	inner, err := core.ResumeStreamer(s.inner.Cfg(), ckpt)
	if err != nil {
		if errors.Is(err, core.ErrBadCheckpoint) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	s.inner = inner
	return s, nil
}

// BestPair returns the current globally best motif pair under the
// length-normalized distance, or false before any pair exists — the
// one-line poll a live monitor wants between full Snapshots. It costs a
// Snapshot; callers needing both the pair and the discords should call
// Snapshot once instead.
func (s *Stream) BestPair() (MotifPair, bool) {
	res, err := s.Snapshot()
	if err != nil {
		return MotifPair{}, false
	}
	return res.BestOverall()
}

// TopDiscord returns the current top variable-length discord, or false
// when Options.Discords is zero or no discord exists yet.
func (s *Stream) TopDiscord() (Discord, bool) {
	res, err := s.Snapshot()
	if err != nil || len(res.Discords) == 0 {
		return Discord{}, false
	}
	return res.Discords[0], true
}
