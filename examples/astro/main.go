// ASTRO scenario: a celestial light curve mixes pulsation modes at several
// periods with transit dips of varying duration. A single subsequence
// length cannot rank patterns living at different scales; the
// length-normalized ranking can.
//
//	go run ./examples/astro
package main

import (
	"fmt"
	"log"
	"sort"

	valmod "github.com/seriesmining/valmod"
	"github.com/seriesmining/valmod/internal/gen"
)

func main() {
	s := gen.Astro(12000, 3)

	res, err := valmod.Discover(s.Values, 60, 340, valmod.Options{TopK: 5, P: 12})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("top variable-length motifs in the light curve:")
	motifs := res.TopMotifs(8)
	for i, m := range motifs {
		fmt.Printf("  %d. offsets %6d / %-6d length %3d  dn=%.4f\n", i+1, m.A, m.B, m.Length, m.NormDistance)
	}

	// The distinct motif lengths found: evidence of multi-scale structure.
	lengths := map[int]bool{}
	for _, m := range motifs {
		lengths[m.Length] = true
	}
	var ls []int
	for l := range lengths {
		ls = append(ls, l)
	}
	sort.Ints(ls)
	fmt.Printf("\ndistinct pattern scales discovered: %v\n", ls)

	// Length profile census: at how many offsets did a longer-than-minimum
	// match win?
	longer := 0
	for i, l := range res.VALMAP.LP {
		if res.VALMAP.IP[i] >= 0 && l > 60 {
			longer++
		}
	}
	fmt.Printf("%d of %d VALMAP slots preferred a pattern longer than lmin\n", longer, len(res.VALMAP.LP))

	// Checkpoints: the lengths at which the picture changed.
	fmt.Printf("VALMAP improved at %d distinct lengths\n", len(res.VALMAP.Checkpoints()))
}
