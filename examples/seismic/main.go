// Seismology scenario: repeated seismic events have unknown and variable
// durations, so fixing a subsequence length truncates or dilutes them. The
// VALMAP length profile reads out the natural event duration directly.
//
//	go run ./examples/seismic
package main

import (
	"fmt"
	"log"

	valmod "github.com/seriesmining/valmod"
	"github.com/seriesmining/valmod/internal/asciiplot"
	"github.com/seriesmining/valmod/internal/gen"
)

func main() {
	s := gen.Seismic(15000, 11)

	res, err := valmod.Discover(s.Values, 100, 400, valmod.Options{TopK: 3, P: 12})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("seismogram:")
	fmt.Println(asciiplot.Sparkline(s.Values, 110))

	best, ok := res.BestOverall()
	if !ok {
		log.Fatal("no repeated event found")
	}
	fmt.Printf("\nbest repeated event: offsets %d and %d, duration %d samples, dn=%.4f\n",
		best.A, best.B, best.Length, best.NormDistance)
	fmt.Println(asciiplot.Mark(s.Len(), 110, best.A, best.B))

	// Compare against two fixed-length guesses that bracket the true
	// duration: both rank worse under the normalized distance.
	for _, guess := range []int{100, 400} {
		lr, ok := res.OfLength(guess)
		if !ok || len(lr.Pairs) == 0 {
			continue
		}
		p := lr.Pairs[0]
		fmt.Printf("fixed guess %3d: best dn=%.4f  (vs %.4f at the discovered duration %d)\n",
			guess, p.NormDistance, best.NormDistance, best.Length)
	}

	// Event census via motif-set expansion.
	set, err := res.MotifSet(best, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nevent occurs %d times:\n", len(set))
	for _, m := range set {
		fmt.Printf("  offset %6d  d=%.3f\n", m.Offset, m.Distance)
	}
}
