// ECG scenario (the paper's Figure 1 narrative): at a fixed short length
// the matrix profile only captures a fragment of a heartbeat; searching a
// length range recovers the full beat, and the VALMAP length profile shows
// where longer matches win.
//
//	go run ./examples/ecg
package main

import (
	"fmt"
	"log"

	valmod "github.com/seriesmining/valmod"
	"github.com/seriesmining/valmod/internal/asciiplot"
	"github.com/seriesmining/valmod/internal/gen"
)

func main() {
	s := gen.ECG(5000, 7)

	// Fixed-length view (Figure 1 left): l=50 sees only part of a beat.
	fp, err := valmod.MatrixProfile(s.Values, 50, true)
	if err != nil {
		log.Fatal(err)
	}
	short := fp.TopPairs(1)[0]
	fmt.Printf("fixed length 50: motif at offsets %d/%d, d=%.3f — a fragment of a beat\n",
		short.A, short.B, short.Distance)

	// Variable-length view (Figure 1 right): search [50, 400].
	res, err := valmod.Discover(s.Values, 50, 400, valmod.Options{TopK: 5})
	if err != nil {
		log.Fatal(err)
	}
	long, _ := res.BestOverall()
	fmt.Printf("variable length:  best motif at offsets %d/%d, length %d, dn=%.4f\n",
		long.A, long.B, long.Length, long.NormDistance)
	if long.Length > short.Length {
		fmt.Printf("→ the range search found a %d-point pattern (full beat), not the %d-point fragment\n",
			long.Length, short.Length)
	}

	fmt.Println("\nECG snippet:")
	fmt.Println(asciiplot.Sparkline(s.Values, 110))
	fmt.Println(asciiplot.Mark(s.Len(), 110, long.A, long.B))
	fmt.Println("\nVALMAP length profile (where longer matches won):")
	lp := make([]float64, len(res.VALMAP.LP))
	for i, v := range res.VALMAP.LP {
		lp[i] = float64(v)
	}
	fmt.Println(asciiplot.Sparkline(lp, 110))

	// Beat census: expand the best motif into all its occurrences.
	set, err := res.MotifSet(long, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthe best motif occurs %d times (≈ one per beat):\n  offsets:", len(set))
	for _, m := range set {
		fmt.Printf(" %d", m.Offset)
	}
	fmt.Println()
}
