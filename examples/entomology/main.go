// Entomology scenario (EPG — electrical penetration graphs of insect
// feeding): behavioral episodes (probing, ingestion) repeat with different
// durations per episode. Variable-length discovery separates the behaviors
// without knowing either duration in advance — the demo's fourth dataset.
//
//	go run ./examples/entomology
package main

import (
	"fmt"
	"log"

	valmod "github.com/seriesmining/valmod"
	"github.com/seriesmining/valmod/internal/asciiplot"
	"github.com/seriesmining/valmod/internal/gen"
)

func main() {
	s := gen.EPG(12000, 5)

	res, err := valmod.Discover(s.Values, 40, 200, valmod.Options{TopK: 5, P: 12})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("EPG signal (baseline / probing / ingestion episodes):")
	fmt.Println(asciiplot.Sparkline(s.Values, 110))

	fmt.Println("\ntop motifs across lengths — candidate behavioral signatures:")
	motifs := res.TopMotifs(6)
	for i, m := range motifs {
		fmt.Printf("  %d. offsets %6d / %-6d length %3d  dn=%.4f\n",
			i+1, m.A, m.B, m.Length, m.NormDistance)
	}

	// Expand the top two distinct motifs: different behaviors should
	// expand to different, non-overlapping occurrence sets.
	for i, m := range motifs {
		if i >= 2 {
			break
		}
		set, err := res.MotifSet(m, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nbehavior %d (length %d) occurs %d times:\n", i+1, m.Length, len(set))
		offs := make([]int, len(set))
		for j, mm := range set {
			offs[j] = mm.Offset
		}
		fmt.Println(asciiplot.Sparkline(s.Values, 110))
		fmt.Println(asciiplot.Mark(s.Len(), 110, offs...))
	}
}
