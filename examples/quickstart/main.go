// Quickstart: plant a repeated pattern in a random walk and let VALMOD find
// it without being told its length.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	valmod "github.com/seriesmining/valmod"
)

func main() {
	// Build a 5000-point random walk.
	rng := rand.New(rand.NewSource(42))
	values := make([]float64, 5000)
	v := 0.0
	for i := range values {
		v += rng.NormFloat64()
		values[i] = v
	}
	// Hide the same 73-point pattern at offsets 1000 and 3200. Note that 73
	// is not a length we will pass to Discover — that is the point.
	for i := 0; i < 73; i++ {
		w := math.Sin(float64(i)*0.25) * 10
		values[1000+i] = w
		values[3200+i] = w + rng.NormFloat64()*0.05
	}

	// Search every length from 32 to 128.
	res, err := valmod.Discover(values, 32, 128, valmod.Options{})
	if err != nil {
		log.Fatal(err)
	}

	best, ok := res.BestOverall()
	if !ok {
		log.Fatal("no motif found")
	}
	fmt.Printf("best motif across all lengths: offsets %d and %d, length %d, distance %.4f\n",
		best.A, best.B, best.Length, best.Distance)

	fmt.Println("\ntop 5 motifs (length-normalized ranking):")
	for i, m := range res.TopMotifs(5) {
		fmt.Printf("  %d. offsets %5d / %-5d length %3d  dn=%.4f\n", i+1, m.A, m.B, m.Length, m.NormDistance)
	}

	// How much work did the lower bound save?
	certified, recomputed := 0, 0
	for _, lr := range res.PerLength {
		certified += lr.Certified
		recomputed += lr.Recomputed
	}
	fmt.Printf("\npruning: %d anchors certified by the lower bound, only %d recomputed\n", certified, recomputed)
}
