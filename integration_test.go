package valmod_test

// Cross-module integration tests exercising the full public pipeline the
// way the CLI tools and a downstream user would, plus a property-based
// fuzz of Discover exactness over random shapes and configurations.

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	valmod "github.com/seriesmining/valmod"
	"github.com/seriesmining/valmod/internal/gen"
	"github.com/seriesmining/valmod/internal/stomp"
	"github.com/seriesmining/valmod/internal/valmap"
)

// TestDiscoverFuzzExactness is the suite's widest net: random generators,
// random ranges, random knobs — every length's best distance must equal
// STOMP's.
func TestDiscoverFuzzExactness(t *testing.T) {
	names := gen.Names()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := names[rng.Intn(len(names))]
		n := rng.Intn(400) + 200
		s, err := gen.Dataset(ds, n, seed)
		if err != nil {
			return false
		}
		lmin := rng.Intn(12) + 4
		lmax := lmin + rng.Intn(24) + 1
		if lmax > n/3 {
			lmax = n / 3
		}
		if lmax < lmin {
			return true // degenerate draw, skip
		}
		opts := valmod.Options{
			TopK: rng.Intn(3) + 1,
			P:    rng.Intn(8) + 1,
		}
		res, err := valmod.Discover(s.Values, lmin, lmax, opts)
		if err != nil {
			t.Logf("seed %d (%s n=%d [%d,%d]): %v", seed, ds, n, lmin, lmax, err)
			return false
		}
		for _, lr := range res.PerLength {
			mp, err := stomp.Compute(s.Values, lr.Length, 0)
			if err != nil {
				return false
			}
			want := mp.TopKPairs(1)
			if len(want) == 0 {
				if len(lr.Pairs) != 0 {
					t.Logf("seed %d m=%d: got pairs where none exist", seed, lr.Length)
					return false
				}
				continue
			}
			if len(lr.Pairs) == 0 {
				t.Logf("seed %d m=%d: missing pairs", seed, lr.Length)
				return false
			}
			if math.Abs(lr.Pairs[0].Distance-want[0].Dist) > 1e-5*(1+want[0].Dist) {
				t.Logf("seed %d (%s n=%d [%d,%d] k=%d p=%d) m=%d: %g want %g",
					seed, ds, n, lmin, lmax, opts.TopK, opts.P, lr.Length, lr.Pairs[0].Distance, want[0].Dist)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPipelineDiscoverExportView replays the valmod → valmod-view data
// flow: discover, export VALMAP JSON, reload, walk the checkpoints.
func TestPipelineDiscoverExportView(t *testing.T) {
	s := gen.ECG(2500, 9)
	res, err := valmod.Discover(s.Values, 40, 90, valmod.Options{TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.VALMAP.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	vm, err := valmap.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The reloaded VALMAP replays to the same final state.
	mpn, ip, lp, err := vm.StateAt(90)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mpn {
		if mpn[i] != res.VALMAP.MPn[i] || ip[i] != res.VALMAP.IP[i] || lp[i] != res.VALMAP.LP[i] {
			t.Fatalf("reloaded state diverges at slot %d", i)
		}
	}
	// Walking two checkpoints must show monotone improvement.
	cps := res.VALMAP.Checkpoints()
	if len(cps) >= 2 {
		early, _, _, err := vm.StateAt(cps[0])
		if err != nil {
			t.Fatal(err)
		}
		late, _, _, err := vm.StateAt(cps[len(cps)-1])
		if err != nil {
			t.Fatal(err)
		}
		improved := 0
		for i := range early {
			if late[i] < early[i] {
				improved++
			}
			if late[i] > early[i]+1e-12 {
				t.Fatalf("slot %d regressed between checkpoints", i)
			}
		}
		if improved == 0 {
			t.Error("no slot improved between first and last checkpoint")
		}
	}
}

// TestJoinProfilePublicAPI checks the AB-join through the facade.
func TestJoinProfilePublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := make([]float64, 400)
	b := make([]float64, 500)
	v := 0.0
	for i := range a {
		v += rng.NormFloat64()
		a[i] = v
	}
	v = 0
	for i := range b {
		v += rng.NormFloat64()
		b[i] = v
	}
	m := 32
	for i := 0; i < m; i++ {
		w := math.Sin(float64(i) * 0.3)
		a[100+i] = w * 7
		b[350+i] = w*7 + rng.NormFloat64()*0.001
	}
	fp, err := valmod.JoinProfile(a, b, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.Dist) != len(a)-m+1 {
		t.Fatalf("join profile length %d", len(fp.Dist))
	}
	best, bestI := math.Inf(1), -1
	for i, d := range fp.Dist {
		if d < best {
			best, bestI = d, i
		}
	}
	if bestI < 98 || bestI > 102 || fp.Index[bestI] < 348 || fp.Index[bestI] > 352 {
		t.Errorf("join best at (%d,%d), want ~(100,350)", bestI, fp.Index[bestI])
	}
	if _, err := valmod.JoinProfile(a, b[:10], m); err == nil {
		t.Error("short b should fail")
	}
}

// TestMotifSetConsistentWithTopMotifs: expanding each top motif must
// include both of its own members.
func TestMotifSetConsistentWithTopMotifs(t *testing.T) {
	s := gen.EPG(4000, 2)
	res, err := valmod.Discover(s.Values, 40, 80, valmod.Options{TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.TopMotifs(3) {
		set, err := res.MotifSet(m, 0)
		if err != nil {
			t.Fatal(err)
		}
		foundA, foundB := false, false
		for _, mm := range set {
			if mm.Offset == m.A {
				foundA = true
			}
			if mm.Offset == m.B {
				foundB = true
			}
		}
		if !foundA || !foundB {
			t.Errorf("motif %v: members missing from its own set", m)
		}
	}
}
