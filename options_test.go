package valmod_test

import (
	"errors"
	"math"
	"strings"
	"testing"

	valmod "github.com/seriesmining/valmod"
)

// TestValidateNamesOffendingField covers every invalid-input path of
// Validate and checks the documented contract: the error wraps ErrBadInput
// and names the offending argument or Options field.
func TestValidateNamesOffendingField(t *testing.T) {
	ok := make([]float64, 100)
	for i := range ok {
		ok[i] = float64(i % 7)
	}
	nonFinite := append([]float64{1, 2}, math.Inf(1))

	cases := []struct {
		name   string
		values []float64
		lmin   int
		lmax   int
		opts   valmod.Options
		field  string // substring the error must carry
	}{
		{"negative TopK", ok, 8, 16, valmod.Options{TopK: -1}, "Options.TopK=-1"},
		{"negative P", ok, 8, 16, valmod.Options{P: -3}, "Options.P=-3"},
		{"negative ExclusionFactor", ok, 8, 16, valmod.Options{ExclusionFactor: -2}, "Options.ExclusionFactor=-2"},
		{"negative RecomputeFraction", ok, 8, 16, valmod.Options{RecomputeFraction: -0.5}, "Options.RecomputeFraction=-0.5"},
		{"RecomputeFraction above one", ok, 8, 16, valmod.Options{RecomputeFraction: 1.5}, "Options.RecomputeFraction=1.5"},
		{"NaN RecomputeFraction", ok, 8, 16, valmod.Options{RecomputeFraction: math.NaN()}, "Options.RecomputeFraction=NaN"},
		{"negative Workers", ok, 8, 16, valmod.Options{Workers: -4}, "Options.Workers=-4"},
		{"negative Discords", ok, 8, 16, valmod.Options{Discords: -2}, "Options.Discords=-2"},
		{"empty series", nil, 8, 16, valmod.Options{}, "values: empty series"},
		{"non-finite value", nonFinite, 8, 16, valmod.Options{}, "values[2]"},
		{"lmin too small", ok, 3, 16, valmod.Options{}, "lmin=3"},
		{"inverted range", ok, 16, 8, valmod.Options{}, "lmax=8"},
		{"range beyond series", ok, 8, 500, valmod.Options{}, "lmax=500"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := valmod.Validate(tc.values, tc.lmin, tc.lmax, tc.opts)
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !errors.Is(err, valmod.ErrBadInput) {
				t.Fatalf("error %v does not wrap ErrBadInput", err)
			}
			if !strings.Contains(err.Error(), tc.field) {
				t.Fatalf("error %q does not name the field (want substring %q)", err, tc.field)
			}
			// Discover must reject the same input with the same error shape.
			if _, derr := valmod.Discover(tc.values, tc.lmin, tc.lmax, tc.opts); derr == nil || derr.Error() != err.Error() {
				t.Fatalf("Discover error %v differs from Validate error %v", derr, err)
			}
		})
	}
}

// TestValidateAcceptsDefaults checks the zero-selects-default side of the
// contract for every field Validate polices.
func TestValidateAcceptsDefaults(t *testing.T) {
	ok := make([]float64, 64)
	for i := range ok {
		ok[i] = math.Sin(float64(i) / 3)
	}
	for _, opts := range []valmod.Options{
		{},
		{TopK: 5, P: 8, ExclusionFactor: 4, RecomputeFraction: 0.05, Workers: 2, Discords: 3},
		{RecomputeFraction: 1}, // boundary: 1 is valid
	} {
		if err := valmod.Validate(ok, 8, 16, opts); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", opts, err)
		}
	}
}
