package valmod

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/seriesmining/valmod/internal/core"
	"github.com/seriesmining/valmod/internal/motifset"
	"github.com/seriesmining/valmod/internal/profile"
	"github.com/seriesmining/valmod/internal/rank"
	"github.com/seriesmining/valmod/internal/valmap"
)

// ErrBadInput is returned for inconsistent arguments (empty series, bad
// length ranges, invalid options, non-finite values). Every validation
// failure wraps ErrBadInput and names the offending argument or Options
// field — "Options.TopK=-1: …", "lmin=2: …", "values[17]: …" — so callers
// can test with errors.Is and surface the message verbatim.
var ErrBadInput = errors.New("valmod: bad input")

// ErrBadCheckpoint is returned by DiscoverResume and ResumeStream when a
// checkpoint blob is malformed, corrupted, of an unknown version, or does
// not match the series and options it is being resumed against. The
// recovery path is always available: run the discovery from scratch — the
// engine's determinism contract makes the scratch run byte-identical to
// what the resumed run would have produced.
var ErrBadCheckpoint = core.ErrBadCheckpoint

// Options tunes Discover. The zero value selects the published defaults.
//
// Validation contract: for every numeric field, zero selects the default;
// a negative value (and, for RecomputeFraction, a non-finite value or one
// above 1) is rejected with an error that wraps ErrBadInput and names the
// field. Use Validate to check a full input set without running anything.
type Options struct {
	// TopK is the number of motif pairs reported per length (default 10).
	TopK int
	// P is the number of entries retained per partial distance profile
	// (default 10); the memory/pruning trade-off knob from the paper.
	P int
	// ExclusionFactor sets the trivial-match zone ⌈ℓ/factor⌉ (default 4).
	ExclusionFactor int
	// RecomputeFraction is the fraction of anchors beyond which a length
	// is recomputed wholesale rather than anchor-by-anchor (default 0.05:
	// one MASS recompute costs Θ(n log n) against a full pass's Θ(s²), but
	// the full pass also reseeds every partial profile, so the breakeven
	// sits near s/log n ≈ 5% of anchors; see internal/core).
	RecomputeFraction float64
	// DisablePruning turns the lower-bound machinery off (ablation only:
	// identical output, one whole-profile pass per length).
	DisablePruning bool
	// DisableIncremental turns the incremental cross-length profile
	// engine off: lengths that need the full profile (Discords, or
	// DisablePruning) are recomputed from scratch per length instead of
	// extending the carried dot-product state (ablation and parity
	// reference only: equivalent output, strictly more work).
	DisableIncremental bool
	// Discords, when positive, additionally reports that many
	// variable-length discords (Result.Discords): the subsequences whose
	// nearest non-trivial neighbor is farthest. The extraction is
	// two-stage, mirroring TopMotifs: each length's top-k discords are
	// taken from that length's exact profile (trivial matches
	// de-duplicated), then ranked across lengths by the length-normalized
	// distance under cross-length trivial-match exclusion. Every reported
	// distance is the exact nearest-neighbor distance, which requires the
	// exact per-length profile pass — pairs and the VALMAP stay
	// equivalent (identical pair sets; distances equal within floating
	// tolerance, as the two plans take different arithmetic paths), but
	// the run costs one full matrix-profile pass per length instead of
	// the pruned pass (the per-length stats report full recomputes).
	Discords int
	// LengthSkip enables lower-bound length skipping on runs with Discords
	// set: only ℓmin pays a whole-profile pass, later lengths resolve
	// pairs with the exact pruned pass and discords through the
	// lower-bound certificate (anchors whose bound proves they cannot
	// carry the top discord are skipped; the few survivors are recomputed
	// exactly). Per-length pairs and the top-1 discord stay exact; discord
	// candidates beyond the top-1 keep exact distances but may differ in
	// selection depth from the exhaustive plan. Ignored when Discords is 0
	// or under the Disable* ablations.
	LengthSkip bool
	// LengthStride, when > 1, switches runs with Discords set to the
	// coarse-to-fine plan: whole-profile passes run only at every
	// LengthStride-th length from ℓmin, a refine phase then re-resolves
	// the lengths within RefineRadius of the winners (best pair, top
	// discord) exhaustively. Strided-over lengths carry each anchor's
	// scan-time nearest neighbor forward (exact distances of real pairs;
	// best-effort per-length top-k) unless Strict upgrades them to the
	// LengthSkip treatment. The top-1 discord stays exact either way.
	// 0 or 1 means every length is scanned (the exhaustive default).
	// Ignored when Discords is 0 or under the Disable* ablations.
	LengthStride int
	// RefineRadius bounds the refine window around each winner length
	// (0 selects the full stride gap, LengthStride − 1).
	RefineRadius int
	// Strict upgrades strided-over lengths from the carried-neighbor
	// approximation to the exact pruned pass + lower-bound certificate,
	// making stride/refine report exact per-length pairs at every length.
	// No effect unless LengthStride > 1.
	Strict bool
	// Carry32 stores the incremental engine's cross-length diagonal carry
	// (head row + the series copy the diagonal pass streams) in float32
	// with float64 accumulation, halving the bandwidth of the large-n
	// whole-profile passes. Results are tolerance-equivalent, not
	// bit-identical, to the float64 plan; the pruned pass and the seed
	// scan stay float64 (their rows drive lower-bound certification).
	Carry32 bool
	// WindowCap, when positive, puts a Stream in sliding-window mode: the
	// retained series is trimmed to exactly the trailing WindowCap points
	// after every Append, so results are always a pure function of the
	// last min(n, WindowCap) points, independent of how the stream was
	// chunked. Must be at least lmax when set (every length needs one
	// window). Batch Discover ignores it.
	WindowCap int
	// Workers bounds the goroutines used by the data-parallel phases: the
	// ℓmin seed, full recomputes, and the per-length advance→certify pass
	// over anchor shards (0 = all cores, 1 = serial). The work is
	// partitioned on fixed grids independent of the worker count, so
	// results are identical at any setting.
	Workers int
	// Progress, when non-nil, is called after each subsequence length
	// completes (ℓmin first, then in increasing length order), on the
	// goroutine running the discovery. A slow callback slows the run;
	// cancellation is still honored between lengths, between seed blocks,
	// and between recompute rounds.
	Progress func(Progress)
	// Checkpoint, when non-nil, receives a serialized engine checkpoint
	// after completed lengths (cadence set by CheckpointEvery), on the
	// goroutine running the discovery; the blob is valid only during the
	// callback — durable consumers write it out before returning.
	// DiscoverResume over the same series and options continues from the
	// blob and returns results byte-identical to the uninterrupted run's,
	// at any Workers setting. An error return disables further checkpoints
	// for the run without failing it. Runs on the fast coarse-to-fine
	// plans (LengthSkip / LengthStride > 1) never emit checkpoints: their
	// resume fallback is a fresh run, which determinism makes equally
	// exact.
	Checkpoint func(ckpt []byte) error
	// CheckpointEvery emits a checkpoint every k-th completed length
	// (default 1 — every length boundary). Larger values amortize the
	// serialization cost over more compute at the price of more repeated
	// work after a crash. No effect unless Checkpoint is set.
	CheckpointEvery int
}

// Progress reports one completed subsequence length of a running discovery.
type Progress struct {
	// Done counts completed lengths, this one included; Total is the
	// number of lengths the run covers (lmax − lmin + 1).
	Done, Total int
	// Result is the completed length's exact result.
	Result LengthResult
}

// MotifPair is a pair of similar subsequences. It doubles as the wire DTO
// of the serving layer, hence the JSON tags.
type MotifPair struct {
	// A and B are the subsequence offsets, A < B.
	A int `json:"a"`
	B int `json:"b"`
	// Length is the subsequence length the pair was found at.
	Length int `json:"length"`
	// Distance is the z-normalized Euclidean distance.
	Distance float64 `json:"distance"`
	// NormDistance is Distance·√(1/Length), comparable across lengths.
	NormDistance float64 `json:"norm_distance"`
}

func (p MotifPair) String() string {
	return fmt.Sprintf("motif{A=%d B=%d len=%d d=%.4f dn=%.4f}", p.A, p.B, p.Length, p.Distance, p.NormDistance)
}

// Discord is an anomalous subsequence: the one whose nearest non-trivial
// neighbor is farthest. It doubles as the wire DTO of the serving layer,
// hence the JSON tags; fixed-length (FixedProfile.Discords) and
// variable-length (Result.Discords) discords share this shape.
type Discord struct {
	// Offset is the subsequence offset.
	Offset int `json:"offset"`
	// Length is the subsequence length the discord was found at.
	Length int `json:"length"`
	// Distance is the exact z-normalized distance to the nearest
	// non-trivial neighbor (larger = more anomalous).
	Distance float64 `json:"distance"`
	// NormDistance is Distance·√(1/Length), comparable across lengths.
	NormDistance float64 `json:"norm_distance"`
}

func (d Discord) String() string {
	return fmt.Sprintf("discord{off=%d len=%d d=%.4f dn=%.4f}", d.Offset, d.Length, d.Distance, d.NormDistance)
}

// LengthResult is the exact result for one subsequence length. It doubles
// as the wire DTO of the serving layer, hence the JSON tags.
type LengthResult struct {
	// Length is the subsequence length.
	Length int `json:"length"`
	// Pairs are the exact top-k motif pairs, ascending distance.
	Pairs []MotifPair `json:"pairs"`
	// Certified counts anchors resolved by the lower bound alone;
	// Recomputed counts per-anchor recomputations; FullRecompute marks a
	// whole-profile resolution; Incremental refines it (the pass
	// extended the carried cross-length state instead of recomputing
	// from scratch). Together they instrument the per-length work.
	Certified     int  `json:"certified"`
	Recomputed    int  `json:"recomputed"`
	FullRecompute bool `json:"full_recompute"`
	Incremental   bool `json:"incremental,omitempty"`
}

// PlanStats instruments the engine's per-length planner over one run: how
// many lengths ran the pruned pass, the incremental whole-profile pass,
// or a from-scratch recompute (plus how often the incremental engine's
// carried head row was FFT-seeded and FMA-extended). It doubles as the
// wire DTO of the serving layer, hence the JSON tags.
type PlanStats struct {
	PrunedLengths      int `json:"pruned_lengths"`
	IncrementalLengths int `json:"incremental_lengths"`
	RecomputeLengths   int `json:"recompute_lengths"`
	SkippedLengths     int `json:"skipped_lengths"`
	HeadSeeds          int `json:"head_seeds"`
	HeadExtensions     int `json:"head_extensions"`
	// LBSkippedLengths counts lengths the coarse-to-fine plan resolved
	// through the lower-bound certificate without a whole-profile pass;
	// StrideScanned counts its scan-grid lengths and RefinedLengths the
	// lengths its refine phase upgraded (all zero on the default plan).
	LBSkippedLengths int `json:"lb_skipped_lengths"`
	StrideScanned    int `json:"stride_scanned"`
	RefinedLengths   int `json:"refined_lengths"`
}

// VALMAP is the variable-length matrix profile (demo Figure 1 d–f): for
// every subsequence offset, the best length-normalized match across all
// lengths, where it is, and at which length it was found.
type VALMAP struct {
	LMin, LMax int
	// MPn is the length-normalized profile; +Inf where no match exists.
	MPn []float64
	// IP holds best-match offsets (-1 where none).
	IP []int
	// LP holds best-match lengths (0 where none).
	LP []int

	inner *valmap.VALMAP
}

// StateAt reconstructs the VALMAP as of length l (the demo GUI's
// checkpoint slider).
func (v *VALMAP) StateAt(l int) (mpn []float64, ip, lp []int, err error) {
	return v.inner.StateAt(l)
}

// Checkpoints returns the lengths at which at least one VALMAP cell
// improved, in increasing order.
func (v *VALMAP) Checkpoints() []int {
	out := make([]int, len(v.inner.Checkpoints))
	for i, cp := range v.inner.Checkpoints {
		out[i] = cp.L
	}
	return out
}

// WriteJSON serializes the VALMAP (checkpoints included).
func (v *VALMAP) WriteJSON(w io.Writer) error { return v.inner.WriteJSON(w) }

// Result is a completed variable-length motif discovery.
type Result struct {
	// N is the series length; LMin/LMax echo the range.
	N, LMin, LMax int
	// PerLength holds one exact result per length, ℓmin first.
	PerLength []LengthResult
	// Profile is the exact matrix profile at ℓmin and ProfileIndex its
	// index profile (demo Figure 1 b–c).
	Profile      []float64
	ProfileIndex []int
	// VALMAP is the variable-length meta structure.
	VALMAP *VALMAP
	// Discords holds the top-k variable-length discords (exact
	// nearest-neighbor distances; extraction as documented on
	// Options.Discords), ranked by length-normalized distance
	// descending; nil unless Options.Discords was positive.
	Discords []Discord
	// Plan reports how the per-length planner resolved the run.
	Plan PlanStats

	values []float64
	excl   int
}

// Engine is a reusable motif-discovery pipeline bound to a fixed set of
// Options. It owns pooled scratch (FFT correlator buffers, STOMP/MASS row
// buffers) that repeated Discover calls reuse instead of re-allocating,
// and it is safe for concurrent use. The package-level Discover helpers
// remain thin wrappers over a shared engine.
type Engine struct {
	opts Options
	core *core.Engine
}

// NewEngine returns an Engine that runs every discovery with opts.
func NewEngine(opts Options) *Engine {
	return &Engine{opts: opts, core: core.NewEngine()}
}

// Options echoes the engine's configuration.
func (e *Engine) Options() Options { return e.opts }

// WithOptions returns an Engine bound to opts that shares e's pooled
// scratch (FFT correlator buffers, STOMP/MASS rows). It is how a serving
// layer gives every job its own Options — in particular a per-job Progress
// callback — without abandoning the warm pools a long-lived engine has
// built up. Both engines stay safe for concurrent use.
func (e *Engine) WithOptions(opts Options) *Engine {
	return &Engine{opts: opts, core: e.core}
}

// validate enforces the Options contract: zero selects a default, anything
// else out of range is an error wrapping ErrBadInput that names the field.
func (o Options) validate() error {
	if o.TopK < 0 {
		return fmt.Errorf("%w: Options.TopK=%d: must be >= 0 (0 selects the default)", ErrBadInput, o.TopK)
	}
	if o.P < 0 {
		return fmt.Errorf("%w: Options.P=%d: must be >= 0 (0 selects the default)", ErrBadInput, o.P)
	}
	if o.ExclusionFactor < 0 {
		return fmt.Errorf("%w: Options.ExclusionFactor=%d: must be >= 0 (0 selects the default)", ErrBadInput, o.ExclusionFactor)
	}
	if math.IsNaN(o.RecomputeFraction) || o.RecomputeFraction < 0 || o.RecomputeFraction > 1 {
		return fmt.Errorf("%w: Options.RecomputeFraction=%v: must be in [0, 1] (0 selects the default)", ErrBadInput, o.RecomputeFraction)
	}
	if o.Workers < 0 {
		return fmt.Errorf("%w: Options.Workers=%d: must be >= 0 (0 selects all cores)", ErrBadInput, o.Workers)
	}
	if o.Discords < 0 {
		return fmt.Errorf("%w: Options.Discords=%d: must be >= 0 (0 disables discord discovery)", ErrBadInput, o.Discords)
	}
	if o.WindowCap < 0 {
		return fmt.Errorf("%w: Options.WindowCap=%d: must be >= 0 (0 disables the sliding window)", ErrBadInput, o.WindowCap)
	}
	if o.LengthStride < 0 {
		return fmt.Errorf("%w: Options.LengthStride=%d: must be >= 0 (0 disables striding)", ErrBadInput, o.LengthStride)
	}
	if o.RefineRadius < 0 {
		return fmt.Errorf("%w: Options.RefineRadius=%d: must be >= 0 (0 selects the full stride gap)", ErrBadInput, o.RefineRadius)
	}
	if o.CheckpointEvery < 0 {
		return fmt.Errorf("%w: Options.CheckpointEvery=%d: must be >= 0 (0 selects every length)", ErrBadInput, o.CheckpointEvery)
	}
	return nil
}

// ValidateSeries checks that values is a non-empty, all-finite series —
// the data half of Validate's contract. Serving layers use it to reject
// bad data at upload time, before any job references it.
func ValidateSeries(values []float64) error {
	if len(values) == 0 {
		return fmt.Errorf("%w: values: empty series", ErrBadInput)
	}
	for i, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: values[%d]: non-finite value %v", ErrBadInput, i, v)
		}
	}
	return nil
}

// ValidateQuery checks the [lmin, lmax] range against a series of length
// n and the opts — everything Validate checks except the O(n) series
// scan. Serving layers use it for series already validated at upload
// time.
func ValidateQuery(n, lmin, lmax int, opts Options) error {
	if err := opts.validate(); err != nil {
		return err
	}
	return validateRange(n, lmin, lmax)
}

// validateRange delegates to the engine's own rule so the pre-flight
// contract ("nil iff Discover would start") cannot drift from it.
func validateRange(n, lmin, lmax int) error {
	if err := core.ValidateRange(n, lmin, lmax); err != nil {
		return fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return nil
}

// Validate checks values, the [lmin, lmax] range and opts exactly as
// Discover would, without running anything. It returns nil when Discover
// would start, and otherwise an error wrapping ErrBadInput that names the
// offending argument or Options field. Serving layers use it to reject bad
// submissions synchronously.
func Validate(values []float64, lmin, lmax int, opts Options) error {
	if err := opts.validate(); err != nil {
		return err
	}
	if err := ValidateSeries(values); err != nil {
		return err
	}
	return validateRange(len(values), lmin, lmax)
}

// Discover runs VALMOD over values for every subsequence length in
// [lmin, lmax].
func (e *Engine) Discover(values []float64, lmin, lmax int) (*Result, error) {
	return e.DiscoverContext(context.Background(), values, lmin, lmax)
}

// DiscoverContext is Discover with cooperative cancellation, checked
// between lengths, between seed blocks, and between recompute rounds. On
// cancellation it returns ctx.Err().
func (e *Engine) DiscoverContext(ctx context.Context, values []float64, lmin, lmax int) (*Result, error) {
	opts := e.opts
	if err := Validate(values, lmin, lmax, opts); err != nil {
		return nil, err
	}
	res, err := e.core.Run(ctx, values, coreConfig(opts, lmin, lmax))
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return resultFromCore(res, values), nil
}

// DiscoverResume continues a discovery from a checkpoint blob emitted by
// Options.Checkpoint during an earlier run over the same values and
// length range. The completed Result is byte-identical to the one the
// uninterrupted run would have returned, at any Options.Workers setting.
// A blob that is corrupted or belongs to a different series/configuration
// fails with an error wrapping ErrBadCheckpoint — the caller then falls
// back to a plain Discover, which determinism makes equally exact.
func (e *Engine) DiscoverResume(ctx context.Context, values []float64, lmin, lmax int, ckpt []byte) (*Result, error) {
	opts := e.opts
	if err := Validate(values, lmin, lmax, opts); err != nil {
		return nil, err
	}
	res, err := e.core.ResumeRun(ctx, values, coreConfig(opts, lmin, lmax), ckpt)
	if err != nil {
		if ctx.Err() != nil || errors.Is(err, ErrBadCheckpoint) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return resultFromCore(res, values), nil
}

// coreConfig maps public Options onto the engine configuration, shared by
// DiscoverContext and DiscoverResume (a resumed run must execute under
// exactly the configuration mapping of the original, or the checkpoint
// digest check would reject it).
func coreConfig(opts Options, lmin, lmax int) core.Config {
	cfg := core.Config{
		LMin:               lmin,
		LMax:               lmax,
		TopK:               opts.TopK,
		P:                  opts.P,
		ExclusionFactor:    opts.ExclusionFactor,
		RecomputeFraction:  opts.RecomputeFraction,
		DisablePruning:     opts.DisablePruning,
		DisableIncremental: opts.DisableIncremental,
		Discords:           opts.Discords,
		LengthSkip:         opts.LengthSkip,
		LengthStride:       opts.LengthStride,
		RefineRadius:       opts.RefineRadius,
		Strict:             opts.Strict,
		Carry32:            opts.Carry32,
		Workers:            opts.Workers,
		OnCheckpoint:       opts.Checkpoint,
		CheckpointEvery:    opts.CheckpointEvery,
	}
	if cb := opts.Progress; cb != nil {
		cfg.OnLength = func(p core.Progress) {
			cb(Progress{Done: p.Done, Total: p.Total, Result: lengthResultFromCore(p.Result)})
		}
	}
	return cfg
}

// resultFromCore converts a completed internal run into the public Result,
// shared by batch DiscoverContext and Stream.Snapshot so the two surfaces
// can never drift.
func resultFromCore(res *core.Result, values []float64) *Result {
	out := &Result{
		N:      res.N,
		LMin:   res.Cfg.LMin,
		LMax:   res.Cfg.LMax,
		Plan:   PlanStats(res.Plan),
		values: values,
		excl:   res.Cfg.ExclusionFactor,
	}
	for _, lr := range res.PerLength {
		out.PerLength = append(out.PerLength, lengthResultFromCore(lr))
	}
	for _, d := range res.Discords {
		out.Discords = append(out.Discords, Discord{
			Offset: d.I, Length: d.L, Distance: d.Dist, NormDistance: d.NormDist(),
		})
	}
	out.Profile = res.MPMin.Dist
	out.ProfileIndex = res.MPMin.Index
	out.VALMAP = &VALMAP{
		LMin: res.Cfg.LMin, LMax: res.Cfg.LMax,
		MPn: res.VMap.MPn, IP: res.VMap.IP, LP: res.VMap.LP,
		inner: res.VMap,
	}
	return out
}

// defaultCore backs the package-level Discover helpers so one-shot calls
// still share pooled scratch process-wide.
var defaultCore = core.NewEngine()

// Discover runs VALMOD over values for every subsequence length in
// [lmin, lmax].
func Discover(values []float64, lmin, lmax int, opts Options) (*Result, error) {
	return DiscoverContext(context.Background(), values, lmin, lmax, opts)
}

// DiscoverContext is Discover with cooperative cancellation, checked
// between lengths, between seed blocks, and between recompute rounds. On
// cancellation it returns ctx.Err().
func DiscoverContext(ctx context.Context, values []float64, lmin, lmax int, opts Options) (*Result, error) {
	e := Engine{opts: opts, core: defaultCore}
	return e.DiscoverContext(ctx, values, lmin, lmax)
}

// lengthResultFromCore converts one internal per-length result.
func lengthResultFromCore(lr core.LengthResult) LengthResult {
	plr := LengthResult{
		Length:        lr.M,
		Certified:     lr.Stats.Certified,
		Recomputed:    lr.Stats.Recomputed,
		FullRecompute: lr.Stats.FullRecompute,
		Incremental:   lr.Stats.Incremental,
	}
	for _, p := range lr.Pairs {
		plr.Pairs = append(plr.Pairs, fromInternal(p))
	}
	return plr
}

func fromInternal(p profile.MotifPair) MotifPair {
	return MotifPair{A: p.A, B: p.B, Length: p.M, Distance: p.Dist, NormDistance: p.NormDist()}
}

func toInternal(p MotifPair) profile.MotifPair {
	return profile.MotifPair{A: p.A, B: p.B, M: p.Length, Dist: p.Distance}
}

// OfLength returns the result for one length, or false when l is outside
// the range.
func (r *Result) OfLength(l int) (LengthResult, bool) {
	i := l - r.LMin
	if i < 0 || i >= len(r.PerLength) {
		return LengthResult{}, false
	}
	return r.PerLength[i], true
}

// BestOverall returns the single best pair across all lengths under the
// length-normalized distance, or false when no pair exists.
func (r *Result) BestOverall() (MotifPair, bool) {
	best := MotifPair{NormDistance: math.Inf(1)}
	found := false
	for _, lr := range r.PerLength {
		for _, p := range lr.Pairs {
			if p.NormDistance < best.NormDistance {
				best = p
				found = true
			}
		}
	}
	return best, found
}

// TopMotifs ranks all reported pairs across lengths by the length-
// normalized distance, folding overlapping reports of the same discovery
// (>50% interval overlap) together, and returns the k best.
func (r *Result) TopMotifs(k int) []MotifPair {
	var all []profile.MotifPair
	for _, lr := range r.PerLength {
		for _, p := range lr.Pairs {
			all = append(all, toInternal(p))
		}
	}
	ranked := rank.TopK(all, k, 0)
	out := make([]MotifPair, len(ranked))
	for i, p := range ranked {
		out[i] = fromInternal(p)
	}
	return out
}

// MotifSet expands a pair into all its occurrences within radius (≤ 0
// selects 2× the pair distance, floored for near-identical pairs). Members
// are offset/distance pairs in ascending distance; the pair's own
// subsequences come first.
func (r *Result) MotifSet(p MotifPair, radius float64) ([]SetMember, error) {
	set, err := motifset.Expand(r.values, toInternal(p), radius, r.excl)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	out := make([]SetMember, len(set.Members))
	for i, m := range set.Members {
		out[i] = SetMember{Offset: m.I, Distance: m.Dist}
	}
	return out, nil
}

// SetMember is one occurrence in a motif set.
type SetMember struct {
	Offset   int
	Distance float64
}
