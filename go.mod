module github.com/seriesmining/valmod

go 1.22
