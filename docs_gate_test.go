package valmod_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDocsGatePackageComments is the docs gate: every Go package in the
// module — internal, cmd, and examples included — must carry a
// package-level doc comment on at least one of its files, stating the
// concept it implements. CI runs this test explicitly so a missing
// comment fails the build.
func TestDocsGatePackageComments(t *testing.T) {
	fset := token.NewFileSet()
	pkgs := map[string]bool{} // dir → has a package doc
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if pkgs[dir] {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if perr != nil {
			return perr
		}
		if _, seen := pkgs[dir]; !seen {
			pkgs[dir] = false
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			pkgs[dir] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("walked only %d packages — the gate is not seeing the module", len(pkgs))
	}
	for dir, ok := range pkgs {
		if !ok {
			t.Errorf("package %s has no package-level doc comment", dir)
		}
	}
}

// TestDocsGateREADMELinks pins the documentation map: the architecture
// and API docs must exist and stay referenced from the README.
func TestDocsGateREADMELinks(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ARCHITECTURE.md", "docs/api.md", "docs/operations.md", "examples/README.md"} {
		if _, err := os.Stat(want); err != nil {
			t.Errorf("%s: %v", want, err)
		}
		if !strings.Contains(string(readme), want) {
			t.Errorf("README.md no longer references %s", want)
		}
	}
	// The API spec and architecture doc must cross-reference each other.
	api, err := os.ReadFile("docs/api.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(api), "ARCHITECTURE.md") {
		t.Error("docs/api.md no longer references ARCHITECTURE.md")
	}
	arch, err := os.ReadFile("ARCHITECTURE.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(arch), "docs/api.md") {
		t.Error("ARCHITECTURE.md no longer references docs/api.md")
	}
}
