package valmod_test

import (
	"context"
	"math"
	"testing"

	valmod "github.com/seriesmining/valmod"
	"github.com/seriesmining/valmod/internal/gen"
)

// TestDiscoverDeterministicAcrossWorkers is the determinism regression
// guard for the parallel anchor path: on a fixed-seed generated series,
// Discover must return identical output for Workers=1 and Workers=4 —
// same pairs, same distances (bitwise), same VALMAP.
func TestDiscoverDeterministicAcrossWorkers(t *testing.T) {
	s := gen.ECG(3000, 7)
	serial, err := valmod.Discover(s.Values, 32, 96, valmod.Options{TopK: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := valmod.Discover(s.Values, 32, 96, valmod.Options{TopK: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.PerLength) != len(parallel.PerLength) {
		t.Fatalf("length count %d vs %d", len(serial.PerLength), len(parallel.PerLength))
	}
	for li := range serial.PerLength {
		a, b := serial.PerLength[li], parallel.PerLength[li]
		if len(a.Pairs) != len(b.Pairs) {
			t.Fatalf("l=%d: %d pairs vs %d", a.Length, len(a.Pairs), len(b.Pairs))
		}
		for pi := range a.Pairs {
			if a.Pairs[pi] != b.Pairs[pi] {
				t.Fatalf("l=%d pair %d: %v vs %v", a.Length, pi, a.Pairs[pi], b.Pairs[pi])
			}
		}
		if a.Certified != b.Certified || a.Recomputed != b.Recomputed || a.FullRecompute != b.FullRecompute {
			t.Fatalf("l=%d stats differ: %+v vs %+v", a.Length, a, b)
		}
	}
	for i := range serial.Profile {
		if serial.Profile[i] != parallel.Profile[i] || serial.ProfileIndex[i] != parallel.ProfileIndex[i] {
			t.Fatalf("profile slot %d differs", i)
		}
	}
	for i := range serial.VALMAP.MPn {
		if serial.VALMAP.MPn[i] != parallel.VALMAP.MPn[i] ||
			serial.VALMAP.IP[i] != parallel.VALMAP.IP[i] ||
			serial.VALMAP.LP[i] != parallel.VALMAP.LP[i] {
			t.Fatalf("VALMAP slot %d differs", i)
		}
	}
}

// TestEngineReuse: one Engine run twice must agree with the one-shot
// Discover helper — pooled scratch may never leak state between runs.
func TestEngineReuse(t *testing.T) {
	s := gen.SineMix(1200)
	eng := valmod.NewEngine(valmod.Options{TopK: 3})
	first, err := eng.Discover(s.Values, 24, 48)
	if err != nil {
		t.Fatal(err)
	}
	second, err := eng.Discover(s.Values, 24, 48)
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := valmod.Discover(s.Values, 24, 48, valmod.Options{TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, other := range []*valmod.Result{second, oneShot} {
		for li := range first.PerLength {
			a, b := first.PerLength[li], other.PerLength[li]
			if len(a.Pairs) != len(b.Pairs) {
				t.Fatalf("l=%d: %d pairs vs %d", a.Length, len(a.Pairs), len(b.Pairs))
			}
			for pi := range a.Pairs {
				if a.Pairs[pi] != b.Pairs[pi] {
					t.Fatalf("l=%d pair %d: %v vs %v", a.Length, pi, a.Pairs[pi], b.Pairs[pi])
				}
			}
		}
	}
	// Different ranges on the same engine must also work (scratch is
	// size-checked, not size-assumed).
	wide, err := eng.Discover(s.Values, 16, 90)
	if err != nil {
		t.Fatal(err)
	}
	if len(wide.PerLength) != 90-16+1 {
		t.Fatalf("wide run lengths %d", len(wide.PerLength))
	}
}

// TestEngineProgress: the callback sees every length in order and its
// per-length results match what Discover returns.
func TestEngineProgress(t *testing.T) {
	s := gen.SineMix(800)
	var events []valmod.Progress
	eng := valmod.NewEngine(valmod.Options{
		TopK: 2,
		Progress: func(p valmod.Progress) {
			events = append(events, p)
		},
	})
	res, err := eng.Discover(s.Values, 20, 44)
	if err != nil {
		t.Fatal(err)
	}
	total := 44 - 20 + 1
	if len(events) != total {
		t.Fatalf("%d events, want %d", len(events), total)
	}
	for i, p := range events {
		if p.Done != i+1 || p.Total != total {
			t.Fatalf("event %d: Done=%d Total=%d", i, p.Done, p.Total)
		}
		if p.Result.Length != 20+i {
			t.Fatalf("event %d: length %d", i, p.Result.Length)
		}
		want := res.PerLength[i]
		if p.Result.Certified != want.Certified || len(p.Result.Pairs) != len(want.Pairs) {
			t.Fatalf("event %d does not match PerLength: %+v vs %+v", i, p.Result, want)
		}
	}
}

// TestProgressCancellation: cancelling from inside the callback stops the
// run between lengths with ctx.Err().
func TestProgressCancellation(t *testing.T) {
	s := gen.SineMix(800)
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	eng := valmod.NewEngine(valmod.Options{
		Progress: func(p valmod.Progress) {
			calls++
			if p.Done == 3 {
				cancel()
			}
		},
	})
	_, err := eng.DiscoverContext(ctx, s.Values, 20, 60)
	if err == nil || ctx.Err() == nil {
		t.Fatalf("want cancellation error, got %v", err)
	}
	if calls != 3 {
		t.Fatalf("progress called %d times, want 3 (cancellation checked between lengths)", calls)
	}
}

// TestEngineRejectsBadInput mirrors the package-level validation.
func TestEngineRejectsBadInput(t *testing.T) {
	eng := valmod.NewEngine(valmod.Options{})
	if _, err := eng.Discover(nil, 8, 16); err == nil {
		t.Error("empty series should fail")
	}
	if _, err := eng.Discover([]float64{1, 2, math.NaN(), 4}, 2, 3); err == nil {
		t.Error("NaN should fail")
	}
}
