// Package valmod is a pure-Go implementation of VALMOD (Linardi, Zhu,
// Palpanas, Keogh — SIGMOD 2018): exact, scalable discovery of data-series
// motifs of variable length.
//
// Given a series and a length range [ℓmin, ℓmax], Discover returns the
// exact top-k motif pairs of every length in the range, a cross-length
// ranking under the length-normalized distance d·√(1/ℓ), and the VALMAP
// meta data series ⟨MPn, IP, LP⟩ that shows at which length each
// subsequence found its best match.
//
// Quick start:
//
//	res, err := valmod.Discover(values, 50, 400, valmod.Options{})
//	if err != nil { ... }
//	best, _ := res.BestOverall()
//	fmt.Printf("motif: offsets %d and %d, length %d, distance %.3f\n",
//		best.A, best.B, best.Length, best.Distance)
//
// For repeated discoveries, NewEngine builds a reusable pipeline that
// pools its scratch across runs and reports per-length progress:
//
//	eng := valmod.NewEngine(valmod.Options{
//		Workers:  0, // all cores; output identical at any worker count
//		Progress: func(p valmod.Progress) { log.Printf("%d/%d", p.Done, p.Total) },
//	})
//	res, err := eng.Discover(values, 50, 400)
//
// Options.Discords additionally reports the top-k variable-length
// discords — the subsequences whose nearest non-trivial neighbor is
// farthest (exact NN distances) — ranked across lengths by the
// length-normalized distance.
// Internally every per-length result flows through a sink pipeline
// (internal/core); discords are its first consumer requiring the exact
// full profile per length, which the incremental cross-length engine
// serves by carrying dot-product state between lengths (one FFT per
// run, one fused multiply-add per cell per length).
//
// Fixed-length helpers (MatrixProfile, DistanceProfile) expose the
// substrate directly, and ExpandMotifSet grows any discovered pair into the
// full set of its occurrences.
package valmod
